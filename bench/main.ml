(* Benchmark harness: regenerates every table and figure of the paper
   (sections printed to stdout, CSVs under results/), then runs Bechamel
   micro-benchmarks of the library's hot paths.

   Usage: main.exe [--quick | --paper] [--skip-micro] [--skip-figures]
                   [--only-exact] [--only-serve] [--only-hotpath] [--only-sim]
                   [--only-online] [--only-lint] [--jobs N]
   Default scale completes in a few minutes; --paper runs the full SS 6
   campaign (50x30, 100x1000, 13x13 with the complete alpha grid).
   --only-exact runs just the campaign/exact section (results/BENCH_exact.json).
   --only-serve runs just the campaign/serve section (results/BENCH_serve.json).
   --only-hotpath runs just the campaign/hotpath section, including the
   10^5-task LU row (results/BENCH_hotpath.json).
   --only-sim runs just the campaign/sim section — flat validate/trace/stats
   vs the *_reference pipeline, --jobs byte-identity, and the 10^6-task LU
   row (results/BENCH_sim.json).
   --only-online runs just the campaign/online section — plan under jittered
   arrivals, replay under multiplicative noise (results/BENCH_online.json).
   --only-lint runs just the campaign/lint section — typed static analysis
   over the repo's own cmts, cold vs cached (results/BENCH_lint.json).
   --jobs N fans the campaign out over a N-domain Par pool (results are
   bit-identical for every N; default: recognised CPUs). *)

(* Every wall-clock sample in this harness goes through [now]: the numbers
   are reported, never fed back into scheduling decisions, so the
   nondeterminism is confined to this one pragma'd line. *)
(* lint: allow determinism -- the timing harness measures wall-clock by definition *)
let now () = Unix.gettimeofday ()

let run_figures scale pool out_dir =
  let report s =
    print_string s;
    flush stdout
  in
  match scale with
  | `Quick -> Figures.all_quick ~out_dir ~report ~pool ()
  | `Paper -> Figures.all_paper ~out_dir ~report ~pool ()
  | `Default ->
    Figures.table1 ~out_dir ~report ();
    Figures.figure8 ~out_dir ~report ();
    Figures.figure9 ~out_dir ~report ();
    Figures.figure10 ~out_dir ~report ~pool ~count:50 ~exact_nodes:10_000 ~capped_count:15
      ~tiny_count:20 ();
    Figures.figure11 ~out_dir ~report ~pool ();
    Figures.figure12 ~out_dir ~report ~pool ~count:30 ~size:1000 ();
    Figures.figure13 ~out_dir ~report ~pool ();
    Figures.figure14 ~out_dir ~report ~pool ~n:13 ();
    Figures.figure15 ~out_dir ~report ~pool ~n:13 ();
    Figures.ilp_cross_check ~out_dir ~report ~pool ~node_limit:20_000 ();
    Figures.ablations ~out_dir ~report ~pool ~count:20 ();
    Figures.extensions ~out_dir ~report ~pool ~count:20 ();
    Plots.write_gnuplot ~out_dir ()

(* ------------------------------------------------- campaign/sweep-par ---- *)

(* Wall-clock comparison of the serial normalized_sweep against the Par
   pool, on the same instance set; also cross-checks the determinism
   contract and prints the pool counters so a speedup regression (or a
   pool pathology: queue starvation, submit backpressure) is visible. *)
let run_sweep_par_bench jobs =
  Printf.printf "\n==== campaign/sweep-par -- serial vs --jobs %d ====\n\n%!" jobs;
  let platform = Workloads.platform_random in
  let baselines = Sweep.baselines platform (Workloads.large_rand_set ~count:12 ~size:300 ()) in
  let alphas = Figures.default_alphas in
  let time f =
    let t0 = now () in
    let r = f () in
    (r, now () -. t0)
  in
  let sweep ?pool () =
    List.map
      (fun h -> Sweep.normalized_sweep ?pool platform ~alphas h baselines)
      [ Heuristics.MemHEFT; Heuristics.MemMinMin ]
  in
  let serial, t_serial = time (fun () -> sweep ()) in
  Par.with_pool ~jobs (fun pool ->
      let par, t_par = time (fun () -> sweep ~pool ()) in
      Printf.printf "serial:   %8.3f s\n--jobs %d: %7.3f s  (speedup %.2fx)\n" t_serial jobs t_par
        (t_serial /. t_par);
      (* [compare]: mean ratios are nan where no instance succeeds. *)
      (* lint: allow poly-compare -- jobs-parity check wants bit-identity *)
      Printf.printf "aggregates identical across jobs counts: %b\n" (compare serial par = 0);
      Format.printf "pool counters: %a@." Par.pp_counters (Par.counters pool))

(* -------------------------------------------------- campaign/hotpath ---- *)

(* Perf trajectory of the scheduling core: wall-clock of the optimised
   hot paths against the in-tree pre-optimisation reference runners
   ([Heuristics.memheft_reference] / [memminmin_reference]), per heuristic
   and DAG family at two sizes each.  Emits results/BENCH_hotpath.json so
   successive PRs can track the numbers; this section runs even with
   --skip-figures (it is independent of the figure campaign). *)
let run_hotpath_bench scale out_dir =
  Printf.printf "\n==== campaign/hotpath -- optimised vs reference core ====\n\n%!";
  let quick = scale = `Quick in
  let instances =
    let rand size =
      ( "random",
        size,
        (fun () -> List.hd (Workloads.large_rand_set ~count:1 ~size ())),
        Workloads.platform_random )
    in
    let lu n = ("lu", n, (fun () -> Workloads.lu ~n ()), Workloads.platform_mirage) in
    let chol n = ("cholesky", n, (fun () -> Workloads.cholesky ~n ()), Workloads.platform_mirage) in
    if quick then [ rand 100; rand 300; lu 6; lu 8; chol 6; chol 8 ]
    else [ rand 300; rand 1000; lu 8; lu 13; chol 8; chol 13 ]
  in
  let time reps f =
    ignore (f ());
    (* warm-up *)
    let t0 = now () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (now () -. t0) /. float_of_int reps
  in
  let entries = ref [] in
  List.iter
    (fun (family, param, mk, platform) ->
      let g = mk () in
      let n = Dag.n_tasks g in
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g platform) in
      let p = Platform.with_bounds platform ~m_blue:(0.7 *. peak) ~m_red:(0.7 *. peak) in
      let reps = if quick then 2 else if n >= 1000 then 3 else 10 in
      List.iter
        (fun (hname, opt, refr) ->
          let t_opt = time reps (fun () -> opt g p) in
          let t_ref = time reps (fun () -> refr g p) in
          Printf.printf "%-9s %-9s n=%-5d  opt %7.2f ms  ref %7.2f ms  speedup %.2fx\n%!" hname
            family n (1e3 *. t_opt) (1e3 *. t_ref) (t_ref /. t_opt);
          entries := (family, param, n, hname, t_opt, t_ref) :: !entries)
        [ ("MemHEFT",
           (fun g p -> ignore (Heuristics.memheft g p)),
           fun g p -> ignore (Heuristics.memheft_reference g p));
          ("MemMinMin",
           (fun g p -> ignore (Heuristics.memminmin g p)),
           fun g p -> ignore (Heuristics.memminmin_reference g p)) ])
    instances;
  (* The 10^5-task row: MemHEFT over the LU elimination DAG at n = 67
     (102510 kernel tasks; broadcast pipelining off so the count is the
     plain sum of the elimination kernels).  Bounds are HEFT's own planned
     peaks — the §6.2.1 regime, where MemHEFT replays HEFT with zero
     rejections — so the timing isolates the flat core: CSR estimate walks,
     staircase updates and the flat ready set.  The reference runner is
     deliberately absent (its full-list rescans are quadratic; hours at this
     size), so the row carries opt_ms only. *)
  let big_n = 67 in
  let g = Lu.generate ~pipeline_broadcasts:false ~n:big_n () in
  let n = Dag.n_tasks g in
  let platform = Workloads.platform_mirage in
  let t0 = now () in
  let _, (peak_blue, peak_red) = Heuristics.heft_measured g platform in
  let t_peak = now () -. t0 in
  let p = Platform.with_bounds platform ~m_blue:peak_blue ~m_red:peak_red in
  let t0 = now () in
  (match Heuristics.memheft g p with
  | Ok _ -> ()
  | Error _ -> failwith "hotpath: MemHEFT infeasible at HEFT's own peaks (§6.2.1 violation)");
  let t_opt = now () -. t0 in
  Printf.printf "%-9s %-9s n=%-6d opt %7.0f ms  (HEFT peak pass %.0f ms; reference omitted)\n%!"
    "MemHEFT" "lu" n (1e3 *. t_opt) (1e3 *. t_peak);
  let big_entry =
    [ ("family", Bench_json.S "lu"); ("param", Bench_json.I big_n);
      ("n_tasks", Bench_json.I n); ("heuristic", Bench_json.S "MemHEFT");
      ("opt_ms", Bench_json.F (1e3 *. t_opt)); ("ref", Bench_json.S "skipped") ]
  in
  let entries = List.rev !entries in
  Bench_json.write ~out_dir ~file:"BENCH_hotpath.json" ~bench:"hotpath"
    ~scale:(match scale with `Quick -> "quick" | `Paper -> "paper" | `Default -> "default")
    (List.map
       (fun (family, param, n, hname, t_opt, t_ref) ->
         [ ("family", Bench_json.S family); ("param", Bench_json.I param);
           ("n_tasks", Bench_json.I n); ("heuristic", Bench_json.S hname);
           ("opt_ms", Bench_json.F (1e3 *. t_opt)); ("ref_ms", Bench_json.F (1e3 *. t_ref));
           ("speedup", Bench_json.F (t_ref /. t_opt)) ])
       entries
    @ [ big_entry ])

(* ----------------------------------------------------- campaign/sim ----- *)

(* Verification-pipeline throughput (lib/sim): the flat validate / trace /
   stats against the verbatim *_reference pipeline on small and medium
   instances — every A/B row also asserts bit-identity of the two results —
   the sharded validator's --jobs byte-identity (on a valid and on a
   corrupted schedule, error report included), and the 10^6-task pin: HEFT
   over the LU elimination DAG at n = 144 (1,005,720 kernel tasks),
   validated at HEFT's own measured peaks (the §6.2.1 zero-rejection
   regime), traced and stats'd.  The reference pipeline is deliberately
   skipped on the big row — its per-processor [tasks_of_proc] rescans are
   O(n·p) and its list-of-boxed-events trace rebuilds the heap per query;
   the flat pipeline is the point of this section.  Emits
   results/BENCH_sim.json. *)
let run_sim_bench scale out_dir =
  Printf.printf "\n==== campaign/sim -- flat verification pipeline ====\n\n%!";
  let quick = scale = `Quick in
  let report_equal a b =
    match (a, b) with
    | Ok (ra : Validator.report), Ok (rb : Validator.report) ->
      Float.compare ra.Validator.makespan rb.Validator.makespan = 0
      && Float.compare ra.Validator.peak_blue rb.Validator.peak_blue = 0
      && Float.compare ra.Validator.peak_red rb.Validator.peak_red = 0
    | Error ea, Error eb -> List.equal String.equal ea eb
    | _ -> false
  in
  let farr_equal a b =
    Array.length a = Array.length b && Array.for_all2 (fun x y -> Float.compare x y = 0) a b
  in
  let trace_equal (a : Events.trace) (b : Events.trace) =
    farr_equal a.Events.times b.Events.times
    && farr_equal a.Events.blue b.Events.blue
    && farr_equal a.Events.red b.Events.red
  in
  let stats_equal (a : Sched_stats.t) (b : Sched_stats.t) =
    Float.compare a.Sched_stats.makespan b.Sched_stats.makespan = 0
    && Float.compare a.Sched_stats.total_work b.Sched_stats.total_work = 0
    && Float.compare a.Sched_stats.peak_blue b.Sched_stats.peak_blue = 0
    && Float.compare a.Sched_stats.peak_red b.Sched_stats.peak_red = 0
    && Float.compare a.Sched_stats.avg_blue b.Sched_stats.avg_blue = 0
    && Float.compare a.Sched_stats.avg_red b.Sched_stats.avg_red = 0
    && a.Sched_stats.n_transfers = b.Sched_stats.n_transfers
  in
  let time reps f =
    ignore (f ());
    (* warm-up *)
    let t0 = now () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (now () -. t0) /. float_of_int reps
  in
  let entries = ref [] in
  let push e = entries := e :: !entries in
  (* A/B rows: flat vs reference on HEFT schedules validated at HEFT's own
     measured peaks, so the whole pipeline runs end-to-end (Ok verdicts). *)
  let instances =
    let rand size =
      ( "random",
        size,
        (fun () -> List.hd (Workloads.large_rand_set ~count:1 ~size ())),
        Workloads.platform_random )
    in
    let lu n = ("lu", n, (fun () -> Workloads.lu ~n ()), Workloads.platform_mirage) in
    let chol n = ("cholesky", n, (fun () -> Workloads.cholesky ~n ()), Workloads.platform_mirage) in
    if quick then [ rand 300; lu 8; chol 8 ] else [ rand 300; rand 1000; lu 13; chol 13 ]
  in
  List.iter
    (fun (family, param, mk, platform) ->
      let g = mk () in
      let n = Dag.n_tasks g in
      let s, (pb, pr) = Heuristics.heft_measured g platform in
      let p = Platform.with_bounds platform ~m_blue:pb ~m_red:pr in
      let reps = if quick then 3 else if n >= 1000 then 5 else 10 in
      List.iter
        (fun (comp, opt, refr, identical) ->
          let t_opt = time reps opt in
          let t_ref = time reps refr in
          Printf.printf
            "%-8s %-9s n=%-5d  opt %7.2f ms  ref %7.2f ms  speedup %5.2fx  identical %b\n%!" comp
            family n (1e3 *. t_opt) (1e3 *. t_ref) (t_ref /. t_opt) identical;
          push
            [ ("section", Bench_json.S "ab"); ("family", Bench_json.S family);
              ("param", Bench_json.I param); ("n_tasks", Bench_json.I n);
              ("component", Bench_json.S comp); ("opt_ms", Bench_json.F (1e3 *. t_opt));
              ("ref_ms", Bench_json.F (1e3 *. t_ref)); ("speedup", Bench_json.F (t_ref /. t_opt));
              ("identical", Bench_json.B identical) ])
        [ ( "validate",
            (fun () -> ignore (Validator.validate g p s)),
            (fun () -> ignore (Validator.validate_reference g p s)),
            report_equal (Validator.validate g p s) (Validator.validate_reference g p s) );
          ( "trace",
            (fun () -> ignore (Events.memory_trace g p s)),
            (fun () -> ignore (Events.memory_trace_reference g p s)),
            trace_equal (Events.memory_trace g p s) (Events.memory_trace_reference g p s) );
          ( "stats",
            (fun () -> ignore (Sched_stats.compute g p s)),
            (fun () -> ignore (Sched_stats.compute_reference g p s)),
            stats_equal (Sched_stats.compute g p s) (Sched_stats.compute_reference g p s) ) ])
    instances;
  (* --jobs byte-identity of the sharded validator: a valid schedule and a
     collapsed one (many planted errors), each vs the serial report. *)
  let g = Workloads.lu ~n:(if quick then 10 else 13) () in
  let n_jobs_tasks = Dag.n_tasks g in
  let s, (pb, pr) = Heuristics.heft_measured g Workloads.platform_mirage in
  let p = Platform.with_bounds Workloads.platform_mirage ~m_blue:pb ~m_red:pr in
  let bad =
    {
      Schedule.starts = Array.make (Dag.n_tasks g) 0.;
      procs = Array.make (Dag.n_tasks g) 0;
      comm_starts = Array.make (Dag.n_edges g) None;
    }
  in
  let serial_ok = Validator.validate g p s in
  let serial_bad = Validator.validate g p bad in
  (match serial_bad with
  | Ok _ -> failwith "campaign/sim: collapsed schedule accepted"
  | Error _ -> ());
  List.iter
    (fun jobs ->
      let t0 = now () in
      let pooled_ok, pooled_bad =
        Par.with_pool ~jobs (fun pool ->
            (Validator.validate ~pool g p s, Validator.validate ~pool g p bad))
      in
      let t = now () -. t0 in
      let identical = report_equal serial_ok pooled_ok && report_equal serial_bad pooled_bad in
      Printf.printf "validate  --jobs %d  n=%-5d  %7.3f s  identical %b\n%!" jobs n_jobs_tasks t
        identical;
      push
        [ ("section", Bench_json.S "jobs"); ("jobs", Bench_json.I jobs);
          ("n_tasks", Bench_json.I n_jobs_tasks); ("wall_s", Bench_json.F t);
          ("identical", Bench_json.B identical) ])
    [ 1; 2; 8 ];
  (* The 10^6-task pin: single-digit seconds for validate + trace + stats.
     Steady-state methodology: one Events.scratch is shared across the
     sweep (the intended way to run repeated verifications at this size)
     and each component reports the best of two timed passes, so the row
     measures the pipeline rather than the first-touch page-fault cost of
     the buffers on a cold machine. *)
  let big_n = 144 in
  let big_reps = 2 in
  let g = Lu.generate ~pipeline_broadcasts:false ~n:big_n () in
  let n = Dag.n_tasks g in
  let t0 = now () in
  let s, (pb, pr) = Heuristics.heft_measured g Workloads.platform_mirage in
  let t_sched = now () -. t0 in
  let p = Platform.with_bounds Workloads.platform_mirage ~m_blue:pb ~m_red:pr in
  let scratch = Events.scratch () in
  let best f =
    let best = ref infinity in
    for _ = 1 to big_reps do
      let t0 = now () in
      f ();
      let t = now () -. t0 in
      if t < !best then best := t
    done;
    !best
  in
  let t_validate =
    best (fun () ->
        match Validator.validate ~scratch g p s with
        | Ok _ -> ()
        | Error errs -> failwith ("campaign/sim: 10^6-task schedule rejected: " ^ List.hd errs))
  in
  let t_trace = best (fun () -> ignore (Events.memory_trace ~scratch g p s)) in
  let t_stats = best (fun () -> ignore (Sched_stats.compute ~scratch g p s)) in
  Printf.printf
    "big       lu        n=%-8d sched %7.0f ms  validate %7.0f ms  trace %7.0f ms  stats %7.0f \
     ms  (reference skipped)\n%!"
    n (1e3 *. t_sched) (1e3 *. t_validate) (1e3 *. t_trace) (1e3 *. t_stats);
  push
    [ ("section", Bench_json.S "big"); ("family", Bench_json.S "lu");
      ("param", Bench_json.I big_n); ("n_tasks", Bench_json.I n);
      ("schedule_ms", Bench_json.F (1e3 *. t_sched));
      ("validate_ms", Bench_json.F (1e3 *. t_validate));
      ("trace_ms", Bench_json.F (1e3 *. t_trace)); ("stats_ms", Bench_json.F (1e3 *. t_stats));
      ("ref", Bench_json.S "skipped") ];
  Bench_json.write ~out_dir ~file:"BENCH_sim.json" ~bench:"sim"
    ~scale:(match scale with `Quick -> "quick" | `Paper -> "paper" | `Default -> "default")
    ~extra:
      [ ("note",
         Bench_json.S
           "flat verification pipeline vs *_reference; every ab/jobs row cross-checks \
            bit-identity; the big row's reference leg is skipped by design") ]
    (List.rev !entries)

(* --------------------------------------------------- campaign/exact ------ *)

(* Perf trajectory of the exact branch-and-bound: node throughput of the
   commit/undo search against the in-tree per-node-copy reference
   ([Exact.solve_reference]), wall-clock of warm-started vs cold node LPs in
   [Mip.solve], and a --jobs sweep of the parallel frontier decomposition.
   Emits results/BENCH_exact.json.

   Both engines are run in parity mode (frontier 1, no dominance) on the
   same node budget, so nodes/sec is compared over the identical tree.  The
   jobs sweep records honest wall times: on a single-core container the
   extra domains can only add overhead — the section's point there is the
   determinism cross-check (bit-identical results for every jobs count), not
   a speedup. *)
let run_exact_bench scale out_dir =
  Printf.printf "\n==== campaign/exact -- commit/undo B&B vs per-node-copy reference ====\n\n%!";
  let quick = scale = `Quick in
  let time f =
    let t0 = now () in
    let r = f () in
    (r, now () -. t0)
  in
  (* Four DAG families at a memory bound that keeps the search busy. *)
  let instances =
    let bounded g platform =
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g platform) in
      Platform.with_bounds platform ~m_blue:(0.7 *. peak) ~m_red:(0.7 *. peak)
    in
    let rand size =
      let g = List.hd (Workloads.large_rand_set ~count:1 ~size ()) in
      ("random", size, g, bounded g Workloads.platform_random)
    in
    let lu n =
      let g = Workloads.lu ~n () in
      ("lu", n, g, bounded g Workloads.platform_mirage)
    in
    let chol n =
      let g = Workloads.cholesky ~n () in
      ("cholesky", n, g, bounded g Workloads.platform_mirage)
    in
    let fork width =
      let g = Toy.fork_join ~width ~w:1. ~f:1. ~c:1. in
      ("fork_join", width, g, Platform.make ~p_blue:2 ~p_red:1 ~m_blue:(float_of_int width) ~m_red:(float_of_int width))
    in
    if quick then [ rand 40; lu 6; chol 6; fork 8 ]
    else [ rand 100; lu 10; chol 10; fork 12 ]
  in
  let node_limit = if quick then 5_000 else 50_000 in
  let entries = ref [] in
  let push e = entries := e :: !entries in
  (* Section 1: copy-vs-undo node throughput, identical tree (parity mode). *)
  List.iter
    (fun (family, param, g, p) ->
      let r_ref, t_ref = time (fun () -> Exact.solve_reference ~node_limit g p) in
      let r_undo, t_undo =
        time (fun () -> Exact.solve ~frontier:1 ~dominance:false ~node_limit g p)
      in
      let nps n t = float_of_int n /. t in
      Printf.printf
        "search    %-9s n=%-5d  ref %8.0f n/s  undo %8.0f n/s  speedup %5.2fx  (%d vs %d nodes)\n%!"
        family (Dag.n_tasks g)
        (nps r_ref.Exact.nodes t_ref) (nps r_undo.Exact.nodes t_undo)
        (nps r_undo.Exact.nodes t_undo /. nps r_ref.Exact.nodes t_ref)
        r_ref.Exact.nodes r_undo.Exact.nodes;
      push
        [ ("section", Bench_json.S "search_state"); ("family", Bench_json.S family);
          ("param", Bench_json.I param); ("n_tasks", Bench_json.I (Dag.n_tasks g));
          ("node_limit", Bench_json.I node_limit);
          ("ref_nodes", Bench_json.I r_ref.Exact.nodes);
          ("undo_nodes", Bench_json.I r_undo.Exact.nodes);
          ("ref_nodes_per_s", Bench_json.F (nps r_ref.Exact.nodes t_ref));
          ("undo_nodes_per_s", Bench_json.F (nps r_undo.Exact.nodes t_undo));
          ("speedup", Bench_json.F (nps r_undo.Exact.nodes t_undo /. nps r_ref.Exact.nodes t_ref)) ])
    instances;
  (* Section 2: warm-started vs cold node LPs on the ILP cross-check toys. *)
  let lp_cases =
    let base =
      [ ("chain2", Toy.chain ~n:2 ~w:2. ~f:1. ~c:1.,
         Platform.make ~p_blue:1 ~p_red:1 ~m_blue:3. ~m_red:3., 5_000);
        ("chain3", Toy.chain ~n:3 ~w:2. ~f:1. ~c:1.,
         Platform.make ~p_blue:1 ~p_red:1 ~m_blue:4. ~m_red:4., 5_000) ]
    in
    if quick then base
    else
      base
      @ [ ("fork2", Toy.fork_join ~width:2 ~w:1. ~f:1. ~c:1.,
           Platform.make ~p_blue:1 ~p_red:1 ~m_blue:6. ~m_red:6., 150) ]
  in
  List.iter
    (fun (name, g, p, lp_nodes) ->
      let model = Ilp_model.build g p in
      let seed =
        match Exact.solve g p with
        | { Exact.status = Exact.Proven_optimal; makespan; _ } -> Some (makespan +. 1e-3)
        | _ -> None
      in
      let cold, t_cold =
        time (fun () -> Mip.solve ~node_limit:lp_nodes ?incumbent:seed ~warm_start:false (Ilp_model.lp model))
      in
      let warm, t_warm =
        time (fun () -> Mip.solve ~node_limit:lp_nodes ?incumbent:seed ~warm_start:true (Ilp_model.lp model))
      in
      Printf.printf "warm-lp   %-9s cold %7.3f s (%4d nodes)  warm %7.3f s (%4d nodes)  speedup %5.2fx\n%!"
        name t_cold cold.Mip.nodes t_warm warm.Mip.nodes (t_cold /. t_warm);
      push
        [ ("section", Bench_json.S "warm_lp"); ("instance", Bench_json.S name);
          ("node_limit", Bench_json.I lp_nodes);
          ("cold_s", Bench_json.F t_cold); ("cold_nodes", Bench_json.I cold.Mip.nodes);
          ("warm_s", Bench_json.F t_warm); ("warm_nodes", Bench_json.I warm.Mip.nodes);
          ("speedup", Bench_json.F (t_cold /. t_warm)) ])
    lp_cases;
  (* Section 3: --jobs sweep of the parallel frontier decomposition; the
     determinism contract (identical result for every jobs count) is checked
     on every row. *)
  let jobs_node_limit = if quick then 2_000 else 20_000 in
  List.iter
    (fun (family, param, g, p) ->
      let serial, t_serial = time (fun () -> Exact.solve ~node_limit:jobs_node_limit g p) in
      List.iter
        (fun jobs ->
          let r, t =
            if jobs = 1 then (serial, t_serial)
            else
              time (fun () ->
                  Par.with_pool ~jobs (fun pool ->
                      Exact.solve ~pool ~node_limit:jobs_node_limit g p))
          in
          let identical =
            r.Exact.status = serial.Exact.status
            && Int64.equal (Int64.bits_of_float r.Exact.makespan)
                 (Int64.bits_of_float serial.Exact.makespan)
            && Int64.equal (Int64.bits_of_float r.Exact.best_bound)
                 (Int64.bits_of_float serial.Exact.best_bound)
            && r.Exact.nodes = serial.Exact.nodes
          in
          Printf.printf "jobs      %-9s --jobs %d  %7.3f s  identical %b\n%!" family jobs t identical;
          push
            [ ("section", Bench_json.S "jobs"); ("family", Bench_json.S family);
              ("param", Bench_json.I param); ("jobs", Bench_json.I jobs);
              ("node_limit", Bench_json.I jobs_node_limit); ("wall_s", Bench_json.F t);
              ("identical", Bench_json.B identical) ])
        [ 1; 2; 8 ])
    instances;
  Bench_json.write ~out_dir ~file:"BENCH_exact.json" ~bench:"exact"
    ~scale:(match scale with `Quick -> "quick" | `Paper -> "paper" | `Default -> "default")
    ~extra:
      [ ("note",
         Bench_json.S
           "single-core container: the jobs sweep measures determinism overhead, not speedup") ]
    (List.rev !entries)

(* --------------------------------------------------- campaign/serve ------ *)

(* Throughput and completion-latency of the scheduling daemon (lib/serve):
   a burst of distinct requests is piped through the real [Server.serve]
   loop — writer domain in, server domain on the pool, response frames
   timestamped here as they arrive — first against a cold result cache,
   then replayed against the warm one, at --jobs 1/2/8.  Emits
   results/BENCH_serve.json.  The response-stream digest is cross-checked
   on every row: every jobs count and both cache states must produce the
   identical bytes (the daemon's core contract). *)
let run_serve_bench scale out_dir =
  Printf.printf "\n==== campaign/serve -- daemon throughput, cold vs warm cache ====\n\n%!";
  let quick = scale = `Quick in
  let n_requests = if quick then 24 else 60 in
  let size = if quick then 40 else 80 in
  let dags = Workloads.large_rand_set ~count:n_requests ~size () in
  let platform = Workloads.platform_random in
  let algos =
    [| Heuristics.MemHEFT; Heuristics.MemMinMin; Heuristics.HEFT; Heuristics.MinMin |]
  in
  let script =
    String.concat ""
      (List.mapi
         (fun k g ->
           let req =
             { Wire.id = Int64.of_int (k + 1); algo = Wire.Heuristic algos.(k mod 4); seed = 0L;
               restarts = 0; node_limit = 0; platform; dag = g }
           in
           Wire.frame (Wire.encode_message (Wire.Request req)))
         dags)
  in
  let write_all fd s =
    let b = Bytes.unsafe_of_string s in
    let rec go off =
      if off < Bytes.length b then go (off + Unix.write fd b off (Bytes.length b - off))
    in
    go 0
  in
  let read_exact fd n =
    let buf = Bytes.create n in
    let rec go off =
      if off = n then Some (Bytes.unsafe_to_string buf)
      else
        match Unix.read fd buf off (n - off) with 0 -> None | k -> go (off + k)
    in
    go 0
  in
  (* One pass of the whole script through a server sharing [pool] and
     [cache]; returns wall time, per-response completion times and the
     digest of the response byte stream. *)
  let run_pass pool cache =
    let in_r, in_w = Unix.pipe () and out_r, out_w = Unix.pipe () in
    let writer =
      Domain.spawn (fun () ->
          write_all in_w script;
          Unix.close in_w)
    in
    let server =
      Domain.spawn (fun () ->
          let c = Server.serve ~pool ~cache ~input:in_r ~output:out_w () in
          Unix.close out_w;
          c)
    in
    let t0 = now () in
    let times = ref [] and all = Buffer.create 4096 in
    let rec read_frames () =
      match read_exact out_r 4 with
      | None -> ()
      | Some prefix -> (
        let declared = Int32.to_int (String.get_int32_be prefix 0) land 0xFFFF_FFFF in
        match read_exact out_r declared with
        | None -> ()
        | Some payload ->
          times := (now () -. t0) :: !times;
          Buffer.add_string all prefix;
          Buffer.add_string all payload;
          read_frames ())
    in
    read_frames ();
    let wall = now () -. t0 in
    let counters = Domain.join server in
    Domain.join writer;
    Unix.close in_r;
    Unix.close out_r;
    let times = Array.of_list (List.rev !times) in
    Array.sort Float.compare times;
    (wall, times, Digest.to_hex (Digest.string (Buffer.contents all)), counters)
  in
  let pct times q =
    let n = Array.length times in
    if n = 0 then nan
    else times.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))
  in
  let entries = ref [] in
  let reference = ref None in
  List.iter
    (fun jobs ->
      Par.with_pool ~jobs (fun pool ->
          let cache = Serve_cache.create () in
          List.iter
            (fun phase ->
              let wall, times, digest, c = run_pass pool cache in
              let identical =
                match !reference with
                | None ->
                  reference := Some digest;
                  true
                | Some d -> d = digest
              in
              let rps = float_of_int n_requests /. wall in
              let p50 = 1e3 *. pct times 0.50 and p99 = 1e3 *. pct times 0.99 in
              Printf.printf
                "--jobs %d  %-5s %3d req  %7.3f s  %8.1f req/s  p50 %7.2f ms  p99 %7.2f ms  \
                 computed %2d  identical %b\n%!"
                jobs phase n_requests wall rps p50 p99 c.Server.computed identical;
              entries :=
                [ ("jobs", Bench_json.I jobs); ("phase", Bench_json.S phase);
                  ("n_requests", Bench_json.I n_requests); ("wall_s", Bench_json.F wall);
                  ("rps", Bench_json.F rps); ("p50_ms", Bench_json.F p50);
                  ("p99_ms", Bench_json.F p99); ("computed", Bench_json.I c.Server.computed);
                  ("served", Bench_json.I c.Server.served); ("digest", Bench_json.S digest);
                  ("identical", Bench_json.B identical) ]
                :: !entries)
            [ "cold"; "warm" ]))
    [ 1; 2; 8 ];
  Bench_json.write ~out_dir ~file:"BENCH_serve.json" ~bench:"serve"
    ~scale:(match scale with `Quick -> "quick" | `Paper -> "paper" | `Default -> "default")
    ~extra:
      [ ("note",
         Bench_json.S
           "completion-time percentiles under a one-flush burst; single-core container: the jobs \
            sweep pins byte-identity, not speedup") ]
    (List.rev !entries)

(* ------------------------------------------------------ micro-benchmarks *)

open Bechamel
open Toolkit

let micro_tests () =
  let rng = Rng.create 99 in
  let small = Daggen.generate rng Daggen.small_rand_params in
  let large = Daggen.generate rng { Daggen.large_rand_params with Daggen.size = 300 } in
  let lu = Lu.generate ~n:8 () in
  let plat = Platform.unbounded ~p_blue:2 ~p_red:2 in
  let mirage = Platform.unbounded ~p_blue:12 ~p_red:3 in
  let bounded g platform frac =
    let o = Outcome.run Heuristics.HEFT g platform in
    let b = frac *. Outcome.peak_max o in
    Platform.with_bounds platform ~m_blue:b ~m_red:b
  in
  let small_b = bounded small plat 0.7 in
  let large_b = bounded large plat 0.7 in
  let lu_b = bounded lu mirage 0.7 in
  let run h g p () = ignore (Heuristics.run h g p) in
  let stage f = Staged.stage f in
  [ Test.make ~name:"heft/rand30" (stage (run Heuristics.HEFT small plat));
    Test.make ~name:"minmin/rand30" (stage (run Heuristics.MinMin small plat));
    Test.make ~name:"memheft/rand30@0.7" (stage (run Heuristics.MemHEFT small small_b));
    Test.make ~name:"memminmin/rand30@0.7" (stage (run Heuristics.MemMinMin small small_b));
    Test.make ~name:"memheft/rand300@0.7" (stage (run Heuristics.MemHEFT large large_b));
    Test.make ~name:"memminmin/rand300@0.7" (stage (run Heuristics.MemMinMin large large_b));
    Test.make ~name:"memheft/lu8@0.7" (stage (run Heuristics.MemHEFT lu lu_b));
    Test.make ~name:"validator/lu8"
      (stage
         (let s = Heuristics.heft lu mirage in
          fun () -> ignore (Validator.validate lu mirage s)));
    Test.make ~name:"rank/rand300" (stage (fun () -> ignore (Rank.upward_ranks large)));
    Test.make ~name:"daggen/rand30"
      (stage
         (let r = Rng.create 1 in
          fun () -> ignore (Daggen.generate r Daggen.small_rand_params)));
    Test.make ~name:"exact/dex-m4"
      (stage
         (let dex = Toy.dex () in
          let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:4. ~m_red:4. in
          fun () -> ignore (Exact.solve dex p)))
  ]

let run_micro () =
  Printf.printf "\n==== Micro-benchmarks (Bechamel) ====\n\n%!";
  let tests = Test.make_grouped ~name:"memsched" ~fmt:"%s %s" (micro_tests ()) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  (* Bechamel hands back a Hashtbl; rows are List.sort-ed into canonical
     order below, so bucket order cannot reach the printed table. *)
  (* lint: allow order-stability -- sorted before printing *)
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows =
    List.sort
      (fun (a, x) (b, y) ->
        let c = String.compare a b in
        if c <> 0 then c else Float.compare x y)
      !rows
  in
  Table.print ~header:[ "benchmark"; "time/run" ]
    (List.map
       (fun (name, ns) ->
         let cell =
           if Float.is_nan ns then "-"
           else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; cell ])
       rows)

(* --------------------------------------------------- campaign/online ----- *)

(* Online planning + perturbed replay throughput (lib/online): plan every
   instance once under jittered arrivals, replay the committed schedule over
   the noise-seed x policy grid at --jobs 1/2/8, and cross-check the
   determinism contract on every row — the CSV digest must be byte-identical
   for every jobs count, and invariant under shuffling/duplicating the
   noise-seed list.  Emits results/BENCH_online.json. *)
let run_online_bench scale out_dir =
  Printf.printf "\n==== campaign/online -- plan, perturb, replay ====\n\n%!";
  let quick = scale = `Quick in
  let count = if quick then 4 else 8 in
  let n_seeds = if quick then 4 else 16 in
  let tile_n = if quick then 6 else 10 in
  let instances =
    List.mapi
      (fun k dag -> (Printf.sprintf "small%02d" k, dag))
      (Workloads.small_rand_set ~count ())
    @ [ ("lu", Workloads.lu ~n:tile_n ()); ("cholesky", Workloads.cholesky ~n:tile_n ()) ]
  in
  let platform = Workloads.platform_random in
  let cfg seeds =
    { Scenario.default_config with
      Scenario.arrival = Arrival.Jittered { gap = 1.0; seed = 5 };
      noise_level = 0.3;
      noise_seeds = seeds }
  in
  let seeds = List.init n_seeds (fun s -> s) in
  let digest rows =
    Digest.to_hex
      (Digest.string
         (String.concat "\n" (List.map (fun r -> Csv.row_to_string (Scenario.csv_row (cfg seeds) r)) rows)))
  in
  let entries = ref [] in
  let push e = entries := e :: !entries in
  let time f =
    let t0 = now () in
    let r = f () in
    (r, now () -. t0)
  in
  let (serial_rows, _), t_serial = time (fun () -> Scenario.run (cfg seeds) instances platform) in
  let serial_digest = digest serial_rows in
  List.iter
    (fun jobs ->
      let (rows, _), t =
        if jobs = 1 then ((serial_rows, []), t_serial)
        else
          time (fun () ->
              Par.with_pool ~jobs (fun pool -> Scenario.run ~pool (cfg seeds) instances platform))
      in
      let identical = String.equal (digest rows) serial_digest in
      Printf.printf "online    --jobs %d  %7.3f s  %d rows  identical %b\n%!" jobs t
        (List.length rows) identical;
      push
        [ ("section", Bench_json.S "jobs"); ("jobs", Bench_json.I jobs);
          ("instances", Bench_json.I (List.length instances));
          ("seeds", Bench_json.I n_seeds); ("rows", Bench_json.I (List.length rows));
          ("wall_s", Bench_json.F t); ("identical", Bench_json.B identical) ])
    [ 1; 2; 8 ];
  (* Seed-list order/duplication must not matter: the grid sorts and
     dedupes seeds up front. *)
  let shuffled = List.rev seeds @ seeds in
  let (shuffled_rows, _), t_shuffled =
    time (fun () -> Scenario.run (cfg shuffled) instances platform)
  in
  let identical = String.equal (digest shuffled_rows) serial_digest in
  Printf.printf "online    seed-order shuffle  %7.3f s  identical %b\n%!" t_shuffled identical;
  push
    [ ("section", Bench_json.S "seed_order"); ("jobs", Bench_json.I 1);
      ("instances", Bench_json.I (List.length instances));
      ("seeds", Bench_json.I n_seeds); ("rows", Bench_json.I (List.length shuffled_rows));
      ("wall_s", Bench_json.F t_shuffled); ("identical", Bench_json.B identical) ];
  Bench_json.write ~out_dir ~file:"BENCH_online.json" ~bench:"online"
    ~scale:(match scale with `Quick -> "quick" | `Paper -> "paper" | `Default -> "default")
    ~extra:
      [ ("note",
         Bench_json.S
           "single-core container: the jobs sweep measures determinism overhead, not speedup") ]
    (List.rev !entries)

(* ----------------------------------------------------- campaign/lint ---- *)

(* Typed-lint throughput (lib/lint): cold vs warm wall-time of the
   interprocedural pass over the repo's own .cmt artifacts — the warm pass
   must serve every module from the content-addressed summary cache
   (extracted = 0) — plus the findings count and the --jobs 1/2/8
   byte-identity cross-check on the JSON report.  Requires the @check
   build; emits results/BENCH_lint.json. *)
let run_lint_bench scale out_dir =
  Printf.printf "\n==== campaign/lint -- typed pass, cold vs cached ====\n\n%!";
  let root = Sys.getcwd () in
  let cache_file = Filename.temp_file "memsched_lint_bench" ".cache" in
  let run jobs =
    match Lint_engine.run_typed ~jobs ~cache_file ~root () with
    | Ok (findings, _, stats) -> (Lint_engine.render_json findings, List.length findings, stats)
    | Error msg -> failwith ("campaign/lint: " ^ msg)
  in
  let time f =
    let t0 = now () in
    let r = f () in
    (r, now () -. t0)
  in
  (* temp_file creates an empty file; drop it so the first pass is truly
     cold (an empty cache, not a malformed one). *)
  Sys.remove cache_file;
  let (cold_json, cold_count, cold_stats), t_cold = time (fun () -> run 2) in
  let (warm_json, _, warm_stats), t_warm = time (fun () -> run 2) in
  let entries = ref [] in
  let push phase jobs json t (stats : Lint_engine.typed_stats) =
    let identical = String.equal json cold_json in
    Printf.printf
      "lint      --jobs %d  %-5s %7.3f s  %d modules  %d cached  %d extracted  %d findings  \
       identical %b\n%!"
      jobs phase t stats.Lint_engine.tp_modules stats.Lint_engine.tp_from_cache
      stats.Lint_engine.tp_extracted cold_count identical;
    entries :=
      [ ("phase", Bench_json.S phase); ("jobs", Bench_json.I jobs); ("wall_s", Bench_json.F t);
        ("modules", Bench_json.I stats.Lint_engine.tp_modules);
        ("from_cache", Bench_json.I stats.Lint_engine.tp_from_cache);
        ("extracted", Bench_json.I stats.Lint_engine.tp_extracted);
        ("stale", Bench_json.I stats.Lint_engine.tp_stale);
        ("findings", Bench_json.I cold_count); ("identical", Bench_json.B identical) ]
      :: !entries
  in
  push "cold" 2 cold_json t_cold cold_stats;
  push "warm" 2 warm_json t_warm warm_stats;
  List.iter
    (fun jobs ->
      let (json, _, stats), t = time (fun () -> run jobs) in
      push "warm" jobs json t stats)
    [ 1; 8 ];
  Sys.remove cache_file;
  Bench_json.write ~out_dir ~file:"BENCH_lint.json" ~bench:"lint"
    ~scale:(match scale with `Quick -> "quick" | `Paper -> "paper" | `Default -> "default")
    ~extra:
      [ ("note",
         Bench_json.S
           "typed pass over the repo's own cmts; warm rows must be fully cache-served and \
            byte-identical to the cold report for every jobs count") ]
    (List.rev !entries)

let () =
  let args = Array.to_list Sys.argv in
  let scale =
    if List.mem "--quick" args then `Quick else if List.mem "--paper" args then `Paper else `Default
  in
  let jobs =
    let rec find = function
      | "--jobs" :: v :: _ -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> n
        | _ ->
          prerr_endline "bench: --jobs expects a positive integer";
          exit 2)
      | _ :: tl -> find tl
      | [] -> Par.default_jobs ()
    in
    find args
  in
  let out_dir = "results" in
  if List.mem "--only-exact" args then run_exact_bench scale out_dir
  else if List.mem "--only-serve" args then run_serve_bench scale out_dir
  else if List.mem "--only-hotpath" args then run_hotpath_bench scale out_dir
  else if List.mem "--only-sim" args then run_sim_bench scale out_dir
  else if List.mem "--only-online" args then run_online_bench scale out_dir
  else if List.mem "--only-lint" args then run_lint_bench scale out_dir
  else begin
    if not (List.mem "--skip-figures" args) then
      Par.with_pool ~jobs (fun pool -> run_figures scale pool out_dir);
    run_sweep_par_bench jobs;
    run_hotpath_bench scale out_dir;
    run_sim_bench scale out_dir;
    run_exact_bench scale out_dir;
    run_serve_bench scale out_dir;
    run_online_bench scale out_dir;
    run_lint_bench scale out_dir;
    if not (List.mem "--skip-micro" args) then run_micro ()
  end;
  Printf.printf "\nAll sections complete; CSVs in %s/\n" out_dir
