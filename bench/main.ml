(* Benchmark harness: regenerates every table and figure of the paper
   (sections printed to stdout, CSVs under results/), then runs Bechamel
   micro-benchmarks of the library's hot paths.

   Usage: main.exe [--quick | --paper] [--skip-micro] [--skip-figures] [--jobs N]
   Default scale completes in a few minutes; --paper runs the full SS 6
   campaign (50x30, 100x1000, 13x13 with the complete alpha grid).
   --jobs N fans the campaign out over a N-domain Par pool (results are
   bit-identical for every N; default: recognised CPUs). *)

let run_figures scale pool out_dir =
  match scale with
  | `Quick -> Figures.all_quick ~out_dir ~pool ()
  | `Paper -> Figures.all_paper ~out_dir ~pool ()
  | `Default ->
    Figures.table1 ~out_dir ();
    Figures.figure8 ~out_dir ();
    Figures.figure9 ~out_dir ();
    Figures.figure10 ~out_dir ~pool ~count:50 ~exact_nodes:10_000 ~capped_count:15 ~tiny_count:20 ();
    Figures.figure11 ~out_dir ~pool ();
    Figures.figure12 ~out_dir ~pool ~count:30 ~size:1000 ();
    Figures.figure13 ~out_dir ~pool ();
    Figures.figure14 ~out_dir ~pool ~n:13 ();
    Figures.figure15 ~out_dir ~pool ~n:13 ();
    Figures.ilp_cross_check ~out_dir ~pool ~node_limit:20_000 ();
    Figures.ablations ~out_dir ~pool ~count:20 ();
    Figures.extensions ~out_dir ~pool ~count:20 ();
    Plots.write_gnuplot ~out_dir ()

(* ------------------------------------------------- campaign/sweep-par ---- *)

(* Wall-clock comparison of the serial normalized_sweep against the Par
   pool, on the same instance set; also cross-checks the determinism
   contract and prints the pool counters so a speedup regression (or a
   pool pathology: queue starvation, submit backpressure) is visible. *)
let run_sweep_par_bench jobs =
  Printf.printf "\n==== campaign/sweep-par -- serial vs --jobs %d ====\n\n%!" jobs;
  let platform = Workloads.platform_random in
  let baselines = Sweep.baselines platform (Workloads.large_rand_set ~count:12 ~size:300 ()) in
  let alphas = Figures.default_alphas in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let sweep ?pool () =
    List.map
      (fun h -> Sweep.normalized_sweep ?pool platform ~alphas h baselines)
      [ Heuristics.MemHEFT; Heuristics.MemMinMin ]
  in
  let serial, t_serial = time (fun () -> sweep ()) in
  Par.with_pool ~jobs (fun pool ->
      let par, t_par = time (fun () -> sweep ~pool ()) in
      Printf.printf "serial:   %8.3f s\n--jobs %d: %7.3f s  (speedup %.2fx)\n" t_serial jobs t_par
        (t_serial /. t_par);
      (* [compare]: mean ratios are nan where no instance succeeds. *)
      Printf.printf "aggregates identical across jobs counts: %b\n" (compare serial par = 0);
      Format.printf "pool counters: %a@." Par.pp_counters (Par.counters pool))

(* -------------------------------------------------- campaign/hotpath ---- *)

(* Perf trajectory of the scheduling core: wall-clock of the optimised
   hot paths against the in-tree pre-optimisation reference runners
   ([Heuristics.memheft_reference] / [memminmin_reference]), per heuristic
   and DAG family at two sizes each.  Emits results/BENCH_hotpath.json so
   successive PRs can track the numbers; this section runs even with
   --skip-figures (it is independent of the figure campaign). *)
let run_hotpath_bench scale out_dir =
  Printf.printf "\n==== campaign/hotpath -- optimised vs reference core ====\n\n%!";
  let quick = scale = `Quick in
  let instances =
    let rand size =
      ( "random",
        size,
        (fun () -> List.hd (Workloads.large_rand_set ~count:1 ~size ())),
        Workloads.platform_random )
    in
    let lu n = ("lu", n, (fun () -> Workloads.lu ~n ()), Workloads.platform_mirage) in
    let chol n = ("cholesky", n, (fun () -> Workloads.cholesky ~n ()), Workloads.platform_mirage) in
    if quick then [ rand 100; rand 300; lu 6; lu 8; chol 6; chol 8 ]
    else [ rand 300; rand 1000; lu 8; lu 13; chol 8; chol 13 ]
  in
  let time reps f =
    ignore (f ());
    (* warm-up *)
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let entries = ref [] in
  List.iter
    (fun (family, param, mk, platform) ->
      let g = mk () in
      let n = Dag.n_tasks g in
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g platform) in
      let p = Platform.with_bounds platform ~m_blue:(0.7 *. peak) ~m_red:(0.7 *. peak) in
      let reps = if quick then 2 else if n >= 1000 then 3 else 10 in
      List.iter
        (fun (hname, opt, refr) ->
          let t_opt = time reps (fun () -> opt g p) in
          let t_ref = time reps (fun () -> refr g p) in
          Printf.printf "%-9s %-9s n=%-5d  opt %7.2f ms  ref %7.2f ms  speedup %.2fx\n%!" hname
            family n (1e3 *. t_opt) (1e3 *. t_ref) (t_ref /. t_opt);
          entries := (family, param, n, hname, t_opt, t_ref) :: !entries)
        [ ("MemHEFT",
           (fun g p -> ignore (Heuristics.memheft g p)),
           fun g p -> ignore (Heuristics.memheft_reference g p));
          ("MemMinMin",
           (fun g p -> ignore (Heuristics.memminmin g p)),
           fun g p -> ignore (Heuristics.memminmin_reference g p)) ])
    instances;
  let entries = List.rev !entries in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"bench\": \"hotpath\",\n";
  Printf.bprintf b "  \"scale\": \"%s\",\n"
    (match scale with `Quick -> "quick" | `Paper -> "paper" | `Default -> "default");
  Buffer.add_string b "  \"entries\": [\n";
  let last = List.length entries - 1 in
  List.iteri
    (fun k (family, param, n, hname, t_opt, t_ref) ->
      Printf.bprintf b
        "    {\"family\": \"%s\", \"param\": %d, \"n_tasks\": %d, \"heuristic\": \"%s\", \
         \"opt_ms\": %.3f, \"ref_ms\": %.3f, \"speedup\": %.2f}%s\n"
        family param n hname (1e3 *. t_opt) (1e3 *. t_ref) (t_ref /. t_opt)
        (if k = last then "" else ","))
    entries;
  Buffer.add_string b "  ]\n}\n";
  (if not (Sys.file_exists out_dir) then Unix.mkdir out_dir 0o755);
  let path = Filename.concat out_dir "BENCH_hotpath.json" in
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc;
  Printf.printf "wrote %s\n%!" path

(* ------------------------------------------------------ micro-benchmarks *)

open Bechamel
open Toolkit

let micro_tests () =
  let rng = Rng.create 99 in
  let small = Daggen.generate rng Daggen.small_rand_params in
  let large = Daggen.generate rng { Daggen.large_rand_params with Daggen.size = 300 } in
  let lu = Lu.generate ~n:8 () in
  let plat = Platform.unbounded ~p_blue:2 ~p_red:2 in
  let mirage = Platform.unbounded ~p_blue:12 ~p_red:3 in
  let bounded g platform frac =
    let o = Outcome.run Heuristics.HEFT g platform in
    let b = frac *. Outcome.peak_max o in
    Platform.with_bounds platform ~m_blue:b ~m_red:b
  in
  let small_b = bounded small plat 0.7 in
  let large_b = bounded large plat 0.7 in
  let lu_b = bounded lu mirage 0.7 in
  let run h g p () = ignore (Heuristics.run h g p) in
  let stage f = Staged.stage f in
  [ Test.make ~name:"heft/rand30" (stage (run Heuristics.HEFT small plat));
    Test.make ~name:"minmin/rand30" (stage (run Heuristics.MinMin small plat));
    Test.make ~name:"memheft/rand30@0.7" (stage (run Heuristics.MemHEFT small small_b));
    Test.make ~name:"memminmin/rand30@0.7" (stage (run Heuristics.MemMinMin small small_b));
    Test.make ~name:"memheft/rand300@0.7" (stage (run Heuristics.MemHEFT large large_b));
    Test.make ~name:"memminmin/rand300@0.7" (stage (run Heuristics.MemMinMin large large_b));
    Test.make ~name:"memheft/lu8@0.7" (stage (run Heuristics.MemHEFT lu lu_b));
    Test.make ~name:"validator/lu8"
      (stage
         (let s = Heuristics.heft lu mirage in
          fun () -> ignore (Validator.validate lu mirage s)));
    Test.make ~name:"rank/rand300" (stage (fun () -> ignore (Rank.upward_ranks large)));
    Test.make ~name:"daggen/rand30"
      (stage
         (let r = Rng.create 1 in
          fun () -> ignore (Daggen.generate r Daggen.small_rand_params)));
    Test.make ~name:"exact/dex-m4"
      (stage
         (let dex = Toy.dex () in
          let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:4. ~m_red:4. in
          fun () -> ignore (Exact.solve dex p)))
  ]

let run_micro () =
  Printf.printf "\n==== Micro-benchmarks (Bechamel) ====\n\n%!";
  let tests = Test.make_grouped ~name:"memsched" ~fmt:"%s %s" (micro_tests ()) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  (* Bechamel hands back a Hashtbl; rows are List.sort-ed into canonical
     order below, so bucket order cannot reach the printed table. *)
  (* lint: allow order-stability -- sorted before printing *)
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Table.print ~header:[ "benchmark"; "time/run" ]
    (List.map
       (fun (name, ns) ->
         let cell =
           if Float.is_nan ns then "-"
           else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; cell ])
       rows)

let () =
  let args = Array.to_list Sys.argv in
  let scale =
    if List.mem "--quick" args then `Quick else if List.mem "--paper" args then `Paper else `Default
  in
  let jobs =
    let rec find = function
      | "--jobs" :: v :: _ -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> n
        | _ ->
          prerr_endline "bench: --jobs expects a positive integer";
          exit 2)
      | _ :: tl -> find tl
      | [] -> Par.default_jobs ()
    in
    find args
  in
  let out_dir = "results" in
  if not (List.mem "--skip-figures" args) then
    Par.with_pool ~jobs (fun pool -> run_figures scale pool out_dir);
  run_sweep_par_bench jobs;
  run_hotpath_bench scale out_dir;
  if not (List.mem "--skip-micro" args) then run_micro ();
  Printf.printf "\nAll sections complete; CSVs in %s/\n" out_dir
