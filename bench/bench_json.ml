(* Shared emitter for the committed results/BENCH_*.json artifacts.

   Every bench section serialises to the same shape so downstream tooling
   (jq checks in the Makefile, PR-over-PR trend scripts) can treat them
   uniformly:

     { "bench": "<name>", "scale": "<scale>", <extra...>,
       "entries": [ { ... }, ... ] }

   Entries are flat association lists; floats are printed with [%.6g]
   (non-finite values become [null], which jq handles gracefully). *)

type value = S of string | I of int | F of float | B of bool

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_value b = function
  | S s -> Printf.bprintf b "\"%s\"" (escape s)
  | I i -> Printf.bprintf b "%d" i
  | F f -> if Float.is_finite f then Printf.bprintf b "%.6g" f else Buffer.add_string b "null"
  | B v -> Buffer.add_string b (if v then "true" else "false")

let add_fields b fields =
  List.iteri
    (fun k (key, v) ->
      if k > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "\"%s\": " (escape key);
      add_value b v)
    fields

let write ~out_dir ~file ~bench ~scale ?(extra = []) entries =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  add_fields b ((("bench", S bench) :: ("scale", S scale) :: extra));
  Buffer.add_string b ",\n  \"entries\": [\n";
  let last = List.length entries - 1 in
  List.iteri
    (fun k fields ->
      Buffer.add_string b "    {";
      add_fields b fields;
      Buffer.add_string b (if k = last then "}\n" else "},\n"))
    entries;
  Buffer.add_string b "  ]\n}\n";
  (if not (Sys.file_exists out_dir) then Unix.mkdir out_dir 0o755);
  let path = Filename.concat out_dir file in
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc;
  Printf.printf "wrote %s\n%!" path
