TMP ?= /tmp/memsched-verify

.PHONY: all build test lint lint-json lint-debt bench bench-smoke bench-hotpath-smoke bench-sim bench-sim-smoke bench-exact bench-exact-smoke bench-serve bench-online-smoke bench-lint bench-lint-smoke serve-smoke online-smoke fuzz-smoke verify clean

all: build

build:
	dune build @all

test:
	dune runtest

# Static analysis (lib/lint): the syntactic rules (determinism /
# float-discipline / domain-safety / io-purity / order-stability) plus the
# typed interprocedural pass (domain-race / poly-compare / effect-purity)
# over the .cmt artifacts of bench/ bin/ lib/ test/.  Exits non-zero on any
# finding outside lint.allowlist or an inline pragma.
lint: build
	dune build @check
	dune exec bin/memsched_cli.exe -- lint --typed --jobs 2

lint-json: build
	dune build @check
	dune exec bin/memsched_cli.exe -- lint --typed --jobs 2 --format json

# Suppression-debt census: every inline pragma and allowlist entry, so the
# grandfathered surface is visible (and reviewable) at a glance.  Always
# exits 0.
lint-debt: build
	dune exec bin/memsched_cli.exe -- lint --debt

bench:
	dune exec bench/main.exe

# Smoke run of the bench harness at quick scale: the campaign/hotpath
# section must produce a well-formed results/BENCH_hotpath.json.
bench-smoke: build
	dune exec bench/main.exe -- --quick --skip-figures
	test -s results/BENCH_hotpath.json
	jq -e '.bench == "hotpath" and (.entries | length > 0)' results/BENCH_hotpath.json > /dev/null
	@echo "bench-smoke OK"

# Hot-path smoke at quick scale: the campaign/hotpath section alone,
# including the 10^5-task LU row — the flat CSR core must schedule it in
# single-digit seconds (opt_ms < 10000) and the small optimised-vs-reference
# A/B rows must still be present.
bench-hotpath-smoke: build
	dune exec bench/main.exe -- --quick --skip-figures --only-hotpath
	test -s results/BENCH_hotpath.json
	jq -e '.bench == "hotpath" and ([.entries[] | select(.n_tasks >= 100000 and .opt_ms < 10000)] | length > 0) and ([.entries[] | select(.ref_ms != null)] | length > 0) and ([.entries[] | select(.ref_ms == null) | .ref == "skipped"] | all)' results/BENCH_hotpath.json > /dev/null
	@echo "bench-hotpath-smoke OK"

# Verification-pipeline bench (campaign/sim): flat validate/trace/stats vs
# the verbatim *_reference pipeline (bit-identity asserted on every A/B
# row), the sharded validator's --jobs byte-identity, and the 10^6-task LU
# row.  Writes results/BENCH_sim.json.
bench-sim: build
	dune exec bench/main.exe -- --only-sim

# Sim smoke at quick scale: the 10^6-task row must complete its whole
# verification pass (validate + trace + stats) in single-digit seconds, the
# A/B and --jobs rows must all report bit-identical results, and any row
# without a reference leg must say so explicitly.
bench-sim-smoke: build
	dune exec bench/main.exe -- --quick --only-sim
	test -s results/BENCH_sim.json
	jq -e '.bench == "sim" and ([.entries[] | select(.n_tasks >= 1000000 and (.validate_ms + .trace_ms + .stats_ms) < 10000)] | length > 0) and ([.entries[] | select(.identical != null) | .identical] | all) and ([.entries[] | select(.ref_ms == null and .section != "jobs") | .ref == "skipped"] | all)' results/BENCH_sim.json > /dev/null
	@echo "bench-sim-smoke OK"

# Exact-baseline bench (campaign/exact): node throughput of the commit/undo
# branch-and-bound vs the per-node-copy reference, warm vs cold node LPs,
# and the --jobs determinism sweep.  Writes results/BENCH_exact.json.
bench-exact: build
	dune exec bench/main.exe -- --only-exact

bench-exact-smoke: build
	dune exec bench/main.exe -- --quick --only-exact
	test -s results/BENCH_exact.json
	jq -e '.bench == "exact" and (.entries | length > 0) and ([.entries[] | select(.section == "jobs") | .identical] | all)' results/BENCH_exact.json > /dev/null
	@echo "bench-exact-smoke OK"

# Daemon bench (campaign/serve): burst throughput and completion latency of
# the scheduling daemon at --jobs 1/2/8, cold vs warm result cache.  Writes
# results/BENCH_serve.json; every row must report a byte-identical response
# stream and a fully-cached warm pass.
bench-serve: build
	dune exec bench/main.exe -- --only-serve
	test -s results/BENCH_serve.json
	jq -e '.bench == "serve" and (.entries | length > 0) and ([.entries[] | .identical] | all) and ([.entries[] | select(.phase == "warm") | .computed == 0] | all)' results/BENCH_serve.json > /dev/null
	@echo "bench-serve OK"

# End-to-end smoke of the scheduling daemon: a fixed-seed DAG through every
# algorithm selector, piped through `serve` at --jobs 1 and 2 — the response
# streams must be byte-identical to each other, to a doubled (warm-cache)
# replay, and to the committed golden transcript.
serve-smoke: build
	mkdir -p $(TMP)
	dune exec bin/memsched_cli.exe -- generate daggen --size 20 --seed 2014 -o $(TMP)/serve_dag.txt 2> /dev/null
	dune exec bin/memsched_cli.exe -- serve-req $(TMP)/serve_dag.txt --algo memheft --id 1 --m-blue 80 --m-red 80 -o $(TMP)/serve_req.bin
	dune exec bin/memsched_cli.exe -- serve-req $(TMP)/serve_dag.txt --algo memminmin --id 2 --m-blue 80 --m-red 80 -o $(TMP)/serve_req.bin --append
	dune exec bin/memsched_cli.exe -- serve-req $(TMP)/serve_dag.txt --algo memmaxmin --id 3 --m-blue 80 --m-red 80 -o $(TMP)/serve_req.bin --append
	dune exec bin/memsched_cli.exe -- serve-req $(TMP)/serve_dag.txt --algo memsufferage --id 4 --m-blue 80 --m-red 80 -o $(TMP)/serve_req.bin --append
	dune exec bin/memsched_cli.exe -- serve-req $(TMP)/serve_dag.txt --algo heft --id 5 -o $(TMP)/serve_req.bin --append
	dune exec bin/memsched_cli.exe -- serve-req $(TMP)/serve_dag.txt --algo minmin --id 6 -o $(TMP)/serve_req.bin --append
	dune exec bin/memsched_cli.exe -- serve-req $(TMP)/serve_dag.txt --algo maxmin --id 7 -o $(TMP)/serve_req.bin --append
	dune exec bin/memsched_cli.exe -- serve-req $(TMP)/serve_dag.txt --algo sufferage --id 8 -o $(TMP)/serve_req.bin --append
	dune exec bin/memsched_cli.exe -- serve-req $(TMP)/serve_dag.txt --algo multistart --id 9 --seed 2014 --restarts 4 --m-blue 80 --m-red 80 -o $(TMP)/serve_req.bin --append
	dune exec bin/memsched_cli.exe -- serve-req $(TMP)/serve_dag.txt --algo exact --id 10 --node-limit 5000 --m-blue 80 --m-red 80 -o $(TMP)/serve_req.bin --append
	dune exec bin/memsched_cli.exe -- serve --jobs 1 -q < $(TMP)/serve_req.bin > $(TMP)/serve_out1.bin
	dune exec bin/memsched_cli.exe -- serve --jobs 2 -q < $(TMP)/serve_req.bin > $(TMP)/serve_out2.bin
	cmp $(TMP)/serve_out1.bin $(TMP)/serve_out2.bin
	cat $(TMP)/serve_req.bin $(TMP)/serve_req.bin | dune exec bin/memsched_cli.exe -- serve --jobs 2 -q > $(TMP)/serve_double.bin
	cat $(TMP)/serve_out1.bin $(TMP)/serve_out1.bin | cmp - $(TMP)/serve_double.bin
	cmp $(TMP)/serve_out1.bin test/golden/serve_smoke.bin
	dune exec bin/memsched_cli.exe -- serve-show test/golden/serve_smoke.bin > /dev/null
	@echo "serve-smoke OK"

# Online-scenario bench (campaign/online): plan under jittered arrivals,
# replay the committed schedule over the noise-seed x policy grid at
# --jobs 1/2/8.  Every row must report a byte-identical CSV digest, and the
# seed-order shuffle row pins the seed-list invariance of the grid.
bench-online-smoke: build
	dune exec bench/main.exe -- --quick --only-online
	test -s results/BENCH_online.json
	jq -e '.bench == "online" and (.entries | length > 0) and ([.entries[] | .identical] | all)' results/BENCH_online.json > /dev/null
	@echo "bench-online-smoke OK"

# End-to-end smoke of the online scenario layer: a fixed-seed DAG planned
# under jittered arrivals and replayed under 6 noise seeds with both
# rescheduling policies, at --jobs 1 and 2 — the degradation CSVs must be
# byte-identical to each other and to the committed golden file.
online-smoke: build
	mkdir -p $(TMP)
	dune exec bin/memsched_cli.exe -- generate daggen --size 25 --seed 2014 -o $(TMP)/online_dag.txt 2> /dev/null
	dune exec bin/memsched_cli.exe -- online $(TMP)/online_dag.txt --arrival jittered --gap 1.5 --arrival-seed 5 --level 0.3 --seeds 6 --m-blue 90 --m-red 90 --jobs 1 -o $(TMP)/online_out1.csv 2> /dev/null
	dune exec bin/memsched_cli.exe -- online $(TMP)/online_dag.txt --arrival jittered --gap 1.5 --arrival-seed 5 --level 0.3 --seeds 6 --m-blue 90 --m-red 90 --jobs 2 -o $(TMP)/online_out2.csv 2> /dev/null
	cmp $(TMP)/online_out1.csv $(TMP)/online_out2.csv
	cmp $(TMP)/online_out1.csv test/golden/online_smoke.csv
	@echo "online-smoke OK"

# Typed-lint bench (campaign/lint): cold vs content-addressed-cache warm
# wall-time of the interprocedural pass over the repo's own cmts, findings
# count, and the --jobs 1/2/8 byte-identity sweep.  Writes
# results/BENCH_lint.json; warm rows must be fully cache-served
# (extracted = 0) and byte-identical to the cold report.
bench-lint: build
	dune build @check
	dune exec bench/main.exe -- --only-lint

bench-lint-smoke: build
	dune build @check
	dune exec bench/main.exe -- --quick --only-lint
	test -s results/BENCH_lint.json
	jq -e '.bench == "lint" and (.entries | length > 0) and ([.entries[] | .identical] | all) and ([.entries[] | select(.phase == "warm") | .extracted == 0] | all)' results/BENCH_lint.json > /dev/null
	@echo "bench-lint-smoke OK"

# Fixed-seed differential-fuzzing smoke run: 500 cases through the whole
# oracle registry (lib/check), on the parallel runtime.  Any violation
# exits non-zero and serialises the shrunk instance into test/corpus/.
fuzz-smoke: build
	dune exec bin/memsched_cli.exe -- check --cases 500 --seed 42 --jobs 2

# Tier-1 verification plus a smoke run of the parallel runtime: the CLI is
# driven end-to-end with --jobs 2 (multistart over the domain pool, then a
# figure regeneration), so the parallel path is exercised on every run.
verify: build lint test bench-smoke bench-hotpath-smoke bench-sim-smoke bench-exact-smoke bench-online-smoke bench-lint-smoke serve-smoke online-smoke fuzz-smoke
	mkdir -p $(TMP)
	dune exec bin/memsched_cli.exe -- generate daggen --size 30 --seed 2014 -o $(TMP)/dag.txt
	dune exec bin/memsched_cli.exe -- schedule $(TMP)/dag.txt -H memheft --restarts 8 --jobs 2
	dune exec bin/memsched_cli.exe -- experiment figure14 --jobs 2 --out-dir $(TMP)/results
	@echo "verify OK"

clean:
	dune clean
	rm -rf /tmp/memsched-verify
