TMP ?= /tmp/memsched-verify

.PHONY: all build test lint lint-json bench bench-smoke bench-exact bench-exact-smoke fuzz-smoke verify clean

all: build

build:
	dune build @all

test:
	dune runtest

# Static analysis (lib/lint): determinism / float-discipline / domain-safety /
# io-purity / order-stability over bench/ bin/ lib/ test/.  Exits non-zero on
# any finding outside lint.allowlist or an inline pragma.
lint: build
	dune exec bin/memsched_cli.exe -- lint --jobs 2

lint-json: build
	dune exec bin/memsched_cli.exe -- lint --jobs 2 --format json

bench:
	dune exec bench/main.exe

# Smoke run of the bench harness at quick scale: the campaign/hotpath
# section must produce a well-formed results/BENCH_hotpath.json.
bench-smoke: build
	dune exec bench/main.exe -- --quick --skip-figures
	test -s results/BENCH_hotpath.json
	jq -e '.bench == "hotpath" and (.entries | length > 0)' results/BENCH_hotpath.json > /dev/null
	@echo "bench-smoke OK"

# Exact-baseline bench (campaign/exact): node throughput of the commit/undo
# branch-and-bound vs the per-node-copy reference, warm vs cold node LPs,
# and the --jobs determinism sweep.  Writes results/BENCH_exact.json.
bench-exact: build
	dune exec bench/main.exe -- --only-exact

bench-exact-smoke: build
	dune exec bench/main.exe -- --quick --only-exact
	test -s results/BENCH_exact.json
	jq -e '.bench == "exact" and (.entries | length > 0) and ([.entries[] | select(.section == "jobs") | .identical] | all)' results/BENCH_exact.json > /dev/null
	@echo "bench-exact-smoke OK"

# Fixed-seed differential-fuzzing smoke run: 500 cases through the whole
# oracle registry (lib/check), on the parallel runtime.  Any violation
# exits non-zero and serialises the shrunk instance into test/corpus/.
fuzz-smoke: build
	dune exec bin/memsched_cli.exe -- check --cases 500 --seed 42 --jobs 2

# Tier-1 verification plus a smoke run of the parallel runtime: the CLI is
# driven end-to-end with --jobs 2 (multistart over the domain pool, then a
# figure regeneration), so the parallel path is exercised on every run.
verify: build lint test bench-smoke bench-exact-smoke fuzz-smoke
	mkdir -p $(TMP)
	dune exec bin/memsched_cli.exe -- generate daggen --size 30 --seed 2014 -o $(TMP)/dag.txt
	dune exec bin/memsched_cli.exe -- schedule $(TMP)/dag.txt -H memheft --restarts 8 --jobs 2
	dune exec bin/memsched_cli.exe -- experiment figure14 --jobs 2 --out-dir $(TMP)/results
	@echo "verify OK"

clean:
	dune clean
	rm -rf /tmp/memsched-verify
