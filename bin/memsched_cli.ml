(* memsched: command-line front-end.

   Subcommands:
     generate    build a DAG (random / LU / Cholesky / the paper's toy) and
                 write it in the text format or as DOT
     schedule    run a heuristic on a DAG file and print the schedule,
                 Gantt chart and validation report
     exact       run the exact branch-and-bound scheduler
     export-lp   write the paper's ILP for an instance in CPLEX-LP format
     experiment  regenerate a table/figure of the paper
     check       seeded differential-fuzzing campaign over the oracle
                 registry (lib/check), with shrinking + corpus capture
     lint        compiler-libs static analysis enforcing the repo's
                 determinism / float-discipline / domain-safety /
                 io-purity / order-stability invariants (lib/lint)
     serve       persistent scheduling daemon: length-prefixed binary
                 requests in (stdin or a unix socket), responses out,
                 sharded over the domain pool with an LRU result cache
     serve-req   build binary request frames for the daemon from DAG files
     serve-show  decode a file of frames into human-readable text
     online      plan with online arrivals, replay the committed schedule
                 under perturbed realized costs, report degradation CSV *)

open Cmdliner

(* ------------------------------------------------------------ common args *)

let jobs_term =
  let jobs_conv =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | _ -> Error (`Msg "expected a positive integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt jobs_conv (Par.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel runtime (default: number of recognised CPUs; 1 = the \
           serial code path).  Results are bit-identical for every value.")

let platform_term =
  let p_blue =
    Arg.(value & opt int 2 & info [ "p-blue" ] ~docv:"N" ~doc:"Number of blue (CPU) processors.")
  in
  let p_red =
    Arg.(value & opt int 2 & info [ "p-red" ] ~docv:"N" ~doc:"Number of red (GPU) processors.")
  in
  let m_blue =
    Arg.(
      value
      & opt float infinity
      & info [ "m-blue" ] ~docv:"MEM" ~doc:"Blue memory capacity (default unbounded).")
  in
  let m_red =
    Arg.(
      value
      & opt float infinity
      & info [ "m-red" ] ~docv:"MEM" ~doc:"Red memory capacity (default unbounded).")
  in
  let make p_blue p_red m_blue m_red = Platform.make ~p_blue ~p_red ~m_blue ~m_red in
  Term.(const make $ p_blue $ p_red $ m_blue $ m_red)

let read_dag path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  Dag.of_string s

let output_string_to path s =
  match path with
  | None -> print_string s
  | Some path ->
    let oc = open_out path in
    output_string oc s;
    close_out oc

(* --------------------------------------------------------------- generate *)

let generate_cmd =
  let kind =
    Arg.(
      required
      & pos 0 (some (enum [ ("daggen", `Daggen); ("lu", `Lu); ("cholesky", `Cholesky); ("dex", `Dex) ])) None
      & info [] ~docv:"KIND" ~doc:"One of: daggen, lu, cholesky, dex.")
  in
  let size = Arg.(value & opt int 30 & info [ "size"; "n" ] ~docv:"N" ~doc:"Task count (daggen) or tile count (lu/cholesky).") in
  let width = Arg.(value & opt float 0.3 & info [ "width" ] ~doc:"daggen width parameter in (0,1].") in
  let density = Arg.(value & opt float 0.5 & info [ "density" ] ~doc:"daggen density parameter in [0,1].") in
  let jumps = Arg.(value & opt int 5 & info [ "jumps" ] ~doc:"daggen maximum level jump.") in
  let seed = Arg.(value & opt int 2014 & info [ "seed" ] ~doc:"Random seed.") in
  let dot = Arg.(value & flag & info [ "dot" ] ~doc:"Emit GraphViz DOT instead of the text format.") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout by default).") in
  let run kind size width density jumps seed dot out =
    let g =
      match kind with
      | `Dex -> Toy.dex ()
      | `Lu -> Lu.generate ~n:size ()
      | `Cholesky -> Cholesky.generate ~n:size ()
      | `Daggen ->
        let params =
          {
            Daggen.small_rand_params with
            Daggen.size;
            Daggen.width;
            Daggen.density;
            Daggen.jumps;
          }
        in
        Daggen.generate (Rng.create seed) params
    in
    output_string_to out (if dot then Dag.to_dot g else Dag.to_string g);
    Format.eprintf "%a@." Dag.pp_stats g
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a task graph.")
    Term.(const run $ kind $ size $ width $ density $ jumps $ seed $ dot $ out)

(* --------------------------------------------------------------- schedule *)

let heuristic_conv =
  Arg.enum
    [ ("heft", Heuristics.HEFT); ("minmin", Heuristics.MinMin); ("memheft", Heuristics.MemHEFT);
      ("memminmin", Heuristics.MemMinMin); ("maxmin", Heuristics.MaxMin);
      ("sufferage", Heuristics.Sufferage); ("memmaxmin", Heuristics.MemMaxMin);
      ("memsufferage", Heuristics.MemSufferage) ]

let schedule_cmd =
  let dag = Arg.(required & pos 0 (some file) None & info [] ~docv:"DAG" ~doc:"DAG file (text format).") in
  let heuristic =
    Arg.(
      value
      & opt heuristic_conv Heuristics.MemHEFT
      & info [ "heuristic"; "H" ]
          ~doc:"heft | minmin | memheft | memminmin | maxmin | sufferage | memmaxmin | memsufferage.")
  in
  let gantt = Arg.(value & flag & info [ "gantt" ] ~doc:"Print an ASCII Gantt chart.") in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print schedule statistics.") in
  let restarts =
    Arg.(
      value & opt int 0
      & info [ "restarts" ] ~docv:"K"
          ~doc:"MemHEFT only: additionally try $(docv) randomly tie-broken passes and keep the best.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the schedule to a file.")
  in
  let run platform dag heuristic gantt stats restarts jobs out =
    let g = read_dag dag in
    let result =
      if restarts > 0 && heuristic = Heuristics.MemHEFT then begin
        let m =
          Par.with_pool ~jobs (fun pool -> Multistart.memheft ~pool ~restarts g platform)
        in
        Printf.printf "multistart: %d/%d runs feasible\n" m.Multistart.n_feasible
          m.Multistart.n_runs;
        m.Multistart.best
      end
      else Heuristics.run heuristic g platform
    in
    match result with
    | Error f ->
      Printf.printf "infeasible: %s\n" f.Heuristics.reason;
      `Ok ()
    | Ok s ->
      let check_platform =
        if Heuristics.is_memory_aware heuristic then platform
        else Platform.with_bounds platform ~m_blue:infinity ~m_red:infinity
      in
      (match Validator.validate g check_platform s with
      | Ok r ->
        Printf.printf "%s: makespan=%g peaks=(%g, %g)\n"
          (Heuristics.name_to_string heuristic)
          r.Validator.makespan r.Validator.peak_blue r.Validator.peak_red
      | Error errs -> List.iter print_endline errs);
      if gantt then print_string (Gantt.render g platform s);
      if stats then Format.printf "%a@." Sched_stats.pp (Sched_stats.compute g check_platform s);
      Option.iter (Schedule_io.write s) out;
      `Ok ()
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Schedule a DAG with one of the list heuristics.")
    Term.(
      ret (const run $ platform_term $ dag $ heuristic $ gantt $ stats $ restarts $ jobs_term $ out))

(* --------------------------------------------------------------- validate *)

let validate_cmd =
  let dag = Arg.(required & pos 0 (some file) None & info [] ~docv:"DAG" ~doc:"DAG file.") in
  let sched = Arg.(required & pos 1 (some file) None & info [] ~docv:"SCHEDULE" ~doc:"Schedule file.") in
  let run platform dag sched jobs =
    let g = read_dag dag in
    let s = Schedule_io.read g sched in
    let result =
      if jobs > 1 then Par.with_pool ~jobs (fun pool -> Validator.validate ~pool g platform s)
      else Validator.validate g platform s
    in
    match result with
    | Ok r ->
      Printf.printf "valid: makespan=%g peaks=(%g, %g)\n" r.Validator.makespan r.Validator.peak_blue
        r.Validator.peak_red;
      `Ok ()
    | Error errs ->
      List.iter print_endline errs;
      `Error (false, "schedule is invalid")
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Re-check a stored schedule against the full model oracle. The report is byte-identical \
          for every $(b,--jobs) value.")
    Term.(ret (const run $ platform_term $ dag $ sched $ jobs_term))

(* ------------------------------------------------------------------ exact *)

let exact_cmd =
  let dag = Arg.(required & pos 0 (some file) None & info [] ~docv:"DAG" ~doc:"DAG file.") in
  let nodes = Arg.(value & opt int 2_000_000 & info [ "node-limit" ] ~doc:"Branch-and-bound node budget.") in
  let run platform dag nodes jobs =
    let g = read_dag dag in
    let r =
      if jobs > 1 then Par.with_pool ~jobs (fun pool -> Exact.solve ~pool ~node_limit:nodes g platform)
      else Exact.solve ~node_limit:nodes g platform
    in
    let status =
      match r.Exact.status with
      | Exact.Proven_optimal -> "optimal"
      | Exact.Feasible -> "feasible (node budget hit)"
      | Exact.Proven_infeasible -> "infeasible"
      | Exact.Unknown -> "unknown (node budget hit)"
    in
    Printf.printf "status: %s\nnodes: %d\n" status r.Exact.nodes;
    if not (Float.is_nan r.Exact.makespan) then Printf.printf "makespan: %g\n" r.Exact.makespan;
    if not (Float.is_nan r.Exact.best_bound) then begin
      Printf.printf "best bound: %g\n" r.Exact.best_bound;
      match r.Exact.status with
      | Exact.Feasible when r.Exact.makespan > 0. ->
        Printf.printf "gap: %.2f%%\n"
          (100. *. (r.Exact.makespan -. r.Exact.best_bound) /. r.Exact.makespan)
      | _ -> ()
    end
  in
  Cmd.v
    (Cmd.info "exact" ~doc:"Exact branch-and-bound scheduling (small instances).")
    Term.(const run $ platform_term $ dag $ nodes $ jobs_term)

(* -------------------------------------------------------------- export-lp *)

let export_lp_cmd =
  let dag = Arg.(required & pos 0 (some file) None & info [] ~docv:"DAG" ~doc:"DAG file.") in
  let out = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"LP file (stdout by default).") in
  let run platform dag out =
    let g = read_dag dag in
    let platform =
      (* The ILP needs finite capacities; cap by the total file size. *)
      let cap m = if Float.equal m infinity then Dag.total_file_size g else m in
      Platform.with_bounds platform
        ~m_blue:(cap (Platform.capacity platform Platform.Blue))
        ~m_red:(cap (Platform.capacity platform Platform.Red))
    in
    let model = Ilp_model.build g platform in
    output_string_to out (Lp_format.to_string (Ilp_model.lp model));
    Format.eprintf "ILP: %d variables, %d constraints@." (Ilp_model.n_vars model)
      (Ilp_model.n_constrs model)
  in
  Cmd.v
    (Cmd.info "export-lp" ~doc:"Write the paper's ILP in CPLEX-LP format.")
    Term.(const run $ platform_term $ dag $ out)

(* ------------------------------------------------------------------ check *)

let check_cmd =
  let cases =
    Arg.(value & opt int 200 & info [ "cases"; "n" ] ~docv:"N" ~doc:"Number of fuzz cases.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Campaign seed.") in
  let oracle =
    Arg.(
      value
      & opt (some string) None
      & info [ "oracle" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Run a single oracle instead of the full registry (one of: %s)."
               (String.concat ", " Fuzz_oracle.names)))
  in
  let eps =
    Arg.(
      value
      & opt float Fuzz_oracle.default_config.Fuzz_oracle.eps
      & info [ "eps" ] ~docv:"EPS" ~doc:"Validation / comparison tolerance.")
  in
  let no_shrink =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Report failures without minimising them.")
  in
  let corpus_dir =
    Arg.(
      value
      & opt string "test/corpus"
      & info [ "corpus-dir" ] ~docv:"DIR"
          ~doc:"Directory where shrunk failures are serialised for replay.")
  in
  let run cases seed oracle eps no_shrink corpus_dir jobs =
    let oracles =
      match oracle with
      | None -> Ok Fuzz_oracle.all
      | Some name -> (
        match Fuzz_oracle.find name with
        | Some o -> Ok [ o ]
        | None ->
          Error
            (Printf.sprintf "unknown oracle %S (expected one of: %s)" name
               (String.concat ", " Fuzz_oracle.names)))
    in
    match oracles with
    | Error msg -> `Error (false, msg)
    | Ok oracles ->
      let config = { Fuzz_oracle.default_config with Fuzz_oracle.eps } in
      let report =
        Par.with_pool ~jobs (fun pool ->
            Check.run ~pool ~config ~oracles ~shrink:(not no_shrink) ~cases ~seed ())
      in
      print_string (Check.render report);
      if Check.ok report then `Ok ()
      else begin
        let paths = Check.save_failures ~dir:corpus_dir report in
        List.iter (Printf.eprintf "corpus entry written: %s\n") paths;
        `Error (false, "oracle violations found")
      end
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Differential fuzzing: run the property-oracle registry on seeded random instances.")
    Term.(ret (const run $ cases $ seed $ oracle $ eps $ no_shrink $ corpus_dir $ jobs_term))

(* ------------------------------------------------------------------- lint *)

let lint_cmd =
  let root =
    Arg.(
      value & opt dir "."
      & info [ "root" ] ~docv:"DIR" ~doc:"Repository root to lint (expects lib/, bin/, ... below it).")
  in
  let rules =
    Arg.(
      value
      & opt_all string []
      & info [ "rule" ] ~docv:"ID"
          ~doc:
            (Printf.sprintf "Run only this rule (repeatable; default: all of %s)."
               (String.concat ", " Lint_rules.names)))
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")
  in
  let typed =
    Arg.(
      value & flag
      & info [ "typed" ]
          ~doc:
            (Printf.sprintf
               "Also run the typed interprocedural pass over the .cmt artifacts (rules: %s); \
                build them first with `dune build @check`."
               (String.concat ", " Lint_typed_rules.names)))
  in
  let effects_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "effects-json" ] ~docv:"FILE"
          ~doc:
            "Write the per-function inferred-effect summary (effect kinds plus witness chains) \
             as JSON to $(docv).  Implies $(b,--typed).")
  in
  let debt =
    Arg.(
      value & flag
      & info [ "debt" ]
          ~doc:
            "Print the suppression-debt report (inline pragma and allowlist census by rule) \
             instead of linting; always exits 0.")
  in
  let all_rule_names = List.sort String.compare (Lint_rules.names @ Lint_typed_rules.names) in
  let run root rule_ids format typed effects_json debt jobs =
    if debt then (
      match Lint_engine.debt ~root () with
      | Error msg -> `Error (false, msg)
      | Ok d ->
        (match format with
        | `Text -> print_string (Lint_engine.render_debt_text d)
        | `Json -> print_string (Lint_engine.render_debt_json d));
        `Ok ())
    else
      match
        List.find_opt (fun id -> not (List.mem id all_rule_names)) rule_ids
      with
      | Some id ->
        `Error
          ( false,
            Printf.sprintf "unknown rule %S (expected one of: %s)" id
              (String.concat ", " all_rule_names) )
      | None -> (
        let syntactic_sel = List.filter_map Lint_rules.find rule_ids in
        let typed_sel = List.filter (fun id -> List.mem id Lint_typed_rules.names) rule_ids in
        let rules = if rule_ids = [] then Lint_rules.all else syntactic_sel in
        (* an explicitly selected typed rule or an effects dump turns the
           typed pass on even without --typed *)
        let typed = typed || effects_json <> None || typed_sel <> [] in
        let no_syntactic = match syntactic_sel with [] -> true | _ :: _ -> false in
        let syntactic =
          if rule_ids <> [] && no_syntactic then Ok []
          else Lint_engine.run ~rules ~jobs ~root ()
        in
        match syntactic with
        | Error msg -> `Error (false, msg)
        | Ok syntactic_findings -> (
          let typed_result =
            if not typed then Ok ([], None)
            else
              match Lint_engine.run_typed ~jobs ~root () with
              | Error msg -> Error msg
              | Ok (findings, pg, stats) ->
                Printf.eprintf "lint: typed pass over %d modules (%d cached, %d extracted%s)\n%!"
                  stats.Lint_engine.tp_modules stats.Lint_engine.tp_from_cache
                  stats.Lint_engine.tp_extracted
                  (if stats.Lint_engine.tp_stale > 0 then
                     Printf.sprintf ", %d stale skipped" stats.Lint_engine.tp_stale
                   else "");
                let findings =
                  if typed_sel = [] then findings
                  else
                    List.filter
                      (fun (f : Lint_finding.t) -> List.mem f.Lint_finding.rule typed_sel)
                      findings
                in
                Ok (findings, Some pg)
          in
          match typed_result with
          | Error msg -> `Error (false, msg)
          | Ok (typed_findings, pg) ->
            (match (effects_json, pg) with
            | Some path, Some pg ->
              let oc = open_out path in
              output_string oc (Lint_typed_rules.effects_json pg);
              close_out oc
            | _ -> ());
            let findings =
              List.sort_uniq Lint_finding.compare (syntactic_findings @ typed_findings)
            in
            (match format with
            | `Text -> print_string (Lint_engine.render_text findings)
            | `Json -> print_string (Lint_engine.render_json findings));
            if findings = [] then `Ok () else Stdlib.exit 1))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis (compiler-libs): enforce the determinism, float-discipline, \
          domain-safety, io-purity and order-stability invariants, plus (with $(b,--typed)) the \
          typed interprocedural domain-race / poly-compare / effect-purity rules over the .cmt \
          call graph.  Exit code 1 on findings.")
    Term.(ret (const run $ root $ rules $ format $ typed $ effects_json $ debt $ jobs_term))

(* ------------------------------------------------------------------ serve *)

let serve_algo_conv =
  Arg.enum
    [ ("heft", Wire.Heuristic Heuristics.HEFT); ("minmin", Wire.Heuristic Heuristics.MinMin);
      ("memheft", Wire.Heuristic Heuristics.MemHEFT);
      ("memminmin", Wire.Heuristic Heuristics.MemMinMin);
      ("maxmin", Wire.Heuristic Heuristics.MaxMin);
      ("sufferage", Wire.Heuristic Heuristics.Sufferage);
      ("memmaxmin", Wire.Heuristic Heuristics.MemMaxMin);
      ("memsufferage", Wire.Heuristic Heuristics.MemSufferage);
      ("multistart", Wire.Multistart); ("exact", Wire.Exact) ]

let algo_to_string = function
  | Wire.Heuristic h -> Heuristics.name_to_string h
  | Wire.Multistart -> "multistart"
  | Wire.Exact -> "exact"

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a unix-domain socket at $(docv) instead of serving stdin/stdout.  \
             Connections are served one after another with a shared pool and warm cache, until \
             SIGINT.")
  in
  let cache_entries =
    Arg.(
      value & opt int 4096
      & info [ "cache-entries" ] ~docv:"N" ~doc:"Result-cache capacity in entries.")
  in
  let cache_bytes =
    Arg.(
      value
      & opt int (64 * 1024 * 1024)
      & info [ "cache-bytes" ] ~docv:"B" ~doc:"Result-cache capacity in response-body bytes.")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the result cache (recompute every request).")
  in
  let max_inflight =
    Arg.(
      value & opt int 64
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Bound on responses buffered for in-order emission before reading stalls.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Do not print the counters summary to stderr.")
  in
  let run jobs socket cache_entries cache_bytes no_cache max_inflight quiet =
    let stop_flag = Atomic.make false in
    Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set stop_flag true));
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let stop () = Atomic.get stop_flag in
    let cache =
      if no_cache then None
      else Some (Serve_cache.create ~max_entries:cache_entries ~max_bytes:cache_bytes ())
    in
    let report c = if not quiet then Format.eprintf "serve: %a@." Server.pp_counters c in
    Par.with_pool ~jobs @@ fun pool ->
    match socket with
    | None ->
      report (Server.serve ~pool ?cache ~max_inflight ~stop ~input:Unix.stdin ~output:Unix.stdout ())
    | Some path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept_loop () =
        if not (stop ()) then
          match Unix.accept sock with
          | fd, _ ->
            report (Server.serve ~pool ?cache ~max_inflight ~stop ~input:fd ~output:fd ());
            (try Unix.close fd with Unix.Unix_error _ -> ());
            accept_loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      in
      accept_loop ();
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Persistent scheduling daemon: length-prefixed binary request frames in, response frames \
          out, in request order.  Identical request bytes always produce identical response \
          bytes, for every --jobs value and cache state.")
    Term.(
      const run $ jobs_term $ socket $ cache_entries $ cache_bytes $ no_cache $ max_inflight
      $ quiet)

let serve_req_cmd =
  let dags =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"DAG" ~doc:"DAG files (one request frame per file, in argument order).")
  in
  let algo =
    Arg.(
      value
      & opt serve_algo_conv (Wire.Heuristic Heuristics.MemHEFT)
      & info [ "algo"; "H" ]
          ~doc:
            "heft | minmin | memheft | memminmin | maxmin | sufferage | memmaxmin | memsufferage \
             | multistart | exact.")
  in
  let id =
    Arg.(
      value & opt int64 1L
      & info [ "id" ] ~docv:"N" ~doc:"Id of the first request; later files count up from it.")
  in
  let seed =
    Arg.(value & opt int64 2014L & info [ "seed" ] ~docv:"S" ~doc:"Multistart tie-breaking seed.")
  in
  let restarts =
    Arg.(
      value & opt int 8
      & info [ "restarts" ] ~docv:"K" ~doc:"Multistart passes beyond the deterministic one.")
  in
  let node_limit =
    Arg.(value & opt int 200_000 & info [ "node-limit" ] ~docv:"N" ~doc:"Exact-solver node budget.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Append a stats-request frame after the request frames.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout by default).")
  in
  let append =
    Arg.(value & flag & info [ "append" ] ~doc:"Append to the output file instead of truncating.")
  in
  let run platform dags algo id seed restarts node_limit stats out append =
    let buf = Buffer.create 4096 in
    List.iteri
      (fun i path ->
        let req =
          {
            Wire.id = Int64.add id (Int64.of_int i);
            algo;
            seed;
            restarts;
            node_limit;
            platform;
            dag = read_dag path;
          }
        in
        Buffer.add_string buf (Wire.frame (Wire.encode_message (Wire.Request req))))
      dags;
    if stats then begin
      let sid = Int64.add id (Int64.of_int (List.length dags)) in
      Buffer.add_string buf (Wire.frame (Wire.encode_message (Wire.Stats_request sid)))
    end;
    match out with
    | None ->
      set_binary_mode_out stdout true;
      print_string (Buffer.contents buf)
    | Some path ->
      let flags =
        if append then [ Open_wronly; Open_creat; Open_append; Open_binary ]
        else [ Open_wronly; Open_creat; Open_trunc; Open_binary ]
      in
      let oc = open_out_gen flags 0o644 path in
      output_string oc (Buffer.contents buf);
      close_out oc
  in
  Cmd.v
    (Cmd.info "serve-req" ~doc:"Build binary request frames for the scheduling daemon.")
    Term.(
      const run $ platform_term $ dags $ algo $ id $ seed $ restarts $ node_limit $ stats $ out
      $ append)

let serve_show_cmd =
  let file =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Frame file, requests or responses (stdin by default).")
  in
  let pp_proof = function
    | Wire.Heuristic_result -> ""
    | Wire.Exact_optimal { nodes; bound } -> Printf.sprintf " optimal nodes=%d bound=%g" nodes bound
    | Wire.Exact_budget { nodes; bound } ->
      Printf.sprintf " budget-hit nodes=%d bound=%g" nodes bound
  in
  let pp_message = function
    | Wire.Request r ->
      Printf.printf "#%Ld request %s tasks=%d edges=%d seed=%Ld restarts=%d node-limit=%d\n"
        r.Wire.id (algo_to_string r.Wire.algo) (Dag.n_tasks r.Wire.dag) (Dag.n_edges r.Wire.dag)
        r.Wire.seed r.Wire.restarts r.Wire.node_limit
    | Wire.Stats_request id -> Printf.printf "#%Ld stats-request\n" id
    | Wire.Response { rid; body } -> (
      match body with
      | Wire.Schedule b ->
        Printf.printf "#%Ld %s: makespan=%g peaks=(%g, %g)%s\n" rid (algo_to_string b.Wire.r_algo)
          b.Wire.makespan b.Wire.peak_blue b.Wire.peak_red (pp_proof b.Wire.proof)
      | Wire.Infeasible { n_scheduled; reason } ->
        Printf.printf "#%Ld infeasible after %d tasks: %s\n" rid n_scheduled reason
      | Wire.Failure { code; message } -> Printf.printf "#%Ld error %d: %s\n" rid code message
      | Wire.Stats_reply s ->
        Printf.printf "#%Ld stats: requests=%d hits=%d misses=%d computed=%d errors=%d\n" rid
          s.Wire.requests s.Wire.cache_hits s.Wire.cache_misses s.Wire.computed s.Wire.errors)
  in
  let run file =
    let s =
      match file with
      | Some path ->
        let ic = open_in_bin path in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      | None ->
        set_binary_mode_in stdin true;
        let b = Buffer.create 4096 in
        (try
           while true do
             Buffer.add_channel b stdin 1
           done
         with End_of_file -> ());
        Buffer.contents b
    in
    match Wire.decode_stream s with
    | Ok msgs ->
      List.iter pp_message msgs;
      `Ok ()
    | Error e -> `Error (false, Wire.error_to_string e)
  in
  Cmd.v
    (Cmd.info "serve-show" ~doc:"Decode a file of daemon frames into human-readable text.")
    Term.(ret (const run $ file))

(* ----------------------------------------------------------------- online *)

let online_cmd =
  let dag =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"DAG" ~doc:"DAG file (text format).")
  in
  let algo =
    Arg.(
      value
      & opt (enum [ ("memheft", Online.Heft_like); ("memminmin", Online.Minmin_like) ]) Online.Heft_like
      & info [ "algo" ] ~docv:"ALGO" ~doc:"Online heuristic: memheft or memminmin.")
  in
  let arrival =
    Arg.(
      value
      & opt (enum [ ("batch", `Batch); ("layered", `Layered); ("jittered", `Jittered) ]) `Batch
      & info [ "arrival" ] ~docv:"PROC"
          ~doc:"Arrival process: batch (all at t=0), layered or jittered.")
  in
  let gap =
    Arg.(
      value
      & opt float 1.0
      & info [ "gap" ] ~docv:"T" ~doc:"Release gap per DAG layer (layered/jittered).")
  in
  let arrival_seed =
    Arg.(value & opt int 0 & info [ "arrival-seed" ] ~docv:"S" ~doc:"Jitter seed (jittered).")
  in
  let level =
    Arg.(
      value
      & opt float 0.2
      & info [ "level" ] ~docv:"L" ~doc:"Multiplicative noise level on realized costs.")
  in
  let seeds =
    Arg.(value & opt int 8 & info [ "seeds" ] ~docv:"N" ~doc:"Replay under noise seeds 0..N-1.")
  in
  let policies =
    Arg.(
      value
      & opt
          (enum
             [ ("norepair", [ Replay.No_repair ]); ("rerank", [ Replay.Rerank_repair ]);
               ("both", [ Replay.No_repair; Replay.Rerank_repair ]) ])
          [ Replay.No_repair; Replay.Rerank_repair ]
      & info [ "policy" ] ~docv:"POL" ~doc:"Rescheduling policy: norepair, rerank or both.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"CSV output file (stdout by default).")
  in
  let run platform dag algo arrival gap arrival_seed level seeds policies jobs out =
    if not (gap >= 0.) then `Error (false, "expected a non-negative --gap")
    else if not (level >= 0.) then `Error (false, "expected a non-negative --level")
    else if seeds < 1 then `Error (false, "expected at least one noise seed")
    else begin
      let g = read_dag dag in
      let arrival =
        match arrival with
        | `Batch -> Arrival.Batch
        | `Layered -> Arrival.Layered { gap }
        | `Jittered -> Arrival.Jittered { gap; seed = arrival_seed }
      in
      let cfg =
        { Scenario.default_config with
          Scenario.algo;
          arrival;
          policies;
          noise_level = level;
          noise_seeds = List.init seeds (fun s -> s) }
      in
      let rows, summaries =
        Par.with_pool ~jobs @@ fun pool ->
        Scenario.run ~pool cfg [ (Filename.basename dag, g) ] platform
      in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf (Csv.row_to_string Scenario.csv_header);
      Buffer.add_char buf '\n';
      List.iter
        (fun r ->
          Buffer.add_string buf (Csv.row_to_string (Scenario.csv_row cfg r));
          Buffer.add_char buf '\n')
        rows;
      output_string_to out (Buffer.contents buf);
      List.iter
        (fun s ->
          Format.eprintf "%s %s: %d ok, %d failed, makespan ratio p50 %g p95 %g max %g@."
            s.Scenario.s_instance
            (Replay.policy_label s.Scenario.s_policy)
            s.Scenario.s_ok s.Scenario.s_failed s.Scenario.s_mk_p50 s.Scenario.s_mk_p95
            s.Scenario.s_mk_max)
        summaries;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "online"
       ~doc:
         "Plan with online arrivals, replay the committed schedule under perturbed realized \
          costs, and report the degradation distribution as CSV.")
    Term.(
      ret
        (const run $ platform_term $ dag $ algo $ arrival $ gap $ arrival_seed $ level $ seeds
        $ policies $ jobs_term $ out))

(* ------------------------------------------------------------- experiment *)

let experiment_cmd =
  let which =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("table1", `T1); ("figure8", `F8); ("figure9", `F9); ("figure10", `F10);
                  ("figure11", `F11); ("figure12", `F12); ("figure13", `F13); ("figure14", `F14);
                  ("figure15", `F15); ("ilp", `Ilp); ("ablations", `Abl); ("online", `Online);
                  ("all", `All) ]))
          None
      & info [] ~docv:"WHICH" ~doc:"table1, figure8..figure15, ilp, ablations, online or all.")
  in
  let paper = Arg.(value & flag & info [ "paper" ] ~doc:"Full paper scale (slower).") in
  let out_dir = Arg.(value & opt string "results" & info [ "out-dir" ] ~doc:"CSV output directory.") in
  let run which paper out_dir jobs =
    (* The drivers are silent by default; the CLI is where narration is
       wanted, so wire a printing reporter. *)
    let report s =
      print_string s;
      flush stdout
    in
    Par.with_pool ~jobs @@ fun pool ->
    match which with
    | `T1 -> Figures.table1 ~out_dir ~report ~pool ()
    | `F8 -> Figures.figure8 ~out_dir ~report ()
    | `F9 -> Figures.figure9 ~out_dir ~report ()
    | `F10 ->
      if paper then Figures.figure10 ~out_dir ~report ~pool ()
      else Figures.figure10 ~out_dir ~report ~pool ~count:15 ()
    | `F11 -> Figures.figure11 ~out_dir ~report ~pool ()
    | `F12 ->
      if paper then Figures.figure12 ~out_dir ~report ~pool ()
      else Figures.figure12 ~out_dir ~report ~pool ~count:10 ~size:300 ()
    | `F13 -> Figures.figure13 ~out_dir ~report ~pool ()
    | `F14 -> Figures.figure14 ~out_dir ~report ~pool ()
    | `F15 -> Figures.figure15 ~out_dir ~report ~pool ()
    | `Ilp -> Figures.ilp_cross_check ~out_dir ~report ~pool ()
    | `Abl -> Figures.ablations ~out_dir ~report ~pool ()
    | `Online ->
      if paper then Figures.online_degradation ~out_dir ~report ~pool ()
      else Figures.online_degradation ~out_dir ~report ~pool ~count:4 ~seeds:4 ()
    | `All ->
      if paper then Figures.all_paper ~out_dir ~report ~pool ()
      else Figures.all_quick ~out_dir ~report ~pool ()
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table or figure of the paper.")
    Term.(const run $ which $ paper $ out_dir $ jobs_term)

let () =
  let info =
    Cmd.info "memsched" ~version:"1.0.0"
      ~doc:"Memory-aware list scheduling for hybrid (dual-memory) platforms."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; schedule_cmd; validate_cmd; exact_cmd; export_lp_cmd; check_cmd;
            lint_cmd; serve_cmd; serve_req_cmd; serve_show_cmd; online_cmd; experiment_cmd ]))
