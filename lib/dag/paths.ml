(* Longest-path levels over the CSR rows: one pass of the cached topological
   order, each task's packed adjacency row walked cache-linearly.  Row order
   equals the historical [succ]/[pred] list order, so the [Float.max] folds
   accumulate identically. *)

let bottom_levels g ~node_weight ~edge_weight =
  let n = Dag.n_tasks g in
  let bl = Array.make n 0. in
  let topo = Dag.topological_order g in
  let off = Dag.Csr.succ_off g and eid = Dag.Csr.succ_eid g in
  let dst = Dag.Csr.succ_dst g in
  for k = n - 1 downto 0 do
    let i = topo.(k) in
    let acc = ref 0. in
    for p = off.(i) to off.(i + 1) - 1 do
      acc := Float.max !acc (edge_weight (Dag.edge g eid.(p)) +. bl.(dst.(p)))
    done;
    bl.(i) <- node_weight i +. !acc
  done;
  bl

let top_levels g ~node_weight ~edge_weight =
  let n = Dag.n_tasks g in
  let tl = Array.make n 0. in
  let topo = Dag.topological_order g in
  let off = Dag.Csr.pred_off g and eid = Dag.Csr.pred_eid g in
  let src = Dag.Csr.pred_src g in
  Array.iter
    (fun i ->
      let acc = ref 0. in
      for p = off.(i) to off.(i + 1) - 1 do
        let j = src.(p) in
        acc := Float.max !acc (tl.(j) +. node_weight j +. edge_weight (Dag.edge g eid.(p)))
      done;
      tl.(i) <- !acc)
    topo;
  tl

let critical_parent g ~bottom i =
  let best = ref None in
  List.iter
    (fun e ->
      let c = e.Dag.dst in
      match !best with
      | None -> best := Some c
      | Some b -> if bottom.(c) > bottom.(b) then best := Some c)
    (Dag.succ g i);
  !best
