let bottom_levels g ~node_weight ~edge_weight =
  let n = Dag.n_tasks g in
  let bl = Array.make n 0. in
  let topo = Dag.topological_order g in
  for k = n - 1 downto 0 do
    let i = topo.(k) in
    let from_children =
      List.fold_left (fun acc e -> Float.max acc (edge_weight e +. bl.(e.Dag.dst))) 0. (Dag.succ g i)
    in
    bl.(i) <- node_weight i +. from_children
  done;
  bl

let top_levels g ~node_weight ~edge_weight =
  let n = Dag.n_tasks g in
  let tl = Array.make n 0. in
  let topo = Dag.topological_order g in
  Array.iter
    (fun i ->
      let from_parents =
        List.fold_left
          (fun acc e -> Float.max acc (tl.(e.Dag.src) +. node_weight e.Dag.src +. edge_weight e))
          0. (Dag.pred g i)
      in
      tl.(i) <- from_parents)
    topo;
  tl

let critical_parent g ~bottom i =
  let best = ref None in
  List.iter
    (fun e ->
      let c = e.Dag.dst in
      match !best with
      | None -> best := Some c
      | Some b -> if bottom.(c) > bottom.(b) then best := Some c)
    (Dag.succ g i);
  !best
