(** Application model: a directed acyclic task graph (§3 of the paper).

    Each task [i] carries two processing times, [w_blue] (on a blue / CPU-side
    processor) and [w_red] (on a red / accelerator-side processor).  Each edge
    [(i, j)] carries a data file of size [F(i,j)] produced by [i] and consumed
    by [j], and a transfer time [C(i,j)] paid when [i] and [j] execute on
    different memories.

    Graphs are immutable once finalised; build them with {!Builder}. *)

type task = {
  id : int;
  name : string;
  w_blue : float;  (** processing time on a blue processor, [W^(1)] *)
  w_red : float;  (** processing time on a red processor, [W^(2)] *)
}

type edge = {
  eid : int;
  src : int;
  dst : int;
  size : float;  (** file size [F(i,j)] held in memory *)
  comm : float;  (** transfer time [C(i,j)] across memories *)
}

type t

(** {1 Construction} *)

module Builder : sig
  type dag := t
  type t

  val create : unit -> t

  val add_task : t -> ?name:string -> w_blue:float -> w_red:float -> unit -> int
  (** Returns the new task id (dense, starting at 0).  Processing times must
      be non-negative. *)

  val add_edge : t -> src:int -> dst:int -> size:float -> comm:float -> unit
  (** Adds a dependency edge with its file size and transfer time.  Duplicate
      (src, dst) pairs and self-loops are rejected. *)

  val finalize : t -> dag
  (** Checks acyclicity and freezes the graph.
      @raise Invalid_argument on a cyclic graph or dangling endpoint. *)
end

(** {1 Accessors} *)

val n_tasks : t -> int
val n_edges : t -> int
val task : t -> int -> task
val edge : t -> int -> edge
val tasks : t -> task array
val edges : t -> edge array

val succ : t -> int -> edge list
(** Outgoing edges of a task, in insertion order. *)

val pred : t -> int -> edge list
(** Incoming edges of a task, in insertion order. *)

val children : t -> int -> int list
(** Child task ids in edge-insertion order.  Precomputed at
    {!Builder.finalize}; the returned list is shared — do not mutate-by-copy
    patterns that rely on freshness. *)

val parents : t -> int -> int list
(** Parent task ids in edge-insertion order.  Precomputed, shared. *)

val find_edge : t -> src:int -> dst:int -> edge option

val sources : t -> int list
(** Tasks without predecessors. *)

val sinks : t -> int list
(** Tasks without successors. *)

val mem_req : t -> int -> float
(** [mem_req g i] is the paper's [MemReq(i)]: the total size of input plus
    output files of task [i], i.e. the minimum memory any execution of [i]
    needs. *)

val in_size : t -> int -> float
(** Total size of the input files of a task. *)

val out_size : t -> int -> float
(** Total size of the output files of a task. *)

val total_file_size : t -> float

val w_min : t -> int -> float
(** [min w_blue w_red] for a task. *)

(** {1 Flat (CSR / SoA) views}

    The scheduling hot paths walk the graph through these contiguous arrays
    rather than the [edge list] accessors above.  All arrays are built once
    at {!Builder.finalize} and are READ-ONLY: mutating them corrupts the
    graph.  Packed adjacency rows are in ascending edge-id order — exactly
    the insertion order of the corresponding {!succ}/{!pred} list — so a
    fold over a CSR row accumulates in the same order as the list fold it
    replaces (bit-identical float results). *)

module Csr : sig
  val succ_off : t -> int array
  (** Length [n_tasks + 1]; outgoing row of task [i] is the packed index
      range [succ_off.(i) .. succ_off.(i+1) - 1]. *)

  val succ_eid : t -> int array
  (** Packed outgoing edge ids (ascending within a row). *)

  val succ_dst : t -> int array
  (** Destination task of the packed edge at the same index. *)

  val pred_off : t -> int array
  val pred_eid : t -> int array

  val pred_src : t -> int array
  (** Source task of the packed incoming edge at the same index. *)

  val e_src : t -> int array
  (** Edge-attribute SoA, indexed by edge id. *)

  val e_dst : t -> int array
  val e_size : t -> float array
  val e_comm : t -> float array

  val w_blue : t -> float array
  (** Task-attribute SoA, indexed by task id. *)

  val w_red : t -> float array

  val in_sz : t -> float array
  (** Per-task total input / output file sizes ({!in_size} / {!out_size}
      precomputed). *)

  val out_sz : t -> float array
  val in_degree : t -> int -> int
  val out_degree : t -> int -> int
  val max_in_degree : t -> int

  val n_layers : t -> int
  (** Topological layers: layer 0 holds the sources, and each task sits at
      [1 + max] of its parents' layers.  Tasks within a layer are mutually
      independent. *)

  val layer_of : t -> int array
  (** Layer index of each task. *)

  val layer_off : t -> int array
  (** Length [n_layers + 1] offsets into {!layer_tasks}. *)

  val layer_tasks : t -> int array
  (** Task ids grouped by layer, ascending ids within a layer. *)
end

(** {1 Orders and paths} *)

val topological_order : t -> int array
(** A topological order (parents before children), stable w.r.t. task ids. *)

val is_topological : t -> int array -> bool

val longest_path : t -> node_weight:(int -> float) -> edge_weight:(edge -> float) -> float
(** Weight of a heaviest source-to-sink path, counting node weights of every
    node on the path and edge weights of every edge. *)

val critical_path_min : t -> float
(** Longest path using [min w_blue w_red] per task and zero edge weight: a
    makespan lower bound on any platform. *)

(** {1 Serialisation} *)

val to_string : t -> string
(** Line-oriented text format, re-read by {!of_string}. *)

val of_string : string -> t
(** @raise Invalid_argument on malformed input. *)

val to_dot : ?highlight:(int -> string option) -> t -> string
(** GraphViz rendering.  [highlight i] may return a fill colour for task
    [i]. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: node/edge counts, degree and cost ranges. *)
