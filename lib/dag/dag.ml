type task = { id : int; name : string; w_blue : float; w_red : float }
type edge = { eid : int; src : int; dst : int; size : float; comm : float }

type t = {
  tasks : task array;
  edges : edge array;
  succ : edge list array;  (* outgoing, insertion order *)
  pred : edge list array;  (* incoming, insertion order *)
  edge_index : (int * int, int) Hashtbl.t;
  topo : int array;  (* cached topological order *)
}

module Builder = struct
  type dag = t

  let _witness : dag option = None

  type t = {
    mutable rev_tasks : task list;
    mutable rev_edges : edge list;
    mutable ntasks : int;
    mutable nedges : int;
    seen : (int * int, unit) Hashtbl.t;
  }

  let create () =
    { rev_tasks = []; rev_edges = []; ntasks = 0; nedges = 0; seen = Hashtbl.create 64 }

  let add_task b ?name ~w_blue ~w_red () =
    if w_blue < 0. || w_red < 0. then invalid_arg "Dag.Builder.add_task: negative time";
    let id = b.ntasks in
    let name = match name with Some n -> n | None -> Printf.sprintf "t%d" id in
    b.rev_tasks <- { id; name; w_blue; w_red } :: b.rev_tasks;
    b.ntasks <- id + 1;
    id

  let add_edge b ~src ~dst ~size ~comm =
    if src < 0 || src >= b.ntasks || dst < 0 || dst >= b.ntasks then
      invalid_arg "Dag.Builder.add_edge: dangling endpoint";
    if src = dst then invalid_arg "Dag.Builder.add_edge: self-loop";
    if size < 0. || comm < 0. then invalid_arg "Dag.Builder.add_edge: negative attribute";
    if Hashtbl.mem b.seen (src, dst) then invalid_arg "Dag.Builder.add_edge: duplicate edge";
    Hashtbl.add b.seen (src, dst) ();
    b.rev_edges <- { eid = b.nedges; src; dst; size; comm } :: b.rev_edges;
    b.nedges <- b.nedges + 1

  (* Kahn's algorithm; ids of equal depth come out in increasing order thanks
     to the priority queue, making the order deterministic. *)
  let topo_sort ~n ~succ ~indeg =
    let indeg = Array.copy indeg in
    let ready = Pqueue.create ~cmp:compare in
    for i = 0 to n - 1 do
      if indeg.(i) = 0 then Pqueue.push ready i
    done;
    let order = Array.make n (-1) in
    let k = ref 0 in
    let rec drain () =
      match Pqueue.pop ready with
      | None -> ()
      | Some i ->
        order.(!k) <- i;
        incr k;
        List.iter
          (fun e ->
            indeg.(e.dst) <- indeg.(e.dst) - 1;
            if indeg.(e.dst) = 0 then Pqueue.push ready e.dst)
          succ.(i);
        drain ()
    in
    drain ();
    if !k <> n then invalid_arg "Dag.Builder.finalize: graph has a cycle";
    order

  let finalize b =
    let n = b.ntasks in
    let tasks = Array.make n { id = 0; name = ""; w_blue = 0.; w_red = 0. } in
    List.iter (fun t -> tasks.(t.id) <- t) b.rev_tasks;
    let edges = Array.make b.nedges { eid = 0; src = 0; dst = 0; size = 0.; comm = 0. } in
    List.iter (fun e -> edges.(e.eid) <- e) b.rev_edges;
    let succ = Array.make n [] and pred = Array.make n [] in
    let indeg = Array.make n 0 in
    (* Iterate in reverse eid order so the lists end up in insertion order. *)
    for k = b.nedges - 1 downto 0 do
      let e = edges.(k) in
      succ.(e.src) <- e :: succ.(e.src);
      pred.(e.dst) <- e :: pred.(e.dst)
    done;
    Array.iter (fun e -> indeg.(e.dst) <- indeg.(e.dst) + 1) edges;
    let topo = topo_sort ~n ~succ ~indeg in
    let edge_index = Hashtbl.create (max 16 b.nedges) in
    Array.iter (fun e -> Hashtbl.replace edge_index (e.src, e.dst) e.eid) edges;
    { tasks; edges; succ; pred; edge_index; topo }
end

let n_tasks g = Array.length g.tasks
let n_edges g = Array.length g.edges
let task g i = g.tasks.(i)
let edge g k = g.edges.(k)
let tasks g = g.tasks
let edges g = g.edges
let succ g i = g.succ.(i)
let pred g i = g.pred.(i)
let children g i = List.map (fun e -> e.dst) g.succ.(i)
let parents g i = List.map (fun e -> e.src) g.pred.(i)

let find_edge g ~src ~dst =
  match Hashtbl.find_opt g.edge_index (src, dst) with
  | Some k -> Some g.edges.(k)
  | None -> None

let sources g =
  let acc = ref [] in
  for i = n_tasks g - 1 downto 0 do
    if g.pred.(i) = [] then acc := i :: !acc
  done;
  !acc

let sinks g =
  let acc = ref [] in
  for i = n_tasks g - 1 downto 0 do
    if g.succ.(i) = [] then acc := i :: !acc
  done;
  !acc

let in_size g i = List.fold_left (fun acc e -> acc +. e.size) 0. g.pred.(i)
let out_size g i = List.fold_left (fun acc e -> acc +. e.size) 0. g.succ.(i)
let mem_req g i = in_size g i +. out_size g i
let total_file_size g = Array.fold_left (fun acc e -> acc +. e.size) 0. g.edges

let w_min g i =
  let t = g.tasks.(i) in
  min t.w_blue t.w_red

let topological_order g = Array.copy g.topo

let is_topological g order =
  let n = n_tasks g in
  if Array.length order <> n then false
  else begin
    let pos = Array.make n (-1) in
    let ok = ref true in
    Array.iteri
      (fun k i -> if i < 0 || i >= n || pos.(i) >= 0 then ok := false else pos.(i) <- k)
      order;
    !ok && Array.for_all (fun e -> pos.(e.src) < pos.(e.dst)) g.edges
  end

let longest_path g ~node_weight ~edge_weight =
  let n = n_tasks g in
  if n = 0 then 0.
  else begin
    let dist = Array.make n neg_infinity in
    Array.iter
      (fun i ->
        let from_parents =
          List.fold_left
            (fun acc e -> Float.max acc (dist.(e.src) +. edge_weight e))
            0. g.pred.(i)
        in
        dist.(i) <- from_parents +. node_weight i)
      g.topo;
    Array.fold_left max neg_infinity dist
  end

let critical_path_min g = longest_path g ~node_weight:(w_min g) ~edge_weight:(fun _ -> 0.)

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "dag %d %d\n" (n_tasks g) (n_edges g));
  (* The line format is whitespace-separated: keep names parseable. *)
  let safe_name n = String.map (fun c -> if c = ' ' || c = '\t' then '_' else c) n in
  Array.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "task %d %s %.17g %.17g\n" t.id (safe_name t.name) t.w_blue t.w_red))
    g.tasks;
  Array.iter
    (fun e ->
      Buffer.add_string buf (Printf.sprintf "edge %d %d %.17g %.17g\n" e.src e.dst e.size e.comm))
    g.edges;
  Buffer.contents buf

let of_string s =
  let fail fmt = Printf.ksprintf invalid_arg ("Dag.of_string: " ^^ fmt) in
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> fail "empty input"
  | header :: rest ->
    let n, m =
      match String.split_on_char ' ' header with
      | [ "dag"; n; m ] -> (
        match (int_of_string_opt n, int_of_string_opt m) with
        | Some n, Some m -> (n, m)
        | _ -> fail "bad header %S" header)
      | _ -> fail "bad header %S" header
    in
    let b = Builder.create () in
    let tasks_seen = ref 0 and edges_seen = ref 0 in
    List.iter
      (fun line ->
        match String.split_on_char ' ' line with
        | "task" :: id :: name :: wb :: wr :: [] -> (
          match (int_of_string_opt id, float_of_string_opt wb, float_of_string_opt wr) with
          | Some id, Some wb, Some wr ->
            if id <> !tasks_seen then fail "task ids must be dense and in order";
            ignore (Builder.add_task b ~name ~w_blue:wb ~w_red:wr ());
            incr tasks_seen
          | _ -> fail "bad task line %S" line)
        | "edge" :: src :: dst :: size :: comm :: [] -> (
          match
            ( int_of_string_opt src,
              int_of_string_opt dst,
              float_of_string_opt size,
              float_of_string_opt comm )
          with
          | Some src, Some dst, Some size, Some comm ->
            Builder.add_edge b ~src ~dst ~size ~comm;
            incr edges_seen
          | _ -> fail "bad edge line %S" line)
        | _ -> fail "unknown line %S" line)
      rest;
    if !tasks_seen <> n then fail "expected %d tasks, got %d" n !tasks_seen;
    if !edges_seen <> m then fail "expected %d edges, got %d" m !edges_seen;
    Builder.finalize b

let to_dot ?highlight g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dag {\n  rankdir=TB;\n  node [shape=box];\n";
  Array.iter
    (fun t ->
      let fill =
        match highlight with
        | Some f -> (
          match f t.id with
          | Some color -> Printf.sprintf ", style=filled, fillcolor=\"%s\"" color
          | None -> "")
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\nWb=%g Wr=%g\"%s];\n" t.id t.name t.w_blue t.w_red fill))
    g.tasks;
  Array.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"F=%g C=%g\"];\n" e.src e.dst e.size e.comm))
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_stats ppf g =
  let n = n_tasks g and m = n_edges g in
  let outdeg = Array.make (max n 1) 0 in
  Array.iter (fun e -> outdeg.(e.src) <- outdeg.(e.src) + 1) g.edges;
  let max_deg = Array.fold_left max 0 outdeg in
  Format.fprintf ppf "tasks=%d edges=%d sources=%d sinks=%d max-out-degree=%d cp(min-w)=%g" n m
    (List.length (sources g))
    (List.length (sinks g))
    max_deg (critical_path_min g)
