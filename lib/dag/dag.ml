type task = { id : int; name : string; w_blue : float; w_red : float }
type edge = { eid : int; src : int; dst : int; size : float; comm : float }

(* Flat mirror of the record/list graph, built once at [finalize].  Hot loops
   (EST evaluation, commit, rank computation) walk these arrays cache-linearly
   instead of chasing [edge list] spines; the packed edge ids of each row are
   in ascending eid order, i.e. exactly the insertion order of the
   corresponding [succ]/[pred] list, so any fold rewritten over the CSR view
   accumulates floats in the same order and stays bit-identical. *)
type csr = {
  succ_off : int array;  (* length n+1: row [i] is [succ_off.(i) .. succ_off.(i+1) - 1] *)
  succ_eid : int array;  (* packed outgoing edge ids, ascending eid within a row *)
  succ_dst : int array;  (* dst of the edge at the same packed index *)
  pred_off : int array;
  pred_eid : int array;  (* packed incoming edge ids, ascending eid within a row *)
  pred_src : int array;
  e_src : int array;  (* SoA edge attributes, indexed by eid *)
  e_dst : int array;
  e_size : float array;
  e_comm : float array;
  w_blue : float array;  (* SoA task attributes, indexed by task id *)
  w_red : float array;
  in_sz : float array;  (* total input / output file size per task *)
  out_sz : float array;
  layer_of : int array;  (* topological depth: 0 for sources, 1 + max parent depth *)
  layer_off : int array;  (* length n_layers+1 into [layer_tasks] *)
  layer_tasks : int array;  (* task ids grouped by layer, ascending within a layer *)
  children_v : int list array;  (* precomputed list views for the legacy API *)
  parents_v : int list array;
}

type t = {
  tasks : task array;
  edges : edge array;
  succ : edge list array;  (* outgoing, insertion order *)
  pred : edge list array;  (* incoming, insertion order *)
  edge_index : (int * int, int) Hashtbl.t;
  topo : int array;  (* cached topological order *)
  csr : csr;
}

module Builder = struct
  type dag = t

  let _witness : dag option = None

  type t = {
    mutable rev_tasks : task list;
    mutable rev_edges : edge list;
    mutable ntasks : int;
    mutable nedges : int;
    seen : (int * int, unit) Hashtbl.t;
  }

  let create () =
    { rev_tasks = []; rev_edges = []; ntasks = 0; nedges = 0; seen = Hashtbl.create 64 }

  let add_task b ?name ~w_blue ~w_red () =
    Fp.check_finite ~what:"Dag.Builder.add_task: processing time" w_blue;
    Fp.check_finite ~what:"Dag.Builder.add_task: processing time" w_red;
    if w_blue < 0. || w_red < 0. then invalid_arg "Dag.Builder.add_task: negative time";
    let id = b.ntasks in
    let name = match name with Some n -> n | None -> Printf.sprintf "t%d" id in
    b.rev_tasks <- { id; name; w_blue; w_red } :: b.rev_tasks;
    b.ntasks <- id + 1;
    id

  let add_edge b ~src ~dst ~size ~comm =
    if src < 0 || src >= b.ntasks || dst < 0 || dst >= b.ntasks then
      invalid_arg "Dag.Builder.add_edge: dangling endpoint";
    if src = dst then invalid_arg "Dag.Builder.add_edge: self-loop";
    Fp.check_finite ~what:"Dag.Builder.add_edge: file size" size;
    Fp.check_finite ~what:"Dag.Builder.add_edge: transfer time" comm;
    if size < 0. || comm < 0. then invalid_arg "Dag.Builder.add_edge: negative attribute";
    if Hashtbl.mem b.seen (src, dst) then invalid_arg "Dag.Builder.add_edge: duplicate edge";
    Hashtbl.add b.seen (src, dst) ();
    b.rev_edges <- { eid = b.nedges; src; dst; size; comm } :: b.rev_edges;
    b.nedges <- b.nedges + 1

  (* Kahn's algorithm; ids of equal depth come out in increasing order thanks
     to the priority queue, making the order deterministic. *)
  let topo_sort ~n ~succ ~indeg =
    let indeg = Array.copy indeg in
    let ready = Pqueue.create ~cmp:compare in
    for i = 0 to n - 1 do
      if indeg.(i) = 0 then Pqueue.push ready i
    done;
    let order = Array.make n (-1) in
    let k = ref 0 in
    let rec drain () =
      match Pqueue.pop ready with
      | None -> ()
      | Some i ->
        order.(!k) <- i;
        incr k;
        List.iter
          (fun e ->
            indeg.(e.dst) <- indeg.(e.dst) - 1;
            if indeg.(e.dst) = 0 then Pqueue.push ready e.dst)
          succ.(i);
        drain ()
    in
    drain ();
    if !k <> n then invalid_arg "Dag.Builder.finalize: graph has a cycle";
    order

  (* Two-pass counting sort by endpoint.  Scanning eids in ascending order
     through the row cursors packs each row in ascending eid order — the same
     order as the [succ]/[pred] insertion-order lists. *)
  let build_csr ~n ~(edges : edge array) ~(tasks : task array) ~topo =
    let m = Array.length edges in
    let e_src = Array.make m 0 and e_dst = Array.make m 0 in
    let e_size = Array.make m 0. and e_comm = Array.make m 0. in
    for k = 0 to m - 1 do
      let e = edges.(k) in
      e_src.(k) <- e.src;
      e_dst.(k) <- e.dst;
      e_size.(k) <- e.size;
      e_comm.(k) <- e.comm
    done;
    let succ_off = Array.make (n + 1) 0 and pred_off = Array.make (n + 1) 0 in
    for k = 0 to m - 1 do
      succ_off.(e_src.(k) + 1) <- succ_off.(e_src.(k) + 1) + 1;
      pred_off.(e_dst.(k) + 1) <- pred_off.(e_dst.(k) + 1) + 1
    done;
    for i = 1 to n do
      succ_off.(i) <- succ_off.(i) + succ_off.(i - 1);
      pred_off.(i) <- pred_off.(i) + pred_off.(i - 1)
    done;
    let succ_eid = Array.make m 0 and succ_dst = Array.make m 0 in
    let pred_eid = Array.make m 0 and pred_src = Array.make m 0 in
    let scur = Array.sub succ_off 0 n and pcur = Array.sub pred_off 0 n in
    for k = 0 to m - 1 do
      let s = e_src.(k) and d = e_dst.(k) in
      succ_eid.(scur.(s)) <- k;
      succ_dst.(scur.(s)) <- d;
      scur.(s) <- scur.(s) + 1;
      pred_eid.(pcur.(d)) <- k;
      pred_src.(pcur.(d)) <- s;
      pcur.(d) <- pcur.(d) + 1
    done;
    let w_blue = Array.make n 0. and w_red = Array.make n 0. in
    for i = 0 to n - 1 do
      w_blue.(i) <- tasks.(i).w_blue;
      w_red.(i) <- tasks.(i).w_red
    done;
    (* Same left-fold order over the same rows as the historical
       [in_size]/[out_size] List.fold_left: bit-identical sums. *)
    let in_sz = Array.make n 0. and out_sz = Array.make n 0. in
    for i = 0 to n - 1 do
      let acc = ref 0. in
      for k = pred_off.(i) to pred_off.(i + 1) - 1 do
        acc := !acc +. e_size.(pred_eid.(k))
      done;
      in_sz.(i) <- !acc;
      let acc = ref 0. in
      for k = succ_off.(i) to succ_off.(i + 1) - 1 do
        acc := !acc +. e_size.(succ_eid.(k))
      done;
      out_sz.(i) <- !acc
    done;
    let layer_of = Array.make n 0 in
    let n_layers = ref (if n = 0 then 0 else 1) in
    Array.iter
      (fun i ->
        let d = ref 0 in
        for k = pred_off.(i) to pred_off.(i + 1) - 1 do
          let dp = layer_of.(pred_src.(k)) + 1 in
          if dp > !d then d := dp
        done;
        layer_of.(i) <- !d;
        if !d + 1 > !n_layers then n_layers := !d + 1)
      topo;
    let layer_off = Array.make (!n_layers + 1) 0 in
    for i = 0 to n - 1 do
      layer_off.(layer_of.(i) + 1) <- layer_off.(layer_of.(i) + 1) + 1
    done;
    for l = 1 to !n_layers do
      layer_off.(l) <- layer_off.(l) + layer_off.(l - 1)
    done;
    let layer_tasks = Array.make n 0 in
    let lcur = Array.sub layer_off 0 !n_layers in
    for i = 0 to n - 1 do
      let l = layer_of.(i) in
      layer_tasks.(lcur.(l)) <- i;
      lcur.(l) <- lcur.(l) + 1
    done;
    let children_v = Array.make n [] and parents_v = Array.make n [] in
    for i = 0 to n - 1 do
      let cs = ref [] in
      for k = succ_off.(i + 1) - 1 downto succ_off.(i) do
        cs := succ_dst.(k) :: !cs
      done;
      children_v.(i) <- !cs;
      let ps = ref [] in
      for k = pred_off.(i + 1) - 1 downto pred_off.(i) do
        ps := pred_src.(k) :: !ps
      done;
      parents_v.(i) <- !ps
    done;
    {
      succ_off;
      succ_eid;
      succ_dst;
      pred_off;
      pred_eid;
      pred_src;
      e_src;
      e_dst;
      e_size;
      e_comm;
      w_blue;
      w_red;
      in_sz;
      out_sz;
      layer_of;
      layer_off;
      layer_tasks;
      children_v;
      parents_v;
    }

  let finalize b =
    let n = b.ntasks in
    let tasks = Array.make n { id = 0; name = ""; w_blue = 0.; w_red = 0. } in
    List.iter (fun t -> tasks.(t.id) <- t) b.rev_tasks;
    let edges = Array.make b.nedges { eid = 0; src = 0; dst = 0; size = 0.; comm = 0. } in
    List.iter (fun e -> edges.(e.eid) <- e) b.rev_edges;
    let succ = Array.make n [] and pred = Array.make n [] in
    let indeg = Array.make n 0 in
    (* Iterate in reverse eid order so the lists end up in insertion order. *)
    for k = b.nedges - 1 downto 0 do
      let e = edges.(k) in
      succ.(e.src) <- e :: succ.(e.src);
      pred.(e.dst) <- e :: pred.(e.dst)
    done;
    Array.iter (fun e -> indeg.(e.dst) <- indeg.(e.dst) + 1) edges;
    let topo = topo_sort ~n ~succ ~indeg in
    let edge_index = Hashtbl.create (max 16 b.nedges) in
    Array.iter (fun e -> Hashtbl.replace edge_index (e.src, e.dst) e.eid) edges;
    let csr = build_csr ~n ~edges ~tasks ~topo in
    { tasks; edges; succ; pred; edge_index; topo; csr }
end

let n_tasks g = Array.length g.tasks
let n_edges g = Array.length g.edges
let task g i = g.tasks.(i)
let edge g k = g.edges.(k)
let tasks g = g.tasks
let edges g = g.edges
let succ g i = g.succ.(i)
let pred g i = g.pred.(i)

(* Precomputed at finalize (same elements, same order as the historical
   per-call [List.map] over [succ]/[pred]); callers may not mutate. *)
let children g i = g.csr.children_v.(i)
let parents g i = g.csr.parents_v.(i)

let find_edge g ~src ~dst =
  match Hashtbl.find_opt g.edge_index (src, dst) with
  | Some k -> Some g.edges.(k)
  | None -> None

let sources g =
  let acc = ref [] in
  for i = n_tasks g - 1 downto 0 do
    match g.pred.(i) with [] -> acc := i :: !acc | _ :: _ -> ()
  done;
  !acc

let sinks g =
  let acc = ref [] in
  for i = n_tasks g - 1 downto 0 do
    match g.succ.(i) with [] -> acc := i :: !acc | _ :: _ -> ()
  done;
  !acc

let in_size g i = g.csr.in_sz.(i)
let out_size g i = g.csr.out_sz.(i)
let mem_req g i = in_size g i +. out_size g i
let total_file_size g = Array.fold_left (fun acc e -> acc +. e.size) 0. g.edges

(* Read-only views of the flat arena.  The contract (enforced by the
   [order-stability] lint rule fencing raw [Array.unsafe_*] outside this
   file, and by test_csr's equivalence oracle) is: packed rows are in
   ascending eid order, identical to the [succ]/[pred] list order. *)
module Csr = struct
  let succ_off g = g.csr.succ_off
  let succ_eid g = g.csr.succ_eid
  let succ_dst g = g.csr.succ_dst
  let pred_off g = g.csr.pred_off
  let pred_eid g = g.csr.pred_eid
  let pred_src g = g.csr.pred_src
  let e_src g = g.csr.e_src
  let e_dst g = g.csr.e_dst
  let e_size g = g.csr.e_size
  let e_comm g = g.csr.e_comm
  let w_blue g = g.csr.w_blue
  let w_red g = g.csr.w_red
  let in_sz g = g.csr.in_sz
  let out_sz g = g.csr.out_sz
  let in_degree g i = g.csr.pred_off.(i + 1) - g.csr.pred_off.(i)
  let out_degree g i = g.csr.succ_off.(i + 1) - g.csr.succ_off.(i)

  let max_in_degree g =
    let d = ref 0 in
    for i = 0 to n_tasks g - 1 do
      let di = in_degree g i in
      if di > !d then d := di
    done;
    !d

  let n_layers g = Array.length g.csr.layer_off - 1
  let layer_of g = g.csr.layer_of
  let layer_off g = g.csr.layer_off
  let layer_tasks g = g.csr.layer_tasks
end

let w_min g i =
  let t = g.tasks.(i) in
  Float.min t.w_blue t.w_red

let topological_order g = Array.copy g.topo

let is_topological g order =
  let n = n_tasks g in
  if Array.length order <> n then false
  else begin
    let pos = Array.make n (-1) in
    let ok = ref true in
    Array.iteri
      (fun k i -> if i < 0 || i >= n || pos.(i) >= 0 then ok := false else pos.(i) <- k)
      order;
    !ok && Array.for_all (fun e -> pos.(e.src) < pos.(e.dst)) g.edges
  end

let longest_path g ~node_weight ~edge_weight =
  let n = n_tasks g in
  if n = 0 then 0.
  else begin
    let dist = Array.make n neg_infinity in
    Array.iter
      (fun i ->
        let from_parents =
          List.fold_left
            (fun acc e -> Float.max acc (dist.(e.src) +. edge_weight e))
            0. g.pred.(i)
        in
        dist.(i) <- from_parents +. node_weight i)
      g.topo;
    Array.fold_left Float.max neg_infinity dist
  end

let critical_path_min g = longest_path g ~node_weight:(w_min g) ~edge_weight:(fun _ -> 0.)

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "dag %d %d\n" (n_tasks g) (n_edges g));
  (* The line format is whitespace-separated: keep names parseable. *)
  let safe_name n = String.map (fun c -> if c = ' ' || c = '\t' then '_' else c) n in
  Array.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "task %d %s %.17g %.17g\n" t.id (safe_name t.name) t.w_blue t.w_red))
    g.tasks;
  Array.iter
    (fun e ->
      Buffer.add_string buf (Printf.sprintf "edge %d %d %.17g %.17g\n" e.src e.dst e.size e.comm))
    g.edges;
  Buffer.contents buf

let of_string s =
  let fail fmt = Printf.ksprintf invalid_arg ("Dag.of_string: " ^^ fmt) in
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> fail "empty input"
  | header :: rest ->
    let n, m =
      match String.split_on_char ' ' header with
      | [ "dag"; n; m ] -> (
        match (int_of_string_opt n, int_of_string_opt m) with
        | Some n, Some m -> (n, m)
        | _ -> fail "bad header %S" header)
      | _ -> fail "bad header %S" header
    in
    let b = Builder.create () in
    let tasks_seen = ref 0 and edges_seen = ref 0 in
    List.iter
      (fun line ->
        match String.split_on_char ' ' line with
        | "task" :: id :: name :: wb :: wr :: [] -> (
          match (int_of_string_opt id, float_of_string_opt wb, float_of_string_opt wr) with
          | Some id, Some wb, Some wr ->
            if id <> !tasks_seen then fail "task ids must be dense and in order";
            ignore (Builder.add_task b ~name ~w_blue:wb ~w_red:wr ());
            incr tasks_seen
          | _ -> fail "bad task line %S" line)
        | "edge" :: src :: dst :: size :: comm :: [] -> (
          match
            ( int_of_string_opt src,
              int_of_string_opt dst,
              float_of_string_opt size,
              float_of_string_opt comm )
          with
          | Some src, Some dst, Some size, Some comm ->
            Builder.add_edge b ~src ~dst ~size ~comm;
            incr edges_seen
          | _ -> fail "bad edge line %S" line)
        | _ -> fail "unknown line %S" line)
      rest;
    if !tasks_seen <> n then fail "expected %d tasks, got %d" n !tasks_seen;
    if !edges_seen <> m then fail "expected %d edges, got %d" m !edges_seen;
    Builder.finalize b

let to_dot ?highlight g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph dag {\n  rankdir=TB;\n  node [shape=box];\n";
  Array.iter
    (fun t ->
      let fill =
        match highlight with
        | Some f -> (
          match f t.id with
          | Some color -> Printf.sprintf ", style=filled, fillcolor=\"%s\"" color
          | None -> "")
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\nWb=%g Wr=%g\"%s];\n" t.id t.name t.w_blue t.w_red fill))
    g.tasks;
  Array.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"F=%g C=%g\"];\n" e.src e.dst e.size e.comm))
    g.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_stats ppf g =
  let n = n_tasks g and m = n_edges g in
  let outdeg = Array.make (max n 1) 0 in
  Array.iter (fun e -> outdeg.(e.src) <- outdeg.(e.src) + 1) g.edges;
  let max_deg = Array.fold_left max 0 outdeg in
  Format.fprintf ppf "tasks=%d edges=%d sources=%d sinks=%d max-out-degree=%d cp(min-w)=%g" n m
    (List.length (sources g))
    (List.length (sinks g))
    max_deg (critical_path_min g)
