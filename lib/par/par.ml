(* Domain pool with a bounded queue, deterministic combinators and
   structured error propagation.  See par.mli for the contract. *)

let default_jobs () = Domain.recommended_domain_count ()
let now () = Unix.gettimeofday ()

exception Cancelled

type 'a state =
  | Pending
  | Running
  | Cancelled_before_start
  | Value of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_mutex : Mutex.t;  (* the owning pool's mutex *)
  f_done : Condition.t;  (* the owning pool's completion condition *)
  f_on_cancel : unit -> unit;  (* counter hook; called with [f_mutex] held *)
  mutable st : 'a state;
}

type task = Task : 'a future * (unit -> 'a) -> task

type t = {
  id : int;
  n_jobs : int;
  capacity : int;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  done_cond : Condition.t;
  ring : task option array;
  mutable head : int;
  mutable len : int;
  mutable stopping : bool;
  mutable joined : bool;
  mutable workers : unit Domain.t list;
  (* counters, all guarded by [mutex] *)
  mutable c_run : int;
  mutable c_failed : int;
  mutable c_cancelled : int;
  mutable c_batches : int;
  mutable c_max_queue : int;
  mutable c_submit_wait : float;
  mutable c_worker_wait : float;
  mutable c_busy : float;
}

let jobs t = t.n_jobs

(* Which pool (if any) the current domain is a worker of: nested combinator
   calls from a task must run inline or the bounded queue can deadlock. *)
let pool_ids = Atomic.make 1
let current_pool : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let in_this_pool t = Domain.DLS.get current_pool = t.id

(* ------------------------------------------------------------ worker loop *)

let exec t (Task (fut, thunk)) =
  Mutex.lock t.mutex;
  let runnable = match fut.st with
    | Pending ->
      fut.st <- Running;
      true
    | Cancelled_before_start -> false
    | Running | Value _ | Failed _ -> false
  in
  Mutex.unlock t.mutex;
  if runnable then begin
    let t0 = now () in
    let outcome =
      try Ok (thunk ()) with e -> Error (e, Printexc.get_raw_backtrace ())
    in
    let dt = now () -. t0 in
    Mutex.lock t.mutex;
    (match outcome with
    | Ok v -> fut.st <- Value v
    | Error (e, bt) ->
      fut.st <- Failed (e, bt);
      t.c_failed <- t.c_failed + 1);
    t.c_run <- t.c_run + 1;
    t.c_busy <- t.c_busy +. dt;
    Condition.broadcast t.done_cond;
    Mutex.unlock t.mutex
  end

let worker t () =
  Domain.DLS.set current_pool t.id;
  let rec loop () =
    Mutex.lock t.mutex;
    let t0 = now () in
    while t.len = 0 && not t.stopping do
      Condition.wait t.not_empty t.mutex
    done;
    t.c_worker_wait <- t.c_worker_wait +. (now () -. t0);
    if t.len = 0 then Mutex.unlock t.mutex (* stopping and drained: exit *)
    else begin
      let task = Option.get t.ring.(t.head) in
      t.ring.(t.head) <- None;
      t.head <- (t.head + 1) mod t.capacity;
      t.len <- t.len - 1;
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      exec t task;
      loop ()
    end
  in
  loop ()

(* -------------------------------------------------------------- lifecycle *)

let create ?queue_capacity ~jobs () =
  if jobs < 1 then invalid_arg "Par.create: jobs must be >= 1";
  let capacity =
    match queue_capacity with
    | None -> max 64 (4 * jobs)
    | Some c -> if c < 1 then invalid_arg "Par.create: queue_capacity must be >= 1" else c
  in
  let t =
    {
      id = Atomic.fetch_and_add pool_ids 1;
      n_jobs = jobs;
      capacity;
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      done_cond = Condition.create ();
      ring = Array.make capacity None;
      head = 0;
      len = 0;
      stopping = false;
      joined = false;
      workers = [];
      c_run = 0;
      c_failed = 0;
      c_cancelled = 0;
      c_batches = 0;
      c_max_queue = 0;
      c_submit_wait = 0.;
      c_worker_wait = 0.;
      c_busy = 0.;
    }
  in
  if jobs > 1 then t.workers <- List.init jobs (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  if t.joined then Mutex.unlock t.mutex
  else begin
    t.stopping <- true;
    t.joined <- true;
    let workers = t.workers in
    t.workers <- [];
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Mutex.unlock t.mutex;
    List.iter Domain.join workers
  end

let with_pool ?queue_capacity ~jobs f =
  let t = create ?queue_capacity ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ------------------------------------------------------------- submission *)

(* Serial path (jobs = 1 or nested call from a worker): run now, on the
   caller, and hand back an already-resolved future. *)
let run_inline t thunk =
  let t0 = now () in
  let outcome = try Ok (thunk ()) with e -> Error (e, Printexc.get_raw_backtrace ()) in
  let dt = now () -. t0 in
  Mutex.lock t.mutex;
  let st =
    match outcome with
    | Ok v -> Value v
    | Error (e, bt) ->
      t.c_failed <- t.c_failed + 1;
      Failed (e, bt)
  in
  t.c_run <- t.c_run + 1;
  t.c_busy <- t.c_busy +. dt;
  Mutex.unlock t.mutex;
  { f_mutex = t.mutex; f_done = t.done_cond; f_on_cancel = ignore; st }

let submit t thunk =
  if t.n_jobs <= 1 || in_this_pool t then begin
    if t.joined then invalid_arg "Par.submit: pool is shut down";
    run_inline t thunk
  end
  else begin
    let fut =
      {
        f_mutex = t.mutex;
        f_done = t.done_cond;
        f_on_cancel = (fun () -> t.c_cancelled <- t.c_cancelled + 1);
        st = Pending;
      }
    in
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Par.submit: pool is shut down"
    end;
    let t0 = now () in
    while t.len = t.capacity && not t.stopping do
      Condition.wait t.not_full t.mutex
    done;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg "Par.submit: pool is shut down"
    end;
    t.c_submit_wait <- t.c_submit_wait +. (now () -. t0);
    t.ring.((t.head + t.len) mod t.capacity) <- Some (Task (fut, thunk));
    t.len <- t.len + 1;
    if t.len > t.c_max_queue then t.c_max_queue <- t.len;
    Condition.signal t.not_empty;
    Mutex.unlock t.mutex;
    fut
  end

let await fut =
  Mutex.lock fut.f_mutex;
  while (match fut.st with Pending | Running -> true | _ -> false) do
    Condition.wait fut.f_done fut.f_mutex
  done;
  let st = fut.st in
  Mutex.unlock fut.f_mutex;
  match st with
  | Value v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Cancelled_before_start -> raise Cancelled
  | Pending | Running -> assert false

let poll fut =
  Mutex.lock fut.f_mutex;
  let resolved = match fut.st with Pending | Running -> false | _ -> true in
  Mutex.unlock fut.f_mutex;
  resolved

let cancel fut =
  Mutex.lock fut.f_mutex;
  let cancelled =
    match fut.st with
    | Pending ->
      fut.st <- Cancelled_before_start;
      fut.f_on_cancel ();
      true
    | _ -> false
  in
  if cancelled then Condition.broadcast fut.f_done;
  Mutex.unlock fut.f_mutex;
  cancelled

(* ------------------------------------------------------------ combinators *)

let chunk_list n xs =
  (* consecutive runs of [n], preserving order *)
  let rec take k acc = function
    | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
    | rest -> (List.rev acc, rest)
  in
  let rec go acc = function
    | [] -> List.rev acc
    | xs ->
      let c, rest = take n [] xs in
      go (c :: acc) rest
  in
  go [] xs

let note_batch t =
  Mutex.lock t.mutex;
  t.c_batches <- t.c_batches + 1;
  Mutex.unlock t.mutex

let parallel_map ?(chunk = 1) t ~f xs =
  if chunk < 1 then invalid_arg "Par.parallel_map: chunk must be >= 1";
  note_batch t;
  if t.n_jobs <= 1 || in_this_pool t then List.map f xs
  else begin
    let futures =
      List.map (fun c -> submit t (fun () -> List.map f c)) (chunk_list chunk xs)
    in
    (* Await in submission order so both results and the error (the
       lowest-index failing chunk) are deterministic. *)
    let first_error = ref None in
    let collected =
      List.map
        (fun fut ->
          match !first_error with
          | Some _ ->
            ignore (cancel fut);
            []
          | None -> (
            try await fut
            with e ->
              first_error := Some (e, Printexc.get_raw_backtrace ());
              []))
        futures
    in
    match !first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> List.concat collected
  end

let parallel_iter ?chunk t ~f xs =
  ignore (parallel_map ?chunk t ~f:(fun x -> f x) xs : unit list)

let map_seeded ?chunk t ~rng ~f xs =
  (* Split one stream per element sequentially, before any dispatch: the
     k-th element always sees the k-th stream, for every jobs count. *)
  let seeded = List.rev (List.fold_left (fun acc x -> (Rng.split rng, x) :: acc) [] xs) in
  parallel_map ?chunk t ~f:(fun (r, x) -> f r x) seeded

(* --------------------------------------------------------------- counters *)

type counters = {
  tasks_run : int;
  tasks_failed : int;
  tasks_cancelled : int;
  batches : int;
  max_queue : int;
  submit_wait_s : float;
  worker_wait_s : float;
  worker_busy_s : float;
}

let counters t =
  Mutex.lock t.mutex;
  let c =
    {
      tasks_run = t.c_run;
      tasks_failed = t.c_failed;
      tasks_cancelled = t.c_cancelled;
      batches = t.c_batches;
      max_queue = t.c_max_queue;
      submit_wait_s = t.c_submit_wait;
      worker_wait_s = t.c_worker_wait;
      worker_busy_s = t.c_busy;
    }
  in
  Mutex.unlock t.mutex;
  c

let reset_counters t =
  Mutex.lock t.mutex;
  t.c_run <- 0;
  t.c_failed <- 0;
  t.c_cancelled <- 0;
  t.c_batches <- 0;
  t.c_max_queue <- 0;
  t.c_submit_wait <- 0.;
  t.c_worker_wait <- 0.;
  t.c_busy <- 0.;
  Mutex.unlock t.mutex

let pp_counters ppf c =
  Format.fprintf ppf
    "tasks=%d (failed=%d, cancelled=%d) batches=%d max_queue=%d busy=%.3fs worker_wait=%.3fs \
     submit_wait=%.3fs"
    c.tasks_run c.tasks_failed c.tasks_cancelled c.batches c.max_queue c.worker_busy_s
    c.worker_wait_s c.submit_wait_s
