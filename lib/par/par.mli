(** Deterministic domain-pool parallel runtime for the simulation campaign.

    A fixed-size pool of OCaml 5 domains drains a bounded work queue; callers
    submit thunks and receive futures.  The design contract is
    {b reproducibility}: the combinators return results in submission order
    regardless of completion order, and {!map_seeded} derives one independent
    RNG stream per task {e before} dispatch (via {!Rng.split}), so every
    result is bit-identical for every [jobs] count — [jobs = 1] is exactly
    the serial code path (no domains are spawned, thunks run inline at
    submission).

    Error contract: a task exception is captured together with its raw
    backtrace and re-raised at the await point ({!await}, {!parallel_map},
    ...), never swallowed and never a hang.  After a failed batch the pool
    remains usable.

    The pool is not reentrant by blocking: a task running {e on} the pool
    that calls back into a combinator of the same pool executes the nested
    work inline on its own domain (preventing queue deadlock). *)

type t
(** A pool handle.  Thread-safe: any number of client threads/domains may
    submit concurrently. *)

type 'a future
(** The pending result of a submitted task. *)

exception Cancelled
(** Raised by {!await} on a future that was cancelled before it started. *)

val default_jobs : unit -> int
(** Number of recognised CPUs ({!Domain.recommended_domain_count}). *)

val create : ?queue_capacity:int -> jobs:int -> unit -> t
(** [create ~jobs ()] starts a pool of [jobs] worker domains.  [jobs = 1]
    starts no domains at all: submission runs the thunk immediately on the
    caller, byte-for-byte the serial path.  [queue_capacity] (default
    [max 64 (4 * jobs)]) bounds the work queue; a full queue blocks
    {!submit} (backpressure) until a worker drains an item.
    @raise Invalid_argument if [jobs < 1] or [queue_capacity < 1]. *)

val jobs : t -> int
(** Worker count the pool was created with (1 = serial). *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task; blocks while the queue is full.  On a serial pool, or
    when called from one of this pool's own workers, the thunk runs inline
    and the returned future is already resolved.
    @raise Invalid_argument if the pool has been shut down. *)

val await : 'a future -> 'a
(** Block until the task finished; returns its value or re-raises its
    exception with the original backtrace.  @raise Cancelled if the future
    was cancelled first. *)

val poll : 'a future -> bool
(** [true] once the task has finished (with a value, an exception or a
    cancellation) — i.e. exactly when {!await} would return without
    blocking.  Never blocks beyond the pool mutex.  The serve dispatcher
    uses this to stream responses in request order: the head-of-line
    response is written as soon as it resolves, without blocking the read
    loop on tasks that are still running. *)

val cancel : 'a future -> bool
(** Try to cancel a task that has not started running; [true] on success.
    A running or finished task is not interrupted ([false]). *)

val parallel_map : ?chunk:int -> t -> f:('a -> 'b) -> 'a list -> 'b list
(** [parallel_map pool ~f xs] applies [f] to every element, in parallel,
    returning results in input order (deterministic).  [chunk] (default 1)
    groups that many consecutive elements into one task to amortise
    dispatch overhead.  If any application raises, the remaining unstarted
    tasks of the batch are cancelled and the exception of the
    {e lowest-index} failing element is re-raised with its original
    backtrace (deterministic error too). *)

val parallel_iter : ?chunk:int -> t -> f:('a -> unit) -> 'a list -> unit
(** [parallel_map] for effects; same ordering and error contract. *)

val map_seeded : ?chunk:int -> t -> rng:Rng.t -> f:(Rng.t -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!parallel_map} but hands each element its own RNG, split off
    [rng] sequentially {e before} any task is dispatched.  The [k]-th
    element always receives the [k]-th split stream, so outputs are
    independent of [jobs] and of scheduling order.  [rng] is advanced
    exactly [List.length xs] times. *)

(** Lightweight observability for the bench harness. *)
type counters = {
  tasks_run : int;  (** tasks executed to completion (ok or raised) *)
  tasks_failed : int;  (** tasks whose thunk raised *)
  tasks_cancelled : int;  (** tasks cancelled before starting *)
  batches : int;  (** [parallel_map]/[parallel_iter]/[map_seeded] calls *)
  max_queue : int;  (** high-water mark of the queue length *)
  submit_wait_s : float;  (** total time submitters spent in backpressure *)
  worker_wait_s : float;  (** total time workers spent idle on the queue *)
  worker_busy_s : float;  (** total time workers spent running tasks *)
}

val counters : t -> counters
val reset_counters : t -> unit
val pp_counters : Format.formatter -> counters -> unit

val shutdown : t -> unit
(** Drain the queue, stop and join every worker domain.  Idempotent.
    Futures still pending when shutdown is called are completed first. *)

val with_pool : ?queue_capacity:int -> jobs:int -> (t -> 'a) -> 'a
(** [create] / run / [shutdown], shutdown guaranteed on exceptions. *)
