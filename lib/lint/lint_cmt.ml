(* Typed-pass front-end: load the .cmt Typedtree artifacts dune produces
   under _build/default and boil each module down to a serializable
   [summary] — call edges, global-value uses, type declarations, top-level
   globals with their type skeletons, pool call sites, polymorphic-compare
   instantiation sites and base effects.  Everything downstream
   (lint_callgraph, lint_typed_rules) works on summaries only, so they can
   be cached content-addressed (digest of the .cmt → summary) and the warm
   path never reopens an unchanged artifact. *)

(* ------------------------------------------------------- type skeletons --- *)

(* A marshal-friendly skeleton of a [Types.type_expr]: just enough shape to
   answer "does this type carry a float / an arrow / a mutable cell?" once
   the cross-module declaration table is assembled.  [Arrow] is opaque on
   purpose: what a function may return is not shared state, and comparing
   functions is flagged from the arrow itself. *)
type ty =
  | Float
  | Arrow
  | Var  (** still polymorphic at this use site: nothing to check *)
  | Opaque  (** abstract / object / package / depth-capped *)
  | Constr of string * ty list  (** qualified head ("Mod.t", "list", ...) *)
  | Tuple of ty list

type use = { u_name : string; u_line : int; u_col : int }

type effect_kind = Nondet | Unordered | Io

type base_effect = { e_kind : effect_kind; e_culprit : string; e_line : int; e_col : int }

type fn_summary = {
  fn_name : string;  (** qualified "Mod.f" *)
  fn_line : int;
  fn_col : int;
  fn_calls : string list;  (** sorted global value refs (callees, globals) *)
  fn_uses : use list;  (** same refs with positions, for race reports *)
  fn_effects : base_effect list;
  fn_locks : bool;  (** body mentions Mutex.lock/Mutex.protect *)
}

type par_site = {
  p_entry : string;  (** "Par.parallel_map" / "Par.submit" / ... *)
  p_host : string;  (** enclosing top-level definition *)
  p_line : int;
  p_col : int;
  p_calls : string list;  (** global refs inside the task argument *)
  p_uses : use list;
  p_locks : bool;
  p_host_fallback : bool;
      (** the task argument was a bare local ident (e.g. a let-bound
          closure): its body is part of the host, so race analysis falls
          back to the host function's summary *)
}

type type_summary = {
  td_name : string;  (** qualified "Mod.t" *)
  td_components : ty list;
  td_mutable : bool;  (** has a [mutable] record field *)
}

type global_summary = { gl_name : string; gl_line : int; gl_col : int; gl_ty : ty }

type poly_site = { ps_op : string; ps_ty : ty; ps_line : int; ps_col : int }

type summary = {
  sm_module : string;  (** normalized module name ("Fp", "Test_lint") *)
  sm_source : string;  (** repo-relative source path *)
  sm_source_digest : string;  (** hex MD5 of the source the cmt was built from *)
  sm_types : type_summary list;
  sm_globals : global_summary list;
  sm_fns : fn_summary list;
  sm_par_sites : par_site list;
  sm_poly : poly_site list;
}

(* ------------------------------------------------------- classification --- *)

let effect_kind_name = function
  | Nondet -> "nondet"
  | Unordered -> "unordered-iter"
  | Io -> "console-io"

(* The syntactic rule each effect kind shadows: a pragma sanctioning the
   syntactic rule on a line also keeps that line out of the effect lattice
   (an audited exemption must not condemn every transitive caller). *)
let effect_shadow_rule = function
  | Nondet -> "determinism"
  | Unordered -> "order-stability"
  | Io -> "console-io-none"

let nondet_names = [ "Sys.time"; "Unix.gettimeofday"; "Unix.time"; "Domain.self" ]

let unordered_names =
  [ "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values" ]

let io_names =
  [ "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int"; "print_float";
    "print_bytes"; "prerr_string"; "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_int";
    "prerr_float"; "prerr_bytes"; "stdout"; "stderr"; "Printf.printf"; "Printf.eprintf";
    "Format.printf"; "Format.eprintf"; "Format.print_string"; "Format.print_newline";
    "Format.print_flush"; "Format.std_formatter"; "Format.err_formatter" ]

let classify_effect name =
  if String.length name >= 7 && String.sub name 0 7 = "Random." then Some Nondet
  else if List.mem name nondet_names then Some Nondet
  else if List.mem name unordered_names then Some Unordered
  else if List.mem name io_names then Some Io
  else None

(* Pool entry points whose function argument runs on worker domains. *)
let par_entries = [ "Par.parallel_map"; "Par.parallel_iter"; "Par.map_seeded"; "Par.submit" ]

(* Polymorphic structural operations: flagged when instantiated at a type
   carrying floats (ulp/nan hazards) or arrows (runtime failure). *)
let poly_ops =
  [ "="; "<>"; "compare"; "min"; "max"; "Hashtbl.hash"; "List.mem"; "List.assoc";
    "List.mem_assoc" ]

(* Predefined type constructors: never module-qualified. *)
let predef_types =
  [ "int"; "char"; "string"; "bytes"; "float"; "bool"; "unit"; "exn"; "array"; "list";
    "option"; "result"; "nativeint"; "int32"; "int64"; "lazy_t"; "floatarray";
    "extension_constructor" ]

(* ---------------------------------------------------------- name helpers --- *)

let strip_prefix p s =
  if String.starts_with ~prefix:p s then String.sub s (String.length p) (String.length s - String.length p)
  else s

let normalize_name s = strip_prefix "Dune__exe." (strip_prefix "Dune__exe__" (strip_prefix "Stdlib." s))

let normalize_module s = strip_prefix "Dune__exe__" s

(* ------------------------------------------------------------ extraction --- *)

module Ident_map = Map.Make (struct
  type t = Ident.t

  let compare = Ident.compare
end)

type extract_state = {
  modname : string;
  mutable toplevel : string Ident_map.t;  (** top-level value idents → qualified names *)
  mutable local_types : string Ident_map.t;  (** local type-decl idents → qualified names *)
  mutable types : type_summary list;
  mutable globals : global_summary list;
  mutable fns : fn_summary list;
  mutable pars : par_site list;
  mutable poly : poly_site list;
}

let pos_of (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol + 1)

let rec skeleton st depth (t : Types.type_expr) =
  if depth > 10 then Opaque
  else
    match Types.get_desc t with
    | Types.Tvar _ | Types.Tunivar _ -> Var
    | Types.Tarrow _ -> Arrow
    | Types.Ttuple ts -> Tuple (List.map (skeleton st (depth + 1)) ts)
    | Types.Tpoly (t, _) -> skeleton st depth t
    | Types.Tconstr (p, args, _) ->
      let head =
        match p with
        | Path.Pident id -> (
          match Ident_map.find_opt id st.local_types with
          | Some q -> q
          | None ->
            let n = Ident.name id in
            if List.mem n predef_types then n else st.modname ^ "." ^ n)
        | _ -> normalize_name (Path.name p)
      in
      if head = "float" then Float else Constr (head, List.map (skeleton st (depth + 1)) args)
    | _ -> Opaque

(* One accumulator per scanned body (a function, or a task closure). *)
type body_acc = {
  mutable b_uses : use list;
  mutable b_effects : base_effect list;
  mutable b_locks : bool;
}

let new_acc () = { b_uses = []; b_effects = []; b_locks = false }

let global_ref st (p : Path.t) =
  match p with
  | Path.Pident id -> Ident_map.find_opt id st.toplevel
  | _ ->
    let n = normalize_name (Path.name p) in
    if String.contains n '.' then Some n else Some n

(* Scan one expression subtree, feeding [acc]; par-site detection calls back
   through [on_par] so nested pool calls inside a task body still surface. *)
let scan_body st ~host acc expr =
  let rec iter_expr acc (it : Tast_iterator.iterator) (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, _, _) -> (
      let line, col = pos_of e.Typedtree.exp_loc in
      (match global_ref st p with
      | Some name ->
        acc.b_uses <- { u_name = name; u_line = line; u_col = col } :: acc.b_uses;
        (match classify_effect name with
        | Some k ->
          acc.b_effects <- { e_kind = k; e_culprit = name; e_line = line; e_col = col } :: acc.b_effects
        | None -> ());
        if name = "Mutex.lock" || name = "Mutex.protect" then acc.b_locks <- true
      | None -> ());
      let name = match global_ref st p with Some n -> n | None -> "" in
      if List.mem name poly_ops then begin
        (* The ident's [exp_type] is the *instantiation* at this use site:
           peel the first arrow and keep the operand type's skeleton. *)
        match Types.get_desc e.Typedtree.exp_type with
        | Types.Tarrow (_, arg, _, _) ->
          st.poly <- { ps_op = name; ps_ty = skeleton st 0 arg; ps_line = line; ps_col = col } :: st.poly
        | _ -> ()
      end)
    | Typedtree.Texp_apply (f, args) -> (
      let rec head (e : Typedtree.expression) =
        match e.Typedtree.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> global_ref st p
        | Typedtree.Texp_apply (f, _) -> head f
        | _ -> None
      in
      match head f with
      | Some entry when List.mem entry par_entries ->
        let task =
          if entry = "Par.submit" then
            (* submit pool thunk: the task is the last positional argument *)
            List.fold_left
              (fun found (lbl, a) ->
                match (lbl, a) with Asttypes.Nolabel, Some a -> Some a | _ -> found)
              None args
          else
            List.find_map
              (fun (lbl, a) ->
                match (lbl, a) with Asttypes.Labelled "f", Some a -> a |> Option.some | _ -> None)
              args
        in
        (match task with
        | None -> ()
        | Some task ->
          let sub = new_acc () in
          let sub_it = make_iter sub in
          sub_it.Tast_iterator.expr sub_it task;
          let bare_local =
            match task.Typedtree.exp_desc with
            | Typedtree.Texp_ident (Path.Pident id, _, _) ->
              Ident_map.find_opt id st.toplevel = None
            | _ -> false
          in
          let line, col = pos_of f.Typedtree.exp_loc in
          let calls =
            List.sort_uniq String.compare (List.map (fun u -> u.u_name) sub.b_uses)
          in
          st.pars <-
            { p_entry = entry; p_host = host; p_line = line; p_col = col; p_calls = calls;
              p_uses = List.rev sub.b_uses; p_locks = sub.b_locks; p_host_fallback = bare_local }
            :: st.pars)
      | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.Tast_iterator.expr it e
  and make_iter acc = { Tast_iterator.default_iterator with Tast_iterator.expr = iter_expr acc } in
  let it = make_iter acc in
  it.Tast_iterator.expr it expr

(* ----------------------------------------------- structure-level walking --- *)

let label_components st (lds : Types.label_declaration list) =
  ( List.map (fun (ld : Types.label_declaration) -> skeleton st 0 ld.Types.ld_type) lds,
    List.exists
      (fun (ld : Types.label_declaration) -> ld.Types.ld_mutable = Asttypes.Mutable)
      lds )

let type_components st (decl : Types.type_declaration) =
  let manifest =
    match decl.Types.type_manifest with Some t -> [ skeleton st 0 t ] | None -> []
  in
  match decl.Types.type_kind with
  | Types.Type_record (lds, _) ->
    let tys, mut = label_components st lds in
    (manifest @ tys, mut)
  | Types.Type_variant (cds, _) ->
    let comp =
      List.concat_map
        (fun (cd : Types.constructor_declaration) ->
          match cd.Types.cd_args with
          | Types.Cstr_tuple ts -> List.map (skeleton st 0) ts
          | Types.Cstr_record lds -> fst (label_components st lds))
        cds
    in
    (manifest @ comp, false)
  | Types.Type_abstract | Types.Type_open -> (manifest, false)

let rec pattern_globals st modname acc (pat : Typedtree.pattern) =
  match pat.Typedtree.pat_desc with
  | Typedtree.Tpat_var (id, name) ->
    let q = modname ^ "." ^ Ident.name id in
    st.toplevel <- Ident_map.add id q st.toplevel;
    let line, col = pos_of name.Location.loc in
    { gl_name = q; gl_line = line; gl_col = col; gl_ty = skeleton st 0 pat.Typedtree.pat_type }
    :: acc
  | Typedtree.Tpat_alias (p, id, name) ->
    let q = modname ^ "." ^ Ident.name id in
    st.toplevel <- Ident_map.add id q st.toplevel;
    let line, col = pos_of name.Location.loc in
    pattern_globals st modname
      ({ gl_name = q; gl_line = line; gl_col = col; gl_ty = skeleton st 0 pat.Typedtree.pat_type }
      :: acc)
      p
  | Typedtree.Tpat_tuple ps -> List.fold_left (pattern_globals st modname) acc ps
  | _ -> acc

let rec walk_structure st modname (str : Typedtree.structure) =
  (* Two passes: register every top-level ident (and type decl) first so
     forward references inside [let rec] chains and downward references in
     later bindings resolve; then scan bodies. *)
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.Typedtree.str_desc with
      | Typedtree.Tstr_type (_, tds) ->
        List.iter
          (fun (td : Typedtree.type_declaration) ->
            let q = modname ^ "." ^ Ident.name td.Typedtree.typ_id in
            st.local_types <- Ident_map.add td.Typedtree.typ_id q st.local_types)
          tds
      | _ -> ())
    str.Typedtree.str_items;
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.Typedtree.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            st.globals <- pattern_globals st modname st.globals vb.Typedtree.vb_pat)
          vbs
      | Typedtree.Tstr_type (_, tds) ->
        List.iter
          (fun (td : Typedtree.type_declaration) ->
            let q = modname ^ "." ^ Ident.name td.Typedtree.typ_id in
            let comps, mut = type_components st td.Typedtree.typ_type in
            st.types <- { td_name = q; td_components = comps; td_mutable = mut } :: st.types)
          tds
      | _ -> ())
    str.Typedtree.str_items;
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.Typedtree.str_desc with
      | Typedtree.Tstr_value (_, vbs) ->
        List.iter
          (fun (vb : Typedtree.value_binding) ->
            let host =
              match pattern_globals st modname [] vb.Typedtree.vb_pat with
              | { gl_name; _ } :: _ -> gl_name
              | [] -> modname ^ ".<init>"
            in
            let acc = new_acc () in
            scan_body st ~host acc vb.Typedtree.vb_expr;
            let line, col = pos_of vb.Typedtree.vb_loc in
            st.fns <-
              { fn_name = host; fn_line = line; fn_col = col;
                fn_calls = List.sort_uniq String.compare (List.map (fun u -> u.u_name) acc.b_uses);
                fn_uses = List.rev acc.b_uses;
                fn_effects = List.rev acc.b_effects;
                fn_locks = acc.b_locks }
              :: st.fns)
          vbs
      | Typedtree.Tstr_module mb -> (
        match (mb.Typedtree.mb_id, mb.Typedtree.mb_expr) with
        | Some id, expr -> (
          let rec unwrap (m : Typedtree.module_expr) =
            match m.Typedtree.mod_desc with
            | Typedtree.Tmod_structure s -> Some s
            | Typedtree.Tmod_constraint (m, _, _, _) -> unwrap m
            | _ -> None
          in
          match unwrap expr with
          | Some s -> walk_structure st (modname ^ "." ^ Ident.name id) s
          | None -> ())
        | None, _ -> ())
      | _ -> ())
    str.Typedtree.str_items

(* -------------------------------------------------------------- loading --- *)

(* compiler-libs keeps no mutable state across [read_cmt] (it is a magic
   check plus input_value into fresh memory), but we serialise it behind a
   mutex anyway, matching the [Parse] precedent in lint_source: the walking
   and skeletonising dominate, and they run fully parallel. *)
let read_mutex = Mutex.create ()

let read_cmt path = Mutex.protect read_mutex (fun () -> Cmt_format.read_cmt path)

let summarize ~source ~source_digest (info : Cmt_format.cmt_infos) =
  match info.Cmt_format.cmt_annots with
  | Cmt_format.Implementation str ->
    let st =
      { modname = normalize_module info.Cmt_format.cmt_modname;
        toplevel = Ident_map.empty; local_types = Ident_map.empty; types = []; globals = [];
        fns = []; pars = []; poly = [] }
    in
    walk_structure st st.modname str;
    Some
      { sm_module = st.modname; sm_source = source; sm_source_digest = source_digest;
        sm_types = List.rev st.types; sm_globals = List.rev st.globals;
        sm_fns = List.rev st.fns; sm_par_sites = List.rev st.pars; sm_poly = List.rev st.poly }
  | _ -> None

(* ------------------------------------------------------------- discovery --- *)

let roots = [ "bench"; "bin"; "lib"; "test" ]

let discover ~root =
  let build = Filename.concat root "_build/default" in
  let rec walk dir acc =
    if not (Sys.file_exists dir && Sys.is_directory dir) then acc
    else
      Array.fold_left
        (fun acc name ->
          let full = Filename.concat dir name in
          if Sys.is_directory full then walk full acc
          else if Filename.check_suffix name ".cmt" then full :: acc
          else acc)
        acc (Sys.readdir dir)
  in
  List.fold_left (fun acc r -> walk (Filename.concat build r) acc) [] roots
  |> List.sort String.compare

(* Map a cmt back to its repo-relative source, or None for generated /
   out-of-tree modules (dune's Dune__exe aliases, .ml-gen shims, ...). *)
let source_of_cmt ~root (info : Cmt_format.cmt_infos) =
  match info.Cmt_format.cmt_sourcefile with
  | None -> None
  | Some src ->
    if Filename.is_relative src
       && List.exists (fun r -> String.starts_with ~prefix:(r ^ "/") src) roots
       && Filename.check_suffix src ".ml"
       && Sys.file_exists (Filename.concat root src)
    then Some src
    else None

(* ----------------------------------------------------------------- cache --- *)

(* Content-addressed summary cache: hex digest of the .cmt file → summary.
   The summary is a pure function of the cmt bytes, so the cache needs no
   invalidation beyond the key itself; entries for vanished digests are
   dropped on save to keep the file bounded. *)

let cache_magic = "memsched-lint-cache-v1"

type cache = (string, summary option) Hashtbl.t

let load_cache path : cache =
  if not (Sys.file_exists path) then Hashtbl.create 16
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let magic = really_input_string ic (String.length cache_magic) in
          if magic <> cache_magic then None else Some (Marshal.from_channel ic : cache))
    with
    | Some c -> c
    | None -> Hashtbl.create 16
    | exception _ -> Hashtbl.create 16

let save_cache path (c : cache) =
  try
    let dir = Filename.dirname path in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc cache_magic;
        Marshal.to_channel oc c []);
    Sys.rename tmp path
  with Sys_error _ -> ()

(* ------------------------------------------------------------ entry point --- *)

type load_stats = {
  ls_modules : int;  (** summaries that entered the analysis *)
  ls_from_cache : int;  (** served by digest lookup, cmt never reopened *)
  ls_extracted : int;  (** cmt parsed and summarised this run *)
  ls_stale : int;  (** skipped: cmt older than the current source *)
}

let file_digest path = Digest.to_hex (Digest.file path)

(* Load every module summary for [root], using [cache] (updated in place).
   [map_f] is the fan-out hook: the engine passes a pool-backed parallel
   map; identity is the serial path.  Returns summaries sorted by source
   path, so everything downstream is deterministic. *)
let load_summaries ~root ~(cache : cache) ~map_f () =
  let cmts = discover ~root in
  let per_cmt path =
    let digest = file_digest path in
    match Hashtbl.find_opt cache digest with
    | Some s -> (digest, s, true)
    | None ->
      let info = read_cmt path in
      let summary =
        match source_of_cmt ~root info with
        | None -> None
        | Some source ->
          let source_digest =
            match info.Cmt_format.cmt_source_digest with
            | Some d -> Digest.to_hex d
            | None -> ""
          in
          summarize ~source ~source_digest info
      in
      (digest, summary, false)
  in
  let results = map_f per_cmt cmts in
  Hashtbl.reset cache;
  List.iter (fun (digest, s, _) -> Hashtbl.replace cache digest s) results;
  (* Dedupe by source (two cmts of one .ml keep the lexicographically first
     artifact) and drop stale summaries: a cmt built from an older edit of
     the source must not assert anything about the current tree. *)
  let stale = ref 0 in
  let seen = Hashtbl.create 64 in
  let summaries =
    List.filter_map
      (fun (_, s, _) ->
        match s with
        | None -> None
        | Some s ->
          if Hashtbl.mem seen s.sm_source then None
          else begin
            Hashtbl.replace seen s.sm_source ();
            let current =
              try file_digest (Filename.concat root s.sm_source) with Sys_error _ -> ""
            in
            if s.sm_source_digest <> "" && current <> s.sm_source_digest then begin
              incr stale;
              None
            end
            else Some s
          end)
      results
  in
  let summaries =
    List.sort (fun a b -> String.compare a.sm_source b.sm_source) summaries
  in
  let from_cache = List.length (List.filter (fun (_, _, hit) -> hit) results) in
  let stats =
    { ls_modules = List.length summaries; ls_from_cache = from_cache;
      ls_extracted = List.length results - from_cache; ls_stale = !stale }
  in
  (summaries, stats)
