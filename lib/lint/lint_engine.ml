let default_roots = [ "bench"; "bin"; "lib"; "test" ]

let is_source f = Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let skip_dir name = name = "_build" || (String.length name > 0 && name.[0] = '.')

let discover ~root =
  let rec walk rel acc =
    let full = Filename.concat root rel in
    if not (Sys.file_exists full) then acc
    else if Sys.is_directory full then
      Array.fold_left
        (fun acc name ->
          if skip_dir name then acc else walk (if rel = "" then name else rel ^ "/" ^ name) acc)
        acc (Sys.readdir full)
    else if is_source rel then rel :: acc
    else acc
  in
  List.fold_left (fun acc r -> walk r acc) [] default_roots |> List.sort String.compare

let applicable rules path = List.filter (fun (r : Lint_rules.t) -> r.Lint_rules.applies path) rules

let lint_source ?(rules = Lint_rules.all) (src : Lint_source.t) =
  let ctx = { Lint_rules.path = src.Lint_source.path } in
  let raw =
    match src.Lint_source.ast with
    | Lint_source.Intf _ -> []  (* all current rules are expression-level *)
    | Lint_source.Impl str ->
      List.concat_map (fun (r : Lint_rules.t) -> r.Lint_rules.check ctx str) (applicable rules src.Lint_source.path)
  in
  raw
  |> List.filter (fun f -> not (Lint_source.suppressed src f))
  |> List.sort_uniq Lint_finding.compare

let lint_string ?rules ~path s =
  match Lint_source.of_string ~path s with
  | Error f -> [ f ]
  | Ok src -> lint_source ?rules src

let run ?rules ?(jobs = 1) ~root () =
  match Lint_allowlist.load (Filename.concat root "lint.allowlist") with
  | Error msg -> Error ("lint.allowlist: " ^ msg)
  | Ok allow ->
    let files = discover ~root in
    let lint_file rel =
      match Lint_source.load ~root rel with
      | Error f -> [ f ]
      | Ok src -> lint_source ?rules src
    in
    let per_file = Par.with_pool ~jobs (fun pool -> Par.parallel_map pool ~f:lint_file files) in
    Ok (List.concat per_file |> Lint_allowlist.filter allow |> List.sort_uniq Lint_finding.compare)

(* ------------------------------------------------------------ typed pass --- *)

type typed_stats = {
  tp_modules : int;
  tp_from_cache : int;
  tp_extracted : int;
  tp_stale : int;
}

let default_cache_file ~root = Filename.concat root "_build/.lint_cache"

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ -> None

let run_typed ?(jobs = 1) ?cache_file ~root () =
  match Lint_allowlist.load (Filename.concat root "lint.allowlist") with
  | Error msg -> Error ("lint.allowlist: " ^ msg)
  | Ok allow ->
    let cache_path = match cache_file with Some p -> p | None -> default_cache_file ~root in
    let cache = Lint_cmt.load_cache cache_path in
    let map_f f xs = Par.with_pool ~jobs (fun pool -> Par.parallel_map pool ~f xs) in
    let summaries, ls = Lint_cmt.load_summaries ~root ~cache ~map_f () in
    Lint_cmt.save_cache cache_path cache;
    if summaries = [] then
      Error "typed pass: no usable .cmt artifacts under _build/default (run `dune build @check`)"
    else
      let allows_of rel =
        match read_file (Filename.concat root rel) with
        | Some text -> Lint_source.scan_allows text
        | None -> []
      in
      let pg = Lint_callgraph.build ~allows_of summaries in
      let findings =
        Lint_typed_rules.check pg
        |> List.filter (fun (f : Lint_finding.t) ->
             not
               (Lint_callgraph.allows_at pg ~file:f.Lint_finding.file ~line:f.Lint_finding.line
                  ~rule:f.Lint_finding.rule))
        |> Lint_allowlist.filter allow
        |> List.sort_uniq Lint_finding.compare
      in
      let stats =
        { tp_modules = ls.Lint_cmt.ls_modules; tp_from_cache = ls.Lint_cmt.ls_from_cache;
          tp_extracted = ls.Lint_cmt.ls_extracted; tp_stale = ls.Lint_cmt.ls_stale }
      in
      Ok (findings, pg, stats)

(* ------------------------------------------------------------ debt report --- *)

type debt = {
  db_pragmas : (string * int * string) list;  (** (file, line, rule), sorted *)
  db_allowlist : Lint_allowlist.entry list;
}

let debt ~root () =
  match Lint_allowlist.load (Filename.concat root "lint.allowlist") with
  | Error msg -> Error ("lint.allowlist: " ^ msg)
  | Ok entries ->
    let pragmas =
      List.concat_map
        (fun rel ->
          match read_file (Filename.concat root rel) with
          | None -> []
          | Some text -> List.map (fun (line, rule) -> (rel, line, rule)) (Lint_source.scan_allows text))
        (discover ~root)
      |> List.sort compare
    in
    Ok { db_pragmas = pragmas; db_allowlist = entries }

let debt_by_rule d =
  let bump rule m =
    let prev = match List.assoc_opt rule m with Some n -> n | None -> 0 in
    (rule, prev + 1) :: List.remove_assoc rule m
  in
  let m = List.fold_left (fun m (_, _, rule) -> bump rule m) [] d.db_pragmas in
  let m =
    List.fold_left (fun m (e : Lint_allowlist.entry) -> bump e.Lint_allowlist.rule m) m d.db_allowlist
  in
  List.sort compare m

let render_debt_text d =
  let b = Buffer.create 1024 in
  Buffer.add_string b "suppression debt\n";
  Buffer.add_string b
    (Printf.sprintf "  inline pragmas: %d\n  allowlist entries: %d\n" (List.length d.db_pragmas)
       (List.length d.db_allowlist));
  if debt_by_rule d <> [] then begin
    Buffer.add_string b "  by rule:\n";
    List.iter
      (fun (rule, n) -> Buffer.add_string b (Printf.sprintf "    %-16s %d\n" rule n))
      (debt_by_rule d)
  end;
  List.iter
    (fun (file, line, rule) -> Buffer.add_string b (Printf.sprintf "  pragma %s:%d [%s]\n" file line rule))
    d.db_pragmas;
  List.iter
    (fun (e : Lint_allowlist.entry) ->
      Buffer.add_string b
        (Printf.sprintf "  allowlist %s [%s]\n" e.Lint_allowlist.file e.Lint_allowlist.rule))
    d.db_allowlist;
  Buffer.contents b

let render_debt_json d =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"pragmas\":[";
  List.iteri
    (fun i (file, line, rule) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n  {\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\"}"
           (Lint_finding.json_escape file) line (Lint_finding.json_escape rule)))
    d.db_pragmas;
  if d.db_pragmas <> [] then Buffer.add_char b '\n';
  Buffer.add_string b "],\"allowlist\":[";
  List.iteri
    (fun i (e : Lint_allowlist.entry) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n  {\"file\":\"%s\",\"rule\":\"%s\"}"
           (Lint_finding.json_escape e.Lint_allowlist.file)
           (Lint_finding.json_escape e.Lint_allowlist.rule)))
    d.db_allowlist;
  if d.db_allowlist <> [] then Buffer.add_char b '\n';
  Buffer.add_string b "],\"by_rule\":{";
  List.iteri
    (fun i (rule, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (Lint_finding.json_escape rule) n))
    (debt_by_rule d);
  Buffer.add_string b
    (Printf.sprintf "},\"pragma_count\":%d,\"allowlist_count\":%d}\n" (List.length d.db_pragmas)
       (List.length d.db_allowlist));
  Buffer.contents b

let render_text findings =
  let b = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string b (Lint_finding.to_text f);
      Buffer.add_char b '\n')
    findings;
  Buffer.add_string b
    (match List.length findings with
    | 0 -> "lint: clean\n"
    | 1 -> "lint: 1 finding\n"
    | n -> Printf.sprintf "lint: %d findings\n" n);
  Buffer.contents b

let render_json findings =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  ";
      Buffer.add_string b (Lint_finding.to_json f))
    findings;
  if findings <> [] then Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "],\"count\":%d}\n" (List.length findings));
  Buffer.contents b
