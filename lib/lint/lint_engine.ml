let default_roots = [ "bench"; "bin"; "lib"; "test" ]

let is_source f = Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let skip_dir name = name = "_build" || (String.length name > 0 && name.[0] = '.')

let discover ~root =
  let rec walk rel acc =
    let full = Filename.concat root rel in
    if not (Sys.file_exists full) then acc
    else if Sys.is_directory full then
      Array.fold_left
        (fun acc name ->
          if skip_dir name then acc else walk (if rel = "" then name else rel ^ "/" ^ name) acc)
        acc (Sys.readdir full)
    else if is_source rel then rel :: acc
    else acc
  in
  List.fold_left (fun acc r -> walk r acc) [] default_roots |> List.sort String.compare

let applicable rules path = List.filter (fun (r : Lint_rules.t) -> r.Lint_rules.applies path) rules

let lint_source ?(rules = Lint_rules.all) (src : Lint_source.t) =
  let ctx = { Lint_rules.path = src.Lint_source.path } in
  let raw =
    match src.Lint_source.ast with
    | Lint_source.Intf _ -> []  (* all current rules are expression-level *)
    | Lint_source.Impl str ->
      List.concat_map (fun (r : Lint_rules.t) -> r.Lint_rules.check ctx str) (applicable rules src.Lint_source.path)
  in
  raw
  |> List.filter (fun f -> not (Lint_source.suppressed src f))
  |> List.sort_uniq Lint_finding.compare

let lint_string ?rules ~path s =
  match Lint_source.of_string ~path s with
  | Error f -> [ f ]
  | Ok src -> lint_source ?rules src

let run ?rules ?(jobs = 1) ~root () =
  match Lint_allowlist.load (Filename.concat root "lint.allowlist") with
  | Error msg -> Error ("lint.allowlist: " ^ msg)
  | Ok allow ->
    let files = discover ~root in
    let lint_file rel =
      match Lint_source.load ~root rel with
      | Error f -> [ f ]
      | Ok src -> lint_source ?rules src
    in
    let per_file = Par.with_pool ~jobs (fun pool -> Par.parallel_map pool ~f:lint_file files) in
    Ok (List.concat per_file |> Lint_allowlist.filter allow |> List.sort_uniq Lint_finding.compare)

let render_text findings =
  let b = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string b (Lint_finding.to_text f);
      Buffer.add_char b '\n')
    findings;
  Buffer.add_string b
    (match List.length findings with
    | 0 -> "lint: clean\n"
    | 1 -> "lint: 1 finding\n"
    | n -> Printf.sprintf "lint: %d findings\n" n);
  Buffer.contents b

let render_json findings =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  ";
      Buffer.add_string b (Lint_finding.to_json f))
    findings;
  if findings <> [] then Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "],\"count\":%d}\n" (List.length findings));
  Buffer.contents b
