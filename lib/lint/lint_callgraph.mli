(** Cross-module program assembly over {!Lint_cmt} summaries: function
    table, type-declaration fixpoints, transitive effect lattice, and
    mutable-state reachability with witness chains.  Deterministic given
    the (sorted) summary list. *)

module Smap : Map.S with type key = string

type program = {
  pg_summaries : Lint_cmt.summary list;
  pg_fns : (Lint_cmt.fn_summary * string) Smap.t;  (** fn → (summary, source file) *)
  pg_types : Lint_cmt.type_summary Smap.t;
  pg_globals : (Lint_cmt.global_summary * string) Smap.t;
  pg_allows : (int * string) list Smap.t;  (** source file → inline pragmas *)
}

val build : allows_of:(string -> (int * string) list) -> Lint_cmt.summary list -> program
(** Assemble the program; [allows_of] maps a repo-relative source path to
    its inline suppression pragmas (see {!Lint_source.scan_allows}). *)

val allows_at : program -> file:string -> line:int -> rule:string -> bool
(** Whether an inline pragma sanctions [rule] at [file:line] (pragma on the
    same line or the line above, matching the syntactic pass). *)

(** {1 Type instantiation queries} *)

type poly_hit = Hit_float | Hit_arrow | Clean

val float_or_arrow : program -> Lint_cmt.ty -> poly_hit
(** Does structural comparison of this type reach a float or an arrow?
    Looks through declared components cross-module; Float wins over Arrow. *)

val mutable_carrier : program -> Lint_cmt.ty -> string option
(** [Some desc] when the type carries an unprotected mutable cell (ref,
    array, Hashtbl.t, mutable record field, ...); [Atomic.t]/[Mutex.t] and
    friends are protection boundaries and end the search. *)

(** {1 Effect lattice} *)

module Kset : Set.S with type elt = Lint_cmt.effect_kind

type effects = {
  ef_kinds : Kset.t Smap.t;
  ef_direct : Lint_cmt.base_effect list Smap.t;
}

val effects : program -> effects
(** Fixpoint of [eff f = direct f ∪ ⋃ eff (callees f)].  Direct effects in
    effect-boundary modules ([lib/par/*], [lib/util/rng.ml]) contribute
    nothing; console IO in sanctioned writers ([lib/util/csv.ml],
    [lib/util/table.ml]) is dropped; pragma-sanctioned lines do not seed
    the lattice. *)

val fn_kinds : effects -> string -> Kset.t

val effect_chain :
  program -> effects -> string -> Lint_cmt.effect_kind -> string list * Lint_cmt.base_effect option
(** Deterministic witness: the call chain from a function down to a direct
    culprit of the given kind (direct effects preferred, then the
    alphabetically-first effectful callee). *)

(** {1 Race reachability} *)

val mutable_globals : program -> (string * string) Smap.t
(** Module-level globals whose type carries an unprotected mutable cell,
    minus definitions sanctioned by a [domain-race] pragma.  Value is
    (constructor description, defining file). *)

type race_hit = {
  rh_global : string;
  rh_desc : string;
  rh_via : string list;  (** call chain from the closure; [] = direct touch *)
}

val reach_mutables :
  program ->
  muts:(string * string) Smap.t ->
  start_file:string ->
  start_uses:Lint_cmt.use list ->
  start_calls:string list ->
  start_locked:bool ->
  race_hit list
(** BFS from a task closure's frame through the call graph, collecting
    unprotected touches of [muts].  Mutex-taking functions are treated as
    protected wholesale.  One hit per global, shortest chain first,
    deterministic. *)
