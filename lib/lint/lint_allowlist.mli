(** The checked-in grandfather list ([lint.allowlist] at the repo root).

    One entry per line: [<rule-id> <repo-relative-path>], optionally
    followed by [# reason].  Blank lines and lines starting with [#] are
    ignored.  An entry silences every finding of exactly that rule in
    exactly that file — nothing else — so adding a new violation of a
    different rule (or in a different file) still fails the build. *)

type entry = { rule : string; file : string }

val parse_string : string -> (entry list, string) result
(** [Error] carries a [line N: ...] message for the first malformed line. *)

val load : string -> (entry list, string) result
(** [load path]: a missing file is an empty allowlist. *)

val filter : entry list -> Lint_finding.t list -> Lint_finding.t list
(** Drop the findings an entry covers. *)
