(** A single static-analysis finding.

    Findings are plain data: the engine produces them, the renderers turn
    them into [file:line:col] text or JSON, and the test-suite compares them
    structurally.  The total order {!compare} — (file, line, col, rule,
    message) — is what makes every report deterministic: the engine sorts
    with it after the (possibly parallel) per-file passes, so output bytes
    never depend on scheduling. *)

type t = {
  rule : string;  (** rule id, e.g. ["determinism"] *)
  file : string;  (** repo-root-relative path, ['/']-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  message : string;  (** what is wrong at this location *)
  hint : string;  (** how to fix (or suppress) it *)
}

val v : rule:string -> file:string -> line:int -> col:int -> hint:string -> string -> t

val compare : t -> t -> int
(** Total order by (file, line, col, rule, message, hint). *)

val to_text : t -> string
(** One line: [file:line:col: [rule] message (fix: hint)]. *)

val to_json : t -> string
(** One JSON object on one line, keys in fixed order
    [file, line, col, rule, message, hint]. *)

val json_escape : string -> string
(** Minimal JSON string escaping (backslash, quote, control chars). *)
