(** Driver: discover files, parse, run rules, suppress, sort, render.

    Determinism contract (the same one the campaign CSVs obey): the report
    is a pure function of the file contents.  Files are discovered in
    sorted order, per-file work may fan out over the [lib/par] pool
    ([jobs > 1]), and findings are re-sorted with {!Lint_finding.compare}
    afterwards — so text and JSON output are byte-identical for every
    [jobs] count. *)

val default_roots : string list
(** [["bench"; "bin"; "lib"; "test"]] — every directory the build compiles. *)

val discover : root:string -> string list
(** Sorted repo-relative paths of every [.ml]/[.mli] under the default
    roots (skipping [_build] and dotted directories). *)

val lint_source : ?rules:Lint_rules.t list -> Lint_source.t -> Lint_finding.t list
(** Run [rules] (default: the full registry) on one parsed file, honouring
    its inline pragmas.  Findings come back sorted and deduplicated. *)

val lint_string : ?rules:Lint_rules.t list -> path:string -> string -> Lint_finding.t list
(** Parse and lint one in-memory file; a parse failure is itself returned
    as the single ["parse"] finding.  Used by the fixture tests. *)

val run :
  ?rules:Lint_rules.t list -> ?jobs:int -> root:string -> unit -> (Lint_finding.t list, string) result
(** Lint the whole tree under [root], applying [root/lint.allowlist].
    [Error] only for a malformed allowlist; findings (including parse
    failures) are data, not errors. *)

(** {1 Typed interprocedural pass} *)

type typed_stats = {
  tp_modules : int;  (** module summaries that entered the analysis *)
  tp_from_cache : int;  (** served by cmt-digest lookup, never reopened *)
  tp_extracted : int;  (** cmts parsed and summarised this run *)
  tp_stale : int;  (** skipped: cmt older than the current source *)
}

val default_cache_file : root:string -> string
(** [root/_build/.lint_cache] — the content-addressed summary cache. *)

val run_typed :
  ?jobs:int ->
  ?cache_file:string ->
  root:string ->
  unit ->
  (Lint_finding.t list * Lint_callgraph.program * typed_stats, string) result
(** Run the typed rules (domain-race, poly-compare, effect-purity) over the
    [.cmt] artifacts under [root/_build/default].  Same determinism
    contract as {!run}: findings are pragma- and allowlist-filtered and
    sorted, byte-identical for every [jobs] count.  The returned program
    feeds {!Lint_typed_rules.effects_json}.  [Error] for a malformed
    allowlist or when no usable cmt exists (build [@check] first). *)

(** {1 Suppression-debt report} *)

type debt = {
  db_pragmas : (string * int * string) list;  (** (file, line, rule), sorted *)
  db_allowlist : Lint_allowlist.entry list;
}

val debt : root:string -> unit -> (debt, string) result
(** Census of every inline pragma and allowlist entry under [root]. *)

val render_debt_text : debt -> string
val render_debt_json : debt -> string

val render_text : Lint_finding.t list -> string
(** One line per finding plus a trailing summary line. *)

val render_json : Lint_finding.t list -> string
(** Stable JSON document: findings sorted by (file, line, col, rule), one
    object per line, and a [count] field.  Byte-identical across [jobs]
    counts, so it can be golden-tested like the campaign CSVs. *)
