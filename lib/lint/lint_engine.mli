(** Driver: discover files, parse, run rules, suppress, sort, render.

    Determinism contract (the same one the campaign CSVs obey): the report
    is a pure function of the file contents.  Files are discovered in
    sorted order, per-file work may fan out over the [lib/par] pool
    ([jobs > 1]), and findings are re-sorted with {!Lint_finding.compare}
    afterwards — so text and JSON output are byte-identical for every
    [jobs] count. *)

val default_roots : string list
(** [["bench"; "bin"; "lib"; "test"]] — every directory the build compiles. *)

val discover : root:string -> string list
(** Sorted repo-relative paths of every [.ml]/[.mli] under the default
    roots (skipping [_build] and dotted directories). *)

val lint_source : ?rules:Lint_rules.t list -> Lint_source.t -> Lint_finding.t list
(** Run [rules] (default: the full registry) on one parsed file, honouring
    its inline pragmas.  Findings come back sorted and deduplicated. *)

val lint_string : ?rules:Lint_rules.t list -> path:string -> string -> Lint_finding.t list
(** Parse and lint one in-memory file; a parse failure is itself returned
    as the single ["parse"] finding.  Used by the fixture tests. *)

val run :
  ?rules:Lint_rules.t list -> ?jobs:int -> root:string -> unit -> (Lint_finding.t list, string) result
(** Lint the whole tree under [root], applying [root/lint.allowlist].
    [Error] only for a malformed allowlist; findings (including parse
    failures) are data, not errors. *)

val render_text : Lint_finding.t list -> string
(** One line per finding plus a trailing summary line. *)

val render_json : Lint_finding.t list -> string
(** Stable JSON document: findings sorted by (file, line, col, rule), one
    object per line, and a [count] field.  Byte-identical across [jobs]
    counts, so it can be golden-tested like the campaign CSVs. *)
