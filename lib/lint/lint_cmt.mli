(** Typed-pass front-end: turn the [.cmt] Typedtree artifacts under
    [_build/default] into serializable per-module summaries that the
    call-graph and typed rules consume.  Summaries are pure functions of
    the cmt bytes, which makes them content-addressed-cacheable. *)

(** Marshal-friendly skeleton of a [Types.type_expr]: enough shape to
    answer float-carrying / arrow-carrying / mutable-carrying questions
    once the cross-module declaration table exists. *)
type ty =
  | Float
  | Arrow
  | Var
  | Opaque
  | Constr of string * ty list
  | Tuple of ty list

type use = { u_name : string; u_line : int; u_col : int }

type effect_kind = Nondet | Unordered | Io

type base_effect = { e_kind : effect_kind; e_culprit : string; e_line : int; e_col : int }

type fn_summary = {
  fn_name : string;
  fn_line : int;
  fn_col : int;
  fn_calls : string list;
  fn_uses : use list;
  fn_effects : base_effect list;
  fn_locks : bool;
}

type par_site = {
  p_entry : string;
  p_host : string;
  p_line : int;
  p_col : int;
  p_calls : string list;
  p_uses : use list;
  p_locks : bool;
  p_host_fallback : bool;
}

type type_summary = { td_name : string; td_components : ty list; td_mutable : bool }

type global_summary = { gl_name : string; gl_line : int; gl_col : int; gl_ty : ty }

type poly_site = { ps_op : string; ps_ty : ty; ps_line : int; ps_col : int }

type summary = {
  sm_module : string;
  sm_source : string;
  sm_source_digest : string;
  sm_types : type_summary list;
  sm_globals : global_summary list;
  sm_fns : fn_summary list;
  sm_par_sites : par_site list;
  sm_poly : poly_site list;
}

val effect_kind_name : effect_kind -> string
(** "nondet" / "unordered-iter" / "console-io". *)

val effect_shadow_rule : effect_kind -> string
(** The syntactic rule id whose inline pragma also sanctions this effect
    kind at a given line ("determinism", "order-stability", or a
    never-matching id for Io, which has no syntactic twin at line level). *)

val par_entries : string list
(** Qualified pool entry points whose task argument runs on worker domains. *)

val discover : root:string -> string list
(** All [.cmt] files under [root/_build/default/{bench,bin,lib,test}],
    sorted. *)

type cache

val load_cache : string -> cache
(** Load the marshalled digest→summary cache; missing or corrupt files
    yield an empty cache. *)

val save_cache : string -> cache -> unit
(** Atomically persist the cache (tmp + rename); IO errors are ignored. *)

type load_stats = {
  ls_modules : int;
  ls_from_cache : int;
  ls_extracted : int;
  ls_stale : int;
}

val load_summaries :
  root:string ->
  cache:cache ->
  map_f:((string -> string * summary option * bool) -> string list -> (string * summary option * bool) list) ->
  unit ->
  summary list * load_stats
(** Load every module summary for [root]. [cache] is consulted by cmt
    digest and rewritten in place to exactly the current digest set.
    [map_f] is the fan-out hook (the engine passes a pool-backed parallel
    map; [fun f xs -> List.map f xs] is the serial path). Summaries come
    back sorted by source path with stale ones (cmt older than the
    current source) dropped and counted. *)
