(** The project-invariant rule registry.

    Each rule is a purely syntactic pass over one file's {!Parsetree}
    (interfaces carry no expressions, so rules only inspect structures).
    Rules are deliberately conservative: they flag what is {e syntactically
    evident} and rely on inline pragmas / the allowlist for the deliberate
    exceptions, rather than guessing types.

    Rule ids (each independently selectable from the CLI):
    - ["determinism"] — wall-clock and unseeded-randomness sources
      ([Random.*], [Sys.time], [Unix.gettimeofday]/[Unix.time],
      [Domain.self]) outside [lib/par/] and [lib/util/rng.ml]: all
      randomness must flow through the seeded SplitMix64 [Rng] or the
      campaign is not replayable.
    - ["float-discipline"] — polymorphic [=], [<>], [compare], [min],
      [max] applied to a syntactically-evident float operand outside
      [lib/util/fp.ml]: epsilon comparisons belong to the [Fp] helpers,
      intentional exact ones to [Float.equal]/[Float.compare]/
      [Float.min]/[Float.max].
    - ["domain-safety"] — top-level [ref]/[Hashtbl.create]/[Queue.create]/
      [Stack.create]/[Buffer.create] globals in [lib/] (outside [lib/par/])
      that pool tasks could share unsynchronised (wrap in [Atomic]/[Mutex]
      or annotate), and [Mutex.lock] in a binding with no matching
      [Mutex.unlock]/[Fun.protect].
    - ["io-purity"] — console output ([print_*], [Printf.printf],
      [Format.printf], [stdout]/[stderr], ...) in [lib/] outside the
      [Table]/[Csv] writers: libraries return data, [bin/] prints.
    - ["order-stability"] — [Hashtbl.iter]/[Hashtbl.fold]/[Hashtbl.to_seq*]
      anywhere: bucket order depends on insertion history, which breaks
      golden CSV digests unless the result is re-sorted (annotate those). *)

type ctx = { path : string }  (** repo-root-relative path of the file being checked *)

type t = {
  id : string;
  doc : string;  (** one-line description for [--help] and the docs *)
  applies : string -> bool;  (** path filter (carve-outs live here) *)
  check : ctx -> Parsetree.structure -> Lint_finding.t list;
}

val all : t list
(** Registry in canonical order: determinism, float-discipline,
    domain-safety, io-purity, order-stability. *)

val names : string list
val find : string -> t option
