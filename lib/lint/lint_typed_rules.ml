(* The three semantic rule families that run on the typed call graph:

   - domain-race: module-level mutable state reachable from closures handed
     to the lib/par pool without Atomic/Mutex protection;
   - poly-compare: polymorphic =/compare/Hashtbl.hash/List.mem instantiated
     at types carrying floats or arrows;
   - effect-purity: transitive nondeterminism / unordered-iteration /
     console-IO effects surfacing at scheduling-core entry points.

   Pure summary → finding producers; the engine owns pragma/allowlist
   filtering and sorting. *)

module Smap = Lint_callgraph.Smap

let names = [ "domain-race"; "effect-purity"; "poly-compare" ]

let docs =
  [ ("domain-race",
     "mutable module state reachable from lib/par task closures without Atomic/Mutex protection");
    ("effect-purity",
     "scheduling-core functions transitively reaching nondeterminism, unordered iteration or console IO");
    ("poly-compare",
     "polymorphic =/compare/hash/mem instantiated at types containing float or functions") ]

(* ------------------------------------------------------------- rendering --- *)

let rec ty_to_string (ty : Lint_cmt.ty) =
  match ty with
  | Lint_cmt.Float -> "float"
  | Lint_cmt.Arrow -> "_ -> _"
  | Lint_cmt.Var | Lint_cmt.Opaque -> "_"
  | Lint_cmt.Tuple ts -> "(" ^ String.concat " * " (List.map ty_arg_string ts) ^ ")"
  | Lint_cmt.Constr (n, []) -> n
  | Lint_cmt.Constr (n, [ a ]) -> ty_arg_string a ^ " " ^ n
  | Lint_cmt.Constr (n, args) ->
    "(" ^ String.concat ", " (List.map ty_to_string args) ^ ") " ^ n

and ty_arg_string ty =
  match ty with
  | Lint_cmt.Arrow | Lint_cmt.Tuple _ -> "(" ^ ty_to_string ty ^ ")"
  | _ -> ty_to_string ty

(* ------------------------------------------------------------ domain-race --- *)

let check_races pg =
  let muts = Lint_callgraph.mutable_globals pg in
  List.concat_map
    (fun (s : Lint_cmt.summary) ->
      List.concat_map
        (fun (p : Lint_cmt.par_site) ->
          let start_uses, start_calls, start_locked =
            if p.Lint_cmt.p_host_fallback then
              (* the task was a let-bound local closure: its body is part of
                 the host function's summary *)
              match Smap.find_opt p.Lint_cmt.p_host pg.Lint_callgraph.pg_fns with
              | Some ((f : Lint_cmt.fn_summary), _) ->
                (f.Lint_cmt.fn_uses, f.Lint_cmt.fn_calls, f.Lint_cmt.fn_locks)
              | None -> (p.Lint_cmt.p_uses, p.Lint_cmt.p_calls, p.Lint_cmt.p_locks)
            else (p.Lint_cmt.p_uses, p.Lint_cmt.p_calls, p.Lint_cmt.p_locks)
          in
          let hits =
            Lint_callgraph.reach_mutables pg ~muts ~start_file:s.Lint_cmt.sm_source ~start_uses
              ~start_calls ~start_locked
          in
          List.map
            (fun (h : Lint_callgraph.race_hit) ->
              let via =
                match h.Lint_callgraph.rh_via with
                | [] -> ""
                | chain -> " via " ^ String.concat " -> " chain
              in
              Lint_finding.v ~rule:"domain-race" ~file:s.Lint_cmt.sm_source
                ~line:p.Lint_cmt.p_line ~col:p.Lint_cmt.p_col
                ~hint:
                  "protect it with Atomic/Mutex, pass state through the task argument, or add (* \
                   lint: allow domain-race -- reason *)"
                (Printf.sprintf
                   "closure passed to %s reaches module-level mutable state %s (%s)%s without \
                    Atomic/Mutex protection"
                   p.Lint_cmt.p_entry h.Lint_callgraph.rh_global h.Lint_callgraph.rh_desc via))
            hits)
        s.Lint_cmt.sm_par_sites)
    pg.Lint_callgraph.pg_summaries

(* ----------------------------------------------------------- poly-compare --- *)

(* lib/util/fp.ml is the sanctioned float-comparison module: its whole
   point is to centralise the raw comparisons everyone else must avoid. *)
let poly_exempt file = file = "lib/util/fp.ml"

(* The float arm is skipped under test/: the suite's structural-equality
   asserts are bit-identity checks by design (jobs parity, golden replay),
   and a tolerance there would *weaken* them.  The arrow arm still applies
   everywhere — comparing closures raises at runtime in tests too. *)
let float_exempt file = String.starts_with ~prefix:"test/" file

let check_poly pg =
  List.concat_map
    (fun (s : Lint_cmt.summary) ->
      if poly_exempt s.Lint_cmt.sm_source then []
      else
        List.filter_map
          (fun (p : Lint_cmt.poly_site) ->
            match Lint_callgraph.float_or_arrow pg p.Lint_cmt.ps_ty with
            | Lint_callgraph.Clean -> None
            | Lint_callgraph.Hit_float when float_exempt s.Lint_cmt.sm_source -> None
            | Lint_callgraph.Hit_float ->
              Some
                (Lint_finding.v ~rule:"poly-compare" ~file:s.Lint_cmt.sm_source
                   ~line:p.Lint_cmt.ps_line ~col:p.Lint_cmt.ps_col
                   ~hint:
                     "compare floats through Fp (or a type-specific compare) so NaN/ulp behaviour \
                      is explicit, or add (* lint: allow poly-compare -- reason *)"
                   (Printf.sprintf "polymorphic %s instantiated at %s, which contains float"
                      p.Lint_cmt.ps_op
                      (ty_to_string p.Lint_cmt.ps_ty)))
            | Lint_callgraph.Hit_arrow ->
              Some
                (Lint_finding.v ~rule:"poly-compare" ~file:s.Lint_cmt.sm_source
                   ~line:p.Lint_cmt.ps_line ~col:p.Lint_cmt.ps_col
                   ~hint:
                     "structural comparison raises on functions at runtime; compare on a key \
                      projection instead, or add (* lint: allow poly-compare -- reason *)"
                   (Printf.sprintf "polymorphic %s instantiated at %s, which contains a function"
                      p.Lint_cmt.ps_op
                      (ty_to_string p.Lint_cmt.ps_ty))))
          s.Lint_cmt.sm_poly)
    pg.Lint_callgraph.pg_summaries

(* ---------------------------------------------------------- effect-purity --- *)

(* The determinism-critical core: list scheduling and the event simulator.
   Effects are reported only where they *enter* the core — a direct culprit
   or a call out to a non-core effectful function — so one leak produces
   one finding instead of condemning every transitive caller. *)
let core_file file =
  String.starts_with ~prefix:"lib/core/" file || String.starts_with ~prefix:"lib/sim/" file

let effect_enters pg ef name kind =
  let direct =
    match Smap.find_opt name ef.Lint_callgraph.ef_direct with
    | Some es -> List.exists (fun (e : Lint_cmt.base_effect) -> e.Lint_cmt.e_kind = kind) es
    | None -> false
  in
  direct
  ||
  match Smap.find_opt name pg.Lint_callgraph.pg_fns with
  | None -> false
  | Some ((f : Lint_cmt.fn_summary), _) ->
    List.exists
      (fun callee ->
        match Smap.find_opt callee pg.Lint_callgraph.pg_fns with
        | Some (_, callee_file) ->
          (not (core_file callee_file))
          && Lint_callgraph.Kset.mem kind (Lint_callgraph.fn_kinds ef callee)
        | None -> false)
      f.Lint_cmt.fn_calls

let effect_finding pg ef name (f : Lint_cmt.fn_summary) file kind =
  let chain, culprit = Lint_callgraph.effect_chain pg ef name kind in
  let culprit_s =
    match culprit with Some (e : Lint_cmt.base_effect) -> " -> " ^ e.Lint_cmt.e_culprit | None -> ""
  in
  Lint_finding.v ~rule:"effect-purity" ~file ~line:f.Lint_cmt.fn_line ~col:f.Lint_cmt.fn_col
    ~hint:
      "keep the scheduling core pure: thread Rng/time/output through parameters, or add (* lint: \
       allow effect-purity -- reason *)"
    (Printf.sprintf "core function %s reaches %s effect: %s%s" name
       (Lint_cmt.effect_kind_name kind)
       (String.concat " -> " chain)
       culprit_s)

let check_effects pg =
  let ef = Lint_callgraph.effects pg in
  Smap.fold
    (fun name ((f : Lint_cmt.fn_summary), file) acc ->
      if not (core_file file) then acc
      else
        Lint_callgraph.Kset.fold
          (fun kind acc ->
            if effect_enters pg ef name kind then effect_finding pg ef name f file kind :: acc
            else acc)
          (Lint_callgraph.fn_kinds ef name) acc)
    pg.Lint_callgraph.pg_fns []

(* ----------------------------------------------------------- entry points --- *)

let check pg = check_races pg @ check_poly pg @ check_effects pg

(* Per-function inferred-effect summary as JSON: effectful functions with
   their witness chains, plus counts.  Sorted by function name. *)
let effects_json pg =
  let ef = Lint_callgraph.effects pg in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"functions\":[";
  let total = ref 0 in
  let effectful = ref 0 in
  Smap.iter
    (fun name ((_ : Lint_cmt.fn_summary), file) ->
      incr total;
      let kinds = Lint_callgraph.fn_kinds ef name in
      if not (Lint_callgraph.Kset.is_empty kinds) then begin
        if !effectful > 0 then Buffer.add_char b ',';
        incr effectful;
        let fn_pos =
          match Smap.find_opt name pg.Lint_callgraph.pg_fns with
          | Some (f, _) -> f.Lint_cmt.fn_line
          | None -> 0
        in
        Buffer.add_string b
          (Printf.sprintf "\n  {\"fn\":\"%s\",\"file\":\"%s\",\"line\":%d,\"effects\":["
             (Lint_finding.json_escape name)
             (Lint_finding.json_escape file)
             fn_pos);
        let first = ref true in
        Lint_callgraph.Kset.iter
          (fun k ->
            if not !first then Buffer.add_char b ',';
            first := false;
            Buffer.add_string b (Printf.sprintf "\"%s\"" (Lint_cmt.effect_kind_name k)))
          kinds;
        Buffer.add_string b "],\"witness\":{";
        let first = ref true in
        Lint_callgraph.Kset.iter
          (fun k ->
            if not !first then Buffer.add_char b ',';
            first := false;
            let chain, culprit = Lint_callgraph.effect_chain pg ef name k in
            let chain =
              match culprit with
              | Some (e : Lint_cmt.base_effect) -> chain @ [ e.Lint_cmt.e_culprit ]
              | None -> chain
            in
            Buffer.add_string b
              (Printf.sprintf "\"%s\":\"%s\""
                 (Lint_cmt.effect_kind_name k)
                 (Lint_finding.json_escape (String.concat " -> " chain))))
          kinds;
        Buffer.add_string b "}}"
      end)
    pg.Lint_callgraph.pg_fns;
  if !effectful > 0 then Buffer.add_char b '\n';
  Buffer.add_string b
    (Printf.sprintf "],\"effectful\":%d,\"pure\":%d,\"total\":%d}\n" !effectful
       (!total - !effectful) !total);
  Buffer.contents b
