type ast =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature

type t = {
  path : string;
  ast : ast;
  allows : (int * string) list;
}

(* ------------------------------------------------------ pragma scanning --- *)

let pragma_marker = "lint: allow "

let is_id_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '-' || c = '_'

let find_marker line =
  let n = String.length line and m = String.length pragma_marker in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pragma_marker then Some (i + m)
    else go (i + 1)
  in
  go 0

let scan_allows src =
  let lines = String.split_on_char '\n' src in
  List.concat
    (List.mapi
       (fun i line ->
         match find_marker line with
         | None -> []
         | Some j ->
           let n = String.length line in
           let k = ref j in
           while !k < n && is_id_char line.[!k] do
             incr k
           done;
           if !k = j then [] else [ (i + 1, String.sub line j (!k - j)) ])
       lines)

let suppressed t (f : Lint_finding.t) =
  List.exists (fun (l, rule) -> rule = f.Lint_finding.rule && (l = f.Lint_finding.line || l + 1 = f.Lint_finding.line)) t.allows

(* -------------------------------------------------------------- parsing --- *)

(* The compiler-libs lexer mutates module-level buffers (string literals,
   comment nesting), so two domains must never lex at the same time.  The
   AST the parser returns is immutable; only the Parse call is locked. *)
let parse_mutex = Mutex.create ()

let error_finding ~path exn =
  let line, col, msg =
    match Location.error_of_exn exn with
    | Some (`Ok report) ->
      let loc = report.Location.main.Location.loc in
      let p = loc.Location.loc_start in
      ( p.Lexing.pos_lnum,
        p.Lexing.pos_cnum - p.Lexing.pos_bol + 1,
        Format.asprintf "%t" report.Location.main.Location.txt )
    | _ -> (1, 1, Printexc.to_string exn)
  in
  Lint_finding.v ~rule:"parse" ~file:path ~line ~col
    ~hint:"fix the syntax error; the linter parses with the same front-end as the build"
    ("file does not parse: " ^ msg)

let of_string ~path src =
  let allows = scan_allows src in
  let parse () =
    let lexbuf = Lexing.from_string src in
    Lexing.set_filename lexbuf path;
    if Filename.check_suffix path ".mli" then Intf (Parse.interface lexbuf)
    else Impl (Parse.implementation lexbuf)
  in
  match Mutex.protect parse_mutex parse with
  | ast -> Ok { path; ast; allows }
  | exception exn -> Error (error_finding ~path exn)

let load ~root rel =
  let full = Filename.concat root rel in
  let ic = open_in_bin full in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string ~path:rel content
