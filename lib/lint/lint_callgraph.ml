(* Cross-module program assembly over the per-module summaries produced by
   lint_cmt: a qualified-name function table, type-declaration fixpoints
   (float-carrying, mutable-carrying), the transitive effect lattice, and
   mutable-state reachability with witness chains.  Everything here is
   deterministic given the (sorted) summary list — maps are string-keyed
   and every worklist iterates in key order. *)

module Smap = Map.Make (String)
module Sset = Set.Make (String)

type program = {
  pg_summaries : Lint_cmt.summary list;
  pg_fns : (Lint_cmt.fn_summary * string) Smap.t;  (** fn_name → (summary, source file) *)
  pg_types : Lint_cmt.type_summary Smap.t;
  pg_globals : (Lint_cmt.global_summary * string) Smap.t;
  pg_allows : (int * string) list Smap.t;  (** source file → inline pragmas *)
}

let allows_at pg ~file ~line ~rule =
  match Smap.find_opt file pg.pg_allows with
  | None -> false
  | Some allows -> List.exists (fun (l, r) -> r = rule && (l = line || l + 1 = line)) allows

(* Two top-level definitions may share a qualified name (shadowing, or a
   module-name collision across libraries).  Merge them into one node with
   the union of behaviours; [fn_locks] stays true only if every version
   locks, so protection is never assumed where one version lacks it. *)
let merge_fn (a : Lint_cmt.fn_summary) (b : Lint_cmt.fn_summary) =
  { a with
    Lint_cmt.fn_calls = List.sort_uniq String.compare (a.Lint_cmt.fn_calls @ b.Lint_cmt.fn_calls);
    fn_uses = a.Lint_cmt.fn_uses @ b.Lint_cmt.fn_uses;
    fn_effects = a.Lint_cmt.fn_effects @ b.Lint_cmt.fn_effects;
    fn_locks = a.Lint_cmt.fn_locks && b.Lint_cmt.fn_locks }

let build ~allows_of (summaries : Lint_cmt.summary list) =
  let allows =
    List.fold_left
      (fun m (s : Lint_cmt.summary) ->
        if Smap.mem s.Lint_cmt.sm_source m then m
        else Smap.add s.Lint_cmt.sm_source (allows_of s.Lint_cmt.sm_source) m)
      Smap.empty summaries
  in
  let fns =
    List.fold_left
      (fun m (s : Lint_cmt.summary) ->
        List.fold_left
          (fun m (f : Lint_cmt.fn_summary) ->
            let entry =
              match Smap.find_opt f.Lint_cmt.fn_name m with
              | Some (prev, file) -> (merge_fn prev f, file)
              | None -> (f, s.Lint_cmt.sm_source)
            in
            Smap.add f.Lint_cmt.fn_name entry m)
          m s.Lint_cmt.sm_fns)
      Smap.empty summaries
  in
  let types =
    List.fold_left
      (fun m (s : Lint_cmt.summary) ->
        List.fold_left
          (fun m (t : Lint_cmt.type_summary) ->
            if Smap.mem t.Lint_cmt.td_name m then m else Smap.add t.Lint_cmt.td_name t m)
          m s.Lint_cmt.sm_types)
      Smap.empty summaries
  in
  let globals =
    List.fold_left
      (fun m (s : Lint_cmt.summary) ->
        List.fold_left
          (fun m (g : Lint_cmt.global_summary) ->
            if Smap.mem g.Lint_cmt.gl_name m then m
            else Smap.add g.Lint_cmt.gl_name (g, s.Lint_cmt.sm_source) m)
          m s.Lint_cmt.sm_globals)
      Smap.empty summaries
  in
  { pg_summaries = summaries; pg_fns = fns; pg_types = types; pg_globals = globals;
    pg_allows = allows }

(* --------------------------------------------- float / arrow instantiation --- *)

(* Does a type skeleton carry a float or an arrow anywhere structural
   comparison would reach?  Looks through declared type components (the
   cross-module part: [compare (a : Mod.pt) b] where [Mod.pt] has a float
   field) and through constructor arguments (['a list] at [float]).
   Float wins over Arrow in the answer — the float message is the more
   actionable one for this codebase. *)
type poly_hit = Hit_float | Hit_arrow | Clean

let float_or_arrow pg ty =
  let join a b =
    match (a, b) with
    | Hit_float, _ | _, Hit_float -> Hit_float
    | Hit_arrow, _ | _, Hit_arrow -> Hit_arrow
    | Clean, Clean -> Clean
  in
  let rec go seen (ty : Lint_cmt.ty) =
    match ty with
    | Lint_cmt.Float -> Hit_float
    | Lint_cmt.Arrow -> Hit_arrow
    | Lint_cmt.Var | Lint_cmt.Opaque -> Clean
    | Lint_cmt.Tuple ts -> List.fold_left (fun acc t -> join acc (go seen t)) Clean ts
    | Lint_cmt.Constr (head, args) ->
      let from_args = List.fold_left (fun acc t -> join acc (go seen t)) Clean args in
      let from_decl =
        if Sset.mem head seen then Clean
        else
          match Smap.find_opt head pg.pg_types with
          | None -> Clean
          | Some td ->
            let seen = Sset.add head seen in
            List.fold_left (fun acc t -> join acc (go seen t)) Clean td.Lint_cmt.td_components
      in
      join from_args from_decl
  in
  go Sset.empty ty

(* ------------------------------------------------------ mutable carriers --- *)

let mutable_ctors =
  [ "ref"; "array"; "bytes"; "floatarray"; "Hashtbl.t"; "Queue.t"; "Stack.t"; "Buffer.t";
    "Weak.t"; "Dynarray.t" ]

(* Synchronised containers end the search: state behind them is protected
   by construction, which is exactly what domain-race wants authors to
   reach for. *)
let protected_ctors =
  [ "Atomic.t"; "Mutex.t"; "Condition.t"; "Semaphore.Counting.t"; "Semaphore.Binary.t";
    "Domain.DLS.key"; "Lazy.t" ]

(* [Some desc] when the skeleton contains an unprotected mutable cell;
   [desc] names the offending constructor for the report. *)
let mutable_carrier pg ty =
  let rec go seen (ty : Lint_cmt.ty) =
    match ty with
    | Lint_cmt.Float | Lint_cmt.Arrow | Lint_cmt.Var | Lint_cmt.Opaque -> None
    | Lint_cmt.Tuple ts -> List.find_map (go seen) ts
    | Lint_cmt.Constr (head, args) ->
      if List.mem head protected_ctors then None
      else if List.mem head mutable_ctors then Some head
      else
        let from_decl =
          if Sset.mem head seen then None
          else
            match Smap.find_opt head pg.pg_types with
            | None -> None
            | Some td ->
              if td.Lint_cmt.td_mutable then Some (head ^ " with mutable fields")
              else
                let seen = Sset.add head seen in
                List.find_map (go seen) td.Lint_cmt.td_components
        in
        (match from_decl with Some d -> Some d | None -> List.find_map (go seen) args)
  in
  go Sset.empty ty

(* ---------------------------------------------------------- effect lattice --- *)

module Kset = Set.Make (struct
  type t = Lint_cmt.effect_kind

  let compare = Stdlib.compare
end)

(* Effect boundaries: the pool runtime deliberately touches Domain/Mutex
   internals, and the seeded RNG wraps Random-free SplitMix64 but owns the
   determinism story; neither should condemn its callers. *)
let effect_boundary file =
  String.starts_with ~prefix:"lib/par/" file || file = "lib/util/rng.ml"

(* Sanctioned writers: CSV/table emission is the program's output channel. *)
let io_sanctioned file = file = "lib/util/csv.ml" || file = "lib/util/table.ml"

type effects = {
  ef_kinds : Kset.t Smap.t;  (** fn → inferred effect kinds *)
  ef_direct : Lint_cmt.base_effect list Smap.t;  (** fn → sanction-filtered direct effects *)
}

let direct_effects pg =
  Smap.fold
    (fun name ((f : Lint_cmt.fn_summary), file) m ->
      let keep (e : Lint_cmt.base_effect) =
        (not (effect_boundary file))
        && not (io_sanctioned file && e.Lint_cmt.e_kind = Lint_cmt.Io)
        && (not (allows_at pg ~file ~line:e.Lint_cmt.e_line ~rule:"effect-purity"))
        && not
             (allows_at pg ~file ~line:e.Lint_cmt.e_line
                ~rule:(Lint_cmt.effect_shadow_rule e.Lint_cmt.e_kind))
      in
      Smap.add name (List.filter keep f.Lint_cmt.fn_effects) m)
    pg.pg_fns Smap.empty

let effects pg =
  let direct = direct_effects pg in
  let kinds_of_direct es =
    List.fold_left (fun s (e : Lint_cmt.base_effect) -> Kset.add e.Lint_cmt.e_kind s) Kset.empty es
  in
  let state = ref (Smap.map kinds_of_direct direct) in
  let boundary name =
    match Smap.find_opt name pg.pg_fns with
    | Some (_, file) -> effect_boundary file
    | None -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    state :=
      Smap.mapi
        (fun name kinds ->
          if boundary name then Kset.empty
          else
            match Smap.find_opt name pg.pg_fns with
            | None -> kinds
            | Some (f, _) ->
              let kinds' =
                List.fold_left
                  (fun acc callee ->
                    match Smap.find_opt callee !state with
                    | Some ks -> Kset.union acc ks
                    | None -> acc)
                  kinds f.Lint_cmt.fn_calls
              in
              if not (Kset.equal kinds kinds') then changed := true;
              kinds')
        !state
  done;
  { ef_kinds = !state; ef_direct = direct }

let fn_kinds ef name =
  match Smap.find_opt name ef.ef_kinds with Some ks -> ks | None -> Kset.empty

(* Witness chain for (fn, kind): the functions walked from [fn] down to a
   direct culprit, deterministically preferring a direct effect, then the
   alphabetically-first effectful callee. *)
let effect_chain pg ef name kind =
  let rec walk seen name acc =
    if Sset.mem name seen then (List.rev acc, None)
    else
      let seen = Sset.add name seen in
      let direct =
        match Smap.find_opt name ef.ef_direct with
        | Some es ->
          List.fold_left
            (fun best (e : Lint_cmt.base_effect) ->
              if e.Lint_cmt.e_kind <> kind then best
              else
                match best with
                | Some (b : Lint_cmt.base_effect) when b.Lint_cmt.e_line <= e.Lint_cmt.e_line -> best
                | _ -> Some e)
            None es
        | None -> None
      in
      match direct with
      | Some e -> (List.rev (name :: acc), Some e)
      | None -> (
        let next =
          match Smap.find_opt name pg.pg_fns with
          | None -> None
          | Some (f, _) ->
            List.find_opt
              (fun callee -> (not (Sset.mem callee seen)) && Kset.mem kind (fn_kinds ef callee))
              f.Lint_cmt.fn_calls
        in
        match next with
        | Some callee -> walk seen callee (name :: acc)
        | None -> (List.rev (name :: acc), None))
  in
  walk Sset.empty name []

(* ------------------------------------------------------ race reachability --- *)

(* The module-level mutable state the race detector watches: globals whose
   type skeleton carries an unprotected mutable cell, minus those whose
   definition line carries a [domain-race] pragma (a sanctioned, audited
   table).  Value: (constructor description, defining file). *)
let mutable_globals pg =
  Smap.fold
    (fun name ((g : Lint_cmt.global_summary), file) m ->
      match mutable_carrier pg g.Lint_cmt.gl_ty with
      | Some desc when not (allows_at pg ~file ~line:g.Lint_cmt.gl_line ~rule:"domain-race") ->
        Smap.add name (desc, file) m
      | _ -> m)
    pg.pg_globals Smap.empty

type race_hit = {
  rh_global : string;  (** qualified global name *)
  rh_desc : string;  (** mutable constructor description *)
  rh_via : string list;  (** call chain from the closure; [] = touched directly *)
}

(* BFS from a task closure's frame (its global refs and lock status) through
   the call graph, collecting unprotected touches of mutable globals.  A
   function that takes a Mutex is treated as protected wholesale — neither
   its touches nor its callees' are reported (the lock scope is not tracked
   finer than per-function).  BFS order plus sorted expansion makes the
   shortest witness chain deterministic. *)
let reach_mutables pg ~muts ~start_file ~start_uses ~start_calls ~start_locked =
  let hits = ref Smap.empty in
  let record global via =
    if not (Smap.mem global !hits) then
      match Smap.find_opt global muts with
      | Some (desc, _) ->
        hits := Smap.add global { rh_global = global; rh_desc = desc; rh_via = via } !hits
      | None -> ()
  in
  let collect ~via ~file (uses : Lint_cmt.use list) =
    List.iter
      (fun (u : Lint_cmt.use) ->
        if
          Smap.mem u.Lint_cmt.u_name muts
          && not (allows_at pg ~file ~line:u.Lint_cmt.u_line ~rule:"domain-race")
        then record u.Lint_cmt.u_name via)
      uses
  in
  if not start_locked then collect ~via:[] ~file:start_file start_uses;
  let visited = ref Sset.empty in
  let queue = Queue.create () in
  List.iter (fun c -> Queue.add (c, []) queue) (List.sort String.compare start_calls);
  while not (Queue.is_empty queue) do
    let name, path = Queue.pop queue in
    if not (Sset.mem name !visited) then begin
      visited := Sset.add name !visited;
      match Smap.find_opt name pg.pg_fns with
      | None -> ()
      | Some (f, file) ->
        if not f.Lint_cmt.fn_locks then begin
          let path = path @ [ name ] in
          collect ~via:path ~file f.Lint_cmt.fn_uses;
          List.iter
            (fun callee -> if not (Sset.mem callee !visited) then Queue.add (callee, path) queue)
            f.Lint_cmt.fn_calls
        end
    end
  done;
  Smap.fold (fun _ hit acc -> hit :: acc) !hits [] |> List.rev
