(** The semantic rule families that run on the typed call graph:
    domain-race, poly-compare and effect-purity.  Pure producers — the
    engine owns pragma/allowlist filtering and sorting. *)

val names : string list
(** Typed rule ids, sorted. *)

val docs : (string * string) list
(** (rule id, one-line description), for CLI help and the debt report. *)

val ty_to_string : Lint_cmt.ty -> string
(** Render a type skeleton roughly as OCaml syntax ("float list",
    "(int, Mod.t) Hashtbl.t"). *)

val check : Lint_callgraph.program -> Lint_finding.t list
(** All findings from the three typed rules, unfiltered and unsorted. *)

val check_races : Lint_callgraph.program -> Lint_finding.t list
val check_poly : Lint_callgraph.program -> Lint_finding.t list
val check_effects : Lint_callgraph.program -> Lint_finding.t list

val effects_json : Lint_callgraph.program -> string
(** Per-function inferred-effect summary: effectful functions with witness
    chains plus effectful/pure/total counts, sorted by function name. *)
