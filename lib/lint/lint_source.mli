(** Parsed source file plus its inline suppression pragmas.

    Parsing uses the installed compiler's own front-end ([compiler-libs]:
    {!Parse} / {!Parsetree}), so the linter accepts exactly the syntax the
    build accepts and needs no external dependency.

    {b Thread-safety.}  The compiler's lexer keeps module-level mutable
    state (string and comment buffers), so the [Parse] call itself is
    serialised behind a private mutex; {!of_string} is therefore safe to
    call from any number of pool domains concurrently.  Reading files and
    scanning pragmas stay outside the lock. *)

type ast =
  | Impl of Parsetree.structure  (** a [.ml] file *)
  | Intf of Parsetree.signature  (** a [.mli] file *)

type t = {
  path : string;  (** repo-root-relative path, ['/']-separated *)
  ast : ast;
  allows : (int * string) list;
      (** suppression pragmas: [(line, rule-id)] for every
          [(* lint: allow <rule-id> -- reason *)] comment.  A pragma on
          line [l] suppresses findings of that rule on lines [l] and
          [l + 1] (i.e. trailing same-line or standalone preceding-line
          placement). *)
}

val scan_allows : string -> (int * string) list
(** Extract suppression pragmas from raw source text (1-based lines). *)

val of_string : path:string -> string -> (t, Lint_finding.t) result
(** Parse source text.  [path] decides implementation vs interface syntax
    (suffix [.mli]) and is stamped into locations.  A syntax error comes
    back as an [Error] finding with rule id ["parse"]. *)

val load : root:string -> string -> (t, Lint_finding.t) result
(** [load ~root rel] reads [root/rel] and parses it. *)

val suppressed : t -> Lint_finding.t -> bool
(** Whether one of the file's pragmas silences this finding. *)
