type entry = { rule : string; file : string }

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let parse_string src =
  let lines = String.split_on_char '\n' src in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let line = String.trim (strip_comment line) in
      if line = "" then go (n + 1) acc rest
      else
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ rule; file ] -> go (n + 1) ({ rule; file } :: acc) rest
        | _ -> Error (Printf.sprintf "line %d: expected '<rule-id> <path>', got %S" n line))
  in
  go 1 [] lines

let load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in_bin path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    parse_string content
  end

let filter entries findings =
  List.filter
    (fun (f : Lint_finding.t) ->
      not
        (List.exists
           (fun e -> e.rule = f.Lint_finding.rule && e.file = f.Lint_finding.file)
           entries))
    findings
