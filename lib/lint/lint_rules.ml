type ctx = { path : string }

type t = {
  id : string;
  doc : string;
  applies : string -> bool;
  check : ctx -> Parsetree.structure -> Lint_finding.t list;
}

(* -------------------------------------------------------------- helpers --- *)

let rec lid_to_string = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, s) -> lid_to_string l ^ "." ^ s
  | Longident.Lapply (a, b) -> lid_to_string a ^ "(" ^ lid_to_string b ^ ")"

(* [Stdlib.min] and [min] are the same function; match them as one name. *)
let normalize s =
  let p = "Stdlib." in
  if String.starts_with ~prefix:p s then String.sub s (String.length p) (String.length s - String.length p)
  else s

let ident_name (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (normalize (lid_to_string txt))
  | _ -> None

(* Head identifier of an application chain (peeling constraints). *)
let rec head_ident (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident _ -> ident_name e
  | Pexp_apply (f, _) -> head_ident f
  | Pexp_constraint (e, _) -> head_ident e
  | _ -> None

let finding ctx ~rule ~hint (loc : Location.t) message =
  let p = loc.Location.loc_start in
  Lint_finding.v ~rule ~file:ctx.path ~line:p.Lexing.pos_lnum
    ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol + 1)
    ~hint message

(* Run an expression-level predicate over a whole structure. *)
let over_exprs (f : Parsetree.expression -> unit) str =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it str

let in_dir dir path = String.starts_with ~prefix:(dir ^ "/") path

(* ---------------------------------------------------------- determinism --- *)

let det_banned =
  [ ("Sys.time", "process CPU clock");
    ("Unix.gettimeofday", "wall clock");
    ("Unix.time", "wall clock");
    ("Domain.self", "scheduling-dependent domain identity") ]

let determinism =
  let hint =
    "seed all randomness/time through the SplitMix64 Rng (lib/util/rng.ml); wall-clock \
     measurement belongs to lib/par counters and annotated bench code"
  in
  let check ctx str =
    let acc = ref [] in
    over_exprs
      (fun e ->
        match e.pexp_desc with
        | Pexp_ident { txt; loc } ->
          let s = normalize (lid_to_string txt) in
          (match List.assoc_opt s det_banned with
          | Some what ->
            acc :=
              finding ctx ~rule:"determinism" ~hint loc
                (Printf.sprintf "%s (%s) makes results irreproducible" s what)
              :: !acc
          | None ->
            if String.starts_with ~prefix:"Random." s then
              acc :=
                finding ctx ~rule:"determinism" ~hint loc
                  (Printf.sprintf "%s bypasses the seeded Rng: campaigns stop being replayable" s)
                :: !acc)
        | _ -> ())
      str;
    !acc
  in
  {
    id = "determinism";
    doc = "no Random.*/Sys.time/Unix.gettimeofday/Unix.time/Domain.self outside lib/par and Rng";
    applies = (fun p -> not (in_dir "lib/par" p) && p <> "lib/util/rng.ml");
    check;
  }

(* ----------------------------------------------------- float-discipline --- *)

let poly_float_ops = [ "="; "<>"; "compare"; "min"; "max" ]
let float_arith_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

let float_returning =
  [ "abs_float"; "float_of_int"; "float_of_string"; "sqrt"; "ceil"; "floor"; "exp"; "log";
    "log10"; "cos"; "sin"; "tan"; "atan"; "atan2"; "mod_float"; "ldexp";
    "Float.of_int"; "Float.of_string"; "Float.abs"; "Float.round"; "Float.rem"; "Float.pow";
    "Float.succ"; "Float.pred"; "Float.min"; "Float.max"; "Float.add"; "Float.sub";
    "Float.mul"; "Float.div"; "Fp.lb_plus"; "Staircase.value"; "Staircase.final_value";
    "Staircase.min_from"; "Staircase.min_on"; "Staircase.min_from_scan" ]

let float_consts =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float";
    "Float.infinity"; "Float.neg_infinity"; "Float.nan"; "Float.pi"; "Float.epsilon";
    "Float.max_float"; "Float.min_float" ]

let rec is_float_type (ct : Parsetree.core_type) =
  match ct.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, []) -> normalize (lid_to_string txt) = "float"
  | Ptyp_poly (_, ct) -> is_float_type ct
  | _ -> false

let rec floatish (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> List.mem (normalize (lid_to_string txt)) float_consts
  | Pexp_apply (f, _) -> (
    match ident_name f with
    | Some s -> List.mem s float_arith_ops || List.mem s float_returning
    | None -> false)
  | Pexp_constraint (e, ct) -> is_float_type ct || floatish e
  | Pexp_open (_, e) | Pexp_sequence (_, e) -> floatish e
  | _ -> false

let float_discipline =
  let hint =
    "use Fp.eq/Fp.leq/Fp.lt/Fp.gt (eps-aware) for schedule arithmetic, or \
     Float.equal/Float.compare/Float.min/Float.max for intentional exact float operations"
  in
  let check ctx str =
    let acc = ref [] in
    over_exprs
      (fun e ->
        match e.pexp_desc with
        | Pexp_apply (f, args) -> (
          match ident_name f with
          | Some op when List.mem op poly_float_ops ->
            if List.exists (fun (_, a) -> floatish a) args then
              acc :=
                finding ctx ~rule:"float-discipline" ~hint f.Parsetree.pexp_loc
                  (Printf.sprintf
                     "polymorphic %s on a float operand: eps-free comparisons reintroduce the \
                      ulp bugs the fuzzer corpus pinned down"
                     op)
                :: !acc
          | _ -> ())
        | _ -> ())
      str;
    !acc
  in
  {
    id = "float-discipline";
    doc = "no polymorphic =/<>/compare/min/max on syntactically-float operands outside Fp";
    applies = (fun p -> p <> "lib/util/fp.ml");
    check;
  }

(* -------------------------------------------------------- domain-safety --- *)

let mutable_ctors =
  [ "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create"; "Buffer.create" ]

let domain_safety =
  let hint =
    "wrap shared state in Atomic.t or a Mutex (with Fun.protect/Mutex.protect for unlock on \
     every exit), or move it inside the task closure"
  in
  let check ctx str =
    let acc = ref [] in
    (* Top-level mutable globals: every domain-pool task in the process can
       reach them, so unsynchronised ones are data races waiting to happen. *)
    let rec check_binding_rhs (e : Parsetree.expression) =
      match e.pexp_desc with
      | Pexp_tuple es -> List.iter check_binding_rhs es
      | Pexp_constraint (e, _) -> check_binding_rhs e
      | _ -> (
        match head_ident e with
        | Some s when List.mem s mutable_ctors ->
          acc :=
            finding ctx ~rule:"domain-safety" ~hint e.pexp_loc
              (Printf.sprintf
                 "top-level mutable state (%s) is shared, unsynchronised, across pool domains" s)
            :: !acc
        | _ -> ())
    in
    let rec check_items items =
      List.iter
        (fun (item : Parsetree.structure_item) ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter (fun (vb : Parsetree.value_binding) -> check_binding_rhs vb.pvb_expr) vbs
          | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure items; _ }; _ } ->
            check_items items
          | _ -> ())
        items
    in
    check_items str;
    (* Mutex.lock whose binding shows no unlock path: an exception between
       lock and unlock leaves the pool wedged. *)
    let vb_iter =
      {
        Ast_iterator.default_iterator with
        value_binding =
          (fun it vb ->
            let locks = ref [] and unlocked = ref false in
            over_exprs
              (fun e ->
                match e.pexp_desc with
                | Pexp_ident { txt; loc } -> (
                  match normalize (lid_to_string txt) with
                  | "Mutex.lock" -> locks := loc :: !locks
                  | "Mutex.unlock" | "Fun.protect" | "Mutex.protect" -> unlocked := true
                  | _ -> ())
                | _ -> ())
              [ { pstr_desc = Pstr_eval (vb.pvb_expr, []); pstr_loc = vb.pvb_loc } ];
            if not !unlocked then
              List.iter
                (fun loc ->
                  acc :=
                    finding ctx ~rule:"domain-safety" ~hint loc
                      "Mutex.lock with no Mutex.unlock/Fun.protect in the same binding: not \
                       released on every exit"
                    :: !acc)
                !locks;
            Ast_iterator.default_iterator.value_binding it vb);
      }
    in
    vb_iter.structure vb_iter str;
    !acc
  in
  {
    id = "domain-safety";
    doc = "no unsynchronised top-level mutable globals in lib/; Mutex.lock pairs with an unlock path";
    applies = (fun p -> in_dir "lib" p && not (in_dir "lib/par" p));
    check;
  }

(* ------------------------------------------------------------ io-purity --- *)

let io_banned =
  [ "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int"; "print_float";
    "print_bytes"; "prerr_string"; "prerr_endline"; "prerr_newline"; "prerr_char"; "prerr_int";
    "prerr_float"; "prerr_bytes"; "stdout"; "stderr"; "Printf.printf"; "Printf.eprintf";
    "Format.printf"; "Format.eprintf"; "Format.print_string"; "Format.print_newline";
    "Format.print_flush"; "Format.std_formatter"; "Format.err_formatter" ]

let io_writers = [ "lib/util/table.ml"; "lib/util/csv.ml" ]

let io_purity =
  let hint =
    "return a string / Table / Csv value and let bin/ (or the annotated experiment drivers) \
     print it"
  in
  let check ctx str =
    let acc = ref [] in
    over_exprs
      (fun e ->
        match e.pexp_desc with
        | Pexp_ident { txt; loc } ->
          let s = normalize (lid_to_string txt) in
          if List.mem s io_banned then
            acc :=
              finding ctx ~rule:"io-purity" ~hint loc
                (Printf.sprintf "console IO (%s) in library code" s)
              :: !acc
        | _ -> ())
      str;
    !acc
  in
  {
    id = "io-purity";
    doc = "no console output in lib/ outside the Table/Csv writers";
    applies = (fun p -> in_dir "lib" p && not (List.mem p io_writers));
    check;
  }

(* ------------------------------------------------------ order-stability --- *)

let order_banned =
  [ "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values" ]

(* Unchecked array access reads whatever an off-by-one index happens to hit —
   on the packed CSR rows that is a silently wrong (platform-dependent)
   float, not an exception, so digests diverge with no failing test.  Only
   the flat-graph owner (lib/dag/dag.ml), where construction establishes the
   offsets, may use them. *)
let order_unsafe = [ "Array.unsafe_get"; "Array.unsafe_set" ]
let order_unsafe_owner = "lib/dag/dag.ml"

let order_stability =
  let hint =
    "iterate sorted keys (or an explicit insertion-order list) instead; if a later sort already \
     restores a canonical order, annotate the call with its reason"
  in
  let unsafe_hint =
    "walk CSR rows with the bounds-checked accessors (Dag.Csr offsets + a.(i)); unchecked \
     indexing outside lib/dag/dag.ml turns an index bug into a silent wrong float"
  in
  let check ctx str =
    let acc = ref [] in
    over_exprs
      (fun e ->
        match e.pexp_desc with
        | Pexp_ident { txt; loc } ->
          let s = normalize (lid_to_string txt) in
          if List.mem s order_banned then
            acc :=
              finding ctx ~rule:"order-stability" ~hint loc
                (Printf.sprintf
                   "%s enumerates in hash-bucket order (insertion-history dependent): golden \
                    CSV/digest outputs must not depend on it"
                   s)
              :: !acc
          else if List.mem s order_unsafe && ctx.path <> order_unsafe_owner then
            acc :=
              finding ctx ~rule:"order-stability" ~hint:unsafe_hint loc
                (Printf.sprintf
                   "%s bypasses bounds checks: an off-by-one on a packed CSR row yields a \
                    wrong value instead of an exception"
                   s)
              :: !acc
        | _ -> ())
      str;
    !acc
  in
  {
    id = "order-stability";
    doc =
      "no Hashtbl.iter/fold/to_seq feeding order-sensitive output; no Array.unsafe_get/set \
       outside the CSR owner module";
    applies = (fun _ -> true);
    check;
  }

(* ------------------------------------------------------------- registry --- *)

let all = [ determinism; float_discipline; domain_safety; io_purity; order_stability ]
let names = List.map (fun r -> r.id) all
let find id = List.find_opt (fun r -> r.id = id) all
