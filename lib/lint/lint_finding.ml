type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  hint : string;
}

let v ~rule ~file ~line ~col ~hint message = { rule; file; line; col; message; hint }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c
        else
          let c = String.compare a.message b.message in
          if c <> 0 then c else String.compare a.hint b.hint

let to_text f =
  Printf.sprintf "%s:%d:%d: [%s] %s (fix: %s)" f.file f.line f.col f.rule f.message f.hint

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s","hint":"%s"}|}
    (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.message)
    (json_escape f.hint)
