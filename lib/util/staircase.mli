(** Piecewise-constant, right-continuous functions of time.

    The scheduling heuristics of the paper maintain, for each memory, the
    function [free_mem(t)] giving the amount of memory still free at time [t]
    in the partial schedule (§5.1).  Because every allocation and release in
    the model takes effect from some instant {e onwards} (output files are
    held from the task start, input files are released at the task end, ...),
    all updates are of the form "add [delta] on [\[t, +inf)]", which keeps the
    representation compact: a sorted list of breakpoints.

    A staircase [s] is defined on [\[0, +inf)]; [value s t] is constant
    between consecutive breakpoints and equal to the value attached to the
    breakpoint at or before [t]. *)

type t

val create : float -> t
(** [create v] is the constant function [t -> v]. *)

val value : t -> float -> float
(** [value s t] for [t >= 0]. *)

val final_value : t -> float
(** Value on the unbounded last step. *)

val add_from : t -> float -> float -> unit
(** [add_from s t delta] adds [delta] to [s] on [\[t, +inf)].  A [t] within
    [eps] of an existing breakpoint is snapped onto it instead of splitting
    the step: breakpoint times therefore always differ by more than [eps],
    so float dust (e.g. just-in-time transfer times computed as
    [start -. comm]) cannot accumulate sliver steps. *)

val add_range : t -> float -> float -> float -> unit
(** [add_range s t1 t2 delta] adds [delta] on [\[t1, t2)].  [t1 <= t2]. *)

val min_from : t -> float -> float
(** [min_from s t] is [inf { s t' | t' >= t }].  O(log len) via a lazily
    patched minimum segment tree (only the suffix a mutation touched is
    re-derived, on the next query). *)

val min_on : t -> float -> float -> float
(** [min_on s t1 t2] is the minimum of [s] on [\[t1, t2)] ([t1 < t2]). *)

val earliest_suffix_ge : t -> level:float -> from:float -> float option
(** [earliest_suffix_ge s ~level ~from] is the smallest [t >= from] such that
    [s t' >= level] for every [t' >= t], or [None] when the final step is
    below [level] (the paper's [task_mem_EST] / [comm_mem_EST] primitives).
    A small epsilon tolerance absorbs floating-point dust from repeated
    updates.  O(log len): a descent of the minimum segment tree. *)

val min_from_scan : t -> float -> float
(** Pre-optimisation O(len) reference for {!min_from} — kept for the A/B
    property tests and the [campaign/hotpath] reference scheduler. *)

val earliest_suffix_ge_scan : t -> level:float -> from:float -> float option
(** Pre-optimisation O(len) reference for {!earliest_suffix_ge}. *)

val breakpoints : t -> (float * float) list
(** Normalised breakpoint list [(x, v)]: value [v] holds on [\[x, x')] where
    [x'] is the next breakpoint.  First breakpoint is at time [0.]. *)

val length : t -> int
(** Number of stored breakpoints (after lazy coalescing). *)

val copy : t -> t
(** Deep copy of the current function.  The copy starts with journaling off
    and an empty journal regardless of the source's journal state. *)

(** {2 Mutation journal}

    Exact structural undo for {!add_from}, used by the exact solver's
    commit/undo search state (backtracking instead of deep-copying the
    scheduler state at every branch-and-bound node).  Undo restores the
    breakpoint arrays bit-for-bit: replaying [add_from t (-.delta)] would not
    (float addition does not round-trip, and eps-snapping/coalescing destroy
    structure). *)

type mark
(** A position in the mutation journal. *)

val set_journal : t -> bool -> unit
(** [set_journal s on] enables or disables journaling.  Both directions reset
    the journal to empty; marks taken before the call are invalidated. *)

val mark : t -> mark
(** Current journal position.  Only valid while journaling is on. *)

val undo_to : t -> mark -> unit
(** [undo_to s m] rewinds every mutation recorded after [mark s] returned [m],
    restoring the staircase to its exact state at that point.  Marks must be
    consumed LIFO. *)

val pp : Format.formatter -> t -> unit
