let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> nan
  | xs ->
    let logsum = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (logsum /. float_of_int (List.length xs))

let stdev xs =
  let n = List.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let minimum = function
  | [] -> nan
  | x :: xs -> List.fold_left Float.min x xs

let maximum = function
  | [] -> nan
  | x :: xs -> List.fold_left Float.max x xs

let quantile q xs =
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q out of [0,1]";
  match xs with
  | [] -> nan
  | xs ->
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    let n = Array.length a in
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
    if lo = hi then a.(lo)
    else begin
      let frac = pos -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end

let median xs = quantile 0.5 xs

type summary = {
  n : int;
  mean : float;
  stdev : float;
  min : float;
  median : float;
  max : float;
}

let summarize xs =
  {
    n = List.length xs;
    mean = mean xs;
    stdev = stdev xs;
    min = minimum xs;
    median = median xs;
    max = maximum xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f" s.n s.mean s.stdev s.min
    s.median s.max
