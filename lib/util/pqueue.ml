(* Binary min-heap.  Slots are ['a option] so that vacated positions can be
   reset to [None]: the previous ['a array] backing filled the freshly grown
   tail with the pushed element and never cleared [data.(len)] on pop, which
   pinned popped (potentially large) payloads for the queue's lifetime. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a option array;
  mutable len : int;
}

let create ~cmp = { cmp; data = [||]; len = 0 }
let length q = q.len
let is_empty q = q.len = 0

let get q i = match q.data.(i) with Some x -> x | None -> assert false

let grow q =
  let cap = Array.length q.data in
  if q.len = cap then begin
    let cap' = max 8 (2 * cap) in
    let data' = Array.make cap' None in
    Array.blit q.data 0 data' 0 q.len;
    q.data <- data'
  end

let swap q i j =
  let tmp = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.cmp (get q i) (get q parent) < 0 then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.len && q.cmp (get q l) (get q !smallest) < 0 then smallest := l;
  if r < q.len && q.cmp (get q r) (get q !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q x =
  grow q;
  q.data.(q.len) <- Some x;
  q.len <- q.len + 1;
  sift_up q (q.len - 1)

let peek q = if q.len = 0 then None else Some (get q 0)

let pop q =
  if q.len = 0 then None
  else begin
    let top = get q 0 in
    q.len <- q.len - 1;
    q.data.(0) <- q.data.(q.len);
    (* Clear the vacated slot: the queue must not retain popped elements. *)
    q.data.(q.len) <- None;
    if q.len > 0 then sift_down q 0;
    Some top
  end

let pop_exn q =
  match pop q with
  | Some x -> x
  | None -> invalid_arg "Pqueue.pop_exn: empty queue"

let of_list ~cmp l =
  let q = create ~cmp in
  List.iter (push q) l;
  q

let to_sorted_list q =
  let rec drain acc = match pop q with None -> List.rev acc | Some x -> drain (x :: acc) in
  drain []
