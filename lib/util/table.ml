type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?align ~header rows =
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let header = normalize header in
  let rows = List.map normalize rows in
  let widths = Array.make ncols 0 in
  let feed row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  feed header;
  List.iter feed rows;
  let aligns =
    match align with
    | Some a -> Array.init ncols (fun i -> try List.nth a i with _ -> Right)
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let buf = Buffer.create 1024 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad aligns.(i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  Array.iter
    (fun w ->
      Buffer.add_string buf (String.make w '-');
      Buffer.add_string buf "  ")
    widths;
  (* Trim the trailing separator spacing. *)
  let sep_end = Buffer.length buf in
  Buffer.truncate buf (sep_end - 2);
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)

let cell_f f =
  if Float.is_nan f then "-"
  else if Float.equal f infinity then "inf"
  else if Float.equal f neg_infinity then "-inf"
  else Printf.sprintf "%.3f" f

let cell_pct r = if Float.is_nan r then "-" else Printf.sprintf "%.0f%%" (100. *. r)
