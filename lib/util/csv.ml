let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string fields = String.concat "," (List.map escape_field fields)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let write path ~header rows =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (row_to_string header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (row_to_string row);
          output_char oc '\n')
        rows)

let ensure_dir = mkdir_p

let float_cell f =
  if Float.equal f infinity then "inf"
  else if Float.equal f neg_infinity then "-inf"
  else Printf.sprintf "%g" f
