(* Breakpoints stored in two parallel growable arrays, sorted by time.
   Invariants: len >= 1, xs.(0) = 0., xs strictly increasing with gaps > eps
   (update times within eps of an existing breakpoint are snapped onto it),
   adjacent values differ by more than eps ([coalesce_from] removes the rest).

   Queries are served by a lazily patched segment tree over the value array:
   leaf [j] holds [vs.(j)] (+infinity beyond [len]), an internal node holds
   the minimum of its children.  [add_from] only rewrites the breakpoint
   arrays from the step containing the update time onwards, so it records
   that first index and the next query re-derives just the dirty leaf suffix
   and the tree levels above it — O(touched + log len) instead of the O(len)
   a suffix-minimum array costs when the tail changes.  List schedulers
   mutate near the advancing time frontier, which makes both the coalesce
   scan and the tree patch effectively O(1) amortised per update.

   The answers are bit-identical to the linear scans ([min_from_scan],
   [earliest_suffix_ge_scan] below): the minimum of a set of non-NaN floats
   does not depend on the comparison order, and [earliest_suffix_ge] returns
   an element of [xs] selected by an index the tree descent and a
   suffix-minimum binary search derive identically (the last index [j] with
   [vs.(j) +. eps < level]). *)

(* One journal record per destructive [add_from]: the pre-mutation tail of the
   breakpoint arrays starting at the first index the update could touch.
   Structural snapshots (rather than replaying the inverse delta) are the only
   exact undo: float addition does not round-trip ((v +. x) -. x <> v in
   general) and [coalesce_from]/eps-snapping destroy structure that arithmetic
   cannot rebuild.  Entries below [j_from] are never modified by [add_from]
   ([coalesce_from] can only merge at or after the first touched index), so
   restoring the tail restores the staircase bit-for-bit. *)
type journal_entry = {
  j_from : int;
  j_xs : float array;
  j_vs : float array;
  j_len : int;
}

type mark = int

type t = {
  mutable xs : float array;
  mutable vs : float array;
  mutable len : int;
  (* segment tree: [tree] has length [2 * tsize] ([tsize] a power of two,
     [tree.(0)] unused), leaf [j] lives at [tsize + j], [tree_len] is the
     [len] the leaves currently reflect, [dirty_from] the first
     possibly-stale index ([max_int] when clean). *)
  mutable tree : float array;
  mutable tsize : int;
  mutable tree_len : int;
  mutable dirty_from : int;
  mutable journaling : bool;
  mutable journal : journal_entry list;
  mutable jdepth : int;
}

let eps = 1e-9

let create v =
  {
    xs = [| 0. |];
    vs = [| v |];
    len = 1;
    tree = [| infinity; infinity |];
    tsize = 1;
    tree_len = 0;
    dirty_from = 0;
    journaling = false;
    journal = [];
    jdepth = 0;
  }

let copy s =
  {
    xs = Array.copy s.xs;
    vs = Array.copy s.vs;
    len = s.len;
    tree = Array.copy s.tree;
    tsize = s.tsize;
    tree_len = s.tree_len;
    dirty_from = s.dirty_from;
    journaling = false;
    journal = [];
    jdepth = 0;
  }

let set_journal s on =
  s.journaling <- on;
  s.journal <- [];
  s.jdepth <- 0

let mark s = s.jdepth

let ensure_capacity s n =
  let cap = Array.length s.xs in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let xs' = Array.make cap' 0. and vs' = Array.make cap' 0. in
    Array.blit s.xs 0 xs' 0 s.len;
    Array.blit s.vs 0 vs' 0 s.len;
    s.xs <- xs';
    s.vs <- vs'
  end

(* Record that indices >= [i] of [vs] (and possibly [len]) changed. *)
let touch s i = if i < s.dirty_from then s.dirty_from <- i

(* Index of the step containing time [t]: largest i with xs.(i) <= t. *)
let step_index s t =
  let lo = ref 0 and hi = ref (s.len - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if s.xs.(mid) <= t then lo := mid else hi := mid - 1
  done;
  !lo

let value s t =
  if t < 0. then invalid_arg "Staircase.value: negative time";
  s.vs.(step_index s t)

let final_value s = s.vs.(s.len - 1)

(* Merge adjacent eps-equal values, scanning from the first index the caller
   modified.  The untouched prefix already satisfies the invariant (adjacent
   kept values differ by more than eps), so the historical full scan kept
   every prefix entry and reached [from_] with its write cursor at
   [from_ - 1]: starting there produces the exact same array. *)
let coalesce_from s from_ =
  let w = ref (max 0 (from_ - 1)) in
  for r = !w + 1 to s.len - 1 do
    if abs_float (s.vs.(r) -. s.vs.(!w)) > eps then begin
      incr w;
      s.xs.(!w) <- s.xs.(r);
      s.vs.(!w) <- s.vs.(r)
    end
  done;
  s.len <- !w + 1

let add_from s t delta =
  if t < 0. then invalid_arg "Staircase.add_from: negative time";
  if not (Float.equal delta 0.) then begin
    let i = step_index s t in
    touch s i;
    if s.journaling then begin
      (* Snapshot the tail from [i]: every code path below (snap-to-i,
         snap-to-i+1, split at i+1, the delta loop, coalesce) only writes at
         index [i] or later. *)
      s.journal <-
        {
          j_from = i;
          j_xs = Array.sub s.xs i (s.len - i);
          j_vs = Array.sub s.vs i (s.len - i);
          j_len = s.len;
        }
        :: s.journal;
      s.jdepth <- s.jdepth + 1
    end;
    let start =
      (* Snap onto a breakpoint within eps instead of splitting: repeated
         just-in-time transfer times ([start -. comm]) land eps-close to
         existing breakpoints and would otherwise create sliver steps that
         inflate [len] and perturb suffix queries.  Snapping keeps the gap
         invariant (all gaps > eps), so at most one neighbour qualifies. *)
      if t -. s.xs.(i) <= eps then i
      else if i + 1 < s.len && s.xs.(i + 1) -. t <= eps then i + 1
      else begin
        (* Split step [i] at [t]. *)
        ensure_capacity s (s.len + 1);
        Array.blit s.xs (i + 1) s.xs (i + 2) (s.len - i - 1);
        Array.blit s.vs (i + 1) s.vs (i + 2) (s.len - i - 1);
        s.xs.(i + 1) <- t;
        s.vs.(i + 1) <- s.vs.(i);
        s.len <- s.len + 1;
        i + 1
      end
    in
    for j = start to s.len - 1 do
      s.vs.(j) <- s.vs.(j) +. delta
    done;
    coalesce_from s i
  end

let undo_to s m =
  if m > s.jdepth then invalid_arg "Staircase.undo_to: mark is ahead of the journal";
  while s.jdepth > m do
    match s.journal with
    | [] -> invalid_arg "Staircase.undo_to: journal underflow"
    | e :: rest ->
        ensure_capacity s e.j_len;
        Array.blit e.j_xs 0 s.xs e.j_from (Array.length e.j_xs);
        Array.blit e.j_vs 0 s.vs e.j_from (Array.length e.j_vs);
        s.len <- e.j_len;
        touch s e.j_from;
        s.journal <- rest;
        s.jdepth <- s.jdepth - 1
  done

let add_range s t1 t2 delta =
  if t1 > t2 then invalid_arg "Staircase.add_range: t1 > t2";
  if t1 < t2 && not (Float.equal delta 0.) then begin
    add_from s t1 delta;
    add_from s t2 (-.delta)
  end

let grow_tree s =
  let cap = Array.length s.xs in
  let ts = ref 1 in
  while !ts < cap do
    ts := 2 * !ts
  done;
  s.tsize <- !ts;
  s.tree <- Array.make (2 * !ts) infinity;
  for j = 0 to s.len - 1 do
    s.tree.(!ts + j) <- s.vs.(j)
  done;
  for k = !ts - 1 downto 1 do
    let l = s.tree.(2 * k) and r = s.tree.((2 * k) + 1) in
    s.tree.(k) <- (if l < r then l else r)
  done;
  s.tree_len <- s.len;
  s.dirty_from <- max_int

(* Patch the dirty leaf suffix and the tree levels above it.  [len] can only
   differ from [tree_len] when some index at or below the new [len] was
   touched ([coalesce_from] never drops [len] below the touched index), so
   the rewritten range [dirty_from .. max len tree_len - 1] covers every
   changed leaf; leaves at or beyond it are already +infinity. *)
let refresh_tree s =
  if s.tsize < s.len then grow_tree s
  else begin
    let hi = max s.len s.tree_len - 1 in
    if s.dirty_from <= hi then begin
      let a = s.dirty_from in
      for j = a to hi do
        s.tree.(s.tsize + j) <- (if j < s.len then s.vs.(j) else infinity)
      done;
      let lo = ref ((s.tsize + a) / 2) and up = ref ((s.tsize + hi) / 2) in
      while !lo >= 1 do
        for k = !lo to !up do
          let l = s.tree.(2 * k) and r = s.tree.((2 * k) + 1) in
          s.tree.(k) <- (if l < r then l else r)
        done;
        lo := !lo / 2;
        up := !up / 2
      done;
      s.tree_len <- s.len;
      s.dirty_from <- max_int
    end
  end

let min_from s t =
  refresh_tree s;
  let i = step_index s t in
  (* Range minimum over leaves [i .. tsize - 1].  The +infinity padding past
     [len - 1] never beats a real value, and when every real value is
     +infinity that is also the correct answer — so the padded suffix query
     returns exactly [min vs.(i .. len - 1)], the same float the linear scan
     finds (minima are comparison-order independent). *)
  let m = ref infinity in
  let l = ref (s.tsize + i) and r = ref (2 * s.tsize) in
  while !l < !r do
    if !l land 1 = 1 then begin
      if s.tree.(!l) < !m then m := s.tree.(!l);
      incr l
    end;
    if !r land 1 = 1 then begin
      decr r;
      if s.tree.(!r) < !m then m := s.tree.(!r)
    end;
    l := !l / 2;
    r := !r / 2
  done;
  !m

let min_on s t1 t2 =
  if t1 >= t2 then invalid_arg "Staircase.min_on: empty interval";
  let i = step_index s t1 in
  let m = ref s.vs.(i) in
  let j = ref (i + 1) in
  while !j < s.len && s.xs.(!j) < t2 do
    if s.vs.(!j) < !m then m := s.vs.(!j);
    incr j
  done;
  !m

let earliest_suffix_ge s ~level ~from =
  if final_value s +. eps < level then None
  else begin
    refresh_tree s;
    (* The answer is the breakpoint following the last step whose value is
       below [level] (or [from] when no step is).  [tree.(1)] is the global
       minimum, so the guard matches the historical suffix-minimum check at
       index 0; the descent then keeps the invariant "this subtree contains
       a leaf with [vs +. eps < level]", preferring the right child, and so
       lands on the last such index.  Padding leaves are +infinity and never
       qualify, and the feasibility test above puts the found step strictly
       before the final one, so the following breakpoint exists. *)
    if s.tree.(1) +. eps >= level then Some from
    else begin
      let k = ref 1 in
      while !k < s.tsize do
        let r = (2 * !k) + 1 in
        k := (if s.tree.(r) +. eps < level then r else 2 * !k)
      done;
      Some (Float.max from s.xs.(!k - s.tsize + 1))
    end
  end

(* Pre-optimisation linear-scan queries, kept as the A/B reference: the
   property tests check the fast paths against these, and the hotpath bench
   times the reference scheduler with them. *)

let min_from_scan s t =
  let i = step_index s t in
  let m = ref s.vs.(i) in
  for j = i + 1 to s.len - 1 do
    if s.vs.(j) < !m then m := s.vs.(j)
  done;
  !m

let earliest_suffix_ge_scan s ~level ~from =
  if final_value s +. eps < level then None
  else begin
    let answer = ref from in
    for j = 0 to s.len - 2 do
      if s.vs.(j) +. eps < level then answer := Float.max !answer s.xs.(j + 1)
    done;
    Some !answer
  end

let breakpoints s =
  let rec build i acc = if i < 0 then acc else build (i - 1) ((s.xs.(i), s.vs.(i)) :: acc) in
  build (s.len - 1) []

let length s = s.len

let pp ppf s =
  Format.fprintf ppf "@[<h>";
  for i = 0 to s.len - 1 do
    if i > 0 then Format.fprintf ppf " ";
    Format.fprintf ppf "[%g:%g]" s.xs.(i) s.vs.(i)
  done;
  Format.fprintf ppf "@]"
