(* Breakpoints stored in two parallel growable arrays, sorted by time.
   Invariants: len >= 1, xs.(0) = 0., xs strictly increasing with gaps > eps
   (update times within eps of an existing breakpoint are snapped onto it),
   adjacent values differ by more than eps ([coalesce] removes the rest).

   Queries are served by a lazily rebuilt suffix-minimum array:
   [suffmin.(i) = min vs.(i..len-1)], monotonically non-decreasing in [i],
   which turns [min_from] into one lookup and [earliest_suffix_ge] into a
   binary search.  Any mutation just flips [suffmin_ok]; the array is rebuilt
   (O(len)) on the next query, so a burst of queries between two updates —
   the scheduler's estimate phase — pays the rebuild once. *)

(* One journal record per destructive [add_from]: the pre-mutation tail of the
   breakpoint arrays starting at the first index the update could touch.
   Structural snapshots (rather than replaying the inverse delta) are the only
   exact undo: float addition does not round-trip ((v +. x) -. x <> v in
   general) and [coalesce]/eps-snapping destroy structure that arithmetic
   cannot rebuild.  Entries below [j_from] are never modified by [add_from]
   ([coalesce] can only merge at or after the first touched index), so
   restoring the tail restores the staircase bit-for-bit. *)
type journal_entry = {
  j_from : int;
  j_xs : float array;
  j_vs : float array;
  j_len : int;
}

type mark = int

type t = {
  mutable xs : float array;
  mutable vs : float array;
  mutable len : int;
  mutable suffmin : float array;
  mutable suffmin_ok : bool;
  mutable journaling : bool;
  mutable journal : journal_entry list;
  mutable jdepth : int;
}

let eps = 1e-9

let create v =
  {
    xs = [| 0. |];
    vs = [| v |];
    len = 1;
    suffmin = [||];
    suffmin_ok = false;
    journaling = false;
    journal = [];
    jdepth = 0;
  }

let copy s =
  {
    xs = Array.copy s.xs;
    vs = Array.copy s.vs;
    len = s.len;
    suffmin = Array.copy s.suffmin;
    suffmin_ok = s.suffmin_ok;
    journaling = false;
    journal = [];
    jdepth = 0;
  }

let set_journal s on =
  s.journaling <- on;
  s.journal <- [];
  s.jdepth <- 0

let mark s = s.jdepth

let ensure_capacity s n =
  let cap = Array.length s.xs in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let xs' = Array.make cap' 0. and vs' = Array.make cap' 0. in
    Array.blit s.xs 0 xs' 0 s.len;
    Array.blit s.vs 0 vs' 0 s.len;
    s.xs <- xs';
    s.vs <- vs'
  end

(* Index of the step containing time [t]: largest i with xs.(i) <= t. *)
let step_index s t =
  let lo = ref 0 and hi = ref (s.len - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if s.xs.(mid) <= t then lo := mid else hi := mid - 1
  done;
  !lo

let value s t =
  if t < 0. then invalid_arg "Staircase.value: negative time";
  s.vs.(step_index s t)

let final_value s = s.vs.(s.len - 1)

let coalesce s =
  let w = ref 0 in
  for r = 1 to s.len - 1 do
    if abs_float (s.vs.(r) -. s.vs.(!w)) > eps then begin
      incr w;
      s.xs.(!w) <- s.xs.(r);
      s.vs.(!w) <- s.vs.(r)
    end
  done;
  s.len <- !w + 1

let add_from s t delta =
  if t < 0. then invalid_arg "Staircase.add_from: negative time";
  if not (Float.equal delta 0.) then begin
    s.suffmin_ok <- false;
    let i = step_index s t in
    if s.journaling then begin
      (* Snapshot the tail from [i]: every code path below (snap-to-i,
         snap-to-i+1, split at i+1, the delta loop, coalesce) only writes at
         index [i] or later. *)
      s.journal <-
        {
          j_from = i;
          j_xs = Array.sub s.xs i (s.len - i);
          j_vs = Array.sub s.vs i (s.len - i);
          j_len = s.len;
        }
        :: s.journal;
      s.jdepth <- s.jdepth + 1
    end;
    let start =
      (* Snap onto a breakpoint within eps instead of splitting: repeated
         just-in-time transfer times ([start -. comm]) land eps-close to
         existing breakpoints and would otherwise create sliver steps that
         inflate [len] and perturb suffix queries.  Snapping keeps the gap
         invariant (all gaps > eps), so at most one neighbour qualifies. *)
      if t -. s.xs.(i) <= eps then i
      else if i + 1 < s.len && s.xs.(i + 1) -. t <= eps then i + 1
      else begin
        (* Split step [i] at [t]. *)
        ensure_capacity s (s.len + 1);
        Array.blit s.xs (i + 1) s.xs (i + 2) (s.len - i - 1);
        Array.blit s.vs (i + 1) s.vs (i + 2) (s.len - i - 1);
        s.xs.(i + 1) <- t;
        s.vs.(i + 1) <- s.vs.(i);
        s.len <- s.len + 1;
        i + 1
      end
    in
    for j = start to s.len - 1 do
      s.vs.(j) <- s.vs.(j) +. delta
    done;
    coalesce s
  end

let undo_to s m =
  if m > s.jdepth then invalid_arg "Staircase.undo_to: mark is ahead of the journal";
  while s.jdepth > m do
    match s.journal with
    | [] -> invalid_arg "Staircase.undo_to: journal underflow"
    | e :: rest ->
        ensure_capacity s e.j_len;
        Array.blit e.j_xs 0 s.xs e.j_from (Array.length e.j_xs);
        Array.blit e.j_vs 0 s.vs e.j_from (Array.length e.j_vs);
        s.len <- e.j_len;
        s.suffmin_ok <- false;
        s.journal <- rest;
        s.jdepth <- s.jdepth - 1
  done

let add_range s t1 t2 delta =
  if t1 > t2 then invalid_arg "Staircase.add_range: t1 > t2";
  if t1 < t2 && not (Float.equal delta 0.) then begin
    add_from s t1 delta;
    add_from s t2 (-.delta)
  end

let refresh_suffmin s =
  if not s.suffmin_ok then begin
    if Array.length s.suffmin < s.len then s.suffmin <- Array.make (Array.length s.xs) 0.;
    s.suffmin.(s.len - 1) <- s.vs.(s.len - 1);
    for j = s.len - 2 downto 0 do
      s.suffmin.(j) <- (if s.vs.(j) < s.suffmin.(j + 1) then s.vs.(j) else s.suffmin.(j + 1))
    done;
    s.suffmin_ok <- true
  end

let min_from s t =
  refresh_suffmin s;
  s.suffmin.(step_index s t)

let min_on s t1 t2 =
  if t1 >= t2 then invalid_arg "Staircase.min_on: empty interval";
  let i = step_index s t1 in
  let m = ref s.vs.(i) in
  let j = ref (i + 1) in
  while !j < s.len && s.xs.(!j) < t2 do
    if s.vs.(!j) < !m then m := s.vs.(!j);
    incr j
  done;
  !m

let earliest_suffix_ge s ~level ~from =
  if final_value s +. eps < level then None
  else begin
    refresh_suffmin s;
    (* The answer is the breakpoint following the last step whose value is
       below [level] (or [from] when no step is).  [suffmin] is non-decreasing
       and the final step passed the feasibility test above, so that last step
       is exactly the last index with [suffmin +. eps < level]: binary
       search. *)
    if s.suffmin.(0) +. eps >= level then Some from
    else begin
      let lo = ref 0 and hi = ref (s.len - 1) in
      (* invariant: suffmin.(lo) is below level, suffmin.(hi) is not *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if s.suffmin.(mid) +. eps < level then lo := mid else hi := mid
      done;
      Some (max from s.xs.(!hi))
    end
  end

(* Pre-optimisation linear-scan queries, kept as the A/B reference: the
   property tests check the fast paths against these, and the hotpath bench
   times the reference scheduler with them. *)

let min_from_scan s t =
  let i = step_index s t in
  let m = ref s.vs.(i) in
  for j = i + 1 to s.len - 1 do
    if s.vs.(j) < !m then m := s.vs.(j)
  done;
  !m

let earliest_suffix_ge_scan s ~level ~from =
  if final_value s +. eps < level then None
  else begin
    let answer = ref from in
    for j = 0 to s.len - 2 do
      if s.vs.(j) +. eps < level then answer := max !answer s.xs.(j + 1)
    done;
    Some !answer
  end

let breakpoints s =
  let rec build i acc = if i < 0 then acc else build (i - 1) ((s.xs.(i), s.vs.(i)) :: acc) in
  build (s.len - 1) []

let length s = s.len

let pp ppf s =
  Format.fprintf ppf "@[<h>";
  for i = 0 to s.len - 1 do
    if i > 0 then Format.fprintf ppf " ";
    Format.fprintf ppf "[%g:%g]" s.xs.(i) s.vs.(i)
  done;
  Format.fprintf ppf "@]"
