(** Floating-point helpers for schedule arithmetic.

    The planners verify memory availability over a window starting at some
    breakpoint [t] and later place a transfer at [est -. c] with
    [est >= t +. c].  Plain float arithmetic can give
    [(t +. c) -. c < t], silently moving the allocation below the verified
    window; {!lb_plus} computes the least float [x >= t +. c] such that
    [x -. c >= t] holds exactly in float arithmetic.

    The epsilon comparators are the one sanctioned way to compare schedule
    quantities (the [float-discipline] lint rule points here): both corpus
    finds of the differential fuzzer were eps/ulp comparison bugs, so raw
    [=]/[<] on derived times is exactly the class of bug being fenced off.
    Each comparator is written so that the [eps]-expanded bound is computed
    the same way the validator historically wrote it inline ([a > b +. eps],
    [a < b -. eps], ...) — adopting them is bit-identical by construction. *)

val lb_plus : float -> float -> float
(** [lb_plus t c] with [c >= 0]: the smallest float [x] such that
    [x >= t +. c] and [x -. c >= t]. *)

val default_eps : float
(** [1e-6], the tolerance used by the validator and the fuzz oracles. *)

val check_finite : what:string -> float -> unit
(** Rejects NaN and [±infinity] with [Invalid_argument].  The builder-side
    guard for model quantities (processing times, file sizes, transfer
    times): [x < 0.] alone lets NaN through ([NaN < 0.] is [false]), and one
    NaN poisons every downstream max/sum/staircase computation. *)

val check_not_nan : what:string -> float -> unit
(** Rejects NaN only — the capacity variant of {!check_finite}:
    [+infinity] is a legal "unbounded memory" capacity. *)

val eq : ?eps:float -> float -> float -> bool
(** [eq a b]: [abs (a -. b) <= eps].  Symmetric; [eq ~eps:0.] is exact
    equality (except that [eq nan nan] is false, as with [=]). *)

val leq : ?eps:float -> float -> float -> bool
(** [leq a b]: [a <= b +. eps]. *)

val geq : ?eps:float -> float -> float -> bool
(** [geq a b]: [a >= b -. eps]. *)

val lt : ?eps:float -> float -> float -> bool
(** [lt a b]: [a < b -. eps] — strictly below [b] beyond the tolerance.
    Negation of {!geq}. *)

val gt : ?eps:float -> float -> float -> bool
(** [gt a b]: [a > b +. eps] — strictly above [b] beyond the tolerance.
    Negation of {!leq}. *)
