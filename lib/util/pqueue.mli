(** Mutable binary-heap priority queue (min-heap under a user comparison). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty queue; [cmp] orders elements, smallest popped first. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element.  The vacated slot is cleared, so
    the queue never retains a reference to a popped element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty queue. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t
val to_sorted_list : 'a t -> 'a list
(** Drains the queue (destructive), smallest first. *)
