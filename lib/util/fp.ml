let lb_plus t c =
  let rec fix x = if x -. c >= t then x else fix (Float.succ x) in
  fix (t +. c)

let default_eps = 1e-6

(* Each bound is computed exactly as the validator's historical inline
   forms ([a > b +. eps], [a < b -. eps]): switching call sites to these
   helpers cannot change a single comparison result. *)
(* Validation guards.  NaN satisfies no [<] comparison, so the historical
   [x < 0.] builder checks silently accepted NaN weights and sizes — and a
   single NaN poisons every downstream max/sum/staircase computation.  These
   are the one sanctioned entry checks: builders reject non-finite model
   quantities, capacity checks additionally admit [+infinity] ("unbounded"). *)
let check_finite ~what x =
  if not (Float.is_finite x) then
    invalid_arg (Printf.sprintf "%s: non-finite value (%h)" what x)

let check_not_nan ~what x =
  if Float.is_nan x then invalid_arg (Printf.sprintf "%s: NaN" what)

let eq ?(eps = default_eps) a b = Float.abs (a -. b) <= eps
let leq ?(eps = default_eps) a b = a <= b +. eps
let geq ?(eps = default_eps) a b = a >= b -. eps
let lt ?(eps = default_eps) a b = a < b -. eps
let gt ?(eps = default_eps) a b = a > b +. eps
