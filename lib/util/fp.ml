let lb_plus t c =
  let rec fix x = if x -. c >= t then x else fix (Float.succ x) in
  fix (t +. c)

let default_eps = 1e-6

(* Each bound is computed exactly as the validator's historical inline
   forms ([a > b +. eps], [a < b -. eps]): switching call sites to these
   helpers cannot change a single comparison result. *)
let eq ?(eps = default_eps) a b = Float.abs (a -. b) <= eps
let leq ?(eps = default_eps) a b = a <= b +. eps
let geq ?(eps = default_eps) a b = a >= b -. eps
let lt ?(eps = default_eps) a b = a < b -. eps
let gt ?(eps = default_eps) a b = a > b +. eps
