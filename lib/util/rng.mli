(** Deterministic pseudo-random number generator (SplitMix64).

    All randomness in the project flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    the SplitMix64 mixer of Steele, Lea and Flood, which has a full 2^64
    period, passes BigCrush, and supports cheap splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Two generators
    built from the same seed produce identical streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val keyed : seed:int -> key:int -> t
(** [keyed ~seed ~key] builds the generator of sub-stream [key] of [seed] as
    a pure function of the pair: unlike {!split}, no generator state is
    consumed, so the stream assigned to a key is independent of how many
    other keys were derived and in which order.  Distinct keys yield
    statistically independent streams (golden-gamma stride + mix). *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent from the continuation of [g]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_incl : t -> int -> int -> int
(** [int_incl g lo hi] is uniform in [\[lo, hi\]] ([lo <= hi]). *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_distinct : t -> k:int -> n:int -> int list
(** [sample_distinct g ~k ~n] draws [k] distinct values from [\[0, n)],
    in increasing order.  Requires [0 <= k <= n]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
