type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy g = { state = g.state }

(* Pure function of (seed, key): the key walks the golden-gamma sequence from
   the seed's mixed origin, and the result is mixed again so that adjacent
   keys land on unrelated streams.  No shared mutable state is involved, so
   the stream a given key receives cannot depend on how many (or in what
   order) other keys were derived — the property the perturbation noise and
   jittered arrivals rely on. *)
let keyed ~seed ~key =
  let origin = mix64 (Int64.of_int seed) in
  { state = mix64 (Int64.add origin (Int64.mul golden_gamma (Int64.of_int key))) }

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let s = bits64 g in
  { state = mix64 s }

(* Non-negative 62-bit integer from the top bits (avoids sign issues). *)
let bits_nonneg g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int g bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to keep the distribution exactly uniform. *)
  let max = (1 lsl 62) - 1 in
  let limit = max - (max mod bound) in
  let rec draw () =
    let v = bits_nonneg g in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_incl g lo hi =
  if lo > hi then invalid_arg "Rng.int_incl: lo > hi";
  lo + int g (hi - lo + 1)

let float g bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (bits64 g) 1L = 1L

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_distinct g ~k ~n =
  if k < 0 || k > n then invalid_arg "Rng.sample_distinct";
  (* Floyd's algorithm: k iterations, set-based. *)
  let module S = Set.Make (Int) in
  let s = ref S.empty in
  for j = n - k to n - 1 do
    let v = int g (j + 1) in
    if S.mem v !s then s := S.add j !s else s := S.add v !s
  done;
  S.elements !s

let choose g a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int g (Array.length a))
