type memory = Blue | Red

let other = function Blue -> Red | Red -> Blue
let memory_to_string = function Blue -> "blue" | Red -> "red"
let pp_memory ppf m = Format.pp_print_string ppf (memory_to_string m)
let memories = [ Blue; Red ]

type t = { p_blue : int; p_red : int; m_blue : float; m_red : float }

let make ~p_blue ~p_red ~m_blue ~m_red =
  if p_blue <= 0 || p_red <= 0 then invalid_arg "Platform.make: processor counts must be positive";
  (* +infinity is a legal "unbounded" capacity, NaN never is. *)
  Fp.check_not_nan ~what:"Platform.make: memory capacity" m_blue;
  Fp.check_not_nan ~what:"Platform.make: memory capacity" m_red;
  if m_blue < 0. || m_red < 0. then invalid_arg "Platform.make: negative memory capacity";
  { p_blue; p_red; m_blue; m_red }

let unbounded ~p_blue ~p_red = make ~p_blue ~p_red ~m_blue:infinity ~m_red:infinity
let with_bounds p ~m_blue ~m_red = make ~p_blue:p.p_blue ~p_red:p.p_red ~m_blue ~m_red
let n_procs p = p.p_blue + p.p_red
let capacity p = function Blue -> p.m_blue | Red -> p.m_red
let n_procs_of p = function Blue -> p.p_blue | Red -> p.p_red

let memory_of_proc p k =
  if k < 0 || k >= n_procs p then invalid_arg "Platform.memory_of_proc: out of range";
  if k < p.p_blue then Blue else Red

let procs_of p = function
  | Blue -> List.init p.p_blue Fun.id
  | Red -> List.init p.p_red (fun k -> p.p_blue + k)

let first_proc p = function Blue -> 0 | Red -> p.p_blue

let w g i = function
  | Blue -> (Dag.task g i).Dag.w_blue
  | Red -> (Dag.task g i).Dag.w_red

let pp ppf p =
  Format.fprintf ppf "platform{blue: %d procs, M=%g; red: %d procs, M=%g}" p.p_blue p.m_blue
    p.p_red p.m_red
