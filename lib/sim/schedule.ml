type t = {
  starts : float array;
  procs : int array;
  comm_starts : float option array;
}

let create g =
  {
    starts = Array.make (Dag.n_tasks g) 0.;
    procs = Array.make (Dag.n_tasks g) 0;
    comm_starts = Array.make (Dag.n_edges g) None;
  }

let memory_of platform s i = Platform.memory_of_proc platform s.procs.(i)
let duration g platform s i = Platform.w g i (memory_of platform s i)
let finish g platform s i = s.starts.(i) +. duration g platform s i

let is_cut platform s (e : Dag.edge) =
  memory_of platform s e.Dag.src <> memory_of platform s e.Dag.dst

let comm_duration platform s (e : Dag.edge) = if is_cut platform s e then e.Dag.comm else 0.

let comm_finish g platform s (e : Dag.edge) =
  if is_cut platform s e then begin
    match s.comm_starts.(e.Dag.eid) with
    | Some tau -> tau +. e.Dag.comm
    | None -> invalid_arg "Schedule.comm_finish: cut edge without transfer"
  end
  else finish g platform s e.Dag.src

let makespan g platform s =
  let n = Dag.n_tasks g in
  let m = ref 0. in
  for i = 0 to n - 1 do
    m := Float.max !m (finish g platform s i)
  done;
  !m

let tasks_of_proc g platform s p =
  let on_p = ref [] in
  for i = Dag.n_tasks g - 1 downto 0 do
    if s.procs.(i) = p then on_p := i :: !on_p
  done;
  (* Sort by (start, finish) so that a zero-duration task sharing its start
     instant with a longer task is ordered first (it legally precedes it). *)
  List.sort
    (fun a b ->
      let c = Float.compare s.starts.(a) s.starts.(b) in
      if c <> 0 then c else Float.compare (finish g platform s a) (finish g platform s b))
    !on_p

let pp g platform ppf s =
  Format.fprintf ppf "@[<v>";
  for i = 0 to Dag.n_tasks g - 1 do
    Format.fprintf ppf "%s: proc %d (%a) [%g, %g)@,"
      (Dag.task g i).Dag.name s.procs.(i) Platform.pp_memory (memory_of platform s i)
      s.starts.(i) (finish g platform s i)
  done;
  Array.iter
    (fun (e : Dag.edge) ->
      match s.comm_starts.(e.Dag.eid) with
      | Some tau ->
        Format.fprintf ppf "comm %s->%s [%g, %g)@,"
          (Dag.task g e.Dag.src).Dag.name (Dag.task g e.Dag.dst).Dag.name tau (tau +. e.Dag.comm)
      | None -> ())
    (Dag.edges g);
  Format.fprintf ppf "@]"
