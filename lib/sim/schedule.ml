type t = {
  starts : float array;
  procs : int array;
  comm_starts : float option array;
}

let create g =
  {
    starts = Array.make (Dag.n_tasks g) 0.;
    procs = Array.make (Dag.n_tasks g) 0;
    comm_starts = Array.make (Dag.n_edges g) None;
  }

let memory_of platform s i = Platform.memory_of_proc platform s.procs.(i)
let duration g platform s i = Platform.w g i (memory_of platform s i)
let finish g platform s i = s.starts.(i) +. duration g platform s i

let is_cut platform s (e : Dag.edge) =
  memory_of platform s e.Dag.src <> memory_of platform s e.Dag.dst

let comm_duration platform s (e : Dag.edge) = if is_cut platform s e then e.Dag.comm else 0.

let comm_finish g platform s (e : Dag.edge) =
  if is_cut platform s e then begin
    match s.comm_starts.(e.Dag.eid) with
    | Some tau -> tau +. e.Dag.comm
    | None -> invalid_arg "Schedule.comm_finish: cut edge without transfer"
  end
  else finish g platform s e.Dag.src

let makespan g platform s =
  let n = Dag.n_tasks g in
  let m = ref 0. in
  for i = 0 to n - 1 do
    m := Float.max !m (finish g platform s i)
  done;
  !m

(* Flat per-task finish times in one pass over the SoA cost arrays: the same
   [starts.(i) +. w] addition as [finish], so the values are bit-identical. *)
let finishes g platform s =
  let n = Dag.n_tasks g in
  let wb = Dag.Csr.w_blue g and wr = Dag.Csr.w_red g in
  let fin = Array.make (max 1 n) 0. in
  for i = 0 to n - 1 do
    let w =
      match Platform.memory_of_proc platform s.procs.(i) with
      | Platform.Blue -> wb.(i)
      | Platform.Red -> wr.(i)
    in
    fin.(i) <- s.starts.(i) +. w
  done;
  fin

(* Group all tasks by processor in one counting-sort pass (O(n + p)), then
   sort each group in place by (start, finish, id).  The id tie-break makes
   the comparator total, which reproduces [tasks_of_proc] exactly: that path
   stable-sorts ascending task ids by (start, finish), so fully-tied tasks
   stay in ascending-id order there too. *)
let tasks_by_proc g platform s =
  let n = Dag.n_tasks g in
  let nprocs = Platform.n_procs platform in
  let off = Array.make (nprocs + 1) 0 in
  for i = 0 to n - 1 do
    let p = s.procs.(i) in
    if p < 0 || p >= nprocs then
      invalid_arg "Schedule.tasks_by_proc: processor index out of range";
    off.(p + 1) <- off.(p + 1) + 1
  done;
  for p = 1 to nprocs do
    off.(p) <- off.(p) + off.(p - 1)
  done;
  let order = Array.make (max 1 n) 0 in
  let next = Array.copy off in
  for i = 0 to n - 1 do
    let p = s.procs.(i) in
    order.(next.(p)) <- i;
    next.(p) <- next.(p) + 1
  done;
  let fin = finishes g platform s in
  let starts = s.starts in
  let cmp a b =
    let c = Float.compare starts.(a) starts.(b) in
    if c <> 0 then c
    else
      let c = Float.compare fin.(a) fin.(b) in
      if c <> 0 then c else Int.compare a b
  in
  for p = 0 to nprocs - 1 do
    let lo = off.(p) and hi = off.(p + 1) in
    if hi - lo > 1 then begin
      let seg = Array.sub order lo (hi - lo) in
      Array.sort cmp seg;
      Array.blit seg 0 order lo (hi - lo)
    end
  done;
  (off, order)

let tasks_of_proc g platform s p =
  let on_p = ref [] in
  for i = Dag.n_tasks g - 1 downto 0 do
    if s.procs.(i) = p then on_p := i :: !on_p
  done;
  (* Sort by (start, finish) so that a zero-duration task sharing its start
     instant with a longer task is ordered first (it legally precedes it). *)
  List.sort
    (fun a b ->
      let c = Float.compare s.starts.(a) s.starts.(b) in
      if c <> 0 then c else Float.compare (finish g platform s a) (finish g platform s b))
    !on_p

let pp g platform ppf s =
  Format.fprintf ppf "@[<v>";
  for i = 0 to Dag.n_tasks g - 1 do
    Format.fprintf ppf "%s: proc %d (%a) [%g, %g)@,"
      (Dag.task g i).Dag.name s.procs.(i) Platform.pp_memory (memory_of platform s i)
      s.starts.(i) (finish g platform s i)
  done;
  Array.iter
    (fun (e : Dag.edge) ->
      match s.comm_starts.(e.Dag.eid) with
      | Some tau ->
        Format.fprintf ppf "comm %s->%s [%g, %g)@,"
          (Dag.task g e.Dag.src).Dag.name (Dag.task g e.Dag.dst).Dag.name tau (tau +. e.Dag.comm)
      | None -> ())
    (Dag.edges g);
  Format.fprintf ppf "@]"
