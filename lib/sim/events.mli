(** Discrete-event reconstruction of memory usage over time (§3.2 semantics).

    Allocation rules implied by the paper's [BlueMemUsed]/[RedMemUsed]:
    a task's output files are allocated in its memory at its {e start};
    its input files are freed from its memory at its {e end}; a cross-memory
    transfer allocates the file in the destination memory at its start and
    frees it from the source memory at its end.  At equal instants, frees are
    applied before allocations, which matches the worked example of Figure 3
    (e.g. [RedMemUsed(T4) = F24 + F34]). *)

type trace = {
  times : float array;  (** event instants, strictly increasing, starts at 0. *)
  blue : float array;  (** blue usage on [\[times.(k), times.(k+1))] *)
  red : float array;
}

type scratch
(** Reusable working memory for {!memory_trace}: the event generation
    triple, the merge-sort double buffer and the step accumulators, grown
    on demand and retained across calls.  A trace over an [m]-event
    schedule touches ~9 [m]-sized arrays; reusing one scratch across a
    verification pass (validate, then trace, then stats on the same
    instance) makes every call after the first allocate nothing but the
    returned trace itself — on large instances the fresh-page cost of those
    buffers otherwise dominates the sweep.  A scratch is single-threaded
    state: share it between calls, never between domains. *)

val scratch : unit -> scratch
(** A fresh empty scratch (buffers are grown on first use). *)

val memory_trace : ?scratch:scratch -> Dag.t -> Platform.t -> Schedule.t -> trace
(** Flat reconstruction: events are generated straight into preallocated
    parallel arrays sized from [n_tasks + 2 * n_edges] and ordered by one
    streaming bottom-up merge sort (kind/seq/memory packed into an int key)
    instead of a heap drain — same order, sequential access.  Bit-identical
    to {!memory_trace_reference}. *)

val memory_trace_into : scratch -> Dag.t -> Platform.t -> Schedule.t -> int
(** Zero-copy form of {!memory_trace}: computes the trace into the
    scratch's step accumulators and returns the step count, materialising
    nothing.  Read the steps through {!scratch_steps}.  This is what the
    validator's memory phase and [Sched_stats.compute] run on, so a
    verification sweep only folds over buffers it already owns. *)

val scratch_steps : scratch -> float array * float array * float array
(** [(times, blue, red)] accumulator buffers of the last
    {!memory_trace_into} over this scratch.  Only the prefix up to its
    returned count is meaningful, and the contents are invalidated by the
    next trace over the same scratch. *)

val memory_trace_reference : Dag.t -> Platform.t -> Schedule.t -> trace
(** The pre-flattening pipeline kept verbatim (tuple-list drain, [List.map]
    re-box, reversed list accumulators): the A/B baseline for the parity
    tests, the sim-parity fuzz oracle and the [campaign/sim] bench. *)

val usage_at : trace -> Platform.memory -> float -> float
(** Usage at a given instant (right-continuous step function). *)

val peak : trace -> Platform.memory -> float
(** The paper's memory peak [M^s_mu(D)]. *)

val peaks : Dag.t -> Platform.t -> Schedule.t -> float * float
(** [(peak blue, peak red)] of a schedule. *)

val usage_at_task_start : Dag.t -> Platform.t -> Schedule.t -> int -> float
(** The paper's [MemUsed(s, i)]: usage of task [i]'s memory during its
    processing (sampled just after its start, frees-first tie rule). *)
