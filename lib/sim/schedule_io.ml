let to_string (s : Schedule.t) =
  let buf = Buffer.create 1024 in
  let n_comms =
    Array.fold_left
      (fun acc c -> match c with None -> acc | Some _ -> acc + 1)
      0 s.Schedule.comm_starts
  in
  Buffer.add_string buf
    (Printf.sprintf "schedule %d %d\n" (Array.length s.Schedule.starts) n_comms);
  Array.iteri
    (fun i start ->
      Buffer.add_string buf (Printf.sprintf "task %d %d %.17g\n" i s.Schedule.procs.(i) start))
    s.Schedule.starts;
  Array.iteri
    (fun eid tau ->
      match tau with
      | Some tau -> Buffer.add_string buf (Printf.sprintf "comm %d %.17g\n" eid tau)
      | None -> ())
    s.Schedule.comm_starts;
  Buffer.contents buf

let of_string g text =
  let fail fmt = Printf.ksprintf invalid_arg ("Schedule_io.of_string: " ^^ fmt) in
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> fail "empty input"
  | header :: rest ->
    let n, m =
      match String.split_on_char ' ' header with
      | [ "schedule"; n; m ] -> (
        match (int_of_string_opt n, int_of_string_opt m) with
        | Some n, Some m -> (n, m)
        | _ -> fail "bad header %S" header)
      | _ -> fail "bad header %S" header
    in
    if n <> Dag.n_tasks g then fail "expected %d tasks, header says %d" (Dag.n_tasks g) n;
    let s = Schedule.create g in
    let tasks_seen = ref 0 and comms_seen = ref 0 in
    List.iter
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "task"; id; proc; start ] -> (
          match (int_of_string_opt id, int_of_string_opt proc, float_of_string_opt start) with
          | Some id, Some proc, Some start when id >= 0 && id < n ->
            s.Schedule.starts.(id) <- start;
            s.Schedule.procs.(id) <- proc;
            incr tasks_seen
          | _ -> fail "bad task line %S" line)
        | [ "comm"; eid; start ] -> (
          match (int_of_string_opt eid, float_of_string_opt start) with
          | Some eid, Some start when eid >= 0 && eid < Dag.n_edges g ->
            s.Schedule.comm_starts.(eid) <- Some start;
            incr comms_seen
          | _ -> fail "bad comm line %S" line)
        | _ -> fail "unknown line %S" line)
      rest;
    if !tasks_seen <> n then fail "expected %d task lines, got %d" n !tasks_seen;
    if !comms_seen <> m then fail "expected %d comm lines, got %d" m !comms_seen;
    s

let write s path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string s))

let read g path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string g (really_input_string ic (in_channel_length ic)))
