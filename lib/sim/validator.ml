type report = {
  makespan : float;
  peak_blue : float;
  peak_red : float;
}

(* Every tolerance comparison below goes through the Fp helpers (the
   float-discipline invariant): the eps-expanded bound is computed exactly
   as the historical inline forms, so this is bit-identical. *)
let validate ?(eps = Fp.default_eps) g platform s =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let n = Dag.n_tasks g in
  let name i = (Dag.task g i).Dag.name in
  (* Placement sanity. *)
  for i = 0 to n - 1 do
    if s.Schedule.procs.(i) < 0 || s.Schedule.procs.(i) >= Platform.n_procs platform then
      err "task %s: processor %d out of range" (name i) s.Schedule.procs.(i);
    if Fp.lt ~eps s.Schedule.starts.(i) 0. then err "task %s: negative start %g" (name i) s.Schedule.starts.(i)
  done;
  if !errors <> [] then Error (List.rev !errors)
  else begin
    (* Transfer bookkeeping and flow constraints. *)
    Array.iter
      (fun (e : Dag.edge) ->
        let cut = Schedule.is_cut platform s e in
        let tau = s.Schedule.comm_starts.(e.Dag.eid) in
        match (cut, tau) with
        | true, None -> err "edge %s->%s: cut edge without a transfer" (name e.Dag.src) (name e.Dag.dst)
        | false, Some _ ->
          err "edge %s->%s: same-memory edge with a spurious transfer" (name e.Dag.src)
            (name e.Dag.dst)
        | true, Some tau ->
          let f_src = Schedule.finish g platform s e.Dag.src in
          if Fp.gt ~eps f_src tau then
            err "edge %s->%s: transfer starts at %g before producer finishes at %g" (name e.Dag.src)
              (name e.Dag.dst) tau f_src;
          if Fp.gt ~eps (tau +. e.Dag.comm) s.Schedule.starts.(e.Dag.dst) then
            err "edge %s->%s: transfer ends at %g after consumer starts at %g" (name e.Dag.src)
              (name e.Dag.dst) (tau +. e.Dag.comm) s.Schedule.starts.(e.Dag.dst);
          if Fp.lt ~eps tau 0. then err "edge %s->%s: negative transfer start" (name e.Dag.src) (name e.Dag.dst)
        | false, None ->
          let f_src = Schedule.finish g platform s e.Dag.src in
          if Fp.gt ~eps f_src s.Schedule.starts.(e.Dag.dst) then
            err "edge %s->%s: consumer starts at %g before producer finishes at %g" (name e.Dag.src)
              (name e.Dag.dst) s.Schedule.starts.(e.Dag.dst) f_src)
      (Dag.edges g);
    (* Resource constraints: sweep each processor's tasks by start time.
       Zero-duration tasks may share an instant with anything. *)
    for p = 0 to Platform.n_procs platform - 1 do
      let tasks = Schedule.tasks_of_proc g platform s p in
      let rec check = function
        | a :: (b :: _ as rest) ->
          let fin_a = Schedule.finish g platform s a in
          if Fp.gt ~eps fin_a s.Schedule.starts.(b) then
            err "processor %d: tasks %s and %s overlap ([%g,%g) vs start %g)" p (name a) (name b)
              s.Schedule.starts.(a) fin_a s.Schedule.starts.(b);
          check rest
        | _ -> ()
      in
      check tasks
    done;
    (* Memory constraints — only reconstructible when the transfer
       bookkeeping is sound, so stop here otherwise. *)
    if !errors <> [] then Error (List.rev !errors)
    else begin
    let trace = Events.memory_trace g platform s in
    let check_mem mem =
      let cap = Platform.capacity platform mem in
      let usage = match mem with Platform.Blue -> trace.Events.blue | Platform.Red -> trace.Events.red in
      Array.iteri
        (fun k u ->
          if Fp.gt ~eps u cap then
            err "%s memory: usage %g exceeds capacity %g at time %g"
              (Platform.memory_to_string mem) u cap trace.Events.times.(k);
          if Fp.lt ~eps u 0. then
            err "%s memory: negative usage %g at time %g (inconsistent file lifetimes)"
              (Platform.memory_to_string mem) u trace.Events.times.(k))
        usage
    in
    check_mem Platform.Blue;
    check_mem Platform.Red;
    match List.rev !errors with
    | [] ->
      Ok
        {
          makespan = Schedule.makespan g platform s;
          peak_blue = Events.peak trace Platform.Blue;
          peak_red = Events.peak trace Platform.Red;
        }
    | errs -> Error errs
    end
  end

let validate_exn ?eps g platform s =
  match validate ?eps g platform s with
  | Ok r -> r
  | Error errs -> failwith (String.concat "\n" errs)
