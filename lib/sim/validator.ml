type report = {
  makespan : float;
  peak_blue : float;
  peak_red : float;
}

(* Every tolerance comparison below goes through the Fp helpers (the
   float-discipline invariant): the eps-expanded bound is computed exactly
   as the historical inline forms, so this is bit-identical.

   The flat validator replaces the reference's per-processor [tasks_of_proc]
   rescans (O(n·p)) with one [Schedule.tasks_by_proc] grouping pass
   (O(n + p) plus the per-group sorts) and walks edges through the CSR SoA
   arrays instead of boxed edge records.  With [?pool] it shards the edge
   and processor sweeps over the deterministic Par runtime; each shard
   accumulates its own error list over a contiguous ascending range and the
   lists are concatenated in shard order, so the report is byte-identical
   for every jobs count — and to [validate_reference]. *)

(* Shard widths for the parallel mode: coarse enough to amortise dispatch,
   fixed (never jobs-derived) so the shard set is reproducible. *)
let edge_shard = 16_384
let proc_shard = 2

let ranges ~shard len =
  let rec go lo acc =
    if lo >= len then List.rev acc
    else
      let hi = min len (lo + shard) in
      go hi ((lo, hi) :: acc)
  in
  go 0 []

let validate ?(eps = Fp.default_eps) ?pool ?scratch g platform s =
  let n = Dag.n_tasks g and ne = Dag.n_edges g in
  let name i = (Dag.task g i).Dag.name in
  let nprocs = Platform.n_procs platform in
  let starts = s.Schedule.starts and procs = s.Schedule.procs in
  (* Placement sanity: serial, O(n), and the gate for everything after it
     (the flat passes below index arrays by processor). *)
  let placement = ref [] in
  let errp fmt = Printf.ksprintf (fun m -> placement := m :: !placement) fmt in
  for i = 0 to n - 1 do
    if procs.(i) < 0 || procs.(i) >= nprocs then
      errp "task %s: processor %d out of range" (name i) procs.(i);
    if Fp.lt ~eps starts.(i) 0. then errp "task %s: negative start %g" (name i) starts.(i)
  done;
  if !placement <> [] then Error (List.rev !placement)
  else begin
    let fin = Schedule.finishes g platform s in
    let p_blue = platform.Platform.p_blue in
    let comm_starts = s.Schedule.comm_starts in
    let e_src = Dag.Csr.e_src g and e_dst = Dag.Csr.e_dst g and e_comm = Dag.Csr.e_comm g in
    (* Transfer bookkeeping and flow constraints, over an edge-id range. *)
    let check_edges (lo, hi) =
      let errs = ref [] in
      let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
      for eid = lo to hi - 1 do
        let src = e_src.(eid) and dst = e_dst.(eid) in
        let cut = procs.(src) < p_blue <> (procs.(dst) < p_blue) in
        match (cut, comm_starts.(eid)) with
        | true, None -> err "edge %s->%s: cut edge without a transfer" (name src) (name dst)
        | false, Some _ ->
          err "edge %s->%s: same-memory edge with a spurious transfer" (name src) (name dst)
        | true, Some tau ->
          let f_src = fin.(src) in
          if Fp.gt ~eps f_src tau then
            err "edge %s->%s: transfer starts at %g before producer finishes at %g" (name src)
              (name dst) tau f_src;
          if Fp.gt ~eps (tau +. e_comm.(eid)) starts.(dst) then
            err "edge %s->%s: transfer ends at %g after consumer starts at %g" (name src)
              (name dst) (tau +. e_comm.(eid)) starts.(dst);
          if Fp.lt ~eps tau 0. then err "edge %s->%s: negative transfer start" (name src) (name dst)
        | false, None ->
          if Fp.gt ~eps fin.(src) starts.(dst) then
            err "edge %s->%s: consumer starts at %g before producer finishes at %g" (name src)
              (name dst) starts.(dst) fin.(src)
      done;
      List.rev !errs
    in
    (* Resource constraints: one grouping pass, then a flat overlap sweep of
       adjacent (start, finish, id)-sorted tasks over a processor range.
       Zero-duration tasks may share an instant with anything. *)
    let off, order = Schedule.tasks_by_proc g platform s in
    let check_procs (plo, phi) =
      let errs = ref [] in
      let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
      for p = plo to phi - 1 do
        for k = off.(p) to off.(p + 1) - 2 do
          let a = order.(k) and b = order.(k + 1) in
          if Fp.gt ~eps fin.(a) starts.(b) then
            err "processor %d: tasks %s and %s overlap ([%g,%g) vs start %g)" p (name a) (name b)
              starts.(a) fin.(a) starts.(b)
        done
      done;
      List.rev !errs
    in
    let sharded check ~shard len =
      match pool with
      | Some pool when Par.jobs pool > 1 && len > shard ->
        List.concat (Par.parallel_map pool ~f:check (ranges ~shard len))
      | _ -> check (0, len)
    in
    let errs =
      sharded check_edges ~shard:edge_shard ne @ sharded check_procs ~shard:proc_shard nprocs
    in
    (* Memory constraints — only reconstructible when the transfer
       bookkeeping is sound, so stop here otherwise. *)
    if errs <> [] then Error errs
    else begin
      (* Zero-copy trace: fold over the scratch's step prefix instead of
         materialising trace arrays this phase would only sweep once. *)
      let sc = match scratch with Some sc -> sc | None -> Events.scratch () in
      let nsteps = Events.memory_trace_into sc g platform s in
      let step_times, step_blue, step_red = Events.scratch_steps sc in
      let mem_errs = ref [] in
      let err fmt = Printf.ksprintf (fun m -> mem_errs := m :: !mem_errs) fmt in
      let check_mem mem =
        let cap = Platform.capacity platform mem in
        let usage = match mem with Platform.Blue -> step_blue | Platform.Red -> step_red in
        for k = 0 to nsteps - 1 do
          let u = usage.(k) in
          if Fp.gt ~eps u cap then
            err "%s memory: usage %g exceeds capacity %g at time %g"
              (Platform.memory_to_string mem) u cap step_times.(k);
          if Fp.lt ~eps u 0. then
            err "%s memory: negative usage %g at time %g (inconsistent file lifetimes)"
              (Platform.memory_to_string mem) u step_times.(k)
        done
      in
      check_mem Platform.Blue;
      check_mem Platform.Red;
      match List.rev !mem_errs with
      | [] ->
        (* The same ascending [Float.max] chains over the same values as
           [Schedule.makespan] and [Events.peak] — bit-identical. *)
        let peak_prefix a =
          let acc = ref 0. in
          for k = 0 to nsteps - 1 do
            acc := Float.max !acc a.(k)
          done;
          !acc
        in
        Ok
          {
            makespan = Array.fold_left Float.max 0. (if n = 0 then [||] else fin);
            peak_blue = peak_prefix step_blue;
            peak_red = peak_prefix step_red;
          }
      | errs -> Error errs
    end
  end

(* The pre-flattening validator, kept verbatim: per-processor task-list
   recursion over [tasks_of_proc], boxed edge records, the list-based
   reference trace.  [validate] must stay byte-identical to this — asserted
   by the A/B tests and the sim-parity fuzz oracle. *)
let validate_reference ?(eps = Fp.default_eps) g platform s =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let n = Dag.n_tasks g in
  let name i = (Dag.task g i).Dag.name in
  (* Placement sanity. *)
  for i = 0 to n - 1 do
    if s.Schedule.procs.(i) < 0 || s.Schedule.procs.(i) >= Platform.n_procs platform then
      err "task %s: processor %d out of range" (name i) s.Schedule.procs.(i);
    if Fp.lt ~eps s.Schedule.starts.(i) 0. then err "task %s: negative start %g" (name i) s.Schedule.starts.(i)
  done;
  if !errors <> [] then Error (List.rev !errors)
  else begin
    (* Transfer bookkeeping and flow constraints. *)
    Array.iter
      (fun (e : Dag.edge) ->
        let cut = Schedule.is_cut platform s e in
        let tau = s.Schedule.comm_starts.(e.Dag.eid) in
        match (cut, tau) with
        | true, None -> err "edge %s->%s: cut edge without a transfer" (name e.Dag.src) (name e.Dag.dst)
        | false, Some _ ->
          err "edge %s->%s: same-memory edge with a spurious transfer" (name e.Dag.src)
            (name e.Dag.dst)
        | true, Some tau ->
          let f_src = Schedule.finish g platform s e.Dag.src in
          if Fp.gt ~eps f_src tau then
            err "edge %s->%s: transfer starts at %g before producer finishes at %g" (name e.Dag.src)
              (name e.Dag.dst) tau f_src;
          if Fp.gt ~eps (tau +. e.Dag.comm) s.Schedule.starts.(e.Dag.dst) then
            err "edge %s->%s: transfer ends at %g after consumer starts at %g" (name e.Dag.src)
              (name e.Dag.dst) (tau +. e.Dag.comm) s.Schedule.starts.(e.Dag.dst);
          if Fp.lt ~eps tau 0. then err "edge %s->%s: negative transfer start" (name e.Dag.src) (name e.Dag.dst)
        | false, None ->
          let f_src = Schedule.finish g platform s e.Dag.src in
          if Fp.gt ~eps f_src s.Schedule.starts.(e.Dag.dst) then
            err "edge %s->%s: consumer starts at %g before producer finishes at %g" (name e.Dag.src)
              (name e.Dag.dst) s.Schedule.starts.(e.Dag.dst) f_src)
      (Dag.edges g);
    (* Resource constraints: sweep each processor's tasks by start time.
       Zero-duration tasks may share an instant with anything. *)
    for p = 0 to Platform.n_procs platform - 1 do
      let tasks = Schedule.tasks_of_proc g platform s p in
      let rec check = function
        | a :: (b :: _ as rest) ->
          let fin_a = Schedule.finish g platform s a in
          if Fp.gt ~eps fin_a s.Schedule.starts.(b) then
            err "processor %d: tasks %s and %s overlap ([%g,%g) vs start %g)" p (name a) (name b)
              s.Schedule.starts.(a) fin_a s.Schedule.starts.(b);
          check rest
        | _ -> ()
      in
      check tasks
    done;
    (* Memory constraints — only reconstructible when the transfer
       bookkeeping is sound, so stop here otherwise. *)
    if !errors <> [] then Error (List.rev !errors)
    else begin
    let trace = Events.memory_trace_reference g platform s in
    let check_mem mem =
      let cap = Platform.capacity platform mem in
      let usage = match mem with Platform.Blue -> trace.Events.blue | Platform.Red -> trace.Events.red in
      Array.iteri
        (fun k u ->
          if Fp.gt ~eps u cap then
            err "%s memory: usage %g exceeds capacity %g at time %g"
              (Platform.memory_to_string mem) u cap trace.Events.times.(k);
          if Fp.lt ~eps u 0. then
            err "%s memory: negative usage %g at time %g (inconsistent file lifetimes)"
              (Platform.memory_to_string mem) u trace.Events.times.(k))
        usage
    in
    check_mem Platform.Blue;
    check_mem Platform.Red;
    match List.rev !errors with
    | [] ->
      Ok
        {
          makespan = Schedule.makespan g platform s;
          peak_blue = Events.peak trace Platform.Blue;
          peak_red = Events.peak trace Platform.Red;
        }
    | errs -> Error errs
    end
  end

let validate_exn ?eps ?pool ?scratch g platform s =
  match validate ?eps ?pool ?scratch g platform s with
  | Ok r -> r
  | Error errs -> failwith (String.concat "\n" errs)
