(** Full validity oracle for schedules: re-checks every constraint of §3
    independently of how the schedule was produced.  Every scheduler in this
    repository (heuristics, exact solver, MILP extraction) is tested against
    this module. *)

type report = {
  makespan : float;
  peak_blue : float;
  peak_red : float;
}

val validate :
  ?eps:float ->
  ?pool:Par.t ->
  ?scratch:Events.scratch ->
  Dag.t ->
  Platform.t ->
  Schedule.t ->
  (report, string list) result
(** Checks, with tolerance [eps] (default [1e-6]):
    - placement sanity: processor indices in range, non-negative times;
    - transfer bookkeeping: every cut edge has a transfer, no same-memory
      edge does;
    - flow constraints: [sigma(i) + W_i <= tau(i,j)] and
      [tau(i,j) + COMM(i,j) <= sigma(j)] for every edge;
    - resource constraints: no two tasks overlap on the same processor;
    - memory constraints: the reconstructed usage of each memory never
      exceeds its capacity.

    Flat implementation: edges are swept through the CSR arrays and the
    per-processor overlap check runs on one {!Schedule.tasks_by_proc}
    grouping pass (O(n + p) total instead of the reference's O(n·p)).
    With [?pool] the edge and processor sweeps are sharded over contiguous
    ascending ranges and merged in shard order, so the error report is
    byte-identical for every jobs count — and to {!validate_reference}.
    [?scratch] is passed through to {!Events.memory_trace} for the memory
    phase, so a verification sweep can reuse one set of trace buffers.

    On success the report carries the makespan and both memory peaks. *)

val validate_reference :
  ?eps:float -> Dag.t -> Platform.t -> Schedule.t -> (report, string list) result
(** The pre-flattening validator kept verbatim (per-processor
    [tasks_of_proc] list recursion, boxed edge records, reference trace):
    the A/B baseline for the parity tests and the sim-parity fuzz oracle. *)

val validate_exn :
  ?eps:float -> ?pool:Par.t -> ?scratch:Events.scratch -> Dag.t -> Platform.t -> Schedule.t -> report
(** @raise Failure with all accumulated error messages. *)
