(** A complete schedule [(sigma, tau, proc)] in the sense of §3.1.

    For each task: a start time and a processor index.  For each edge whose
    endpoints run on different memories (a {e cut} edge): the start time of
    the corresponding cross-memory transfer.  Same-memory edges carry no
    transfer. *)

type t = {
  starts : float array;  (** [sigma(i)], indexed by task id *)
  procs : int array;  (** [proc(i)], indexed by task id *)
  comm_starts : float option array;
      (** [tau(i,j)], indexed by edge id; [None] on same-memory edges *)
}

val create : Dag.t -> t
(** All starts at [0.], all tasks on processor [0], no transfers: a blank
    schedule to be filled in. *)

val memory_of : Platform.t -> t -> int -> Platform.memory
(** Memory on which a task executes. *)

val duration : Dag.t -> Platform.t -> t -> int -> float
(** Actual processing time [W_i] of a task given its placement. *)

val finish : Dag.t -> Platform.t -> t -> int -> float
(** [sigma(i) + W_i]. *)

val is_cut : Platform.t -> t -> Dag.edge -> bool
(** True when the edge's endpoints execute on different memories. *)

val comm_duration : Platform.t -> t -> Dag.edge -> float
(** [C(i,j)] on a cut edge, [0.] otherwise (the paper's [COMM(i,j)]). *)

val comm_finish : Dag.t -> Platform.t -> t -> Dag.edge -> float
(** End of the transfer on a cut edge; on a same-memory edge, the producer's
    finish time (the file is available immediately). *)

val makespan : Dag.t -> Platform.t -> t -> float
(** Completion time of the last task ([0.] on an empty graph). *)

val tasks_of_proc : Dag.t -> Platform.t -> t -> int -> int list
(** Tasks placed on a processor, sorted by start then finish time (so a
    zero-duration task sharing a start instant precedes longer ones).
    Scans all [n] tasks: a per-processor sweep over every processor should
    use {!tasks_by_proc} instead (O(n + p) total, not O(n·p)). *)

val tasks_by_proc : Dag.t -> Platform.t -> t -> int array * int array
(** [(off, order)]: one grouped pass over all tasks — counting sort by
    processor, then one in-place (start, finish, id) sort per group.  The
    tasks of processor [p] are [order.(off.(p)) .. order.(off.(p+1) - 1)],
    in exactly the order {!tasks_of_proc} returns them (the id tie-break
    matches its stable sort, zero-duration ties included).
    @raise Invalid_argument if any task's processor index is out of range. *)

val finishes : Dag.t -> Platform.t -> t -> float array
(** All finish times in one flat pass; [finishes g p s].(i) is bit-identical
    to [finish g p s i]. *)

val pp : Dag.t -> Platform.t -> Format.formatter -> t -> unit
(** Human-readable listing of task placements and transfers. *)
