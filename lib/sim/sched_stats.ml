type per_proc = {
  proc : int;
  memory : Platform.memory;
  n_tasks : int;
  busy : float;
  idle : float;
}

type t = {
  makespan : float;
  total_work : float;
  per_proc : per_proc list;
  mean_utilisation : float;
  n_transfers : int;
  transfer_volume : float;
  transfer_time : float;
  peak_blue : float;
  peak_red : float;
  avg_blue : float;
  avg_red : float;
  tasks_on_blue : int;
  tasks_on_red : int;
}

let time_average trace usage horizon =
  if horizon <= 0. then 0.
  else begin
    let times = trace.Events.times in
    let acc = ref 0. in
    Array.iteri
      (fun k u ->
        let t0 = times.(k) in
        let t1 = if k + 1 < Array.length times then times.(k + 1) else horizon in
        let t1 = Float.min t1 horizon in
        if t1 > t0 then acc := !acc +. (u *. (t1 -. t0)))
      usage;
    !acc /. horizon
  end

let compute g platform s =
  let makespan = Schedule.makespan g platform s in
  let nprocs = Platform.n_procs platform in
  let busy = Array.make nprocs 0. in
  let counts = Array.make nprocs 0 in
  let total_work = ref 0. in
  let on_blue = ref 0 and on_red = ref 0 in
  for i = 0 to Dag.n_tasks g - 1 do
    let p = s.Schedule.procs.(i) in
    let w = Schedule.duration g platform s i in
    busy.(p) <- busy.(p) +. w;
    counts.(p) <- counts.(p) + 1;
    total_work := !total_work +. w;
    match Schedule.memory_of platform s i with
    | Platform.Blue -> incr on_blue
    | Platform.Red -> incr on_red
  done;
  let per_proc =
    List.init nprocs (fun p ->
        {
          proc = p;
          memory = Platform.memory_of_proc platform p;
          n_tasks = counts.(p);
          busy = busy.(p);
          idle = Float.max 0. (makespan -. busy.(p));
        })
  in
  let n_transfers = ref 0 and volume = ref 0. and ttime = ref 0. in
  Array.iter
    (fun (e : Dag.edge) ->
      match s.Schedule.comm_starts.(e.Dag.eid) with
      | Some _ ->
        incr n_transfers;
        volume := !volume +. e.Dag.size;
        ttime := !ttime +. e.Dag.comm
      | None -> ())
    (Dag.edges g);
  let trace = Events.memory_trace g platform s in
  {
    makespan;
    total_work = !total_work;
    per_proc;
    mean_utilisation =
      (if makespan <= 0. then 0.
       else Array.fold_left ( +. ) 0. busy /. (float_of_int nprocs *. makespan));
    n_transfers = !n_transfers;
    transfer_volume = !volume;
    transfer_time = !ttime;
    peak_blue = Events.peak trace Platform.Blue;
    peak_red = Events.peak trace Platform.Red;
    avg_blue = time_average trace trace.Events.blue makespan;
    avg_red = time_average trace trace.Events.red makespan;
    tasks_on_blue = !on_blue;
    tasks_on_red = !on_red;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "makespan:          %g@," t.makespan;
  Format.fprintf ppf "total work:        %g (utilisation %.0f%%)@," t.total_work
    (100. *. t.mean_utilisation);
  Format.fprintf ppf "task placement:    %d blue, %d red@," t.tasks_on_blue t.tasks_on_red;
  Format.fprintf ppf "transfers:         %d (volume %g, time %g)@," t.n_transfers t.transfer_volume
    t.transfer_time;
  Format.fprintf ppf "memory peaks:      blue %g, red %g@," t.peak_blue t.peak_red;
  Format.fprintf ppf "memory avg:        blue %.1f, red %.1f@," t.avg_blue t.avg_red;
  List.iter
    (fun p ->
      Format.fprintf ppf "proc %-2d (%-4s):    %d tasks, busy %g, idle %g@," p.proc
        (Platform.memory_to_string p.memory)
        p.n_tasks p.busy p.idle)
    t.per_proc;
  Format.fprintf ppf "@]"
