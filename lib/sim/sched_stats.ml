type per_proc = {
  proc : int;
  memory : Platform.memory;
  n_tasks : int;
  busy : float;
  idle : float;
}

type t = {
  makespan : float;
  total_work : float;
  per_proc : per_proc list;
  mean_utilisation : float;
  n_transfers : int;
  transfer_volume : float;
  transfer_time : float;
  peak_blue : float;
  peak_red : float;
  avg_blue : float;
  avg_red : float;
  tasks_on_blue : int;
  tasks_on_red : int;
}

let time_average trace usage horizon =
  if horizon <= 0. then 0.
  else begin
    let times = trace.Events.times in
    let acc = ref 0. in
    Array.iteri
      (fun k u ->
        let t0 = times.(k) in
        let t1 = if k + 1 < Array.length times then times.(k + 1) else horizon in
        let t1 = Float.min t1 horizon in
        if t1 > t0 then acc := !acc +. (u *. (t1 -. t0)))
      usage;
    !acc /. horizon
  end

(* Flat implementation: per-task costs come from the CSR SoA arrays (the
   same floats as the boxed accessors), transfers from a flat edge-id sweep,
   the trace from the flat [Events.memory_trace].  Accumulation order is
   exactly [compute_reference]'s, so every field is bit-identical to it. *)
let compute ?scratch g platform s =
  let n = Dag.n_tasks g and ne = Dag.n_edges g in
  let fin = Schedule.finishes g platform s in
  let makespan = Array.fold_left Float.max 0. (if n = 0 then [||] else fin) in
  let nprocs = Platform.n_procs platform in
  let procs = s.Schedule.procs in
  let wb = Dag.Csr.w_blue g and wr = Dag.Csr.w_red g in
  let busy = Array.make nprocs 0. in
  let counts = Array.make nprocs 0 in
  let total_work = ref 0. in
  let on_blue = ref 0 and on_red = ref 0 in
  for i = 0 to n - 1 do
    let p = procs.(i) in
    (* The raw weight, not [fin - start]: the subtraction would not be
       bit-identical to the reference's [duration]. *)
    let w =
      match Platform.memory_of_proc platform p with
      | Platform.Blue ->
        incr on_blue;
        wb.(i)
      | Platform.Red ->
        incr on_red;
        wr.(i)
    in
    busy.(p) <- busy.(p) +. w;
    counts.(p) <- counts.(p) + 1;
    total_work := !total_work +. w
  done;
  let per_proc =
    List.init nprocs (fun p ->
        {
          proc = p;
          memory = Platform.memory_of_proc platform p;
          n_tasks = counts.(p);
          busy = busy.(p);
          idle = Float.max 0. (makespan -. busy.(p));
        })
  in
  let e_size = Dag.Csr.e_size g and e_comm = Dag.Csr.e_comm g in
  let comm_starts = s.Schedule.comm_starts in
  let n_transfers = ref 0 and volume = ref 0. and ttime = ref 0. in
  for eid = 0 to ne - 1 do
    match comm_starts.(eid) with
    | Some _ ->
      incr n_transfers;
      volume := !volume +. e_size.(eid);
      ttime := !ttime +. e_comm.(eid)
    | None -> ()
  done;
  (* Zero-copy trace: fold peaks and time averages over the scratch's step
     prefix — same loops and float operations as [Events.peak] /
     [time_average] over materialised arrays, so every field stays
     bit-identical to the reference. *)
  let sc = match scratch with Some sc -> sc | None -> Events.scratch () in
  let nsteps = Events.memory_trace_into sc g platform s in
  let step_times, step_blue, step_red = Events.scratch_steps sc in
  let peak_prefix a =
    let acc = ref 0. in
    for k = 0 to nsteps - 1 do
      acc := Float.max !acc a.(k)
    done;
    !acc
  in
  let time_average_prefix usage horizon =
    if horizon <= 0. then 0.
    else begin
      let acc = ref 0. in
      for k = 0 to nsteps - 1 do
        let t0 = step_times.(k) in
        let t1 = if k + 1 < nsteps then step_times.(k + 1) else horizon in
        let t1 = Float.min t1 horizon in
        if t1 > t0 then acc := !acc +. (usage.(k) *. (t1 -. t0))
      done;
      !acc /. horizon
    end
  in
  {
    makespan;
    total_work = !total_work;
    per_proc;
    mean_utilisation =
      (if makespan <= 0. then 0.
       else Array.fold_left ( +. ) 0. busy /. (float_of_int nprocs *. makespan));
    n_transfers = !n_transfers;
    transfer_volume = !volume;
    transfer_time = !ttime;
    peak_blue = peak_prefix step_blue;
    peak_red = peak_prefix step_red;
    avg_blue = time_average_prefix step_blue makespan;
    avg_red = time_average_prefix step_red makespan;
    tasks_on_blue = !on_blue;
    tasks_on_red = !on_red;
  }

(* The pre-flattening implementation kept verbatim (boxed accessors, edge
   records, reference trace): the A/B baseline for the parity tests and the
   sim-parity fuzz oracle. *)
let compute_reference g platform s =
  let makespan = Schedule.makespan g platform s in
  let nprocs = Platform.n_procs platform in
  let busy = Array.make nprocs 0. in
  let counts = Array.make nprocs 0 in
  let total_work = ref 0. in
  let on_blue = ref 0 and on_red = ref 0 in
  for i = 0 to Dag.n_tasks g - 1 do
    let p = s.Schedule.procs.(i) in
    let w = Schedule.duration g platform s i in
    busy.(p) <- busy.(p) +. w;
    counts.(p) <- counts.(p) + 1;
    total_work := !total_work +. w;
    match Schedule.memory_of platform s i with
    | Platform.Blue -> incr on_blue
    | Platform.Red -> incr on_red
  done;
  let per_proc =
    List.init nprocs (fun p ->
        {
          proc = p;
          memory = Platform.memory_of_proc platform p;
          n_tasks = counts.(p);
          busy = busy.(p);
          idle = Float.max 0. (makespan -. busy.(p));
        })
  in
  let n_transfers = ref 0 and volume = ref 0. and ttime = ref 0. in
  Array.iter
    (fun (e : Dag.edge) ->
      match s.Schedule.comm_starts.(e.Dag.eid) with
      | Some _ ->
        incr n_transfers;
        volume := !volume +. e.Dag.size;
        ttime := !ttime +. e.Dag.comm
      | None -> ())
    (Dag.edges g);
  let trace = Events.memory_trace_reference g platform s in
  {
    makespan;
    total_work = !total_work;
    per_proc;
    mean_utilisation =
      (if makespan <= 0. then 0.
       else Array.fold_left ( +. ) 0. busy /. (float_of_int nprocs *. makespan));
    n_transfers = !n_transfers;
    transfer_volume = !volume;
    transfer_time = !ttime;
    peak_blue = Events.peak trace Platform.Blue;
    peak_red = Events.peak trace Platform.Red;
    avg_blue = time_average trace trace.Events.blue makespan;
    avg_red = time_average trace trace.Events.red makespan;
    tasks_on_blue = !on_blue;
    tasks_on_red = !on_red;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "makespan:          %g@," t.makespan;
  Format.fprintf ppf "total work:        %g (utilisation %.0f%%)@," t.total_work
    (100. *. t.mean_utilisation);
  Format.fprintf ppf "task placement:    %d blue, %d red@," t.tasks_on_blue t.tasks_on_red;
  Format.fprintf ppf "transfers:         %d (volume %g, time %g)@," t.n_transfers t.transfer_volume
    t.transfer_time;
  Format.fprintf ppf "memory peaks:      blue %g, red %g@," t.peak_blue t.peak_red;
  Format.fprintf ppf "memory avg:        blue %.1f, red %.1f@," t.avg_blue t.avg_red;
  List.iter
    (fun p ->
      Format.fprintf ppf "proc %-2d (%-4s):    %d tasks, busy %g, idle %g@," p.proc
        (Platform.memory_to_string p.memory)
        p.n_tasks p.busy p.idle)
    t.per_proc;
  Format.fprintf ppf "@]"
