(** Deterministic event min-heap for discrete-event reconstruction.

    Entries pop in non-decreasing [(time, kind)] order; entries equal on
    both pop in {e reverse insertion order}.  The tie rule reproduces the
    order of the historical reversed-accumulator + stable-sort pipeline in
    {!Events}, so the float accumulations downstream (memory traces, peaks)
    are bit-identical to the pre-heap implementation — asserted by the
    heap-vs-sorted-reference tests in [test_sim].

    Times are compared with [Float.compare] (a total order); NaN times are
    rejected at {!add}.  No randomness, no wall clock, no global state. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:float -> kind:int -> 'a -> unit
(** O(log n).  [kind] orders simultaneous events ([0] before [1], ...: the
    memory trace applies frees before allocations).
    @raise Invalid_argument on a NaN time. *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum entry; [None] when empty. *)

val drain : 'a t -> (float * int * 'a) list
(** Pop everything: the full event list in deterministic order. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
