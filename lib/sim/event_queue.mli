(** Deterministic event min-heap for discrete-event reconstruction.

    Entries pop in non-decreasing [(time, kind)] order; entries equal on
    both pop in {e reverse insertion order}.  The tie rule reproduces the
    order of the historical reversed-accumulator + stable-sort pipeline in
    {!Events}, so the float accumulations downstream (memory traces, peaks)
    are bit-identical to the pre-heap implementation — asserted by the
    heap-vs-sorted-reference tests in [test_sim].

    The backing store is a structure-of-arrays heap: parallel
    [times]/[kinds]/[seqs]/[payload] arrays indexed by heap slot, with no
    per-entry record or option boxing — sized once via [capacity] the heap
    never allocates on the add/pop path (the payload array itself is
    allocated on the first {!add}).

    Times are compared with [Float.compare] (a total order); NaN times are
    rejected at {!add}.  No randomness, no wall clock, no global state. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 16) pre-sizes the backing arrays; the heap still
    grows on demand past it.  Size it to the exact event count to make the
    whole add/drain cycle allocation-free after creation. *)

val add : 'a t -> time:float -> kind:int -> 'a -> unit
(** O(log n).  [kind] orders simultaneous events ([0] before [1], ...: the
    memory trace applies frees before allocations).
    @raise Invalid_argument on a NaN time. *)

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum entry; [None] when empty. *)

val drain_into :
  'a t -> times:float array -> kinds:int array -> payloads:'a array -> int
(** Pop everything into the caller-provided arrays (filled from index 0, in
    deterministic pop order) and return the number of entries written — the
    flat, allocation-free counterpart of {!drain}.
    @raise Invalid_argument if any destination is shorter than {!length}. *)

val drain : 'a t -> (float * int * 'a) list
(** Pop everything: the full event list in deterministic order.  Allocates a
    tuple list; flat consumers use {!drain_into}.  (For a single
    generate-everything-then-drain batch with no interleaved adds, the
    streaming merge sort inside {!Events.memory_trace} beats either drain —
    the heap is for genuinely incremental producers.) *)

val length : 'a t -> int
val is_empty : 'a t -> bool
