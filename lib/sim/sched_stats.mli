(** Descriptive statistics of a schedule, for reports and the CLI: where the
    time goes (busy/idle per processor), how much data crosses the memories,
    and how full each memory runs. *)

type per_proc = {
  proc : int;
  memory : Platform.memory;
  n_tasks : int;
  busy : float;  (** total processing time *)
  idle : float;  (** horizon minus busy *)
}

type t = {
  makespan : float;
  total_work : float;  (** sum of all processing times *)
  per_proc : per_proc list;
  mean_utilisation : float;  (** busy / horizon averaged over processors *)
  n_transfers : int;
  transfer_volume : float;  (** total file mass moved across memories *)
  transfer_time : float;  (** total transfer busy time *)
  peak_blue : float;
  peak_red : float;
  avg_blue : float;  (** time-averaged blue memory usage *)
  avg_red : float;
  tasks_on_blue : int;
  tasks_on_red : int;
}

val compute : ?scratch:Events.scratch -> Dag.t -> Platform.t -> Schedule.t -> t
(** Flat implementation over the CSR cost arrays and the flat memory trace;
    every field is bit-identical to {!compute_reference}.  [?scratch] is
    passed through to {!Events.memory_trace}. *)

val compute_reference : Dag.t -> Platform.t -> Schedule.t -> t
(** The pre-flattening implementation kept verbatim: the A/B baseline for
    the parity tests and the sim-parity fuzz oracle. *)

val pp : Format.formatter -> t -> unit
