(* Deterministic event min-heap for the discrete-event reconstructions.

   Entries are ordered by (time, kind); ties on both pop in REVERSE insertion
   order.  That tie rule is not arbitrary: the historical [Events.events_of]
   accumulated events by consing onto a list (reversing generation order) and
   then ran the stable [List.sort] by (time, kind), so simultaneous events of
   the same kind were emitted latest-generated-first.  Reproducing that order
   keeps every float accumulation in [Events.memory_trace] — and with it
   every golden digest — bit-identical after the refactor onto this heap. *)

type 'a entry = {
  time : float;
  kind : int;
  seq : int;  (* insertion counter; larger = inserted later *)
  payload : 'a;
}

type 'a t = {
  mutable heap : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 16 None; len = 0; next_seq = 0 }
let length q = q.len
let is_empty q = q.len = 0

(* Strict "a pops before b".  Times compare with [Float.compare] (total
   order); NaN times are rejected at [add].  Equal (time, kind) prefer the
   larger seq — the reverse-insertion tie rule documented above. *)
let before a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c < 0
  else if a.kind <> b.kind then a.kind < b.kind
  else a.seq > b.seq

let get q i = match q.heap.(i) with Some e -> e | None -> assert false

let grow q =
  let heap = Array.make (2 * Array.length q.heap) None in
  Array.blit q.heap 0 heap 0 q.len;
  q.heap <- heap

let add q ~time ~kind payload =
  if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
  if q.len = Array.length q.heap then grow q;
  let e = { time; kind; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  let i = ref q.len in
  q.len <- q.len + 1;
  q.heap.(!i) <- Some e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before e (get q parent) then begin
      q.heap.(!i) <- q.heap.(parent);
      q.heap.(parent) <- Some e;
      i := parent
    end
    else continue := false
  done

let pop q =
  if q.len = 0 then None
  else begin
    let top = get q 0 in
    q.len <- q.len - 1;
    let last = get q q.len in
    q.heap.(q.len) <- None;
    if q.len > 0 then begin
      q.heap.(0) <- Some last;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < q.len && before (get q l) (get q !smallest) then smallest := l;
        if r < q.len && before (get q r) (get q !smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = q.heap.(!i) in
          q.heap.(!i) <- q.heap.(!smallest);
          q.heap.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.kind, top.payload)
  end

let drain q =
  let acc = ref [] in
  let rec go () =
    match pop q with
    | None -> List.rev !acc
    | Some e ->
      acc := e :: !acc;
      go ()
  in
  go ()
