(* Deterministic event min-heap for the discrete-event reconstructions.

   Entries are ordered by (time, kind); ties on both pop in REVERSE insertion
   order.  That tie rule is not arbitrary: the historical [Events.events_of]
   accumulated events by consing onto a list (reversing generation order) and
   then ran the stable [List.sort] by (time, kind), so simultaneous events of
   the same kind were emitted latest-generated-first.  Reproducing that order
   keeps every float accumulation in [Events.memory_trace] — and with it
   every golden digest — bit-identical after the refactor onto this heap.

   Layout: structure-of-arrays.  The heap is four parallel arrays
   ([times]/[kinds]/[seqs]/[payloads]) indexed by heap slot, not an array of
   boxed entry records: a million-event drain touches flat float/int arrays
   with no per-entry allocation and no option unwrapping.  The payload array
   is allocated lazily on the first [add] (there is no manufactured dummy
   value of ['a]) and dropped when the queue empties so popped payloads are
   not retained. *)

type 'a t = {
  mutable times : float array;
  mutable kinds : int array;
  mutable seqs : int array;  (* insertion counter; larger = inserted later *)
  mutable payloads : 'a array;  (* [||] until the first add after empty *)
  mutable len : int;
  mutable next_seq : int;
}

let create ?(capacity = 16) () =
  let capacity = max 1 capacity in
  {
    times = Array.make capacity 0.;
    kinds = Array.make capacity 0;
    seqs = Array.make capacity 0;
    payloads = [||];
    len = 0;
    next_seq = 0;
  }

let length q = q.len
let is_empty q = q.len = 0

(* Strict "slot i pops before slot j".  Times compare with [Float.compare]
   (total order); NaN times are rejected at [add].  Equal (time, kind) prefer
   the larger seq — the reverse-insertion tie rule documented above. *)
let before q i j =
  let c = Float.compare q.times.(i) q.times.(j) in
  if c <> 0 then c < 0
  else if q.kinds.(i) <> q.kinds.(j) then q.kinds.(i) < q.kinds.(j)
  else q.seqs.(i) > q.seqs.(j)

let swap q i j =
  let t = q.times.(i) in
  q.times.(i) <- q.times.(j);
  q.times.(j) <- t;
  let k = q.kinds.(i) in
  q.kinds.(i) <- q.kinds.(j);
  q.kinds.(j) <- k;
  let s = q.seqs.(i) in
  q.seqs.(i) <- q.seqs.(j);
  q.seqs.(j) <- s;
  let p = q.payloads.(i) in
  q.payloads.(i) <- q.payloads.(j);
  q.payloads.(j) <- p

let grow q =
  let cap = 2 * Array.length q.times in
  let times = Array.make cap 0. in
  Array.blit q.times 0 times 0 q.len;
  q.times <- times;
  let kinds = Array.make cap 0 in
  Array.blit q.kinds 0 kinds 0 q.len;
  q.kinds <- kinds;
  let seqs = Array.make cap 0 in
  Array.blit q.seqs 0 seqs 0 q.len;
  q.seqs <- seqs;
  let payloads = Array.make cap q.payloads.(0) in
  Array.blit q.payloads 0 payloads 0 q.len;
  q.payloads <- payloads

let add q ~time ~kind payload =
  if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
  if Array.length q.payloads = 0 then q.payloads <- Array.make (Array.length q.times) payload;
  if q.len = Array.length q.times then grow q;
  let i = ref q.len in
  q.len <- q.len + 1;
  q.times.(!i) <- time;
  q.kinds.(!i) <- kind;
  q.seqs.(!i) <- q.next_seq;
  q.payloads.(!i) <- payload;
  q.next_seq <- q.next_seq + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before q !i parent then begin
      swap q !i parent;
      i := parent
    end
    else continue := false
  done

let sift_down q =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < q.len && before q l !smallest then smallest := l;
    if r < q.len && before q r !smallest then smallest := r;
    if !smallest <> !i then begin
      swap q !i !smallest;
      i := !smallest
    end
    else continue := false
  done

let pop q =
  if q.len = 0 then None
  else begin
    let time = q.times.(0) and kind = q.kinds.(0) and payload = q.payloads.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      let last = q.len in
      q.times.(0) <- q.times.(last);
      q.kinds.(0) <- q.kinds.(last);
      q.seqs.(0) <- q.seqs.(last);
      q.payloads.(0) <- q.payloads.(last);
      sift_down q
    end
    else
      (* Drop the payload array entirely: popped payloads must not be kept
         alive by stale heap slots (the space-leak discipline of Pqueue). *)
      q.payloads <- [||];
    Some (time, kind, payload)
  end

let drain_into q ~times ~kinds ~payloads =
  let n = q.len in
  if Array.length times < n || Array.length kinds < n || Array.length payloads < n then
    invalid_arg "Event_queue.drain_into: destination arrays shorter than the queue";
  let k = ref 0 in
  let continue = ref true in
  while !continue do
    match pop q with
    | None -> continue := false
    | Some (time, kind, payload) ->
      times.(!k) <- time;
      kinds.(!k) <- kind;
      payloads.(!k) <- payload;
      incr k
  done;
  !k

let drain q =
  let acc = ref [] in
  let rec go () =
    match pop q with
    | None -> List.rev !acc
    | Some e ->
      acc := e :: !acc;
      go ()
  in
  go ()
