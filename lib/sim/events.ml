type trace = {
  times : float array;
  blue : float array;
  red : float array;
}

(* kind 0 = free (applied first at equal times), kind 1 = alloc *)
type event = { time : float; kind : int; mem : Platform.memory; delta : float }

(* ------------------------------------------------------------ flat path --- *)

(* The flat reconstruction generates events straight into preallocated
   parallel arrays sized from [n_tasks + 2 * n_edges] and orders them with
   one bottom-up merge sort over those arrays instead of a heap: a
   million-event heap drain does O(m log m) *random* probes across the slot
   arrays (every sift level is a cache miss at this size), while merge
   passes stream sequentially and run an order of magnitude faster.  The
   [Event_queue] SoA heap remains the right tool for incremental
   produce/consume interleavings (and still backs the reference pipeline
   below); the trace's single generate-then-drain batch does not need one.

   Each event carries a packed int key [kind . (cap - seq) . mem]: key
   ascending is exactly the heap's pop order — kind ascending, then seq
   DESCENDING (the reverse-insertion tie rule that reproduces the
   historical reversed-accumulator + stable-sort pipeline) — and the mem
   bit rides along in the low bit where it can never affect the order
   (the seq field is distinct across events).  Sorting by (time, key) is
   therefore bit-identical to draining the queue, which is asserted
   against [memory_trace_reference] by the A/B tests and the sim-parity
   fuzz oracle.

   Generation order (and with it the seq tie-break) is exactly the
   reference's: per task, the start allocation then the finish free, tasks
   in id order; then per edge in id order, the transfer allocation then the
   transfer free.  Zero-delta events are skipped, as before. *)

(* Reusable working memory: the generation triple, the merge double buffer,
   the step accumulators and the per-task memory codes, each grown on
   demand and retained across calls.  On large instances the fresh-page
   cost of these buffers dominates a verification sweep; sharing one
   scratch across validate/trace/stats makes every call after the first
   allocate nothing but the returned trace. *)
type scratch = {
  mutable sc_time : float array;
  mutable sc_key : int array;
  mutable sc_delta : float array;
  mutable sc_aux_time : float array;
  mutable sc_aux_key : int array;
  mutable sc_aux_delta : float array;
  mutable sc_tacc : float array;
  mutable sc_bacc : float array;
  mutable sc_racc : float array;
  mutable sc_mem : int array;
}

let scratch () =
  {
    sc_time = [||];
    sc_key = [||];
    sc_delta = [||];
    sc_aux_time = [||];
    sc_aux_key = [||];
    sc_aux_delta = [||];
    sc_tacc = [||];
    sc_bacc = [||];
    sc_racc = [||];
    sc_mem = [||];
  }

let grown_f a need = if Array.length a >= need then a else Array.make (max 1 need) 0.
let grown_i a need = if Array.length a >= need then a else Array.make (max 1 need) 0

(* Bottom-up merge sort of the parallel (time, key, delta) arrays over the
   prefix [0, m), double-buffered against the caller-supplied aux triple.
   Returns the arrays holding the sorted prefix (either the originals or
   the aux triple, depending on pass parity).

   The "left run entry sorts no later than right run entry" test is spelled
   out inline rather than as a helper: a function call would box its float
   arguments on every one of the O(m log m) comparisons.  Times are ordered
   as [Float.compare] orders them (the heap's total order — the slow path
   only runs when the fast [<] probes say neither side is strictly smaller,
   i.e. equal times or a -0./0. pair), then the packed key.  NaN never
   reaches here (rejected at generation). *)
let sort_events times keys deltas aux_t aux_k aux_d m =
  let src_t = ref times and src_k = ref keys and src_d = ref deltas in
  let dst_t = ref aux_t in
  let dst_k = ref aux_k in
  let dst_d = ref aux_d in
  let width = ref 1 in
  while !width < m do
    let a_t = !src_t and a_k = !src_k and a_d = !src_d in
    let b_t = !dst_t and b_k = !dst_k and b_d = !dst_d in
    let lo = ref 0 in
    while !lo < m do
      let mid = min (!lo + !width) m in
      let hi = min (mid + !width) m in
      let i = ref !lo and j = ref mid and k = ref !lo in
      while !i < mid && !j < hi do
        let ta = a_t.(!i) and tb = a_t.(!j) in
        let take_left =
          if ta < tb then true
          else if tb < ta then false
          else begin
            let c = Float.compare ta tb in
            if c <> 0 then c < 0 else a_k.(!i) <= a_k.(!j)
          end
        in
        if take_left then begin
          b_t.(!k) <- a_t.(!i);
          b_k.(!k) <- a_k.(!i);
          b_d.(!k) <- a_d.(!i);
          incr i
        end
        else begin
          b_t.(!k) <- a_t.(!j);
          b_k.(!k) <- a_k.(!j);
          b_d.(!k) <- a_d.(!j);
          incr j
        end;
        incr k
      done;
      while !i < mid do
        b_t.(!k) <- a_t.(!i);
        b_k.(!k) <- a_k.(!i);
        b_d.(!k) <- a_d.(!i);
        incr i;
        incr k
      done;
      while !j < hi do
        b_t.(!k) <- a_t.(!j);
        b_k.(!k) <- a_k.(!j);
        b_d.(!k) <- a_d.(!j);
        incr j;
        incr k
      done;
      lo := hi
    done;
    src_t := b_t;
    src_k := b_k;
    src_d := b_d;
    dst_t := a_t;
    dst_k := a_k;
    dst_d := a_d;
    width := 2 * !width
  done;
  (!src_t, !src_k, !src_d)

(* Compute the trace into [sc]'s step accumulators without copying out:
   returns the step count.  Steps [0, count) live in
   [sc_tacc]/[sc_bacc]/[sc_racc] until the next trace over the scratch —
   the zero-copy form behind [memory_trace], used directly by the
   validator's memory phase and [Sched_stats.compute] so a verification
   sweep never materialises trace arrays it is only going to fold over. *)
let memory_trace_into sc g platform s =
  let n = Dag.n_tasks g and ne = Dag.n_edges g in
  let cap = (2 * n) + (2 * ne) in
  (* Generation arrays indexed by generation index (== the seq counter):
     key = [kind lsl 41  lor  (cap - seq) lsl 1  lor  mem_code] with
     0 = blue, 1 = red.  [cap - seq] keeps the field positive and makes key
     ascending mean seq descending; a cap at or beyond 2^40 events would
     need terabytes of event storage, so the field cannot overflow in any
     representable trace. *)
  sc.sc_time <- grown_f sc.sc_time cap;
  sc.sc_key <- grown_i sc.sc_key cap;
  sc.sc_delta <- grown_f sc.sc_delta cap;
  let g_time = sc.sc_time and g_key = sc.sc_key and g_delta = sc.sc_delta in
  let next = ref 0 in
  let push time kind mem_code delta =
    if not (Float.equal delta 0.) then begin
      (* Same rejection (and message) the reference path gets from
         [Event_queue.add], so error behaviour stays bit-identical. *)
      if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
      g_time.(!next) <- time;
      g_key.(!next) <- (((kind lsl 40) lor (cap - !next)) lsl 1) lor mem_code;
      g_delta.(!next) <- delta;
      incr next
    end
  in
  let starts = s.Schedule.starts and procs = s.Schedule.procs in
  let wb = Dag.Csr.w_blue g and wr = Dag.Csr.w_red g in
  let in_sz = Dag.Csr.in_sz g and out_sz = Dag.Csr.out_sz g in
  (* Memory code per task, with the same range check [memory_of] applied. *)
  sc.sc_mem <- grown_i sc.sc_mem n;
  let mem_code = sc.sc_mem in
  for i = 0 to n - 1 do
    mem_code.(i) <-
      (match Platform.memory_of_proc platform procs.(i) with Platform.Blue -> 0 | Platform.Red -> 1)
  done;
  for i = 0 to n - 1 do
    let m = mem_code.(i) in
    let finish = starts.(i) +. (if m = 0 then wb.(i) else wr.(i)) in
    push starts.(i) 1 m out_sz.(i);
    push finish 0 m (-.in_sz.(i))
  done;
  let e_src = Dag.Csr.e_src g and e_dst = Dag.Csr.e_dst g in
  let e_size = Dag.Csr.e_size g and e_comm = Dag.Csr.e_comm g in
  let comm_starts = s.Schedule.comm_starts in
  for eid = 0 to ne - 1 do
    let src_mem = mem_code.(e_src.(eid)) in
    if src_mem <> mem_code.(e_dst.(eid)) then begin
      match comm_starts.(eid) with
      | Some tau ->
        push tau 1 (1 - src_mem) e_size.(eid);
        push (tau +. e_comm.(eid)) 0 src_mem (-.e_size.(eid))
      | None -> invalid_arg "Events.memory_trace: cut edge without transfer"
    end
  done;
  (* Order the events — one streaming merge sort over the flat triple... *)
  let m = !next in
  sc.sc_aux_time <- grown_f sc.sc_aux_time m;
  sc.sc_aux_key <- grown_i sc.sc_aux_key m;
  sc.sc_aux_delta <- grown_f sc.sc_aux_delta m;
  let ord_times, ord_keys, ord_deltas =
    sort_events g_time g_key g_delta sc.sc_aux_time sc.sc_aux_key sc.sc_aux_delta m
  in
  (* ... and accumulate into step arrays grown once.  Step 0 is (0., 0., 0.);
     an event at an already-open instant overwrites the step in place, so
     the count only moves forward — exactly the reference's flush rule. *)
  sc.sc_tacc <- grown_f sc.sc_tacc (m + 1);
  sc.sc_bacc <- grown_f sc.sc_bacc (m + 1);
  sc.sc_racc <- grown_f sc.sc_racc (m + 1);
  let t_acc = sc.sc_tacc and b_acc = sc.sc_bacc and r_acc = sc.sc_racc in
  (* Step 0 must read (0., 0., 0.) even from a reused buffer. *)
  t_acc.(0) <- 0.;
  b_acc.(0) <- 0.;
  r_acc.(0) <- 0.;
  let count = ref 1 in
  let cur_blue = ref 0. and cur_red = ref 0. in
  for k = 0 to m - 1 do
    (if ord_keys.(k) land 1 = 0 then cur_blue := !cur_blue +. ord_deltas.(k)
     else cur_red := !cur_red +. ord_deltas.(k));
    let t = ord_times.(k) in
    let last = !count - 1 in
    if Float.equal t_acc.(last) t then begin
      b_acc.(last) <- !cur_blue;
      r_acc.(last) <- !cur_red
    end
    else begin
      t_acc.(!count) <- t;
      b_acc.(!count) <- !cur_blue;
      r_acc.(!count) <- !cur_red;
      incr count
    end
  done;
  !count

let scratch_steps sc = (sc.sc_tacc, sc.sc_bacc, sc.sc_racc)

let memory_trace ?scratch:sc g platform s =
  let sc = match sc with Some sc -> sc | None -> scratch () in
  let count = memory_trace_into sc g platform s in
  {
    times = Array.sub sc.sc_tacc 0 count;
    blue = Array.sub sc.sc_bacc 0 count;
    red = Array.sub sc.sc_racc 0 count;
  }

(* ------------------------------------------------------- reference path --- *)

(* The pre-flattening pipeline, kept verbatim: events drained from the queue
   into a tuple list, re-boxed through [List.map], accumulated into reversed
   lists.  [memory_trace] above must stay bit-identical to this. *)
let events_of_reference g platform s =
  let q = Event_queue.create () in
  let push time kind mem delta =
    if not (Float.equal delta 0.) then Event_queue.add q ~time ~kind (mem, delta)
  in
  for i = 0 to Dag.n_tasks g - 1 do
    let mem = Schedule.memory_of platform s i in
    push s.Schedule.starts.(i) 1 mem (Dag.out_size g i);
    push (Schedule.finish g platform s i) 0 mem (-.Dag.in_size g i)
  done;
  Array.iter
    (fun (e : Dag.edge) ->
      if Schedule.is_cut platform s e then begin
        match s.Schedule.comm_starts.(e.Dag.eid) with
        | Some tau ->
          let src_mem = Schedule.memory_of platform s e.Dag.src in
          push tau 1 (Platform.other src_mem) e.Dag.size;
          push (tau +. e.Dag.comm) 0 src_mem (-.e.Dag.size)
        | None -> invalid_arg "Events.memory_trace: cut edge without transfer"
      end)
    (Dag.edges g);
  List.map (fun (time, kind, (mem, delta)) -> { time; kind; mem; delta }) (Event_queue.drain q)

let memory_trace_reference g platform s =
  let evs = events_of_reference g platform s in
  let times = ref [ 0. ] and blue = ref [ 0. ] and red = ref [ 0. ] in
  let cur_blue = ref 0. and cur_red = ref 0. in
  let flush_step t =
    match !times with
    | last :: _ when Float.equal last t ->
      (* overwrite the step we just opened at the same instant *)
      blue := !cur_blue :: List.tl !blue;
      red := !cur_red :: List.tl !red
    | _ ->
      times := t :: !times;
      blue := !cur_blue :: !blue;
      red := !cur_red :: !red
  in
  List.iter
    (fun ev ->
      (match ev.mem with
      | Platform.Blue -> cur_blue := !cur_blue +. ev.delta
      | Platform.Red -> cur_red := !cur_red +. ev.delta);
      flush_step ev.time)
    evs;
  {
    times = Array.of_list (List.rev !times);
    blue = Array.of_list (List.rev !blue);
    red = Array.of_list (List.rev !red);
  }

(* ------------------------------------------------------------- queries --- *)

let step_index trace t =
  let lo = ref 0 and hi = ref (Array.length trace.times - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if trace.times.(mid) <= t then lo := mid else hi := mid - 1
  done;
  !lo

let usage_at trace mem t =
  let k = step_index trace t in
  match mem with Platform.Blue -> trace.blue.(k) | Platform.Red -> trace.red.(k)

let peak trace mem =
  let a = match mem with Platform.Blue -> trace.blue | Platform.Red -> trace.red in
  Array.fold_left Float.max 0. a

let peaks g platform s =
  let trace = memory_trace g platform s in
  (peak trace Platform.Blue, peak trace Platform.Red)

let usage_at_task_start g platform s i =
  let trace = memory_trace g platform s in
  usage_at trace (Schedule.memory_of platform s i) s.Schedule.starts.(i)
