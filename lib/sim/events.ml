type trace = {
  times : float array;
  blue : float array;
  red : float array;
}

(* kind 0 = free (applied first at equal times), kind 1 = alloc *)
type event = { time : float; kind : int; mem : Platform.memory; delta : float }

(* The events are generated into an {!Event_queue} and drained in
   (time, kind) order.  The queue's reverse-insertion tie rule reproduces the
   order of the reversed-accumulator + stable-sort pipeline this replaces,
   so the float accumulations in [memory_trace] are bit-identical. *)
let events_of g platform s =
  let q = Event_queue.create () in
  let push time kind mem delta =
    if not (Float.equal delta 0.) then Event_queue.add q ~time ~kind (mem, delta)
  in
  for i = 0 to Dag.n_tasks g - 1 do
    let mem = Schedule.memory_of platform s i in
    push s.Schedule.starts.(i) 1 mem (Dag.out_size g i);
    push (Schedule.finish g platform s i) 0 mem (-.Dag.in_size g i)
  done;
  Array.iter
    (fun (e : Dag.edge) ->
      if Schedule.is_cut platform s e then begin
        match s.Schedule.comm_starts.(e.Dag.eid) with
        | Some tau ->
          let src_mem = Schedule.memory_of platform s e.Dag.src in
          push tau 1 (Platform.other src_mem) e.Dag.size;
          push (tau +. e.Dag.comm) 0 src_mem (-.e.Dag.size)
        | None -> invalid_arg "Events.memory_trace: cut edge without transfer"
      end)
    (Dag.edges g);
  List.map (fun (time, kind, (mem, delta)) -> { time; kind; mem; delta }) (Event_queue.drain q)

let memory_trace g platform s =
  let evs = events_of g platform s in
  let times = ref [ 0. ] and blue = ref [ 0. ] and red = ref [ 0. ] in
  let cur_blue = ref 0. and cur_red = ref 0. in
  let flush_step t =
    match !times with
    | last :: _ when Float.equal last t ->
      (* overwrite the step we just opened at the same instant *)
      blue := !cur_blue :: List.tl !blue;
      red := !cur_red :: List.tl !red
    | _ ->
      times := t :: !times;
      blue := !cur_blue :: !blue;
      red := !cur_red :: !red
  in
  List.iter
    (fun ev ->
      (match ev.mem with
      | Platform.Blue -> cur_blue := !cur_blue +. ev.delta
      | Platform.Red -> cur_red := !cur_red +. ev.delta);
      flush_step ev.time)
    evs;
  {
    times = Array.of_list (List.rev !times);
    blue = Array.of_list (List.rev !blue);
    red = Array.of_list (List.rev !red);
  }

let step_index trace t =
  let lo = ref 0 and hi = ref (Array.length trace.times - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if trace.times.(mid) <= t then lo := mid else hi := mid - 1
  done;
  !lo

let usage_at trace mem t =
  let k = step_index trace t in
  match mem with Platform.Blue -> trace.blue.(k) | Platform.Red -> trace.red.(k)

let peak trace mem =
  let a = match mem with Platform.Blue -> trace.blue | Platform.Red -> trace.red in
  Array.fold_left Float.max 0. a

let peaks g platform s =
  let trace = memory_trace g platform s in
  (peak trace Platform.Blue, peak trace Platform.Red)

let usage_at_task_start g platform s i =
  let trace = memory_trace g platform s in
  usage_at trace (Schedule.memory_of platform s i) s.Schedule.starts.(i)
