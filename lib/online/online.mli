(** Online list scheduling under dynamic task arrivals.

    Tasks are released over simulated time by an {!Arrival} process and
    committed irrevocably through the offline heuristics' own incremental
    machinery ({!Sched_state}).  The decision loops are written against the
    restricted {!View}, which refuses to answer about unreleased tasks — the
    no-peeking guarantee is structural, not a convention.

    Release floors enter as estimate lifts ([est' = max(est, release)]),
    which preserve feasibility because the staircase check is a suffix
    minimum and every other component is monotone in the start time.  Under
    {!Arrival.Batch} no lift fires and both planners reproduce their offline
    counterparts bit-for-bit. *)

type algo = Heft_like | Minmin_like

val algo_label : algo -> string
(** ["memheft" | "memminmin"]. *)

type decision = {
  d_task : int;
  d_memory : Platform.memory;
  d_not_before : float;  (** the task's release time: its start-time floor *)
}

type plan = {
  p_algo : algo;
  p_arrival : Arrival.process;
  p_decisions : decision list;  (** chronological commit order *)
  p_schedule : Schedule.t;
  p_makespan : float;
  p_peak_blue : float;
  p_peak_red : float;
}

val lift_estimate : Dag.t -> not_before:float -> Sched_state.estimate -> Sched_state.estimate
(** [est' = max(est, not_before)], [eft' = est' + W^(mu)] (recomputed, not
    shifted).  Feasibility is preserved — see the module preamble. *)

(** The planner's window onto the scheduling state: released tasks only. *)
module View : sig
  type t

  val now : t -> float
  val n_tasks : t -> int
  val n_assigned : t -> int
  val is_released : t -> int -> bool

  val iter_ready : t -> (int -> unit) -> unit
  (** Released ready tasks, in the state's ready-set order. *)

  val best_estimate : t -> int -> Sched_state.estimate option
  (** Minimum-EFT estimate over both memories with the release floor lifted
      into each side before comparison.  [None] for unreleased, unready or
      memory-infeasible tasks. *)

  val priority_order : t -> int array
  (** Unassigned released tasks by non-increasing upward rank of the
      released subgraph (edges to unreleased children treated absent),
      ties by id.  Bit-identical to {!Rank.upward_ranks} order when
      everything is released. *)

  val commit : t -> Sched_state.estimate -> unit
  (** Irrevocable.  Records the decision with its release floor.
      @raise Invalid_argument on an unreleased task. *)
end

val plan :
  ?options:Sched_state.options ->
  algo:algo ->
  arrival:Arrival.process ->
  Dag.t ->
  Platform.t ->
  (plan, Heuristics.failure) result
(** Runs the online planner to completion: at each release epoch, drain the
    released subproblem with the chosen algorithm; fail only when every
    task has arrived and no ready task fits within the memory bounds. *)

val plan_of_offline :
  ?options:Sched_state.options ->
  algo:algo ->
  Dag.t ->
  Platform.t ->
  (plan, Heuristics.failure) result
(** An offline heuristic run repackaged as a plan (decision sequence from
    {!Sched_state.commit_order}, all floors zero).  Bit-identical to
    [plan ~arrival:Batch]. *)
