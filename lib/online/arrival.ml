(* Release-time processes for the online scenarios.

   A process maps a DAG to one release (arrival) time per task.  All three
   processes are precedence-consistent — a task is never released before
   every ancestor — so irrevocable online scheduling can always make
   progress.  [Layered] and [Jittered] derive releases from the CSR layer
   index (longest path from a source, precomputed at finalize); the jitter
   draws from per-task keyed streams, so a task's release is independent of
   the order in which other releases are evaluated. *)

type process =
  | Batch
  | Layered of { gap : float }
  | Jittered of { gap : float; seed : int }

let check_gap gap =
  Fp.check_finite ~what:"Arrival gap" gap;
  if gap < 0. then invalid_arg "Arrival: negative gap"

let releases process g =
  let n = Dag.n_tasks g in
  match process with
  | Batch -> Array.make n 0.
  | Layered { gap } ->
    check_gap gap;
    let layer = Dag.Csr.layer_of g in
    Array.init n (fun i -> gap *. float_of_int layer.(i))
  | Jittered { gap; seed } ->
    check_gap gap;
    let layer = Dag.Csr.layer_of g in
    (* u < 1 keeps every release strictly below the next layer's base, so
       parents (strictly smaller layer) are always released first. *)
    Array.init n (fun i ->
        let u = Rng.float (Rng.keyed ~seed ~key:i) 1.0 in
        gap *. (float_of_int layer.(i) +. u))

let label = function
  | Batch -> "batch"
  | Layered _ -> "layered"
  | Jittered _ -> "jittered"
