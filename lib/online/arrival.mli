(** Release-time (arrival) processes for online scheduling.

    [Batch] releases everything at time 0 — the offline special case.
    [Layered { gap }] releases layer [l] (longest path from a source) at
    [gap * l].  [Jittered { gap; seed }] adds a per-task uniform jitter
    within the layer window: release [gap * (l + u_i)] with [u_i] drawn from
    the task's keyed stream, so draws are order-independent.

    All three are precedence-consistent: every ancestor of a task is
    released no later than the task itself. *)

type process =
  | Batch
  | Layered of { gap : float }
  | Jittered of { gap : float; seed : int }

val releases : process -> Dag.t -> float array
(** One release time per task.
    @raise Invalid_argument on a negative or non-finite gap. *)

val label : process -> string
(** ["batch" | "layered" | "jittered"] — CSV/CLI tag. *)
