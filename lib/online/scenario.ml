(* Degradation campaigns: plan once per instance, replay under a grid of
   noise seeds and rescheduling policies, summarise the distribution of the
   realized-over-planned ratios.

   Determinism contract: every grid point is a pure function of
   (instance, config, seed); the fan-out goes through [Par.parallel_map]
   (order-preserving) and the aggregation is a serial fold over the fixed
   grid order; noise seeds are sorted and deduplicated up front.  The rows
   and summaries are therefore bit-identical for every [--jobs] value and
   independent of the order the seeds were supplied in. *)

type config = {
  algo : Online.algo;
  arrival : Arrival.process;
  policies : Replay.policy list;
  noise_level : float;
  noise_min_factor : float;
  noise_seeds : int list;
}

let default_config =
  {
    algo = Online.Heft_like;
    arrival = Arrival.Batch;
    policies = [ Replay.No_repair; Replay.Rerank_repair ];
    noise_level = 0.2;
    noise_min_factor = Noise.default_min_factor;
    noise_seeds = [ 0; 1; 2; 3; 4; 5; 6; 7 ];
  }

type row = {
  r_instance : string;
  r_policy : Replay.policy;
  r_seed : int;
  r_planned_makespan : float;
  r_realized_makespan : float;  (* nan when the replay failed *)
  r_makespan_ratio : float;  (* realized / planned; nan when failed *)
  r_planned_peak : float;  (* max of the two planned memory peaks *)
  r_realized_peak : float;
  r_peak_ratio : float;
  r_replayed : int;
  r_repaired : int;
  r_status : string;  (* "ok" or a failure reason *)
}

type summary = {
  s_instance : string;
  s_policy : Replay.policy;
  s_ok : int;
  s_failed : int;
  s_mk_p50 : float;
  s_mk_p95 : float;
  s_mk_max : float;
  s_peak_p50 : float;
  s_peak_p95 : float;
  s_peak_max : float;
}

let ratio ~planned ~realized = if planned > 0. then realized /. planned else 1.

let sorted_seeds seeds = List.sort_uniq compare seeds

let failed_row ~instance ~policy ~seed ~planned_makespan ~planned_peak reason =
  {
    r_instance = instance;
    r_policy = policy;
    r_seed = seed;
    r_planned_makespan = planned_makespan;
    r_realized_makespan = nan;
    r_makespan_ratio = nan;
    r_planned_peak = planned_peak;
    r_realized_peak = nan;
    r_peak_ratio = nan;
    r_replayed = 0;
    r_repaired = 0;
    r_status = reason;
  }

let replay_row cfg ~platform ~instance ~dag ~plan ~policy ~seed =
  let planned_makespan = plan.Online.p_makespan in
  let planned_peak = Float.max plan.Online.p_peak_blue plan.Online.p_peak_red in
  let spec = Noise.spec ~min_factor:cfg.noise_min_factor ~seed ~level:cfg.noise_level () in
  let realized = Noise.perturb spec dag in
  match Replay.run ~policy plan realized platform with
  | Error f ->
    failed_row ~instance ~policy ~seed ~planned_makespan ~planned_peak f.Heuristics.reason
  | Ok o ->
    {
      r_instance = instance;
      r_policy = policy;
      r_seed = seed;
      r_planned_makespan = planned_makespan;
      r_realized_makespan = o.Replay.o_makespan;
      r_makespan_ratio = ratio ~planned:planned_makespan ~realized:o.Replay.o_makespan;
      r_planned_peak = planned_peak;
      r_realized_peak = Float.max o.Replay.o_peak_blue o.Replay.o_peak_red;
      r_peak_ratio =
        ratio ~planned:planned_peak
          ~realized:(Float.max o.Replay.o_peak_blue o.Replay.o_peak_red);
      r_replayed = o.Replay.o_replayed;
      r_repaired = o.Replay.o_repaired;
      r_status = "ok";
    }

let summarise rows =
  let by_key = Hashtbl.create 16 in
  let keys = ref [] in
  List.iter
    (fun r ->
      let key = (r.r_instance, r.r_policy) in
      if not (Hashtbl.mem by_key key) then begin
        keys := key :: !keys;
        Hashtbl.add by_key key (ref [])
      end;
      let cell = Hashtbl.find by_key key in
      cell := r :: !cell)
    rows;
  List.rev_map
    (fun ((instance, policy) as key) ->
      let group = List.rev !(Hashtbl.find by_key key) in
      let ok = List.filter (fun r -> String.equal r.r_status "ok") group in
      let mks = List.map (fun r -> r.r_makespan_ratio) ok in
      let peaks = List.map (fun r -> r.r_peak_ratio) ok in
      let q p = function [] -> nan | xs -> Stats.quantile p xs in
      let maxi = function [] -> nan | xs -> Stats.maximum xs in
      {
        s_instance = instance;
        s_policy = policy;
        s_ok = List.length ok;
        s_failed = List.length group - List.length ok;
        s_mk_p50 = q 0.5 mks;
        s_mk_p95 = q 0.95 mks;
        s_mk_max = maxi mks;
        s_peak_p50 = q 0.5 peaks;
        s_peak_p95 = q 0.95 peaks;
        s_peak_max = maxi peaks;
      })
    !keys

let run ?pool cfg instances platform =
  let seeds = sorted_seeds cfg.noise_seeds in
  (* Plans are cheap relative to the seed grid and must be shared across all
     of an instance's grid points, so they are computed serially up front. *)
  let planned =
    List.map
      (fun (label, dag) ->
        (label, dag, Online.plan ~algo:cfg.algo ~arrival:cfg.arrival dag platform))
      instances
  in
  let grid =
    List.concat_map
      (fun (label, dag, plan) ->
        List.concat_map
          (fun policy -> List.map (fun seed -> (label, dag, plan, policy, seed)) seeds)
          cfg.policies)
      planned
  in
  let eval (label, dag, plan, policy, seed) =
    match plan with
    | Error f ->
      failed_row ~instance:label ~policy ~seed ~planned_makespan:nan ~planned_peak:nan
        ("plan failed: " ^ f.Heuristics.reason)
    | Ok plan -> replay_row cfg ~platform ~instance:label ~dag ~plan ~policy ~seed
  in
  let rows =
    match pool with
    | None -> List.map eval grid
    | Some pool -> Par.parallel_map pool ~f:eval grid
  in
  (rows, summarise rows)

(* CSV shape shared by the CLI, the figures driver and the bench digests. *)
let csv_header =
  [
    "instance"; "algo"; "arrival"; "policy"; "seed"; "planned_makespan"; "realized_makespan";
    "makespan_ratio"; "planned_peak"; "realized_peak"; "peak_ratio"; "replayed"; "repaired";
    "status";
  ]

let csv_row cfg r =
  [
    r.r_instance;
    Online.algo_label cfg.algo;
    Arrival.label cfg.arrival;
    Replay.policy_label r.r_policy;
    string_of_int r.r_seed;
    Csv.float_cell r.r_planned_makespan;
    Csv.float_cell r.r_realized_makespan;
    Csv.float_cell r.r_makespan_ratio;
    Csv.float_cell r.r_planned_peak;
    Csv.float_cell r.r_realized_peak;
    Csv.float_cell r.r_peak_ratio;
    string_of_int r.r_replayed;
    string_of_int r.r_repaired;
    r.r_status;
  ]
