(* Replay of a committed plan under realized (perturbed) costs.

   The engine re-executes the plan's decision sequence on the realized graph
   through a fresh {!Sched_state}: same tasks, same memory choices, same
   release floors, but every estimate recomputed from the realized costs —
   so starts, transfers and finish times shift with the noise while the
   decisions stand.  Memory caps are enforced by the estimate machinery
   itself: a planned decision whose realized footprint no longer fits yields
   no estimate, which is a divergence.

   Divergence handling is the rescheduling policy.  [No_repair] gives up —
   the baseline measuring how brittle a committed plan is.  [Rerank_repair]
   abandons the remaining decision suffix and re-places every not-yet-started
   task MemHEFT-style: upward ranks recomputed on the full realized graph,
   priority scan, release floors still honoured, caps still enforced.

   At noise level 0 the realized graph is bit-identical to the planned one,
   every estimate reproduces the planner's, and the replay returns the
   planned schedule bit-for-bit — the fixpoint oracle. *)

type policy = No_repair | Rerank_repair

let policy_label = function No_repair -> "norepair" | Rerank_repair -> "rerank"

type outcome = {
  o_schedule : Schedule.t;
  o_makespan : float;
  o_peak_blue : float;
  o_peak_red : float;
  o_replayed : int;  (* decisions re-executed as planned *)
  o_repaired : int;  (* tasks placed by the repair policy *)
}

let fail state reason =
  Error { Heuristics.reason; n_scheduled = Sched_state.n_assigned state }

(* MemHEFT-style repair pass over every unassigned task of the realized
   graph.  Ranks come from the full graph (all tasks have arrived by the
   time a repair is contemplated — their costs just changed), floors from
   the plan's release times. *)
let repair state ~not_before =
  let g = Sched_state.graph state in
  let n = Dag.n_tasks g in
  let rank = Rank.upward_ranks g in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if not (Sched_state.is_assigned state i) then acc := i :: !acc
  done;
  let order = Array.of_list !acc in
  Array.sort
    (fun a b ->
      let c = Float.compare rank.(b) rank.(a) in
      if c <> 0 then c else compare a b)
    order;
  let m = Array.length order in
  let taken = Array.make m false in
  let placed = ref 0 in
  let progress = ref true in
  while !progress && !placed < m do
    progress := false;
    let k = ref 0 in
    while (not !progress) && !k < m do
      if not taken.(!k) then begin
        let i = order.(!k) in
        let b, r = Sched_state.estimate_pair state i in
        let lift = Option.map (Online.lift_estimate g ~not_before:not_before.(i)) in
        match Sched_state.better_estimate (lift b) (lift r) with
        | Some e ->
          Sched_state.commit state e;
          taken.(!k) <- true;
          incr placed;
          progress := true
        | None -> ()
      end;
      incr k
    done
  done;
  if !placed = m then Ok !placed
  else fail state "repair stuck: no unassigned task fits within the memory bounds"

let run ?options ~policy (plan : Online.plan) realized platform =
  let n = Dag.n_tasks realized in
  if List.length plan.Online.p_decisions <> n then
    invalid_arg "Replay.run: plan does not cover the realized graph";
  let state = Sched_state.create ?options realized platform in
  let not_before = Array.make n 0. in
  List.iter
    (fun (d : Online.decision) -> not_before.(d.Online.d_task) <- d.Online.d_not_before)
    plan.Online.p_decisions;
  let replayed = ref 0 in
  let rec follow = function
    | [] -> Ok 0
    | (d : Online.decision) :: rest -> (
      let i = d.Online.d_task in
      match Sched_state.estimate state i d.Online.d_memory with
      | Some e ->
        Sched_state.commit state (Online.lift_estimate realized ~not_before:not_before.(i) e);
        incr replayed;
        follow rest
      | None -> (
        (* The planned decision no longer fits under realized costs. *)
        match policy with
        | No_repair ->
          fail state
            (Printf.sprintf "replay diverged at task %d: planned decision infeasible under realized costs" i)
        | Rerank_repair -> repair state ~not_before))
  in
  match follow plan.Online.p_decisions with
  | Error f -> Error f
  | Ok repaired ->
    let s = Sched_state.schedule state in
    let peak_blue, peak_red = Events.peaks realized platform s in
    Ok
      {
        o_schedule = s;
        o_makespan = Schedule.makespan realized platform s;
        o_peak_blue = peak_blue;
        o_peak_red = peak_red;
        o_replayed = !replayed;
        o_repaired = repaired;
      }
