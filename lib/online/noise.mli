(** Seeded multiplicative cost perturbation (the uncertainty model of the
    scenario layer).

    Each task and each edge draws one uniform factor
    [max min_factor (1 + level * U[-1,1))] from a private SplitMix64 stream
    keyed by [(seed, entity)] — a pure function of the pair, so draws are
    independent of entity count and of any evaluation order.  A task's
    factor scales both [w_blue] and [w_red]; an edge's factor scales both
    [size] and [comm].

    At [level = 0.] every factor is exactly [1.0] and [x *. 1.0] is
    bit-identical to [x]: perturbation is then the identity bit-for-bit,
    which the zero-noise replay oracle relies on. *)

type spec = {
  seed : int;
  level : float;
  min_factor : float;
}

val default_min_factor : float
(** [0.05]. *)

val spec : ?min_factor:float -> seed:int -> level:float -> unit -> spec
(** @raise Invalid_argument on a negative or non-finite level, or a
    [min_factor] outside [(0, 1]] (a floor above 1 would break the
    zero-noise fixpoint). *)

val task_factor : spec -> int -> float
val edge_factor : spec -> int -> float

val perturb : spec -> Dag.t -> Dag.t
(** The realized graph: same topology, ids and names; perturbed costs.
    Rebuilt through {!Dag.Builder}, so the result passes the usual
    finiteness and positivity guards. *)
