(** Replay of a committed plan under realized (perturbed) costs.

    The plan's decision sequence — task order, memory choices, release
    floors — is re-executed on the realized graph through a fresh
    {!Sched_state}; starts and finishes shift with the noise while the
    decisions stand.  Memory caps are enforced by the estimate machinery: a
    planned decision whose realized footprint no longer fits yields no
    estimate, which is a {e divergence} and triggers the rescheduling
    policy.

    At noise level [0.] the realized graph is bit-identical to the planned
    one and the replay returns the planned schedule bit-for-bit. *)

type policy =
  | No_repair  (** divergence fails the replay — the brittleness baseline *)
  | Rerank_repair
      (** divergence abandons the remaining decisions and re-places every
          not-yet-started task MemHEFT-style on the realized graph: fresh
          upward ranks, release floors still honoured, caps still
          enforced *)

val policy_label : policy -> string
(** ["norepair" | "rerank"]. *)

type outcome = {
  o_schedule : Schedule.t;
  o_makespan : float;
  o_peak_blue : float;
  o_peak_red : float;
  o_replayed : int;  (** decisions re-executed as planned *)
  o_repaired : int;  (** tasks placed by the repair policy *)
}

val run :
  ?options:Sched_state.options ->
  policy:policy ->
  Online.plan ->
  Dag.t ->
  Platform.t ->
  (outcome, Heuristics.failure) result
(** [run ~policy plan realized platform] re-executes [plan] on [realized],
    which must have the same topology (same task ids and edges) as the
    planned graph — {!Noise.perturb} guarantees this.
    @raise Invalid_argument when the plan does not cover the graph. *)
