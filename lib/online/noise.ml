(* Seeded multiplicative perturbation of a DAG's costs.

   Every task and every edge owns a private SplitMix64 stream derived as a
   pure function of (seed, entity key), so the factor an entity receives is
   independent of how many other entities exist and of any evaluation order —
   reordering arrivals, tasks or edges never changes a draw.  A task's two
   processing times share one factor (the task got slower, on both sides);
   an edge's size and transfer time share one factor (the file got bigger). *)

type spec = {
  seed : int;
  level : float;  (* relative half-width of the uniform factor *)
  min_factor : float;  (* truncation floor keeping costs positive *)
}

let default_min_factor = 0.05

let spec ?(min_factor = default_min_factor) ~seed ~level () =
  Fp.check_finite ~what:"Noise.spec level" level;
  Fp.check_finite ~what:"Noise.spec min_factor" min_factor;
  if level < 0. then invalid_arg "Noise.spec: negative level";
  if not (min_factor > 0.) then invalid_arg "Noise.spec: min_factor must be positive";
  if min_factor > 1. then invalid_arg "Noise.spec: min_factor above 1 breaks the zero-noise fixpoint";
  { seed; level; min_factor }

(* Tasks take even keys, edges odd ones: the two families never collide in
   the keyed stream space. *)
let factor spec ~key =
  let u = Rng.float (Rng.keyed ~seed:spec.seed ~key) 1.0 in
  (* At level = 0 this is exactly [1. +. 0. = 1.0] whatever [u] is, and
     [x *. 1.0] is bit-identical to [x]: the zero-noise replay reproduces
     the planned schedule by construction, not by tolerance. *)
  Float.max spec.min_factor (1. +. (spec.level *. ((2. *. u) -. 1.)))

let task_factor spec i = factor spec ~key:(2 * i)
let edge_factor spec eid = factor spec ~key:((2 * eid) + 1)

(* Rebuilt through the ordinary builder so the perturbed graph goes through
   the same finiteness/positivity checks as any generated instance. *)
let perturb spec g =
  let b = Dag.Builder.create () in
  Array.iter
    (fun (t : Dag.task) ->
      let f = task_factor spec t.Dag.id in
      let id =
        Dag.Builder.add_task b ~name:t.Dag.name ~w_blue:(t.Dag.w_blue *. f)
          ~w_red:(t.Dag.w_red *. f) ()
      in
      assert (id = t.Dag.id))
    (Dag.tasks g);
  Array.iter
    (fun (e : Dag.edge) ->
      let f = edge_factor spec e.Dag.eid in
      Dag.Builder.add_edge b ~src:e.Dag.src ~dst:e.Dag.dst ~size:(e.Dag.size *. f)
        ~comm:(e.Dag.comm *. f))
    (Dag.edges g);
  Dag.Builder.finalize b
