(* Online list scheduling under dynamic task arrivals.

   Tasks are released over simulated time by an {!Arrival} process; the
   planner only ever sees released tasks and commits decisions irrevocably
   through the same incremental machinery ({!Sched_state}) as the offline
   heuristics.  The no-peeking discipline is enforced structurally: the
   decision loops are written against {!View}, whose operations answer
   [None]/raise for unreleased tasks, rather than against the raw state.

   Release floors are folded into the estimates by lifting: a task released
   at [r] gets [est' = max(est, r)] and [eft' = est' + W^(mu)].  Lifting a
   feasible estimate keeps it feasible because every component of the
   machinery is monotone in the start time — staircase feasibility is a
   suffix minimum (later suffixes have no smaller minimum), transfer windows
   move later with the start, and [Earliest_available] accepts any processor
   available by the start.  Under [Batch] every floor is [0.], no estimate
   is lifted, and both planners reproduce their offline counterparts
   bit-for-bit. *)

type algo = Heft_like | Minmin_like

let algo_label = function Heft_like -> "memheft" | Minmin_like -> "memminmin"

type decision = {
  d_task : int;
  d_memory : Platform.memory;
  d_not_before : float;  (* the task's release time: its start-time floor *)
}

type plan = {
  p_algo : algo;
  p_arrival : Arrival.process;
  p_decisions : decision list;  (* chronological commit order *)
  p_schedule : Schedule.t;
  p_makespan : float;
  p_peak_blue : float;
  p_peak_red : float;
}

let lift_estimate g ~not_before (e : Sched_state.estimate) =
  if e.Sched_state.est >= not_before then e
  else
    {
      e with
      Sched_state.est = not_before;
      eft = not_before +. Platform.w g e.Sched_state.task e.Sched_state.memory;
    }

module View = struct
  type t = {
    state : Sched_state.t;
    releases : float array;
    released : bool array;
    by_release : int array;  (* ids sorted by (release, id) *)
    mutable horizon : int;  (* prefix of [by_release] already released *)
    mutable now : float;
    mutable decisions : decision list;  (* reverse chronological *)
  }

  let make ?options ~arrival g platform =
    let n = Dag.n_tasks g in
    let releases = Arrival.releases arrival g in
    let by_release = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        let c = Float.compare releases.(a) releases.(b) in
        if c <> 0 then c else compare a b)
      by_release;
    {
      state = Sched_state.create ?options g platform;
      releases;
      released = Array.make n false;
      by_release;
      horizon = 0;
      now = 0.;
      decisions = [];
    }

  let graph v = Sched_state.graph v.state
  let n_tasks v = Array.length v.released
  let n_assigned v = Sched_state.n_assigned v.state
  let now v = v.now
  let is_released v i = v.released.(i)

  (* Advance simulated time, releasing every task that has arrived. *)
  let advance_to v t =
    if t >= v.now then v.now <- t;
    let n = n_tasks v in
    while v.horizon < n && v.releases.(v.by_release.(v.horizon)) <= v.now do
      v.released.(v.by_release.(v.horizon)) <- true;
      v.horizon <- v.horizon + 1
    done

  let next_release v = if v.horizon < n_tasks v then Some v.releases.(v.by_release.(v.horizon)) else None

  let iter_ready v f = Sched_state.iter_ready v.state (fun i -> if v.released.(i) then f i)

  (* Minimum-EFT estimate over both memories with the release floor folded
     in: each per-memory estimate is lifted, then compared — so the floor
     can flip the winning memory when it erases one side's head start. *)
  let best_estimate v i =
    if not v.released.(i) then None
    else begin
      let b, r = Sched_state.estimate_pair v.state i in
      let lift = Option.map (lift_estimate (graph v) ~not_before:v.releases.(i)) in
      Sched_state.better_estimate (lift b) (lift r)
    end

  let commit v (e : Sched_state.estimate) =
    let i = e.Sched_state.task in
    if not v.released.(i) then invalid_arg "Online.View.commit: task not released";
    Sched_state.commit v.state e;
    v.decisions <-
      { d_task = i; d_memory = e.Sched_state.memory; d_not_before = v.releases.(i) }
      :: v.decisions

  (* Upward ranks of the released subgraph: the usual bottom-level recursion
     with edges to unreleased children treated as absent.  The arithmetic
     mirrors [Rank.upward_ranks] operation for operation, so with everything
     released (Batch) the two arrays are bit-identical. *)
  let released_ranks v =
    let g = graph v in
    let n = n_tasks v in
    let rank = Array.make n 0. in
    let topo = Dag.topological_order g in
    let off = Dag.Csr.succ_off g and eid = Dag.Csr.succ_eid g in
    let dst = Dag.Csr.succ_dst g in
    let wb = Dag.Csr.w_blue g and wr = Dag.Csr.w_red g in
    for k = n - 1 downto 0 do
      let i = topo.(k) in
      if v.released.(i) then begin
        let acc = ref 0. in
        for p = off.(i) to off.(i + 1) - 1 do
          if v.released.(dst.(p)) then
            acc := Float.max !acc ((Dag.edge g eid.(p)).Dag.comm /. 2. +. rank.(dst.(p)))
        done;
        rank.(i) <- ((wb.(i) +. wr.(i)) /. 2.) +. !acc
      end
    done;
    rank

  (* Unassigned released tasks by non-increasing released-subgraph rank,
     ties by id — the priority order of the epoch. *)
  let priority_order v =
    let rank = released_ranks v in
    let acc = ref [] in
    for i = n_tasks v - 1 downto 0 do
      if v.released.(i) && not (Sched_state.is_assigned v.state i) then acc := i :: !acc
    done;
    let order = Array.of_list !acc in
    let cmp a b =
      let c = Float.compare rank.(b) rank.(a) in
      if c <> 0 then c else compare a b
    in
    Array.sort cmp order;
    order
end

(* One epoch of online MemHEFT: rebuild the priority order of the released
   subgraph, then repeat the Algorithm 1 scan — commit the first released
   ready task that fits, restart — until a full scan commits nothing. *)
let heft_drain v =
  let order = View.priority_order v in
  let m = Array.length order in
  let taken = Array.make m false in
  let progress = ref true in
  while !progress do
    progress := false;
    let k = ref 0 in
    while (not !progress) && !k < m do
      let i = order.(!k) in
      if not taken.(!k) then begin
        match View.best_estimate v i with
        | Some e ->
          View.commit v e;
          taken.(!k) <- true;
          progress := true
        | None -> ()
      end;
      incr k
    done
  done

(* One epoch of online MemMinMin: among released ready tasks, commit the one
   with the smallest (lifted) EFT; ties keep the earlier candidate, exactly
   as Algorithm 2 does offline. *)
let minmin_drain v =
  let progress = ref true in
  while !progress do
    progress := false;
    let best = ref None in
    View.iter_ready v (fun i ->
        match View.best_estimate v i with
        | Some e -> (
          match !best with
          | Some b when b.Sched_state.eft <= e.Sched_state.eft -> ()
          | _ -> best := Some e)
        | None -> ());
    match !best with
    | Some e ->
      View.commit v e;
      progress := true
    | None -> ()
  done

let plan ?options ~algo ~arrival g platform =
  let v = View.make ?options ~arrival g platform in
  let drain = match algo with Heft_like -> heft_drain | Minmin_like -> minmin_drain in
  let n = Dag.n_tasks g in
  let rec run t =
    View.advance_to v t;
    drain v;
    if View.n_assigned v = n then Ok ()
    else
      match View.next_release v with
      | Some t' -> run t'
      | None ->
        Error
          {
            Heuristics.reason = "no released ready task fits within the memory bounds";
            n_scheduled = View.n_assigned v;
          }
  in
  match run 0. with
  | Error f -> Error f
  | Ok () ->
    let s = Sched_state.schedule v.View.state in
    let peak_blue, peak_red = Events.peaks g platform s in
    Ok
      {
        p_algo = algo;
        p_arrival = arrival;
        p_decisions = List.rev v.View.decisions;
        p_schedule = s;
        p_makespan = Schedule.makespan g platform s;
        p_peak_blue = peak_blue;
        p_peak_red = peak_red;
      }

(* An offline heuristic run repackaged as a plan: the decision sequence is
   read back from the state's commit log, every floor is zero.  Bit-identical
   to [plan ~arrival:Batch] — asserted by the test suite. *)
let plan_of_offline ?options ~algo g platform =
  let state, result =
    match algo with
    | Heft_like -> Heuristics.memheft_run ?options g platform
    | Minmin_like -> Heuristics.memminmin_run ?options g platform
  in
  match result with
  | Error f -> Error f
  | Ok s ->
    let peak_blue, peak_red = Events.peaks g platform s in
    Ok
      {
        p_algo = algo;
        p_arrival = Arrival.Batch;
        p_decisions =
          List.map
            (fun i ->
              { d_task = i; d_memory = Schedule.memory_of platform s i; d_not_before = 0. })
            (Sched_state.commit_order state);
        p_schedule = s;
        p_makespan = Schedule.makespan g platform s;
        p_peak_blue = peak_blue;
        p_peak_red = peak_red;
      }
