(** Degradation campaigns over (instance, noise seed, policy) grids.

    Each instance is planned once; the plan is replayed under every noise
    seed and rescheduling policy of the grid; the summaries give the
    p50/p95/max of the realized-over-planned makespan and peak-memory
    ratios per (instance, policy).

    Determinism: every grid point is a pure function of its coordinates,
    the fan-out preserves order, the aggregation is serial over the fixed
    grid order, and seeds are sorted and deduplicated up front — rows and
    summaries are bit-identical for every [--jobs] value and independent of
    the seed-list order. *)

type config = {
  algo : Online.algo;
  arrival : Arrival.process;
  policies : Replay.policy list;
  noise_level : float;
  noise_min_factor : float;
  noise_seeds : int list;
}

val default_config : config
(** MemHEFT, batch arrivals, both policies, level [0.2], seeds [0..7]. *)

type row = {
  r_instance : string;
  r_policy : Replay.policy;
  r_seed : int;
  r_planned_makespan : float;
  r_realized_makespan : float;  (** [nan] when the replay failed *)
  r_makespan_ratio : float;  (** realized / planned; [nan] when failed *)
  r_planned_peak : float;  (** max of the two planned memory peaks *)
  r_realized_peak : float;
  r_peak_ratio : float;
  r_replayed : int;
  r_repaired : int;
  r_status : string;  (** ["ok"] or a failure reason *)
}

type summary = {
  s_instance : string;
  s_policy : Replay.policy;
  s_ok : int;
  s_failed : int;
  s_mk_p50 : float;
  s_mk_p95 : float;
  s_mk_max : float;
  s_peak_p50 : float;
  s_peak_p95 : float;
  s_peak_max : float;
}

val run :
  ?pool:Par.t -> config -> (string * Dag.t) list -> Platform.t -> row list * summary list
(** Rows in grid order (instances, then policies, then sorted seeds);
    summaries in first-appearance order of (instance, policy). *)

val csv_header : string list

val csv_row : config -> row -> string list
(** One CSV record per row — the shape shared by the CLI, the figures
    driver and the bench digests. *)
