type t = {
  label : string;
  dag : Dag.t;
  platform : Platform.t;
}

let make ~label dag platform = { label; dag; platform }

let safe_label l =
  let l = if l = "" then "unlabelled" else l in
  String.map (fun c -> if c = ' ' || c = '\t' || c = '\n' then '_' else c) l

let to_string t =
  let p = t.platform in
  Printf.sprintf "instance %s\nplatform %d %d %.17g %.17g\n%s" (safe_label t.label)
    (Platform.n_procs_of p Platform.Blue)
    (Platform.n_procs_of p Platform.Red)
    (Platform.capacity p Platform.Blue)
    (Platform.capacity p Platform.Red)
    (Dag.to_string t.dag)

let of_string s =
  let fail fmt = Printf.ksprintf invalid_arg ("Fuzz_instance.of_string: " ^^ fmt) in
  (* Split off the two header lines; the remainder is the DAG text format. *)
  let line_end from = match String.index_from_opt s from '\n' with
    | Some k -> k
    | None -> fail "truncated input"
  in
  let e1 = line_end 0 in
  let l1 = String.sub s 0 e1 in
  let e2 = line_end (e1 + 1) in
  let l2 = String.sub s (e1 + 1) (e2 - e1 - 1) in
  let rest = String.sub s (e2 + 1) (String.length s - e2 - 1) in
  let label =
    match String.split_on_char ' ' l1 with
    | "instance" :: rest when rest <> [] -> String.concat " " rest
    | _ -> fail "expected 'instance <label>' on line 1"
  in
  let platform =
    match String.split_on_char ' ' l2 with
    | [ "platform"; pb; pr; mb; mr ] -> (
      match
        (int_of_string_opt pb, int_of_string_opt pr, float_of_string_opt mb, float_of_string_opt mr)
      with
      | Some pb, Some pr, Some mb, Some mr -> Platform.make ~p_blue:pb ~p_red:pr ~m_blue:mb ~m_red:mr
      | _ -> fail "malformed platform line %S" l2)
    | _ -> fail "expected 'platform <p_blue> <p_red> <m_blue> <m_red>' on line 2"
  in
  { label; dag = Dag.of_string rest; platform }

let pp ppf t =
  Format.fprintf ppf "%s: %d tasks, %d edges, %a" t.label (Dag.n_tasks t.dag) (Dag.n_edges t.dag)
    Platform.pp t.platform
