(** Named property oracles for the differential fuzzer.

    Each oracle is a pure predicate over one generated {!Fuzz_instance.t};
    the engine runs every registered oracle on every case.  The registry
    cross-checks the repository's independent components against each other:
    heuristics vs the validity oracle, makespans vs the lower bound, the
    exact solver vs the heuristics (both directions: optimality {e and}
    feasibility), optimised vs reference code paths, serialisation
    round-trips, and the parallel runtime's jobs-invariance contract. *)

type verdict =
  | Pass
  | Fail of string list  (** one message per violated property *)
  | Skip of string  (** oracle not applicable (e.g. instance too large) *)

type config = {
  eps : float;  (** tolerance handed to {!Validator.validate} and to makespan comparisons *)
  exact_node_limit : int;  (** branch-and-bound budget of the exact cross-checks *)
  exact_task_limit : int;  (** largest instance the exact oracles run on *)
  jobs_task_limit : int;  (** largest instance the jobs-invariance oracle runs on *)
}

val default_config : config
(** [eps = 1e-6], exact solver on instances of at most 7 tasks with a
    60k-node budget, jobs-invariance on at most 14 tasks. *)

type t = {
  name : string;
  doc : string;
  check : config -> Fuzz_instance.t -> verdict;
}

val all : t list
(** The full registry: [validator], [lower-bound], [reference-agreement],
    [exact-dominates], [exact-agreement], [infeasibility], [serialization],
    [wire-roundtrip], [jobs-invariance], [sim-parity], [lint].

    [exact-agreement] cross-checks three independent routes to the optimum
    on tiny instances: the commit/undo branch-and-bound ({!Exact.solve}),
    the per-node-copy reference search ({!Exact.solve_reference}), and — on
    instances of at most 3 tasks with finite memory caps — the paper's ILP
    through the built-in MIP.  Instances within [eps] of the feasibility
    boundary are tolerated in the infeasible-vs-optimal direction (the LP
    accepts dust-level capacity violations); see the committed
    [exact-agreement-seed42-*] corpus entries.

    [wire-roundtrip] pins the daemon's binary codec (lib/serve): for every
    algorithm selector, encoding the instance as a request — and the
    dispatcher's response to it — then decoding and re-encoding must
    reproduce the bytes exactly; truncations, corrupted bytes, bad
    version/kind bytes and oversized declared lengths must come back as
    {!Wire.error} values, never as exceptions; and the cache key must be
    invariant under the request id and nothing else.

    [sim-parity] pins the flat verification pipeline to the verbatim
    pre-flattening implementations: {!Validator.validate} vs
    {!Validator.validate_reference} (verdict, every message and the message
    order — also on deterministically corrupted schedules exercising each
    error phase, and with a jobs=2 pool vs serial),
    {!Events.memory_trace} vs {!Events.memory_trace_reference} (bit-equal
    arrays) and {!Sched_stats.compute} vs {!Sched_stats.compute_reference}
    (every field).

    [lint] folds the static harness into the dynamic one: it runs
    {!Lint_engine.run} over the repository containing the current working
    directory (located by walking up to a [dune-project] +
    [lint.allowlist] pair; [Skip] when none is found, e.g. under dune's
    sandbox) and fails on any finding.  The verdict is memoised per
    process — it depends on the source tree only, so it is also trivially
    jobs-invariant. *)

val names : string list
val find : string -> t option

val heuristic_names : Heuristics.name list
(** Every heuristic the oracles exercise (the paper's four plus the
    extensions). *)
