(* Greedy instance minimiser.

   Given an instance on which an oracle fails, repeatedly try structural
   simplifications — delete a task (with its incident edges), delete an
   edge, loosen one memory cap to infinity, drop extra processors — and
   keep any candidate on which the oracle still fails.  The loop runs to a
   fixpoint (or an attempt budget), so the reported instance is 1-minimal
   with respect to the candidate moves: no single deletion preserves the
   violation.  All candidates are tried in a deterministic order, so
   shrinking is reproducible. *)

let remove_task (i : Fuzz_instance.t) victim =
  let g = i.Fuzz_instance.dag in
  let b = Dag.Builder.create () in
  let remap = Array.make (Dag.n_tasks g) (-1) in
  Array.iter
    (fun (t : Dag.task) ->
      if t.Dag.id <> victim then
        remap.(t.Dag.id) <-
          Dag.Builder.add_task b ~name:t.Dag.name ~w_blue:t.Dag.w_blue ~w_red:t.Dag.w_red ())
    (Dag.tasks g);
  Array.iter
    (fun (e : Dag.edge) ->
      if e.Dag.src <> victim && e.Dag.dst <> victim then
        Dag.Builder.add_edge b ~src:remap.(e.Dag.src) ~dst:remap.(e.Dag.dst) ~size:e.Dag.size
          ~comm:e.Dag.comm)
    (Dag.edges g);
  { i with Fuzz_instance.dag = Dag.Builder.finalize b }

let remove_edge (i : Fuzz_instance.t) victim =
  let g = i.Fuzz_instance.dag in
  let b = Dag.Builder.create () in
  Array.iter
    (fun (t : Dag.task) ->
      ignore (Dag.Builder.add_task b ~name:t.Dag.name ~w_blue:t.Dag.w_blue ~w_red:t.Dag.w_red ()))
    (Dag.tasks g);
  Array.iter
    (fun (e : Dag.edge) ->
      if e.Dag.eid <> victim then
        Dag.Builder.add_edge b ~src:e.Dag.src ~dst:e.Dag.dst ~size:e.Dag.size ~comm:e.Dag.comm)
    (Dag.edges g);
  { i with Fuzz_instance.dag = Dag.Builder.finalize b }

let with_platform (i : Fuzz_instance.t) platform = { i with Fuzz_instance.platform }

(* Candidate simplifications, strongest first.  Tasks are removed from the
   highest id down so sinks go before their ancestors (which keeps the DAG
   connected longer and converges in fewer rounds on layered graphs). *)
let candidates (i : Fuzz_instance.t) =
  let g = i.Fuzz_instance.dag and p = i.Fuzz_instance.platform in
  let tasks =
    List.init (Dag.n_tasks g) (fun k -> Dag.n_tasks g - 1 - k)
    |> List.map (fun t () -> remove_task i t)
  in
  let edges =
    List.init (Dag.n_edges g) (fun k -> Dag.n_edges g - 1 - k)
    |> List.map (fun e () -> remove_edge i e)
  in
  let cap m = Platform.capacity p m in
  let platforms =
    List.concat
      [ (if Platform.n_procs_of p Platform.Blue > 1 then
           [ (fun () ->
               with_platform i
                 (Platform.make ~p_blue:1
                    ~p_red:(Platform.n_procs_of p Platform.Red)
                    ~m_blue:(cap Platform.Blue) ~m_red:(cap Platform.Red))) ]
         else []);
        (if Platform.n_procs_of p Platform.Red > 1 then
           [ (fun () ->
               with_platform i
                 (Platform.make
                    ~p_blue:(Platform.n_procs_of p Platform.Blue)
                    ~p_red:1 ~m_blue:(cap Platform.Blue) ~m_red:(cap Platform.Red))) ]
         else []);
        (if cap Platform.Blue < infinity then
           [ (fun () ->
               with_platform i (Platform.with_bounds p ~m_blue:infinity ~m_red:(cap Platform.Red))) ]
         else []);
        (if cap Platform.Red < infinity then
           [ (fun () ->
               with_platform i (Platform.with_bounds p ~m_blue:(cap Platform.Blue) ~m_red:infinity)) ]
         else []) ]
  in
  tasks @ edges @ platforms

type result = {
  instance : Fuzz_instance.t;
  rounds : int;
  attempts : int;  (** oracle evaluations spent *)
}

let still_fails cfg (oracle : Fuzz_oracle.t) inst =
  match oracle.Fuzz_oracle.check cfg inst with Fuzz_oracle.Fail _ -> true | _ -> false

let shrink ?(max_attempts = 1500) cfg (oracle : Fuzz_oracle.t) instance =
  let attempts = ref 0 in
  let rec fixpoint rounds current =
    let rec try_candidates = function
      | [] -> None
      | make :: rest ->
        if !attempts >= max_attempts then None
        else begin
          incr attempts;
          match
            let cand = make () in
            if still_fails cfg oracle cand then Some cand else None
          with
          | Some cand -> Some cand
          | None -> try_candidates rest
          | exception _ ->
            (* A candidate that breaks an invariant of the builders or the
               schedulers is simply not a valid simplification. *)
            try_candidates rest
        end
    in
    match try_candidates (candidates current) with
    | Some smaller -> fixpoint (rounds + 1) smaller
    | None -> { instance = current; rounds; attempts = !attempts }
  in
  fixpoint 0 instance
