type oracle_stats = {
  o_name : string;
  passed : int;
  failed : int;
  skipped : int;
}

type failure = {
  case : int;
  oracle : string;
  errors : string list;
  original : Fuzz_instance.t;
  shrunk : Fuzz_shrink.result;
}

type report = {
  cases : int;
  seed : int;
  config : Fuzz_oracle.config;
  stats : oracle_stats list;
  failures : failure list;
}

let ok r = match r.failures with [] -> true | _ :: _ -> false

let run ?pool ?(config = Fuzz_oracle.default_config) ?(oracles = Fuzz_oracle.all)
    ?(shrink = true) ~cases ~seed () =
  let indices = List.init cases Fun.id in
  let eval rng case =
    let instance = Fuzz_gen.instance rng in
    let verdicts =
      List.map (fun (o : Fuzz_oracle.t) -> (o, o.Fuzz_oracle.check config instance)) oracles
    in
    (case, instance, verdicts)
  in
  let rng = Rng.create seed in
  (* One split stream per case, derived in order before dispatch: results are
     identical with no pool and for every jobs count. *)
  let results =
    match pool with
    | Some pool -> Par.map_seeded pool ~rng ~f:eval indices
    | None ->
      let rngs = List.map (fun _ -> Rng.split rng) indices in
      List.map2 eval rngs indices
  in
  let stats =
    List.map
      (fun (o : Fuzz_oracle.t) ->
        let count p =
          List.fold_left
            (fun acc (_, _, verdicts) ->
              let v = List.assq o verdicts in
              if p v then acc + 1 else acc)
            0 results
        in
        {
          o_name = o.Fuzz_oracle.name;
          passed = count (function Fuzz_oracle.Pass -> true | _ -> false);
          failed = count (function Fuzz_oracle.Fail _ -> true | _ -> false);
          skipped = count (function Fuzz_oracle.Skip _ -> true | _ -> false);
        })
      oracles
  in
  (* Shrinking is serial and in case order, so the report is deterministic
     regardless of how the cases themselves were fanned out. *)
  let failures =
    List.concat_map
      (fun (case, instance, verdicts) ->
        List.filter_map
          (fun ((o : Fuzz_oracle.t), verdict) ->
            match verdict with
            | Fuzz_oracle.Pass | Fuzz_oracle.Skip _ -> None
            | Fuzz_oracle.Fail errors ->
              let shrunk =
                if shrink then Fuzz_shrink.shrink config o instance
                else { Fuzz_shrink.instance; rounds = 0; attempts = 0 }
              in
              Some { case; oracle = o.Fuzz_oracle.name; errors; original = instance; shrunk })
          verdicts)
      results
  in
  { cases; seed; config; stats; failures }

let render r =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "check: %d cases, seed %d, eps %g\n" r.cases r.seed r.config.Fuzz_oracle.eps;
  List.iter
    (fun s -> add "  %-20s passed %5d  failed %3d  skipped %5d\n" s.o_name s.passed s.failed s.skipped)
    r.stats;
  (match r.failures with
  | [] -> add "all oracles passed\n"
  | failures ->
    add "FAILURES: %d\n" (List.length failures);
    List.iter
      (fun f ->
        add "  case %d, oracle %s, instance %s\n" f.case f.oracle f.original.Fuzz_instance.label;
        List.iter (fun e -> add "    - %s\n" e) f.errors;
        add "    shrunk %d->%d tasks, %d->%d edges (%d rounds, %d oracle calls)\n"
          (Dag.n_tasks f.original.Fuzz_instance.dag)
          (Dag.n_tasks f.shrunk.Fuzz_shrink.instance.Fuzz_instance.dag)
          (Dag.n_edges f.original.Fuzz_instance.dag)
          (Dag.n_edges f.shrunk.Fuzz_shrink.instance.Fuzz_instance.dag)
          f.shrunk.Fuzz_shrink.rounds f.shrunk.Fuzz_shrink.attempts)
      failures);
  Buffer.contents buf

let save_failures ~dir r =
  List.map
    (fun f ->
      Fuzz_corpus.save ~dir
        {
          Fuzz_corpus.oracle = f.oracle;
          seed = r.seed;
          eps = r.config.Fuzz_oracle.eps;
          instance = f.shrunk.Fuzz_shrink.instance;
          note =
            Printf.sprintf "case %d of %d, original instance %s" f.case r.cases
              f.original.Fuzz_instance.label
            :: f.errors;
        })
    r.failures
