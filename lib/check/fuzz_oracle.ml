type verdict = Pass | Fail of string list | Skip of string

type config = {
  eps : float;
  exact_node_limit : int;
  exact_task_limit : int;
  jobs_task_limit : int;
}

let default_config =
  { eps = 1e-6; exact_node_limit = 60_000; exact_task_limit = 7; jobs_task_limit = 14 }

type t = {
  name : string;
  doc : string;
  check : config -> Fuzz_instance.t -> verdict;
}

(* --------------------------------------------------------------- helpers --- *)

let heuristic_names = Heuristics.all_names @ Heuristics.extension_names

let unbounded_of p = Platform.with_bounds p ~m_blue:infinity ~m_red:infinity

(* Validation platform: memory-oblivious heuristics plan against unbounded
   memories, so their schedules are only held to the unbounded constraints. *)
let check_platform p name = if Heuristics.is_memory_aware name then p else unbounded_of p

let verdict_of_errors = function [] -> Pass | errs -> Fail (List.rev errs)

(* Bit-identical float equality, spelled with [Float.compare] so the exact
   (NaN-tolerant, tolerance-free) semantics is explicit: these are the
   determinism oracles, where an eps would *weaken* the check. *)
let float_array_equal a b =
  Array.length a = Array.length b && Array.for_all2 (fun x y -> Float.compare x y = 0) a b

let float_opt_array_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (Option.equal (fun x y -> Float.compare x y = 0)) a b

let schedules_equal (a : Schedule.t) (b : Schedule.t) =
  float_array_equal a.Schedule.starts b.Schedule.starts
  && compare a.Schedule.procs b.Schedule.procs = 0
  && float_opt_array_equal a.Schedule.comm_starts b.Schedule.comm_starts

(* ---------------------------------------------------------------- oracles --- *)

(* Every schedule a heuristic returns must pass the full SS 3 oracle. *)
let o_validator =
  let check cfg (i : Fuzz_instance.t) =
    let errs = ref [] in
    List.iter
      (fun name ->
        match Heuristics.run name i.Fuzz_instance.dag i.Fuzz_instance.platform with
        | Error _ -> ()
        | Ok s -> (
          match
            Validator.validate ~eps:cfg.eps i.Fuzz_instance.dag
              (check_platform i.Fuzz_instance.platform name)
              s
          with
          | Ok _ -> ()
          | Error messages ->
            errs :=
              Printf.sprintf "%s: invalid schedule: %s" (Heuristics.name_to_string name)
                (String.concat "; " messages)
              :: !errs))
      heuristic_names;
    verdict_of_errors !errs
  in
  { name = "validator"; doc = "every returned schedule passes the full validity oracle"; check }

(* No heuristic may beat the critical-path / work-area lower bound. *)
let o_lower_bound =
  let check cfg (i : Fuzz_instance.t) =
    let g = i.Fuzz_instance.dag and p = i.Fuzz_instance.platform in
    let lb = Lower_bound.makespan g p in
    let tol = cfg.eps *. (1. +. Float.abs lb) in
    let errs = ref [] in
    List.iter
      (fun name ->
        match Heuristics.run name g p with
        | Error _ -> ()
        | Ok s ->
          let ms = Schedule.makespan g (check_platform p name) s in
          if ms +. tol < lb then
            errs :=
              Printf.sprintf "%s: makespan %.17g beats the lower bound %.17g"
                (Heuristics.name_to_string name) ms lb
              :: !errs)
      heuristic_names;
    verdict_of_errors !errs
  in
  { name = "lower-bound"; doc = "no heuristic makespan beats the makespan lower bound"; check }

(* The optimised schedulers must be bit-identical to the verbatim
   pre-optimisation implementations kept as *_reference. *)
let o_reference =
  let check _cfg (i : Fuzz_instance.t) =
    let g = i.Fuzz_instance.dag and p = i.Fuzz_instance.platform in
    let pair name fast slow =
      match (fast, slow) with
      | Ok a, Ok b when schedules_equal a b -> None
      | Error (a : Heuristics.failure), Error b
        when a.Heuristics.reason = b.Heuristics.reason
             && a.Heuristics.n_scheduled = b.Heuristics.n_scheduled -> None
      | Ok _, Ok _ -> Some (name ^ ": optimised and reference schedules differ")
      | Error _, Error _ -> Some (name ^ ": optimised and reference failures differ")
      | Ok _, Error _ -> Some (name ^ ": optimised succeeds where the reference fails")
      | Error _, Ok _ -> Some (name ^ ": optimised fails where the reference succeeds")
    in
    let errs =
      List.filter_map Fun.id
        [ pair "memheft" (Heuristics.memheft g p) (Heuristics.memheft_reference g p);
          pair "memminmin" (Heuristics.memminmin g p) (Heuristics.memminmin_reference g p) ]
    in
    verdict_of_errors (List.rev errs)
  in
  { name = "reference-agreement";
    doc = "optimised hot path agrees bit-for-bit with the *_reference implementations";
    check }

(* On tiny instances the exact solver's proven optimum must dominate every
   heuristic, and its own schedule must validate. *)
let o_exact =
  let check cfg (i : Fuzz_instance.t) =
    let g = i.Fuzz_instance.dag and p = i.Fuzz_instance.platform in
    if Dag.n_tasks g > cfg.exact_task_limit then Skip "instance above the exact-solver size cap"
    else begin
      let r = Exact.solve ~node_limit:cfg.exact_node_limit g p in
      let errs = ref [] in
      (match r.Exact.schedule with
      | None -> ()
      | Some s -> (
        match Validator.validate ~eps:cfg.eps g p s with
        | Ok _ -> ()
        | Error messages ->
          errs :=
            Printf.sprintf "exact: invalid schedule: %s" (String.concat "; " messages) :: !errs));
      (match r.Exact.status with
      | Exact.Proven_optimal ->
        let tol = cfg.eps *. (1. +. Float.abs r.Exact.makespan) in
        let lb = Lower_bound.makespan g p in
        if r.Exact.makespan +. tol < lb then
          errs :=
            Printf.sprintf "exact: optimum %.17g beats the lower bound %.17g" r.Exact.makespan lb
            :: !errs;
        List.iter
          (fun name ->
            if Heuristics.is_memory_aware name then
              match Heuristics.run name g p with
              | Error _ -> ()
              | Ok s ->
                let ms = Schedule.makespan g p s in
                if ms +. tol < r.Exact.makespan then
                  errs :=
                    Printf.sprintf "%s: makespan %.17g beats the proven optimum %.17g"
                      (Heuristics.name_to_string name) ms r.Exact.makespan
                    :: !errs)
          heuristic_names
      | Exact.Feasible | Exact.Proven_infeasible | Exact.Unknown -> ());
      verdict_of_errors !errs
    end
  in
  { name = "exact-dominates";
    doc = "a proven optimum lower-bounds every heuristic on tiny instances";
    check }

(* Three independent routes to the same optimum must agree: the overhauled
   commit/undo branch-and-bound ([Exact.solve]), the per-node-copy reference
   search kept verbatim from before the overhaul ([Exact.solve_reference]),
   and — on the tiniest instances with finite memory caps — the paper's ILP
   through the built-in MIP.  Budget-capped verdicts constrain nothing, but
   a proven optimum on one route must never contradict a proven optimum or a
   proven infeasibility on another. *)
let o_exact_agreement =
  let check cfg (i : Fuzz_instance.t) =
    let g = i.Fuzz_instance.dag and p = i.Fuzz_instance.platform in
    if Dag.n_tasks g > cfg.exact_task_limit then Skip "instance above the exact-solver size cap"
    else begin
      let errs = ref [] in
      let r_undo = Exact.solve ~node_limit:cfg.exact_node_limit g p in
      let r_ref = Exact.solve_reference ~node_limit:cfg.exact_node_limit g p in
      (match (r_undo.Exact.status, r_ref.Exact.status) with
      | Exact.Proven_optimal, Exact.Proven_optimal ->
        let tol = cfg.eps *. (1. +. Float.abs r_ref.Exact.makespan) in
        if Float.abs (r_undo.Exact.makespan -. r_ref.Exact.makespan) > tol then
          errs :=
            Printf.sprintf "undo %.17g vs reference %.17g proven optima differ"
              r_undo.Exact.makespan r_ref.Exact.makespan
            :: !errs
      | Exact.Proven_infeasible, (Exact.Proven_optimal | Exact.Feasible)
      | (Exact.Proven_optimal | Exact.Feasible), Exact.Proven_infeasible ->
        errs := "undo and reference searches disagree on feasibility" :: !errs
      | _ -> ());
      (* ILP leg: tiny models only (the MIP is exponential), and the paper's
         ILP needs finite caps.  Seeding with the exact optimum (plus a hair)
         makes a wrong-low exact makespan surface as MIP infeasibility and a
         wrong-high one as a cheaper MIP optimum. *)
      let finite_caps =
        Float.is_finite (Platform.capacity p Platform.Blue)
        && Float.is_finite (Platform.capacity p Platform.Red)
      in
      if Dag.n_tasks g <= 3 && Platform.n_procs p <= 3 && finite_caps then begin
        let model = Ilp_model.build g p in
        let seed =
          match r_undo.Exact.status with
          | Exact.Proven_optimal -> Some (r_undo.Exact.makespan +. 1e-3)
          | _ -> None
        in
        let sol = Mip.solve ~node_limit:300 ?incumbent:seed (Ilp_model.lp model) in
        let mip_tol = 1e-5 *. (1. +. Float.abs r_undo.Exact.makespan) in
        match (r_undo.Exact.status, sol.Mip.status, sol.Mip.incumbent) with
        | Exact.Proven_optimal, Mip.Optimal, Some (_, obj) ->
          if Float.abs (obj -. r_undo.Exact.makespan) > mip_tol then
            errs :=
              Printf.sprintf "MIP optimum %.17g vs exact optimum %.17g differ" obj
                r_undo.Exact.makespan
              :: !errs
        | Exact.Proven_optimal, Mip.Infeasible, _ ->
          errs := "MIP proves infeasible below the exact optimum" :: !errs
        | Exact.Proven_infeasible, Mip.Optimal, Some (x, obj) -> (
          (* The LP tolerates dust-level capacity violations, so an instance
             sitting within [eps] of the feasibility boundary (the
             just-below-peak fuzz regime) can legitimately flip between the
             two solvers.  Only a MIP schedule that fits with a clear margin
             contradicts the exact infeasibility proof. *)
          let s = Ilp_model.extract_schedule model x in
          match Validator.validate ~eps:cfg.eps g p s with
          | Error _ -> ()
          | Ok v ->
            let margin m peak = peak <= Platform.capacity p m -. cfg.eps in
            if margin Platform.Blue v.Validator.peak_blue
               && margin Platform.Red v.Validator.peak_red then
              errs :=
                Printf.sprintf
                  "MIP optimum %.17g (schedule fits with margin) on an exact-proven-infeasible \
                   instance"
                  obj
                :: !errs)
        | _ -> ()
      end;
      verdict_of_errors !errs
    end
  in
  { name = "exact-agreement";
    doc = "commit/undo search, per-node-copy reference and the ILP agree on tiny instances";
    check }

(* Cross-examine reported infeasibility: a heuristic refusal is legitimate
   (the heuristics are incomplete), but a proven-infeasible instance must be
   refused by every memory-aware heuristic, and an instance that is provably
   infeasible by the single-task memory argument must defeat the exact
   search too. *)
let o_infeasibility =
  let check cfg (i : Fuzz_instance.t) =
    let g = i.Fuzz_instance.dag and p = i.Fuzz_instance.platform in
    if Dag.n_tasks g > cfg.exact_task_limit then Skip "instance above the exact-solver size cap"
    else begin
      let errs = ref [] in
      (* The schedulers and the validator are eps-tolerant (usage may exceed
         a cap by up to [eps]), so the strict certificate
         [Lower_bound.provably_infeasible] only contradicts them when the
         cap is below the single-task minimum by more than [eps] — an
         instance sitting inside the tolerance band is legitimately
         schedulable.  Found by the fuzzer itself (corpus entry
         infeasibility-seed42-7e7cd8ee). *)
      let cap = Float.max (Platform.capacity p Platform.Blue) (Platform.capacity p Platform.Red) in
      let provably = cap +. cfg.eps < Lower_bound.min_memory g in
      let r = Exact.solve ~node_limit:cfg.exact_node_limit g p in
      if provably && Option.is_some r.Exact.schedule then
        errs := "exact: found a schedule on a provably infeasible instance" :: !errs;
      if provably || r.Exact.status = Exact.Proven_infeasible then
        List.iter
          (fun name ->
            if Heuristics.is_memory_aware name then
              match Heuristics.run name g p with
              | Error _ -> ()
              | Ok _ ->
                errs :=
                  Printf.sprintf "%s: schedules an instance proven infeasible"
                    (Heuristics.name_to_string name)
                  :: !errs)
          heuristic_names;
      verdict_of_errors !errs
    end
  in
  { name = "infeasibility";
    doc = "reported infeasibility is cross-examined against exact feasibility";
    check }

(* The DAG and instance text formats must round-trip exactly. *)
let o_serialization =
  let check _cfg (i : Fuzz_instance.t) =
    let errs = ref [] in
    let g = i.Fuzz_instance.dag in
    (try
       let g' = Dag.of_string (Dag.to_string g) in
       (* lint: allow poly-compare -- round-trip oracle wants bit-identical structure *)
       if compare (Dag.tasks g) (Dag.tasks g') <> 0 then errs := "dag round-trip: tasks differ" :: !errs;
       (* lint: allow poly-compare -- round-trip oracle wants bit-identical structure *)
       if compare (Dag.edges g) (Dag.edges g') <> 0 then errs := "dag round-trip: edges differ" :: !errs
     with Invalid_argument m -> errs := ("dag round-trip: " ^ m) :: !errs);
    (try
       let i' = Fuzz_instance.of_string (Fuzz_instance.to_string i) in
       if Fuzz_instance.to_string i <> Fuzz_instance.to_string i' then
         errs := "instance round-trip: text differs" :: !errs
     with Invalid_argument m -> errs := ("instance round-trip: " ^ m) :: !errs);
    verdict_of_errors !errs
  in
  { name = "serialization"; doc = "DAG and instance text formats round-trip exactly"; check }

(* The daemon's binary codec (lib/serve): encode→decode→encode must be a
   byte-level fixpoint on every message this instance can produce, decoding
   must be total (an error value, never an exception, never a hang) on
   truncated and corrupted bytes, and the cache key must quotient out
   exactly the request id — nothing more, nothing less. *)
let o_wire =
  let algo_label = function
    | Wire.Heuristic h -> Heuristics.name_to_string h
    | Wire.Multistart -> "multistart"
    | Wire.Exact -> "exact"
  in
  let flip s pos =
    let b = Bytes.of_string s in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
    Bytes.unsafe_to_string b
  in
  let check cfg (i : Fuzz_instance.t) =
    let g = i.Fuzz_instance.dag and p = i.Fuzz_instance.platform in
    let errs = ref [] in
    let fail fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
    let fixpoint what payload =
      match Wire.decode_message payload with
      | Error e -> fail "%s: decode failed: %s" what (Wire.error_to_string e)
      | Ok m -> if Wire.encode_message m <> payload then fail "%s: encode∘decode is not the identity" what
      | exception e -> fail "%s: decoder raised %s" what (Printexc.to_string e)
    in
    let total what payload =
      match Wire.decode_message payload with
      | Ok _ | Error _ -> ()
      | exception e -> fail "%s: decoder raised %s" what (Printexc.to_string e)
    in
    let algos = List.map (fun h -> Wire.Heuristic h) heuristic_names @ [ Wire.Multistart; Wire.Exact ] in
    let request algo =
      { Wire.id = 9000L; algo; seed = 77L; restarts = 2;
        node_limit = cfg.exact_node_limit; platform = p; dag = g }
    in
    List.iter
      (fun algo ->
        let req = request algo in
        let payload = Wire.encode_message (Wire.Request req) in
        fixpoint (Printf.sprintf "request/%s" (algo_label algo)) payload;
        (* The id — and only the id — is quotiented out of the cache key. *)
        let other_id = Wire.encode_message (Wire.Request { req with Wire.id = 4242L }) in
        if Wire.cache_key payload <> Wire.cache_key other_id then
          fail "request/%s: cache key depends on the request id" (algo_label algo);
        let other_seed = Wire.encode_message (Wire.Request { req with Wire.seed = 78L }) in
        if Wire.cache_key payload = Wire.cache_key other_seed then
          fail "request/%s: cache key ignores the seed" (algo_label algo);
        (* Response leg: run the daemon's dispatcher and round-trip its
           answer.  Exact only on instances under the size cap. *)
        let run_response =
          match algo with Wire.Exact -> Dag.n_tasks g <= cfg.exact_task_limit | _ -> true
        in
        if run_response then begin
          let body = Serve_dispatch.compute req in
          let full = Wire.encode_message (Wire.Response { Wire.rid = req.Wire.id; body }) in
          fixpoint (Printf.sprintf "response/%s" (algo_label algo)) full;
          (* The cache stores id-free bodies; reassembly must agree with
             the one-shot encoder for any id. *)
          if Wire.response_payload ~rid:req.Wire.id (Wire.encode_body body) <> full then
            fail "response/%s: response_payload disagrees with encode_message" (algo_label algo)
        end)
      algos;
    (* Totality on malformed bytes, derived deterministically from a real
       request payload. *)
    let payload = Wire.encode_message (Wire.Request (request (Wire.Heuristic Heuristics.MemHEFT))) in
    let len = String.length payload in
    for cut = 0 to min 6 (len - 1) do
      total (Printf.sprintf "truncated-at-%d" cut) (String.sub payload 0 cut)
    done;
    total "truncated-at-end" (String.sub payload 0 (len - 1));
    total "trailing-byte" (payload ^ "\x00");
    (match Wire.decode_message (flip payload 0) with
    | Error (Wire.Bad_version _) -> ()
    | Ok _ | Error _ -> fail "bad version byte not rejected as Bad_version"
    | exception e -> fail "bad-version: decoder raised %s" (Printexc.to_string e));
    (match Wire.decode_message (flip payload 1) with
    | Error (Wire.Bad_kind _) -> ()
    | Ok _ | Error _ -> fail "bad kind byte not rejected as Bad_kind"
    | exception e -> fail "bad-kind: decoder raised %s" (Printexc.to_string e));
    let step = max 1 (len / 32) in
    let pos = ref 2 in
    while !pos < len do
      total (Printf.sprintf "flip-at-%d" !pos) (flip payload !pos);
      pos := !pos + step
    done;
    (* Framing: a declared length above the bound is rejected before any
       allocation; a stream cut mid-frame is Truncated. *)
    let huge = Bytes.create 8 in
    Bytes.set_int32_be huge 0 (Int32.of_int (Wire.max_frame + 1));
    (match Wire.next_frame (Bytes.unsafe_to_string huge) ~pos:0 with
    | Error (Wire.Oversized _) -> ()
    | Ok _ | Error _ -> fail "oversized declared length not rejected as Oversized"
    | exception e -> fail "oversized: next_frame raised %s" (Printexc.to_string e));
    let framed = Wire.frame payload in
    (match Wire.decode_stream (String.sub framed 0 (String.length framed - 1)) with
    | Error Wire.Truncated -> ()
    | Ok _ | Error _ -> fail "stream cut mid-frame not rejected as Truncated"
    | exception e -> fail "mid-frame cut: decode_stream raised %s" (Printexc.to_string e));
    (match Wire.decode_stream (framed ^ framed) with
    | Ok [ Wire.Request _; Wire.Request _ ] -> ()
    | Ok _ | Error _ -> fail "two consecutive frames do not decode to two requests"
    | exception e -> fail "two frames: decode_stream raised %s" (Printexc.to_string e));
    verdict_of_errors !errs
  in
  { name = "wire-roundtrip";
    doc = "the daemon's binary codec is a byte-level fixpoint and total on malformed input";
    check }

(* The campaign combinators must be bit-identical for every jobs count. *)
let o_jobs_invariance =
  let check cfg (i : Fuzz_instance.t) =
    let g = i.Fuzz_instance.dag and p = i.Fuzz_instance.platform in
    if Dag.n_tasks g > cfg.jobs_task_limit then Skip "instance above the jobs-check size cap"
    else begin
      let errs = ref [] in
      let with_jobs jobs f = Par.with_pool ~jobs f in
      (* Multistart over the pool. *)
      let m1 = with_jobs 1 (fun pool -> Multistart.memheft ~pool ~restarts:3 g p) in
      let m2 = with_jobs 2 (fun pool -> Multistart.memheft ~pool ~restarts:3 g p) in
      let same =
        m1.Multistart.n_feasible = m2.Multistart.n_feasible
        && m1.Multistart.n_runs = m2.Multistart.n_runs
        && List.equal
             (fun a b -> Float.compare a b = 0)
             m1.Multistart.makespans m2.Multistart.makespans
        &&
        match (m1.Multistart.best, m2.Multistart.best) with
        | Ok a, Ok b -> schedules_equal a b
        | Error a, Error b -> a.Heuristics.reason = b.Heuristics.reason
        | _ -> false
      in
      if not same then errs := "multistart: results differ between jobs=1 and jobs=2" :: !errs;
      (* A miniature campaign sweep, aggregated to CSV rows. *)
      let sweep jobs =
        with_jobs jobs (fun pool ->
            let b = Sweep.baseline p g in
            let aggs =
              Sweep.normalized_sweep ~pool p ~alphas:[ 0.5; 1.0 ] Heuristics.MemHEFT [ b ]
            in
            List.map
              (fun (a : Sweep.aggregate) ->
                Csv.row_to_string
                  [ Csv.float_cell a.Sweep.alpha;
                    Printf.sprintf "%.17g" a.Sweep.success_rate;
                    Printf.sprintf "%.17g" a.Sweep.mean_ratio ])
              aggs)
      in
      if compare (sweep 1) (sweep 2) <> 0 then
        errs := "sweep: campaign CSV rows differ between jobs=1 and jobs=2" :: !errs;
      verdict_of_errors !errs
    end
  in
  { name = "jobs-invariance";
    doc = "multistart and campaign CSV rows are bit-identical across jobs counts";
    check }

(* The static harness as a dynamic oracle: `check --oracle lint` (and every
   full-registry campaign) asserts the repository itself stays lint-clean,
   keeping the static and differential checks in one CLI.  The verdict is a
   pure function of the source tree, not of the fuzz instance, so it is
   computed once and memoised — through an Atomic, since oracles run on pool
   domains (the exact domain-safety discipline the rule enforces). *)
let lint_repo_root () =
  let is_root dir =
    Sys.file_exists (Filename.concat dir "dune-project")
    && Sys.file_exists (Filename.concat dir "lint.allowlist")
  in
  let rec up dir depth =
    if depth > 8 then None
    else if is_root dir then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (depth + 1)
  in
  up (Sys.getcwd ()) 0

let lint_verdict : verdict option Atomic.t = Atomic.make None

let o_lint =
  let compute () =
    match lint_repo_root () with
    | None -> Skip "repo root (dune-project + lint.allowlist) not reachable from cwd"
    | Some root -> (
      match Lint_engine.run ~root () with
      | Error msg -> Fail [ msg ]
      | Ok [] -> Pass
      | Ok findings -> Fail (List.map Lint_finding.to_text findings))
  in
  let check _cfg (_ : Fuzz_instance.t) =
    match Atomic.get lint_verdict with
    | Some v -> v
    | None ->
      let v = compute () in
      (* A racing domain computed the same pure verdict; either wins. *)
      ignore (Atomic.compare_and_set lint_verdict None (Some v));
      v
  in
  { name = "lint"; doc = "the source tree stays clean under the lib/lint static-analysis rules"; check }

(* ---------------------------------------------------- scenario oracles --- *)

let online_algos = [ Online.Heft_like; Online.Minmin_like ]

let online_arrivals seed =
  [ Arrival.Batch; Arrival.Layered { gap = 1.5 }; Arrival.Jittered { gap = 1.5; seed } ]

(* Replaying a plan under zero noise must reproduce it bit-for-bit: the
   perturbation is the identity at level 0 by construction, so any
   difference means the replay engine's estimates or lifts disagree with the
   planner's own — exactly the drift this oracle exists to catch. *)
let o_noise0_fixpoint =
  let check _cfg (i : Fuzz_instance.t) =
    let g = i.Fuzz_instance.dag and p = i.Fuzz_instance.platform in
    let realized = Noise.perturb (Noise.spec ~seed:1 ~level:0. ()) g in
    let errs = ref [] in
    List.iter
      (fun algo ->
        List.iter
          (fun arrival ->
            let tag =
              Printf.sprintf "%s/%s" (Online.algo_label algo) (Arrival.label arrival)
            in
            match Online.plan ~algo ~arrival g p with
            | Error _ -> ()  (* infeasible under the caps: nothing to replay *)
            | Ok plan -> (
              match Replay.run ~policy:Replay.No_repair plan realized p with
              | Error f ->
                errs := Printf.sprintf "%s: zero-noise replay diverged: %s" tag f.Heuristics.reason :: !errs
              | Ok o ->
                if not (schedules_equal plan.Online.p_schedule o.Replay.o_schedule) then
                  errs := Printf.sprintf "%s: zero-noise replay differs from the plan" tag :: !errs;
                if o.Replay.o_repaired <> 0 then
                  errs := Printf.sprintf "%s: zero-noise replay repaired %d tasks" tag o.Replay.o_repaired :: !errs))
          (online_arrivals 11))
      online_algos;
    verdict_of_errors !errs
  in
  { name = "noise0-fixpoint";
    doc = "a zero-noise replay reproduces the committed plan bit-for-bit";
    check }

(* An online planner sees less than the offline one and commits irrevocably,
   so it can never beat the offline makespan lower bound; its planned
   schedules must also pass the full validity oracle. *)
let o_online_dominance =
  let check cfg (i : Fuzz_instance.t) =
    let g = i.Fuzz_instance.dag and p = i.Fuzz_instance.platform in
    let lb = Lower_bound.makespan g p in
    let tol = cfg.eps *. (1. +. Float.abs lb) in
    let errs = ref [] in
    List.iter
      (fun algo ->
        List.iter
          (fun arrival ->
            let tag =
              Printf.sprintf "%s/%s" (Online.algo_label algo) (Arrival.label arrival)
            in
            match Online.plan ~algo ~arrival g p with
            | Error _ -> ()
            | Ok plan ->
              if plan.Online.p_makespan +. tol < lb then
                errs :=
                  Printf.sprintf "%s: online makespan %.17g beats the offline lower bound %.17g"
                    tag plan.Online.p_makespan lb
                  :: !errs;
              (match Validator.validate ~eps:cfg.eps g p plan.Online.p_schedule with
              | Ok _ -> ()
              | Error messages ->
                errs :=
                  Printf.sprintf "%s: invalid planned schedule: %s" tag
                    (String.concat "; " messages)
                  :: !errs))
          (online_arrivals 23))
      online_algos;
    verdict_of_errors !errs
  in
  { name = "online-dominance";
    doc = "online planners never beat the offline lower bound and their plans validate";
    check }

(* The plan → perturb → replay pipeline must be bit-identical for every
   jobs count: the degradation campaigns fan out over (seed, policy) grids
   and their CSV rows are the published artefact. *)
let o_replay_determinism =
  let check cfg (i : Fuzz_instance.t) =
    let g = i.Fuzz_instance.dag and p = i.Fuzz_instance.platform in
    if Dag.n_tasks g > cfg.jobs_task_limit then Skip "instance above the jobs-check size cap"
    else begin
      let sc =
        {
          Scenario.default_config with
          Scenario.arrival = Arrival.Jittered { gap = 1.; seed = 7 };
          noise_level = 0.3;
          noise_seeds = [ 0; 1; 2 ];
        }
      in
      let instances = [ (i.Fuzz_instance.label, g) ] in
      let digest rows =
        String.concat "\n" (List.map (fun r -> Csv.row_to_string (Scenario.csv_row sc r)) rows)
      in
      let serial = digest (fst (Scenario.run sc instances p)) in
      let errs = ref [] in
      List.iter
        (fun jobs ->
          let rows, _ = Par.with_pool ~jobs (fun pool -> Scenario.run ~pool sc instances p) in
          if digest rows <> serial then
            errs := Printf.sprintf "degradation rows differ between serial and jobs=%d" jobs :: !errs)
        [ 1; 2; 8 ];
      verdict_of_errors !errs
    end
  in
  { name = "replay-determinism";
    doc = "degradation campaign rows are bit-identical across jobs counts";
    check }

(* The flat verification pipeline must be bit-identical to the verbatim
   pre-flattening implementations kept as *_reference: validator reports
   (verdict, every message, message order — also on deterministically
   corrupted schedules that exercise each error phase), the memory-trace
   arrays, every stats field, and the parallel validator vs the serial one. *)
let o_sim_parity =
  let report_equal a b =
    match (a, b) with
    | Ok (ra : Validator.report), Ok (rb : Validator.report) ->
      Float.compare ra.Validator.makespan rb.Validator.makespan = 0
      && Float.compare ra.Validator.peak_blue rb.Validator.peak_blue = 0
      && Float.compare ra.Validator.peak_red rb.Validator.peak_red = 0
    | Error ea, Error eb -> List.equal String.equal ea eb
    | _ -> false
  in
  let per_proc_equal (a : Sched_stats.per_proc) (b : Sched_stats.per_proc) =
    a.Sched_stats.proc = b.Sched_stats.proc
    && a.Sched_stats.memory = b.Sched_stats.memory
    && a.Sched_stats.n_tasks = b.Sched_stats.n_tasks
    && Float.compare a.Sched_stats.busy b.Sched_stats.busy = 0
    && Float.compare a.Sched_stats.idle b.Sched_stats.idle = 0
  in
  let stats_equal (a : Sched_stats.t) (b : Sched_stats.t) =
    Float.compare a.Sched_stats.makespan b.Sched_stats.makespan = 0
    && Float.compare a.Sched_stats.total_work b.Sched_stats.total_work = 0
    && List.equal per_proc_equal a.Sched_stats.per_proc b.Sched_stats.per_proc
    && Float.compare a.Sched_stats.mean_utilisation b.Sched_stats.mean_utilisation = 0
    && a.Sched_stats.n_transfers = b.Sched_stats.n_transfers
    && Float.compare a.Sched_stats.transfer_volume b.Sched_stats.transfer_volume = 0
    && Float.compare a.Sched_stats.transfer_time b.Sched_stats.transfer_time = 0
    && Float.compare a.Sched_stats.peak_blue b.Sched_stats.peak_blue = 0
    && Float.compare a.Sched_stats.peak_red b.Sched_stats.peak_red = 0
    && Float.compare a.Sched_stats.avg_blue b.Sched_stats.avg_blue = 0
    && Float.compare a.Sched_stats.avg_red b.Sched_stats.avg_red = 0
    && a.Sched_stats.tasks_on_blue = b.Sched_stats.tasks_on_blue
    && a.Sched_stats.tasks_on_red = b.Sched_stats.tasks_on_red
  in
  let check cfg (i : Fuzz_instance.t) =
    let g = i.Fuzz_instance.dag and p = i.Fuzz_instance.platform in
    let errs = ref [] in
    let err fmt = Printf.ksprintf (fun m -> errs := m :: !errs) fmt in
    let copy (s : Schedule.t) =
      {
        Schedule.starts = Array.copy s.Schedule.starts;
        procs = Array.copy s.Schedule.procs;
        comm_starts = Array.copy s.Schedule.comm_starts;
      }
    in
    let check_schedule tag s =
      if
        not
          (report_equal
             (Validator.validate ~eps:cfg.eps g p s)
             (Validator.validate_reference ~eps:cfg.eps g p s))
      then err "%s: flat and reference validator reports differ" tag
    in
    List.iter
      (fun name ->
        match Heuristics.run name g p with
        | Error _ -> ()
        | Ok s ->
          let tag = Heuristics.name_to_string name in
          (* Intact schedule: reports, trace and stats.  Memory-oblivious
             heuristics validated against the bounded platform on purpose —
             their memory errors exercise the report-order parity. *)
          check_schedule tag s;
          let ta = Events.memory_trace g p s and tb = Events.memory_trace_reference g p s in
          if
            not
              (float_array_equal ta.Events.times tb.Events.times
              && float_array_equal ta.Events.blue tb.Events.blue
              && float_array_equal ta.Events.red tb.Events.red)
          then err "%s: flat and reference memory traces differ" tag;
          if not (stats_equal (Sched_stats.compute g p s) (Sched_stats.compute_reference g p s))
          then err "%s: flat and reference stats differ" tag;
          (* Deterministic corruptions, one per error phase. *)
          if Dag.n_tasks g > 0 then begin
            List.iter
              (fun (ctag, mutate) ->
                let s' = copy s in
                mutate s';
                check_schedule (tag ^ "/" ^ ctag) s')
              [ ("neg-start", fun s' -> s'.Schedule.starts.(0) <- -1.);
                ("bad-proc", fun s' -> s'.Schedule.procs.(0) <- Platform.n_procs p);
                ( "collapse",
                  fun s' ->
                    Array.fill s'.Schedule.starts 0 (Array.length s'.Schedule.starts) 0.;
                    Array.fill s'.Schedule.procs 0 (Array.length s'.Schedule.procs) 0;
                    Array.fill s'.Schedule.comm_starts 0 (Array.length s'.Schedule.comm_starts) None
                ) ];
            if Dag.n_edges g > 0 then begin
              let s' = copy s in
              (s'.Schedule.comm_starts.(0) <-
                (match s'.Schedule.comm_starts.(0) with Some _ -> None | None -> Some 0.));
              check_schedule (tag ^ "/flip-transfer") s'
            end
          end;
          (* The parallel validator agrees with the serial one. *)
          if Dag.n_tasks g <= cfg.jobs_task_limit then begin
            let serial = Validator.validate ~eps:cfg.eps g p s in
            let pooled =
              Par.with_pool ~jobs:2 (fun pool -> Validator.validate ~eps:cfg.eps ~pool g p s)
            in
            if not (report_equal serial pooled) then
              err "%s: validator report differs between serial and jobs=2" tag
          end)
      heuristic_names;
    verdict_of_errors !errs
  in
  { name = "sim-parity";
    doc = "flat validator/trace/stats agree bit-for-bit with the *_reference pipeline";
    check }

let all =
  [ o_validator; o_lower_bound; o_reference; o_exact; o_exact_agreement; o_infeasibility;
    o_serialization; o_wire; o_jobs_invariance; o_sim_parity; o_noise0_fixpoint;
    o_online_dominance; o_replay_determinism; o_lint ]

let names = List.map (fun o -> o.name) all
let find name = List.find_opt (fun o -> o.name = name) all
