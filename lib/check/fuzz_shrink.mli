(** Greedy minimiser for failing fuzz instances.

    Simplification moves: delete a task (with its incident edges), delete an
    edge, drop a side's extra processors, loosen a memory cap to infinity.
    The loop keeps any candidate on which the oracle still fails and runs to
    a fixpoint, so the result is 1-minimal w.r.t. the moves.  Deterministic:
    candidates are tried in a fixed order. *)

type result = {
  instance : Fuzz_instance.t;  (** smallest failing instance found *)
  rounds : int;  (** accepted simplification steps *)
  attempts : int;  (** oracle evaluations spent *)
}

val shrink :
  ?max_attempts:int -> Fuzz_oracle.config -> Fuzz_oracle.t -> Fuzz_instance.t -> result
(** [shrink cfg oracle inst] assumes [oracle] currently fails on [inst]
    (otherwise it returns [inst] unchanged).  [max_attempts] (default 1500)
    bounds the total number of oracle evaluations. *)

(** {2 Individual moves (exposed for tests)} *)

val remove_task : Fuzz_instance.t -> int -> Fuzz_instance.t
(** Delete a task and its incident edges; remaining ids are re-densified in
    order. *)

val remove_edge : Fuzz_instance.t -> int -> Fuzz_instance.t
