(** Seeded instance generation for the differential fuzzer.

    All randomness flows through the supplied {!Rng.t}, so a campaign is
    reproducible from one integer seed and independent of the worker count
    (the engine hands each case its own split stream).  The space covered is
    the cross product of DAG shape (the paper's layered-random/LU/Cholesky
    families plus adversarial chains, forks, broadcast trees, disconnected
    unions and independent task bags), cost regime (zero-bandwidth,
    zero-file, slow-link, strong heterogeneity, zero-work tasks) and
    platform regime (processor counts 1-3 per memory; caps from unbounded
    through an alpha grid of the measured HEFT peak down to just-below-peak,
    exactly the single-task minimum, provably below it, asymmetric, and
    zero). *)

val instance : Rng.t -> Fuzz_instance.t
(** Draw one case; the label records the shape, cost and platform regime. *)

val families : string list
(** Names of the DAG shape families (documentation / reporting). *)

(** {2 Exposed for tests} *)

val map_costs :
  task:(Dag.task -> float * float) -> edge:(Dag.edge -> float * float) -> Dag.t -> Dag.t
(** Rebuild a DAG with transformed per-task times and per-edge (size, comm). *)

val union : Dag.t -> Dag.t -> Dag.t
(** Disjoint union (disconnected components), tasks of the first graph
    first. *)
