(** One differential-fuzzing case: a DAG together with the platform it is
    scheduled on, plus a human-readable label recording which generator
    family and platform regime produced it.

    The text serialisation (two header lines followed by the {!Dag} text
    format) is the on-disk shape of corpus entries, so shrunk failures can
    be replayed byte-for-byte by the regression suite. *)

type t = {
  label : string;  (** generator family + platform regime, e.g. ["chain/alpha=0.4"] *)
  dag : Dag.t;
  platform : Platform.t;
}

val make : label:string -> Dag.t -> Platform.t -> t

val to_string : t -> string
(** ["instance <label>\nplatform <p_blue> <p_red> <m_blue> <m_red>\n<dag text>"].
    Whitespace in the label is replaced by underscores; infinite capacities
    print as ["inf"]. *)

val of_string : string -> t
(** @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit
