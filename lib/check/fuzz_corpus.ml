type entry = {
  oracle : string;
  seed : int;
  eps : float;
  instance : Fuzz_instance.t;
  note : string list;
}

let magic = "memsched-corpus v1"

let to_string e =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (magic ^ "\n");
  List.iter
    (fun line ->
      let line = String.map (fun c -> if c = '\n' then ' ' else c) line in
      Buffer.add_string buf ("# " ^ line ^ "\n"))
    e.note;
  Buffer.add_string buf (Printf.sprintf "oracle %s\n" e.oracle);
  Buffer.add_string buf (Printf.sprintf "seed %d\n" e.seed);
  Buffer.add_string buf (Printf.sprintf "eps %.17g\n" e.eps);
  Buffer.add_string buf (Fuzz_instance.to_string e.instance);
  Buffer.contents buf

let of_string s =
  let fail fmt = Printf.ksprintf invalid_arg ("Fuzz_corpus.of_string: " ^^ fmt) in
  let lines = String.split_on_char '\n' s in
  match lines with
  | first :: rest when first = magic ->
    let note = ref [] and oracle = ref None and seed = ref None and eps = ref None in
    let rec header = function
      | [] -> fail "missing instance section"
      | line :: tl -> (
        if String.length line >= 1 && line.[0] = '#' then begin
          let body = String.sub line 1 (String.length line - 1) in
          note := String.trim body :: !note;
          header tl
        end
        else
          match String.split_on_char ' ' line with
          | [ "oracle"; name ] ->
            oracle := Some name;
            header tl
          | [ "seed"; n ] ->
            seed := Some (int_of_string n);
            header tl
          | [ "eps"; x ] ->
            eps := Some (float_of_string x);
            header tl
          | "instance" :: _ -> Fuzz_instance.of_string (String.concat "\n" (line :: tl))
          | _ -> fail "unexpected header line %S" line)
    in
    let instance = header rest in
    let get what = function Some v -> v | None -> fail "missing %s header" what in
    {
      oracle = get "oracle" !oracle;
      seed = get "seed" !seed;
      eps = get "eps" !eps;
      instance;
      note = List.rev !note;
    }
  | _ -> fail "missing %S magic line" magic

let filename e =
  let digest = Digest.to_hex (Digest.string (Fuzz_instance.to_string e.instance)) in
  Printf.sprintf "%s-seed%d-%s.txt" e.oracle e.seed (String.sub digest 0 8)

let save ~dir e =
  Csv.ensure_dir dir;
  let path = Filename.concat dir (filename e) in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string e));
  path

let load path =
  let ic = open_in path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string s

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".txt")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           (path, load path))

let replay ?(config = Fuzz_oracle.default_config) e =
  match Fuzz_oracle.find e.oracle with
  | None -> Fuzz_oracle.Fail [ Printf.sprintf "unknown oracle %S" e.oracle ]
  | Some oracle -> oracle.Fuzz_oracle.check config e.instance
