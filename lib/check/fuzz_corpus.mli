(** Replayable failure corpus.

    Every shrunk failing instance is serialised together with the campaign
    seed, the tolerance in force, and the violated oracle's name, under a
    content-addressed filename.  The files under [test/corpus/] are replayed
    by the test suite as permanent regressions: a corpus entry is expected
    to {e pass} its recorded oracle under the default configuration once the
    underlying bug is fixed, and stays in the tree to keep it fixed. *)

type entry = {
  oracle : string;  (** name of the violated {!Fuzz_oracle.t} *)
  seed : int;  (** campaign seed that produced the instance *)
  eps : float;  (** tolerance in force when the failure was observed *)
  instance : Fuzz_instance.t;  (** the shrunk failing instance *)
  note : string list;  (** failure messages at capture time (comment lines) *)
}

val to_string : entry -> string
val of_string : string -> entry
(** @raise Invalid_argument on malformed input. *)

val filename : entry -> string
(** ["<oracle>-seed<seed>-<digest8>.txt"] — content-addressed and therefore
    deterministic and collision-free across campaigns. *)

val save : dir:string -> entry -> string
(** Write the entry under [dir] (created if needed); returns the path. *)

val load : string -> entry

val load_dir : string -> (string * entry) list
(** All [*.txt] entries of a directory in sorted order; [] if the directory
    does not exist. *)

val replay : ?config:Fuzz_oracle.config -> entry -> Fuzz_oracle.verdict
(** Re-run the recorded oracle on the recorded instance, by default under
    {!Fuzz_oracle.default_config} (the regression contract), not under the
    recorded [eps]. *)
