(* Seeded instance generation for the differential fuzzer.

   Every draw flows through the [Rng.t] handed in by the engine (one split
   stream per case, derived before dispatch), so the whole campaign is
   deterministic and independent of the worker count.  The generator covers
   the cross product of

     shape    x  cost regime  x  platform regime

   where shape spans the paper's families (layered random, LU, Cholesky)
   plus the adversarial ones the fixed fixtures never hit (chains, forks,
   broadcast trees, disconnected unions, independent tasks), cost regimes
   include zero-bandwidth and zero-file degenerations, and platform regimes
   sweep the memory caps from unbounded down to just-below-peak and
   provably-infeasible. *)

(* ------------------------------------------------------------- rebuild --- *)

(* Rebuild a DAG with transformed costs (used by the cost regimes). *)
let map_costs ~task:ftask ~edge:fedge g =
  let b = Dag.Builder.create () in
  Array.iter
    (fun (t : Dag.task) ->
      let w_blue, w_red = ftask t in
      ignore (Dag.Builder.add_task b ~name:t.Dag.name ~w_blue ~w_red ()))
    (Dag.tasks g);
  Array.iter
    (fun (e : Dag.edge) ->
      let size, comm = fedge e in
      Dag.Builder.add_edge b ~src:e.Dag.src ~dst:e.Dag.dst ~size ~comm)
    (Dag.edges g);
  Dag.Builder.finalize b

(* Disjoint union of two DAGs (disconnected components). *)
let union g1 g2 =
  let b = Dag.Builder.create () in
  let add g prefix =
    let base = ref (-1) in
    Array.iter
      (fun (t : Dag.task) ->
        let id =
          Dag.Builder.add_task b ~name:(prefix ^ t.Dag.name) ~w_blue:t.Dag.w_blue
            ~w_red:t.Dag.w_red ()
        in
        if !base < 0 then base := id)
      (Dag.tasks g);
    let base = !base in
    Array.iter
      (fun (e : Dag.edge) ->
        Dag.Builder.add_edge b ~src:(base + e.Dag.src) ~dst:(base + e.Dag.dst) ~size:e.Dag.size
          ~comm:e.Dag.comm)
      (Dag.edges g)
  in
  add g1 "a.";
  add g2 "b.";
  Dag.Builder.finalize b

(* A star: one producer broadcasting an identical file to [d] consumers,
   then linearised into the paper's relay pipeline. *)
let broadcast_tree rng =
  let d = Rng.int_incl rng 3 6 in
  let w () = float_of_int (Rng.int_incl rng 1 9) in
  let size = float_of_int (Rng.int_incl rng 1 6) in
  let comm = float_of_int (Rng.int_incl rng 1 4) in
  let b = Dag.Builder.create () in
  let src = Dag.Builder.add_task b ~name:"src" ~w_blue:(w ()) ~w_red:(w ()) () in
  for k = 1 to d do
    let c =
      Dag.Builder.add_task b ~name:(Printf.sprintf "c%d" k) ~w_blue:(w ()) ~w_red:(w ()) ()
    in
    Dag.Builder.add_edge b ~src ~dst:c ~size ~comm
  done;
  Broadcast.linearize (Dag.Builder.finalize b)

(* --------------------------------------------------------------- shapes --- *)

let daggen rng ~label ~size ~width ~density =
  let params =
    { Daggen.small_rand_params with Daggen.size; Daggen.width; Daggen.density }
  in
  (label, Daggen.generate rng params)

let shape rng =
  match Rng.int rng 11 with
  | 0 -> daggen rng ~label:"daggen" ~size:(Rng.int_incl rng 6 24) ~width:0.3 ~density:0.5
  | 1 -> daggen rng ~label:"daggen-chainy" ~size:(Rng.int_incl rng 5 16) ~width:0.12 ~density:0.7
  | 2 -> daggen rng ~label:"daggen-wide" ~size:(Rng.int_incl rng 6 20) ~width:0.9 ~density:0.9
  | 3 ->
    let n = Rng.int_incl rng 2 9 in
    let f k = float_of_int (Rng.int_incl rng 1 k) in
    ("chain", Toy.chain ~n ~w:(f 9) ~f:(f 6) ~c:(f 4))
  | 4 ->
    let width = Rng.int_incl rng 2 7 in
    let f k = float_of_int (Rng.int_incl rng 1 k) in
    ("fork-join", Toy.fork_join ~width ~w:(f 9) ~f:(f 6) ~c:(f 4))
  | 5 -> ("diamond", Toy.diamond ())
  | 6 ->
    let n = Rng.int_incl rng 2 7 in
    let f k = float_of_int (Rng.int_incl rng 1 k) in
    ("independent", Toy.independent ~n ~w_blue:(f 9) ~w_red:(f 9))
  | 7 -> ("broadcast", broadcast_tree rng)
  | 8 ->
    let _, g1 = daggen rng ~label:"" ~size:(Rng.int_incl rng 3 8) ~width:0.3 ~density:0.5 in
    let _, g2 = daggen rng ~label:"" ~size:(Rng.int_incl rng 3 8) ~width:0.6 ~density:0.5 in
    ("disconnected", union g1 g2)
  | 9 -> ("lu", Lu.generate ~n:(Rng.int_incl rng 2 3) ())
  | _ -> ("cholesky", Cholesky.generate ~n:(Rng.int_incl rng 2 4) ())

(* --------------------------------------------------------- cost regimes --- *)

let cost_regime rng (label, g) =
  match Rng.int rng 9 with
  | 0 ->
    (* Zero bandwidth cost: transfers are free, cut edges everywhere. *)
    (label ^ "/zero-comm", map_costs g ~task:(fun t -> (t.Dag.w_blue, t.Dag.w_red)) ~edge:(fun e -> (e.Dag.size, 0.)))
  | 1 ->
    (* Zero file sizes: memory is never constrained, transfers still cost. *)
    (label ^ "/zero-size", map_costs g ~task:(fun t -> (t.Dag.w_blue, t.Dag.w_red)) ~edge:(fun e -> (0., e.Dag.comm)))
  | 2 ->
    (* Huge transfer times: cross-memory placement is catastrophic. *)
    (label ^ "/slow-link", map_costs g ~task:(fun t -> (t.Dag.w_blue, t.Dag.w_red)) ~edge:(fun e -> (e.Dag.size, 50. *. (1. +. e.Dag.comm))))
  | 3 ->
    (* Strong heterogeneity: blue and red costs differ by 10x either way. *)
    ( label ^ "/hetero",
      map_costs g
        ~task:(fun t ->
          if Rng.bool rng then (10. *. t.Dag.w_blue, t.Dag.w_red) else (t.Dag.w_blue, 10. *. t.Dag.w_red))
        ~edge:(fun e -> (e.Dag.size, e.Dag.comm)) )
  | 4 ->
    (* Zero-work tasks mixed in (broadcast relays do this for real). *)
    ( label ^ "/zero-work",
      map_costs g
        ~task:(fun t -> if Rng.int rng 4 = 0 then (0., 0.) else (t.Dag.w_blue, t.Dag.w_red))
        ~edge:(fun e -> (e.Dag.size, e.Dag.comm)) )
  | 5 ->
    (* Non-representable fractional costs: every time is a multiple of 1/7,
       so start/finish arithmetic rounds and summation order matters.  This
       is the regime that separates eps-tolerant comparisons from exact
       ones (integer costs make all schedule arithmetic exact). *)
    ( label ^ "/frac",
      map_costs g
        ~task:(fun t -> (t.Dag.w_blue /. 7., t.Dag.w_red /. 7.))
        ~edge:(fun e -> (e.Dag.size /. 7., e.Dag.comm /. 7.)) )
  | _ -> (label, g)

(* ----------------------------------------------------- platform regimes --- *)

let platform_regime rng g =
  let p_blue = Rng.int_incl rng 1 3 in
  let p_red = Rng.int_incl rng 1 3 in
  let procs = Platform.unbounded ~p_blue ~p_red in
  let peak () =
    let _, (pb, pr) = Heuristics.heft_measured g procs in
    Float.max pb pr
  in
  let bounded tag m = (tag, Platform.with_bounds procs ~m_blue:m ~m_red:m) in
  let tag, platform =
    match Rng.int rng 8 with
    | 0 -> ("unbounded", procs)
    | 1 -> bounded "generous" (Float.max 1. (Dag.total_file_size g))
    | 2 ->
      let alphas = [| 0.3; 0.5; 0.7; 0.85; 1.0; 1.1 |] in
      let a = alphas.(Rng.int rng (Array.length alphas)) in
      bounded (Printf.sprintf "alpha=%g" a) (a *. peak ())
    | 3 -> bounded "just-below-peak" (peak () *. (1. -. 1e-9))
    | 4 -> bounded "below-min" (0.99 *. Lower_bound.min_memory g)
    | 5 -> bounded "at-min" (Lower_bound.min_memory g)
    | 6 ->
      ( "asym",
        Platform.with_bounds procs ~m_blue:(0.6 *. peak ())
          ~m_red:(Float.max 1. (Dag.total_file_size g)) )
    | _ -> bounded "zero" 0.
  in
  (Printf.sprintf "%s/p%dx%d" tag p_blue p_red, platform)

(* ---------------------------------------------------------------- entry --- *)

let instance rng =
  let shape_label, g = cost_regime rng (shape rng) in
  let plat_label, platform = platform_regime rng g in
  Fuzz_instance.make ~label:(shape_label ^ "/" ^ plat_label) g platform

let families =
  [ "daggen"; "daggen-chainy"; "daggen-wide"; "chain"; "fork-join"; "diamond"; "independent";
    "broadcast"; "disconnected"; "lu"; "cholesky" ]
