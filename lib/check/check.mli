(** Differential-fuzzing engine.

    [run] draws [cases] instances from {!Fuzz_gen} (one {!Rng.split} stream
    per case, derived in submission order), evaluates every oracle of the
    registry on each, shrinks any failure with {!Fuzz_shrink}, and returns a
    deterministic report.  With [?pool] the cases are evaluated in parallel;
    because the per-case streams are split off before dispatch and the
    aggregation is serial in case order, the report is bit-identical for
    every jobs count (and with no pool at all). *)

type oracle_stats = {
  o_name : string;
  passed : int;
  failed : int;
  skipped : int;
}

type failure = {
  case : int;  (** case index within the campaign *)
  oracle : string;
  errors : string list;
  original : Fuzz_instance.t;
  shrunk : Fuzz_shrink.result;
}

type report = {
  cases : int;
  seed : int;
  config : Fuzz_oracle.config;
  stats : oracle_stats list;  (** one per oracle, in registry order *)
  failures : failure list;  (** in case order *)
}

val run :
  ?pool:Par.t ->
  ?config:Fuzz_oracle.config ->
  ?oracles:Fuzz_oracle.t list ->
  ?shrink:bool ->
  cases:int ->
  seed:int ->
  unit ->
  report
(** Defaults: all oracles, {!Fuzz_oracle.default_config}, shrinking on. *)

val ok : report -> bool
(** [true] iff no oracle failed on any case. *)

val render : report -> string
(** Deterministic human-readable summary (no timings, no paths): the bytes
    are identical across runs and jobs counts. *)

val save_failures : dir:string -> report -> string list
(** Serialise every shrunk failure as a {!Fuzz_corpus} entry under [dir];
    returns the paths written. *)
