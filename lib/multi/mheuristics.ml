type failure = { reason : string; n_scheduled : int }
type result = (Mschedule.t, failure) Result.t

let eps = 1e-9

let upward_ranks problem =
  Paths.bottom_levels problem.Mproblem.graph
    ~node_weight:(Mproblem.mean_duration problem)
    ~edge_weight:(fun e -> e.Dag.comm /. 2.)

let priority_list ?rng problem =
  let g = problem.Mproblem.graph in
  let ranks = upward_ranks problem in
  let n = Dag.n_tasks g in
  let jitter =
    match rng with
    | Some rng -> Array.init n (fun _ -> Rng.float rng 1.)
    | None -> Array.make n 0.
  in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      let c = Float.compare ranks.(b) ranks.(a) in
      if c <> 0 then c
      else begin
        let c = Float.compare jitter.(a) jitter.(b) in
        if c <> 0 then c else compare a b
      end)
    order;
  order

type state = {
  problem : Mproblem.t;
  platform : Mplatform.t;
  free : Staircase.t array;  (** per pool *)
  avail : float array;  (** per processor *)
  aft : float array;
  assigned : bool array;
  pool_of : int array;  (** -1 when unassigned *)
  pending : int array;
  sched : Mschedule.t;
  mutable n_assigned : int;
}

let create problem platform =
  let g = problem.Mproblem.graph in
  let n = Dag.n_tasks g in
  let pending = Array.make n 0 in
  Array.iter (fun (e : Dag.edge) -> pending.(e.Dag.dst) <- pending.(e.Dag.dst) + 1) (Dag.edges g);
  {
    problem;
    platform;
    free =
      Array.init (Mplatform.n_pools platform) (fun k ->
          Staircase.create (Mplatform.capacity platform k));
    avail = Array.make (Mplatform.n_procs platform) 0.;
    aft = Array.make n 0.;
    assigned = Array.make n false;
    pool_of = Array.make n (-1);
    pending;
    sched = Mschedule.create g;
    n_assigned = 0;
  }

let is_ready st i = (not st.assigned.(i)) && st.pending.(i) = 0

type estimate = { task : int; pool : int; est : float; eft : float }

let cross_edges st i pool =
  List.filter
    (fun (e : Dag.edge) -> st.pool_of.(e.Dag.src) >= 0 && st.pool_of.(e.Dag.src) <> pool)
    (Dag.pred st.problem.Mproblem.graph i)

let estimate st i pool =
  if not (is_ready st i) then None
  else begin
    let g = st.problem.Mproblem.graph in
    let free = st.free.(pool) in
    let cross = cross_edges st i pool in
    let cross_in = List.fold_left (fun acc (e : Dag.edge) -> acc +. e.Dag.size) 0. cross in
    let task_level = cross_in +. Dag.out_size g i in
    match Staircase.earliest_suffix_ge free ~level:task_level ~from:0. with
    | None -> None
    | Some t_task ->
      (* Per-edge just-in-time windows, sorted by decreasing transfer time. *)
      let sorted =
        List.sort (fun (a : Dag.edge) (b : Dag.edge) -> Float.compare b.Dag.comm a.Dag.comm) cross
      in
      let rec prefixes acc lb = function
        | [] -> Some lb
        | (e : Dag.edge) :: rest -> (
          let acc = acc +. e.Dag.size in
          match Staircase.earliest_suffix_ge free ~level:acc ~from:0. with
          | None -> None
          | Some t -> prefixes acc (Float.max lb (Fp.lb_plus t e.Dag.comm)) rest)
      in
      (match prefixes 0. 0. sorted with
      | None -> None
      | Some comm_lb ->
        let precedence =
          List.fold_left
            (fun acc (e : Dag.edge) ->
              let j = e.Dag.src in
              let arrival =
                if st.pool_of.(j) = pool then st.aft.(j) else st.aft.(j) +. e.Dag.comm
              in
              Float.max acc arrival)
            0. (Dag.pred g i)
        in
        let resource =
          List.fold_left (fun acc p -> Float.min acc st.avail.(p)) infinity (Mplatform.procs_of st.platform pool)
        in
        let est = Float.max (Float.max t_task comm_lb) (Float.max precedence resource) in
        Some { task = i; pool; est; eft = est +. Mproblem.duration st.problem i pool })
  end

let best_estimate st i =
  let better a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some ea, Some eb ->
      if eb.eft +. eps < ea.eft then b
      else if ea.eft +. eps < eb.eft then a
      else if eb.est +. eps < ea.est then b
      else a
  in
  let best = ref None in
  for pool = 0 to Mplatform.n_pools st.platform - 1 do
    best := better !best (estimate st i pool)
  done;
  !best

let commit st e =
  let g = st.problem.Mproblem.graph in
  let i = e.task and pool = e.pool in
  if st.assigned.(i) then invalid_arg "Mheuristics.commit: task already assigned";
  let start = e.est and eft = e.eft in
  (* Min-idle processor selection. *)
  let proc =
    let best = ref None in
    List.iter
      (fun p ->
        if st.avail.(p) <= start +. eps then begin
          match !best with
          | Some q when st.avail.(q) >= st.avail.(p) -> ()
          | _ -> best := Some p
        end)
      (Mplatform.procs_of st.platform pool);
    match !best with
    | Some p -> p
    | None -> invalid_arg "Mheuristics.commit: stale estimate"
  in
  st.avail.(proc) <- Float.max st.avail.(proc) eft;
  st.sched.Mschedule.starts.(i) <- start;
  st.sched.Mschedule.procs.(i) <- proc;
  let free = st.free.(pool) in
  List.iter
    (fun (edge : Dag.edge) ->
      let j = edge.Dag.src in
      if st.pool_of.(j) <> pool then begin
        let tau = start -. edge.Dag.comm in
        st.sched.Mschedule.comm_starts.(edge.Dag.eid) <- Some tau;
        Staircase.add_from free tau (-.edge.Dag.size);
        Staircase.add_from st.free.(st.pool_of.(j)) (tau +. edge.Dag.comm) edge.Dag.size
      end)
    (Dag.pred g i);
  Staircase.add_from free start (-.Dag.out_size g i);
  Staircase.add_from free eft (Dag.in_size g i);
  st.aft.(i) <- eft;
  st.assigned.(i) <- true;
  st.pool_of.(i) <- pool;
  st.n_assigned <- st.n_assigned + 1;
  List.iter (fun c -> st.pending.(c) <- st.pending.(c) - 1) (Dag.children g i)

let fail st reason = Error { reason; n_scheduled = st.n_assigned }

let memheft ?rng problem platform =
  let st = create problem platform in
  let g = problem.Mproblem.graph in
  let order = priority_list ?rng problem in
  let n = Dag.n_tasks g in
  let done_ = Array.make n false in
  let remaining = ref n in
  let rec round () =
    if !remaining = 0 then Ok st.sched
    else begin
      let committed = ref false in
      let k = ref 0 in
      while (not !committed) && !k < n do
        let i = order.(!k) in
        if (not done_.(i)) && is_ready st i then begin
          match best_estimate st i with
          | Some e ->
            commit st e;
            done_.(i) <- true;
            decr remaining;
            committed := true
          | None -> ()
        end;
        incr k
      done;
      if !committed then round () else fail st "no ready task fits within the memory bounds"
    end
  in
  round ()

let memminmin problem platform =
  let st = create problem platform in
  let g = problem.Mproblem.graph in
  let n = Dag.n_tasks g in
  let rec round () =
    if st.n_assigned = n then Ok st.sched
    else begin
      let best = ref None in
      for i = 0 to n - 1 do
        if is_ready st i then begin
          match best_estimate st i with
          | Some e -> (
            match !best with
            | Some b when b.eft <= e.eft -> ()
            | _ -> best := Some e)
          | None -> ()
        end
      done;
      match !best with
      | Some e ->
        commit st e;
        round ()
      | None -> fail st "no ready task fits within the memory bounds"
    end
  in
  round ()

let heft ?rng problem platform =
  let unbounded =
    Mplatform.with_capacities platform (List.init (Mplatform.n_pools platform) (fun _ -> infinity))
  in
  match memheft ?rng problem unbounded with
  | Ok s -> s
  | Error _ -> assert false
