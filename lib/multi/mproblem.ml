type t = {
  graph : Dag.t;
  durations : float array array;
}

let make graph ~durations =
  let n = Dag.n_tasks graph in
  if Array.length durations <> n then invalid_arg "Mproblem.make: one duration row per task";
  if n > 0 then begin
    let k = Array.length durations.(0) in
    if k = 0 then invalid_arg "Mproblem.make: at least one pool";
    Array.iter
      (fun row ->
        if Array.length row <> k then invalid_arg "Mproblem.make: ragged duration matrix";
        Array.iter (fun w -> if w < 0. then invalid_arg "Mproblem.make: negative duration") row)
      durations
  end;
  { graph; durations }

let of_dual graph =
  let durations =
    Array.map (fun (t : Dag.task) -> [| t.Dag.w_blue; t.Dag.w_red |]) (Dag.tasks graph)
  in
  make graph ~durations

let n_pools t = if Array.length t.durations = 0 then 1 else Array.length t.durations.(0)
let duration t task pool = t.durations.(task).(pool)
let w_min t task = Array.fold_left Float.min infinity t.durations.(task)

let mean_duration t task =
  let row = t.durations.(task) in
  Array.fold_left ( +. ) 0. row /. float_of_int (Array.length row)
