type t = {
  starts : float array;
  procs : int array;
  comm_starts : float option array;
}

let create g =
  {
    starts = Array.make (Dag.n_tasks g) 0.;
    procs = Array.make (Dag.n_tasks g) 0;
    comm_starts = Array.make (Dag.n_edges g) None;
  }

let pool_of platform s i = Mplatform.pool_of_proc platform s.procs.(i)
let duration problem platform s i = Mproblem.duration problem i (pool_of platform s i)
let finish problem platform s i = s.starts.(i) +. duration problem platform s i

let makespan problem platform s =
  let m = ref 0. in
  for i = 0 to Array.length s.starts - 1 do
    m := Float.max !m (finish problem platform s i)
  done;
  !m

let is_cut platform s (e : Dag.edge) = pool_of platform s e.Dag.src <> pool_of platform s e.Dag.dst

type report = {
  makespan : float;
  peaks : float array;
}

(* Event sweep per pool; frees before allocations at equal instants, as in
   the dual-memory Events module. *)
let usage_trace problem platform s =
  let g = problem.Mproblem.graph in
  let k = Mplatform.n_pools platform in
  let events = ref [] in
  let push time kind pool delta = if not (Float.equal delta 0.) then events := (time, kind, pool, delta) :: !events in
  for i = 0 to Dag.n_tasks g - 1 do
    let pool = pool_of platform s i in
    push s.starts.(i) 1 pool (Dag.out_size g i);
    push (finish problem platform s i) 0 pool (-.Dag.in_size g i)
  done;
  Array.iter
    (fun (e : Dag.edge) ->
      if is_cut platform s e then begin
        match s.comm_starts.(e.Dag.eid) with
        | Some tau ->
          push tau 1 (pool_of platform s e.Dag.dst) e.Dag.size;
          push (tau +. e.Dag.comm) 0 (pool_of platform s e.Dag.src) (-.e.Dag.size)
        | None -> invalid_arg "Mschedule: cut edge without transfer"
      end)
    (Dag.edges g);
  let events =
    List.sort
      (fun (t1, a1, b1, d1) (t2, a2, b2, d2) ->
        let c = Float.compare t1 t2 in
        if c <> 0 then c
        else
          let c = Int.compare a1 a2 in
          if c <> 0 then c
          else
            let c = Int.compare b1 b2 in
            if c <> 0 then c else Float.compare d1 d2)
      !events
  in
  let usage = Array.make k 0. in
  let peaks = Array.make k 0. in
  let min_usage = Array.make k 0. in
  List.iter
    (fun (_, _, pool, delta) ->
      usage.(pool) <- usage.(pool) +. delta;
      if usage.(pool) > peaks.(pool) then peaks.(pool) <- usage.(pool);
      if usage.(pool) < min_usage.(pool) then min_usage.(pool) <- usage.(pool))
    events;
  (peaks, min_usage, usage)

let validate ?(eps = 1e-6) problem platform s =
  let g = problem.Mproblem.graph in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let name i = (Dag.task g i).Dag.name in
  for i = 0 to Dag.n_tasks g - 1 do
    if s.procs.(i) < 0 || s.procs.(i) >= Mplatform.n_procs platform then
      err "task %s: processor %d out of range" (name i) s.procs.(i);
    if s.starts.(i) < -.eps then err "task %s: negative start" (name i)
  done;
  if !errors <> [] then Error (List.rev !errors)
  else begin
    Array.iter
      (fun (e : Dag.edge) ->
        let cut = is_cut platform s e in
        match (cut, s.comm_starts.(e.Dag.eid)) with
        | true, None -> err "edge %s->%s: cut edge without a transfer" (name e.Dag.src) (name e.Dag.dst)
        | false, Some _ ->
          err "edge %s->%s: same-pool edge with a transfer" (name e.Dag.src) (name e.Dag.dst)
        | true, Some tau ->
          if finish problem platform s e.Dag.src > tau +. eps then
            err "edge %s->%s: transfer before producer finishes" (name e.Dag.src) (name e.Dag.dst);
          if tau +. e.Dag.comm > s.starts.(e.Dag.dst) +. eps then
            err "edge %s->%s: transfer ends after consumer starts" (name e.Dag.src) (name e.Dag.dst)
        | false, None ->
          if finish problem platform s e.Dag.src > s.starts.(e.Dag.dst) +. eps then
            err "edge %s->%s: consumer before producer" (name e.Dag.src) (name e.Dag.dst))
      (Dag.edges g);
    (* Resource exclusivity per processor. *)
    for p = 0 to Mplatform.n_procs platform - 1 do
      let tasks = ref [] in
      for i = Dag.n_tasks g - 1 downto 0 do
        if s.procs.(i) = p then tasks := i :: !tasks
      done;
      let sorted =
        List.sort
          (fun a b ->
            let c = Float.compare s.starts.(a) s.starts.(b) in
            if c <> 0 then c
            else Float.compare (finish problem platform s a) (finish problem platform s b))
          !tasks
      in
      let rec check = function
        | a :: (b :: _ as rest) ->
          if finish problem platform s a > s.starts.(b) +. eps then
            err "processor %d: tasks %s and %s overlap" p (name a) (name b);
          check rest
        | _ -> ()
      in
      check sorted
    done;
    if !errors <> [] then Error (List.rev !errors)
    else begin
      let peaks, min_usage, _final = usage_trace problem platform s in
      Array.iteri
        (fun k peak ->
          if peak > Mplatform.capacity platform k +. eps then
            err "pool %d: usage %g exceeds capacity %g" k peak (Mplatform.capacity platform k);
          if min_usage.(k) < -.eps then err "pool %d: negative usage (bad file lifetimes)" k)
        peaks;
      match List.rev !errors with
      | [] -> Ok { makespan = makespan problem platform s; peaks }
      | errs -> Error errs
    end
  end

let validate_exn ?eps problem platform s =
  match validate ?eps problem platform s with
  | Ok r -> r
  | Error errs -> failwith (String.concat "\n" errs)
