type pool = {
  procs : int;
  capacity : float;
}

type t = { pools : pool array }

let make pools =
  (match pools with
  | [] -> invalid_arg "Mplatform.make: at least one pool required"
  | _ :: _ -> ());
  List.iter
    (fun p ->
      if p.procs <= 0 then invalid_arg "Mplatform.make: processor counts must be positive";
      if p.capacity < 0. then invalid_arg "Mplatform.make: negative capacity")
    pools;
  { pools = Array.of_list pools }

let of_dual platform =
  make
    [ { procs = Platform.n_procs_of platform Platform.Blue;
        capacity = Platform.capacity platform Platform.Blue };
      { procs = Platform.n_procs_of platform Platform.Red;
        capacity = Platform.capacity platform Platform.Red } ]

let n_pools t = Array.length t.pools
let pool t k = t.pools.(k)
let n_procs t = Array.fold_left (fun acc p -> acc + p.procs) 0 t.pools
let capacity t k = t.pools.(k).capacity

let with_capacities t caps =
  if List.length caps <> n_pools t then invalid_arg "Mplatform.with_capacities: arity mismatch";
  make (List.map2 (fun p c -> { p with capacity = c }) (Array.to_list t.pools) caps)

let pool_of_proc t proc =
  if proc < 0 then invalid_arg "Mplatform.pool_of_proc: out of range";
  let rec find k base =
    if k >= n_pools t then invalid_arg "Mplatform.pool_of_proc: out of range"
    else if proc < base + t.pools.(k).procs then k
    else find (k + 1) (base + t.pools.(k).procs)
  in
  find 0 0

let procs_of t k =
  let base = ref 0 in
  for j = 0 to k - 1 do
    base := !base + t.pools.(j).procs
  done;
  List.init t.pools.(k).procs (fun i -> !base + i)

let pp ppf t =
  Format.fprintf ppf "mplatform{";
  Array.iteri
    (fun k p ->
      if k > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "pool%d: %d procs, M=%g" k p.procs p.capacity)
    t.pools;
  Format.fprintf ppf "}"
