type t = {
  lp : Lp.t;
  g : Dag.t;
  platform : Platform.t;
  mmax : float;
  v_m : int;
  v_t : int array;  (* per task *)
  v_tau : int array;  (* per edge *)
  v_p : int array;
  v_b : int array;
  v_w : int array;
  v_eps : int array array;  (* [i][j], i<>j; diagonal = -1 *)
  v_delta : int array array;  (* [i][j], all pairs *)
  v_sigma : int array array;  (* [i][j], all pairs *)
  v_m2 : int array array;  (* m_ij, all pairs *)
  v_msig' : int array array;  (* sigma'_kij: [k][edge] *)
  v_m' : int array array;  (* m'_kij: [k][edge] *)
  v_c : int array array;  (* c_ijk: [edge][k] *)
  v_d : int array array;  (* d_ijk: [edge][k] *)
  v_c' : int array array;  (* c'_ijkp: [edge ij][edge kp] *)
  v_d' : int array array;  (* d'_ijkp *)
}

let lp t = t.lp
let makespan_var t = t.v_m
let n_vars t = Lp.n_vars t.lp
let n_constrs t = Lp.n_constrs t.lp
let mmax t = t.mmax

(* Transitive ancestor relation: reach.(i).(j) = true when i is a strict
   ancestor of j. *)
let ancestors g =
  let n = Dag.n_tasks g in
  let reach = Array.make_matrix n n false in
  let topo = Dag.topological_order g in
  for k = Array.length topo - 1 downto 0 do
    let i = topo.(k) in
    List.iter
      (fun c ->
        reach.(i).(c) <- true;
        for j = 0 to n - 1 do
          if reach.(c).(j) then reach.(i).(j) <- true
        done)
      (Dag.children g i)
  done;
  reach

let build ?(presolve = true) g platform =
  let mblue = Platform.capacity platform Platform.Blue in
  let mred = Platform.capacity platform Platform.Red in
  if Float.equal mblue infinity || Float.equal mred infinity then
    invalid_arg "Ilp_model.build: memory capacities must be finite";
  let n = Dag.n_tasks g in
  let m = Dag.n_edges g in
  let p1 = Platform.n_procs_of platform Platform.Blue in
  let p = Platform.n_procs platform in
  let lp = Lp.create () in
  let mmax =
    Array.fold_left (fun acc (t : Dag.task) -> acc +. t.Dag.w_blue +. t.Dag.w_red) 0. (Dag.tasks g)
    +. Array.fold_left (fun acc (e : Dag.edge) -> acc +. e.Dag.comm) 0. (Dag.edges g)
  in
  let bin name = Lp.add_var lp ~kind:Lp.Binary name in
  let cont ?(ub = infinity) name = Lp.add_var lp ~ub name in
  let v_m = cont ~ub:mmax "M" in
  let v_t = Array.init n (fun i -> cont ~ub:mmax (Printf.sprintf "t_%d" i)) in
  let v_tau = Array.init m (fun e -> cont ~ub:mmax (Printf.sprintf "tau_%d" e)) in
  let v_p =
    Array.init n (fun i ->
        Lp.add_var lp ~lb:1. ~ub:(float_of_int p) ~kind:Lp.General_integer
          (Printf.sprintf "p_%d" i))
  in
  let v_b = Array.init n (fun i -> bin (Printf.sprintf "b_%d" i)) in
  let v_w = Array.init n (fun i -> cont ~ub:mmax (Printf.sprintf "w_%d" i)) in
  let v_eps =
    Array.init n (fun i ->
        Array.init n (fun j -> if i = j then -1 else bin (Printf.sprintf "eps_%d_%d" i j)))
  in
  let v_delta =
    Array.init n (fun i -> Array.init n (fun j -> bin (Printf.sprintf "delta_%d_%d" i j)))
  in
  let v_sigma =
    Array.init n (fun i -> Array.init n (fun j -> bin (Printf.sprintf "sigma_%d_%d" i j)))
  in
  let v_m2 = Array.init n (fun i -> Array.init n (fun j -> bin (Printf.sprintf "m_%d_%d" i j))) in
  let v_msig' =
    Array.init n (fun k -> Array.init m (fun e -> bin (Printf.sprintf "sigmap_%d_e%d" k e)))
  in
  let v_m' =
    Array.init n (fun k -> Array.init m (fun e -> bin (Printf.sprintf "mp_%d_e%d" k e)))
  in
  let v_c = Array.init m (fun e -> Array.init n (fun k -> bin (Printf.sprintf "c_e%d_%d" e k))) in
  let v_d = Array.init m (fun e -> Array.init n (fun k -> bin (Printf.sprintf "d_e%d_%d" e k))) in
  let v_c' =
    Array.init m (fun e -> Array.init m (fun f -> bin (Printf.sprintf "cp_e%d_e%d" e f)))
  in
  let v_d' =
    Array.init m (fun e -> Array.init m (fun f -> bin (Printf.sprintf "dp_e%d_e%d" e f)))
  in
  let add name terms sense rhs = Lp.add_constr lp ~name terms sense rhs in
  let w1 i = (Dag.task g i).Dag.w_blue and w2 i = (Dag.task g i).Dag.w_red in
  let edges = Dag.edges g in
  (* Objective and (1). *)
  Lp.set_objective lp (Lp.Minimize [ (1., v_m) ]);
  for i = 0 to n - 1 do
    add "c1" [ (1., v_t.(i)); (1., v_w.(i)); (-1., v_m) ] Lp.Le 0.
  done;
  (* (2), (3): flow through transfers. *)
  Array.iter
    (fun (e : Dag.edge) ->
      let i = e.Dag.src and j = e.Dag.dst and k = e.Dag.eid in
      add "c2" [ (1., v_t.(i)); (1., v_w.(i)); (-1., v_tau.(k)) ] Lp.Le 0.;
      (* tau + (1 - delta_ij) C <= t_j *)
      add "c3"
        [ (1., v_tau.(k)); (-.e.Dag.comm, v_delta.(i).(j)); (-1., v_t.(j)) ]
        Lp.Le (-.e.Dag.comm))
    edges;
  (* (4): m_ij ordering of task starts; i <> j. *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        add "c4a" [ (1., v_t.(j)); (-1., v_t.(i)); (-.mmax, v_m2.(i).(j)) ] Lp.Le 0.;
        add "c4b" [ (1., v_t.(j)); (-1., v_t.(i)); (-.mmax, v_m2.(i).(j)) ] Lp.Ge (-.mmax)
      end
    done
  done;
  (* (5): m'_kij vs transfer starts. *)
  for k = 0 to n - 1 do
    Array.iter
      (fun (e : Dag.edge) ->
        let idx = e.Dag.eid in
        add "c5a" [ (1., v_tau.(idx)); (-1., v_t.(k)); (-.mmax, v_m'.(k).(idx)) ] Lp.Le 0.;
        add "c5b" [ (1., v_tau.(idx)); (-1., v_t.(k)); (-.mmax, v_m'.(k).(idx)) ] Lp.Ge (-.mmax))
      edges
  done;
  (* (6): sigma_ij — i finishes before j starts; i <> j. *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        add "c6a"
          [ (1., v_t.(j)); (-1., v_t.(i)); (-1., v_w.(i)); (-.mmax, v_sigma.(i).(j)) ]
          Lp.Le 0.;
        add "c6b"
          [ (1., v_t.(j)); (-1., v_t.(i)); (-1., v_w.(i)); (-.mmax, v_sigma.(i).(j)) ]
          Lp.Ge (-.mmax)
      end
    done
  done;
  (* (7): sigma'_kij — k finishes before transfer (i,j) starts. *)
  for k = 0 to n - 1 do
    Array.iter
      (fun (e : Dag.edge) ->
        let idx = e.Dag.eid in
        add "c7a"
          [ (1., v_tau.(idx)); (-1., v_t.(k)); (-1., v_w.(k)); (-.mmax, v_msig'.(k).(idx)) ]
          Lp.Le 0.;
        add "c7b"
          [ (1., v_tau.(idx)); (-1., v_t.(k)); (-1., v_w.(k)); (-.mmax, v_msig'.(k).(idx)) ]
          Lp.Ge (-.mmax))
      edges
  done;
  (* (8): c_ijk — transfer (i,j) starts before task k starts. *)
  Array.iter
    (fun (e : Dag.edge) ->
      let idx = e.Dag.eid in
      for k = 0 to n - 1 do
        add "c8a" [ (1., v_t.(k)); (-1., v_tau.(idx)); (-.mmax, v_c.(idx).(k)) ] Lp.Le 0.;
        add "c8b" [ (1., v_t.(k)); (-1., v_tau.(idx)); (-.mmax, v_c.(idx).(k)) ] Lp.Ge (-.mmax)
      done)
    edges;
  (* (9): c'_ijkp — transfer (i,j) starts before transfer (k,p) starts. *)
  Array.iter
    (fun (e : Dag.edge) ->
      Array.iter
        (fun (f : Dag.edge) ->
          if e.Dag.eid <> f.Dag.eid then begin
            add "c9a"
              [ (1., v_tau.(f.Dag.eid)); (-1., v_tau.(e.Dag.eid)); (-.mmax, v_c'.(e.Dag.eid).(f.Dag.eid)) ]
              Lp.Le 0.;
            add "c9b"
              [ (1., v_tau.(f.Dag.eid)); (-1., v_tau.(e.Dag.eid)); (-.mmax, v_c'.(e.Dag.eid).(f.Dag.eid)) ]
              Lp.Ge (-.mmax)
          end)
        edges)
    edges;
  (* (10): d_ijk — transfer (i,j) finishes before task k starts.  The actual
     duration is (1 - delta_ij) C_ij. *)
  Array.iter
    (fun (e : Dag.edge) ->
      let i = e.Dag.src and j = e.Dag.dst and idx = e.Dag.eid in
      for k = 0 to n - 1 do
        add "c10a"
          [ (1., v_t.(k)); (-1., v_tau.(idx)); (e.Dag.comm, v_delta.(i).(j)); (-.mmax, v_d.(idx).(k)) ]
          Lp.Le e.Dag.comm;
        add "c10b"
          [ (1., v_t.(k)); (-1., v_tau.(idx)); (e.Dag.comm, v_delta.(i).(j)); (-.mmax, v_d.(idx).(k)) ]
          Lp.Ge (e.Dag.comm -. mmax)
      done)
    edges;
  (* (11): d'_ijkp — transfer (i,j) finishes before transfer (k,p) starts. *)
  Array.iter
    (fun (e : Dag.edge) ->
      let i = e.Dag.src and j = e.Dag.dst and idx = e.Dag.eid in
      Array.iter
        (fun (f : Dag.edge) ->
          if idx <> f.Dag.eid then begin
            add "c11a"
              [ (1., v_tau.(f.Dag.eid)); (-1., v_tau.(idx)); (e.Dag.comm, v_delta.(i).(j));
                (-.mmax, v_d'.(idx).(f.Dag.eid)) ]
              Lp.Le e.Dag.comm;
            add "c11b"
              [ (1., v_tau.(f.Dag.eid)); (-1., v_tau.(idx)); (e.Dag.comm, v_delta.(i).(j));
                (-.mmax, v_d'.(idx).(f.Dag.eid)) ]
              Lp.Ge (e.Dag.comm -. mmax)
          end)
        edges)
    edges;
  (* (12): eps_ij from processor indices. *)
  let pf = float_of_int p in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        add "c12a" [ (1., v_p.(j)); (-1., v_p.(i)); (-.pf, v_eps.(i).(j)) ] Lp.Le 0.;
        add "c12b" [ (1., v_p.(j)); (-1., v_p.(i)); (-.pf, v_eps.(i).(j)) ] Lp.Ge (1. -. pf)
      end
    done
  done;
  (* (13): b_i from processor indices (b = 0 blue, b = 1 red). *)
  let p1f = float_of_int p1 in
  for i = 0 to n - 1 do
    add "c13a" [ (1., v_p.(i)); (-.pf, v_b.(i)) ] Lp.Le p1f;
    add "c13b" [ (1., v_p.(i)); (-.(pf +. 1.), v_b.(i)) ] Lp.Ge (p1f -. pf)
  done;
  (* (14), (15): completeness / antisymmetry of the start orderings,
     including the diagonal (m_ii = 1, sigma_ii = 0). *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      add "c14" [ (1., v_m2.(i).(j)); (1., v_m2.(j).(i)) ] Lp.Ge 1.;
      add "c15" [ (1., v_sigma.(i).(j)); (1., v_sigma.(j).(i)) ] Lp.Le 1.
    done
  done;
  (* (16): a transfer starting before k starts implies k not started. *)
  Array.iter
    (fun (e : Dag.edge) ->
      for k = 0 to n - 1 do
        add "c16" [ (1., v_m'.(k).(e.Dag.eid)); (1., v_c.(e.Dag.eid).(k)) ] Lp.Ge 1.
      done)
    edges;
  (* (17), (18): transfer-transfer orderings, including the diagonal
     (c'_ee = 1, d'_ee = 0). *)
  for e = 0 to m - 1 do
    for f = 0 to m - 1 do
      add "c17" [ (1., v_c'.(e).(f)); (1., v_c'.(f).(e)) ] Lp.Ge 1.;
      add "c18" [ (1., v_d'.(e).(f)); (1., v_d'.(f).(e)) ] Lp.Le 1.
    done
  done;
  (* (19)-(22): consistency chain sigma => m, c => sigma, d => c, m_j => d. *)
  for i = 0 to n - 1 do
    for k = 0 to n - 1 do
      add "c19" [ (1., v_m2.(i).(k)); (-1., v_sigma.(i).(k)) ] Lp.Ge 0.
    done
  done;
  Array.iter
    (fun (e : Dag.edge) ->
      let i = e.Dag.src and j = e.Dag.dst and idx = e.Dag.eid in
      for k = 0 to n - 1 do
        add "c20" [ (1., v_sigma.(i).(k)); (-1., v_c.(idx).(k)) ] Lp.Ge 0.;
        add "c21" [ (1., v_c.(idx).(k)); (-1., v_d.(idx).(k)) ] Lp.Ge 0.;
        add "c22" [ (1., v_d.(idx).(k)); (-1., v_m2.(j).(k)) ] Lp.Ge 0.
      done)
    edges;
  (* (23): delta_ij = [b_i = b_j]. *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      add "c23a" [ (1., v_delta.(i).(j)); (-1., v_b.(i)); (1., v_b.(j)) ] Lp.Le 1.;
      add "c23b" [ (1., v_delta.(i).(j)); (1., v_b.(i)); (-1., v_b.(j)) ] Lp.Le 1.;
      add "c23c" [ (1., v_delta.(i).(j)); (-1., v_b.(i)); (-1., v_b.(j)) ] Lp.Ge (-1.);
      add "c23d" [ (1., v_delta.(i).(j)); (1., v_b.(i)); (1., v_b.(j)) ] Lp.Ge 1.
    done
  done;
  (* (24): actual durations; b = 0 -> W1 (blue), b = 1 -> W2 (red). *)
  for i = 0 to n - 1 do
    add "c24a" [ (1., v_w.(i)); (-.(w2 i -. w1 i), v_b.(i)) ] Lp.Ge (w1 i);
    add "c24b" [ (1., v_w.(i)); (-.(w2 i -. w1 i), v_b.(i)) ] Lp.Le (w1 i)
  done;
  (* (25): overlapping tasks are on distinct processors. *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        add "c25"
          [ (1., v_sigma.(i).(j)); (1., v_sigma.(j).(i)); (1., v_eps.(i).(j)); (1., v_eps.(j).(i)) ]
          Lp.Ge 1.
    done
  done;
  (* (26) with the Figure 7 linearisation: memory bound at every task start. *)
  let v_alpha = Array.make_matrix m n (-1) and v_beta = Array.make_matrix m n (-1) in
  for e = 0 to m - 1 do
    for i = 0 to n - 1 do
      v_alpha.(e).(i) <- Lp.add_var lp ~ub:1. (Printf.sprintf "alpha_e%d_%d" e i);
      v_beta.(e).(i) <- Lp.add_var lp ~ub:1. (Printf.sprintf "beta_e%d_%d" e i)
    done
  done;
  for i = 0 to n - 1 do
    let terms = ref [ (-.(mred -. mblue), v_b.(i)) ] in
    Array.iter
      (fun (e : Dag.edge) ->
        let k = e.Dag.src and pnode = e.Dag.dst and idx = e.Dag.eid in
        terms := (e.Dag.size, v_alpha.(idx).(i)) :: (e.Dag.size, v_beta.(idx).(i)) :: !terms;
        (* alpha_kpi = delta_ik (m_ki - d_kpi) *)
        add "c26a"
          [ (1., v_alpha.(idx).(i)); (-1., v_delta.(i).(k)); (-1., v_m2.(k).(i)); (1., v_d.(idx).(i)) ]
          Lp.Ge (-1.);
        add "c26b"
          [ (2., v_alpha.(idx).(i)); (-1., v_delta.(i).(k)); (-1., v_m2.(k).(i)); (1., v_d.(idx).(i)) ]
          Lp.Le 0.;
        (* beta_kpi = delta_ip (c_kpi - sigma_pi) *)
        add "c26c"
          [ (1., v_beta.(idx).(i)); (-1., v_delta.(i).(pnode)); (-1., v_c.(idx).(i));
            (1., v_sigma.(pnode).(i)) ]
          Lp.Ge (-1.);
        add "c26d"
          [ (2., v_beta.(idx).(i)); (-1., v_delta.(i).(pnode)); (-1., v_c.(idx).(i));
            (1., v_sigma.(pnode).(i)) ]
          Lp.Le 0.)
      edges;
    add "c26" !terms Lp.Le mblue
  done;
  (* (27): memory bound at every transfer start, in the destination memory;
     deactivated (big-M) for same-memory edges. *)
  let v_alpha' = Array.make_matrix m m (-1) and v_beta' = Array.make_matrix m m (-1) in
  for e = 0 to m - 1 do
    for f = 0 to m - 1 do
      v_alpha'.(e).(f) <- Lp.add_var lp ~ub:1. (Printf.sprintf "alphap_e%d_e%d" e f);
      v_beta'.(e).(f) <- Lp.add_var lp ~ub:1. (Printf.sprintf "betap_e%d_e%d" e f)
    done
  done;
  Array.iter
    (fun (eij : Dag.edge) ->
      let i = eij.Dag.src and j = eij.Dag.dst and ij = eij.Dag.eid in
      let terms = ref [ (-.(mred -. mblue), v_b.(j)); (-.mmax, v_delta.(i).(j)) ] in
      Array.iter
        (fun (ekp : Dag.edge) ->
          let k = ekp.Dag.src and pnode = ekp.Dag.dst and kp = ekp.Dag.eid in
          terms := (ekp.Dag.size, v_alpha'.(kp).(ij)) :: (ekp.Dag.size, v_beta'.(kp).(ij)) :: !terms;
          (* alpha'_kpij = delta_kj (m'_kij - d'_kpij) *)
          add "c27a"
            [ (1., v_alpha'.(kp).(ij)); (-1., v_delta.(k).(j)); (-1., v_m'.(k).(ij));
              (1., v_d'.(kp).(ij)) ]
            Lp.Ge (-1.);
          add "c27b"
            [ (2., v_alpha'.(kp).(ij)); (-1., v_delta.(k).(j)); (-1., v_m'.(k).(ij));
              (1., v_d'.(kp).(ij)) ]
            Lp.Le 0.;
          (* beta'_kpij = delta_pj (c'_kpij - sigma'_pij) *)
          add "c27c"
            [ (1., v_beta'.(kp).(ij)); (-1., v_delta.(pnode).(j)); (-1., v_c'.(kp).(ij));
              (1., v_msig'.(pnode).(ij)) ]
            Lp.Ge (-1.);
          add "c27d"
            [ (2., v_beta'.(kp).(ij)); (-1., v_delta.(pnode).(j)); (-1., v_c'.(kp).(ij));
              (1., v_msig'.(pnode).(ij)) ]
            Lp.Le 0.)
        edges;
      add "c27" !terms Lp.Le mblue)
    edges;
  (* Presolve: orderings implied by precedence.  For an ancestor i of j,
     t_j >= t_i + w_i along every path, so "i starts before j" and "i
     finishes before j starts" always hold; "j finishes before i starts" is
     impossible as soon as i has positive duration on both resources
     (zero-weight tasks may share the ancestor's start instant). *)
  if presolve then begin
    let reach = ancestors g in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if reach.(i).(j) then begin
          Lp.fix lp v_m2.(i).(j) 1.;
          Lp.fix lp v_sigma.(i).(j) 1.;
          if Dag.w_min g i > 0. then Lp.fix lp v_sigma.(j).(i) 0.
        end
      done
    done
  end;
  {
    lp;
    g;
    platform;
    mmax;
    v_m;
    v_t;
    v_tau;
    v_p;
    v_b;
    v_w;
    v_eps;
    v_delta;
    v_sigma;
    v_m2;
    v_msig';
    v_m';
    v_c;
    v_d;
    v_c';
    v_d';
  }

let extract_schedule t x =
  let s = Schedule.create t.g in
  for i = 0 to Dag.n_tasks t.g - 1 do
    s.Schedule.starts.(i) <- x.(t.v_t.(i));
    s.Schedule.procs.(i) <- int_of_float (Float.round x.(t.v_p.(i))) - 1
  done;
  Array.iter
    (fun (e : Dag.edge) ->
      let bi = Float.round x.(t.v_b.(e.Dag.src)) and bj = Float.round x.(t.v_b.(e.Dag.dst)) in
      if Float.compare bi bj <> 0 then
        s.Schedule.comm_starts.(e.Dag.eid) <- Some x.(t.v_tau.(e.Dag.eid)))
    (Dag.edges t.g);
  s
