type status = Proven_optimal | Feasible | Proven_infeasible | Unknown

type result = {
  status : status;
  schedule : Schedule.t option;
  makespan : float;
  best_bound : float;
  nodes : int;
}

let eps = 1e-9

(* Shared by both solvers: static per-task lower bound on the remaining
   critical path (min-duration bottom level with free transfers), and the
   heuristic-seeded incumbent. *)
let bottom_levels g =
  Paths.bottom_levels g ~node_weight:(Dag.w_min g) ~edge_weight:(fun _ -> 0.)

let seed_heuristics g platform =
  let incumbent = ref infinity in
  let best_schedule = ref None in
  List.iter
    (fun h ->
      let o = Outcome.run h g platform in
      if o.Outcome.feasible && o.Outcome.makespan < !incumbent then begin
        incumbent := o.Outcome.makespan;
        best_schedule := o.Outcome.schedule
      end)
    [ Heuristics.MemHEFT; Heuristics.MemMinMin ];
  (!incumbent, !best_schedule)

let status_of best_schedule capped =
  match (best_schedule, capped) with
  | Some _, false -> Proven_optimal
  | Some _, true -> Feasible
  | None, false -> Proven_infeasible
  | None, true -> Unknown

(* Pre-overhaul copy-based search, kept verbatim as the A/B reference (the
   qtests assert the undo-based solver visits the same tree node for node, and
   the campaign/exact bench times this as the throughput baseline).  The only
   edits relative to the original are the float-discipline fixes the lint
   cannot see syntactically ([Float.compare] on the [eft] record fields,
   [Option.is_none] instead of polymorphic [= None]) — both are
   behaviour-identical for non-nan floats — and the trivially-derived
   [best_bound] field the overhaul added to [result]. *)
let solve_reference ?(node_limit = 2_000_000) ?(seed_incumbent = true) g platform =
  let n = Dag.n_tasks g in
  let bottom = bottom_levels g in
  let incumbent = ref infinity in
  let best_schedule = ref None in
  if seed_incumbent then begin
    let inc, best = seed_heuristics g platform in
    incumbent := inc;
    best_schedule := best
  end;
  let nodes = ref 0 in
  let capped = ref false in
  (* Depth-first over (ready task, memory) decisions. *)
  let rec explore state current_max =
    if !nodes >= node_limit then capped := true
    else begin
      incr nodes;
      if Sched_state.n_assigned state = n then begin
        if current_max < !incumbent -. eps then begin
          incumbent := current_max;
          best_schedule := Some (Sched_state.schedule (Sched_state.copy state))
        end
      end
      else begin
        let ready = Sched_state.ready_tasks state in
        (* Candidate decisions with their optimistic completion bound. *)
        let candidates =
          List.concat_map
            (fun i ->
              List.filter_map
                (fun mu ->
                  match Sched_state.estimate state i mu with
                  | Some e ->
                    let lb = Float.max current_max (e.Sched_state.est +. bottom.(i)) in
                    if lb >= !incumbent -. eps then None else Some (e, lb)
                  | None -> None)
                Platform.memories)
            ready
        in
        let candidates =
          List.sort
            (fun (a, _) (b, _) -> Float.compare a.Sched_state.eft b.Sched_state.eft)
            candidates
        in
        List.iter
          (fun (e, lb) ->
            if lb < !incumbent -. eps && not !capped then begin
              let child = Sched_state.copy state in
              (* Estimates are state-dependent: recompute on the copy. *)
              match Sched_state.estimate child e.Sched_state.task e.Sched_state.memory with
              | Some e' ->
                Sched_state.commit child e';
                explore child (Float.max current_max e'.Sched_state.eft)
              | None -> ()
            end)
          candidates
      end
    end
  in
  explore (Sched_state.create g platform) 0.;
  let status = status_of !best_schedule !capped in
  {
    status;
    schedule = !best_schedule;
    makespan = (if Option.is_none !best_schedule then nan else !incumbent);
    best_bound =
      (match status with
      | Proven_optimal -> !incumbent
      | Proven_infeasible -> infinity
      | Feasible | Unknown -> 0.);
    nodes = !nodes;
  }

(* How many transposition signatures a single subtree search may retain.
   Inserts are bounded by the node budget anyway; the cap only guards the
   pathological full-default-budget case (16-byte digests, ~80 bytes per
   hashtable entry). *)
let transposition_cap = 1_000_000

let solve ?pool ?(frontier = 32) ?(dominance = true) ?(node_limit = 2_000_000)
    ?(seed_incumbent = true) g platform =
  if frontier < 1 then invalid_arg "Exact.solve: frontier must be >= 1";
  let n = Dag.n_tasks g in
  let bottom = bottom_levels g in
  let seed_val, seed_sched =
    if seed_incumbent then seed_heuristics g platform else (infinity, None)
  in
  let incumbent = ref seed_val in
  let best = ref seed_sched in
  let total_nodes = ref 0 in
  let capped = ref false in
  (* Smallest known lower bound over the abandoned (budget-truncated) parts of
     the tree: together with the incumbent this yields [best_bound]. *)
  let open_lb = ref infinity in
  (* Canonical signature of the set of committed decisions: for every task,
     one presence byte plus (processor, start-time bits) when assigned.  Two
     partial schedules with the same signature have placed the same tasks at
     the same starts on the same processors (the memory is implied by the
     processor), so they expose identical resource and memory state up to
     float dust from commit-order-dependent rounding inside the staircases —
     the same eps-tolerance the whole planner already works under.  Digested
     to 16 bytes so the transposition table stays small. *)
  let signature state =
    let buf = Buffer.create (12 * n) in
    let sched = Sched_state.schedule state in
    for i = 0 to n - 1 do
      if Sched_state.is_assigned state i then begin
        Buffer.add_char buf '\001';
        Buffer.add_uint16_le buf sched.Schedule.procs.(i);
        Buffer.add_int64_le buf (Int64.bits_of_float sched.Schedule.starts.(i))
      end
      else Buffer.add_char buf '\000'
    done;
    Digest.string (Buffer.contents buf)
  in
  (* Precedence-only node lower bound: a ready task cannot start before its
     latest parent finishes (transfer times excluded — the task's memory is
     not fixed yet, and a same-memory placement pays no transfer), and then
     needs its min-duration bottom level.  Unlike the per-candidate
     [est + bottom] bound this never uses memory-dependent ESTs, which are
     not monotone under further commits (releases can free memory and move a
     task's memory-EST earlier), so it is sound as a node-level prune. *)
  let prec_bound state =
    List.fold_left
      (fun acc i ->
        let prec =
          List.fold_left
            (fun p (e : Dag.edge) -> Float.max p (Sched_state.finish_time state e.Dag.src))
            0. (Dag.pred g i)
        in
        Float.max acc (prec +. bottom.(i)))
      0.
      (Sched_state.ready_tasks state)
  in
  (* In-place depth-first search over a trailing state: commit, recurse,
     uncommit.  With [dominance = false] the control flow replicates
     [solve_reference] exactly (same candidate generation, same order, same
     budget checks), so the two visit the same tree node for node — the A/B
     qtests assert exactly that. *)
  let search state ~start_max ~budget ~incumbent0 =
    let inc = ref incumbent0 in
    let found = ref None in
    let nodes = ref 0 in
    let cap = ref false in
    let olb = ref infinity in
    let seen = if dominance then Some (Hashtbl.create 1024) else None in
    let rec explore current_max =
      if !nodes >= budget then begin
        cap := true;
        if current_max < !olb then olb := current_max
      end
      else begin
        incr nodes;
        if Sched_state.n_assigned state = n then begin
          if current_max < !inc -. eps then begin
            inc := current_max;
            found := Some (Sched_state.snapshot_schedule state)
          end
        end
        else begin
          let dominated =
            match seen with
            | None -> false
            | Some tbl ->
              (* Bound prune first (certified, no table traffic), then the
                 transposition check. *)
              Float.max current_max (prec_bound state) >= !inc -. eps
              ||
              let key = signature state in
              Hashtbl.mem tbl key
              ||
              (if Hashtbl.length tbl < transposition_cap then Hashtbl.add tbl key ();
               false)
          in
          if not dominated then begin
            let ready = Sched_state.ready_tasks state in
            let candidates =
              List.concat_map
                (fun i ->
                  (* Precedence-only prescreen: for either memory,
                     [est >= max parent AFT], so when even that cheap bound
                     cannot beat the incumbent both per-memory estimates are
                     dead on arrival — skip computing them.  The skipped
                     entries would have been dropped by the [lb] filter
                     below, so the candidate list (and hence the tree and
                     the reference parity) is unchanged. *)
                  let prec =
                    List.fold_left
                      (fun p (e : Dag.edge) -> Float.max p (Sched_state.finish_time state e.Dag.src))
                      0. (Dag.pred g i)
                  in
                  if Float.max current_max (prec +. bottom.(i)) >= !inc -. eps then []
                  else
                    List.filter_map
                      (fun mu ->
                        match Sched_state.estimate state i mu with
                        | Some e ->
                          let lb = Float.max current_max (e.Sched_state.est +. bottom.(i)) in
                          if lb >= !inc -. eps then None else Some (e, lb)
                        | None -> None)
                      Platform.memories)
                ready
            in
            let candidates =
              List.sort
                (fun (a, _) (b, _) -> Float.compare a.Sched_state.eft b.Sched_state.eft)
                candidates
            in
            List.iter
              (fun (e, lb) ->
                if lb < !inc -. eps && not !cap then begin
                  Sched_state.commit state e;
                  explore (Float.max current_max e.Sched_state.eft);
                  Sched_state.uncommit state
                end
                else if !cap && lb < !inc -. eps && lb < !olb then olb := lb)
              candidates
          end
        end
      end
    in
    explore start_max;
    (!inc, !found, !nodes, !cap, !olb)
  in
  let fresh_state () =
    let st = Sched_state.create g platform in
    Sched_state.set_trail st true;
    st
  in
  if frontier = 1 then begin
    (* No decomposition: one search over the whole tree. *)
    let inc, found, nodes, cap, olb = search (fresh_state ()) ~start_max:0. ~budget:node_limit ~incumbent0:!incumbent in
    total_nodes := nodes;
    if cap then capped := true;
    if olb < !open_lb then open_lb := olb;
    (match found with
    | Some s when inc < !incumbent -. eps ->
      incumbent := inc;
      best := Some s
    | _ -> ())
  end
  else begin
    (* Breadth-first expansion of the root into a frontier of subtree roots.
       The frontier size is a fixed constant — never a function of the pool's
       job count — so the decomposition, every subtree budget, every node
       count and hence every output byte is identical for every --jobs value;
       the pool only changes how many subtrees run at once.  Each queue entry
       is a decision prefix (reversed) plus the max EFT along it; prefixes are
       replayed onto one trailing state to expand them. *)
    let state = fresh_state () in
    let replay prefix = List.iter (fun e -> Sched_state.commit state e) (List.rev prefix) in
    let unreplay prefix = List.iter (fun _ -> Sched_state.uncommit state) prefix in
    let roots = Queue.create () in
    Queue.add ([], 0.) roots;
    let continue = ref true in
    while !continue && not (Queue.is_empty roots) && Queue.length roots < frontier do
      let prefix, pmax = Queue.take roots in
      if !total_nodes >= node_limit then begin
        capped := true;
        if pmax < !open_lb then open_lb := pmax;
        continue := false
      end
      else begin
        incr total_nodes;
        replay prefix;
        if Sched_state.n_assigned state = n then begin
          if pmax < !incumbent -. eps then begin
            incumbent := pmax;
            best := Some (Sched_state.snapshot_schedule state)
          end
        end
        else if (not dominance) || Float.max pmax (prec_bound state) < !incumbent -. eps then begin
          let candidates =
            List.concat_map
              (fun i ->
                List.filter_map
                  (fun mu ->
                    match Sched_state.estimate state i mu with
                    | Some e ->
                      let lb = Float.max pmax (e.Sched_state.est +. bottom.(i)) in
                      if lb >= !incumbent -. eps then None else Some (e, lb)
                    | None -> None)
                  Platform.memories)
              (Sched_state.ready_tasks state)
          in
          let candidates =
            List.sort (fun (a, _) (b, _) -> Float.compare a.Sched_state.eft b.Sched_state.eft) candidates
          in
          List.iter
            (fun (e, _) -> Queue.add (e :: prefix, Float.max pmax e.Sched_state.eft) roots)
            candidates
        end;
        unreplay prefix
      end
    done;
    let subtrees = List.of_seq (Queue.to_seq roots) in
    let have_subtrees = match subtrees with [] -> false | _ :: _ -> true in
    if !capped || !total_nodes >= node_limit then begin
      (* Budget exhausted during expansion: the remaining roots are abandoned
         open parts of the tree. *)
      if have_subtrees then capped := true;
      List.iter (fun (_, pmax) -> if pmax < !open_lb then open_lb := pmax) subtrees
    end
    else if have_subtrees then begin
      let budget_per = max 1 ((node_limit - !total_nodes) / List.length subtrees) in
      (* Freeze the incumbent at split time: workers never share improvements
         (cross-worker sharing would make pruning depend on completion order,
         i.e. on the job count). *)
      let split_incumbent = !incumbent in
      let solve_subtree (prefix, pmax) =
        let st = fresh_state () in
        List.iter (fun e -> Sched_state.commit st e) (List.rev prefix);
        search st ~start_max:pmax ~budget:budget_per ~incumbent0:split_incumbent
      in
      let results =
        match pool with
        | Some p -> Par.parallel_map p ~f:solve_subtree subtrees
        | None -> List.map solve_subtree subtrees
      in
      (* Merge in subtree order — deterministic and jobs-invariant. *)
      List.iter
        (fun (inc, found, nodes, cap, olb) ->
          total_nodes := !total_nodes + nodes;
          if cap then capped := true;
          if olb < !open_lb then open_lb := olb;
          match found with
          | Some s when inc < !incumbent -. eps ->
            incumbent := inc;
            best := Some s
          | _ -> ())
        results
    end
  end;
  let status = status_of !best !capped in
  let best_bound =
    match status with
    | Proven_optimal -> !incumbent
    | Proven_infeasible -> infinity
    | Feasible -> Float.min !incumbent !open_lb
    | Unknown -> if !open_lb < infinity then !open_lb else 0.
  in
  {
    status;
    schedule = !best;
    makespan = (if Option.is_none !best then nan else !incumbent);
    best_bound;
    nodes = !total_nodes;
  }

let optimal_makespan ?pool ?node_limit g platform =
  match solve ?pool ?node_limit g platform with
  | { status = Proven_optimal; makespan; _ } -> Some makespan
  | _ -> None
