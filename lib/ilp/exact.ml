type status = Proven_optimal | Feasible | Proven_infeasible | Unknown

type result = {
  status : status;
  schedule : Schedule.t option;
  makespan : float;
  nodes : int;
}

let eps = 1e-9

let solve ?(node_limit = 2_000_000) ?(seed_incumbent = true) g platform =
  let n = Dag.n_tasks g in
  (* Static per-task lower bound on the remaining critical path: min-duration
     bottom level with free transfers. *)
  let bottom = Paths.bottom_levels g ~node_weight:(Dag.w_min g) ~edge_weight:(fun _ -> 0.) in
  let incumbent = ref infinity in
  let best_schedule = ref None in
  if seed_incumbent then
    List.iter
      (fun h ->
        let o = Outcome.run h g platform in
        if o.Outcome.feasible && o.Outcome.makespan < !incumbent then begin
          incumbent := o.Outcome.makespan;
          best_schedule := o.Outcome.schedule
        end)
      [ Heuristics.MemHEFT; Heuristics.MemMinMin ];
  let nodes = ref 0 in
  let capped = ref false in
  (* Depth-first over (ready task, memory) decisions. *)
  let rec explore state current_max =
    if !nodes >= node_limit then capped := true
    else begin
      incr nodes;
      if Sched_state.n_assigned state = n then begin
        if current_max < !incumbent -. eps then begin
          incumbent := current_max;
          best_schedule := Some (Sched_state.schedule (Sched_state.copy state))
        end
      end
      else begin
        let ready = Sched_state.ready_tasks state in
        (* Candidate decisions with their optimistic completion bound. *)
        let candidates =
          List.concat_map
            (fun i ->
              List.filter_map
                (fun mu ->
                  match Sched_state.estimate state i mu with
                  | Some e ->
                    let lb = Float.max current_max (e.Sched_state.est +. bottom.(i)) in
                    if lb >= !incumbent -. eps then None else Some (e, lb)
                  | None -> None)
                Platform.memories)
            ready
        in
        let candidates =
          List.sort
            (fun (a, _) (b, _) -> compare a.Sched_state.eft b.Sched_state.eft)
            candidates
        in
        List.iter
          (fun (e, lb) ->
            if lb < !incumbent -. eps && not !capped then begin
              let child = Sched_state.copy state in
              (* Estimates are state-dependent: recompute on the copy. *)
              match Sched_state.estimate child e.Sched_state.task e.Sched_state.memory with
              | Some e' ->
                Sched_state.commit child e';
                explore child (max current_max e'.Sched_state.eft)
              | None -> ()
            end)
          candidates
      end
    end
  in
  explore (Sched_state.create g platform) 0.;
  let status =
    match (!best_schedule, !capped) with
    | Some _, false -> Proven_optimal
    | Some _, true -> Feasible
    | None, false -> Proven_infeasible
    | None, true -> Unknown
  in
  {
    status;
    schedule = !best_schedule;
    makespan = (if !best_schedule = None then nan else !incumbent);
    nodes = !nodes;
  }

let optimal_makespan ?node_limit g platform =
  match solve ?node_limit g platform with
  | { status = Proven_optimal; makespan; _ } -> Some makespan
  | _ -> None
