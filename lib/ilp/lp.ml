type var_kind = Continuous | Binary | General_integer

type var = {
  idx : int;
  vname : string;
  lb : float;
  ub : float;
  kind : var_kind;
}

type sense = Le | Ge | Eq
type linexpr = (float * int) list

type constr = {
  cname : string;
  terms : linexpr;
  sense : sense;
  rhs : float;
}

type objective = Minimize of linexpr | Maximize of linexpr

type t = {
  mutable vars : var array;
  mutable nv : int;
  mutable cs : constr array;
  mutable nc : int;
  mutable obj : objective;
}

let dummy_var = { idx = -1; vname = ""; lb = 0.; ub = 0.; kind = Continuous }
let dummy_constr = { cname = ""; terms = []; sense = Le; rhs = 0. }
let create () = { vars = [||]; nv = 0; cs = [||]; nc = 0; obj = Minimize [] }

let grow_vars t =
  if t.nv = Array.length t.vars then begin
    let a = Array.make (max 16 (2 * t.nv)) dummy_var in
    Array.blit t.vars 0 a 0 t.nv;
    t.vars <- a
  end

let grow_cs t =
  if t.nc = Array.length t.cs then begin
    let a = Array.make (max 16 (2 * t.nc)) dummy_constr in
    Array.blit t.cs 0 a 0 t.nc;
    t.cs <- a
  end

let add_var t ?(lb = 0.) ?(ub = infinity) ?(kind = Continuous) vname =
  let lb, ub = match kind with Binary -> (Float.max lb 0., Float.min ub 1.) | _ -> (lb, ub) in
  if lb > ub then invalid_arg "Lp.add_var: lb > ub";
  grow_vars t;
  let idx = t.nv in
  t.vars.(idx) <- { idx; vname; lb; ub; kind };
  t.nv <- idx + 1;
  idx

(* Coefficients are summed per variable in a table, but the table is only
   ever *looked up*: the output is built by walking the input terms in
   insertion order (first occurrence wins), so no Hashtbl iteration order
   can leak into the canonical constraint — the lint order-stability
   invariant.  Exactly-cancelled terms are dropped (exact zero test: a
   coefficient that sums to 0.0 contributes nothing to the row). *)
let normalize_terms terms =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (c, v) ->
      let cur = Option.value ~default:0. (Hashtbl.find_opt tbl v) in
      Hashtbl.replace tbl v (cur +. c))
    terms;
  let emitted = Hashtbl.create 8 in
  List.filter_map
    (fun (_, v) ->
      if Hashtbl.mem emitted v then None
      else begin
        Hashtbl.add emitted v ();
        let c = Hashtbl.find tbl v in
        if Float.equal c 0. then None else Some (c, v)
      end)
    terms
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let add_constr t ~name terms sense rhs =
  grow_cs t;
  t.cs.(t.nc) <- { cname = name; terms = normalize_terms terms; sense; rhs };
  t.nc <- t.nc + 1

let set_objective t obj =
  let obj =
    match obj with
    | Minimize e -> Minimize (normalize_terms e)
    | Maximize e -> Maximize (normalize_terms e)
  in
  t.obj <- obj

let set_kind t idx kind =
  let var = t.vars.(idx) in
  let lb, ub =
    match kind with
    | Binary -> (Float.max var.lb 0., Float.min var.ub 1.)
    | Continuous | General_integer -> (var.lb, var.ub)
  in
  t.vars.(idx) <- { var with kind; lb; ub }

let override_bounds t idx ~lb ~ub =
  if lb > ub +. 1e-12 then invalid_arg "Lp.override_bounds: lb > ub";
  let var = t.vars.(idx) in
  t.vars.(idx) <- { var with lb; ub }

let fix t idx v =
  let var = t.vars.(idx) in
  if v < var.lb -. 1e-9 || v > var.ub +. 1e-9 then invalid_arg "Lp.fix: value out of bounds";
  t.vars.(idx) <- { var with lb = v; ub = v }

let n_vars t = t.nv
let n_constrs t = t.nc
let var t i = t.vars.(i)
let vars t = Array.sub t.vars 0 t.nv
let constrs t = Array.sub t.cs 0 t.nc
let objective t = t.obj

let eval _t x terms = List.fold_left (fun acc (c, v) -> acc +. (c *. x.(v))) 0. terms

let constraint_violation t x =
  let worst = ref 0. in
  for k = 0 to t.nc - 1 do
    let c = t.cs.(k) in
    let v = eval t x c.terms in
    let slack =
      match c.sense with
      | Le -> v -. c.rhs
      | Ge -> c.rhs -. v
      | Eq -> abs_float (v -. c.rhs)
    in
    if slack > !worst then worst := slack
  done;
  for i = 0 to t.nv - 1 do
    let v = t.vars.(i) in
    if x.(i) < v.lb then worst := Float.max !worst (v.lb -. x.(i));
    if x.(i) > v.ub then worst := Float.max !worst (x.(i) -. v.ub)
  done;
  !worst

let integer_violation t x =
  let worst = ref 0. in
  for i = 0 to t.nv - 1 do
    match t.vars.(i).kind with
    | Continuous -> ()
    | Binary | General_integer ->
      let frac = abs_float (x.(i) -. Float.round x.(i)) in
      if frac > !worst then worst := frac
  done;
  !worst
