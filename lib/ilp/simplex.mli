(** Dense two-phase primal simplex for the LP relaxation of {!Lp} models.

    Bounds are handled by shifting every variable to its (finite) lower
    bound and materialising finite upper bounds as rows; all rows then get a
    full artificial basis for phase 1.  This is a compact, dependable solver
    for the small instances the paper's ILP is used on — not a
    high-performance LP code. *)

type result =
  | Optimal of { x : float array; obj : float }
      (** [x] is indexed by the model's variable indices. *)
  | Infeasible
  | Unbounded
  | Capped
      (** iteration cap hit before convergence: the result carries no valid
          bound and must not be used for pruning *)

val solve_relaxation : ?max_iters:int -> Lp.t -> result
(** Solves the LP obtained by dropping integrality.
    @raise Invalid_argument if some variable has an infinite lower bound
    (the paper's models never do). *)

(** {2 Warm-started re-solves}

    Branch-and-bound re-solves near-identical LPs where only variable bounds
    differ.  A {!warm} value snapshots an optimal basis on a
    {e bound-invariant} tableau (all variables structural, upper bounds as
    rows, plus identity tracking columns giving the basis inverse), so a
    child node only recomputes the right-hand side and runs the dual simplex
    from the parent basis — bound changes leave reduced costs untouched, so
    that basis stays dual-feasible. *)

type warm

val solve_relaxation_warm : ?max_iters:int -> Lp.t -> result * warm option
(** Cold two-phase solve plus, when the result is [Optimal], a warm snapshot
    of its basis.  The snapshot is [None] when the optimal basis cannot be
    re-established on the warm tableau (it retains an artificial, or the
    dual-feasibility verification fails) — callers then simply keep cold
    solving. *)

val resolve_dual : ?max_iters:int -> warm -> Lp.t -> (result * warm option) option
(** [resolve_dual w lp] re-solves [lp] (same structure, possibly different
    bounds) by dual simplex from the basis in [w], without mutating [w].
    [None] means the warm path could not run to completion (structure
    changed — e.g. a variable acquired its first finite upper bound — or the
    iteration cap was hit): fall back to a cold solve.  [Some (Infeasible,
    _)] is a certified infeasibility (dual unbounded). *)
