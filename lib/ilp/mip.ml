type status = Optimal | Feasible | Infeasible | Unknown

type solution = {
  status : status;
  incumbent : (float array * float) option;
  best_bound : float;
  nodes : int;
}

let solve ?(node_limit = 200_000) ?time_limit ?(int_tol = 1e-6) ?(gap_tol = 1e-6) ?incumbent
    ?(warm_start = true) lp =
  (* The wall-clock budget is an explicit caller opt-in (off by default);
     campaign code never passes [time_limit], so determinism holds there. *)
  let deadline = Option.map (fun s -> Sys.time () +. s) time_limit in (* lint: allow determinism -- opt-in time budget *)
  let out_of_time () = match deadline with Some d -> Sys.time () > d | None -> false in (* lint: allow determinism -- opt-in time budget *)
  let n = Lp.n_vars lp in
  let original =
    Array.init n (fun i ->
        let v = Lp.var lp i in
        (v.Lp.lb, v.Lp.ub))
  in
  let restore () = Array.iteri (fun v (lb, ub) -> Lp.override_bounds lp v ~lb ~ub) original in
  let best : (float array * float) option ref = ref None in
  let upper = ref (Option.value ~default:infinity incumbent) in
  let nodes = ref 0 in
  let capped = ref false in
  let open_bounds = ref [] in
  (* DFS.  Each node's bound overrides are applied before its relaxation and
     undone by re-applying the parent's full fixing list.  With [warm_start]
     each node re-solves from its parent's optimal basis with the dual
     simplex (bound changes keep that basis dual-feasible); any shape break,
     restore failure or iteration cap falls back to the cold two-phase solve,
     which also refreshes the warm basis for the node's own children. *)
  let rec explore fixings warm =
    if !nodes >= node_limit || out_of_time () then capped := true
    else begin
      incr nodes;
      restore ();
      (* Oldest first, so a re-branched variable keeps its newest bounds. *)
      List.iter (fun (v, lb, ub) -> Lp.override_bounds lp v ~lb ~ub) (List.rev fixings);
      let relax, warm' =
        if not warm_start then (Simplex.solve_relaxation lp, None)
        else
          match warm with
          | Some w -> (
            (* A bound change needs few dual pivots from the parent basis; a
               node that wants more is cheaper to re-solve cold than to let
               the dual iteration (which prices every column) grind on. *)
            match Simplex.resolve_dual ~max_iters:500 w lp with
            | Some (res, w') -> (res, w')
            | None -> Simplex.solve_relaxation_warm lp)
          | None -> Simplex.solve_relaxation_warm lp
      in
      match relax with
      | Simplex.Infeasible -> ()
      | Simplex.Unbounded | Simplex.Capped ->
        (* No valid bound for this subtree: remember it stays open. *)
        open_bounds := neg_infinity :: !open_bounds;
        capped := true
      | Simplex.Optimal { x; obj } ->
        if obj >= !upper -. gap_tol then ()
        else begin
          (* Most fractional integer variable. *)
          let frac_var = ref (-1) in
          let frac_dist = ref int_tol in
          for v = 0 to n - 1 do
            match (Lp.var lp v).Lp.kind with
            | Lp.Continuous -> ()
            | Lp.Binary | Lp.General_integer ->
              let d = abs_float (x.(v) -. Float.round x.(v)) in
              if d > !frac_dist then begin
                frac_dist := d;
                frac_var := v
              end
          done;
          if !frac_var < 0 then begin
            if obj < !upper then begin
              upper := obj;
              best := Some (Array.copy x, obj)
            end
          end
          else begin
            let v = !frac_var in
            let lb0, ub0 =
              match List.find_opt (fun (v', _, _) -> v' = v) fixings with
              | Some (_, lb, ub) -> (lb, ub)
              | None -> original.(v)
            in
            let xv = x.(v) in
            let lo = (v, lb0, floor xv) and hi = (v, ceil xv, ub0) in
            let first, second = if xv -. floor xv <= 0.5 then (lo, hi) else (hi, lo) in
            explore (first :: fixings) warm';
            explore (second :: fixings) warm'
          end
        end
    end
  in
  explore [] None;
  restore ();
  let status =
    match (!best, !capped) with
    | Some _, false -> Optimal
    | Some _, true -> Feasible
    | None, false -> Infeasible
    | None, true -> Unknown
  in
  let best_bound =
    match status with
    | Optimal -> ( match !best with Some (_, obj) -> obj | None -> neg_infinity)
    | Feasible | Unknown | Infeasible -> neg_infinity
  in
  { status; incumbent = !best; best_bound; nodes = !nodes }
