(** Exact branch-and-bound scheduler — the "Optimal" reference of Figures 10
    and 11.

    The search enumerates every interleaving of (ready task, memory)
    decisions; each decision places the task at its earliest feasible start
    (the four EST components of §5.1) with just-in-time transfers.  Subtrees
    are pruned with the critical-path/work-area lower bound against the best
    incumbent (seeded from MemHEFT/MemMinMin when they succeed).

    This explores the same decision space the paper's ILP encodes, restricted
    to schedules where every task starts as early as its commitment order
    allows — the standard policy class for this kind of search; because the
    search branches over {e all} commitment orders, deliberate idling is
    covered by committing other tasks first.  The solver is cross-checked
    against the ILP (via {!Mip}) on toy instances in the test suite.  A
    {!result} is [Proven_optimal] only when the search space was exhausted
    within the node budget.

    {!solve} is the overhauled engine: an in-place commit/undo backtracking
    search (no per-node state copy), memory-aware dominance pruning (a
    precedence-only node lower bound plus a transposition set over canonical
    partial-schedule signatures), and a deterministic parallel mode that
    splits the tree breadth-first into a {e fixed-size} frontier of subtrees
    solved over a [lib/par] pool.  The frontier size never depends on the job
    count and workers never share incumbents, so statuses, makespans,
    schedules and node counts are identical for every [--jobs] value.
    {!solve_reference} is the pre-overhaul copy-based search, kept verbatim
    for A/B tests and the [campaign/exact] bench baseline. *)

type status =
  | Proven_optimal  (** search exhausted: best found is optimal (in-class) *)
  | Feasible  (** node budget hit with an incumbent *)
  | Proven_infeasible  (** search exhausted without any feasible schedule *)
  | Unknown  (** node budget hit without an incumbent *)

type result = {
  status : status;
  schedule : Schedule.t option;
  makespan : float;  (** [nan] without an incumbent *)
  best_bound : float;
      (** Certified lower bound on the optimal makespan: equals [makespan]
          when [Proven_optimal], [infinity] when [Proven_infeasible], and
          the smallest lower bound over the budget-truncated parts of the
          tree otherwise ([0.] when nothing is known).  [makespan -.
          best_bound] is the optimality gap a capped run leaves open.
          {!solve_reference} does not track truncated subtrees and reports
          the trivial bound for non-proven statuses. *)
  nodes : int;
}

val solve :
  ?pool:Par.t ->
  ?frontier:int ->
  ?dominance:bool ->
  ?node_limit:int ->
  ?seed_incumbent:bool ->
  Dag.t ->
  Platform.t ->
  result
(** Defaults: [frontier = 32], [dominance = true], [node_limit = 2_000_000],
    [seed_incumbent = true] (run the heuristics first for an upper bound).

    [frontier] is the number of subtree roots the breadth-first split aims
    for; it must stay a constant across runs for outputs to be comparable
    (it is {e not} derived from the pool size, precisely so results are
    jobs-invariant).  [frontier = 1] disables decomposition entirely.
    [dominance = false] disables the node lower bound and the transposition
    set; combined with [frontier = 1] the search replicates
    {!solve_reference} node for node (asserted by the A/B qtests).
    [pool]: solve subtrees on the pool's domains; with [None] (or a 1-job
    pool) they are solved serially — same results either way.  Under
    decomposition the node budget is split evenly over the subtrees, so the
    total node count can exceed [node_limit] by at most the frontier size. *)

val solve_reference : ?node_limit:int -> ?seed_incumbent:bool -> Dag.t -> Platform.t -> result
(** The pre-overhaul search, verbatim: copies the whole scheduler state at
    every node and prunes only with [est + bottom] against the incumbent. *)

val optimal_makespan : ?pool:Par.t -> ?node_limit:int -> Dag.t -> Platform.t -> float option
(** Convenience: [Some makespan] when [Proven_optimal], [None] otherwise. *)
