(** Branch-and-bound over the LP relaxation: a small MILP solver sufficient
    for toy instances of the paper's ILP (CPLEX stands in for anything
    larger via the {!Lp_format} export).

    Branching: the integer variable whose relaxation value is farthest from
    integrality; depth-first with best-bound pruning against the incumbent.
    Minimisation only. *)

type status =
  | Optimal  (** proven optimal within tolerances *)
  | Feasible  (** node or iteration budget exhausted with an incumbent *)
  | Infeasible  (** proven infeasible *)
  | Unknown  (** budget exhausted without an incumbent *)

type solution = {
  status : status;
  incumbent : (float array * float) option;  (** assignment and objective *)
  best_bound : float;  (** global lower bound on the optimum *)
  nodes : int;  (** branch-and-bound nodes explored *)
}

val solve :
  ?node_limit:int ->
  ?time_limit:float ->
  ?int_tol:float ->
  ?gap_tol:float ->
  ?incumbent:float ->
  ?warm_start:bool ->
  Lp.t ->
  solution
(** [incumbent] seeds an upper bound (e.g. from a heuristic schedule);
    branches proving [bound >= incumbent - gap_tol] are pruned.
    [time_limit] is in CPU seconds ({!Sys.time}).  Defaults:
    [node_limit = 200_000], no time limit, [int_tol = 1e-6],
    [gap_tol = 1e-6], [warm_start = true].

    [warm_start]: re-solve each child node with the dual simplex from its
    parent's optimal basis ({!Simplex.solve_relaxation_warm} /
    {!Simplex.resolve_dual}), falling back to the cold two-phase solve
    whenever the warm path cannot run.  [~warm_start:false] is the
    pre-overhaul behaviour, kept as the A/B reference: both modes visit the
    same tree and prune with the same objective values up to LP-solver
    rounding, so statuses and incumbents agree within tolerances. *)
