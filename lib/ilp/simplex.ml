type result =
  | Optimal of { x : float array; obj : float }
  | Infeasible
  | Unbounded
  | Capped

let tol = 1e-7

(* Equality-form tableau.  Variables fixed by bounds (lb = ub) are
   substituted out as constants, which keeps branch-and-bound subproblems
   small.  Rows whose slack enters positively start basic on their slack;
   only the remaining rows get artificial columns. *)
type tableau = {
  m : int;
  ncols : int;
  a : float array array;
  b : float array;
  basis : int array;
  n_real : int;  (** structural + slack columns (artificials beyond) *)
  col_of_var : int array;  (** -1 when the variable is fixed *)
  fixed_value : float array;  (** meaningful when col_of_var = -1 *)
  n_art : int;
}

let build lp =
  let nv = Lp.n_vars lp in
  let vars = Lp.vars lp in
  Array.iter
    (fun v ->
      if Float.equal v.Lp.lb neg_infinity then invalid_arg "Simplex: variables must have finite lower bounds")
    vars;
  let col_of_var = Array.make nv (-1) in
  let fixed_value = Array.make nv 0. in
  let ncols_struct = ref 0 in
  Array.iter
    (fun v ->
      if v.Lp.ub -. v.Lp.lb <= 1e-12 then fixed_value.(v.Lp.idx) <- v.Lp.lb
      else begin
        col_of_var.(v.Lp.idx) <- !ncols_struct;
        incr ncols_struct
      end)
    vars;
  let constrs = Lp.constrs lp in
  let ub_rows =
    Array.to_list vars
    |> List.filter_map (fun v ->
           if col_of_var.(v.Lp.idx) >= 0 && v.Lp.ub < infinity then
             Some (v.Lp.idx, v.Lp.ub -. v.Lp.lb)
           else None)
  in
  let m = Array.length constrs + List.length ub_rows in
  let n_slack =
    Array.fold_left
      (fun acc c -> match c.Lp.sense with Lp.Le | Lp.Ge -> acc + 1 | Lp.Eq -> acc)
      0 constrs
    + List.length ub_rows
  in
  let n_real = !ncols_struct + n_slack in
  (* First pass fills structural+slack coefficients and remembers each row's
     slack column/sign; artificials are appended afterwards. *)
  let a = Array.init m (fun _ -> Array.make n_real 0.) in
  let b = Array.make m 0. in
  let slack_col = Array.make m (-1) in
  let slack_sign = Array.make m 0. in
  let slack_cursor = ref !ncols_struct in
  let row = ref 0 in
  let emit_terms r terms rhs =
    let rhs = ref rhs in
    List.iter
      (fun (coef, v) ->
        (* shift by lb; constants leave entirely *)
        rhs := !rhs -. (coef *. vars.(v).Lp.lb);
        let col = col_of_var.(v) in
        if col >= 0 then a.(r).(col) <- a.(r).(col) +. coef
        else rhs := !rhs -. (coef *. (fixed_value.(v) -. vars.(v).Lp.lb)))
      terms;
    b.(r) <- !rhs
  in
  Array.iter
    (fun c ->
      let r = !row in
      emit_terms r c.Lp.terms c.Lp.rhs;
      (match c.Lp.sense with
      | Lp.Le ->
        a.(r).(!slack_cursor) <- 1.;
        slack_col.(r) <- !slack_cursor;
        slack_sign.(r) <- 1.;
        incr slack_cursor
      | Lp.Ge ->
        a.(r).(!slack_cursor) <- -1.;
        slack_col.(r) <- !slack_cursor;
        slack_sign.(r) <- -1.;
        incr slack_cursor
      | Lp.Eq -> ());
      incr row)
    constrs;
  List.iter
    (fun (v, ub) ->
      let r = !row in
      a.(r).(col_of_var.(v)) <- 1.;
      a.(r).(!slack_cursor) <- 1.;
      slack_col.(r) <- !slack_cursor;
      slack_sign.(r) <- 1.;
      incr slack_cursor;
      b.(r) <- ub;
      incr row)
    ub_rows;
  (* Normalise to b >= 0 and decide each row's starting basis. *)
  let needs_art = Array.make m false in
  let n_art = ref 0 in
  for r = 0 to m - 1 do
    if b.(r) < 0. then begin
      b.(r) <- -.b.(r);
      for j = 0 to n_real - 1 do
        a.(r).(j) <- -.a.(r).(j)
      done;
      slack_sign.(r) <- -.slack_sign.(r)
    end;
    if not (slack_col.(r) >= 0 && slack_sign.(r) > 0.) then begin
      needs_art.(r) <- true;
      incr n_art
    end
  done;
  let ncols = n_real + !n_art in
  let a' = Array.init m (fun r -> Array.append a.(r) (Array.make !n_art 0.)) in
  let basis = Array.make m (-1) in
  let art_cursor = ref n_real in
  for r = 0 to m - 1 do
    if needs_art.(r) then begin
      a'.(r).(!art_cursor) <- 1.;
      basis.(r) <- !art_cursor;
      incr art_cursor
    end
    else basis.(r) <- slack_col.(r)
  done;
  { m; ncols; a = a'; b; basis; n_real; col_of_var; fixed_value; n_art = !n_art }

let reduced_costs t c =
  let z = Array.copy c in
  let obj = ref 0. in
  for r = 0 to t.m - 1 do
    let cb = c.(t.basis.(r)) in
    if not (Float.equal cb 0.) then begin
      obj := !obj +. (cb *. t.b.(r));
      let arow = t.a.(r) in
      for j = 0 to t.ncols - 1 do
        z.(j) <- z.(j) -. (cb *. arow.(j))
      done
    end
  done;
  (z, !obj)

let pivot t ~row ~col =
  let arow = t.a.(row) in
  let inv = 1. /. arow.(col) in
  for j = 0 to t.ncols - 1 do
    arow.(j) <- arow.(j) *. inv
  done;
  t.b.(row) <- t.b.(row) *. inv;
  for r = 0 to t.m - 1 do
    if r <> row then begin
      let arr = t.a.(r) in
      let f = arr.(col) in
      if not (Float.equal f 0.) then begin
        for j = 0 to t.ncols - 1 do
          arr.(j) <- arr.(j) -. (f *. arow.(j))
        done;
        t.b.(r) <- t.b.(r) -. (f *. t.b.(row))
      end
    end
  done;
  t.basis.(row) <- col

type phase_result = Phase_optimal | Phase_unbounded | Phase_capped

let run_phase t c ~allowed ~max_iters =
  let iters = ref 0 in
  let result = ref None in
  while !result = None do
    incr iters;
    let z, _ = reduced_costs t c in
    let bland = !iters > max_iters / 2 in
    let enter = ref (-1) in
    let best = ref (-.tol) in
    (try
       for j = 0 to t.ncols - 1 do
         if allowed j && z.(j) < -.tol then begin
           if bland then begin
             enter := j;
             raise Exit
           end
           else if z.(j) < !best then begin
             best := z.(j);
             enter := j
           end
         end
       done
     with Exit -> ());
    if !enter < 0 then result := Some Phase_optimal
    else begin
      let col = !enter in
      let leave = ref (-1) in
      let best_ratio = ref infinity in
      for r = 0 to t.m - 1 do
        if t.a.(r).(col) > tol then begin
          let ratio = t.b.(r) /. t.a.(r).(col) in
          if
            ratio < !best_ratio -. tol
            || (ratio < !best_ratio +. tol && (!leave < 0 || t.basis.(r) < t.basis.(!leave)))
          then begin
            best_ratio := ratio;
            leave := r
          end
        end
      done;
      if !leave < 0 then result := Some Phase_unbounded
      else begin
        pivot t ~row:!leave ~col;
        if !iters >= max_iters then result := Some Phase_capped
      end
    end
  done;
  Option.get !result

let solve_relaxation ?(max_iters = 20000) lp =
  let t = build lp in
  let nv = Lp.n_vars lp in
  let vars = Lp.vars lp in
  (* Phase 1 (only when artificials exist). *)
  let phase1_capped =
    if t.n_art = 0 then false
    else begin
      let c1 = Array.make t.ncols 0. in
      for j = t.n_real to t.ncols - 1 do
        c1.(j) <- 1.
      done;
      match run_phase t c1 ~allowed:(fun _ -> true) ~max_iters with
      | Phase_unbounded -> assert false (* bounded below by 0 *)
      | Phase_optimal -> false
      | Phase_capped -> true
    end
  in
  let infeas = ref 0. in
  for r = 0 to t.m - 1 do
    if t.basis.(r) >= t.n_real then infeas := !infeas +. t.b.(r)
  done;
  if !infeas > 1e-6 then (if phase1_capped then Capped else Infeasible)
  else begin
    (* Drive remaining zero-level artificials out of the basis. *)
    for r = 0 to t.m - 1 do
      if t.basis.(r) >= t.n_real then begin
        let col = ref (-1) in
        for j = 0 to t.n_real - 1 do
          if !col < 0 && abs_float t.a.(r).(j) > tol then col := j
        done;
        if !col >= 0 then pivot t ~row:r ~col:!col
      end
    done;
    let c2 = Array.make t.ncols 0. in
    let sign, terms =
      match Lp.objective lp with Lp.Minimize e -> (1., e) | Lp.Maximize e -> (-1., e)
    in
    List.iter
      (fun (coef, v) ->
        let col = t.col_of_var.(v) in
        if col >= 0 then c2.(col) <- c2.(col) +. (sign *. coef))
      terms;
    let allowed j = j < t.n_real in
    match run_phase t c2 ~allowed ~max_iters with
    | Phase_unbounded -> Unbounded
    | Phase_capped -> Capped
    | Phase_optimal ->
      let y = Array.make t.ncols 0. in
      for r = 0 to t.m - 1 do
        y.(t.basis.(r)) <- t.b.(r)
      done;
      let x =
        Array.init nv (fun v ->
            let col = t.col_of_var.(v) in
            if col >= 0 then y.(col) +. vars.(v).Lp.lb else t.fixed_value.(v))
      in
      let obj = List.fold_left (fun acc (coef, v) -> acc +. (coef *. x.(v))) 0. terms in
      Optimal { x; obj }
  end
