type result =
  | Optimal of { x : float array; obj : float }
  | Infeasible
  | Unbounded
  | Capped

let tol = 1e-7

(* Equality-form tableau.  Variables fixed by bounds (lb = ub) are
   substituted out as constants, which keeps branch-and-bound subproblems
   small.  Rows whose slack enters positively start basic on their slack;
   only the remaining rows get artificial columns. *)
(* Identity of a cold-tableau column in terms of the LP, so an optimal basis
   can be re-established on the warm tableau (whose column layout differs:
   no fixed-variable substitution, no artificials). *)
type ident = Ivar of int | Islack_constr of int | Islack_ub of int | Iart

type tableau = {
  m : int;
  ncols : int;
  a : float array array;
  b : float array;
  basis : int array;
  n_real : int;  (** structural + slack columns (artificials beyond) *)
  col_of_var : int array;  (** -1 when the variable is fixed *)
  fixed_value : float array;  (** meaningful when col_of_var = -1 *)
  n_art : int;
  ident_of_col : ident array;
}

let build lp =
  let nv = Lp.n_vars lp in
  let vars = Lp.vars lp in
  Array.iter
    (fun v ->
      if Float.equal v.Lp.lb neg_infinity then invalid_arg "Simplex: variables must have finite lower bounds")
    vars;
  let col_of_var = Array.make nv (-1) in
  let fixed_value = Array.make nv 0. in
  let ncols_struct = ref 0 in
  Array.iter
    (fun v ->
      if v.Lp.ub -. v.Lp.lb <= 1e-12 then fixed_value.(v.Lp.idx) <- v.Lp.lb
      else begin
        col_of_var.(v.Lp.idx) <- !ncols_struct;
        incr ncols_struct
      end)
    vars;
  let constrs = Lp.constrs lp in
  let ub_rows =
    Array.to_list vars
    |> List.filter_map (fun v ->
           if col_of_var.(v.Lp.idx) >= 0 && v.Lp.ub < infinity then
             Some (v.Lp.idx, v.Lp.ub -. v.Lp.lb)
           else None)
  in
  let m = Array.length constrs + List.length ub_rows in
  let n_slack =
    Array.fold_left
      (fun acc c -> match c.Lp.sense with Lp.Le | Lp.Ge -> acc + 1 | Lp.Eq -> acc)
      0 constrs
    + List.length ub_rows
  in
  let n_real = !ncols_struct + n_slack in
  (* First pass fills structural+slack coefficients and remembers each row's
     slack column/sign; artificials are appended afterwards. *)
  let a = Array.init m (fun _ -> Array.make n_real 0.) in
  let b = Array.make m 0. in
  let ident_real = Array.make n_real Iart in
  Array.iteri (fun v col -> if col >= 0 then ident_real.(col) <- Ivar v) col_of_var;
  let slack_col = Array.make m (-1) in
  let slack_sign = Array.make m 0. in
  let slack_cursor = ref !ncols_struct in
  let row = ref 0 in
  let emit_terms r terms rhs =
    let rhs = ref rhs in
    List.iter
      (fun (coef, v) ->
        (* shift by lb; constants leave entirely *)
        rhs := !rhs -. (coef *. vars.(v).Lp.lb);
        let col = col_of_var.(v) in
        if col >= 0 then a.(r).(col) <- a.(r).(col) +. coef
        else rhs := !rhs -. (coef *. (fixed_value.(v) -. vars.(v).Lp.lb)))
      terms;
    b.(r) <- !rhs
  in
  Array.iter
    (fun c ->
      let r = !row in
      emit_terms r c.Lp.terms c.Lp.rhs;
      (match c.Lp.sense with
      | Lp.Le ->
        a.(r).(!slack_cursor) <- 1.;
        slack_col.(r) <- !slack_cursor;
        slack_sign.(r) <- 1.;
        ident_real.(!slack_cursor) <- Islack_constr r;
        incr slack_cursor
      | Lp.Ge ->
        a.(r).(!slack_cursor) <- -1.;
        slack_col.(r) <- !slack_cursor;
        slack_sign.(r) <- -1.;
        ident_real.(!slack_cursor) <- Islack_constr r;
        incr slack_cursor
      | Lp.Eq -> ());
      incr row)
    constrs;
  List.iter
    (fun (v, ub) ->
      let r = !row in
      a.(r).(col_of_var.(v)) <- 1.;
      a.(r).(!slack_cursor) <- 1.;
      slack_col.(r) <- !slack_cursor;
      slack_sign.(r) <- 1.;
      ident_real.(!slack_cursor) <- Islack_ub v;
      incr slack_cursor;
      b.(r) <- ub;
      incr row)
    ub_rows;
  (* Normalise to b >= 0 and decide each row's starting basis. *)
  let needs_art = Array.make m false in
  let n_art = ref 0 in
  for r = 0 to m - 1 do
    if b.(r) < 0. then begin
      b.(r) <- -.b.(r);
      for j = 0 to n_real - 1 do
        a.(r).(j) <- -.a.(r).(j)
      done;
      slack_sign.(r) <- -.slack_sign.(r)
    end;
    if not (slack_col.(r) >= 0 && slack_sign.(r) > 0.) then begin
      needs_art.(r) <- true;
      incr n_art
    end
  done;
  let ncols = n_real + !n_art in
  let a' = Array.init m (fun r -> Array.append a.(r) (Array.make !n_art 0.)) in
  let basis = Array.make m (-1) in
  let art_cursor = ref n_real in
  for r = 0 to m - 1 do
    if needs_art.(r) then begin
      a'.(r).(!art_cursor) <- 1.;
      basis.(r) <- !art_cursor;
      incr art_cursor
    end
    else basis.(r) <- slack_col.(r)
  done;
  {
    m;
    ncols;
    a = a';
    b;
    basis;
    n_real;
    col_of_var;
    fixed_value;
    n_art = !n_art;
    ident_of_col = Array.append ident_real (Array.make !n_art Iart);
  }

let reduced_costs t c =
  let z = Array.copy c in
  let obj = ref 0. in
  for r = 0 to t.m - 1 do
    let cb = c.(t.basis.(r)) in
    if not (Float.equal cb 0.) then begin
      obj := !obj +. (cb *. t.b.(r));
      let arow = t.a.(r) in
      for j = 0 to t.ncols - 1 do
        z.(j) <- z.(j) -. (cb *. arow.(j))
      done
    end
  done;
  (z, !obj)

let pivot t ~row ~col =
  let arow = t.a.(row) in
  let inv = 1. /. arow.(col) in
  for j = 0 to t.ncols - 1 do
    arow.(j) <- arow.(j) *. inv
  done;
  t.b.(row) <- t.b.(row) *. inv;
  for r = 0 to t.m - 1 do
    if r <> row then begin
      let arr = t.a.(r) in
      let f = arr.(col) in
      if not (Float.equal f 0.) then begin
        for j = 0 to t.ncols - 1 do
          arr.(j) <- arr.(j) -. (f *. arow.(j))
        done;
        t.b.(r) <- t.b.(r) -. (f *. t.b.(row))
      end
    end
  done;
  t.basis.(row) <- col

type phase_result = Phase_optimal | Phase_unbounded | Phase_capped

let run_phase t c ~allowed ~max_iters =
  let iters = ref 0 in
  let result = ref None in
  while !result = None do
    incr iters;
    let z, _ = reduced_costs t c in
    let bland = !iters > max_iters / 2 in
    let enter = ref (-1) in
    let best = ref (-.tol) in
    (try
       for j = 0 to t.ncols - 1 do
         if allowed j && z.(j) < -.tol then begin
           if bland then begin
             enter := j;
             raise Exit
           end
           else if z.(j) < !best then begin
             best := z.(j);
             enter := j
           end
         end
       done
     with Exit -> ());
    if !enter < 0 then result := Some Phase_optimal
    else begin
      let col = !enter in
      let leave = ref (-1) in
      let best_ratio = ref infinity in
      for r = 0 to t.m - 1 do
        if t.a.(r).(col) > tol then begin
          let ratio = t.b.(r) /. t.a.(r).(col) in
          if
            ratio < !best_ratio -. tol
            || (ratio < !best_ratio +. tol && (!leave < 0 || t.basis.(r) < t.basis.(!leave)))
          then begin
            best_ratio := ratio;
            leave := r
          end
        end
      done;
      if !leave < 0 then result := Some Phase_unbounded
      else begin
        pivot t ~row:!leave ~col;
        if !iters >= max_iters then result := Some Phase_capped
      end
    end
  done;
  Option.get !result

(* Two-phase primal solve; returns the final tableau alongside the result so
   the warm-start layer can read the optimal basis off it. *)
let solve_cold ~max_iters lp =
  let t = build lp in
  let nv = Lp.n_vars lp in
  let vars = Lp.vars lp in
  let res =
  (* Phase 1 (only when artificials exist). *)
  let phase1_capped =
    if t.n_art = 0 then false
    else begin
      let c1 = Array.make t.ncols 0. in
      for j = t.n_real to t.ncols - 1 do
        c1.(j) <- 1.
      done;
      match run_phase t c1 ~allowed:(fun _ -> true) ~max_iters with
      | Phase_unbounded -> assert false (* bounded below by 0 *)
      | Phase_optimal -> false
      | Phase_capped -> true
    end
  in
  let infeas = ref 0. in
  for r = 0 to t.m - 1 do
    if t.basis.(r) >= t.n_real then infeas := !infeas +. t.b.(r)
  done;
  if !infeas > 1e-6 then (if phase1_capped then Capped else Infeasible)
  else begin
    (* Drive remaining zero-level artificials out of the basis. *)
    for r = 0 to t.m - 1 do
      if t.basis.(r) >= t.n_real then begin
        let col = ref (-1) in
        for j = 0 to t.n_real - 1 do
          if !col < 0 && abs_float t.a.(r).(j) > tol then col := j
        done;
        if !col >= 0 then pivot t ~row:r ~col:!col
      end
    done;
    let c2 = Array.make t.ncols 0. in
    let sign, terms =
      match Lp.objective lp with Lp.Minimize e -> (1., e) | Lp.Maximize e -> (-1., e)
    in
    List.iter
      (fun (coef, v) ->
        let col = t.col_of_var.(v) in
        if col >= 0 then c2.(col) <- c2.(col) +. (sign *. coef))
      terms;
    let allowed j = j < t.n_real in
    match run_phase t c2 ~allowed ~max_iters with
    | Phase_unbounded -> Unbounded
    | Phase_capped -> Capped
    | Phase_optimal ->
      let y = Array.make t.ncols 0. in
      for r = 0 to t.m - 1 do
        y.(t.basis.(r)) <- t.b.(r)
      done;
      let x =
        Array.init nv (fun v ->
            let col = t.col_of_var.(v) in
            if col >= 0 then y.(col) +. vars.(v).Lp.lb else t.fixed_value.(v))
      in
      let obj = List.fold_left (fun acc (coef, v) -> acc +. (coef *. x.(v))) 0. terms in
      Optimal { x; obj }
  end
  in
  (res, t)

let solve_relaxation ?(max_iters = 20000) lp = fst (solve_cold ~max_iters lp)

(* ------------------------------------------------- warm-started re-solve ---

   Branch-and-bound re-solves near-identical LPs: only variable bounds change
   between a node and its children.  The cold path above rebuilds the tableau
   (substituting newly-fixed variables out, so even its {e shape} changes) and
   runs two phases from scratch at every node.  The warm path instead keeps a
   {e bound-invariant} tableau:

   - every variable is a structural column shifted by its current lower bound
     (the shift moves bounds into [b] only — the coefficient matrix never
     changes);
   - finite upper bounds are materialised as [x + s = ub - lb] rows, present
     for every variable that has a finite bound when the tableau is first
     built, so fixing or tightening a bound later only changes that row's
     rhs;
   - [m] identity "tracking" columns (cost 0, never allowed to enter the
     basis) are appended.  After any sequence of pivots the tracking part of
     row [r] is row [r] of the basis inverse, so a child's right-hand side is
     just [B^-1 b0(child bounds)] — one matrix-vector product instead of a
     refactorisation.

   A bound change leaves the reduced costs untouched (they depend on [A] and
   [c] only), so the parent's optimal basis stays {e dual}-feasible at the
   child and the dual simplex re-establishes primal feasibility in a few
   pivots.  Fallbacks to the cold path: the root basis retains an artificial,
   a variable acquires its first finite upper bound after the tableau was
   built (shape break), the basis restore or the dual-feasibility check
   fails, or the dual iteration cap is hit. *)

type warm = {
  wm : int;
  wnstruct : int;
  wtrack0 : int;
  wncols : int;
  wa : float array array;
  wb : float array;
  wbasis : int array;
  wc : float array;  (** minimise-sense costs over non-tracking columns *)
  wub_row_of : int array;  (** var -> its upper-bound row, or -1 *)
  wslack_of_row : int array;  (** row -> its slack column, or -1 (Eq rows) *)
}

(* Right-hand side of the warm tableau under the LP's current bounds. *)
let warm_b0 lp w =
  let vars = Lp.vars lp in
  let constrs = Lp.constrs lp in
  let b0 = Array.make w.wm 0. in
  Array.iteri
    (fun r c ->
      b0.(r) <-
        List.fold_left
          (fun acc (coef, v) -> acc -. (coef *. vars.(v).Lp.lb))
          c.Lp.rhs c.Lp.terms)
    constrs;
  Array.iteri
    (fun v row -> if row >= 0 then b0.(row) <- vars.(v).Lp.ub -. vars.(v).Lp.lb)
    w.wub_row_of;
  b0

let warm_reduced_costs w =
  let z = Array.copy w.wc in
  for r = 0 to w.wm - 1 do
    let cb = w.wc.(w.wbasis.(r)) in
    if not (Float.equal cb 0.) then begin
      let arow = w.wa.(r) in
      for j = 0 to w.wncols - 1 do
        z.(j) <- z.(j) -. (cb *. arow.(j))
      done
    end
  done;
  z

let warm_pivot w ~row ~col =
  let arow = w.wa.(row) in
  let inv = 1. /. arow.(col) in
  for j = 0 to w.wncols - 1 do
    arow.(j) <- arow.(j) *. inv
  done;
  w.wb.(row) <- w.wb.(row) *. inv;
  for r = 0 to w.wm - 1 do
    if r <> row then begin
      let arr = w.wa.(r) in
      let f = arr.(col) in
      if not (Float.equal f 0.) then begin
        for j = 0 to w.wncols - 1 do
          arr.(j) <- arr.(j) -. (f *. arow.(j))
        done;
        w.wb.(r) <- w.wb.(r) -. (f *. w.wb.(row))
      end
    end
  done;
  w.wbasis.(row) <- col

(* Fresh (identity-basis) warm tableau for the LP's current structure, with
   [wb] set from the current bounds.  [wbasis] is unset (-1). *)
let warm_skeleton lp =
  let nv = Lp.n_vars lp in
  let vars = Lp.vars lp in
  if Array.exists (fun v -> Float.equal v.Lp.lb neg_infinity) vars then None
  else begin
    let constrs = Lp.constrs lp in
    let nc = Array.length constrs in
    let ub_vars =
      Array.to_list vars |> List.filter_map (fun v -> if v.Lp.ub < infinity then Some v.Lp.idx else None)
    in
    let m = nc + List.length ub_vars in
    let n_slack =
      Array.fold_left
        (fun acc c -> match c.Lp.sense with Lp.Le | Lp.Ge -> acc + 1 | Lp.Eq -> acc)
        0 constrs
      + List.length ub_vars
    in
    let wtrack0 = nv + n_slack in
    let wncols = wtrack0 + m in
    let wa = Array.init m (fun _ -> Array.make wncols 0.) in
    let wub_row_of = Array.make nv (-1) in
    let wslack_of_row = Array.make m (-1) in
    let slack_cursor = ref nv in
    Array.iteri
      (fun r c ->
        List.iter (fun (coef, v) -> wa.(r).(v) <- wa.(r).(v) +. coef) c.Lp.terms;
        match c.Lp.sense with
        | Lp.Le ->
          wa.(r).(!slack_cursor) <- 1.;
          wslack_of_row.(r) <- !slack_cursor;
          incr slack_cursor
        | Lp.Ge ->
          wa.(r).(!slack_cursor) <- -1.;
          wslack_of_row.(r) <- !slack_cursor;
          incr slack_cursor
        | Lp.Eq -> ())
      constrs;
    List.iteri
      (fun k v ->
        let r = nc + k in
        wa.(r).(v) <- 1.;
        wa.(r).(!slack_cursor) <- 1.;
        wslack_of_row.(r) <- !slack_cursor;
        wub_row_of.(v) <- r;
        incr slack_cursor)
      ub_vars;
    for r = 0 to m - 1 do
      wa.(r).(wtrack0 + r) <- 1.
    done;
    let wc = Array.make wncols 0. in
    let sign, terms =
      match Lp.objective lp with Lp.Minimize e -> (1., e) | Lp.Maximize e -> (-1., e)
    in
    List.iter (fun (coef, v) -> wc.(v) <- wc.(v) +. (sign *. coef)) terms;
    let w =
      {
        wm = m;
        wnstruct = nv;
        wtrack0;
        wncols;
        wa;
        wb = Array.make m 0.;
        wbasis = Array.make m (-1);
        wc;
        wub_row_of;
        wslack_of_row;
      }
    in
    Array.blit (warm_b0 lp w) 0 w.wb 0 m;
    Some w
  end

(* Re-establish the cold tableau's optimal basis on a fresh warm skeleton by
   Gaussian pivoting, then verify it is dual-feasible.  Returns [None] on any
   mismatch (caller falls back to cold solves). *)
let warm_of_tableau lp (t : tableau) =
  match warm_skeleton lp with
  | None -> None
  | Some w ->
    let exception Fail in
    (try
       (* Desired basic columns: the cold basis translated by identity, plus
          the slacks of the upper-bound rows of cold-fixed variables (absent
          from the cold tableau; their slack is basic at 0 and keeps reduced
          cost 0, so dual feasibility is unaffected). *)
       let desired = Array.make w.wm (-1) in
       let cursor = ref 0 in
       let push col =
         if col < 0 || !cursor >= w.wm then raise Fail;
         desired.(!cursor) <- col;
         incr cursor
       in
       Array.iter
         (fun col ->
           match t.ident_of_col.(col) with
           | Ivar v -> push v
           | Islack_constr r -> push w.wslack_of_row.(r)
           | Islack_ub v -> push w.wslack_of_row.(w.wub_row_of.(v))
           | Iart -> raise Fail)
         t.basis;
       Array.iteri
         (fun v col ->
           if col < 0 && w.wub_row_of.(v) >= 0 then
             push w.wslack_of_row.(w.wub_row_of.(v)))
         t.col_of_var;
       if !cursor <> w.wm then raise Fail;
       Array.sort compare desired;
       for k = 1 to w.wm - 1 do
         if desired.(k) = desired.(k - 1) then raise Fail
       done;
       let row_done = Array.make w.wm false in
       Array.iter
         (fun col ->
           let best = ref (-1) in
           for r = 0 to w.wm - 1 do
             if
               (not row_done.(r))
               && abs_float w.wa.(r).(col) > tol
               && (!best < 0 || abs_float w.wa.(r).(col) > abs_float w.wa.(!best).(col))
             then best := r
           done;
           if !best < 0 then raise Fail;
           warm_pivot w ~row:!best ~col;
           row_done.(!best) <- true)
         desired;
       let z = warm_reduced_costs w in
       for j = 0 to w.wtrack0 - 1 do
         if z.(j) < -.tol then raise Fail
       done;
       Some w
     with Fail -> None)

let copy_warm w =
  {
    w with
    wa = Array.map Array.copy w.wa;
    wb = Array.copy w.wb;
    wbasis = Array.copy w.wbasis;
  }

let solve_relaxation_warm ?(max_iters = 20000) lp =
  let res, t = solve_cold ~max_iters lp in
  match res with
  | Optimal _ -> (res, warm_of_tableau lp t)
  | _ -> (res, None)

let resolve_dual ?(max_iters = 20000) parent lp =
  let nv = Lp.n_vars lp in
  let vars = Lp.vars lp in
  (* Shape check: the warm tableau must still describe this LP.  A variable
     whose first finite upper bound appeared after the tableau was built has
     no ub row — the relaxation would silently drop that bound. *)
  let shape_ok =
    nv = parent.wnstruct
    && Array.for_all
         (fun v ->
           (not (Float.equal v.Lp.lb neg_infinity))
           && (Float.equal v.Lp.ub infinity || parent.wub_row_of.(v.Lp.idx) >= 0))
         vars
  in
  if not shape_ok then None
  else begin
    let w = copy_warm parent in
    (* Child rhs via the tracking columns: b = B^-1 b0(current bounds). *)
    let b0 = warm_b0 lp w in
    for r = 0 to w.wm - 1 do
      let arow = w.wa.(r) in
      let acc = ref 0. in
      for k = 0 to w.wm - 1 do
        acc := !acc +. (arow.(w.wtrack0 + k) *. b0.(k))
      done;
      w.wb.(r) <- !acc
    done;
    let iters = ref 0 in
    let verdict = ref None in
    while !verdict = None do
      incr iters;
      (* Leaving row: most negative rhs (Bland-ish after half the budget:
         lowest row index), deterministic tie-break on the row index. *)
      let bland = !iters > max_iters / 2 in
      let leave = ref (-1) in
      let worst = ref (-.tol) in
      (try
         for r = 0 to w.wm - 1 do
           if w.wb.(r) < -.tol then begin
             if bland then begin
               leave := r;
               raise Exit
             end
             else if w.wb.(r) < !worst then begin
               worst := w.wb.(r);
               leave := r
             end
           end
         done
       with Exit -> ());
      if !leave < 0 then verdict := Some `Primal_feasible
      else begin
        let r = !leave in
        let z = warm_reduced_costs w in
        let arow = w.wa.(r) in
        (* Entering column: dual ratio test over non-tracking columns with a
           negative pivot coefficient; ties break on the column index. *)
        let enter = ref (-1) in
        let best_ratio = ref infinity in
        for j = 0 to w.wtrack0 - 1 do
          if arow.(j) < -.tol then begin
            let ratio = z.(j) /. -.arow.(j) in
            if ratio < !best_ratio -. tol then begin
              best_ratio := ratio;
              enter := j
            end
          end
        done;
        if !enter < 0 then verdict := Some `Infeasible
        else begin
          warm_pivot w ~row:r ~col:!enter;
          if !iters >= max_iters then verdict := Some `Capped
        end
      end
    done;
    match !verdict with
    | Some `Capped | None -> None
    | Some `Infeasible -> Some (Infeasible, None)
    | Some `Primal_feasible ->
      let y = Array.make w.wncols 0. in
      for r = 0 to w.wm - 1 do
        y.(w.wbasis.(r)) <- w.wb.(r)
      done;
      let x = Array.init nv (fun v -> y.(v) +. vars.(v).Lp.lb) in
      let terms =
        match Lp.objective lp with Lp.Minimize e -> e | Lp.Maximize e -> e
      in
      let obj = List.fold_left (fun acc (coef, v) -> acc +. (coef *. x.(v))) 0. terms in
      Some (Optimal { x; obj }, Some w)
  end
