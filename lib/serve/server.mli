(** The serve loop: a persistent process turning a stream of length-prefixed
    scheduling requests into a stream of length-prefixed responses.

    {b Determinism invariant} (test-pinned, see test/test_serve.ml and
    [make serve-smoke]): for schedule requests, identical request bytes
    produce identical response bytes — regardless of the [--jobs] count,
    of where the request sits in the arrival order, and of the cache state.
    Responses are emitted in {e request order} (the order frames arrived),
    never in completion order, so the whole response stream is a
    deterministic function of the request stream.  Stats frames are the
    one documented carve-out: their reply is a deterministic function of
    the request-stream prefix and the cache's initial contents (still
    bit-identical across jobs counts), but by design it depends on that
    history.

    {b Concurrency}: the loop reads frames and looks up the cache
    serially; cache misses are shipped to the [lib/par] domain pool
    ({!Serve_dispatch.compute_bytes}) and the head-of-line response is
    written as soon as it resolves ({!Par.poll}).  Backpressure is
    two-fold: the pool's bounded queue blocks submission, and
    [max_inflight] bounds the responses buffered for in-order emission.

    {b Shutdown}: on EOF, or when [stop] reports an interrupt (the CLI
    maps SIGINT to it), the loop drains every in-flight request, writes
    the remaining responses — complete frames only, a frame write is never
    abandoned halfway — and returns its counters.  Framing-destroying
    protocol errors (truncated or oversized frames) are answered with an
    error response and then treated like EOF, since the byte stream can no
    longer be resynchronised; errors that leave framing intact (bad
    version, bad kind, malformed body) are answered and the loop keeps
    serving. *)

type counters = {
  served : int;  (** response frames written *)
  requests : int;  (** well-formed schedule requests received *)
  computed : int;  (** dispatcher invocations (cache misses, or all requests without a cache) *)
  protocol_errors : int;  (** malformed frames answered with an error response *)
  max_inflight : int;  (** high-water mark of responses awaiting in-order emission *)
  cache : Serve_cache.counters option;  (** [None] when serving uncached *)
}

val serve :
  ?pool:Par.t ->
  ?cache:Serve_cache.t ->
  ?max_inflight:int ->
  ?stop:(unit -> bool) ->
  input:Unix.file_descr ->
  output:Unix.file_descr ->
  unit ->
  counters
(** Serve [input] until EOF (or [stop ()], polled between frames and when
    a read is interrupted by a signal), writing responses to [output].
    Defaults: no pool (serial compute), no cache, [max_inflight = 64].
    The same pool and cache may be shared across successive calls — the
    socket mode of the CLI serves consecutive connections with one warm
    cache. *)

val pp_counters : Format.formatter -> counters -> unit
