(** The daemon's compute path: a pure, deterministic map from one decoded
    scheduling request to its response body.

    [compute] runs the selected algorithm (heuristic pass, MemHEFT
    multistart, or the exact branch-and-bound) serially — requests
    parallelise {e across} pool workers, never within one — validates any
    schedule through the full §3 oracle to obtain makespan and memory
    peaks, and folds every failure mode into a structured response:
    heuristic refusals become [Infeasible], exceptions become [Failure]
    (code {!Wire.err_compute}).  Nothing here can raise, so a poisoned
    request cannot take the daemon down. *)

val compute : Wire.request -> Wire.response_body

val compute_bytes : Wire.request -> string
(** [Wire.encode_body (compute req)]: the thunk the server submits to the
    pool, so encoding happens on the worker and the serial emit loop only
    moves bytes. *)
