(* Request dispatcher: one scheduling request in, one response body out.

   This is the function the daemon ships to pool workers, so it must be a
   pure, deterministic map from the decoded request to the response body —
   no wall clock, no shared state, no pool handle (per-request compute runs
   serially inside its worker; requests parallelise across workers).  Every
   algorithm below is bit-deterministic (PRs 1–5), which is what makes the
   content-addressed cache exact: a cached body is byte-for-byte what a
   fresh computation would return.

   The per-request error path is also here: any exception a computation
   raises is folded into a structured [Failure] response so one poisoned
   request can never take the daemon down. *)

(* Memory-oblivious heuristics plan against unbounded memories, so their
   schedules are only held to the unbounded constraints (same convention as
   the CLI and the fuzz oracles). *)
let check_platform platform = function
  | Wire.Heuristic name when not (Heuristics.is_memory_aware name) ->
    Platform.with_bounds platform ~m_blue:infinity ~m_red:infinity
  | _ -> platform

let ok_of_schedule (req : Wire.request) ~proof (s : Schedule.t) =
  match Validator.validate req.Wire.dag (check_platform req.Wire.platform req.Wire.algo) s with
  | Ok r ->
    Wire.Schedule
      {
        Wire.r_algo = req.Wire.algo;
        makespan = r.Validator.makespan;
        peak_blue = r.Validator.peak_blue;
        peak_red = r.Validator.peak_red;
        proof;
        starts = s.Schedule.starts;
        procs = s.Schedule.procs;
        comm_starts = s.Schedule.comm_starts;
      }
  | Error errs ->
    (* A scheduler emitting an invalid schedule is a bug; surface it as a
       structured failure rather than killing the daemon. *)
    Wire.Failure
      {
        code = Wire.err_compute;
        message = "internal: schedule failed validation: " ^ String.concat "; " errs;
      }

let infeasible_of_failure (f : Heuristics.failure) =
  Wire.Infeasible { n_scheduled = f.Heuristics.n_scheduled; reason = f.Heuristics.reason }

let compute (req : Wire.request) =
  let g = req.Wire.dag and p = req.Wire.platform in
  try
    match req.Wire.algo with
    | Wire.Heuristic name -> (
      match Heuristics.run name g p with
      | Ok s -> ok_of_schedule req ~proof:Wire.Heuristic_result s
      | Error f -> infeasible_of_failure f)
    | Wire.Multistart -> (
      let m =
        Multistart.memheft ~restarts:req.Wire.restarts ~seed:(Int64.to_int req.Wire.seed) g p
      in
      match m.Multistart.best with
      | Ok s -> ok_of_schedule req ~proof:Wire.Heuristic_result s
      | Error f -> infeasible_of_failure f)
    | Wire.Exact -> (
      let r = Exact.solve ~node_limit:req.Wire.node_limit g p in
      match (r.Exact.status, r.Exact.schedule) with
      | Exact.Proven_optimal, Some s ->
        ok_of_schedule req
          ~proof:(Wire.Exact_optimal { nodes = r.Exact.nodes; bound = r.Exact.best_bound })
          s
      | (Exact.Feasible | Exact.Unknown), Some s ->
        ok_of_schedule req
          ~proof:(Wire.Exact_budget { nodes = r.Exact.nodes; bound = r.Exact.best_bound })
          s
      | Exact.Proven_infeasible, _ | (Exact.Proven_optimal | Exact.Feasible | Exact.Unknown), None ->
        let reason =
          match r.Exact.status with
          | Exact.Proven_infeasible -> "exact: proven infeasible"
          | Exact.Unknown -> "exact: node budget exhausted without an incumbent"
          | Exact.Proven_optimal | Exact.Feasible ->
            "exact: internal: feasible status without a schedule"
        in
        Wire.Infeasible { n_scheduled = 0; reason })
  with e -> Wire.Failure { code = Wire.err_compute; message = Printexc.to_string e }

(* The unit of work the server submits to the pool: compute and encode in
   the worker, so the serial emit loop only moves bytes. *)
let compute_bytes req = Wire.encode_body (compute req)
