(** Content-addressed result cache of the scheduling daemon.

    Maps the canonical digest of a request ({!Wire.cache_key}) to the
    response body bytes the dispatcher produced for it.  Because every
    algorithm in the repository is bit-deterministic, a cached body is
    byte-for-byte what a fresh computation would produce — so serving from
    the cache cannot be observed through the response stream, only through
    the hit/miss counters.

    Eviction is LRU, bounded both by entry count and by total stored
    bytes.  The cache is {e not} synchronised: the daemon confines every
    access to its serial read/emit loop (see server.ml), which also keeps
    the hit/miss counters deterministic for a given request arrival
    order. *)

type t

val create : ?max_entries:int -> ?max_bytes:int -> unit -> t
(** Defaults: 4096 entries, 64 MiB of stored response bytes.
    @raise Invalid_argument if either bound is < 1. *)

val find : t -> string -> string option
(** Lookup by digest; a hit refreshes the entry's LRU position and counts
    as [hits], a miss as [misses]. *)

val add : t -> string -> string -> unit
(** Insert (or refresh) an entry, then evict least-recently-used entries
    until both bounds hold again.  A value larger than [max_bytes] on its
    own is inserted and immediately evicted (counted), leaving the cache
    unchanged. *)

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  entries : int;  (** currently cached *)
  bytes : int;  (** currently cached value bytes *)
}

val counters : t -> counters
val pp_counters : Format.formatter -> counters -> unit
