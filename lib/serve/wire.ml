(* Binary wire codec for the scheduling daemon.  See wire.mli for the
   contract and DESIGN.md for the byte-level schema tables.

   Everything here is pure: framing and payload codecs work on strings, so
   the fuzz oracle and the tests can drive them without a live daemon.
   Decoding is total — every malformed input maps to [error], and the
   encode/decode pair is a byte-level fixpoint (floats travel as IEEE-754
   bit patterns, never through a decimal printer). *)

let version = 1
let max_frame = 16 * 1024 * 1024

(* Payload kind bytes.  Requests are < 0x80, responses >= 0x80. *)
let kind_request = 0x01
let kind_stats = 0x02
let kind_response = 0x81

(* Response status bytes. *)
let st_schedule = 0
let st_infeasible = 1
let st_failure = 2
let st_stats = 3

type algo = Heuristic of Heuristics.name | Multistart | Exact

let algo_byte = function
  | Heuristic Heuristics.HEFT -> 0
  | Heuristic Heuristics.MinMin -> 1
  | Heuristic Heuristics.MemHEFT -> 2
  | Heuristic Heuristics.MemMinMin -> 3
  | Heuristic Heuristics.MaxMin -> 4
  | Heuristic Heuristics.Sufferage -> 5
  | Heuristic Heuristics.MemMaxMin -> 6
  | Heuristic Heuristics.MemSufferage -> 7
  | Multistart -> 8
  | Exact -> 9

let algo_of_byte = function
  | 0 -> Some (Heuristic Heuristics.HEFT)
  | 1 -> Some (Heuristic Heuristics.MinMin)
  | 2 -> Some (Heuristic Heuristics.MemHEFT)
  | 3 -> Some (Heuristic Heuristics.MemMinMin)
  | 4 -> Some (Heuristic Heuristics.MaxMin)
  | 5 -> Some (Heuristic Heuristics.Sufferage)
  | 6 -> Some (Heuristic Heuristics.MemMaxMin)
  | 7 -> Some (Heuristic Heuristics.MemSufferage)
  | 8 -> Some Multistart
  | 9 -> Some Exact
  | _ -> None

type request = {
  id : int64;
  algo : algo;
  seed : int64;
  restarts : int;
  node_limit : int;
  platform : Platform.t;
  dag : Dag.t;
}

type proof =
  | Heuristic_result
  | Exact_optimal of { nodes : int; bound : float }
  | Exact_budget of { nodes : int; bound : float }

type ok_body = {
  r_algo : algo;
  makespan : float;
  peak_blue : float;
  peak_red : float;
  proof : proof;
  starts : float array;
  procs : int array;
  comm_starts : float option array;
}

type stats = {
  requests : int;
  cache_hits : int;
  cache_misses : int;
  computed : int;
  errors : int;
}

type response_body =
  | Schedule of ok_body
  | Infeasible of { n_scheduled : int; reason : string }
  | Failure of { code : int; message : string }
  | Stats_reply of stats

type response = { rid : int64; body : response_body }
type message = Request of request | Stats_request of int64 | Response of response

type error =
  | Truncated
  | Oversized of int
  | Bad_version of int
  | Bad_kind of int
  | Malformed of string

let error_code = function
  | Truncated -> 1
  | Oversized _ -> 2
  | Bad_version _ -> 3
  | Bad_kind _ -> 4
  | Malformed _ -> 5

let err_compute = 6

let error_to_string = function
  | Truncated -> "truncated frame: stream ended inside a length prefix or payload"
  | Oversized n -> Printf.sprintf "oversized frame: declared payload of %d bytes exceeds the %d-byte bound" n max_frame
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d (this daemon speaks version %d)" v version
  | Bad_kind k -> Printf.sprintf "unknown frame kind 0x%02x" k
  | Malformed m -> "malformed payload: " ^ m

let error_body e = Failure { code = error_code e; message = error_to_string e }

(* ------------------------------------------------------------- writers --- *)

let w_u8 b v = Buffer.add_uint8 b (v land 0xFF)
let w_u16 b v = Buffer.add_uint16_be b (v land 0xFFFF)

let w_u32 b v =
  if v < 0 || v > 0xFFFF_FFFF then invalid_arg "Wire: value out of u32 range";
  Buffer.add_int32_be b (Int32.of_int v)

let w_i64 b v = Buffer.add_int64_be b v
let w_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)

let w_str b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

(* -------------------------------------------------------------- readers --- *)

exception Fail of string

type cursor = { buf : string; mutable pos : int }

let need c n = if c.pos + n > String.length c.buf then raise (Fail "unexpected end of payload")

let r_u8 c =
  need c 1;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u16 c =
  need c 2;
  let v = String.get_uint16_be c.buf c.pos in
  c.pos <- c.pos + 2;
  v

let r_u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_be c.buf c.pos) land 0xFFFF_FFFF in
  c.pos <- c.pos + 4;
  v

let r_i64 c =
  need c 8;
  let v = String.get_int64_be c.buf c.pos in
  c.pos <- c.pos + 8;
  v

let r_f64 c = Int64.float_of_bits (r_i64 c)

let r_str c =
  let n = r_u32 c in
  need c n;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

(* Guard a count against the bytes actually present (each element needs at
   least [per] bytes) before any allocation proportional to it. *)
let r_count c ~per ~what =
  let n = r_u32 c in
  if n * per > String.length c.buf - c.pos then
    raise (Fail (Printf.sprintf "%s count %d exceeds the remaining payload" what n));
  n

(* ----------------------------------------------------------- request --- *)

let encode_request_body b (r : request) =
  w_i64 b r.id;
  w_u8 b (algo_byte r.algo);
  w_i64 b r.seed;
  w_u32 b r.restarts;
  w_u32 b r.node_limit;
  let p = r.platform in
  w_u32 b (Platform.n_procs_of p Platform.Blue);
  w_u32 b (Platform.n_procs_of p Platform.Red);
  w_f64 b (Platform.capacity p Platform.Blue);
  w_f64 b (Platform.capacity p Platform.Red);
  let g = r.dag in
  w_u32 b (Dag.n_tasks g);
  Array.iter
    (fun (t : Dag.task) ->
      w_f64 b t.Dag.w_blue;
      w_f64 b t.Dag.w_red)
    (Dag.tasks g);
  w_u32 b (Dag.n_edges g);
  Array.iter
    (fun (e : Dag.edge) ->
      w_u32 b e.Dag.src;
      w_u32 b e.Dag.dst;
      w_f64 b e.Dag.size;
      w_f64 b e.Dag.comm)
    (Dag.edges g)

let decode_request_body c =
  let id = r_i64 c in
  let algo =
    let a = r_u8 c in
    match algo_of_byte a with
    | Some algo -> algo
    | None -> raise (Fail (Printf.sprintf "unknown algorithm byte %d" a))
  in
  let seed = r_i64 c in
  let restarts = r_u32 c in
  let node_limit = r_u32 c in
  let p_blue = r_u32 c in
  let p_red = r_u32 c in
  let m_blue = r_f64 c in
  let m_red = r_f64 c in
  let platform = Platform.make ~p_blue ~p_red ~m_blue ~m_red in
  let n_tasks = r_count c ~per:16 ~what:"task" in
  let builder = Dag.Builder.create () in
  for _ = 1 to n_tasks do
    let w_blue = r_f64 c in
    let w_red = r_f64 c in
    ignore (Dag.Builder.add_task builder ~w_blue ~w_red ())
  done;
  let n_edges = r_count c ~per:24 ~what:"edge" in
  for _ = 1 to n_edges do
    let src = r_u32 c in
    let dst = r_u32 c in
    let size = r_f64 c in
    let comm = r_f64 c in
    Dag.Builder.add_edge builder ~src ~dst ~size ~comm
  done;
  { id; algo; seed; restarts; node_limit; platform; dag = Dag.Builder.finalize builder }

(* ---------------------------------------------------------- response --- *)

let encode_ok_body b (ok : ok_body) =
  w_u8 b (algo_byte ok.r_algo);
  w_f64 b ok.makespan;
  w_f64 b ok.peak_blue;
  w_f64 b ok.peak_red;
  (match ok.proof with
  | Heuristic_result -> w_u8 b 0
  | Exact_optimal { nodes; bound } ->
    w_u8 b 1;
    w_i64 b (Int64.of_int nodes);
    w_f64 b bound
  | Exact_budget { nodes; bound } ->
    w_u8 b 2;
    w_i64 b (Int64.of_int nodes);
    w_f64 b bound);
  let n = Array.length ok.starts in
  if Array.length ok.procs <> n then invalid_arg "Wire: starts/procs length mismatch";
  w_u32 b n;
  for i = 0 to n - 1 do
    w_f64 b ok.starts.(i);
    w_u32 b ok.procs.(i)
  done;
  w_u32 b (Array.length ok.comm_starts);
  Array.iter
    (function
      | None -> w_u8 b 0
      | Some t ->
        w_u8 b 1;
        w_f64 b t)
    ok.comm_starts

let decode_ok_body c =
  let r_algo =
    let a = r_u8 c in
    match algo_of_byte a with
    | Some algo -> algo
    | None -> raise (Fail (Printf.sprintf "unknown algorithm byte %d" a))
  in
  let makespan = r_f64 c in
  let peak_blue = r_f64 c in
  let peak_red = r_f64 c in
  let proof =
    match r_u8 c with
    | 0 -> Heuristic_result
    | 1 ->
      let nodes = Int64.to_int (r_i64 c) in
      let bound = r_f64 c in
      Exact_optimal { nodes; bound }
    | 2 ->
      let nodes = Int64.to_int (r_i64 c) in
      let bound = r_f64 c in
      Exact_budget { nodes; bound }
    | k -> raise (Fail (Printf.sprintf "unknown proof byte %d" k))
  in
  let n_tasks = r_count c ~per:12 ~what:"task" in
  let starts = Array.make n_tasks 0. in
  let procs = Array.make n_tasks 0 in
  for i = 0 to n_tasks - 1 do
    starts.(i) <- r_f64 c;
    procs.(i) <- r_u32 c
  done;
  let n_edges = r_count c ~per:1 ~what:"edge" in
  let comm_starts =
    Array.init n_edges (fun _ ->
        match r_u8 c with
        | 0 -> None
        | 1 -> Some (r_f64 c)
        | k -> raise (Fail (Printf.sprintf "unknown transfer flag %d" k)))
  in
  { r_algo; makespan; peak_blue; peak_red; proof; starts; procs; comm_starts }

let encode_body body =
  let b = Buffer.create 256 in
  (match body with
  | Schedule ok ->
    w_u8 b st_schedule;
    encode_ok_body b ok
  | Infeasible { n_scheduled; reason } ->
    w_u8 b st_infeasible;
    w_u32 b n_scheduled;
    w_str b reason
  | Failure { code; message } ->
    w_u8 b st_failure;
    w_u16 b code;
    w_str b message
  | Stats_reply s ->
    w_u8 b st_stats;
    w_i64 b (Int64.of_int s.requests);
    w_i64 b (Int64.of_int s.cache_hits);
    w_i64 b (Int64.of_int s.cache_misses);
    w_i64 b (Int64.of_int s.computed);
    w_i64 b (Int64.of_int s.errors));
  Buffer.contents b

let decode_body c =
  match r_u8 c with
  | s when s = st_schedule -> Schedule (decode_ok_body c)
  | s when s = st_infeasible ->
    let n_scheduled = r_u32 c in
    let reason = r_str c in
    Infeasible { n_scheduled; reason }
  | s when s = st_failure ->
    let code = r_u16 c in
    let message = r_str c in
    Failure { code; message }
  | s when s = st_stats ->
    let requests = Int64.to_int (r_i64 c) in
    let cache_hits = Int64.to_int (r_i64 c) in
    let cache_misses = Int64.to_int (r_i64 c) in
    let computed = Int64.to_int (r_i64 c) in
    let errors = Int64.to_int (r_i64 c) in
    Stats_reply { requests; cache_hits; cache_misses; computed; errors }
  | s -> raise (Fail (Printf.sprintf "unknown response status byte %d" s))

(* ---------------------------------------------------------- messages --- *)

let response_payload ~rid body_bytes =
  let b = Buffer.create (String.length body_bytes + 10) in
  w_u8 b version;
  w_u8 b kind_response;
  w_i64 b rid;
  Buffer.add_string b body_bytes;
  Buffer.contents b

let encode_message = function
  | Request r ->
    let b = Buffer.create 256 in
    w_u8 b version;
    w_u8 b kind_request;
    encode_request_body b r;
    Buffer.contents b
  | Stats_request id ->
    let b = Buffer.create 10 in
    w_u8 b version;
    w_u8 b kind_stats;
    w_i64 b id;
    Buffer.contents b
  | Response r -> response_payload ~rid:r.rid (encode_body r.body)

exception Unknown_kind of int

let decode_message payload =
  let c = { buf = payload; pos = 0 } in
  try
    let v = r_u8 c in
    if v <> version then Error (Bad_version v)
    else begin
      let kind = r_u8 c in
      let msg =
        if kind = kind_request then Request (decode_request_body c)
        else if kind = kind_stats then Stats_request (r_i64 c)
        else if kind = kind_response then begin
          let rid = r_i64 c in
          Response { rid; body = decode_body c }
        end
        else raise (Unknown_kind kind)
      in
      if c.pos <> String.length payload then Error (Malformed "trailing bytes after the message body")
      else Ok msg
    end
  with
  | Unknown_kind k -> Error (Bad_kind k)
  | Fail m -> Error (Malformed m)
  | Invalid_argument m -> Error (Malformed m)

(* ----------------------------------------------------------- framing --- *)

let frame payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Wire.frame: payload exceeds max_frame";
  let b = Buffer.create (n + 4) in
  w_u32 b n;
  Buffer.add_string b payload;
  Buffer.contents b

let next_frame buf ~pos =
  let len = String.length buf in
  if pos >= len then Ok None
  else if len - pos < 4 then Error Truncated
  else begin
    let declared = Int32.to_int (String.get_int32_be buf pos) land 0xFFFF_FFFF in
    if declared > max_frame then Error (Oversized declared)
    else if pos + 4 + declared > len then Error Truncated
    else Ok (Some (String.sub buf (pos + 4) declared, pos + 4 + declared))
  end

let decode_stream buf =
  let rec go acc pos =
    match next_frame buf ~pos with
    | Error e -> Error e
    | Ok None -> Ok (List.rev acc)
    | Ok (Some (payload, next)) -> (
      match decode_message payload with
      | Error e -> Error e
      | Ok m -> go (m :: acc) next)
  in
  go [] 0

(* ------------------------------------------------- ids and cache keys --- *)

let peek_request_id payload =
  if String.length payload >= 10 then Some (String.get_int64_be payload 2) else None

let cache_key payload =
  let b = Bytes.of_string payload in
  if Bytes.length b >= 10 then Bytes.fill b 2 8 '\000';
  Digest.bytes b
