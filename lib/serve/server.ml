(* The serve loop.  See server.mli for the full contract.

   Shape: one serial thread owns the input fd, the output fd, the result
   cache and the pending-response queue; pool workers only ever run the
   pure [Serve_dispatch.compute_bytes].  That confinement is what makes the
   daemon deterministic — cache lookups happen in arrival order, responses
   are emitted in arrival order (head-of-line, via [Par.poll]), and no
   counter is ever racing a worker. *)

type entry =
  | Ready of string  (* response body bytes, good to write *)
  | Running of string option * string Par.future  (* cache key (if caching) + in-flight compute *)

type counters = {
  served : int;
  requests : int;
  computed : int;
  protocol_errors : int;
  max_inflight : int;
  cache : Serve_cache.counters option;
}

let pp_counters ppf c =
  Format.fprintf ppf "served=%d requests=%d computed=%d protocol_errors=%d max_inflight=%d" c.served
    c.requests c.computed c.protocol_errors c.max_inflight;
  match c.cache with
  | None -> Format.fprintf ppf " cache=off"
  | Some cc -> Format.fprintf ppf " cache: %a" Serve_cache.pp_counters cc

(* ------------------------------------------------------------- raw IO --- *)

(* The client closed its end while we still had frames for it (socket
   mode): abandon the connection, keep the daemon alive. *)
exception Client_gone

type read_result = Chunk of string | Eof | Short | Stopped

(* Read exactly [n] bytes.  EINTR (a signal interrupted the syscall) polls
   [stop]: an interrupt requested between frames or mid-read abandons the
   current partial frame and flows into the drain path. *)
let read_exact ~stop fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Chunk (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> if off = 0 then Eof else Short
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> if stop () then Stopped else go off
  in
  go 0

(* Write a whole frame.  EINTR retries unconditionally: a frame write is
   never abandoned halfway, so the output stream only ever contains
   complete frames (the shutdown contract). *)
let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> raise Client_gone
  in
  go 0

let read_frame ~stop fd =
  match read_exact ~stop fd 4 with
  | Eof -> `Eof
  | Stopped -> `Stopped
  | Short -> `Proto Wire.Truncated
  | Chunk prefix -> (
    let declared = Int32.to_int (String.get_int32_be prefix 0) land 0xFFFF_FFFF in
    if declared > Wire.max_frame then `Proto (Wire.Oversized declared)
    else
      match read_exact ~stop fd declared with
      | Chunk payload -> `Frame payload
      | Eof | Short -> `Proto Wire.Truncated
      | Stopped -> `Stopped)

(* --------------------------------------------------------------- serve --- *)

let serve ?pool ?cache ?(max_inflight = 64) ?(stop = fun () -> false) ~input ~output () =
  if max_inflight < 1 then invalid_arg "Server.serve: max_inflight must be >= 1";
  let pending : (int64 * entry) Queue.t = Queue.create () in
  (* Identical requests still in flight share one future (keyed by the
     same canonical digest as the cache), so a duplicate burst computes
     once and — crucially — a hit/miss verdict depends only on whether the
     key appeared earlier in the stream, never on completion timing.
     Confined to this loop like the cache; never iterated. *)
  let inflight : (string, string Par.future) Hashtbl.t = Hashtbl.create 16 in
  let served = ref 0 and requests = ref 0 and computed = ref 0 in
  let protocol_errors = ref 0 and hits = ref 0 and misses = ref 0 and high_water = ref 0 in
  let emit_front () =
    let id, entry = Queue.pop pending in
    let body =
      match entry with
      | Ready b -> b
      | Running (key, fut) ->
        let b = Par.await fut in
        (match (cache, key) with
        | Some c, Some k ->
          Serve_cache.add c k b;
          Hashtbl.remove inflight k
        | _ -> ());
        b
    in
    write_all output (Wire.frame (Wire.response_payload ~rid:id body));
    incr served
  in
  (* Stream every response whose turn has come: the head of the line is
     written when resolved, later completions wait for their position. *)
  let drain_ready () =
    let blocked = ref false in
    while (not !blocked) && not (Queue.is_empty pending) do
      match Queue.peek pending with
      | _, Ready _ -> emit_front ()
      | _, Running (_, fut) -> if Par.poll fut then emit_front () else blocked := true
    done
  in
  let push id entry =
    Queue.push (id, entry) pending;
    if Queue.length pending > !high_water then high_water := Queue.length pending;
    drain_ready ();
    (* Bound the responses buffered for in-order emission: block on the
       head of the line until the queue is back under the cap. *)
    while Queue.length pending >= max_inflight do
      emit_front ()
    done
  in
  let answer_error id e =
    incr protocol_errors;
    push id (Ready (Wire.encode_body (Wire.error_body e)))
  in
  let submit ~key req =
    incr computed;
    match pool with
    | Some pool ->
      let fut = Par.submit pool (fun () -> Serve_dispatch.compute_bytes req) in
      (match key with Some k -> Hashtbl.replace inflight k fut | None -> ());
      Running (key, fut)
    | None -> (
      let b = Serve_dispatch.compute_bytes req in
      match (cache, key) with
      | Some c, Some k ->
        Serve_cache.add c k b;
        Ready b
      | _ -> Ready b)
  in
  let handle payload =
    match Wire.decode_message payload with
    | Ok (Wire.Request req) -> (
      incr requests;
      match cache with
      | None ->
        incr misses;
        push req.Wire.id (submit ~key:None req)
      | Some c -> (
        let key = Wire.cache_key payload in
        match Serve_cache.find c key with
        | Some body ->
          incr hits;
          push req.Wire.id (Ready body)
        | None -> (
          match Hashtbl.find_opt inflight key with
          | Some fut ->
            (* A duplicate of a request still computing: share its future;
               the original pending entry owns the cache insertion. *)
            incr hits;
            push req.Wire.id (Running (None, fut))
          | None ->
            incr misses;
            push req.Wire.id (submit ~key:(Some key) req))))
    | Ok (Wire.Stats_request id) ->
      let s =
        {
          Wire.requests = !requests;
          cache_hits = !hits;
          cache_misses = !misses;
          computed = !computed;
          errors = !protocol_errors;
        }
      in
      push id (Ready (Wire.encode_body (Wire.Stats_reply s)))
    | Ok (Wire.Response { rid; _ }) ->
      answer_error rid (Wire.Malformed "unexpected response frame from client")
    | Error e ->
      let id = Option.value (Wire.peek_request_id payload) ~default:0L in
      answer_error id e
  in
  let rec loop () =
    if not (stop ()) then
      match read_frame ~stop input with
      | `Eof | `Stopped -> ()
      | `Frame payload ->
        handle payload;
        loop ()
      | `Proto e ->
        (* The byte stream cannot be resynchronised after a framing error:
           answer it, then flow into the drain path as if at EOF. *)
        answer_error 0L e
  in
  (try
     loop ();
     while not (Queue.is_empty pending) do
       emit_front ()
     done
   with Client_gone -> ());
  {
    served = !served;
    requests = !requests;
    computed = !computed;
    protocol_errors = !protocol_errors;
    max_inflight = !high_water;
    cache = Option.map Serve_cache.counters cache;
  }
