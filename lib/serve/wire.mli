(** Binary wire protocol of the scheduling daemon (the [serve] subcommand).

    Every message travels in a {e frame}: a 4-byte big-endian unsigned
    payload length followed by that many payload bytes.  A payload starts
    with a version byte and a kind byte; the remainder is the kind's body.
    All integers are big-endian; floats travel as their IEEE-754 bit
    patterns ({!Int64.bits_of_float}), so encode→decode→encode is a
    byte-level fixpoint — the property the [wire-roundtrip] fuzz oracle
    pins.  See DESIGN.md "The [lib/serve] scheduling daemon" for the full
    frame layout and schema tables.

    Decoding is {e total}: malformed input of any shape produces an
    {!error}, never an exception escape and never a hang.  The daemon maps
    these to structured error responses ({!error_body}). *)

val version : int
(** Protocol version carried in every payload (currently [1]). *)

val max_frame : int
(** Hard bound on a declared payload length (16 MiB).  A frame declaring
    more is rejected as {!Oversized} before any allocation. *)

(** {1 Requests} *)

type algo =
  | Heuristic of Heuristics.name  (** one deterministic pass, bytes 0–7 *)
  | Multistart  (** MemHEFT multistart; [restarts]/[seed] options apply *)
  | Exact  (** branch-and-bound; [node_limit] option applies *)

val algo_byte : algo -> int
val algo_of_byte : int -> algo option

type request = {
  id : int64;  (** echoed verbatim in the response; not part of the cache key *)
  algo : algo;
  seed : int64;  (** multistart tie-breaking seed; ignored by other algos *)
  restarts : int;  (** multistart passes beyond the deterministic one *)
  node_limit : int;  (** exact-solver node budget *)
  platform : Platform.t;
  dag : Dag.t;  (** task costs and edges only; task names do not travel *)
}

(** {1 Responses} *)

type proof =
  | Heuristic_result  (** no optimality information *)
  | Exact_optimal of { nodes : int; bound : float }  (** search exhausted *)
  | Exact_budget of { nodes : int; bound : float }
      (** node budget hit; [bound] is the certified lower bound *)

type ok_body = {
  r_algo : algo;
  makespan : float;
  peak_blue : float;
  peak_red : float;
  proof : proof;
  starts : float array;  (** indexed by task id *)
  procs : int array;
  comm_starts : float option array;  (** indexed by edge id; [None] = same-memory *)
}

type stats = {
  requests : int;  (** well-formed schedule requests received *)
  cache_hits : int;
  cache_misses : int;
  computed : int;  (** dispatcher invocations (= misses while caching) *)
  errors : int;  (** protocol errors answered with an error response *)
}

type response_body =
  | Schedule of ok_body
  | Infeasible of { n_scheduled : int; reason : string }
  | Failure of { code : int; message : string }
  | Stats_reply of stats

type response = { rid : int64; body : response_body }

type message =
  | Request of request
  | Stats_request of int64
  | Response of response

(** {1 Protocol errors} *)

type error =
  | Truncated  (** stream ended inside a length prefix or payload *)
  | Oversized of int  (** declared payload length above {!max_frame} *)
  | Bad_version of int
  | Bad_kind of int
  | Malformed of string  (** body fails to parse or validate *)

val error_code : error -> int
(** Stable numeric code carried by error responses: truncated = 1,
    oversized = 2, bad version = 3, bad kind = 4, malformed = 5. *)

val err_compute : int
(** Code 6: the request decoded cleanly but the computation itself failed
    (the per-request error path — the daemon stays up). *)

val error_to_string : error -> string

val error_body : error -> response_body
(** [Failure] response body carrying {!error_code} and the rendered text. *)

(** {1 Codec} *)

val encode_message : message -> string
(** Payload bytes (no length prefix). *)

val decode_message : string -> (message, error) result
(** Total inverse of {!encode_message} on a full payload: checks the
    version and kind bytes, bounds every read, validates the DAG/platform
    through their builders, and rejects trailing bytes. *)

val encode_body : response_body -> string
(** The response payload from the status byte onward — the unit the result
    cache stores, so one cached computation serves any request id. *)

val response_payload : rid:int64 -> string -> string
(** Reassemble a full response payload from an id and {!encode_body}
    bytes.  [encode_message (Response r) =
    response_payload ~rid:r.rid (encode_body r.body)]. *)

(** {1 Framing} *)

val frame : string -> string
(** Prefix a payload with its 4-byte length.
    @raise Invalid_argument on a payload longer than {!max_frame}. *)

val next_frame : string -> pos:int -> ((string * int) option, error) result
(** Pull one frame out of a byte buffer: [Ok None] at a clean end of
    buffer, [Ok (Some (payload, next_pos))] otherwise.  [Error Truncated]
    when the buffer ends mid-frame. *)

val decode_stream : string -> (message list, error) result
(** Decode a whole buffer of consecutive frames (first error wins). *)

val peek_request_id : string -> int64 option
(** Best-effort id extraction from a request-shaped payload, so malformed
    bodies can still be answered under the id the client sent. *)

val cache_key : string -> string
(** Canonical content digest of a request payload: the 16-byte MD5 of the
    payload with its id field zeroed.  Two requests differing only in id
    therefore share one cache entry. *)
