(* LRU result cache: Hashtbl for lookup, an intrusive doubly-linked list
   for recency order (most recent at the head).  No Hashtbl iteration
   anywhere, so hash-bucket order cannot reach any output. *)

type node = {
  key : string;
  mutable value : string;
  mutable prev : node option;  (* towards the head (more recent) *)
  mutable next : node option;  (* towards the tail (least recent) *)
}

type t = {
  max_entries : int;
  max_bytes : int;
  table : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable insertions : int;
}

let create ?(max_entries = 4096) ?(max_bytes = 64 * 1024 * 1024) () =
  if max_entries < 1 then invalid_arg "Serve_cache.create: max_entries must be >= 1";
  if max_bytes < 1 then invalid_arg "Serve_cache.create: max_bytes must be >= 1";
  {
    max_entries;
    max_bytes;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    insertions = 0;
  }

(* ------------------------------------------------------- list surgery --- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
    unlink t n;
    push_front t n

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table n.key;
    t.bytes <- t.bytes - String.length n.value;
    t.evictions <- t.evictions + 1

let enforce_bounds t =
  while Hashtbl.length t.table > t.max_entries || t.bytes > t.max_bytes do
    evict_tail t
  done

(* ---------------------------------------------------------------- api --- *)

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some n ->
    t.hits <- t.hits + 1;
    touch t n;
    Some n.value
  | None ->
    t.misses <- t.misses + 1;
    None

let add t key value =
  (match Hashtbl.find_opt t.table key with
  | Some n ->
    t.bytes <- t.bytes - String.length n.value + String.length value;
    n.value <- value;
    touch t n
  | None ->
    let n = { key; value; prev = None; next = None } in
    Hashtbl.replace t.table key n;
    push_front t n;
    t.bytes <- t.bytes + String.length value;
    t.insertions <- t.insertions + 1);
  enforce_bounds t

type counters = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  entries : int;
  bytes : int;
}

let counters (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    insertions = t.insertions;
    entries = Hashtbl.length t.table;
    bytes = t.bytes;
  }

let pp_counters ppf c =
  Format.fprintf ppf "hits=%d misses=%d evictions=%d insertions=%d entries=%d bytes=%d" c.hits
    c.misses c.evictions c.insertions c.entries c.bytes
