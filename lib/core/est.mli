(** Flat earliest-start-time evaluation over the CSR graph views.

    This module owns the §5.1 EST formulas of the scheduler ([resource_EST],
    [precedence_EST], [task_mem_EST], [comm_mem_EST]) evaluated over
    {!Dag.Csr} arrays: one cache-linear walk of a task's packed predecessor
    row with zero allocation in the loop (cross-edge ids go to a scratch
    array, aggregates to locals).  {!Sched_state} re-exports the option and
    estimate types below and embeds a {!ctx} that shares its mutable arrays;
    use the [Sched_state] API unless you are inside the scheduling core.

    Bit-identity contract: every float operation (operator choice, operand
    order, accumulation order) mirrors the historical list-walking code in
    [Sched_state] — kept verbatim as [Sched_state.Reference] — so optimised
    and reference paths agree to the last bit (pinned by golden digests). *)

type comm_mode =
  | Jit_per_edge
      (** transfers complete exactly at the task start; exact per-prefix
          memory check (default) *)
  | Jit_batched
      (** transfers complete exactly at the task start; the paper's
          aggregated [comm_mem_EST + C^(mu)] check *)
  | Eager  (** ablation: transfers start as soon as the producer finishes *)

type proc_policy =
  | Earliest_available  (** paper behaviour: [resource_EST = min avail] *)
  | Insertion  (** ablation: classic HEFT insertion into idle gaps *)

type options = {
  comm_mode : comm_mode;
  proc_policy : proc_policy;
}

val default_options : options

val eps : float
(** [1e-9], the scheduler's internal tie-breaking tolerance. *)

type estimate = {
  task : int;
  memory : Platform.memory;
  est : float;  (** earliest execution start time *)
  eft : float;  (** [est + W^(mu)] *)
  comm_batch : float;  (** [C^(mu)(i)]: max transfer time over cross parents *)
}

(** The evaluation context.  All non-scratch arrays are shared with the
    owning [Sched_state.t], which mutates them on commit; the context itself
    only writes its scratch and the [min_avail_*] caches.  Never share a
    context across domains. *)
type ctx = {
  options : options;
  pred_off : int array;
  pred_eid : int array;
  pred_src : int array;
  e_size : float array;
  e_comm : float array;
  w_blue : float array;
  w_red : float array;
  out_sz : float array;
  free_blue : Staircase.t;
  free_red : Staircase.t;
  aft : float array;
  mem_code : int array;  (** per task: [-1] unassigned, [0] Blue, [1] Red *)
  avail : float array;
  busy : (float * float) list array;
  procs_blue : int list;
  procs_red : int list;
  mutable min_avail_blue : float;
  mutable min_avail_red : float;
  cross_a : int array;
  cross_b : int array;
}

val make :
  options:options ->
  g:Dag.t ->
  free_blue:Staircase.t ->
  free_red:Staircase.t ->
  aft:float array ->
  mem_code:int array ->
  avail:float array ->
  busy:(float * float) list array ->
  procs_blue:int list ->
  procs_red:int list ->
  ctx
(** Builds a context around the given shared state ([min_avail_*] start at
    [0.], matching an empty schedule). *)

val code_of_mem : Platform.memory -> int
val free_of : ctx -> Platform.memory -> Staircase.t
val min_avail_of : ctx -> Platform.memory -> float

val resource_est : ctx -> Platform.memory -> lb:float -> w:float -> float
(** Earliest start on some processor of the memory, at or after [lb]. *)

val estimate_ready : ctx -> int -> Platform.memory -> estimate option
(** EST/EFT of a task on one memory, or [None] when it cannot fit.  The
    caller must guarantee the task is ready (all parents assigned). *)

val estimate_pair_ready : ctx -> int -> estimate option * estimate option
(** [(blue, red)] estimates from a single predecessor walk — bit-identical
    to two {!estimate_ready} calls at half the traversal cost. *)

val better_estimate : estimate option -> estimate option -> estimate option
(** Minimum-EFT choice (ties: earlier EST, then the first argument). *)
