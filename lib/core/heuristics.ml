type failure = {
  reason : string;
  n_scheduled : int;
}

type result = (Schedule.t, failure) Result.t

let fail state reason = Error { reason; n_scheduled = Sched_state.n_assigned state }

(* Algorithm 1 (MemHEFT).  The outer loop repeatedly scans the priority list
   and commits the first task that is ready and memory-feasible; a full scan
   without a commit means the graph cannot be processed within the bounds.
   Committed tasks are unlinked from the scan order (a doubly linked list
   over priority positions, sentinel at [n]), so later rounds only touch the
   tasks still to be placed instead of re-testing the whole list. *)
let memheft_run ?options ?rng ?ranks g platform =
  let state = Sched_state.create ?options g platform in
  let order = Rank.priority_list ?rng ?ranks g in
  let n = Dag.n_tasks g in
  let next = Array.init (n + 1) (fun k -> (k + 1) mod (n + 1)) in
  let prev = Array.init (n + 1) (fun k -> (k + n) mod (n + 1)) in
  let unlink k =
    next.(prev.(k)) <- next.(k);
    prev.(next.(k)) <- prev.(k)
  in
  let remaining = ref n in
  let rec round () =
    if !remaining = 0 then Ok (Sched_state.schedule state)
    else begin
      let committed = ref false in
      let k = ref next.(n) in
      while (not !committed) && !k <> n do
        let i = order.(!k) in
        if Sched_state.is_ready state i then begin
          match Sched_state.best_estimate state i with
          | Some e ->
            Sched_state.commit state e;
            unlink !k;
            decr remaining;
            committed := true
          | None -> ()
        end;
        k := next.(!k)
      done;
      if !committed then round ()
      else fail state "no ready task fits within the memory bounds"
    end
  in
  (state, round ())

let memheft ?options ?rng ?ranks g platform = snd (memheft_run ?options ?rng ?ranks g platform)

(* Algorithm 2 (MemMinMin).  Among ready tasks, schedule the one with the
   smallest earliest finish time; ties break by task id. *)
let memminmin_run ?options g platform =
  let state = Sched_state.create ?options g platform in
  let n = Dag.n_tasks g in
  let rec round () =
    if Sched_state.n_assigned state = n then Ok (Sched_state.schedule state)
    else begin
      let best = ref None in
      Sched_state.iter_ready state (fun i ->
          match Sched_state.best_estimate state i with
          | Some e -> (
            match !best with
            | Some b when b.Sched_state.eft <= e.Sched_state.eft -> ()
            | _ -> best := Some e)
          | None -> ());
      match !best with
      | Some e ->
        Sched_state.commit state e;
        round ()
      | None -> fail state "no ready task fits within the memory bounds"
    end
  in
  (state, round ())

let memminmin ?options g platform = snd (memminmin_run ?options g platform)

(* Pre-optimisation reference runners: the exact loops shipped before the
   hot-path overhaul — full priority-list rescans over committed tasks, O(n)
   ready-set rebuilds, and [Sched_state.Reference] estimates (three
   predecessor walks, linear staircase scans).  The A/B suite asserts the
   optimised runners above are bit-identical to these; [campaign/hotpath]
   times them as the baseline of the perf trajectory. *)
let memheft_reference ?options ?rng g platform =
  let state = Sched_state.create ?options g platform in
  let order = Rank.priority_list ?rng g in
  let n = Dag.n_tasks g in
  let done_ = Array.make n false in
  let remaining = ref n in
  let rec round () =
    if !remaining = 0 then Ok (Sched_state.schedule state)
    else begin
      let committed = ref false in
      let k = ref 0 in
      while (not !committed) && !k < n do
        let i = order.(!k) in
        if (not done_.(i)) && Sched_state.is_ready state i then begin
          match Sched_state.Reference.best_estimate state i with
          | Some e ->
            Sched_state.commit state e;
            done_.(i) <- true;
            decr remaining;
            committed := true
          | None -> ()
        end;
        incr k
      done;
      if !committed then round ()
      else fail state "no ready task fits within the memory bounds"
    end
  in
  round ()

let memminmin_reference ?options g platform =
  let state = Sched_state.create ?options g platform in
  let n = Dag.n_tasks g in
  let rec round () =
    if Sched_state.n_assigned state = n then Ok (Sched_state.schedule state)
    else begin
      let best = ref None in
      List.iter
        (fun i ->
          match Sched_state.Reference.best_estimate state i with
          | Some e -> (
            match !best with
            | Some b when b.Sched_state.eft <= e.Sched_state.eft -> ()
            | _ -> best := Some e)
          | None -> ())
        (Sched_state.Reference.ready_tasks state);
      match !best with
      | Some e ->
        Sched_state.commit state e;
        round ()
      | None -> fail state "no ready task fits within the memory bounds"
    end
  in
  round ()

(* Dynamic-selection variants from the family of Braun et al. (the paper's
   reference [4] for MinMin) with the same memory-aware machinery.  These
   are extensions beyond the paper, used by the ablation benches:
   - MaxMin: schedule the ready task with the LARGEST best EFT first (give
     long tasks a head start);
   - Sufferage: schedule the task that would suffer most from not getting
     its preferred memory (largest second-best minus best EFT). *)
let dynamic_run ?options ~select g platform =
  let state = Sched_state.create ?options g platform in
  let n = Dag.n_tasks g in
  let rec round () =
    if Sched_state.n_assigned state = n then Ok (Sched_state.schedule state)
    else begin
      let best = ref None in
      Sched_state.iter_ready state (fun i ->
          (* Both memories from a single predecessor walk; the winner is
             derived from the pair already in hand with the exact comparison
             best_estimate uses. *)
          let blue, red = Sched_state.estimate_pair state i in
          match Sched_state.better_estimate blue red with
          | Some e ->
            let score = select ~best:e ~blue ~red in
            (match !best with
            | Some (s, _) when s >= score -> ()
            | _ -> best := Some (score, e))
          | None -> ());
      match !best with
      | Some (_, e) ->
        Sched_state.commit state e;
        round ()
      | None -> fail state "no ready task fits within the memory bounds"
    end
  in
  (state, round ())

let memmaxmin ?options g platform =
  let select ~best ~blue:_ ~red:_ = best.Sched_state.eft in
  snd (dynamic_run ?options ~select g platform)

let memsufferage ?options g platform =
  let select ~best ~blue ~red =
    match (blue, red) with
    | Some a, Some b -> abs_float (a.Sched_state.eft -. b.Sched_state.eft)
    | Some _, None | None, Some _ ->
      (* only one memory fits: infinite sufferage, schedule it now *)
      infinity
    | None, None -> ignore best; neg_infinity
  in
  snd (dynamic_run ?options ~select g platform)

let unbounded_platform platform =
  Platform.with_bounds platform ~m_blue:infinity ~m_red:infinity

(* Memory-oblivious runs with the planner's accounting enabled: a capacity of
   the total file size can never constrain any decision (each memory holds at
   most every file at once, and a decision's requirement is disjoint from the
   files already resident), so the run takes exactly the unbounded decisions
   while the state tracks the planned peaks. *)
let never_binding_platform g platform =
  let cap = Float.max 1. (Dag.total_file_size g) in
  Platform.with_bounds platform ~m_blue:cap ~m_red:cap

let heft_measured ?options ?rng ?ranks g platform =
  match memheft_run ?options ?rng ?ranks g (never_binding_platform g platform) with
  | state, Ok s ->
    (s, (Sched_state.planned_peak state Platform.Blue, Sched_state.planned_peak state Platform.Red))
  | _, Error _ -> assert false

let minmin_measured ?options g platform =
  match memminmin_run ?options g (never_binding_platform g platform) with
  | state, Ok s ->
    (s, (Sched_state.planned_peak state Platform.Blue, Sched_state.planned_peak state Platform.Red))
  | _, Error _ -> assert false

let heft ?options ?rng ?ranks g platform =
  match memheft ?options ?rng ?ranks g (unbounded_platform platform) with
  | Ok s -> s
  | Error _ -> assert false (* unbounded memories: the scan always commits *)

let minmin ?options g platform =
  match memminmin ?options g (unbounded_platform platform) with
  | Ok s -> s
  | Error _ -> assert false

let maxmin ?options g platform =
  match memmaxmin ?options g (unbounded_platform platform) with
  | Ok s -> s
  | Error _ -> assert false

let sufferage ?options g platform =
  match memsufferage ?options g (unbounded_platform platform) with
  | Ok s -> s
  | Error _ -> assert false

type name = HEFT | MinMin | MemHEFT | MemMinMin | MaxMin | Sufferage | MemMaxMin | MemSufferage

let name_to_string = function
  | HEFT -> "HEFT"
  | MinMin -> "MinMin"
  | MemHEFT -> "MemHEFT"
  | MemMinMin -> "MemMinMin"
  | MaxMin -> "MaxMin"
  | Sufferage -> "Sufferage"
  | MemMaxMin -> "MemMaxMin"
  | MemSufferage -> "MemSufferage"

let all_names = [ HEFT; MinMin; MemHEFT; MemMinMin ]

let extension_names = [ MaxMin; Sufferage; MemMaxMin; MemSufferage ]

let is_memory_aware = function
  | HEFT | MinMin | MaxMin | Sufferage -> false
  | MemHEFT | MemMinMin | MemMaxMin | MemSufferage -> true

let run ?options ?rng ?ranks name g platform =
  match name with
  | HEFT -> Ok (heft ?options ?rng ?ranks g platform)
  | MinMin -> Ok (minmin ?options g platform)
  | MaxMin -> Ok (maxmin ?options g platform)
  | Sufferage -> Ok (sufferage ?options g platform)
  | MemHEFT -> memheft ?options ?rng ?ranks g platform
  | MemMinMin -> memminmin ?options g platform
  | MemMaxMin -> memmaxmin ?options g platform
  | MemSufferage -> memsufferage ?options g platform
