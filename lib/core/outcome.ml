type t = {
  heuristic : Heuristics.name;
  feasible : bool;
  makespan : float;
  peak_blue : float;
  peak_red : float;
  schedule : Schedule.t option;
  failure : string option;
}

let run ?options ?rng ?ranks heuristic g platform =
  (* The memory-oblivious baselines ignore the bounds; validate them against
     unbounded capacities and report their measured peaks. *)
  let check_platform =
    if Heuristics.is_memory_aware heuristic then platform
    else Platform.with_bounds platform ~m_blue:infinity ~m_red:infinity
  in
  match Heuristics.run ?options ?rng ?ranks heuristic g platform with
  | Ok s -> (
    match Validator.validate g check_platform s with
    | Ok report ->
      {
        heuristic;
        feasible = true;
        makespan = report.Validator.makespan;
        peak_blue = report.Validator.peak_blue;
        peak_red = report.Validator.peak_red;
        schedule = Some s;
        failure = None;
      }
    | Error errs ->
      failwith
        (Printf.sprintf "%s produced an invalid schedule:\n%s"
           (Heuristics.name_to_string heuristic)
           (String.concat "\n" errs)))
  | Error f ->
    {
      heuristic;
      feasible = false;
      makespan = nan;
      peak_blue = nan;
      peak_red = nan;
      schedule = None;
      failure = Some f.Heuristics.reason;
    }

let peak_max o = Float.max o.peak_blue o.peak_red

let pp ppf o =
  if o.feasible then
    Format.fprintf ppf "%s: makespan=%g peaks=(%g, %g)"
      (Heuristics.name_to_string o.heuristic)
      o.makespan o.peak_blue o.peak_red
  else
    Format.fprintf ppf "%s: infeasible (%s)"
      (Heuristics.name_to_string o.heuristic)
      (Option.value ~default:"?" o.failure)
