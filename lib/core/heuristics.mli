(** The four list-scheduling heuristics of the paper.

    {!memheft} is Algorithm 1: a static priority list by upward rank, each
    task assigned to the memory minimising its earliest finish time, with
    memory-infeasible tasks skipped until they fit.  {!memminmin} is
    Algorithm 2: the ready task with the globally smallest earliest finish
    time is scheduled next.  The memory-oblivious references HEFT and MinMin
    are the same algorithms run with unbounded memories (§6.2.1: "if the
    bounds exceed what HEFT uses, MemHEFT takes exactly the same
    decisions"). *)

type failure = {
  reason : string;
  n_scheduled : int;  (** tasks placed before the heuristic got stuck *)
}

type result = (Schedule.t, failure) Result.t

val memheft :
  ?options:Sched_state.options -> ?rng:Rng.t -> ?ranks:float array -> Dag.t -> Platform.t -> result
(** Memory-aware HEFT.  [rng] randomises rank tie-breaking as in the paper;
    omitted, ties break by task id (deterministic).  [ranks] supplies
    precomputed {!Rank.upward_ranks} (multi-restart callers compute them
    once — they depend only on the graph). *)

val memminmin : ?options:Sched_state.options -> Dag.t -> Platform.t -> result
(** Memory-aware MinMin. *)

val memheft_run :
  ?options:Sched_state.options ->
  ?rng:Rng.t ->
  ?ranks:float array ->
  Dag.t ->
  Platform.t ->
  Sched_state.t * result
(** {!memheft} together with its final scheduling state — callers that need
    the decision sequence read it back with {!Sched_state.commit_order}
    (the replay engine turns it into an offline plan). *)

val memminmin_run : ?options:Sched_state.options -> Dag.t -> Platform.t -> Sched_state.t * result
(** {!memminmin} with its final state, as {!memheft_run}. *)

val memheft_reference :
  ?options:Sched_state.options -> ?rng:Rng.t -> Dag.t -> Platform.t -> result
(** Pre-optimisation MemHEFT, kept verbatim (full priority-list rescans,
    {!Sched_state.Reference} estimates, linear staircase scans).
    Bit-identical to {!memheft} — asserted by the A/B test suite — and timed
    by the [campaign/hotpath] bench as the perf-trajectory baseline. *)

val memminmin_reference : ?options:Sched_state.options -> Dag.t -> Platform.t -> result
(** Pre-optimisation MemMinMin, kept verbatim (O(n) ready-set rebuilds,
    {!Sched_state.Reference} estimates).  Bit-identical to {!memminmin}. *)

val heft :
  ?options:Sched_state.options ->
  ?rng:Rng.t ->
  ?ranks:float array ->
  Dag.t ->
  Platform.t ->
  Schedule.t
(** Reference HEFT: ignores the platform's memory bounds (runs with unbounded
    memories).  Never fails. *)

val minmin : ?options:Sched_state.options -> Dag.t -> Platform.t -> Schedule.t
(** Reference MinMin, memory-oblivious. *)

val heft_measured :
  ?options:Sched_state.options ->
  ?rng:Rng.t ->
  ?ranks:float array ->
  Dag.t ->
  Platform.t ->
  Schedule.t * (float * float)
(** HEFT together with its planned memory peaks [(blue, red)] — the paper's
    [M^HEFT] quantities, measured with the planner's own accounting (see
    {!Sched_state.planned_peak}).  MemHEFT run with these values as bounds
    takes exactly the same decisions as HEFT (§6.2.1). *)

val minmin_measured :
  ?options:Sched_state.options -> Dag.t -> Platform.t -> Schedule.t * (float * float)
(** MinMin with its planned memory peaks. *)

val memmaxmin : ?options:Sched_state.options -> Dag.t -> Platform.t -> result
(** Extension (not in the paper): memory-aware MaxMin from the family of
    Braun et al. — the ready task with the largest best EFT goes first. *)

val memsufferage : ?options:Sched_state.options -> Dag.t -> Platform.t -> result
(** Extension: memory-aware Sufferage — the ready task that loses most by
    not getting its preferred memory (largest EFT gap between the two
    memories) goes first. *)

val maxmin : ?options:Sched_state.options -> Dag.t -> Platform.t -> Schedule.t
(** Memory-oblivious MaxMin. *)

val sufferage : ?options:Sched_state.options -> Dag.t -> Platform.t -> Schedule.t
(** Memory-oblivious Sufferage. *)

type name = HEFT | MinMin | MemHEFT | MemMinMin | MaxMin | Sufferage | MemMaxMin | MemSufferage

val name_to_string : name -> string

val all_names : name list
(** The four heuristics of the paper. *)

val extension_names : name list
(** The MaxMin/Sufferage family (extensions beyond the paper). *)

val is_memory_aware : name -> bool

val run :
  ?options:Sched_state.options ->
  ?rng:Rng.t ->
  ?ranks:float array ->
  name ->
  Dag.t ->
  Platform.t ->
  result
(** Dispatch by name; the memory-oblivious heuristics always return [Ok].
    [ranks] is forwarded to the rank-based heuristics (HEFT/MemHEFT) and
    ignored by the dynamic ones. *)
