type t = {
  best : Heuristics.result;
  n_feasible : int;
  n_runs : int;
  makespans : float list;
}

let memheft ?options ?pool ?(restarts = 8) ?(seed = 1) g platform =
  if restarts < 0 then invalid_arg "Multistart.memheft: negative restarts";
  let unbounded = Platform.with_bounds platform ~m_blue:infinity ~m_red:infinity in
  (* Upward ranks depend only on the graph: compute them once here instead
     of once per restart (each pass re-jitters the tie-breaking, not the
     ranks themselves). *)
  let ranks = Rank.upward_ranks g in
  (* Each pass owns an RNG derived from (seed + index) up front, so the runs
     are independent tasks and the outcome is the same for every jobs
     count; the fold below keeps the serial selection order. *)
  let passes =
    (fun () -> Heuristics.memheft ?options ~ranks g platform)
    :: List.init restarts (fun k () ->
           Heuristics.memheft ?options ~rng:(Rng.create (seed + k)) ~ranks g platform)
  in
  let runs =
    match pool with
    | None -> List.map (fun pass -> pass ()) passes
    | Some pool -> Par.parallel_map pool ~f:(fun pass -> pass ()) passes
  in
  let measure s = Schedule.makespan g unbounded s in
  let head = List.hd runs in
  let init =
    match head with Ok s -> (head, 1, [ measure s ]) | Error _ -> (head, 0, [])
  in
  let best, n_feasible, makespans =
    List.fold_left
      (fun (best, n, spans) r ->
        match (r, best) with
        | Ok s, Ok b ->
          let ms = measure s in
          ((if ms < measure b then r else best), n + 1, ms :: spans)
        | Ok s, Error _ -> (r, n + 1, measure s :: spans)
        | Error _, Ok _ -> (best, n, spans)
        | Error _, Error _ -> (r, n, spans))
      init (List.tl runs)
  in
  { best; n_feasible; n_runs = restarts + 1; makespans }

let improvement t =
  match t.makespans with
  | [] -> nan
  | spans -> Stats.minimum spans /. Stats.maximum spans
