(** Convenience wrapper: run a heuristic, validate the schedule against the
    full §3 oracle, and collect the quantities the experiments report. *)

type t = {
  heuristic : Heuristics.name;
  feasible : bool;
  makespan : float;  (** [nan] when infeasible *)
  peak_blue : float;
  peak_red : float;
  schedule : Schedule.t option;
  failure : string option;
}

val run :
  ?options:Sched_state.options ->
  ?rng:Rng.t ->
  ?ranks:float array ->
  Heuristics.name ->
  Dag.t ->
  Platform.t ->
  t
(** Any schedule returned by a heuristic is re-validated; a validation error
    is a bug and raises [Failure].  A heuristic's refusal (memory bounds too
    tight) yields [feasible = false]. *)

val peak_max : t -> float
(** [max peak_blue peak_red], the scalar memory footprint used to normalise
    the x-axis of Figures 10–13. *)

val pp : Format.formatter -> t -> unit
