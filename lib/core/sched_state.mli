(** Shared machinery of the list-scheduling heuristics (§5.1).

    A value of type {!t} is a partial schedule together with the bookkeeping
    the paper's memory-selection phase needs: per-memory [free_mem] staircase
    functions, per-processor availability, and per-task finish times.

    {!estimate} computes the earliest start time of a task on a memory as the
    maximum of the four components of §5.1 —
    [resource_EST], [precedence_EST], [task_mem_EST] and
    [comm_mem_EST + C^(mu)] — and {!commit} applies a decision, scheduling
    every incoming cross-memory transfer and updating the memory profiles.

    Transfers: when task [i] is assigned to memory [mu], the transfer of each
    cross edge [(j,i)] is emitted just-in-time, starting at
    [EST(i) - C(j,i)] so that it completes exactly at the task start; the
    recorded memory profile is exact.  Consequently [precedence_EST]
    (computed with the paper's per-edge formula [AFT(j) + C(j,i)]) also
    guarantees transfer validity.  Two variants of [comm_mem_EST] are
    provided: the paper's batched formula (total incoming mass over a window
    of the maximal transfer time) and an exact per-edge refinement that
    checks each prefix of the transfers sorted by decreasing transfer time.
    The per-edge variant is the default because it makes the planner's
    accounting coincide with the validator's reconstruction, which in turn
    guarantees the paper's §6.2.1 property that MemHEFT with bounds at least
    HEFT's measured peaks reproduces HEFT exactly.  The {!Eager} ablation
    instead fires each transfer as soon as its producer completes. *)

type comm_mode = Est.comm_mode =
  | Jit_per_edge
      (** transfers complete exactly at the task start; exact per-prefix
          memory check (default) *)
  | Jit_batched
      (** transfers complete exactly at the task start; the paper's
          aggregated [comm_mem_EST + C^(mu)] check *)
  | Eager  (** ablation: transfers start as soon as the producer finishes *)

type proc_policy = Est.proc_policy =
  | Earliest_available  (** paper behaviour: [resource_EST = min avail] *)
  | Insertion  (** ablation: classic HEFT insertion into idle gaps *)

type options = Est.options = {
  comm_mode : comm_mode;
  proc_policy : proc_policy;
}

val default_options : options
(** [{ comm_mode = Jit_per_edge; proc_policy = Earliest_available }]. *)

type t

val create : ?options:options -> Dag.t -> Platform.t -> t

val copy : t -> t
(** Deep copy (used by the exact branch-and-bound search). *)

val graph : t -> Dag.t
val platform : t -> Platform.t

val schedule : t -> Schedule.t
(** The underlying schedule; complete once every task is assigned. *)

val n_assigned : t -> int

val commit_order : t -> int list
(** Task ids in chronological commit order ([uncommit]ted decisions are
    dropped).  A heuristic's decision sequence, ready for replay. *)

val is_assigned : t -> int -> bool
val is_ready : t -> int -> bool
(** All parents assigned (the task itself not yet). *)

val ready_tasks : t -> int list
(** Ready tasks in ascending id order, built from the flat ready set (a
    sorted int array plus an insertion buffer maintained incrementally by
    {!commit}/{!uncommit} — O(width) to materialise the list, amortised O(1)
    per commit to maintain).  Hot loops should prefer {!iter_ready}. *)

val iter_ready : t -> (int -> unit) -> unit
(** Applies the function to every ready task in ascending id order without
    materialising a list.  The callback must not {!commit}/{!uncommit}. *)

val finish_time : t -> int -> float
(** [AFT(i)]; meaningful only once [i] is assigned. *)

val free_mem_final : t -> Platform.memory -> float
(** Free memory after all planned releases — capacity minus retained files. *)

val planned_peak : t -> Platform.memory -> float
(** The planner's own accounting of the memory the schedule needs: the
    maximum, over commits, of the worst future usage right after a commit's
    allocations and before its releases.  This is at least the event-trace
    peak (files whose consumers are not yet scheduled count as retained
    forever) and is the quantity for which the paper's §6.2.1 claim —
    "MemHEFT with bounds at least what HEFT uses takes exactly the same
    decisions as HEFT" — is a theorem.  Only tracked when the platform
    capacities are finite ([0.] otherwise). *)

type estimate = Est.estimate = {
  task : int;
  memory : Platform.memory;
  est : float;  (** earliest execution start time *)
  eft : float;  (** [est + W^(mu)] *)
  comm_batch : float;  (** [C^(mu)(i)]: max transfer time over cross parents *)
}

val estimate : t -> int -> Platform.memory -> estimate option
(** [None] when the task is not ready or cannot fit in the memory (the
    paper's [EFT = +infinity] case).  Evaluated by {!Est} over the flat CSR
    views: one allocation-free predecessor walk. *)

val estimate_pair : t -> int -> estimate option * estimate option
(** [(estimate t i Blue, estimate t i Red)] from a single predecessor walk —
    bit-identical to the two separate calls at half the traversal cost.
    [(None, None)] when the task is not ready. *)

val better_estimate : estimate option -> estimate option -> estimate option
(** The minimum-EFT comparison used by {!best_estimate} (ties: earlier EST,
    then the first argument).  Exposed so callers that already hold both
    per-memory estimates (the dynamic heuristics) can derive the winner
    without recomputing them. *)

val best_estimate : t -> int -> estimate option
(** Minimum-EFT estimate over both memories (ties: earlier EST, then blue).
    Equals [better_estimate (estimate t i Blue) (estimate t i Red)]. *)

val commit : t -> estimate -> unit
(** Applies a decision: picks the processor minimising idle time (or the
    best insertion slot), schedules incoming transfers, and updates both
    memory profiles.
    @raise Invalid_argument if the task is already assigned or the estimate
    is stale (recompute estimates after every commit). *)

(** {2 Commit/undo trail}

    Backtracking search support for the exact branch-and-bound: instead of
    deep-copying the whole state at every node (O(n + breakpoints) per node),
    the search mutates one state in place and rewinds.  With the trail
    enabled, every {!commit} pushes an undo record (captured before any
    mutation, so a trailing commit is bit-identical to a plain one) and
    {!uncommit} pops it, restoring the state bit-for-bit — including the
    staircases, which are rewound through their structural mutation journal
    (float arithmetic does not round-trip, so replaying negated deltas would
    not). *)

val set_trail : t -> bool -> unit
(** Enable or disable the undo trail (and the staircase journals).  Both
    directions clear any recorded history. *)

val uncommit : t -> unit
(** Rewinds the most recent {!commit} recorded on the trail.
    @raise Invalid_argument when the trail is empty. *)

val snapshot_schedule : t -> Schedule.t
(** A deep copy of the current schedule arrays only — what the exact search
    stores for an incumbent instead of a full {!copy}. *)

(** Pre-optimisation reference implementations, kept verbatim: O(n)
    ready-set rescans, three predecessor-list traversals per estimate, and
    linear staircase scans.  The A/B test suite asserts the optimised paths
    above are bit-identical to these; the [campaign/hotpath] bench times
    them as the baseline of the perf trajectory. *)
module Reference : sig
  val ready_tasks : t -> int list
  val estimate : t -> int -> Platform.memory -> estimate option
  val best_estimate : t -> int -> estimate option
end
