(** HEFT's task-prioritising phase (§5.1).

    The upward rank of a task is its mean computation cost plus the largest
    [rank(child) + C/2] over its children:
    [rank(i) = (W_blue(i) + W_red(i)) / 2 + max_j (rank(j) + C(i,j) / 2)]. *)

val upward_ranks : Dag.t -> float array

val priority_list : ?rng:Rng.t -> ?ranks:float array -> Dag.t -> int array
(** Tasks sorted by non-increasing upward rank.  Ties are broken randomly
    when [rng] is given (as in the paper), by increasing id otherwise.
    [ranks] supplies precomputed {!upward_ranks} — they only depend on the
    graph, so multi-restart callers compute them once and every pass reuses
    the same array instead of re-deriving it. *)
