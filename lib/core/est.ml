type comm_mode = Jit_per_edge | Jit_batched | Eager
type proc_policy = Earliest_available | Insertion

type options = {
  comm_mode : comm_mode;
  proc_policy : proc_policy;
}

let default_options = { comm_mode = Jit_per_edge; proc_policy = Earliest_available }
let eps = 1e-9

type estimate = {
  task : int;
  memory : Platform.memory;
  est : float;
  eft : float;
  comm_batch : float;
}

(* The evaluation context: flat read-only views of the graph plus the pieces
   of scheduling state the EST formulas read.  Every array is SHARED with the
   owning [Sched_state.t] (which mutates [aft]/[mem_code]/[avail]/[busy] and
   the staircases on commit); only the scratch arrays are private.  A context
   must therefore never be shared across domains — [Sched_state.copy] builds
   a fresh one around the copied arrays. *)
type ctx = {
  options : options;
  (* graph views (read-only, from Dag.Csr) *)
  pred_off : int array;
  pred_eid : int array;
  pred_src : int array;
  e_size : float array;
  e_comm : float array;
  w_blue : float array;
  w_red : float array;
  out_sz : float array;
  (* scheduling state, shared with the owning Sched_state.t *)
  free_blue : Staircase.t;
  free_red : Staircase.t;
  aft : float array;
  mem_code : int array;  (* -1 = unassigned, 0 = Blue, 1 = Red *)
  avail : float array;
  busy : (float * float) list array;
  procs_blue : int list;
  procs_red : int list;
  mutable min_avail_blue : float;
  mutable min_avail_red : float;
  (* scratch: cross-edge eids of the estimate in flight (sized max in-degree;
     two so the pair evaluation can partition one predecessor walk) *)
  cross_a : int array;
  cross_b : int array;
}

let code_of_mem = function Platform.Blue -> 0 | Platform.Red -> 1
let free_of c = function Platform.Blue -> c.free_blue | Platform.Red -> c.free_red
let procs_of_mem c = function Platform.Blue -> c.procs_blue | Platform.Red -> c.procs_red

let min_avail_of c = function
  | Platform.Blue -> c.min_avail_blue
  | Platform.Red -> c.min_avail_red

let make ~options ~g ~free_blue ~free_red ~aft ~mem_code ~avail ~busy ~procs_blue ~procs_red =
  let scratch = max 1 (Dag.Csr.max_in_degree g) in
  {
    options;
    pred_off = Dag.Csr.pred_off g;
    pred_eid = Dag.Csr.pred_eid g;
    pred_src = Dag.Csr.pred_src g;
    e_size = Dag.Csr.e_size g;
    e_comm = Dag.Csr.e_comm g;
    w_blue = Dag.Csr.w_blue g;
    w_red = Dag.Csr.w_red g;
    out_sz = Dag.Csr.out_sz g;
    free_blue;
    free_red;
    aft;
    mem_code;
    avail;
    busy;
    procs_blue;
    procs_red;
    min_avail_blue = 0.;
    min_avail_red = 0.;
    cross_a = Array.make scratch 0;
    cross_b = Array.make scratch 0;
  }

(* Earliest start on some processor of [mu], given a lower bound [lb] and the
   task duration [w]. *)
let resource_est c mu ~lb ~w =
  match c.options.proc_policy with
  | Earliest_available -> Float.max lb (min_avail_of c mu)
  | Insertion ->
    let earliest_on p =
      (* Scan the sorted busy intervals for the first gap of length [w]
         starting at or after [lb]. *)
      let rec scan start = function
        | [] -> start
        | (b0, b1) :: rest ->
          if start +. w <= b0 +. eps then start else scan (Float.max start b1) rest
      in
      scan lb c.busy.(p)
    in
    List.fold_left (fun acc p -> Float.min acc (earliest_on p)) infinity (procs_of_mem c mu)

(* In-place stable insertion sort of [cross.(0..k-1)] by decreasing transfer
   time.  Shifting only while strictly smaller keeps equal-comm edges in
   their original (predecessor) order — the permutation OCaml's stable
   [List.sort] produced here before the flat rewrite, so the prefix sums
   below accumulate in the identical order. *)
let sort_desc_comm c cross k =
  for idx = 1 to k - 1 do
    let e = cross.(idx) in
    let ce = c.e_comm.(e) in
    let j = ref (idx - 1) in
    while !j >= 0 && c.e_comm.(cross.(!j)) < ce do
      cross.(!j + 1) <- cross.(!j);
      decr j
    done;
    cross.(!j + 1) <- e
  done

(* Memory lower bound on the start time given the cross-edge aggregates, or
   None when the task cannot fit (the paper's EFT = +infinity case).
   [cross.(0..k-1)] holds the incoming cross-memory edge ids in predecessor
   order (mutated in place by the per-edge sort). *)
let memory_lb c mu ~cross ~k ~cross_in ~c_batch ~min_cross_aft ~task_level =
  let free = free_of c mu in
  match Staircase.earliest_suffix_ge free ~level:task_level ~from:0. with
  | None -> None
  | Some t_task -> (
    if Float.equal cross_in 0. then Some (t_task, c_batch)
    else begin
      match c.options.comm_mode with
      | Jit_batched -> (
        (* The paper's comm_mem_EST: the whole incoming batch must fit over a
           window of the maximal transfer time. *)
        match Staircase.earliest_suffix_ge free ~level:cross_in ~from:0. with
        | None -> None
        | Some t_comm -> Some (Float.max t_task (Fp.lb_plus t_comm c_batch), c_batch))
      | Jit_per_edge ->
        (* Exact accounting of just-in-time transfers: the file of the cross
           edge with the k-th largest transfer time is resident from
           [start - C_k] on, so at that instant only the k largest-C files
           are present.  For each prefix (sorted by decreasing C) the prefix
           mass must fit from [start - C_k] on. *)
        sort_desc_comm c cross k;
        let acc = ref 0. and lb = ref 0. in
        let ok = ref true and idx = ref 0 in
        while !ok && !idx < k do
          let e = cross.(!idx) in
          acc := !acc +. c.e_size.(e);
          (match Staircase.earliest_suffix_ge free ~level:!acc ~from:0. with
          | None -> ok := false
          | Some t_k ->
            (* Fp.lb_plus: the transfer later placed at [est -. C] must not
               land below the verified window start in float arithmetic. *)
            lb := Float.max !lb (Fp.lb_plus t_k c.e_comm.(e)));
          incr idx
        done;
        if !ok then Some (Float.max t_task !lb, c_batch) else None
      | Eager -> (
        (* Transfers fire at producer completion: the destination must be able
           to hold every incoming file from the earliest producer finish on. *)
        match Staircase.earliest_suffix_ge free ~level:cross_in ~from:0. with
        | Some t_comm when t_comm <= min_cross_aft +. eps -> Some (t_task, c_batch)
        | _ -> None)
    end)

let finish c i mu ~cross ~k ~cross_in ~c_batch ~min_cross_aft ~prec =
  let task_level = cross_in +. c.out_sz.(i) in
  match memory_lb c mu ~cross ~k ~cross_in ~c_batch ~min_cross_aft ~task_level with
  | None -> None
  | Some (mem_lb, c_batch) ->
    let lb = Float.max mem_lb prec in
    let w = match mu with Platform.Blue -> c.w_blue.(i) | Platform.Red -> c.w_red.(i) in
    let est = resource_est c mu ~lb ~w in
    Some { task = i; memory = mu; est; eft = est +. w; comm_batch = c_batch }

(* One cache-linear CSR walk of the predecessors, allocation-free: cross-edge
   ids land in a scratch array and the aggregates (total cross size, max
   transfer time, earliest cross producer finish, precedence EST) accumulate
   in locals.  Caller guarantees [i] is ready. *)
let estimate_ready c i mu =
  let code = code_of_mem mu in
  let cross = c.cross_a in
  let k = ref 0 in
  let cross_in = ref 0. and c_batch = ref 0. and min_cross_aft = ref infinity in
  let prec = ref 0. in
  for p = c.pred_off.(i) to c.pred_off.(i + 1) - 1 do
    let j = c.pred_src.(p) in
    let mj = c.mem_code.(j) in
    if mj = code then begin
      if c.aft.(j) > !prec then prec := c.aft.(j)
    end
    else if mj >= 0 then begin
      let e = c.pred_eid.(p) in
      cross.(!k) <- e;
      incr k;
      cross_in := !cross_in +. c.e_size.(e);
      if c.e_comm.(e) > !c_batch then c_batch := c.e_comm.(e);
      if c.aft.(j) < !min_cross_aft then min_cross_aft := c.aft.(j);
      let arrival = c.aft.(j) +. c.e_comm.(e) in
      if arrival > !prec then prec := arrival
    end
    else invalid_arg "Sched_state: parent not assigned"
  done;
  finish c i mu ~cross ~k:!k ~cross_in:!cross_in ~c_batch:!c_batch
    ~min_cross_aft:!min_cross_aft ~prec:!prec

(* Both memories from a single predecessor walk: a parent on blue feeds the
   blue precedence EST and the red cross set, and vice versa.  Each side's
   aggregates see the same predecessors in the same order as a standalone
   [estimate_ready] walk, so the pair is bit-identical to two walks. *)
let estimate_pair_ready c i =
  let ca = c.cross_a and cb = c.cross_b in
  let ka = ref 0 and kb = ref 0 in
  let in_a = ref 0. and in_b = ref 0. in
  let batch_a = ref 0. and batch_b = ref 0. in
  let aft_a = ref infinity and aft_b = ref infinity in
  let prec_a = ref 0. and prec_b = ref 0. in
  for p = c.pred_off.(i) to c.pred_off.(i + 1) - 1 do
    let j = c.pred_src.(p) in
    let mj = c.mem_code.(j) in
    if mj < 0 then invalid_arg "Sched_state: parent not assigned";
    let e = c.pred_eid.(p) in
    let aft_j = c.aft.(j) in
    let arrival = aft_j +. c.e_comm.(e) in
    if mj = 0 then begin
      (* parent on blue: same-memory for blue, cross for red *)
      if aft_j > !prec_a then prec_a := aft_j;
      cb.(!kb) <- e;
      incr kb;
      in_b := !in_b +. c.e_size.(e);
      if c.e_comm.(e) > !batch_b then batch_b := c.e_comm.(e);
      if aft_j < !aft_b then aft_b := aft_j;
      if arrival > !prec_b then prec_b := arrival
    end
    else begin
      if aft_j > !prec_b then prec_b := aft_j;
      ca.(!ka) <- e;
      incr ka;
      in_a := !in_a +. c.e_size.(e);
      if c.e_comm.(e) > !batch_a then batch_a := c.e_comm.(e);
      if aft_j < !aft_a then aft_a := aft_j;
      if arrival > !prec_a then prec_a := arrival
    end
  done;
  ( finish c i Platform.Blue ~cross:ca ~k:!ka ~cross_in:!in_a ~c_batch:!batch_a
      ~min_cross_aft:!aft_a ~prec:!prec_a,
    finish c i Platform.Red ~cross:cb ~k:!kb ~cross_in:!in_b ~c_batch:!batch_b
      ~min_cross_aft:!aft_b ~prec:!prec_b )

(* Minimum-EFT choice with the paper's tie-breaking (earlier EST, then the
   first argument — blue when called on (blue, red)). *)
let better_estimate a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some ea, Some eb ->
    if eb.eft +. eps < ea.eft then b
    else if ea.eft +. eps < eb.eft then a
    else if eb.est +. eps < ea.est then b
    else a
