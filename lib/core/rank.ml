let upward_ranks g =
  let wb = Dag.Csr.w_blue g and wr = Dag.Csr.w_red g in
  Paths.bottom_levels g
    ~node_weight:(fun i -> (wb.(i) +. wr.(i)) /. 2.)
    ~edge_weight:(fun e -> e.Dag.comm /. 2.)

let priority_list ?rng ?ranks g =
  let ranks = match ranks with Some r -> r | None -> upward_ranks g in
  let n = Dag.n_tasks g in
  let jitter =
    match rng with
    | Some rng -> Array.init n (fun _ -> Rng.float rng 1.)
    | None -> Array.make n 0.
  in
  let order = Array.init n Fun.id in
  (* Sort by decreasing rank; ties by jitter then id for determinism. *)
  Array.sort
    (fun a b ->
      let c = Float.compare ranks.(b) ranks.(a) in
      if c <> 0 then c
      else begin
        let c = Float.compare jitter.(a) jitter.(b) in
        if c <> 0 then c else compare a b
      end)
    order;
  order
