(** Multi-start wrapper around MemHEFT's random rank tie-breaking (§5.1:
    "tie-breaking is done randomly").  Running a handful of differently
    tie-broken passes and keeping the best feasible schedule is a cheap way
    to both improve makespan and to recover feasibility on instances where a
    single unlucky priority order deadlocks the memory. *)

type t = {
  best : Heuristics.result;
  n_feasible : int;  (** how many of the runs produced a schedule *)
  n_runs : int;
  makespans : float list;  (** of the feasible runs, unsorted *)
}

val memheft :
  ?options:Sched_state.options ->
  ?pool:Par.t ->
  ?restarts:int ->
  ?seed:int ->
  Dag.t ->
  Platform.t ->
  t
(** One deterministic pass plus [restarts] (default 8) randomly tie-broken
    passes; [best] carries the smallest-makespan schedule found, or the last
    failure when every pass was refused.  With [?pool] the passes run in
    parallel; each pass seeds its own RNG from [seed + index], so the
    result is identical for every jobs count. *)

val improvement : t -> float
(** Best over worst feasible makespan (1.0 = restarts changed nothing);
    [nan] without a feasible run. *)
