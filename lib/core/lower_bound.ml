let critical_path g = Dag.critical_path_min g

let work_area g platform =
  let total = ref 0. in
  for i = 0 to Dag.n_tasks g - 1 do
    total := !total +. Dag.w_min g i
  done;
  !total /. float_of_int (Platform.n_procs platform)

let makespan g platform = Float.max (critical_path g) (work_area g platform)

let min_memory g =
  let worst = ref 0. in
  for i = 0 to Dag.n_tasks g - 1 do
    worst := Float.max !worst (Dag.mem_req g i)
  done;
  !worst

let provably_infeasible g platform =
  let cap =
    Float.max (Platform.capacity platform Platform.Blue) (Platform.capacity platform Platform.Red)
  in
  cap < min_memory g
