type comm_mode = Est.comm_mode = Jit_per_edge | Jit_batched | Eager
type proc_policy = Est.proc_policy = Earliest_available | Insertion

type options = Est.options = {
  comm_mode : comm_mode;
  proc_policy : proc_policy;
}

let default_options = Est.default_options
let eps = Est.eps

(* One trail record per [commit], capturing every piece of state the commit
   overwrites (plus journal marks for the two staircases) so [uncommit] can
   restore the state bit-for-bit.  Shared structure (the previous [busy]
   list) is captured by reference: a persistent list that [commit] replaces
   rather than mutates.  The ready set needs no capture: it is derived from
   [assigned]/[pending_parents] (see below), both of which uncommit
   restores. *)
type undo = {
  u_task : int;
  u_proc : int;
  u_avail : float;
  u_busy : (float * float) list;
  u_min_blue : float;
  u_min_red : float;
  u_aft : float;
  u_start : float;
  u_sproc : int;
  mutable u_comms : (int * float option) list;
  u_planned_blue : float;
  u_planned_red : float;
  u_mark_blue : Staircase.mark;
  u_mark_red : Staircase.mark;
}

type t = {
  g : Dag.t;
  platform : Platform.t;
  options : options;
  est_ctx : Est.ctx;  (* shares every mutable array below *)
  free_blue : Staircase.t;
  free_red : Staircase.t;
  avail : float array;  (* per processor: finish time of its last task *)
  busy : (float * float) list array;
      (* per processor: sorted busy intervals.  Only maintained under the
         Insertion policy — nothing reads it under Earliest_available, and
         the sorted insert is quadratic on 10^5-task schedules. *)
  aft : float array;  (* actual finish time, per task *)
  assigned : bool array;
  mem_of : Platform.memory option array;
  mem_code : int array;  (* mem_of as -1/0/1, for the flat estimate walks *)
  pending_parents : int array;
  sched : Schedule.t;
  procs_blue : int list;  (* Platform.procs_of, cached: [estimate] is hot *)
  procs_red : int list;
  out_sizes : float array;  (* Dag.Csr.out_sz view, cached likewise *)
  (* Flat ready set.  A task is ready iff [not assigned && pending = 0]; the
     arrays below are a superset index over that predicate: [ready_arr]
     (sorted ascending, possibly holding stale entries) plus an unsorted
     insertion buffer, with [in_ready] flagging physical presence in either.
     Invariant: every ready task is present; [ready_stale] counts the
     present-but-not-ready entries so compaction can be amortised.  This
     replaces the sorted-list maintenance whose O(width) insert/remove per
     commit dominated large runs. *)
  mutable ready_arr : int array;
  mutable ready_len : int;
  ready_buf : int array;
  mutable ready_buf_len : int;
  in_ready : bool array;
  mutable ready_scratch : int array;
  mutable ready_stale : int;
  mutable assigned_count : int;
  mutable planned_blue : float;
  mutable planned_red : float;
  mutable trailing : bool;
  mutable trail : undo list;
  (* Committed task ids, most recent first; [commit_order] reverses it.  The
     replay engine uses it to recover the exact decision sequence of a plan. *)
  mutable commit_log : int list;
}

let create ?(options = default_options) g platform =
  let n = Dag.n_tasks g in
  let pending = Array.make n 0 in
  Array.iter (fun (e : Dag.edge) -> pending.(e.Dag.dst) <- pending.(e.Dag.dst) + 1) (Dag.edges g);
  let ready_arr = Array.make (max 1 n) 0 in
  let in_ready = Array.make n false in
  let ready_len = ref 0 in
  for i = 0 to n - 1 do
    if pending.(i) = 0 then begin
      ready_arr.(!ready_len) <- i;
      incr ready_len;
      in_ready.(i) <- true
    end
  done;
  let procs_blue = Platform.procs_of platform Platform.Blue in
  let procs_red = Platform.procs_of platform Platform.Red in
  let min_avail procs = List.fold_left (fun acc (_ : int) -> Float.min acc 0.) infinity procs in
  let free_blue = Staircase.create (Platform.capacity platform Platform.Blue) in
  let free_red = Staircase.create (Platform.capacity platform Platform.Red) in
  let avail = Array.make (Platform.n_procs platform) 0. in
  let busy = Array.make (Platform.n_procs platform) [] in
  let aft = Array.make n 0. in
  let mem_code = Array.make n (-1) in
  let est_ctx =
    Est.make ~options ~g ~free_blue ~free_red ~aft ~mem_code ~avail ~busy ~procs_blue ~procs_red
  in
  est_ctx.Est.min_avail_blue <- min_avail procs_blue;
  est_ctx.Est.min_avail_red <- min_avail procs_red;
  {
    g;
    platform;
    options;
    est_ctx;
    free_blue;
    free_red;
    avail;
    busy;
    aft;
    assigned = Array.make n false;
    mem_of = Array.make n None;
    mem_code;
    pending_parents = pending;
    sched = Schedule.create g;
    procs_blue;
    procs_red;
    out_sizes = Dag.Csr.out_sz g;
    ready_arr;
    ready_len = !ready_len;
    ready_buf = Array.make (max 1 n) 0;
    ready_buf_len = 0;
    in_ready;
    ready_scratch = Array.make (max 1 n) 0;
    ready_stale = 0;
    assigned_count = 0;
    planned_blue = 0.;
    planned_red = 0.;
    trailing = false;
    trail = [];
    commit_log = [];
  }

let copy t =
  let free_blue = Staircase.copy t.free_blue in
  let free_red = Staircase.copy t.free_red in
  let avail = Array.copy t.avail in
  let busy = Array.copy t.busy in
  let aft = Array.copy t.aft in
  let mem_code = Array.copy t.mem_code in
  let est_ctx =
    Est.make ~options:t.options ~g:t.g ~free_blue ~free_red ~aft ~mem_code ~avail ~busy
      ~procs_blue:t.procs_blue ~procs_red:t.procs_red
  in
  est_ctx.Est.min_avail_blue <- t.est_ctx.Est.min_avail_blue;
  est_ctx.Est.min_avail_red <- t.est_ctx.Est.min_avail_red;
  {
    t with
    est_ctx;
    free_blue;
    free_red;
    avail;
    busy;
    aft;
    assigned = Array.copy t.assigned;
    mem_of = Array.copy t.mem_of;
    mem_code;
    pending_parents = Array.copy t.pending_parents;
    sched =
      {
        Schedule.starts = Array.copy t.sched.Schedule.starts;
        procs = Array.copy t.sched.Schedule.procs;
        comm_starts = Array.copy t.sched.Schedule.comm_starts;
      };
    ready_arr = Array.copy t.ready_arr;
    ready_buf = Array.copy t.ready_buf;
    in_ready = Array.copy t.in_ready;
    ready_scratch = Array.make (Array.length t.ready_scratch) 0;
    trailing = false;
    trail = [];
  }

let set_trail t on =
  t.trailing <- on;
  t.trail <- [];
  Staircase.set_journal t.free_blue on;
  Staircase.set_journal t.free_red on

let snapshot_schedule t =
  {
    Schedule.starts = Array.copy t.sched.Schedule.starts;
    procs = Array.copy t.sched.Schedule.procs;
    comm_starts = Array.copy t.sched.Schedule.comm_starts;
  }

let graph t = t.g
let platform t = t.platform
let schedule t = t.sched
let n_assigned t = t.assigned_count
let commit_order t = List.rev t.commit_log
let is_assigned t i = t.assigned.(i)
let is_ready t i = (not t.assigned.(i)) && t.pending_parents.(i) = 0

(* --- flat ready set maintenance --- *)

(* Record [i] as present; caller has just made it ready (or is restoring
   readiness on uncommit).  If it is still physically present from an
   earlier membership it was counted stale — it no longer is. *)
let ready_add t i =
  if t.in_ready.(i) then t.ready_stale <- t.ready_stale - 1
  else begin
    t.ready_buf.(t.ready_buf_len) <- i;
    t.ready_buf_len <- t.ready_buf_len + 1;
    t.in_ready.(i) <- true
  end

(* [i] just stopped being ready (committed, or demoted by an uncommit of a
   parent).  Removal is purely logical — the entry stays until compaction. *)
let ready_drop t i = if t.in_ready.(i) then t.ready_stale <- t.ready_stale + 1

(* Fold the insertion buffer into the sorted array and drop every stale
   entry.  The buffer is insertion-sorted (it holds at most the handful of
   tasks that became ready since the last compaction); the merge is linear
   and reuses two preallocated arrays.  Cost is amortised O(1) per commit. *)
let compact_ready t =
  for idx = 1 to t.ready_buf_len - 1 do
    let v = t.ready_buf.(idx) in
    let j = ref (idx - 1) in
    while !j >= 0 && t.ready_buf.(!j) > v do
      t.ready_buf.(!j + 1) <- t.ready_buf.(!j);
      decr j
    done;
    t.ready_buf.(!j + 1) <- v
  done;
  let dst = t.ready_scratch in
  let d = ref 0 in
  let keep i =
    if is_ready t i then begin
      dst.(!d) <- i;
      incr d
    end
    else t.in_ready.(i) <- false
  in
  let a = ref 0 and b = ref 0 in
  (* [ready_arr] and [ready_buf] are disjoint (the [in_ready] guard), so a
     plain two-way merge keeps ascending order. *)
  while !a < t.ready_len && !b < t.ready_buf_len do
    if t.ready_arr.(!a) < t.ready_buf.(!b) then begin
      keep t.ready_arr.(!a);
      incr a
    end
    else begin
      keep t.ready_buf.(!b);
      incr b
    end
  done;
  while !a < t.ready_len do
    keep t.ready_arr.(!a);
    incr a
  done;
  while !b < t.ready_buf_len do
    keep t.ready_buf.(!b);
    incr b
  done;
  t.ready_scratch <- t.ready_arr;
  t.ready_arr <- dst;
  t.ready_len <- !d;
  t.ready_buf_len <- 0;
  t.ready_stale <- 0

let maybe_compact t =
  if t.ready_buf_len > 0 || t.ready_stale * 2 > t.ready_len then compact_ready t

let iter_ready t f =
  maybe_compact t;
  for k = 0 to t.ready_len - 1 do
    let i = t.ready_arr.(k) in
    if is_ready t i then f i
  done

let ready_tasks t =
  maybe_compact t;
  let acc = ref [] in
  for k = t.ready_len - 1 downto 0 do
    let i = t.ready_arr.(k) in
    if is_ready t i then acc := i :: !acc
  done;
  !acc

let finish_time t i = t.aft.(i)
let free_of t = function Platform.Blue -> t.free_blue | Platform.Red -> t.free_red
let free_mem_final t mu = Staircase.final_value (free_of t mu)

let planned_peak t = function
  | Platform.Blue -> t.planned_blue
  | Platform.Red -> t.planned_red

type estimate = Est.estimate = {
  task : int;
  memory : Platform.memory;
  est : float;
  eft : float;
  comm_batch : float;
}

let procs_of_mem t = function
  | Platform.Blue -> t.procs_blue
  | Platform.Red -> t.procs_red

let estimate t i mu = if not (is_ready t i) then None else Est.estimate_ready t.est_ctx i mu

let estimate_pair t i =
  if not (is_ready t i) then (None, None) else Est.estimate_pair_ready t.est_ctx i

let better_estimate = Est.better_estimate

let best_estimate t i =
  let blue, red = estimate_pair t i in
  better_estimate blue red

(* Processor of [mu] minimising idle time before a task starting at [start]
   with duration [w] (paper: maximise avail among procs available by then). *)
let select_proc t mu ~start ~w =
  match t.options.proc_policy with
  | Earliest_available ->
    let best = ref None in
    List.iter
      (fun p ->
        if t.avail.(p) <= start +. eps then begin
          match !best with
          | Some q when t.avail.(q) >= t.avail.(p) -> ()
          | _ -> best := Some p
        end)
      (procs_of_mem t mu);
    (match !best with
    | Some p -> p
    | None -> invalid_arg "Sched_state.commit: stale estimate (no processor available)")
  | Insertion ->
    let fits p =
      List.for_all
        (fun (b0, b1) -> b1 <= start +. eps || b0 +. eps >= start +. w)
        t.busy.(p)
    in
    (match List.find_opt fits (procs_of_mem t mu) with
    | Some p -> p
    | None -> invalid_arg "Sched_state.commit: stale estimate (no insertion slot)")

let insert_interval t p ~start ~finish =
  (match t.options.proc_policy with
  | Earliest_available ->
    (* Nothing reads [busy] under this policy; the sorted insert below is
       the one per-commit cost that is linear in the schedule length. *)
    ignore start
  | Insertion ->
    let rec ins = function
      | [] -> [ (start, finish) ]
      | (b0, b1) :: rest as l -> if start <= b0 then (start, finish) :: l else (b0, b1) :: ins rest
    in
    t.busy.(p) <- ins t.busy.(p));
  if finish > t.avail.(p) then begin
    t.avail.(p) <- finish;
    (* Refresh the cached per-memory minima with the same fold the
       pre-optimisation resource_EST ran on every estimate, so the cached
       value is bit-identical to what that fold would return now. *)
    let min_avail procs = List.fold_left (fun acc q -> Float.min acc t.avail.(q)) infinity procs in
    t.est_ctx.Est.min_avail_blue <- min_avail t.procs_blue;
    t.est_ctx.Est.min_avail_red <- min_avail t.procs_red
  end

let commit t e =
  let i = e.task and mu = e.memory in
  if t.assigned.(i) then invalid_arg "Sched_state.commit: task already assigned";
  if not (is_ready t i) then invalid_arg "Sched_state.commit: task not ready";
  let g = t.g in
  let code = Est.code_of_mem mu in
  let w = Platform.w g i mu in
  let start = e.est and eft = e.eft in
  let free_mu = free_of t mu and free_other = free_of t (Platform.other mu) in
  let proc = select_proc t mu ~start ~w in
  (* Capture the about-to-be-overwritten state before any mutation.  The
     record only reads; it cannot perturb the commit, so a trailing commit is
     bit-identical to a plain one. *)
  let undo =
    if not t.trailing then None
    else
      Some
        {
          u_task = i;
          u_proc = proc;
          u_avail = t.avail.(proc);
          u_busy = t.busy.(proc);
          u_min_blue = t.est_ctx.Est.min_avail_blue;
          u_min_red = t.est_ctx.Est.min_avail_red;
          u_aft = t.aft.(i);
          u_start = t.sched.Schedule.starts.(i);
          u_sproc = t.sched.Schedule.procs.(i);
          u_comms = [];
          u_planned_blue = t.planned_blue;
          u_planned_red = t.planned_red;
          u_mark_blue = Staircase.mark t.free_blue;
          u_mark_red = Staircase.mark t.free_red;
        }
  in
  insert_interval t proc ~start ~finish:eft;
  t.sched.Schedule.starts.(i) <- start;
  t.sched.Schedule.procs.(i) <- proc;
  (* Incoming cross-memory transfers, walked over the packed CSR predecessor
     row (ascending eid — the historical list order).  In both just-in-time
     modes each transfer starts at [start - C(j,i)] so that it completes
     exactly at the task start; the recorded memory profile is therefore
     exact: the file appears in the destination at the transfer start and
     leaves the source at the transfer end (= the task start). *)
  let pred_off = Dag.Csr.pred_off g and pred_eid = Dag.Csr.pred_eid g in
  let pred_src = Dag.Csr.pred_src g in
  let e_size = Dag.Csr.e_size g and e_comm = Dag.Csr.e_comm g in
  let deferred_frees = ref [] in
  for p = pred_off.(i) to pred_off.(i + 1) - 1 do
    let j = pred_src.(p) in
    let mj = t.mem_code.(j) in
    if mj < 0 then invalid_arg "Sched_state.commit: parent not assigned";
    if mj <> code then begin
      let eid = pred_eid.(p) in
      let tau =
        match t.options.comm_mode with
        | Jit_per_edge | Jit_batched -> start -. e_comm.(eid)
        | Eager -> t.aft.(j)
      in
      (match undo with
      | Some u -> u.u_comms <- (eid, t.sched.Schedule.comm_starts.(eid)) :: u.u_comms
      | None -> ());
      t.sched.Schedule.comm_starts.(eid) <- Some tau;
      Staircase.add_from free_mu tau (-.e_size.(eid));
      deferred_frees := (free_other, tau +. e_comm.(eid), e_size.(eid)) :: !deferred_frees
    end
  done;
  (* Output files are held from the task start... *)
  Staircase.add_from free_mu start (-.t.out_sizes.(i));
  (* All allocations of this decision are now recorded but none of its
     releases: the worst usage of the chosen memory at this instant is the
     planner's own accounting of what the heuristic needs — the quantity the
     paper normalises the memory axis by (and the one for which "MemHEFT
     with HEFT's bounds replays HEFT" holds exactly). *)
  let cap = Platform.capacity t.platform mu in
  if cap < infinity then begin
    let used = cap -. Staircase.min_from free_mu 0. in
    match mu with
    | Platform.Blue -> if used > t.planned_blue then t.planned_blue <- used
    | Platform.Red -> if used > t.planned_red then t.planned_red <- used
  end;
  (* ... the source copies disappear at the transfer ends, and all input
     files are released from this memory at the task end. *)
  List.iter (fun (stair, time, amount) -> Staircase.add_from stair time amount) !deferred_frees;
  Staircase.add_from free_mu eft (Dag.in_size g i);
  t.aft.(i) <- eft;
  t.assigned.(i) <- true;
  t.mem_of.(i) <- Some mu;
  t.mem_code.(i) <- code;
  t.assigned_count <- t.assigned_count + 1;
  ready_drop t i;
  List.iter
    (fun c ->
      t.pending_parents.(c) <- t.pending_parents.(c) - 1;
      if t.pending_parents.(c) = 0 then ready_add t c)
    (Dag.children g i);
  t.commit_log <- i :: t.commit_log;
  match undo with Some u -> t.trail <- u :: t.trail | None -> ()

let uncommit t =
  match t.trail with
  | [] -> invalid_arg "Sched_state.uncommit: empty trail (enable set_trail and commit first)"
  | u :: rest ->
    t.trail <- rest;
    let i = u.u_task in
    Staircase.undo_to t.free_blue u.u_mark_blue;
    Staircase.undo_to t.free_red u.u_mark_red;
    t.busy.(u.u_proc) <- u.u_busy;
    t.avail.(u.u_proc) <- u.u_avail;
    t.est_ctx.Est.min_avail_blue <- u.u_min_blue;
    t.est_ctx.Est.min_avail_red <- u.u_min_red;
    t.sched.Schedule.starts.(i) <- u.u_start;
    t.sched.Schedule.procs.(i) <- u.u_sproc;
    List.iter (fun (eid, prev) -> t.sched.Schedule.comm_starts.(eid) <- prev) u.u_comms;
    t.aft.(i) <- u.u_aft;
    t.assigned.(i) <- false;
    t.mem_of.(i) <- None;
    t.mem_code.(i) <- -1;
    t.assigned_count <- t.assigned_count - 1;
    t.planned_blue <- u.u_planned_blue;
    t.planned_red <- u.u_planned_red;
    List.iter
      (fun c ->
        if t.pending_parents.(c) = 0 then ready_drop t c;
        t.pending_parents.(c) <- t.pending_parents.(c) + 1)
      (Dag.children t.g i);
    (match t.commit_log with _ :: log -> t.commit_log <- log | [] -> ());
    ready_add t i

(* Pre-optimisation reference machinery, kept verbatim for the A/B
   bit-identity tests and the campaign/hotpath reference timings: three
   traversals of the predecessor list per estimate and O(breakpoints)
   staircase scans instead of the suffix-minimum binary search. *)
module Reference = struct
  let ready_tasks t =
    let acc = ref [] in
    for i = Dag.n_tasks t.g - 1 downto 0 do
      if is_ready t i then acc := i :: !acc
    done;
    !acc

  (* Verbatim pre-optimisation resource_EST: rebuilds the processor list and
     refolds the availability minimum on every call. *)
  let resource_est t mu ~lb ~w =
    match t.options.proc_policy with
    | Earliest_available ->
      let procs = Platform.procs_of t.platform mu in
      let min_avail = List.fold_left (fun acc p -> Float.min acc t.avail.(p)) infinity procs in
      Float.max lb min_avail
    | Insertion ->
      let earliest_on p =
        let rec scan start = function
          | [] -> start
          | (b0, b1) :: rest ->
            if start +. w <= b0 +. eps then start else scan (Float.max start b1) rest
        in
        scan lb t.busy.(p)
      in
      List.fold_left
        (fun acc p -> Float.min acc (earliest_on p))
        infinity
        (Platform.procs_of t.platform mu)

  let cross_edges t i mu =
    List.filter
      (fun (e : Dag.edge) ->
        match t.mem_of.(e.Dag.src) with Some m -> m <> mu | None -> false)
      (Dag.pred t.g i)

  let cross_summary t i mu =
    List.fold_left
      (fun (size, cmax, min_aft) (e : Dag.edge) ->
        (size +. e.Dag.size, Float.max cmax e.Dag.comm, Float.min min_aft t.aft.(e.Dag.src)))
      (0., 0., infinity) (cross_edges t i mu)

  let precedence_est t i mu =
    List.fold_left
      (fun acc (e : Dag.edge) ->
        let j = e.Dag.src in
        let arrival =
          match t.mem_of.(j) with
          | Some m when m = mu -> t.aft.(j)
          | Some _ -> t.aft.(j) +. e.Dag.comm
          | None -> invalid_arg "Sched_state: parent not assigned"
        in
        Float.max acc arrival)
      0. (Dag.pred t.g i)

  let memory_lb t i mu =
    let free = free_of t mu in
    let cross_in, c_batch, min_cross_aft = cross_summary t i mu in
    let task_level = cross_in +. Dag.out_size t.g i in
    match Staircase.earliest_suffix_ge_scan free ~level:task_level ~from:0. with
    | None -> None
    | Some t_task -> (
      if Float.equal cross_in 0. then Some (t_task, c_batch)
      else begin
        match t.options.comm_mode with
        | Jit_batched -> (
          match Staircase.earliest_suffix_ge_scan free ~level:cross_in ~from:0. with
          | None -> None
          | Some t_comm -> Some (Float.max t_task (Fp.lb_plus t_comm c_batch), c_batch))
        | Jit_per_edge ->
          let sorted =
            List.sort
              (fun (a : Dag.edge) (b : Dag.edge) -> Float.compare b.Dag.comm a.Dag.comm)
              (cross_edges t i mu)
          in
          let rec prefixes acc lb = function
            | [] -> Some lb
            | (e : Dag.edge) :: rest -> (
              let acc = acc +. e.Dag.size in
              match Staircase.earliest_suffix_ge_scan free ~level:acc ~from:0. with
              | None -> None
              | Some t_k -> prefixes acc (Float.max lb (Fp.lb_plus t_k e.Dag.comm)) rest)
          in
          Option.map (fun lb -> (Float.max t_task lb, c_batch)) (prefixes 0. 0. sorted)
        | Eager -> (
          match Staircase.earliest_suffix_ge_scan free ~level:cross_in ~from:0. with
          | Some t_comm when t_comm <= min_cross_aft +. eps -> Some (t_task, c_batch)
          | _ -> None)
      end)

  let estimate t i mu =
    if not (is_ready t i) then None
    else begin
      match memory_lb t i mu with
      | None -> None
      | Some (mem_lb, c_batch) ->
        let lb = Float.max mem_lb (precedence_est t i mu) in
        let w = Platform.w t.g i mu in
        let est = resource_est t mu ~lb ~w in
        Some { task = i; memory = mu; est; eft = est +. w; comm_batch = c_batch }
    end

  let best_estimate t i =
    better_estimate (estimate t i Platform.Blue) (estimate t i Platform.Red)
end
