type comm_mode = Jit_per_edge | Jit_batched | Eager
type proc_policy = Earliest_available | Insertion

type options = {
  comm_mode : comm_mode;
  proc_policy : proc_policy;
}

let default_options = { comm_mode = Jit_per_edge; proc_policy = Earliest_available }

let eps = 1e-9

(* One trail record per [commit], capturing every piece of state the commit
   overwrites (plus journal marks for the two staircases) so [uncommit] can
   restore the state bit-for-bit.  Shared structure (the previous [busy] list,
   the previous [ready] list) is captured by reference: both are persistent
   lists that [commit] replaces rather than mutates. *)
type undo = {
  u_task : int;
  u_proc : int;
  u_avail : float;
  u_busy : (float * float) list;
  u_min_blue : float;
  u_min_red : float;
  u_aft : float;
  u_start : float;
  u_sproc : int;
  mutable u_comms : (int * float option) list;
  u_ready : int list;
  u_planned_blue : float;
  u_planned_red : float;
  u_mark_blue : Staircase.mark;
  u_mark_red : Staircase.mark;
}

type t = {
  g : Dag.t;
  platform : Platform.t;
  options : options;
  free_blue : Staircase.t;
  free_red : Staircase.t;
  avail : float array;  (* per processor: finish time of its last task *)
  busy : (float * float) list array;  (* per processor: sorted busy intervals *)
  aft : float array;  (* actual finish time, per task *)
  assigned : bool array;
  mem_of : Platform.memory option array;
  pending_parents : int array;
  sched : Schedule.t;
  procs_blue : int list;  (* Platform.procs_of, cached: [estimate] is hot *)
  procs_red : int list;
  out_sizes : float array;  (* Dag.out_size per task, cached likewise *)
  mutable ready : int list;
      (* Invariant: ascending task ids, exactly the tasks with
         [not assigned && pending_parents = 0].  Maintained incrementally by
         [commit] so [ready_tasks] is O(1) instead of an O(n) rescan. *)
  mutable min_avail_blue : float;
  mutable min_avail_red : float;
      (* min over the memory's processors of [avail], refreshed by
         [insert_interval] (the only writer of [avail]) so the
         Earliest_available resource_EST is O(1) per estimate. *)
  mutable assigned_count : int;
  mutable planned_blue : float;
  mutable planned_red : float;
  mutable trailing : bool;
  mutable trail : undo list;
}

let create ?(options = default_options) g platform =
  let n = Dag.n_tasks g in
  let pending = Array.make n 0 in
  Array.iter (fun (e : Dag.edge) -> pending.(e.Dag.dst) <- pending.(e.Dag.dst) + 1) (Dag.edges g);
  let ready = ref [] in
  for i = n - 1 downto 0 do
    if pending.(i) = 0 then ready := i :: !ready
  done;
  let procs_blue = Platform.procs_of platform Platform.Blue in
  let procs_red = Platform.procs_of platform Platform.Red in
  let min_avail procs = List.fold_left (fun acc (_ : int) -> Float.min acc 0.) infinity procs in
  {
    g;
    platform;
    options;
    free_blue = Staircase.create (Platform.capacity platform Platform.Blue);
    free_red = Staircase.create (Platform.capacity platform Platform.Red);
    avail = Array.make (Platform.n_procs platform) 0.;
    busy = Array.make (Platform.n_procs platform) [];
    aft = Array.make n 0.;
    assigned = Array.make n false;
    mem_of = Array.make n None;
    pending_parents = pending;
    sched = Schedule.create g;
    procs_blue;
    procs_red;
    out_sizes = Array.init n (fun i -> Dag.out_size g i);
    ready = !ready;
    min_avail_blue = min_avail procs_blue;
    min_avail_red = min_avail procs_red;
    assigned_count = 0;
    planned_blue = 0.;
    planned_red = 0.;
    trailing = false;
    trail = [];
  }

let copy t =
  {
    t with
    free_blue = Staircase.copy t.free_blue;
    free_red = Staircase.copy t.free_red;
    avail = Array.copy t.avail;
    busy = Array.copy t.busy;
    aft = Array.copy t.aft;
    assigned = Array.copy t.assigned;
    mem_of = Array.copy t.mem_of;
    pending_parents = Array.copy t.pending_parents;
    sched =
      {
        Schedule.starts = Array.copy t.sched.Schedule.starts;
        procs = Array.copy t.sched.Schedule.procs;
        comm_starts = Array.copy t.sched.Schedule.comm_starts;
      };
    trailing = false;
    trail = [];
  }

let set_trail t on =
  t.trailing <- on;
  t.trail <- [];
  Staircase.set_journal t.free_blue on;
  Staircase.set_journal t.free_red on

let snapshot_schedule t =
  {
    Schedule.starts = Array.copy t.sched.Schedule.starts;
    procs = Array.copy t.sched.Schedule.procs;
    comm_starts = Array.copy t.sched.Schedule.comm_starts;
  }

let graph t = t.g
let platform t = t.platform
let schedule t = t.sched
let n_assigned t = t.assigned_count
let is_assigned t i = t.assigned.(i)
let is_ready t i = (not t.assigned.(i)) && t.pending_parents.(i) = 0
let ready_tasks t = t.ready

let rec remove_ready i = function
  | [] -> []
  | j :: tl -> if j = i then tl else j :: remove_ready i tl

let rec insert_ready i = function
  | [] -> [ i ]
  | j :: tl as l -> if i < j then i :: l else j :: insert_ready i tl

let finish_time t i = t.aft.(i)
let free_of t = function Platform.Blue -> t.free_blue | Platform.Red -> t.free_red
let free_mem_final t mu = Staircase.final_value (free_of t mu)

let planned_peak t = function
  | Platform.Blue -> t.planned_blue
  | Platform.Red -> t.planned_red

type estimate = {
  task : int;
  memory : Platform.memory;
  est : float;
  eft : float;
  comm_batch : float;
}

let procs_of_mem t = function
  | Platform.Blue -> t.procs_blue
  | Platform.Red -> t.procs_red

let min_avail_of t = function
  | Platform.Blue -> t.min_avail_blue
  | Platform.Red -> t.min_avail_red

(* Earliest start on some processor of [mu], given a lower bound [lb] and the
   task duration [w]. *)
let resource_est t mu ~lb ~w =
  match t.options.proc_policy with
  | Earliest_available -> max lb (min_avail_of t mu)
  | Insertion ->
    let earliest_on p =
      (* Scan the sorted busy intervals for the first gap of length [w]
         starting at or after [lb]. *)
      let rec scan start = function
        | [] -> start
        | (b0, b1) :: rest ->
          if start +. w <= b0 +. eps then start else scan (max start b1) rest
      in
      scan lb t.busy.(p)
    in
    List.fold_left (fun acc p -> min acc (earliest_on p)) infinity (procs_of_mem t mu)

(* Memory lower bound on the start time given the cross-edge aggregates, or
   None when the task cannot fit (the paper's EFT = +infinity case).  [cross]
   is the incoming cross-memory edge list in predecessor order. *)
let memory_lb t mu ~cross ~cross_in ~c_batch ~min_cross_aft ~task_level =
  let free = free_of t mu in
  match Staircase.earliest_suffix_ge free ~level:task_level ~from:0. with
  | None -> None
  | Some t_task -> (
    if Float.equal cross_in 0. then Some (t_task, c_batch)
    else begin
      match t.options.comm_mode with
      | Jit_batched -> (
        (* The paper's comm_mem_EST: the whole incoming batch must fit over a
           window of the maximal transfer time. *)
        match Staircase.earliest_suffix_ge free ~level:cross_in ~from:0. with
        | None -> None
        | Some t_comm -> Some (Float.max t_task (Fp.lb_plus t_comm c_batch), c_batch))
      | Jit_per_edge ->
        (* Exact accounting of just-in-time transfers: the file of the cross
           edge with the k-th largest transfer time is resident from
           [start - C_k] on, so at that instant only the k largest-C files
           are present.  For each prefix (sorted by decreasing C) the prefix
           mass must fit from [start - C_k] on. *)
        let sorted =
          List.sort (fun (a : Dag.edge) (b : Dag.edge) -> compare b.Dag.comm a.Dag.comm) cross
        in
        let rec prefixes acc lb = function
          | [] -> Some lb
          | (e : Dag.edge) :: rest -> (
            let acc = acc +. e.Dag.size in
            match Staircase.earliest_suffix_ge free ~level:acc ~from:0. with
            | None -> None
            | Some t_k ->
              (* Fp.lb_plus: the transfer later placed at [est -. C] must not
                 land below the verified window start in float arithmetic. *)
              prefixes acc (Float.max lb (Fp.lb_plus t_k e.Dag.comm)) rest)
        in
        Option.map (fun lb -> (max t_task lb, c_batch)) (prefixes 0. 0. sorted)
      | Eager -> (
        (* Transfers fire at producer completion: the destination must be able
           to hold every incoming file from the earliest producer finish on. *)
        match Staircase.earliest_suffix_ge free ~level:cross_in ~from:0. with
        | Some t_comm when t_comm <= min_cross_aft +. eps -> Some (t_task, c_batch)
        | _ -> None)
    end)

let estimate t i mu =
  if not (is_ready t i) then None
  else begin
    (* One traversal of the predecessor list computing the cross-edge list,
       the aggregates the EST formulas need (total size, max transfer time,
       earliest producer finish) and the precedence EST — previously three
       separate walks. *)
    let cross_rev = ref [] in
    let cross_in = ref 0. and c_batch = ref 0. and min_cross_aft = ref infinity in
    let prec = ref 0. in
    List.iter
      (fun (e : Dag.edge) ->
        let j = e.Dag.src in
        match t.mem_of.(j) with
        | Some m when m = mu -> if t.aft.(j) > !prec then prec := t.aft.(j)
        | Some _ ->
          cross_rev := e :: !cross_rev;
          cross_in := !cross_in +. e.Dag.size;
          if e.Dag.comm > !c_batch then c_batch := e.Dag.comm;
          if t.aft.(j) < !min_cross_aft then min_cross_aft := t.aft.(j);
          let arrival = t.aft.(j) +. e.Dag.comm in
          if arrival > !prec then prec := arrival
        | None -> invalid_arg "Sched_state: parent not assigned")
      (Dag.pred t.g i);
    let task_level = !cross_in +. t.out_sizes.(i) in
    match
      memory_lb t mu ~cross:(List.rev !cross_rev) ~cross_in:!cross_in ~c_batch:!c_batch
        ~min_cross_aft:!min_cross_aft ~task_level
    with
    | None -> None
    | Some (mem_lb, c_batch) ->
      let lb = max mem_lb !prec in
      let w = Platform.w t.g i mu in
      let est = resource_est t mu ~lb ~w in
      Some { task = i; memory = mu; est; eft = est +. w; comm_batch = c_batch }
  end

(* Minimum-EFT choice with the paper's tie-breaking (earlier EST, then the
   first argument — blue when called on (blue, red)).  Shared by
   [best_estimate] and the dynamic heuristics, which already hold both
   estimates and must not recompute them. *)
let better_estimate a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some ea, Some eb ->
    if eb.eft +. eps < ea.eft then b
    else if ea.eft +. eps < eb.eft then a
    else if eb.est +. eps < ea.est then b
    else a

let best_estimate t i = better_estimate (estimate t i Platform.Blue) (estimate t i Platform.Red)

(* Processor of [mu] minimising idle time before a task starting at [start]
   with duration [w] (paper: maximise avail among procs available by then). *)
let select_proc t mu ~start ~w =
  match t.options.proc_policy with
  | Earliest_available ->
    let best = ref None in
    List.iter
      (fun p ->
        if t.avail.(p) <= start +. eps then begin
          match !best with
          | Some q when t.avail.(q) >= t.avail.(p) -> ()
          | _ -> best := Some p
        end)
      (procs_of_mem t mu);
    (match !best with
    | Some p -> p
    | None -> invalid_arg "Sched_state.commit: stale estimate (no processor available)")
  | Insertion ->
    let fits p =
      List.for_all
        (fun (b0, b1) -> b1 <= start +. eps || b0 +. eps >= start +. w)
        t.busy.(p)
    in
    (match List.find_opt fits (procs_of_mem t mu) with
    | Some p -> p
    | None -> invalid_arg "Sched_state.commit: stale estimate (no insertion slot)")

let insert_interval t p ~start ~finish =
  let rec ins = function
    | [] -> [ (start, finish) ]
    | (b0, b1) :: rest as l -> if start <= b0 then (start, finish) :: l else (b0, b1) :: ins rest
  in
  t.busy.(p) <- ins t.busy.(p);
  if finish > t.avail.(p) then begin
    t.avail.(p) <- finish;
    (* Refresh the cached per-memory minima with the same fold the
       pre-optimisation resource_EST ran on every estimate, so the cached
       value is bit-identical to what that fold would return now. *)
    let min_avail procs = List.fold_left (fun acc q -> min acc t.avail.(q)) infinity procs in
    t.min_avail_blue <- min_avail t.procs_blue;
    t.min_avail_red <- min_avail t.procs_red
  end

let commit t e =
  let i = e.task and mu = e.memory in
  if t.assigned.(i) then invalid_arg "Sched_state.commit: task already assigned";
  if not (is_ready t i) then invalid_arg "Sched_state.commit: task not ready";
  let g = t.g in
  let w = Platform.w g i mu in
  let start = e.est and eft = e.eft in
  let free_mu = free_of t mu and free_other = free_of t (Platform.other mu) in
  let proc = select_proc t mu ~start ~w in
  (* Capture the about-to-be-overwritten state before any mutation.  The
     record only reads; it cannot perturb the commit, so a trailing commit is
     bit-identical to a plain one. *)
  let undo =
    if not t.trailing then None
    else
      Some
        {
          u_task = i;
          u_proc = proc;
          u_avail = t.avail.(proc);
          u_busy = t.busy.(proc);
          u_min_blue = t.min_avail_blue;
          u_min_red = t.min_avail_red;
          u_aft = t.aft.(i);
          u_start = t.sched.Schedule.starts.(i);
          u_sproc = t.sched.Schedule.procs.(i);
          u_comms = [];
          u_ready = t.ready;
          u_planned_blue = t.planned_blue;
          u_planned_red = t.planned_red;
          u_mark_blue = Staircase.mark t.free_blue;
          u_mark_red = Staircase.mark t.free_red;
        }
  in
  insert_interval t proc ~start ~finish:eft;
  t.sched.Schedule.starts.(i) <- start;
  t.sched.Schedule.procs.(i) <- proc;
  (* Incoming cross-memory transfers.  In both just-in-time modes each
     transfer starts at [start - C(j,i)] so that it completes exactly at the
     task start; the recorded memory profile is therefore exact: the file
     appears in the destination at the transfer start and leaves the source
     at the transfer end (= the task start). *)
  let deferred_frees = ref [] in
  List.iter
    (fun (edge : Dag.edge) ->
      let j = edge.Dag.src in
      match t.mem_of.(j) with
      | Some m when m <> mu ->
        let tau =
          match t.options.comm_mode with
          | Jit_per_edge | Jit_batched -> start -. edge.Dag.comm
          | Eager -> t.aft.(j)
        in
        (match undo with
        | Some u -> u.u_comms <- (edge.Dag.eid, t.sched.Schedule.comm_starts.(edge.Dag.eid)) :: u.u_comms
        | None -> ());
        t.sched.Schedule.comm_starts.(edge.Dag.eid) <- Some tau;
        Staircase.add_from free_mu tau (-.edge.Dag.size);
        deferred_frees := (free_other, tau +. edge.Dag.comm, edge.Dag.size) :: !deferred_frees
      | Some _ -> ()
      | None -> invalid_arg "Sched_state.commit: parent not assigned")
    (Dag.pred g i);
  (* Output files are held from the task start... *)
  Staircase.add_from free_mu start (-.t.out_sizes.(i));
  (* All allocations of this decision are now recorded but none of its
     releases: the worst usage of the chosen memory at this instant is the
     planner's own accounting of what the heuristic needs — the quantity the
     paper normalises the memory axis by (and the one for which "MemHEFT
     with HEFT's bounds replays HEFT" holds exactly). *)
  let cap = Platform.capacity t.platform mu in
  if cap < infinity then begin
    let used = cap -. Staircase.min_from free_mu 0. in
    match mu with
    | Platform.Blue -> if used > t.planned_blue then t.planned_blue <- used
    | Platform.Red -> if used > t.planned_red then t.planned_red <- used
  end;
  (* ... the source copies disappear at the transfer ends, and all input
     files are released from this memory at the task end. *)
  List.iter (fun (stair, time, amount) -> Staircase.add_from stair time amount) !deferred_frees;
  Staircase.add_from free_mu eft (Dag.in_size g i);
  t.aft.(i) <- eft;
  t.assigned.(i) <- true;
  t.mem_of.(i) <- Some mu;
  t.assigned_count <- t.assigned_count + 1;
  t.ready <- remove_ready i t.ready;
  List.iter
    (fun c ->
      t.pending_parents.(c) <- t.pending_parents.(c) - 1;
      if t.pending_parents.(c) = 0 then t.ready <- insert_ready c t.ready)
    (Dag.children g i);
  match undo with Some u -> t.trail <- u :: t.trail | None -> ()

let uncommit t =
  match t.trail with
  | [] -> invalid_arg "Sched_state.uncommit: empty trail (enable set_trail and commit first)"
  | u :: rest ->
    t.trail <- rest;
    let i = u.u_task in
    Staircase.undo_to t.free_blue u.u_mark_blue;
    Staircase.undo_to t.free_red u.u_mark_red;
    t.busy.(u.u_proc) <- u.u_busy;
    t.avail.(u.u_proc) <- u.u_avail;
    t.min_avail_blue <- u.u_min_blue;
    t.min_avail_red <- u.u_min_red;
    t.sched.Schedule.starts.(i) <- u.u_start;
    t.sched.Schedule.procs.(i) <- u.u_sproc;
    List.iter (fun (eid, prev) -> t.sched.Schedule.comm_starts.(eid) <- prev) u.u_comms;
    t.aft.(i) <- u.u_aft;
    t.assigned.(i) <- false;
    t.mem_of.(i) <- None;
    t.assigned_count <- t.assigned_count - 1;
    t.planned_blue <- u.u_planned_blue;
    t.planned_red <- u.u_planned_red;
    List.iter
      (fun c -> t.pending_parents.(c) <- t.pending_parents.(c) + 1)
      (Dag.children t.g i);
    t.ready <- u.u_ready

(* Pre-optimisation reference machinery, kept verbatim for the A/B
   bit-identity tests and the campaign/hotpath reference timings: three
   traversals of the predecessor list per estimate and O(breakpoints)
   staircase scans instead of the suffix-minimum binary search. *)
module Reference = struct
  let ready_tasks t =
    let acc = ref [] in
    for i = Dag.n_tasks t.g - 1 downto 0 do
      if is_ready t i then acc := i :: !acc
    done;
    !acc

  (* Verbatim pre-optimisation resource_EST: rebuilds the processor list and
     refolds the availability minimum on every call. *)
  let resource_est t mu ~lb ~w =
    match t.options.proc_policy with
    | Earliest_available ->
      let procs = Platform.procs_of t.platform mu in
      let min_avail = List.fold_left (fun acc p -> min acc t.avail.(p)) infinity procs in
      max lb min_avail
    | Insertion ->
      let earliest_on p =
        let rec scan start = function
          | [] -> start
          | (b0, b1) :: rest ->
            if start +. w <= b0 +. eps then start else scan (max start b1) rest
        in
        scan lb t.busy.(p)
      in
      List.fold_left
        (fun acc p -> min acc (earliest_on p))
        infinity
        (Platform.procs_of t.platform mu)

  let cross_edges t i mu =
    List.filter
      (fun (e : Dag.edge) ->
        match t.mem_of.(e.Dag.src) with Some m -> m <> mu | None -> false)
      (Dag.pred t.g i)

  let cross_summary t i mu =
    List.fold_left
      (fun (size, cmax, min_aft) (e : Dag.edge) ->
        (size +. e.Dag.size, max cmax e.Dag.comm, min min_aft t.aft.(e.Dag.src)))
      (0., 0., infinity) (cross_edges t i mu)

  let precedence_est t i mu =
    List.fold_left
      (fun acc (e : Dag.edge) ->
        let j = e.Dag.src in
        let arrival =
          match t.mem_of.(j) with
          | Some m when m = mu -> t.aft.(j)
          | Some _ -> t.aft.(j) +. e.Dag.comm
          | None -> invalid_arg "Sched_state: parent not assigned"
        in
        max acc arrival)
      0. (Dag.pred t.g i)

  let memory_lb t i mu =
    let free = free_of t mu in
    let cross_in, c_batch, min_cross_aft = cross_summary t i mu in
    let task_level = cross_in +. Dag.out_size t.g i in
    match Staircase.earliest_suffix_ge_scan free ~level:task_level ~from:0. with
    | None -> None
    | Some t_task -> (
      if Float.equal cross_in 0. then Some (t_task, c_batch)
      else begin
        match t.options.comm_mode with
        | Jit_batched -> (
          match Staircase.earliest_suffix_ge_scan free ~level:cross_in ~from:0. with
          | None -> None
          | Some t_comm -> Some (Float.max t_task (Fp.lb_plus t_comm c_batch), c_batch))
        | Jit_per_edge ->
          let sorted =
            List.sort
              (fun (a : Dag.edge) (b : Dag.edge) -> compare b.Dag.comm a.Dag.comm)
              (cross_edges t i mu)
          in
          let rec prefixes acc lb = function
            | [] -> Some lb
            | (e : Dag.edge) :: rest -> (
              let acc = acc +. e.Dag.size in
              match Staircase.earliest_suffix_ge_scan free ~level:acc ~from:0. with
              | None -> None
              | Some t_k -> prefixes acc (Float.max lb (Fp.lb_plus t_k e.Dag.comm)) rest)
          in
          Option.map (fun lb -> (max t_task lb, c_batch)) (prefixes 0. 0. sorted)
        | Eager -> (
          match Staircase.earliest_suffix_ge_scan free ~level:cross_in ~from:0. with
          | Some t_comm when t_comm <= min_cross_aft +. eps -> Some (t_task, c_batch)
          | _ -> None)
      end)

  let estimate t i mu =
    if not (is_ready t i) then None
    else begin
      match memory_lb t i mu with
      | None -> None
      | Some (mem_lb, c_batch) ->
        let lb = max mem_lb (precedence_est t i mu) in
        let w = Platform.w t.g i mu in
        let est = resource_est t mu ~lb ~w in
        Some { task = i; memory = mu; est; eft = est +. w; comm_batch = c_batch }
    end

  let best_estimate t i =
    better_estimate (estimate t i Platform.Blue) (estimate t i Platform.Red)
end
