let relay_prefix = "bcast_"

let linearize ?(max_fanout = 1) g =
  if max_fanout < 1 then invalid_arg "Broadcast.linearize: max_fanout must be >= 1";
  let b = Dag.Builder.create () in
  (* Original tasks keep their ids because they are added first, in order. *)
  Array.iter
    (fun (t : Dag.task) ->
      ignore (Dag.Builder.add_task b ~name:t.Dag.name ~w_blue:t.Dag.w_blue ~w_red:t.Dag.w_red ()))
    (Dag.tasks g);
  for i = 0 to Dag.n_tasks g - 1 do
    let out = Dag.succ g i in
    let d = List.length out in
    if d <= max_fanout then
      List.iter (fun (e : Dag.edge) -> Dag.Builder.add_edge b ~src:i ~dst:e.Dag.dst ~size:e.Dag.size ~comm:e.Dag.comm) out
    else begin
      let sizes_eq =
        match out with
        | [] -> true
        | e0 :: rest ->
          List.for_all
            (fun (e : Dag.edge) ->
              Float.equal e.Dag.size e0.Dag.size && Float.equal e.Dag.comm e0.Dag.comm)
            rest
      in
      if not sizes_eq then
        invalid_arg
          (Printf.sprintf "Broadcast.linearize: task %s has heterogeneous outgoing edges"
             (Dag.task g i).Dag.name);
      let size = (List.hd out).Dag.size and comm = (List.hd out).Dag.comm in
      let consumers = List.map (fun (e : Dag.edge) -> e.Dag.dst) out in
      (* Producer -> relay_1 -> relay_2 -> ... ; relay_k also feeds consumer
         k; the last relay feeds the final two consumers. *)
      let rec pipeline src k = function
        | [] -> ()
        | [ c ] -> Dag.Builder.add_edge b ~src ~dst:c ~size ~comm
        | [ c1; c2 ] ->
          Dag.Builder.add_edge b ~src ~dst:c1 ~size ~comm;
          Dag.Builder.add_edge b ~src ~dst:c2 ~size ~comm
        | c :: rest ->
          Dag.Builder.add_edge b ~src ~dst:c ~size ~comm;
          let relay =
            Dag.Builder.add_task b
              ~name:(Printf.sprintf "%s%s_%d" relay_prefix (Dag.task g i).Dag.name k)
              ~w_blue:0. ~w_red:0. ()
          in
          Dag.Builder.add_edge b ~src ~dst:relay ~size ~comm;
          pipeline relay (k + 1) rest
      in
      (* First hop: producer feeds the first relay (or directly its consumers
         when d is small). *)
      (match consumers with
      | [] -> ()
      | [ c ] -> Dag.Builder.add_edge b ~src:i ~dst:c ~size ~comm
      | consumers ->
        let relay0 =
          Dag.Builder.add_task b
            ~name:(Printf.sprintf "%s%s_0" relay_prefix (Dag.task g i).Dag.name)
            ~w_blue:0. ~w_red:0. ()
        in
        Dag.Builder.add_edge b ~src:i ~dst:relay0 ~size ~comm;
        pipeline relay0 1 consumers)
    end
  done;
  Dag.Builder.finalize b

let is_fictitious g i =
  let name = (Dag.task g i).Dag.name in
  String.length name >= String.length relay_prefix
  && String.sub name 0 (String.length relay_prefix) = relay_prefix

let n_fictitious g =
  let count = ref 0 in
  for i = 0 to Dag.n_tasks g - 1 do
    if is_fictitious g i then incr count
  done;
  !count
