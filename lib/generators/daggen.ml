type params = {
  size : int;
  width : float;
  density : float;
  jumps : int;
  w_range : int * int;
  c_range : int * int;
  f_range : int * int;
}

let small_rand_params =
  {
    size = 30;
    width = 0.3;
    density = 0.5;
    jumps = 5;
    w_range = (1, 20);
    c_range = (1, 10);
    f_range = (1, 10);
  }

let large_rand_params =
  {
    size = 1000;
    width = 0.3;
    density = 0.5;
    jumps = 5;
    w_range = (1, 100);
    c_range = (1, 100);
    f_range = (1, 100);
  }

let check p =
  if p.size <= 0 then invalid_arg "Daggen: size must be positive";
  if p.width <= 0. || p.width > 1. then invalid_arg "Daggen: width must be in (0,1]";
  if p.density < 0. || p.density > 1. then invalid_arg "Daggen: density must be in [0,1]";
  if p.jumps < 1 then invalid_arg "Daggen: jumps must be >= 1"

(* Level widths: perturbed around [size ** width] -- the width knob acts as
   an exponent of parallelism (0 -> chain, 1 -> fork-join), one documented
   reading of DAGGEN's "fat" parameter.  Calibrated jointly against the
   feasibility structure of Figures 10 and 12; see DESIGN.md. *)
let levels rng p =
  check p;
  let target = Float.max 1. (Float.pow (float_of_int p.size) p.width) in
  let rec build remaining acc =
    if remaining = 0 then List.rev acc
    else begin
      let noise = 0.5 +. Rng.float rng 1.0 in
      let w = max 1 (min remaining (int_of_float (Float.round (noise *. target)))) in
      build (remaining - w) (w :: acc)
    end
  in
  build p.size []

let generate rng p =
  check p;
  let widths = levels rng p in
  let b = Dag.Builder.create () in
  let draw (lo, hi) = float_of_int (Rng.int_incl rng lo hi) in
  (* Create tasks level by level, remembering the ids of each level. *)
  let level_ids =
    List.mapi
      (fun l w ->
        Array.init w (fun k ->
            let name = Printf.sprintf "n%d_%d" l k in
            Dag.Builder.add_task b ~name ~w_blue:(draw p.w_range) ~w_red:(draw p.w_range) ()))
      widths
  in
  let level_arr = Array.of_list level_ids in
  let nlevels = Array.length level_arr in
  let add_edge src dst =
    (* Builder rejects duplicates; the caller avoids them, but jump edges may
       collide with structural ones, so filter here. *)
    try Dag.Builder.add_edge b ~src ~dst ~size:(draw p.f_range) ~comm:(draw p.c_range)
    with Invalid_argument _ -> ()
  in
  (* Structural edges between consecutive levels: each task picks between
     one and [density * sqrt |previous level|] parents.  The square root
     keeps the in-degree of large graphs in the single digits, as in the
     original tool — a linear rule makes 1000-task instances so dense that
     file retention deadlocks every memory-bounded schedule, contradicting
     the success rates of the paper's Figure 12. *)
  for l = 1 to nlevels - 1 do
    let prev = level_arr.(l - 1) in
    let np = Array.length prev in
    Array.iter
      (fun dst ->
        let upper =
          max 1 (int_of_float (Float.round (p.density *. sqrt (float_of_int np) *. 2.)))
        in
        let k = Rng.int_incl rng 1 (min np upper) in
        List.iter (fun idx -> add_edge prev.(idx) dst) (Rng.sample_distinct rng ~k ~n:np))
      level_arr.(l)
  done;
  (* Jump edges: each task gets one forward edge skipping at least one level
     with probability [density], reaching at most [jumps] levels ahead. *)
  if p.jumps > 1 then
    for l = 0 to nlevels - 3 do
      Array.iter
        (fun src ->
          if Rng.float rng 1. < p.density then begin
            let lmax = min (nlevels - 1) (l + p.jumps) in
            if lmax >= l + 2 then begin
              let l' = Rng.int_incl rng (l + 2) lmax in
              add_edge src (Rng.choose rng level_arr.(l'))
            end
          end)
        level_arr.(l)
    done;
  Dag.Builder.finalize b
