type baseline = {
  dag : Dag.t;
  ranks : float array;
  heft_makespan : float;
  heft_peak : float;
  minmin_makespan : float;
  minmin_peak : float;
  lower_bound : float;
}

let baseline platform dag =
  (* Peaks are the planner's accounting (Sched_state.planned_peak): the
     quantity for which "bounds at least HEFT's usage reproduce HEFT".
     Upward ranks depend only on the DAG: computed once here, reused by the
     baseline HEFT run and every sweep point over this instance. *)
  let ranks = Rank.upward_ranks dag in
  let heft_schedule, (heft_blue, heft_red) = Heuristics.heft_measured ~ranks dag platform in
  let minmin_schedule, (minmin_blue, minmin_red) = Heuristics.minmin_measured dag platform in
  let unbounded = Platform.with_bounds platform ~m_blue:infinity ~m_red:infinity in
  {
    dag;
    ranks;
    heft_makespan = (Validator.validate_exn dag unbounded heft_schedule).Validator.makespan;
    heft_peak = Float.max heft_blue heft_red;
    minmin_makespan = (Validator.validate_exn dag unbounded minmin_schedule).Validator.makespan;
    minmin_peak = Float.max minmin_blue minmin_red;
    lower_bound = Lower_bound.makespan dag platform;
  }

let baselines ?pool platform dags =
  match pool with
  | None -> List.map (baseline platform) dags
  | Some pool -> Par.parallel_map pool ~f:(baseline platform) dags

type measurement = {
  feasible : bool;
  makespan : float;
  ratio : float;
}

let run_bounded ?options platform b heuristic ~bound =
  let p = Platform.with_bounds platform ~m_blue:bound ~m_red:bound in
  let o = Outcome.run ?options ~ranks:b.ranks heuristic b.dag p in
  if o.Outcome.feasible then
    { feasible = true; makespan = o.Outcome.makespan; ratio = o.Outcome.makespan /. b.heft_makespan }
  else { feasible = false; makespan = nan; ratio = nan }

type aggregate = {
  alpha : float;
  success_rate : float;
  mean_ratio : float;
}

(* The parallel sweeps fan out over the full (alpha x instance) grid — every
   point is an independent pure computation — and then aggregate serially in
   the fixed (alpha-major, instance order) layout.  Because the aggregation
   fold is identical to the historical serial loop, the result is
   bit-identical for every jobs count, including jobs = 1. *)
let grid_map ?pool ~f ~alphas baselines =
  let points =
    List.concat_map (fun alpha -> List.map (fun b -> (alpha, b)) baselines) alphas
  in
  let results =
    match pool with
    | None -> List.map f points
    | Some pool -> Par.parallel_map pool ~f points
  in
  Array.of_list results

let normalized_sweep ?options ?pool platform ~alphas heuristic baselines =
  let measure (alpha, b) =
    run_bounded ?options platform b heuristic ~bound:(alpha *. b.heft_peak)
  in
  let grid = grid_map ?pool ~f:measure ~alphas baselines in
  let n = List.length baselines in
  List.mapi
    (fun ai alpha ->
      let ratios = ref [] and successes = ref 0 in
      for bi = 0 to n - 1 do
        let m = grid.((ai * n) + bi) in
        if m.feasible then begin
          incr successes;
          ratios := m.ratio :: !ratios
        end
      done;
      {
        alpha;
        success_rate = float_of_int !successes /. float_of_int n;
        mean_ratio = Stats.mean !ratios;
      })
    alphas

type exact_aggregate = {
  e_alpha : float;
  e_success_rate : float;
  e_mean_ratio : float;
  e_certified : int;
  e_best_ratio : float;
}

let exact_sweep ?pool ~node_limit platform ~alphas baselines =
  let solve (alpha, b) =
    let bound = alpha *. b.heft_peak in
    let p = Platform.with_bounds platform ~m_blue:bound ~m_red:bound in
    Exact.solve ?pool ~node_limit b.dag p
  in
  let grid = grid_map ?pool ~f:solve ~alphas baselines in
  let barr = Array.of_list baselines in
  let n = Array.length barr in
  List.mapi
    (fun ai alpha ->
      let ratios = ref [] and successes = ref 0 and certified = ref 0 in
      let best_ratios = ref [] in
      for bi = 0 to n - 1 do
        let b = barr.(bi) in
        let r = grid.((ai * n) + bi) in
        (match r.Exact.status with
        | Exact.Proven_optimal | Exact.Feasible ->
          best_ratios := (r.Exact.makespan /. b.heft_makespan) :: !best_ratios
        | _ -> ());
        match r.Exact.status with
        | Exact.Proven_optimal ->
          incr certified;
          incr successes;
          ratios := (r.Exact.makespan /. b.heft_makespan) :: !ratios
        | Exact.Proven_infeasible -> incr certified
        | Exact.Feasible | Exact.Unknown -> ()
      done;
      {
        e_alpha = alpha;
        e_success_rate =
          (if !certified = 0 then nan else float_of_int !successes /. float_of_int !certified);
        e_mean_ratio = Stats.mean !ratios;
        e_certified = !certified;
        e_best_ratio = Stats.mean !best_ratios;
      })
    alphas
