let default_alphas = List.init 20 (fun k -> 0.05 *. float_of_int (k + 1))

(* All narration goes through a caller-supplied reporter; the library itself
   never touches stdout.  [bin/] passes a printing reporter, tests keep the
   quiet default. *)
let quiet (_ : string) = ()

let section report title = Printf.ksprintf report "\n==== %s ====\n\n" title

(* Campaign drivers take an optional shared Par.t; every fan-out below keeps
   results in input order, so CSVs are byte-identical for every jobs count. *)
let pool_map ?pool ~f xs =
  match pool with None -> List.map f xs | Some pool -> Par.parallel_map pool ~f xs

let write_csv out_dir file header rows = Csv.write (Filename.concat out_dir file) ~header rows

let write_file out_dir file contents =
  Csv.ensure_dir out_dir;
  let oc = open_out (Filename.concat out_dir file) in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* ---------------------------------------------------------------- Table 1 *)

let table1 ?(out_dir = "results") ?(report = quiet) ?pool () =
  section report "Table 1 -- kernel running times on a 192x192 tile (ms)";
  let rows =
    List.filter_map
      (fun k ->
        if k = Kernels.Fictitious then None
        else Some [ Kernels.name k; Table.cell_f (Kernels.cpu_ms k); Table.cell_f (Kernels.gpu_ms k) ])
      Kernels.all
  in
  report (Table.render ~header:[ "kernel"; "CPU (Table 1)"; "GPU (derived)" ] rows);
  Printf.ksprintf report "\ntile transfer: %g ms, tile size: %g memory unit\n"
    Kernels.tile_transfer_ms Kernels.tile_size;
  (* Exact-baseline certification: makespan, best bound and optimality gap of
     the branch-and-bound on reference instances.  The last entry runs under
     a deliberately tiny node budget so the reported gap is nonzero. *)
  let exact_instances =
    [ ("exact:chain3", Toy.chain ~n:3 ~w:2. ~f:1. ~c:1.,
       Platform.make ~p_blue:1 ~p_red:1 ~m_blue:4. ~m_red:4., 100_000);
      ("exact:fork2", Toy.fork_join ~width:2 ~w:1. ~f:1. ~c:1.,
       Platform.make ~p_blue:1 ~p_red:1 ~m_blue:6. ~m_red:6., 100_000);
      ("exact:tiny_capped",
       (match Workloads.tiny_rand_set ~count:1 () with [ d ] -> d | _ -> assert false),
       Workloads.platform_random, 10) ]
  in
  let exact_rows =
    pool_map ?pool
      ~f:(fun (name, g, p, node_limit) ->
        let r = Exact.solve ?pool ~node_limit g p in
        let makespan_cell =
          if Float.is_nan r.Exact.makespan then "-" else Csv.float_cell r.Exact.makespan
        in
        let bound_cell =
          if Float.is_nan r.Exact.best_bound then "-" else Csv.float_cell r.Exact.best_bound
        in
        let gap_cell =
          match r.Exact.status with
          | Exact.Proven_optimal -> Csv.float_cell 0.
          | Exact.Feasible when r.Exact.makespan > 0. ->
            Csv.float_cell ((r.Exact.makespan -. r.Exact.best_bound) /. r.Exact.makespan)
          | _ -> "-"
        in
        [ name; makespan_cell; bound_cell; gap_cell ])
      exact_instances
  in
  report "\n";
  report (Table.render ~header:[ "exact instance"; "makespan"; "best bound"; "gap" ] exact_rows);
  write_csv out_dir "table1.csv"
    [ "entry"; "cpu_ms"; "gpu_ms"; "exact_makespan"; "exact_best_bound"; "exact_gap" ]
    (List.filter_map
       (fun k ->
         if k = Kernels.Fictitious then None
         else
           Some
             [ Kernels.name k; Csv.float_cell (Kernels.cpu_ms k);
               Csv.float_cell (Kernels.gpu_ms k); "-"; "-"; "-" ])
       Kernels.all
    @ List.map (fun r -> match r with
        | [ name; ms; bb; gap ] -> [ name; "-"; "-"; ms; bb; gap ]
        | _ -> assert false)
        exact_rows)

(* ----------------------------------------------------------- Figures 8, 9 *)

let sample_dag_report ~report ~label ~dot_file out_dir dag =
  section report label;
  report (Format.asprintf "%a@." Dag.pp_stats dag);
  write_file out_dir dot_file (Dag.to_dot dag);
  Printf.ksprintf report "DOT written to %s\n" (Filename.concat out_dir dot_file)

let figure8 ?(out_dir = "results") ?(report = quiet) () =
  match Workloads.small_rand_set ~count:1 () with
  | [ dag ] ->
    sample_dag_report ~report ~label:"Figure 8 -- a SmallRandSet DAG" ~dot_file:"figure8.dot"
      out_dir dag
  | _ -> assert false

let figure9 ?(out_dir = "results") ?(report = quiet) ?(size = 1000) () =
  match Workloads.large_rand_set ~count:1 ~size () with
  | [ dag ] ->
    sample_dag_report ~report ~label:"Figure 9 -- a LargeRandSet DAG" ~dot_file:"figure9.dot"
      out_dir dag
  | _ -> assert false

(* ------------------------------------------------- normalised sweep report *)

let print_normalized ~report ~label ~csv out_dir alphas series =
  (* series: (name, aggregates) list with aggregates aligned on alphas *)
  section report label;
  let header =
    "alpha"
    :: List.concat_map (fun (name, _) -> [ name ^ " ratio"; name ^ " ok" ]) series
  in
  let rows =
    List.mapi
      (fun k alpha ->
        Printf.sprintf "%.2f" alpha
        :: List.concat_map
             (fun (_, aggs) ->
               let a = List.nth aggs k in
               [ Table.cell_f a.Sweep.mean_ratio; Table.cell_pct a.Sweep.success_rate ])
             series)
      alphas
  in
  report (Table.render ~header rows);
  write_csv out_dir csv
    ("alpha"
    :: List.concat_map (fun (name, _) -> [ name ^ "_ratio"; name ^ "_success" ]) series)
    (List.mapi
       (fun k alpha ->
         Csv.float_cell alpha
         :: List.concat_map
              (fun (_, aggs) ->
                let a = List.nth aggs k in
                [ Csv.float_cell a.Sweep.mean_ratio; Csv.float_cell a.Sweep.success_rate ])
              series)
       alphas)

(* --------------------------------------------------------------- Figure 10 *)

let figure10 ?(out_dir = "results") ?(report = quiet) ?pool ?(count = 50) ?(alphas = default_alphas)
    ?(exact_nodes = 10_000) ?(capped_count = 15) ?(tiny_count = 20) ?(tiny_exact_nodes = 200_000)
    () =
  let platform = Workloads.platform_random in
  let baselines = Sweep.baselines ?pool platform (Workloads.small_rand_set ~count ()) in
  let series =
    List.map
      (fun h ->
        (Heuristics.name_to_string h, Sweep.normalized_sweep ?pool platform ~alphas h baselines))
      [ Heuristics.MemHEFT; Heuristics.MemMinMin ]
  in
  print_normalized ~report
    ~label:(Printf.sprintf "Figure 10 -- SmallRandSet (%d DAGs, 30 tasks)" count)
    ~csv:"figure10.csv" out_dir alphas series;
  (* Optimal series: certified on the 10-task companion set; node-capped
     best-effort on the 30-task set. *)
  let exact_alphas = List.filter (fun a -> Float.equal (Float.rem (Float.round (a *. 100.)) 10.) 0.) alphas in
  let tiny = Sweep.baselines ?pool platform (Workloads.tiny_rand_set ~count:tiny_count ()) in
  let tiny_heur =
    List.map
      (fun h ->
        ( Heuristics.name_to_string h,
          Sweep.normalized_sweep ?pool platform ~alphas:exact_alphas h tiny ))
      [ Heuristics.MemHEFT; Heuristics.MemMinMin ]
  in
  let tiny_exact =
    Sweep.exact_sweep ?pool ~node_limit:tiny_exact_nodes platform ~alphas:exact_alphas tiny
  in
  let capped_baselines =
    List.filteri (fun k _ -> k < capped_count) baselines
  in
  let capped_exact =
    Sweep.exact_sweep ?pool ~node_limit:exact_nodes platform ~alphas:exact_alphas capped_baselines
  in
  section report
    (Printf.sprintf
       "Figure 10 (Optimal series) -- certified on %d 10-task DAGs; node-capped on the 30-task set"
       tiny_count);
  report
    (Table.render
       ~header:
         [ "alpha"; "Opt ratio (10t)"; "Opt ok (10t)"; "MemHEFT ratio (10t)";
           "MemMinMin ratio (10t)"; "Opt<= (30t, capped)"; "certified (30t)" ]
       (List.mapi
       (fun k alpha ->
         let te = List.nth tiny_exact k in
         let ce = List.nth capped_exact k in
         let h10 = List.nth (snd (List.nth tiny_heur 0)) k in
         let m10 = List.nth (snd (List.nth tiny_heur 1)) k in
         [ Printf.sprintf "%.2f" alpha;
           Table.cell_f te.Sweep.e_mean_ratio;
           Table.cell_pct te.Sweep.e_success_rate;
           Table.cell_f h10.Sweep.mean_ratio;
           Table.cell_f m10.Sweep.mean_ratio;
           Table.cell_f ce.Sweep.e_best_ratio;
           Printf.sprintf "%d/%d" ce.Sweep.e_certified (List.length capped_baselines) ])
          exact_alphas));
  write_csv out_dir "figure10_optimal.csv"
    [ "alpha"; "opt10_ratio"; "opt10_success"; "memheft10_ratio"; "memminmin10_ratio";
      "opt30_ratio"; "opt30_certified" ]
    (List.mapi
       (fun k alpha ->
         let te = List.nth tiny_exact k in
         let ce = List.nth capped_exact k in
         let h10 = List.nth (snd (List.nth tiny_heur 0)) k in
         let m10 = List.nth (snd (List.nth tiny_heur 1)) k in
         [ Csv.float_cell alpha;
           Csv.float_cell te.Sweep.e_mean_ratio;
           Csv.float_cell te.Sweep.e_success_rate;
           Csv.float_cell h10.Sweep.mean_ratio;
           Csv.float_cell m10.Sweep.mean_ratio;
           Csv.float_cell ce.Sweep.e_best_ratio;
           string_of_int ce.Sweep.e_certified ])
       exact_alphas)

(* -------------------------------------------- absolute detail (Figs 11/13) *)

let absolute_detail ~report ~label ~csv ?pool ?(exact_nodes = None) out_dir platform dag ~points =
  section report label;
  let b = Sweep.baseline platform dag in
  let max_mem = ceil (Float.max b.Sweep.heft_peak b.Sweep.minmin_peak) in
  let step = Float.max 1. (ceil (max_mem /. float_of_int points)) in
  let bounds =
    let rec build m acc = if m > max_mem +. step /. 2. then List.rev acc else build (m +. step) (m :: acc) in
    build step []
  in
  Printf.ksprintf report
    "HEFT makespan=%g (peak %g), MinMin makespan=%g (peak %g), lower bound=%g\n\n"
    b.Sweep.heft_makespan b.Sweep.heft_peak b.Sweep.minmin_makespan b.Sweep.minmin_peak
    b.Sweep.lower_bound;
  let cell m = if m.Sweep.feasible then Table.cell_f m.Sweep.makespan else "-" in
  let opt_of bound =
    match exact_nodes with
    | None -> None
    | Some nodes ->
      let p = Platform.with_bounds platform ~m_blue:bound ~m_red:bound in
      Some (Exact.solve ?pool ~node_limit:nodes dag p)
  in
  let header =
    [ "memory"; "MemHEFT"; "MemMinMin" ]
    @ (if exact_nodes = None then [] else [ "Optimal" ])
    @ [ "HEFT"; "MinMin"; "LowerBound" ]
  in
  let rows =
    pool_map ?pool
      ~f:(fun bound ->
        let mh = Sweep.run_bounded platform b Heuristics.MemHEFT ~bound in
        let mm = Sweep.run_bounded platform b Heuristics.MemMinMin ~bound in
        let opt =
          match opt_of bound with
          | None -> []
          | Some r -> (
            match r.Exact.status with
            | Exact.Proven_optimal -> [ Table.cell_f r.Exact.makespan ]
            | Exact.Feasible -> [ Table.cell_f r.Exact.makespan ^ "?" ]
            | Exact.Proven_infeasible -> [ "-" ]
            | Exact.Unknown -> [ "?" ])
        in
        [ Printf.sprintf "%g" bound; cell mh; cell mm ]
        @ opt
        @ [ Table.cell_f b.Sweep.heft_makespan; Table.cell_f b.Sweep.minmin_makespan;
            Table.cell_f b.Sweep.lower_bound ])
      bounds
  in
  report (Table.render ~header rows);
  write_csv out_dir csv (List.map (String.map (fun c -> if c = ' ' then '_' else c)) header) rows

let figure11 ?(out_dir = "results") ?(report = quiet) ?pool ?(dag_index = 0) ?(points = 24) () =
  let dags = Workloads.small_rand_set ~count:(dag_index + 1) () in
  let dag = List.nth dags dag_index in
  absolute_detail ~report
    ~label:"Figure 11 -- makespan vs memory for one SmallRandSet DAG"
    ~csv:"figure11.csv" ?pool ~exact_nodes:(Some 100_000) out_dir Workloads.platform_random dag
    ~points

let figure12 ?(out_dir = "results") ?(report = quiet) ?pool ?(count = 100) ?(size = 1000)
    ?(alphas = default_alphas) () =
  let platform = Workloads.platform_random in
  let baselines = Sweep.baselines ?pool platform (Workloads.large_rand_set ~count ~size ()) in
  let series =
    List.map
      (fun h ->
        (Heuristics.name_to_string h, Sweep.normalized_sweep ?pool platform ~alphas h baselines))
      [ Heuristics.MemHEFT; Heuristics.MemMinMin ]
  in
  print_normalized ~report
    ~label:(Printf.sprintf "Figure 12 -- LargeRandSet (%d DAGs, %d tasks)" count size)
    ~csv:"figure12.csv" out_dir alphas series

let figure13 ?(out_dir = "results") ?(report = quiet) ?pool ?(size = 1000) ?(points = 24) () =
  match Workloads.large_rand_set ~count:1 ~size () with
  | [ dag ] ->
    absolute_detail ~report
      ~label:"Figure 13 -- makespan vs memory for one LargeRandSet DAG"
      ~csv:"figure13.csv" ?pool out_dir Workloads.platform_random dag ~points
  | _ -> assert false

(* ------------------------------------------------------- Figures 14 and 15 *)

(* Smallest integer memory bound under which the heuristic still succeeds. *)
let min_feasible_memory platform dag heuristic ~hi =
  let feasible bound =
    let p = Platform.with_bounds platform ~m_blue:bound ~m_red:bound in
    (Outcome.run heuristic dag p).Outcome.feasible
  in
  if not (feasible hi) then None
  else begin
    (* Integer bisection: lo is always infeasible (0 as a sentinel), hi
       always feasible. *)
    let lo = ref 0 and hi = ref (int_of_float (ceil hi)) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if feasible (float_of_int mid) then hi := mid else lo := mid
    done;
    Some (float_of_int !hi)
  end

let linear_algebra_figure ~report ~label ~csv ?pool out_dir dag ~points =
  section report label;
  let platform = Workloads.platform_mirage in
  let b = Sweep.baseline platform dag in
  Printf.ksprintf report
    "HEFT makespan=%g ms (peak %g tiles), MinMin makespan=%g ms (peak %g tiles)\n"
    b.Sweep.heft_makespan b.Sweep.heft_peak b.Sweep.minmin_makespan b.Sweep.minmin_peak;
  let thresholds =
    List.map
      (fun h ->
        let t = min_feasible_memory platform dag h ~hi:(ceil (Float.max b.Sweep.heft_peak b.Sweep.minmin_peak)) in
        (h, t))
      [ Heuristics.MemHEFT; Heuristics.MemMinMin ]
  in
  List.iter
    (fun (h, t) ->
      Printf.ksprintf report "minimum feasible memory for %s: %s tiles\n"
        (Heuristics.name_to_string h)
        (match t with Some t -> Printf.sprintf "%g" t | None -> "-"))
    thresholds;
  report "\n";
  let max_mem = ceil (Float.max b.Sweep.heft_peak b.Sweep.minmin_peak) in
  let step = Float.max 1. (ceil (max_mem /. float_of_int points)) in
  let bounds =
    let rec build m acc = if m > max_mem +. step /. 2. then List.rev acc else build (m +. step) (m :: acc) in
    build step []
  in
  let rows =
    pool_map ?pool
      ~f:(fun bound ->
        let mh = Sweep.run_bounded platform b Heuristics.MemHEFT ~bound in
        let mm = Sweep.run_bounded platform b Heuristics.MemMinMin ~bound in
        let cell m = if m.Sweep.feasible then Table.cell_f m.Sweep.makespan else "-" in
        [ Printf.sprintf "%g" bound; cell mh; cell mm; Table.cell_f b.Sweep.heft_makespan;
          Table.cell_f b.Sweep.minmin_makespan ])
      bounds
  in
  report (Table.render ~header:[ "memory (tiles)"; "MemHEFT"; "MemMinMin"; "HEFT"; "MinMin" ] rows);
  write_csv out_dir csv [ "memory_tiles"; "memheft"; "memminmin"; "heft"; "minmin" ] rows

let figure14 ?(out_dir = "results") ?(report = quiet) ?pool ?(n = 13) ?(points = 24) () =
  linear_algebra_figure ~report
    ~label:(Printf.sprintf "Figure 14 -- LU factorisation of a %dx%d tiled matrix" n n)
    ~csv:"figure14.csv" ?pool out_dir (Workloads.lu ~n ()) ~points

let figure15 ?(out_dir = "results") ?(report = quiet) ?pool ?(n = 13) ?(points = 24) () =
  linear_algebra_figure ~report
    ~label:(Printf.sprintf "Figure 15 -- Cholesky factorisation of a %dx%d tiled matrix" n n)
    ~csv:"figure15.csv" ?pool out_dir (Workloads.cholesky ~n ()) ~points

(* ---------------------------------------------------------- ILP validation *)

let ilp_cross_check ?(out_dir = "results") ?(report = quiet) ?pool ?(node_limit = 50_000) () =
  section report "ILP cross-check -- built-in MIP vs exact branch-and-bound (SS 4)";
  let cases =
    [ ("chain2", Toy.chain ~n:2 ~w:2. ~f:1. ~c:1., Platform.make ~p_blue:1 ~p_red:1 ~m_blue:3. ~m_red:3.);
      ("chain3", Toy.chain ~n:3 ~w:2. ~f:1. ~c:1., Platform.make ~p_blue:1 ~p_red:1 ~m_blue:4. ~m_red:4.);
      ("fork2", Toy.fork_join ~width:2 ~w:1. ~f:1. ~c:1., Platform.make ~p_blue:1 ~p_red:1 ~m_blue:6. ~m_red:6.) ]
  in
  let rows =
    pool_map ?pool
      ~f:(fun (name, g, p) ->
        let model = Ilp_model.build g p in
        (* Seed the MIP with the exact solver's value (plus a hair, so the
           optimal node itself survives gap pruning). *)
        let seed =
          match Exact.solve ?pool g p with
          | { Exact.status = Exact.Proven_optimal; makespan; _ } -> Some (makespan +. 1e-3)
          | _ -> None
        in
        let sol = Mip.solve ~node_limit ~time_limit:60. ?incumbent:seed (Ilp_model.lp model) in
        let mip_cell =
          match (sol.Mip.status, sol.Mip.incumbent) with
          | Mip.Optimal, Some (_, obj) -> Printf.sprintf "%.3f" obj
          | Mip.Feasible, Some (_, obj) -> Printf.sprintf "%.3f?" obj
          | Mip.Infeasible, _ -> "infeasible"
          | _, _ -> "?"
        in
        let valid =
          match sol.Mip.incumbent with
          | Some (x, _) -> (
            let s = Ilp_model.extract_schedule model x in
            match Validator.validate g p s with Ok _ -> "yes" | Error _ -> "NO")
          | None -> "-"
        in
        let ex = Exact.solve ?pool g p in
        let exact_cell =
          match ex.Exact.status with
          | Exact.Proven_optimal -> Printf.sprintf "%.3f" ex.Exact.makespan
          | _ -> "?"
        in
        [ name;
          string_of_int (Ilp_model.n_vars model);
          string_of_int (Ilp_model.n_constrs model);
          mip_cell;
          string_of_int sol.Mip.nodes;
          valid;
          exact_cell ])
      cases
  in
  report
    (Table.render
       ~header:[ "instance"; "vars"; "constrs"; "MIP opt"; "nodes"; "schedule valid"; "exact opt" ]
       rows);
  write_csv out_dir "ilp_cross_check.csv"
    [ "instance"; "vars"; "constrs"; "mip"; "nodes"; "valid"; "exact" ]
    rows

(* -------------------------------------------------------------- ablations *)

let ablations ?(out_dir = "results") ?(report = quiet) ?pool ?(count = 30)
    ?(alphas = [ 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]) () =
  section report "Ablations -- design choices of the heuristics (SmallRandSet)";
  let platform = Workloads.platform_random in
  let baselines = Sweep.baselines ?pool platform (Workloads.small_rand_set ~count ()) in
  let variants =
    [ ("jit-per-edge (default)", Sched_state.default_options);
      ("jit-batched (paper formula)",
       { Sched_state.default_options with Sched_state.comm_mode = Sched_state.Jit_batched });
      ("eager transfers",
       { Sched_state.default_options with Sched_state.comm_mode = Sched_state.Eager });
      ("insertion policy",
       { Sched_state.default_options with Sched_state.proc_policy = Sched_state.Insertion }) ]
  in
  List.iter
    (fun h ->
      Printf.ksprintf report "\n-- %s --\n" (Heuristics.name_to_string h);
      let header =
        "alpha" :: List.concat_map (fun (name, _) -> [ name ^ " ratio"; name ^ " ok" ]) variants
      in
      let aggs =
        List.map
          (fun (_, options) -> Sweep.normalized_sweep ~options ?pool platform ~alphas h baselines)
          variants
      in
      let rows =
        List.mapi
          (fun k alpha ->
            Printf.sprintf "%.2f" alpha
            :: List.concat_map
                 (fun aggs ->
                   let a = List.nth aggs k in
                   [ Table.cell_f a.Sweep.mean_ratio; Table.cell_pct a.Sweep.success_rate ])
                 aggs)
          alphas
      in
      report (Table.render ~header rows);
      write_csv out_dir
        (Printf.sprintf "ablation_%s.csv" (String.lowercase_ascii (Heuristics.name_to_string h)))
        (List.map (String.map (fun c -> if c = ' ' then '_' else c)) header)
        rows)
    [ Heuristics.MemHEFT; Heuristics.MemMinMin ]

(* ---------------------------------------------------------- extensions --- *)

let extensions ?(out_dir = "results") ?(report = quiet) ?pool ?(count = 30)
    ?(alphas = [ 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]) () =
  section report "Extensions -- MaxMin / Sufferage family vs the paper's heuristics (SmallRandSet)";
  let platform = Workloads.platform_random in
  let baselines = Sweep.baselines ?pool platform (Workloads.small_rand_set ~count ()) in
  let heuristics =
    [ Heuristics.MemHEFT; Heuristics.MemMinMin; Heuristics.MemMaxMin; Heuristics.MemSufferage ]
  in
  let series =
    List.map
      (fun h ->
        (Heuristics.name_to_string h, Sweep.normalized_sweep ?pool platform ~alphas h baselines))
      heuristics
  in
  print_normalized ~report ~label:"memory-aware family" ~csv:"extensions.csv" out_dir alphas series

(* ------------------------------------------------------------------ suites *)

(* ------------------------------------------- online degradation campaign *)

let online_instances ~count =
  List.mapi
    (fun k dag -> (Printf.sprintf "small%02d" k, dag))
    (Workloads.small_rand_set ~count ())
  @ [ ("lu8", Workloads.lu ~n:8 ()); ("cholesky8", Workloads.cholesky ~n:8 ()) ]

let online_degradation ?(out_dir = "results") ?(report = quiet) ?pool ?(count = 6) ?(level = 0.2)
    ?(seeds = 8) () =
  section report "Online degradation -- replayed schedules under perturbed costs";
  let cfg =
    { Scenario.default_config with
      Scenario.arrival = Arrival.Jittered { gap = 1.0; seed = 5 };
      noise_level = level;
      noise_seeds = List.init seeds (fun s -> s) }
  in
  let rows, summaries =
    Scenario.run ?pool cfg (online_instances ~count) Workloads.platform_random
  in
  report
    (Table.render
       ~header:
         [ "instance"; "policy"; "ok"; "failed"; "mk p50"; "mk p95"; "mk max"; "peak p95" ]
       (List.map
          (fun s ->
            [ s.Scenario.s_instance; Replay.policy_label s.Scenario.s_policy;
              string_of_int s.Scenario.s_ok; string_of_int s.Scenario.s_failed;
              Table.cell_f s.Scenario.s_mk_p50; Table.cell_f s.Scenario.s_mk_p95;
              Table.cell_f s.Scenario.s_mk_max; Table.cell_f s.Scenario.s_peak_p95 ])
          summaries));
  write_csv out_dir "online_degradation.csv" Scenario.csv_header
    (List.map (Scenario.csv_row cfg) rows)

let all_quick ?(out_dir = "results") ?(report = quiet) ?pool () =
  table1 ~out_dir ~report ?pool ();
  figure8 ~out_dir ~report ();
  figure9 ~out_dir ~report ~size:300 ();
  figure10 ~out_dir ~report ?pool ~count:15 ~exact_nodes:5_000 ~capped_count:5 ~tiny_count:10 ();
  figure11 ~out_dir ~report ?pool ();
  figure12 ~out_dir ~report ?pool ~count:10 ~size:300 ();
  figure13 ~out_dir ~report ?pool ~size:300 ();
  figure14 ~out_dir ~report ?pool ~n:8 ();
  figure15 ~out_dir ~report ?pool ~n:8 ();
  ilp_cross_check ~out_dir ~report ?pool ~node_limit:5_000 ();
  ablations ~out_dir ~report ?pool ~count:10 ();
  extensions ~out_dir ~report ?pool ~count:10 ();
  online_degradation ~out_dir ~report ?pool ~count:4 ~seeds:4 ();
  Plots.write_gnuplot ~out_dir ()

let all_paper ?(out_dir = "results") ?(report = quiet) ?pool () =
  table1 ~out_dir ~report ?pool ();
  figure8 ~out_dir ~report ();
  figure9 ~out_dir ~report ();
  figure10 ~out_dir ~report ?pool ();
  figure11 ~out_dir ~report ?pool ();
  figure12 ~out_dir ~report ?pool ();
  figure13 ~out_dir ~report ?pool ();
  figure14 ~out_dir ~report ?pool ();
  figure15 ~out_dir ~report ?pool ();
  ilp_cross_check ~out_dir ~report ?pool ();
  ablations ~out_dir ~report ?pool ();
  extensions ~out_dir ~report ?pool ~count:50 ();
  online_degradation ~out_dir ~report ?pool ();
  Plots.write_gnuplot ~out_dir ()
