(** Memory sweeps: the measurement procedure behind Figures 10-15.

    For each DAG the memory-oblivious HEFT baseline is run first; its
    measured peak [max(M_blue, M_red)] defines the normalised-memory axis
    ([alpha = 1] means "as much memory as HEFT uses").  Each sweep point sets
    [M_blue = M_red = alpha * peak] and runs the memory-aware heuristics. *)

type baseline = {
  dag : Dag.t;
  ranks : float array;
      (** {!Rank.upward_ranks}, computed once per instance and reused by
          every sweep point (read-only across parallel grid points) *)
  heft_makespan : float;
  heft_peak : float;
      (** [max(M^HEFT_blue, M^HEFT_red)], measured with the planner's
          accounting ({!Sched_state.planned_peak}) so that [alpha = 1]
          reproduces HEFT exactly *)
  minmin_makespan : float;
  minmin_peak : float;
  lower_bound : float;  (** critical-path / work-area makespan bound *)
}

val baseline : Platform.t -> Dag.t -> baseline

val baselines : ?pool:Par.t -> Platform.t -> Dag.t list -> baseline list
(** [baseline] over an instance set, optionally fanned out on [pool];
    result order always follows the input order. *)

type measurement = {
  feasible : bool;
  makespan : float;  (** [nan] when infeasible *)
  ratio : float;  (** makespan / HEFT makespan; [nan] when infeasible *)
}

val run_bounded :
  ?options:Sched_state.options ->
  Platform.t ->
  baseline ->
  Heuristics.name ->
  bound:float ->
  measurement
(** Runs one heuristic with [M_blue = M_red = bound]. *)

type aggregate = {
  alpha : float;
  success_rate : float;
  mean_ratio : float;  (** over successful instances; [nan] if none *)
}

val normalized_sweep :
  ?options:Sched_state.options ->
  ?pool:Par.t ->
  Platform.t ->
  alphas:float list ->
  Heuristics.name ->
  baseline list ->
  aggregate list
(** One aggregate per [alpha], averaged over the instance set (the solid and
    dotted lines of Figures 10 and 12).  With [?pool] the full
    (alpha x instance) grid is measured in parallel; aggregation stays
    serial in a fixed order, so the output is bit-identical for every
    jobs count. *)

type exact_aggregate = {
  e_alpha : float;
  e_success_rate : float;  (** fraction with a feasibility certificate *)
  e_mean_ratio : float;  (** over certified optima *)
  e_certified : int;  (** instances where the search finished *)
  e_best_ratio : float;
      (** over every incumbent found (certified or not): an upper bound on
          the mean optimal ratio *)
}

val exact_sweep :
  ?pool:Par.t ->
  node_limit:int ->
  Platform.t ->
  alphas:float list ->
  baseline list ->
  exact_aggregate list
(** The "Optimal" series: branch-and-bound per instance and per alpha.
    Instances where the node budget expires without a certificate count as
    uncertified and are excluded from the success rate denominator.
    Same determinism contract as {!normalized_sweep}. *)
