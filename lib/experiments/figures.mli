(** One driver per table/figure of the paper's evaluation (§6).  Each driver
    sends a human-readable table to the caller-supplied [?report] sink
    (default: discard) and writes a CSV under [out_dir] (default
    ["results"]).  [bin/] passes a printing reporter; the library itself
    never writes to stdout.  See EXPERIMENTS.md for the paper-vs-measured
    record.

    Campaign drivers accept an optional shared {!Par.t} pool ([?pool]) and
    fan the measurement grid out over it.  The determinism contract of
    {!Sweep} carries over: tables and CSVs are byte-identical for every
    jobs count (and for no pool at all). *)

val default_alphas : float list
(** 0.05 to 1.0 in steps of 0.05 — the normalised-memory axis of
    Figures 10 and 12. *)

val table1 : ?out_dir:string -> ?report:(string -> unit) -> ?pool:Par.t -> unit -> unit
(** Table 1: kernel timing model (CPU measured / GPU derived), plus an
    exact-baseline certification block: makespan, best bound and optimality
    gap of {!Exact.solve} on reference instances — including one run under a
    deliberately tiny node budget, whose gap is nonzero. *)

val figure8 : ?out_dir:string -> ?report:(string -> unit) -> unit -> unit
(** Figure 8: a SmallRandSet DAG — statistics + DOT file. *)

val figure9 : ?out_dir:string -> ?report:(string -> unit) -> ?size:int -> unit -> unit
(** Figure 9: a LargeRandSet DAG — statistics + DOT file. *)

val figure10 :
  ?out_dir:string ->
  ?report:(string -> unit) ->
  ?pool:Par.t ->
  ?count:int ->
  ?alphas:float list ->
  ?exact_nodes:int ->
  ?capped_count:int ->
  ?tiny_count:int ->
  ?tiny_exact_nodes:int ->
  unit ->
  unit
(** Figure 10: SmallRandSet normalised sweep (MemHEFT, MemMinMin) plus the
    "Optimal" series.  The exact series is computed with certificates on the
    10-task companion set ([tiny_count] DAGs) and with a node budget
    ([exact_nodes]) on the 30-task set (uncertified points are reported as
    such); see DESIGN.md for the CPLEX substitution. *)

val figure11 :
  ?out_dir:string ->
  ?report:(string -> unit) ->
  ?pool:Par.t ->
  ?dag_index:int ->
  ?points:int ->
  unit ->
  unit
(** Figure 11: absolute memory-vs-makespan detail for one SmallRandSet DAG,
    with the HEFT/MinMin reference lines and the makespan lower bound. *)

val figure12 :
  ?out_dir:string ->
  ?report:(string -> unit) ->
  ?pool:Par.t ->
  ?count:int ->
  ?size:int ->
  ?alphas:float list ->
  unit ->
  unit
(** Figure 12: LargeRandSet normalised sweep. *)

val figure13 :
  ?out_dir:string ->
  ?report:(string -> unit) ->
  ?pool:Par.t ->
  ?size:int ->
  ?points:int ->
  unit ->
  unit
(** Figure 13: absolute detail for one LargeRandSet DAG. *)

val figure14 :
  ?out_dir:string -> ?report:(string -> unit) -> ?pool:Par.t -> ?n:int -> ?points:int -> unit -> unit
(** Figure 14: LU factorisation of an [n x n] (default 13) tiled matrix on
    the mirage platform; absolute memory sweep in tiles plus the minimum
    feasible memory of each heuristic (found by bisection). *)

val figure15 :
  ?out_dir:string -> ?report:(string -> unit) -> ?pool:Par.t -> ?n:int -> ?points:int -> unit -> unit
(** Figure 15: Cholesky counterpart of Figure 14. *)

val ilp_cross_check :
  ?out_dir:string -> ?report:(string -> unit) -> ?pool:Par.t -> ?node_limit:int -> unit -> unit
(** §4 sanity: solve the full ILP with the built-in MIP on toy instances and
    compare with the exact branch-and-bound scheduler. *)

val ablations :
  ?out_dir:string ->
  ?report:(string -> unit) ->
  ?pool:Par.t ->
  ?count:int ->
  ?alphas:float list ->
  unit ->
  unit
(** Design-choice ablations on SmallRandSet: batched vs per-edge transfer
    accounting, eager vs just-in-time transfers, insertion vs
    earliest-available processor policy, random vs deterministic rank ties. *)

val extensions :
  ?out_dir:string ->
  ?report:(string -> unit) ->
  ?pool:Par.t ->
  ?count:int ->
  ?alphas:float list ->
  unit ->
  unit
(** Beyond the paper: the MaxMin and Sufferage heuristics (memory-aware
    variants of the other dynamic heuristics of Braun et al., the paper's
    reference [4]) against MemHEFT/MemMinMin. *)

val online_degradation :
  ?out_dir:string ->
  ?report:(string -> unit) ->
  ?pool:Par.t ->
  ?count:int ->
  ?level:float ->
  ?seeds:int ->
  unit ->
  unit
(** Beyond the paper: plan online (jittered arrivals) on SmallRandSet plus
    LU/Cholesky, replay every plan under [seeds] noise realizations at
    multiplicative [level], and report the p50/p95/max of the
    realized-over-planned makespan and peak-memory ratios per rescheduling
    policy.  Writes [online_degradation.csv]. *)

val all_quick : ?out_dir:string -> ?report:(string -> unit) -> ?pool:Par.t -> unit -> unit
(** Every section at a scale that finishes in a few minutes. *)

val all_paper : ?out_dir:string -> ?report:(string -> unit) -> ?pool:Par.t -> unit -> unit
(** Every section at the paper's full scale (50x30, 100x1000, 13x13). *)
