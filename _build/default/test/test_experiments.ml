(* Tests for the experiment harness: workloads, sweeps and figure drivers. *)

open Helpers

let tmp_out = Filename.concat (Filename.get_temp_dir_name ()) "memsched_exp_test"

(* ----------------------------------------------------------- workloads --- *)

let test_small_rand_set () =
  let dags = Workloads.small_rand_set ~count:5 () in
  check_int "count" 5 (List.length dags);
  List.iter (fun g -> check_int "size" 30 (Dag.n_tasks g)) dags

let test_sets_deterministic () =
  let a = Workloads.small_rand_set ~count:3 () and b = Workloads.small_rand_set ~count:3 () in
  List.iter2 (fun x y -> check_string "same" (Dag.to_string x) (Dag.to_string y)) a b

let test_tiny_set () =
  List.iter (fun g -> check_int "size 10" 10 (Dag.n_tasks g)) (Workloads.tiny_rand_set ~count:3 ())

let test_large_set_scalable () =
  List.iter (fun g -> check_int "size" 50 (Dag.n_tasks g)) (Workloads.large_rand_set ~count:2 ~size:50 ())

let test_platforms () =
  check_int "random platform procs" 4 (Platform.n_procs Workloads.platform_random);
  check_int "mirage procs" 15 (Platform.n_procs Workloads.platform_mirage);
  check_int "mirage gpus" 3 (Platform.n_procs_of Workloads.platform_mirage Platform.Red)

(* --------------------------------------------------------------- sweep --- *)

let baseline_of_seed seed =
  Sweep.baseline Workloads.platform_random (dag_of_seed ~size:20 seed)

let test_baseline_fields () =
  let b = baseline_of_seed 3 in
  check_bool "positive makespan" true (b.Sweep.heft_makespan > 0.);
  check_bool "positive peak" true (b.Sweep.heft_peak > 0.);
  check_bool "lower bound below heft" true (b.Sweep.lower_bound <= b.Sweep.heft_makespan +. 1e-9);
  check_bool "minmin present" true (b.Sweep.minmin_makespan > 0.)

let test_run_bounded_at_full_memory () =
  (* At the HEFT planned peak, MemHEFT replays HEFT: ratio exactly 1. *)
  let b = baseline_of_seed 4 in
  let m = Sweep.run_bounded Workloads.platform_random b Heuristics.MemHEFT ~bound:b.Sweep.heft_peak in
  check_bool "feasible" true m.Sweep.feasible;
  check_float "ratio 1" 1. m.Sweep.ratio

let test_run_bounded_infeasible () =
  let b = baseline_of_seed 4 in
  let m = Sweep.run_bounded Workloads.platform_random b Heuristics.MemMinMin ~bound:1. in
  check_bool "infeasible at 1 unit" false m.Sweep.feasible;
  check_bool "nan ratio" true (Float.is_nan m.Sweep.ratio)

let test_normalized_sweep_shape () =
  let baselines = List.map baseline_of_seed [ 1; 2; 3 ] in
  let alphas = [ 0.5; 1.0 ] in
  let aggs =
    Sweep.normalized_sweep Workloads.platform_random ~alphas Heuristics.MemHEFT baselines
  in
  check_int "one aggregate per alpha" 2 (List.length aggs);
  let last = List.nth aggs 1 in
  check_float "alpha recorded" 1.0 last.Sweep.alpha;
  check_float "all succeed at full memory" 1.0 last.Sweep.success_rate;
  check_float "ratio 1 at full memory" 1.0 last.Sweep.mean_ratio

let test_success_monotone () =
  (* More memory can only help: success rates are non-decreasing in alpha. *)
  let baselines = List.map baseline_of_seed [ 1; 2; 3; 4; 5; 6 ] in
  let alphas = [ 0.4; 0.6; 0.8; 1.0 ] in
  List.iter
    (fun h ->
      let aggs = Sweep.normalized_sweep Workloads.platform_random ~alphas h baselines in
      let rates = List.map (fun a -> a.Sweep.success_rate) aggs in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      check_bool "monotone" true (mono rates))
    [ Heuristics.MemHEFT; Heuristics.MemMinMin ]

let test_exact_sweep_tiny () =
  let baselines = [ Sweep.baseline Workloads.platform_random (dag_of_seed ~size:6 1) ] in
  let aggs =
    Sweep.exact_sweep ~node_limit:500_000 Workloads.platform_random ~alphas:[ 1.0 ] baselines
  in
  match aggs with
  | [ a ] ->
    check_int "certified" 1 a.Sweep.e_certified;
    check_float "feasible at full memory" 1.0 a.Sweep.e_success_rate;
    check_bool "optimal at most HEFT" true (a.Sweep.e_mean_ratio <= 1.0 +. 1e-9)
  | _ -> Alcotest.fail "one aggregate expected"

(* ------------------------------------------------------------- figures --- *)

let test_figures_smoke () =
  (* Tiny-scale smoke runs of every driver; they must print tables and leave
     the CSV files behind. *)
  Figures.table1 ~out_dir:tmp_out ();
  Figures.figure8 ~out_dir:tmp_out ();
  Figures.figure9 ~out_dir:tmp_out ~size:40 ();
  Figures.figure10 ~out_dir:tmp_out ~count:3 ~alphas:[ 0.5; 1.0 ] ~exact_nodes:2_000 ~tiny_count:2 ();
  Figures.figure12 ~out_dir:tmp_out ~count:2 ~size:40 ~alphas:[ 0.5; 1.0 ] ();
  Figures.figure14 ~out_dir:tmp_out ~n:4 ~points:6 ();
  Figures.figure15 ~out_dir:tmp_out ~n:4 ~points:6 ();
  Figures.ablations ~out_dir:tmp_out ~count:2 ~alphas:[ 0.8 ] ();
  List.iter
    (fun f -> check_bool (f ^ " written") true (Sys.file_exists (Filename.concat tmp_out f)))
    [ "table1.csv"; "figure8.dot"; "figure9.dot"; "figure10.csv"; "figure10_optimal.csv";
      "figure12.csv"; "figure14.csv"; "figure15.csv"; "ablation_memheft.csv" ]

let test_figure11_13_smoke () =
  Figures.figure11 ~out_dir:tmp_out ~points:4 ();
  Figures.figure13 ~out_dir:tmp_out ~size:40 ~points:4 ();
  List.iter
    (fun f -> check_bool (f ^ " written") true (Sys.file_exists (Filename.concat tmp_out f)))
    [ "figure11.csv"; "figure13.csv" ]

let test_plots_script () =
  Plots.write_gnuplot ~out_dir:tmp_out ();
  let path = Filename.concat tmp_out "plots.gp" in
  check_bool "written" true (Sys.file_exists path);
  let ic = open_in path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let contains sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun png -> check_bool png true (contains png body))
    [ "figure10.png"; "figure11.png"; "figure12.png"; "figure13.png"; "figure14.png"; "figure15.png" ]

let test_default_alphas () =
  check_int "20 points" 20 (List.length Figures.default_alphas);
  check_float "first" 0.05 (List.hd Figures.default_alphas);
  check_float "last" 1.0 (List.nth Figures.default_alphas 19)

let () =
  Alcotest.run "experiments"
    [ ( "workloads",
        [ Alcotest.test_case "small set" `Quick test_small_rand_set;
          Alcotest.test_case "deterministic" `Quick test_sets_deterministic;
          Alcotest.test_case "tiny set" `Quick test_tiny_set;
          Alcotest.test_case "large set scalable" `Quick test_large_set_scalable;
          Alcotest.test_case "platforms" `Quick test_platforms ] );
      ( "sweep",
        [ Alcotest.test_case "baseline fields" `Quick test_baseline_fields;
          Alcotest.test_case "full memory replay" `Quick test_run_bounded_at_full_memory;
          Alcotest.test_case "infeasible point" `Quick test_run_bounded_infeasible;
          Alcotest.test_case "normalized sweep shape" `Quick test_normalized_sweep_shape;
          Alcotest.test_case "success monotone" `Quick test_success_monotone;
          Alcotest.test_case "exact sweep" `Quick test_exact_sweep_tiny ] );
      ( "figures",
        [ Alcotest.test_case "drivers smoke" `Slow test_figures_smoke;
          Alcotest.test_case "details smoke" `Slow test_figure11_13_smoke;
          Alcotest.test_case "gnuplot script" `Quick test_plots_script;
          Alcotest.test_case "default alphas" `Quick test_default_alphas ] ) ]
