(* Tests for the ILP layer: the Lp model object, the simplex solver, the
   branch-and-bound MIP, the CPLEX-LP writer, the paper's full formulation,
   and the exact scheduler. *)

open Helpers

(* ------------------------------------------------------------------ Lp --- *)

let test_lp_build () =
  let lp = Lp.create () in
  let x = Lp.add_var lp "x" in
  let y = Lp.add_var lp ~lb:1. ~ub:4. ~kind:Lp.Binary "y" in
  Lp.add_constr lp ~name:"c" [ (1., x); (2., y) ] Lp.Le 5.;
  Lp.set_objective lp (Lp.Minimize [ (1., x) ]);
  check_int "vars" 2 (Lp.n_vars lp);
  check_int "constrs" 1 (Lp.n_constrs lp);
  check_float "binary ub clamped" 1. (Lp.var lp y).Lp.ub;
  check_float "binary lb clamped" 1. (Lp.var lp y).Lp.lb

let test_lp_normalizes_terms () =
  let lp = Lp.create () in
  let x = Lp.add_var lp "x" in
  Lp.add_constr lp ~name:"c" [ (1., x); (2., x); (0., x) ] Lp.Eq 3.;
  match (Lp.constrs lp).(0).Lp.terms with
  | [ (c, v) ] ->
    check_float "merged" 3. c;
    check_int "var" x v
  | _ -> Alcotest.fail "expected one merged term"

let test_lp_violations () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:2. "x" in
  Lp.add_constr lp ~name:"c" [ (1., x) ] Lp.Ge 1.;
  check_float "feasible point" 0. (Lp.constraint_violation lp [| 1.5 |]);
  check_float "constraint violated" 1. (Lp.constraint_violation lp [| 0. |]);
  check_float "bound violated" 1. (Lp.constraint_violation lp [| 3. |])

let test_lp_integer_violation () =
  let lp = Lp.create () in
  let _x = Lp.add_var lp ~kind:Lp.Binary "x" in
  let _y = Lp.add_var lp "y" in
  check_float "frac" 0.4 (Lp.integer_violation lp [| 0.4; 0.7 |]);
  check_float "integral" 0. (Lp.integer_violation lp [| 1.; 0.7 |])

let test_lp_fix_and_override () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:5. "x" in
  Lp.fix lp x 2.;
  check_float "fixed lb" 2. (Lp.var lp x).Lp.lb;
  check_float "fixed ub" 2. (Lp.var lp x).Lp.ub;
  Lp.override_bounds lp x ~lb:0. ~ub:1.;
  check_float "restored" 1. (Lp.var lp x).Lp.ub;
  Alcotest.check_raises "bad fix" (Invalid_argument "Lp.fix: value out of bounds") (fun () ->
      Lp.fix lp x 9.)

(* ------------------------------------------------------------- simplex --- *)

let solve_expect lp =
  match Simplex.solve_relaxation lp with
  | Simplex.Optimal { x; obj } -> (x, obj)
  | Simplex.Infeasible -> Alcotest.fail "unexpectedly infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpectedly unbounded"
  | Simplex.Capped -> Alcotest.fail "iteration cap hit"

let test_simplex_basic () =
  (* max x + y s.t. x + 2y <= 4, 3x + y <= 6  ->  min -(x+y), opt at (8/5, 6/5). *)
  let lp = Lp.create () in
  let x = Lp.add_var lp "x" and y = Lp.add_var lp "y" in
  Lp.add_constr lp ~name:"a" [ (1., x); (2., y) ] Lp.Le 4.;
  Lp.add_constr lp ~name:"b" [ (3., x); (1., y) ] Lp.Le 6.;
  Lp.set_objective lp (Lp.Maximize [ (1., x); (1., y) ]);
  let sol, obj = solve_expect lp in
  check_float_eps 1e-6 "x" 1.6 sol.(x);
  check_float_eps 1e-6 "y" 1.2 sol.(y);
  check_float_eps 1e-6 "obj" 2.8 obj

let test_simplex_equality_and_ge () =
  (* min x + y s.t. x + y >= 2, x - y = 1  ->  (1.5, 0.5). *)
  let lp = Lp.create () in
  let x = Lp.add_var lp "x" and y = Lp.add_var lp "y" in
  Lp.add_constr lp ~name:"a" [ (1., x); (1., y) ] Lp.Ge 2.;
  Lp.add_constr lp ~name:"b" [ (1., x); (-1., y) ] Lp.Eq 1.;
  Lp.set_objective lp (Lp.Minimize [ (1., x); (1., y) ]);
  let sol, obj = solve_expect lp in
  check_float_eps 1e-6 "obj" 2. obj;
  check_float_eps 1e-6 "x" 1.5 sol.(x)

let test_simplex_bounds () =
  (* min x with 1 <= x <= 3 -> 1; max x -> 3 (via upper-bound row). *)
  let lp = Lp.create () in
  let x = Lp.add_var lp ~lb:1. ~ub:3. "x" in
  Lp.set_objective lp (Lp.Minimize [ (1., x) ]);
  let sol, _ = solve_expect lp in
  check_float_eps 1e-6 "min at lb" 1. sol.(x);
  Lp.set_objective lp (Lp.Maximize [ (1., x) ]);
  let sol, _ = solve_expect lp in
  check_float_eps 1e-6 "max at ub" 3. sol.(x)

let test_simplex_fixed_vars_substituted () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:10. "x" in
  let y = Lp.add_var lp ~ub:10. "y" in
  Lp.fix lp y 4.;
  Lp.add_constr lp ~name:"a" [ (1., x); (1., y) ] Lp.Ge 6.;
  Lp.set_objective lp (Lp.Minimize [ (1., x) ]);
  let sol, obj = solve_expect lp in
  check_float_eps 1e-6 "x adjusts to the constant" 2. sol.(x);
  check_float_eps 1e-6 "fixed var reported" 4. sol.(y);
  check_float_eps 1e-6 "obj" 2. obj

let test_simplex_infeasible () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:1. "x" in
  Lp.add_constr lp ~name:"a" [ (1., x) ] Lp.Ge 2.;
  Lp.set_objective lp (Lp.Minimize [ (1., x) ]);
  check_bool "infeasible" true (Simplex.solve_relaxation lp = Simplex.Infeasible)

let test_simplex_unbounded () =
  let lp = Lp.create () in
  let x = Lp.add_var lp "x" in
  Lp.set_objective lp (Lp.Maximize [ (1., x) ]);
  check_bool "unbounded" true (Simplex.solve_relaxation lp = Simplex.Unbounded)

let test_simplex_degenerate () =
  (* Degenerate vertex: several constraints meet at the optimum. *)
  let lp = Lp.create () in
  let x = Lp.add_var lp "x" and y = Lp.add_var lp "y" in
  Lp.add_constr lp ~name:"a" [ (1., x); (1., y) ] Lp.Le 1.;
  Lp.add_constr lp ~name:"b" [ (1., x) ] Lp.Le 1.;
  Lp.add_constr lp ~name:"c" [ (1., y) ] Lp.Le 1.;
  Lp.set_objective lp (Lp.Maximize [ (1., x); (1., y) ]);
  let _, obj = solve_expect lp in
  check_float_eps 1e-6 "obj" 1. obj

let test_simplex_rejects_free_vars () =
  let lp = Lp.create () in
  let _ = Lp.add_var lp ~lb:neg_infinity "x" in
  Lp.set_objective lp (Lp.Minimize []);
  Alcotest.check_raises "free vars unsupported"
    (Invalid_argument "Simplex: variables must have finite lower bounds") (fun () ->
      ignore (Simplex.solve_relaxation lp))

(* ----------------------------------------------------------------- mip --- *)

let test_mip_knapsack () =
  (* max 5a + 4b + 3c s.t. 2a + 3b + c <= 4, binaries -> a=1, c=1, obj 8
     (b too heavy with a). *)
  let lp = Lp.create () in
  let a = Lp.add_var lp ~kind:Lp.Binary "a" in
  let b = Lp.add_var lp ~kind:Lp.Binary "b" in
  let c = Lp.add_var lp ~kind:Lp.Binary "c" in
  Lp.add_constr lp ~name:"w" [ (2., a); (3., b); (1., c) ] Lp.Le 4.;
  Lp.set_objective lp (Lp.Maximize [ (5., a); (4., b); (3., c) ]);
  (* Mip minimises: negate through Maximize support in Simplex; Mip compares
     objective values as reported by the relaxation, which follows the model
     objective.  Use an equivalent minimisation. *)
  let lp2 = Lp.create () in
  let a2 = Lp.add_var lp2 ~kind:Lp.Binary "a" in
  let b2 = Lp.add_var lp2 ~kind:Lp.Binary "b" in
  let c2 = Lp.add_var lp2 ~kind:Lp.Binary "c" in
  Lp.add_constr lp2 ~name:"w" [ (2., a2); (3., b2); (1., c2) ] Lp.Le 4.;
  Lp.set_objective lp2 (Lp.Minimize [ (-5., a2); (-4., b2); (-3., c2) ]);
  let sol = Mip.solve lp2 in
  check_bool "optimal" true (sol.Mip.status = Mip.Optimal);
  (match sol.Mip.incumbent with
  | Some (x, obj) ->
    check_float_eps 1e-6 "objective" (-8.) obj;
    check_float_eps 1e-6 "a" 1. x.(a2);
    check_float_eps 1e-6 "b" 0. x.(b2);
    check_float_eps 1e-6 "c" 1. x.(c2)
  | None -> Alcotest.fail "no incumbent");
  ignore (a, b, c, lp)

let test_mip_integer_rounding () =
  (* min y s.t. y >= 1.5, y integer -> 2. *)
  let lp = Lp.create () in
  let y = Lp.add_var lp ~ub:10. ~kind:Lp.General_integer "y" in
  Lp.add_constr lp ~name:"a" [ (1., y) ] Lp.Ge 1.5;
  Lp.set_objective lp (Lp.Minimize [ (1., y) ]);
  let sol = Mip.solve lp in
  (match sol.Mip.incumbent with
  | Some (_, obj) -> check_float_eps 1e-6 "rounded up" 2. obj
  | None -> Alcotest.fail "no incumbent")

let test_mip_infeasible () =
  let lp = Lp.create () in
  let y = Lp.add_var lp ~ub:1. ~kind:Lp.Binary "y" in
  Lp.add_constr lp ~name:"a" [ (1., y) ] Lp.Ge 0.25;
  Lp.add_constr lp ~name:"b" [ (1., y) ] Lp.Le 0.75;
  Lp.set_objective lp (Lp.Minimize [ (1., y) ]);
  check_bool "no integral point" true ((Mip.solve lp).Mip.status = Mip.Infeasible)

let test_mip_incumbent_prunes () =
  (* Seeding an incumbent below the optimum proves nothing better exists. *)
  let lp = Lp.create () in
  let y = Lp.add_var lp ~ub:10. ~kind:Lp.General_integer "y" in
  Lp.add_constr lp ~name:"a" [ (1., y) ] Lp.Ge 3.;
  Lp.set_objective lp (Lp.Minimize [ (1., y) ]);
  let sol = Mip.solve ~incumbent:2.5 lp in
  check_bool "pruned everything" true (sol.Mip.incumbent = None)

let test_mip_bounds_restored () =
  let lp = Lp.create () in
  let y = Lp.add_var lp ~ub:10. ~kind:Lp.General_integer "y" in
  Lp.add_constr lp ~name:"a" [ (1., y) ] Lp.Ge 1.5;
  Lp.set_objective lp (Lp.Minimize [ (1., y) ]);
  ignore (Mip.solve lp);
  check_float "lb restored" 0. (Lp.var lp y).Lp.lb;
  check_float "ub restored" 10. (Lp.var lp y).Lp.ub

(* ----------------------------------------------------------- lp_format --- *)

let contains sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_lp_format_sections () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:2. "x" in
  let b = Lp.add_var lp ~kind:Lp.Binary "flag" in
  let k = Lp.add_var lp ~lb:1. ~ub:4. ~kind:Lp.General_integer "p 1" in
  Lp.add_constr lp ~name:"cap" [ (1., x); (2., b); (1., k) ] Lp.Le 5.;
  Lp.set_objective lp (Lp.Minimize [ (1., x) ]);
  let out = Lp_format.to_string lp in
  check_bool "minimize" true (contains "Minimize" out);
  check_bool "subject to" true (contains "Subject To" out);
  check_bool "bounds" true (contains "Bounds" out);
  check_bool "binaries" true (contains "Binaries" out);
  check_bool "generals" true (contains "Generals" out);
  check_bool "end" true (contains "End" out);
  check_bool "sanitised name" true (contains "p_1" out);
  check_bool "no raw space name" false (contains "p 1" out)

let test_lp_format_sanitize () =
  check_string "spaces" "a_b" (Lp_format.sanitize "a b");
  check_string "empty" "v" (Lp_format.sanitize "")

let test_lp_format_write () =
  let lp = Lp.create () in
  let _ = Lp.add_var lp "x" in
  Lp.set_objective lp (Lp.Minimize []);
  let path = Filename.concat (Filename.get_temp_dir_name ()) "memsched_test.lp" in
  Lp_format.write lp path;
  check_bool "file exists" true (Sys.file_exists path)

(* ------------------------------------------------------------- lp_parse --- *)

let test_lp_parse_simple () =
  let text =
    "\\ comment\nMinimize\n obj: 2 x + 3 y\nSubject To\n c1: x + y >= 2\n c2: x - y <= 1\n\
     Bounds\n 0 <= x <= 10\n y <= 5\nEnd\n"
  in
  let lp = Lp_parse.of_string text in
  check_int "vars" 2 (Lp.n_vars lp);
  check_int "constrs" 2 (Lp.n_constrs lp);
  match Simplex.solve_relaxation lp with
  | Simplex.Optimal { obj; _ } -> check_float_eps 1e-6 "optimum" 4.5 obj
  | _ -> Alcotest.fail "should solve"

let test_lp_parse_sections () =
  let text =
    "Maximize\n obj: x + y + z\nSubject To\n c: x + y + z <= 2\nBounds\n z <= 5\n\
     Binaries\n x\n y\nGenerals\n z\nEnd\n"
  in
  let lp = Lp_parse.of_string text in
  let kind_of name =
    let rec find i =
      if i >= Lp.n_vars lp then Alcotest.failf "var %s missing" name
      else if (Lp.var lp i).Lp.vname = name then (Lp.var lp i).Lp.kind
      else find (i + 1)
    in
    find 0
  in
  check_bool "x binary" true (kind_of "x" = Lp.Binary);
  check_bool "z integer" true (kind_of "z" = Lp.General_integer)

let test_lp_parse_negative_rhs_and_free () =
  let text = "Minimize\n obj: x\nSubject To\n c: x >= - 3\nBounds\n x free\nEnd\n" in
  let lp = Lp_parse.of_string text in
  check_float "free lb" neg_infinity (Lp.var lp 0).Lp.lb;
  check_float "rhs sign" (-3.) (Lp.constrs lp).(0).Lp.rhs

let test_lp_parse_rejects () =
  let bad text = try ignore (Lp_parse.of_string text); false with Invalid_argument _ -> true in
  check_bool "garbage" true (bad "x + y <= 1\n");
  check_bool "relation in objective" true (bad "Minimize\n x <= 1\nEnd\n")

(* Round-trip: the paper's ILP for the toy chain survives write -> parse with
   the same optimum. *)
let test_lp_roundtrip_ilp () =
  let g = Toy.chain ~n:2 ~w:2. ~f:1. ~c:1. in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:3. ~m_red:3. in
  let model = Ilp_model.build g p in
  let lp2 = Lp_parse.of_string (Lp_format.to_string (Ilp_model.lp model)) in
  check_int "vars preserved" (Lp.n_vars (Ilp_model.lp model)) (Lp.n_vars lp2);
  check_int "constrs preserved" (Lp.n_constrs (Ilp_model.lp model)) (Lp.n_constrs lp2);
  let a = Mip.solve ~node_limit:5_000 ~time_limit:60. (Ilp_model.lp model) in
  let b = Mip.solve ~node_limit:5_000 ~time_limit:60. lp2 in
  match (a.Mip.incumbent, b.Mip.incumbent) with
  | Some (_, oa), Some (_, ob) -> check_float_eps 1e-6 "same optimum" oa ob
  | _ -> Alcotest.fail "both should solve"

(* ----------------------------------------------------------- ilp_model --- *)

let test_ilp_sizes () =
  let g = Toy.chain ~n:3 ~w:2. ~f:1. ~c:1. in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:4. ~m_red:4. in
  let model = Ilp_model.build g p in
  check_int "variables" 100 (Ilp_model.n_vars model);
  check_int "constraints" 257 (Ilp_model.n_constrs model);
  check_float "mmax" (12. +. 2.) (Ilp_model.mmax model)

let test_ilp_rejects_unbounded () =
  let g = Toy.dex () in
  let p = Platform.unbounded ~p_blue:1 ~p_red:1 in
  Alcotest.check_raises "needs finite capacities"
    (Invalid_argument "Ilp_model.build: memory capacities must be finite") (fun () ->
      ignore (Ilp_model.build g p))

(* The single-task ILP is solvable by pure LP reasoning: the task runs on the
   faster resource at time 0. *)
let test_ilp_single_task () =
  let b = Dag.Builder.create () in
  let _ = Dag.Builder.add_task b ~name:"solo" ~w_blue:5. ~w_red:2. () in
  let g = Dag.Builder.finalize b in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:1. ~m_red:1. in
  let model = Ilp_model.build g p in
  let sol = Mip.solve ~node_limit:1_000 (Ilp_model.lp model) in
  (match sol.Mip.incumbent with
  | Some (x, obj) ->
    check_float_eps 1e-6 "runs on the red resource" 2. obj;
    let s = Ilp_model.extract_schedule model x in
    let r = validate_ok g p s in
    check_float "validated makespan" 2. r.Validator.makespan
  | None -> Alcotest.fail "no incumbent")

(* MIP on the 2-task chain agrees with the exact scheduler and validates. *)
let test_ilp_chain2_matches_exact () =
  let g = Toy.chain ~n:2 ~w:2. ~f:1. ~c:1. in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:3. ~m_red:3. in
  let model = Ilp_model.build g p in
  let sol = Mip.solve ~node_limit:5_000 ~time_limit:60. (Ilp_model.lp model) in
  let exact = Exact.solve g p in
  check_bool "exact proved" true (exact.Exact.status = Exact.Proven_optimal);
  match sol.Mip.incumbent with
  | Some (x, obj) ->
    check_float_eps 1e-6 "same optimum" exact.Exact.makespan obj;
    let s = Ilp_model.extract_schedule model x in
    ignore (validate_ok g p s)
  | None -> Alcotest.fail "MIP found nothing"

let test_ilp_presolve_consistent () =
  (* Presolve must not change the optimum. *)
  let g = Toy.chain ~n:2 ~w:1. ~f:1. ~c:1. in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:3. ~m_red:3. in
  let with_presolve = Mip.solve ~time_limit:60. (Ilp_model.lp (Ilp_model.build ~presolve:true g p)) in
  let without = Mip.solve ~time_limit:60. (Ilp_model.lp (Ilp_model.build ~presolve:false g p)) in
  match (with_presolve.Mip.incumbent, without.Mip.incumbent) with
  | Some (_, a), Some (_, b) -> check_float_eps 1e-6 "same optimum" a b
  | _ -> Alcotest.fail "both should solve"

(* --------------------------------------------------------------- exact --- *)

let dex = Toy.dex ()
let dex_platform m = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:m ~m_red:m

let test_exact_dex_paper_values () =
  (* SS 3.3: at M = 5 the optimum is s1 (makespan 6); at M = 4 it is s2
     (makespan 7); at M = 3 no schedule exists. *)
  let r5 = Exact.solve dex (dex_platform 5.) in
  check_bool "M=5 proven" true (r5.Exact.status = Exact.Proven_optimal);
  check_float "M=5 makespan" 6. r5.Exact.makespan;
  let r4 = Exact.solve dex (dex_platform 4.) in
  check_bool "M=4 proven" true (r4.Exact.status = Exact.Proven_optimal);
  check_float "M=4 makespan" 7. r4.Exact.makespan;
  let r3 = Exact.solve dex (dex_platform 3.) in
  check_bool "M=3 infeasible" true (r3.Exact.status = Exact.Proven_infeasible)

let test_exact_schedule_validates () =
  let p = dex_platform 4. in
  match (Exact.solve dex p).Exact.schedule with
  | Some s ->
    let r = validate_ok dex p s in
    check_float "makespan" 7. r.Validator.makespan
  | None -> Alcotest.fail "expected schedule"

let test_exact_node_budget () =
  let r = Exact.solve ~node_limit:2 dex (dex_platform 5.) in
  check_bool "budget respected" true (r.Exact.nodes <= 2);
  check_bool "not proven" true
    (r.Exact.status = Exact.Feasible || r.Exact.status = Exact.Unknown)

let test_exact_optimal_makespan () =
  Alcotest.(check (option (float 1e-9))) "helper" (Some 7.)
    (Exact.optimal_makespan dex (dex_platform 4.));
  Alcotest.(check (option (float 1e-9))) "infeasible" None
    (Exact.optimal_makespan dex (dex_platform 3.))

let exact_dominates_heuristics =
  qtest ~count:15 "exact <= heuristics, >= lower bound"
    QCheck.(int_range 0 500)
    (fun seed ->
      let g = dag_of_seed ~size:8 seed in
      let p0 = Platform.unbounded ~p_blue:2 ~p_red:2 in
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g p0) in
      let p = Platform.with_bounds p0 ~m_blue:(0.8 *. peak) ~m_red:(0.8 *. peak) in
      match Exact.solve ~node_limit:500_000 g p with
      | { Exact.status = Exact.Proven_optimal; makespan; _ } ->
        makespan +. 1e-6 >= Lower_bound.makespan g p
        && List.for_all
             (fun h ->
               let o = Outcome.run h g p in
               (not o.Outcome.feasible) || o.Outcome.makespan +. 1e-6 >= makespan)
             [ Heuristics.MemHEFT; Heuristics.MemMinMin ]
      | _ -> true (* budget exceeded: nothing to check *))

let exact_schedules_validate =
  qtest ~count:15 "exact schedules pass the oracle" QCheck.(int_range 0 500) (fun seed ->
      let g = dag_of_seed ~size:8 seed in
      let p0 = Platform.unbounded ~p_blue:2 ~p_red:2 in
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g p0) in
      let p = Platform.with_bounds p0 ~m_blue:(0.7 *. peak) ~m_red:(0.7 *. peak) in
      match (Exact.solve ~node_limit:500_000 g p).Exact.schedule with
      | Some s -> Result.is_ok (Validator.validate g p s)
      | None -> true)

let () =
  Alcotest.run "ilp"
    [ ( "lp",
        [ Alcotest.test_case "build" `Quick test_lp_build;
          Alcotest.test_case "normalise terms" `Quick test_lp_normalizes_terms;
          Alcotest.test_case "violations" `Quick test_lp_violations;
          Alcotest.test_case "integer violation" `Quick test_lp_integer_violation;
          Alcotest.test_case "fix/override" `Quick test_lp_fix_and_override ] );
      ( "simplex",
        [ Alcotest.test_case "basic max" `Quick test_simplex_basic;
          Alcotest.test_case "equality and >=" `Quick test_simplex_equality_and_ge;
          Alcotest.test_case "bounds" `Quick test_simplex_bounds;
          Alcotest.test_case "fixed vars substituted" `Quick test_simplex_fixed_vars_substituted;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
          Alcotest.test_case "rejects free vars" `Quick test_simplex_rejects_free_vars ] );
      ( "mip",
        [ Alcotest.test_case "knapsack" `Quick test_mip_knapsack;
          Alcotest.test_case "integer rounding" `Quick test_mip_integer_rounding;
          Alcotest.test_case "infeasible" `Quick test_mip_infeasible;
          Alcotest.test_case "incumbent prunes" `Quick test_mip_incumbent_prunes;
          Alcotest.test_case "bounds restored" `Quick test_mip_bounds_restored ] );
      ( "lp_format",
        [ Alcotest.test_case "sections" `Quick test_lp_format_sections;
          Alcotest.test_case "sanitize" `Quick test_lp_format_sanitize;
          Alcotest.test_case "write" `Quick test_lp_format_write ] );
      ( "lp_parse",
        [ Alcotest.test_case "simple model" `Quick test_lp_parse_simple;
          Alcotest.test_case "sections" `Quick test_lp_parse_sections;
          Alcotest.test_case "negative rhs / free" `Quick test_lp_parse_negative_rhs_and_free;
          Alcotest.test_case "rejects" `Quick test_lp_parse_rejects;
          Alcotest.test_case "ILP roundtrip" `Slow test_lp_roundtrip_ilp ] );
      ( "ilp_model",
        [ Alcotest.test_case "sizes" `Quick test_ilp_sizes;
          Alcotest.test_case "rejects unbounded" `Quick test_ilp_rejects_unbounded;
          Alcotest.test_case "single task" `Quick test_ilp_single_task;
          Alcotest.test_case "chain2 matches exact" `Slow test_ilp_chain2_matches_exact;
          Alcotest.test_case "presolve consistent" `Slow test_ilp_presolve_consistent ] );
      ( "exact",
        [ Alcotest.test_case "dex paper values" `Quick test_exact_dex_paper_values;
          Alcotest.test_case "schedule validates" `Quick test_exact_schedule_validates;
          Alcotest.test_case "node budget" `Quick test_exact_node_budget;
          Alcotest.test_case "optimal_makespan" `Quick test_exact_optimal_makespan;
          exact_dominates_heuristics;
          exact_schedules_validate ] ) ]
