(* Tests for the dual-memory platform model. *)

open Helpers

let p = Platform.make ~p_blue:2 ~p_red:3 ~m_blue:10. ~m_red:20.

let test_make_rejects () =
  Alcotest.check_raises "no blue procs"
    (Invalid_argument "Platform.make: processor counts must be positive") (fun () ->
      ignore (Platform.make ~p_blue:0 ~p_red:1 ~m_blue:1. ~m_red:1.));
  Alcotest.check_raises "negative memory"
    (Invalid_argument "Platform.make: negative memory capacity") (fun () ->
      ignore (Platform.make ~p_blue:1 ~p_red:1 ~m_blue:(-1.) ~m_red:1.))

let test_counts () =
  check_int "total" 5 (Platform.n_procs p);
  check_int "blue" 2 (Platform.n_procs_of p Platform.Blue);
  check_int "red" 3 (Platform.n_procs_of p Platform.Red)

let test_capacity () =
  check_float "blue" 10. (Platform.capacity p Platform.Blue);
  check_float "red" 20. (Platform.capacity p Platform.Red);
  let u = Platform.unbounded ~p_blue:1 ~p_red:1 in
  check_float "unbounded" infinity (Platform.capacity u Platform.Blue)

let test_memory_of_proc () =
  check_bool "proc 0 blue" true (Platform.memory_of_proc p 0 = Platform.Blue);
  check_bool "proc 1 blue" true (Platform.memory_of_proc p 1 = Platform.Blue);
  check_bool "proc 2 red" true (Platform.memory_of_proc p 2 = Platform.Red);
  check_bool "proc 4 red" true (Platform.memory_of_proc p 4 = Platform.Red);
  Alcotest.check_raises "out of range" (Invalid_argument "Platform.memory_of_proc: out of range")
    (fun () -> ignore (Platform.memory_of_proc p 5))

let test_procs_of () =
  Alcotest.(check (list int)) "blue procs" [ 0; 1 ] (Platform.procs_of p Platform.Blue);
  Alcotest.(check (list int)) "red procs" [ 2; 3; 4 ] (Platform.procs_of p Platform.Red);
  check_int "first red" 2 (Platform.first_proc p Platform.Red)

let test_other () =
  check_bool "other blue" true (Platform.other Platform.Blue = Platform.Red);
  check_bool "other red" true (Platform.other Platform.Red = Platform.Blue)

let test_with_bounds () =
  let p' = Platform.with_bounds p ~m_blue:1. ~m_red:2. in
  check_float "new blue" 1. (Platform.capacity p' Platform.Blue);
  check_int "procs preserved" 5 (Platform.n_procs p')

let test_w () =
  let g = Toy.dex () in
  check_float "T1 blue" 3. (Platform.w g 0 Platform.Blue);
  check_float "T1 red" 1. (Platform.w g 0 Platform.Red)

let () =
  Alcotest.run "platform"
    [ ( "platform",
        [ Alcotest.test_case "make rejects" `Quick test_make_rejects;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "capacity" `Quick test_capacity;
          Alcotest.test_case "memory_of_proc" `Quick test_memory_of_proc;
          Alcotest.test_case "procs_of" `Quick test_procs_of;
          Alcotest.test_case "other" `Quick test_other;
          Alcotest.test_case "with_bounds" `Quick test_with_bounds;
          Alcotest.test_case "task durations" `Quick test_w ] ) ]
