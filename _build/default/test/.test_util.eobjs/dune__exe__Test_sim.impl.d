test/test_sim.ml: Alcotest Array Dag Events Filename Format Gantt Helpers List Option Platform Result Sched_stats Schedule Schedule_io String Toy Validator
