test/test_platform.ml: Alcotest Helpers Platform Toy
