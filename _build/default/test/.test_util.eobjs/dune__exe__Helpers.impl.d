test/helpers.ml: Alcotest Daggen Platform QCheck QCheck_alcotest Rng String Validator
