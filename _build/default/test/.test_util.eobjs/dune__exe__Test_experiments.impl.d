test/test_experiments.ml: Alcotest Dag Figures Filename Float Helpers Heuristics List Platform Plots String Sweep Sys Workloads
