test/test_ilp.ml: Alcotest Array Dag Exact Filename Helpers Heuristics Ilp_model List Lower_bound Lp Lp_format Lp_parse Mip Outcome Platform QCheck Result Simplex String Sys Toy Validator
