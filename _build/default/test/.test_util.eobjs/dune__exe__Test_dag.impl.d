test/test_dag.ml: Alcotest Array Dag Fun Helpers List Paths String Toy
