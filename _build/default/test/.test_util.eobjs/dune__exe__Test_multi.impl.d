test/test_multi.ml: Alcotest Array Dag Fun Helpers Heuristics List Mheuristics Mplatform Mproblem Mschedule Outcome Platform Result Rng Schedule Toy
