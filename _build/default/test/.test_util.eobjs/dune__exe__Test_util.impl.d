test/test_util.ml: Alcotest Array Csv Filename Float Fp Fun Helpers List Pqueue QCheck Rng Staircase Stats String Table
