test/test_generators.ml: Alcotest Array Broadcast Cholesky Dag Daggen Fun Helpers Heuristics Kernels List Lu Option Platform Printf QCheck Result Rng Schedule Toy Validator
