(* Shared test helpers. *)

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* Deterministic small random DAG from an integer seed (shrinks well). *)
let dag_of_seed ?(size = 12) seed =
  let params = { Daggen.small_rand_params with Daggen.size } in
  Daggen.generate (Rng.create seed) params

let seed_arb = QCheck.int_range 0 10_000

(* A platform with two processors per memory and the given symmetric bound. *)
let platform ?(p_blue = 2) ?(p_red = 2) bound =
  Platform.make ~p_blue ~p_red ~m_blue:bound ~m_red:bound

let validate_ok g p s =
  match Validator.validate g p s with
  | Ok r -> r
  | Error errs -> Alcotest.failf "invalid schedule:\n%s" (String.concat "\n" errs)
