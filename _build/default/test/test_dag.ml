(* Tests for the DAG substrate: builder, accessors, orders, serialisation. *)

open Helpers

let dex = Toy.dex ()

(* ------------------------------------------------------------ builder --- *)

let test_builder_basic () =
  let b = Dag.Builder.create () in
  let a = Dag.Builder.add_task b ~name:"a" ~w_blue:1. ~w_red:2. () in
  let c = Dag.Builder.add_task b ~w_blue:3. ~w_red:4. () in
  Dag.Builder.add_edge b ~src:a ~dst:c ~size:5. ~comm:6.;
  let g = Dag.Builder.finalize b in
  check_int "n_tasks" 2 (Dag.n_tasks g);
  check_int "n_edges" 1 (Dag.n_edges g);
  check_string "explicit name" "a" (Dag.task g a).Dag.name;
  check_string "default name" "t1" (Dag.task g c).Dag.name;
  check_float "w_blue" 1. (Dag.task g a).Dag.w_blue;
  let e = Dag.edge g 0 in
  check_float "size" 5. e.Dag.size;
  check_float "comm" 6. e.Dag.comm

let test_builder_rejects_cycle () =
  let b = Dag.Builder.create () in
  let x = Dag.Builder.add_task b ~w_blue:1. ~w_red:1. () in
  let y = Dag.Builder.add_task b ~w_blue:1. ~w_red:1. () in
  Dag.Builder.add_edge b ~src:x ~dst:y ~size:1. ~comm:1.;
  Dag.Builder.add_edge b ~src:y ~dst:x ~size:1. ~comm:1.;
  Alcotest.check_raises "cycle" (Invalid_argument "Dag.Builder.finalize: graph has a cycle")
    (fun () -> ignore (Dag.Builder.finalize b))

let test_builder_rejects_self_loop () =
  let b = Dag.Builder.create () in
  let x = Dag.Builder.add_task b ~w_blue:1. ~w_red:1. () in
  Alcotest.check_raises "self-loop" (Invalid_argument "Dag.Builder.add_edge: self-loop")
    (fun () -> Dag.Builder.add_edge b ~src:x ~dst:x ~size:1. ~comm:1.)

let test_builder_rejects_duplicate () =
  let b = Dag.Builder.create () in
  let x = Dag.Builder.add_task b ~w_blue:1. ~w_red:1. () in
  let y = Dag.Builder.add_task b ~w_blue:1. ~w_red:1. () in
  Dag.Builder.add_edge b ~src:x ~dst:y ~size:1. ~comm:1.;
  Alcotest.check_raises "duplicate" (Invalid_argument "Dag.Builder.add_edge: duplicate edge")
    (fun () -> Dag.Builder.add_edge b ~src:x ~dst:y ~size:2. ~comm:2.)

let test_builder_rejects_dangling () =
  let b = Dag.Builder.create () in
  let x = Dag.Builder.add_task b ~w_blue:1. ~w_red:1. () in
  Alcotest.check_raises "dangling" (Invalid_argument "Dag.Builder.add_edge: dangling endpoint")
    (fun () -> Dag.Builder.add_edge b ~src:x ~dst:7 ~size:1. ~comm:1.)

let test_builder_rejects_negative () =
  let b = Dag.Builder.create () in
  Alcotest.check_raises "negative time" (Invalid_argument "Dag.Builder.add_task: negative time")
    (fun () -> ignore (Dag.Builder.add_task b ~w_blue:(-1.) ~w_red:1. ()))

(* ---------------------------------------------------------- accessors --- *)

let test_children_parents () =
  Alcotest.(check (list int)) "children of T1" [ 1; 2 ] (Dag.children dex 0);
  Alcotest.(check (list int)) "parents of T4" [ 1; 2 ] (Dag.parents dex 3);
  Alcotest.(check (list int)) "sources" [ 0 ] (Dag.sources dex);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Dag.sinks dex)

let test_find_edge () =
  (match Dag.find_edge dex ~src:0 ~dst:2 with
  | Some e -> check_float "F(1,3)" 2. e.Dag.size
  | None -> Alcotest.fail "edge exists");
  check_bool "absent edge" true (Dag.find_edge dex ~src:3 ~dst:0 = None)

let test_mem_req () =
  (* MemReq(T3) = F(1,3) + F(3,4) = 4 as computed in SS 3.2 of the paper. *)
  check_float "paper example" 4. (Dag.mem_req dex 2);
  check_float "in_size T4" 3. (Dag.in_size dex 3);
  check_float "out_size T1" 3. (Dag.out_size dex 0);
  check_float "total files" 6. (Dag.total_file_size dex)

let test_w_min () =
  check_float "T1 min" 1. (Dag.w_min dex 0);
  check_float "T3 min" 3. (Dag.w_min dex 2)

let test_critical_path () =
  (* min-duration path T1 -> T3 -> T4 = 1 + 3 + 1 = 5. *)
  check_float "critical path" 5. (Dag.critical_path_min dex)

let test_longest_path_weighted () =
  let w = Dag.longest_path dex ~node_weight:(fun i -> (Dag.task dex i).Dag.w_blue)
      ~edge_weight:(fun e -> e.Dag.comm) in
  (* blue times: T1(3) +1+ T3(6) +1+ T4(1) = 12. *)
  check_float "blue path with comms" 12. w

(* --------------------------------------------------------------- topo --- *)

let test_topo_dex () =
  let order = Dag.topological_order dex in
  check_bool "is topological" true (Dag.is_topological dex order)

let test_is_topological_rejects () =
  check_bool "reversed is not" false (Dag.is_topological dex [| 3; 2; 1; 0 |]);
  check_bool "wrong length" false (Dag.is_topological dex [| 0; 1 |]);
  check_bool "duplicate entries" false (Dag.is_topological dex [| 0; 0; 1; 2 |])

let topo_property =
  qtest "topological order of random DAGs" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      Dag.is_topological g (Dag.topological_order g))

(* ------------------------------------------------------ serialisation --- *)

let test_roundtrip_dex () =
  let g = Dag.of_string (Dag.to_string dex) in
  check_int "n" 4 (Dag.n_tasks g);
  check_int "m" 4 (Dag.n_edges g);
  check_float "w preserved" 6. (Dag.task g 2).Dag.w_blue;
  check_string "name preserved" "T3" (Dag.task g 2).Dag.name

let roundtrip_property =
  qtest ~count:50 "serialisation round-trips" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      let g' = Dag.of_string (Dag.to_string g) in
      Dag.n_tasks g = Dag.n_tasks g'
      && Dag.n_edges g = Dag.n_edges g'
      && List.for_all
           (fun k ->
             let e = Dag.edge g k and e' = Dag.edge g' k in
             e.Dag.src = e'.Dag.src && e.Dag.dst = e'.Dag.dst && e.Dag.size = e'.Dag.size
             && e.Dag.comm = e'.Dag.comm)
           (List.init (Dag.n_edges g) Fun.id))

let test_of_string_errors () =
  let bad s = try ignore (Dag.of_string s); false with Invalid_argument _ -> true in
  check_bool "empty" true (bad "");
  check_bool "bad header" true (bad "nonsense");
  check_bool "missing tasks" true (bad "dag 2 0\ntask 0 a 1 1\n");
  check_bool "bad edge" true (bad "dag 1 1\ntask 0 a 1 1\nedge 0 zz 1 1\n")

let test_comments_and_blanks () =
  let g = Dag.of_string "# comment\ndag 1 0\n\ntask 0 solo 2 3\n" in
  check_int "parsed" 1 (Dag.n_tasks g)

(* ---------------------------------------------------------------- dot --- *)

let test_to_dot () =
  let dot = Dag.to_dot dex in
  check_bool "digraph" true (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  let contains sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check_bool "has node" true (contains "T1" dot);
  check_bool "has edge" true (contains "n0 -> n1" dot);
  let dot_hl = Dag.to_dot ~highlight:(fun i -> if i = 0 then Some "red" else None) dex in
  check_bool "highlight colour" true (contains "fillcolor=\"red\"" dot_hl)

(* -------------------------------------------------------------- paths --- *)

let test_bottom_levels () =
  let bl = Paths.bottom_levels dex ~node_weight:(Dag.w_min dex) ~edge_weight:(fun _ -> 0.) in
  check_float "sink" 1. bl.(3);
  check_float "T3" 4. bl.(2);
  check_float "root = critical path" 5. bl.(0)

let test_top_levels () =
  let tl = Paths.top_levels dex ~node_weight:(Dag.w_min dex) ~edge_weight:(fun _ -> 0.) in
  check_float "root" 0. tl.(0);
  check_float "T4 sees longest prefix" 4. tl.(3)

let test_critical_parent () =
  let bl = Paths.bottom_levels dex ~node_weight:(Dag.w_min dex) ~edge_weight:(fun _ -> 0.) in
  Alcotest.(check (option int)) "T1's critical child is T3" (Some 2)
    (Paths.critical_parent dex ~bottom:bl 0);
  Alcotest.(check (option int)) "sink has none" None (Paths.critical_parent dex ~bottom:bl 3)

let levels_sum_property =
  qtest "bottom levels dominate children" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      let bl = Paths.bottom_levels g ~node_weight:(Dag.w_min g) ~edge_weight:(fun _ -> 0.) in
      Array.for_all
        (fun (e : Dag.edge) -> bl.(e.Dag.src) >= bl.(e.Dag.dst) +. Dag.w_min g e.Dag.src -. 1e-9)
        (Dag.edges g))

let () =
  Alcotest.run "dag"
    [ ( "builder",
        [ Alcotest.test_case "basic" `Quick test_builder_basic;
          Alcotest.test_case "rejects cycle" `Quick test_builder_rejects_cycle;
          Alcotest.test_case "rejects self-loop" `Quick test_builder_rejects_self_loop;
          Alcotest.test_case "rejects duplicate" `Quick test_builder_rejects_duplicate;
          Alcotest.test_case "rejects dangling" `Quick test_builder_rejects_dangling;
          Alcotest.test_case "rejects negative" `Quick test_builder_rejects_negative ] );
      ( "accessors",
        [ Alcotest.test_case "children/parents" `Quick test_children_parents;
          Alcotest.test_case "find_edge" `Quick test_find_edge;
          Alcotest.test_case "mem_req (paper)" `Quick test_mem_req;
          Alcotest.test_case "w_min" `Quick test_w_min;
          Alcotest.test_case "critical path" `Quick test_critical_path;
          Alcotest.test_case "longest path weighted" `Quick test_longest_path_weighted ] );
      ( "topo",
        [ Alcotest.test_case "dex order" `Quick test_topo_dex;
          Alcotest.test_case "rejects invalid" `Quick test_is_topological_rejects;
          topo_property ] );
      ( "serialisation",
        [ Alcotest.test_case "dex roundtrip" `Quick test_roundtrip_dex;
          roundtrip_property;
          Alcotest.test_case "errors" `Quick test_of_string_errors;
          Alcotest.test_case "comments/blanks" `Quick test_comments_and_blanks ] );
      ("dot", [ Alcotest.test_case "render" `Quick test_to_dot ]);
      ( "paths",
        [ Alcotest.test_case "bottom levels" `Quick test_bottom_levels;
          Alcotest.test_case "top levels" `Quick test_top_levels;
          Alcotest.test_case "critical parent" `Quick test_critical_parent;
          levels_sum_property ] ) ]
