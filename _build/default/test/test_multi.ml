(* Tests for the k-memory generalisation (lib/multi) — the paper's SS 7
   future work.  The central property: on 2-pool platforms the generalised
   heuristics coincide with the dual-memory implementation. *)

open Helpers

let three_pool ?(caps = [ 20.; 20.; 20. ]) () =
  Mplatform.make
    (List.map (fun c -> { Mplatform.procs = 2; Mplatform.capacity = c }) caps)

(* A 3-pool problem: durations favour a different pool per task class. *)
let three_pool_problem seed =
  let g = dag_of_seed ~size:15 seed in
  let rng = Rng.create (seed + 1000) in
  let durations =
    Array.init (Dag.n_tasks g) (fun _ ->
        Array.init 3 (fun _ -> float_of_int (Rng.int_incl rng 1 20)))
  in
  Mproblem.make g ~durations

(* ----------------------------------------------------------- mplatform --- *)

let test_mplatform_basics () =
  let p = three_pool () in
  check_int "pools" 3 (Mplatform.n_pools p);
  check_int "procs" 6 (Mplatform.n_procs p);
  check_int "pool of proc 0" 0 (Mplatform.pool_of_proc p 0);
  check_int "pool of proc 3" 1 (Mplatform.pool_of_proc p 3);
  check_int "pool of proc 5" 2 (Mplatform.pool_of_proc p 5);
  Alcotest.(check (list int)) "procs of pool 1" [ 2; 3 ] (Mplatform.procs_of p 1)

let test_mplatform_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Mplatform.make: at least one pool required")
    (fun () -> ignore (Mplatform.make []));
  Alcotest.check_raises "zero procs"
    (Invalid_argument "Mplatform.make: processor counts must be positive") (fun () ->
      ignore (Mplatform.make [ { Mplatform.procs = 0; Mplatform.capacity = 1. } ]))

let test_mplatform_of_dual () =
  let dual = Platform.make ~p_blue:3 ~p_red:2 ~m_blue:7. ~m_red:9. in
  let p = Mplatform.of_dual dual in
  check_int "two pools" 2 (Mplatform.n_pools p);
  check_int "blue procs" 3 (Mplatform.pool p 0).Mplatform.procs;
  check_float "red capacity" 9. (Mplatform.capacity p 1)

let test_mplatform_with_capacities () =
  let p = Mplatform.with_capacities (three_pool ()) [ 1.; 2.; 3. ] in
  check_float "updated" 2. (Mplatform.capacity p 1);
  Alcotest.check_raises "arity" (Invalid_argument "Mplatform.with_capacities: arity mismatch")
    (fun () -> ignore (Mplatform.with_capacities p [ 1. ]))

(* ------------------------------------------------------------ mproblem --- *)

let test_mproblem_of_dual () =
  let g = Toy.dex () in
  let p = Mproblem.of_dual g in
  check_int "pools" 2 (Mproblem.n_pools p);
  check_float "T1 pool0" 3. (Mproblem.duration p 0 0);
  check_float "T1 pool1" 1. (Mproblem.duration p 0 1);
  check_float "w_min" 1. (Mproblem.w_min p 0);
  check_float "mean" 2. (Mproblem.mean_duration p 0)

let test_mproblem_rejects () =
  let g = Toy.dex () in
  check_bool "ragged" true
    (try ignore (Mproblem.make g ~durations:[| [| 1. |]; [| 1.; 2. |]; [| 1. |]; [| 1. |] |]); false
     with Invalid_argument _ -> true);
  check_bool "wrong rows" true
    (try ignore (Mproblem.make g ~durations:[| [| 1. |] |]); false
     with Invalid_argument _ -> true);
  check_bool "negative" true
    (try ignore (Mproblem.make g ~durations:(Array.make 4 [| -1. |])); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------- 2-pool = dual memory --- *)

let dual_consistency =
  qtest ~count:50 "2-pool generalisation = dual-memory implementation" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      let dual = Platform.unbounded ~p_blue:2 ~p_red:2 in
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g dual) in
      let bound = 0.8 *. peak in
      let dual_b = Platform.with_bounds dual ~m_blue:bound ~m_red:bound in
      let multi_b = Mplatform.of_dual dual_b in
      let problem = Mproblem.of_dual g in
      let same_result (a : Heuristics.result) (b : Mheuristics.result) =
        match (a, b) with
        | Error _, Error _ -> true
        | Ok sa, Ok sb ->
          List.for_all
            (fun i ->
              sa.Schedule.starts.(i) = sb.Mschedule.starts.(i)
              && sa.Schedule.procs.(i) = sb.Mschedule.procs.(i))
            (List.init (Dag.n_tasks g) Fun.id)
        | _ -> false
      in
      same_result (Heuristics.memheft g dual_b) (Mheuristics.memheft problem multi_b)
      && same_result (Heuristics.memminmin g dual_b) (Mheuristics.memminmin problem multi_b))

(* -------------------------------------------------------------- 3 pools --- *)

let three_pool_validity =
  qtest ~count:40 "3-pool schedules pass the oracle" seed_arb (fun seed ->
      let problem = three_pool_problem seed in
      let p = three_pool ~caps:[ 40.; 40.; 40. ] () in
      List.for_all
        (fun run ->
          match run problem p with
          | Ok s -> Result.is_ok (Mschedule.validate problem p s)
          | Error _ -> true)
        [ (fun pr pl -> Mheuristics.memheft pr pl); (fun pr pl -> Mheuristics.memminmin pr pl) ])

let three_pool_bounds_respected =
  qtest ~count:40 "3-pool peaks within capacities" seed_arb (fun seed ->
      let problem = three_pool_problem seed in
      let p = three_pool ~caps:[ 25.; 30.; 35. ] () in
      match Mheuristics.memheft problem p with
      | Error _ -> true
      | Ok s -> (
        match Mschedule.validate problem p s with
        | Ok r ->
          r.Mschedule.peaks.(0) <= 25. +. 1e-6
          && r.Mschedule.peaks.(1) <= 30. +. 1e-6
          && r.Mschedule.peaks.(2) <= 35. +. 1e-6
        | Error _ -> false))

let test_three_pool_feasible_case () =
  let problem = three_pool_problem 7 in
  let p = three_pool ~caps:[ 1000.; 1000.; 1000. ] () in
  match Mheuristics.memheft problem p with
  | Ok s ->
    let r = Mschedule.validate_exn problem p s in
    check_bool "positive makespan" true (r.Mschedule.makespan > 0.)
  | Error f -> Alcotest.failf "unexpected failure: %s" f.Mheuristics.reason

let test_three_pool_infeasible_case () =
  let problem = three_pool_problem 7 in
  let p = three_pool ~caps:[ 1.; 1.; 1. ] () in
  check_bool "refused" true (Result.is_error (Mheuristics.memheft problem p))

let test_heft_unbounded () =
  let problem = three_pool_problem 3 in
  let p = three_pool ~caps:[ 1.; 1.; 1. ] () in
  (* the memory-oblivious wrapper ignores the (tiny) capacities *)
  let s = Mheuristics.heft problem p in
  let unbounded = Mplatform.with_capacities p [ infinity; infinity; infinity ] in
  ignore (Mschedule.validate_exn problem unbounded s)

let test_more_pools_help () =
  (* Splitting the same processors across more pools cannot be checked in
     general, but a third fast pool must not hurt a pool-2-favouring
     workload: makespan with 3 pools <= makespan with pool 2 removed when
     every task is fastest there. *)
  let g = Toy.independent ~n:8 ~w_blue:8. ~w_red:8. in
  let durations = Array.init 8 (fun _ -> [| 8.; 8.; 1. |]) in
  let problem3 = Mproblem.make g ~durations in
  let p3 =
    Mplatform.make
      [ { Mplatform.procs = 1; Mplatform.capacity = infinity };
        { Mplatform.procs = 1; Mplatform.capacity = infinity };
        { Mplatform.procs = 1; Mplatform.capacity = infinity } ]
  in
  let s3 = Mheuristics.heft problem3 p3 in
  let m3 = Mschedule.makespan problem3 p3 s3 in
  let problem2 = Mproblem.of_dual g in
  let p2 = Mplatform.of_dual (Platform.unbounded ~p_blue:1 ~p_red:1) in
  let s2 = Mheuristics.heft problem2 p2 in
  let m2 = Mschedule.makespan problem2 p2 s2 in
  check_bool "fast third pool helps" true (m3 < m2)

(* ------------------------------------------------------------ validator --- *)

let test_mvalidate_rejects () =
  let problem = Mproblem.of_dual (Toy.dex ()) in
  let p = Mplatform.of_dual (Platform.make ~p_blue:1 ~p_red:1 ~m_blue:5. ~m_red:5.) in
  let s = Mschedule.create (Toy.dex ()) in
  (* all tasks at time 0 on proc 0: precedence + overlap violations *)
  check_bool "rejected" true (Result.is_error (Mschedule.validate problem p s))

let () =
  Alcotest.run "multi"
    [ ( "mplatform",
        [ Alcotest.test_case "basics" `Quick test_mplatform_basics;
          Alcotest.test_case "rejects" `Quick test_mplatform_rejects;
          Alcotest.test_case "of_dual" `Quick test_mplatform_of_dual;
          Alcotest.test_case "with_capacities" `Quick test_mplatform_with_capacities ] );
      ( "mproblem",
        [ Alcotest.test_case "of_dual" `Quick test_mproblem_of_dual;
          Alcotest.test_case "rejects" `Quick test_mproblem_rejects ] );
      ("consistency", [ dual_consistency ]);
      ( "three-pools",
        [ three_pool_validity;
          three_pool_bounds_respected;
          Alcotest.test_case "feasible case" `Quick test_three_pool_feasible_case;
          Alcotest.test_case "infeasible case" `Quick test_three_pool_infeasible_case;
          Alcotest.test_case "oblivious wrapper" `Quick test_heft_unbounded;
          Alcotest.test_case "fast third pool helps" `Quick test_more_pools_help ] );
      ("validator", [ Alcotest.test_case "rejects" `Quick test_mvalidate_rejects ]) ]
