(** Level computations over a DAG, parameterised by node and edge weights.

    [bottom_level i] is the heaviest path weight from [i] to a sink,
    including [i]'s own node weight — the quantity HEFT's upward rank
    instantiates with mean costs.  [top_level i] is the heaviest path weight
    from a source to [i], excluding [i]. *)

val bottom_levels :
  Dag.t -> node_weight:(int -> float) -> edge_weight:(Dag.edge -> float) -> float array

val top_levels :
  Dag.t -> node_weight:(int -> float) -> edge_weight:(Dag.edge -> float) -> float array

val critical_parent : Dag.t -> bottom:float array -> int -> int option
(** Child of [i] with the largest bottom level, if any (ties: smallest id). *)
