(** Application model: a directed acyclic task graph (§3 of the paper).

    Each task [i] carries two processing times, [w_blue] (on a blue / CPU-side
    processor) and [w_red] (on a red / accelerator-side processor).  Each edge
    [(i, j)] carries a data file of size [F(i,j)] produced by [i] and consumed
    by [j], and a transfer time [C(i,j)] paid when [i] and [j] execute on
    different memories.

    Graphs are immutable once finalised; build them with {!Builder}. *)

type task = {
  id : int;
  name : string;
  w_blue : float;  (** processing time on a blue processor, [W^(1)] *)
  w_red : float;  (** processing time on a red processor, [W^(2)] *)
}

type edge = {
  eid : int;
  src : int;
  dst : int;
  size : float;  (** file size [F(i,j)] held in memory *)
  comm : float;  (** transfer time [C(i,j)] across memories *)
}

type t

(** {1 Construction} *)

module Builder : sig
  type dag := t
  type t

  val create : unit -> t

  val add_task : t -> ?name:string -> w_blue:float -> w_red:float -> unit -> int
  (** Returns the new task id (dense, starting at 0).  Processing times must
      be non-negative. *)

  val add_edge : t -> src:int -> dst:int -> size:float -> comm:float -> unit
  (** Adds a dependency edge with its file size and transfer time.  Duplicate
      (src, dst) pairs and self-loops are rejected. *)

  val finalize : t -> dag
  (** Checks acyclicity and freezes the graph.
      @raise Invalid_argument on a cyclic graph or dangling endpoint. *)
end

(** {1 Accessors} *)

val n_tasks : t -> int
val n_edges : t -> int
val task : t -> int -> task
val edge : t -> int -> edge
val tasks : t -> task array
val edges : t -> edge array

val succ : t -> int -> edge list
(** Outgoing edges of a task, in insertion order. *)

val pred : t -> int -> edge list
(** Incoming edges of a task, in insertion order. *)

val children : t -> int -> int list
val parents : t -> int -> int list
val find_edge : t -> src:int -> dst:int -> edge option

val sources : t -> int list
(** Tasks without predecessors. *)

val sinks : t -> int list
(** Tasks without successors. *)

val mem_req : t -> int -> float
(** [mem_req g i] is the paper's [MemReq(i)]: the total size of input plus
    output files of task [i], i.e. the minimum memory any execution of [i]
    needs. *)

val in_size : t -> int -> float
(** Total size of the input files of a task. *)

val out_size : t -> int -> float
(** Total size of the output files of a task. *)

val total_file_size : t -> float

val w_min : t -> int -> float
(** [min w_blue w_red] for a task. *)

(** {1 Orders and paths} *)

val topological_order : t -> int array
(** A topological order (parents before children), stable w.r.t. task ids. *)

val is_topological : t -> int array -> bool

val longest_path : t -> node_weight:(int -> float) -> edge_weight:(edge -> float) -> float
(** Weight of a heaviest source-to-sink path, counting node weights of every
    node on the path and edge weights of every edge. *)

val critical_path_min : t -> float
(** Longest path using [min w_blue w_red] per task and zero edge weight: a
    makespan lower bound on any platform. *)

(** {1 Serialisation} *)

val to_string : t -> string
(** Line-oriented text format, re-read by {!of_string}. *)

val of_string : string -> t
(** @raise Invalid_argument on malformed input. *)

val to_dot : ?highlight:(int -> string option) -> t -> string
(** GraphViz rendering.  [highlight i] may return a fill colour for task
    [i]. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: node/edge counts, degree and cost ranges. *)
