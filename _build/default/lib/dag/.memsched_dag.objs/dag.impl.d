lib/dag/dag.ml: Array Buffer Format Hashtbl List Pqueue Printf String
