lib/dag/paths.mli: Dag
