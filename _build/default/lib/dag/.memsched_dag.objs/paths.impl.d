lib/dag/paths.ml: Array Dag List
