(** Makespan lower bounds, independent of memory capacities (the "Lower
    bound" series of Figure 11). *)

val critical_path : Dag.t -> float
(** Longest path counting [min(W_blue, W_red)] per task and no transfer
    costs: valid because a schedule may keep a whole path on one memory. *)

val work_area : Dag.t -> Platform.t -> float
(** [sum_i min(W_blue(i), W_red(i)) / (P1 + P2)]: total minimum work spread
    over every processor. *)

val makespan : Dag.t -> Platform.t -> float
(** [max (critical_path g) (work_area g p)]. *)

val min_memory : Dag.t -> float
(** [max over tasks of MemReq(i)]: the largest capacity a single task needs.
    No schedule exists on a platform whose {e larger} memory is below this
    (every task must fit, with all its input and output files, into the one
    memory it executes on). *)

val provably_infeasible : Dag.t -> Platform.t -> bool
(** [max(M_blue, M_red) < min_memory g]: a certificate that not even the ILP
    can schedule the instance. *)
