lib/core/multistart.mli: Dag Heuristics Platform Sched_state
