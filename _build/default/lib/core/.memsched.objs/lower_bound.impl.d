lib/core/lower_bound.ml: Dag Platform
