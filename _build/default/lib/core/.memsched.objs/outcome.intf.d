lib/core/outcome.mli: Dag Format Heuristics Platform Rng Sched_state Schedule
