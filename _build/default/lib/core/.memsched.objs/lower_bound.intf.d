lib/core/lower_bound.mli: Dag Platform
