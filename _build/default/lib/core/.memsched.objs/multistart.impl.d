lib/core/multistart.ml: Heuristics List Platform Rng Schedule Stats
