lib/core/sched_state.ml: Array Dag Fp List Option Platform Schedule Staircase
