lib/core/heuristics.mli: Dag Platform Result Rng Sched_state Schedule
