lib/core/heuristics.ml: Array Dag List Platform Rank Result Sched_state Schedule
