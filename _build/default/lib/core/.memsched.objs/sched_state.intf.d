lib/core/sched_state.mli: Dag Platform Schedule
