lib/core/rank.mli: Dag Rng
