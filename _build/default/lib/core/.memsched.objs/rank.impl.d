lib/core/rank.ml: Array Dag Fun Paths Rng
