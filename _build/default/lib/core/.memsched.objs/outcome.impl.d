lib/core/outcome.ml: Format Heuristics Option Platform Printf Schedule String Validator
