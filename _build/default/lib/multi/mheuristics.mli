(** MemHEFT and MemMinMin generalised to [k] memory pools (the paper's §7
    future work).  The machinery mirrors {!Sched_state}: per-pool [free_mem]
    staircases, the four EST components, per-edge just-in-time transfers.
    On a 2-pool platform the results coincide with the dual-memory
    implementation (property-tested). *)

type failure = { reason : string; n_scheduled : int }
type result = (Mschedule.t, failure) Result.t

val upward_ranks : Mproblem.t -> float array
(** Mean duration over all pools plus [C/2] edge costs, as in §5.1. *)

val memheft : ?rng:Rng.t -> Mproblem.t -> Mplatform.t -> result
val memminmin : Mproblem.t -> Mplatform.t -> result

val heft : ?rng:Rng.t -> Mproblem.t -> Mplatform.t -> Mschedule.t
(** Memory-oblivious reference (unbounded pools). *)
