(** Generalised platform with [k >= 1] memory pools — the paper's §7 future
    work ("hybrid platforms with several types of accelerators, and/or
    including more than two memories").

    Pool [0] plays the role of the blue memory; pools are otherwise
    symmetric.  Processors are numbered consecutively pool by pool. *)

type pool = {
  procs : int;  (** processors attached to this memory *)
  capacity : float;  (** memory capacity; [infinity] = unbounded *)
}

type t = private { pools : pool array }

val make : pool list -> t
(** @raise Invalid_argument on an empty list, non-positive processor counts
    or negative capacities. *)

val of_dual : Platform.t -> t
(** The dual-memory platform as the 2-pool special case (blue first). *)

val n_pools : t -> int
val pool : t -> int -> pool
val n_procs : t -> int
val capacity : t -> int -> float
val with_capacities : t -> float list -> t

val pool_of_proc : t -> int -> int
(** @raise Invalid_argument on an out-of-range processor index. *)

val procs_of : t -> int -> int list
(** Global processor indices of a pool. *)

val pp : Format.formatter -> t -> unit
