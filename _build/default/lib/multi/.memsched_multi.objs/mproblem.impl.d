lib/multi/mproblem.ml: Array Dag
