lib/multi/mheuristics.ml: Array Dag Fp Fun List Mplatform Mproblem Mschedule Paths Result Rng Staircase
