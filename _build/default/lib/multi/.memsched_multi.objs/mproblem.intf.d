lib/multi/mproblem.mli: Dag
