lib/multi/mplatform.mli: Format Platform
