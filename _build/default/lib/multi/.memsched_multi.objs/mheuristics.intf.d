lib/multi/mheuristics.mli: Mplatform Mproblem Mschedule Result Rng
