lib/multi/mplatform.ml: Array Format List Platform
