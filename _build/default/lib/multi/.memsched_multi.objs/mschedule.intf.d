lib/multi/mschedule.mli: Dag Mplatform Mproblem
