lib/multi/mschedule.ml: Array Dag List Mplatform Mproblem Printf String
