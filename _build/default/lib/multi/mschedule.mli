(** Schedules and their validation over [k] memory pools.

    The model generalises §3 verbatim: a transfer is needed whenever
    producer and consumer run in different pools, takes [C(i,j)] and holds
    the file in both pools while in flight; output files occupy the pool
    from the task start, input files are freed from it at the task end. *)

type t = {
  starts : float array;
  procs : int array;
  comm_starts : float option array;  (** per edge; [None] on same-pool edges *)
}

val create : Dag.t -> t
val pool_of : Mplatform.t -> t -> int -> int
val duration : Mproblem.t -> Mplatform.t -> t -> int -> float
val finish : Mproblem.t -> Mplatform.t -> t -> int -> float
val makespan : Mproblem.t -> Mplatform.t -> t -> float
val is_cut : Mplatform.t -> t -> Dag.edge -> bool

type report = {
  makespan : float;
  peaks : float array;  (** usage peak per pool *)
}

val validate : ?eps:float -> Mproblem.t -> Mplatform.t -> t -> (report, string list) result
(** Full oracle: flow, transfer bookkeeping, per-processor resource
    exclusivity, and per-pool memory capacities. *)

val validate_exn : ?eps:float -> Mproblem.t -> Mplatform.t -> t -> report
