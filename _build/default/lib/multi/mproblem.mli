(** A scheduling instance over [k] memory pools: the graph structure of
    {!Dag.t} plus a per-pool duration for every task (the dual-memory
    [w_blue]/[w_red] generalised to an array). *)

type t = private {
  graph : Dag.t;
  durations : float array array;  (** [durations.(task).(pool)] *)
}

val make : Dag.t -> durations:float array array -> t
(** @raise Invalid_argument when the matrix shape does not match the graph
    or a duration is negative. *)

val of_dual : Dag.t -> t
(** Two pools from [w_blue] (pool 0) and [w_red] (pool 1). *)

val n_pools : t -> int
val duration : t -> int -> int -> float
(** [duration p task pool]. *)

val w_min : t -> int -> float
(** Fastest duration of a task over all pools. *)

val mean_duration : t -> int -> float
