(* Breakpoints stored in two parallel growable arrays, sorted by time.
   Invariants: len >= 1, xs.(0) = 0., xs strictly increasing.
   Adjacent equal values may appear transiently; [coalesce] removes them. *)

type t = {
  mutable xs : float array;
  mutable vs : float array;
  mutable len : int;
}

let eps = 1e-9

let create v = { xs = [| 0. |]; vs = [| v |]; len = 1 }

let copy s = { xs = Array.copy s.xs; vs = Array.copy s.vs; len = s.len }

let ensure_capacity s n =
  let cap = Array.length s.xs in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let xs' = Array.make cap' 0. and vs' = Array.make cap' 0. in
    Array.blit s.xs 0 xs' 0 s.len;
    Array.blit s.vs 0 vs' 0 s.len;
    s.xs <- xs';
    s.vs <- vs'
  end

(* Index of the step containing time [t]: largest i with xs.(i) <= t. *)
let step_index s t =
  let lo = ref 0 and hi = ref (s.len - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if s.xs.(mid) <= t then lo := mid else hi := mid - 1
  done;
  !lo

let value s t =
  if t < 0. then invalid_arg "Staircase.value: negative time";
  s.vs.(step_index s t)

let final_value s = s.vs.(s.len - 1)

let coalesce s =
  let w = ref 0 in
  for r = 1 to s.len - 1 do
    if abs_float (s.vs.(r) -. s.vs.(!w)) > eps then begin
      incr w;
      s.xs.(!w) <- s.xs.(r);
      s.vs.(!w) <- s.vs.(r)
    end
  done;
  s.len <- !w + 1

let add_from s t delta =
  if t < 0. then invalid_arg "Staircase.add_from: negative time";
  if delta <> 0. then begin
    let i = step_index s t in
    let start =
      if s.xs.(i) = t then i
      else begin
        (* Split step [i] at [t]. *)
        ensure_capacity s (s.len + 1);
        Array.blit s.xs (i + 1) s.xs (i + 2) (s.len - i - 1);
        Array.blit s.vs (i + 1) s.vs (i + 2) (s.len - i - 1);
        s.xs.(i + 1) <- t;
        s.vs.(i + 1) <- s.vs.(i);
        s.len <- s.len + 1;
        i + 1
      end
    in
    for j = start to s.len - 1 do
      s.vs.(j) <- s.vs.(j) +. delta
    done;
    coalesce s
  end

let add_range s t1 t2 delta =
  if t1 > t2 then invalid_arg "Staircase.add_range: t1 > t2";
  if t1 < t2 && delta <> 0. then begin
    add_from s t1 delta;
    add_from s t2 (-.delta)
  end

let min_from s t =
  let i = step_index s t in
  let m = ref s.vs.(i) in
  for j = i + 1 to s.len - 1 do
    if s.vs.(j) < !m then m := s.vs.(j)
  done;
  !m

let min_on s t1 t2 =
  if t1 >= t2 then invalid_arg "Staircase.min_on: empty interval";
  let i = step_index s t1 in
  let m = ref s.vs.(i) in
  let j = ref (i + 1) in
  while !j < s.len && s.xs.(!j) < t2 do
    if s.vs.(!j) < !m then m := s.vs.(!j);
    incr j
  done;
  !m

let earliest_suffix_ge s ~level ~from =
  if final_value s +. eps < level then None
  else begin
    (* The answer is the breakpoint following the last step whose value is
       below [level] (or [from] when no step from [from] on is below). *)
    let answer = ref from in
    for j = 0 to s.len - 2 do
      if s.vs.(j) +. eps < level then answer := max !answer s.xs.(j + 1)
    done;
    Some !answer
  end

let breakpoints s =
  let rec build i acc = if i < 0 then acc else build (i - 1) ((s.xs.(i), s.vs.(i)) :: acc) in
  build (s.len - 1) []

let length s = s.len

let pp ppf s =
  Format.fprintf ppf "@[<h>";
  for i = 0 to s.len - 1 do
    if i > 0 then Format.fprintf ppf " ";
    Format.fprintf ppf "[%g:%g]" s.xs.(i) s.vs.(i)
  done;
  Format.fprintf ppf "@]"
