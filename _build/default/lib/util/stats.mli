(** Small descriptive-statistics helpers used by the experiment reports. *)

val mean : float list -> float
(** Arithmetic mean; [nan] on an empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; [nan] on an empty list. *)

val stdev : float list -> float
(** Sample standard deviation (n-1 denominator); [0.] for fewer than two
    values. *)

val minimum : float list -> float
val maximum : float list -> float

val median : float list -> float

val quantile : float -> float list -> float
(** [quantile q xs] with [q] in [\[0,1\]], linear interpolation between order
    statistics. *)

type summary = {
  n : int;
  mean : float;
  stdev : float;
  min : float;
  median : float;
  max : float;
}

val summarize : float list -> summary
val pp_summary : Format.formatter -> summary -> unit
