lib/util/table.mli:
