lib/util/rng.mli:
