lib/util/fp.mli:
