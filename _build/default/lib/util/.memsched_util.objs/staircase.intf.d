lib/util/staircase.mli: Format
