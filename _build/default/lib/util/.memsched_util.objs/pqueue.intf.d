lib/util/pqueue.mli:
