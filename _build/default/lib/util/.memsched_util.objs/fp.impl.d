lib/util/fp.ml: Float
