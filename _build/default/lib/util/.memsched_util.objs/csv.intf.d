lib/util/csv.mli:
