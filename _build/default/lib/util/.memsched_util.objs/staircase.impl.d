lib/util/staircase.ml: Array Format
