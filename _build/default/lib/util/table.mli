(** ASCII table rendering for benchmark and experiment reports. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the table out with a separator line under the
    header.  Ragged rows are padded with empty cells.  [align] gives the
    per-column alignment (default: first column left, others right). *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)

val cell_f : float -> string
(** Numeric cell: ["%.3f"], or ["-"] for [nan], ["inf"] for infinities. *)

val cell_pct : float -> string
(** Percentage cell from a ratio in [\[0,1\]], e.g. [0.42 -> "42%"]. *)
