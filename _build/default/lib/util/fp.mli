(** Floating-point helpers for schedule arithmetic.

    The planners verify memory availability over a window starting at some
    breakpoint [t] and later place a transfer at [est -. c] with
    [est >= t +. c].  Plain float arithmetic can give
    [(t +. c) -. c < t], silently moving the allocation below the verified
    window; {!lb_plus} computes the least float [x >= t +. c] such that
    [x -. c >= t] holds exactly in float arithmetic. *)

val lb_plus : float -> float -> float
(** [lb_plus t c] with [c >= 0]: the smallest float [x] such that
    [x >= t +. c] and [x -. c >= t]. *)
