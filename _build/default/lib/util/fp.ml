let lb_plus t c =
  let rec fix x = if x -. c >= t then x else fix (Float.succ x) in
  fix (t +. c)
