(** Minimal CSV writer (RFC-4180 quoting) for experiment result files. *)

val escape_field : string -> string
(** Quote a field if it contains commas, quotes or newlines. *)

val row_to_string : string list -> string

val write : string -> header:string list -> string list list -> unit
(** [write path ~header rows] writes a CSV file, creating parent directories
    as needed. *)

val float_cell : float -> string
(** Compact float rendering ([%g]); infinities map to ["inf"]/["-inf"]. *)

val ensure_dir : string -> unit
(** [mkdir -p] for result directories. *)
