(** Discrete-event reconstruction of memory usage over time (§3.2 semantics).

    Allocation rules implied by the paper's [BlueMemUsed]/[RedMemUsed]:
    a task's output files are allocated in its memory at its {e start};
    its input files are freed from its memory at its {e end}; a cross-memory
    transfer allocates the file in the destination memory at its start and
    frees it from the source memory at its end.  At equal instants, frees are
    applied before allocations, which matches the worked example of Figure 3
    (e.g. [RedMemUsed(T4) = F24 + F34]). *)

type trace = {
  times : float array;  (** event instants, strictly increasing, starts at 0. *)
  blue : float array;  (** blue usage on [\[times.(k), times.(k+1))] *)
  red : float array;
}

val memory_trace : Dag.t -> Platform.t -> Schedule.t -> trace

val usage_at : trace -> Platform.memory -> float -> float
(** Usage at a given instant (right-continuous step function). *)

val peak : trace -> Platform.memory -> float
(** The paper's memory peak [M^s_mu(D)]. *)

val peaks : Dag.t -> Platform.t -> Schedule.t -> float * float
(** [(peak blue, peak red)] of a schedule. *)

val usage_at_task_start : Dag.t -> Platform.t -> Schedule.t -> int -> float
(** The paper's [MemUsed(s, i)]: usage of task [i]'s memory during its
    processing (sampled just after its start, frees-first tie rule). *)
