lib/sim/sched_stats.mli: Dag Format Platform Schedule
