lib/sim/events.ml: Array Dag List Platform Schedule
