lib/sim/validator.mli: Dag Platform Schedule
