lib/sim/validator.ml: Array Dag Events List Platform Printf Schedule String
