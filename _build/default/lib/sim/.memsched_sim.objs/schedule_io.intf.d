lib/sim/schedule_io.mli: Dag Schedule
