lib/sim/schedule_io.ml: Array Buffer Dag Fun List Printf Schedule String
