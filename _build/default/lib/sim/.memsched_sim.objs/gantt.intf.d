lib/sim/gantt.mli: Dag Platform Schedule
