lib/sim/sched_stats.ml: Array Dag Events Format List Platform Schedule
