lib/sim/gantt.ml: Array Buffer Bytes Char Dag Events List Platform Printf Schedule String
