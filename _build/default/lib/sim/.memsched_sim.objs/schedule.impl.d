lib/sim/schedule.ml: Array Dag Format List Platform
