lib/sim/schedule.mli: Dag Format Platform
