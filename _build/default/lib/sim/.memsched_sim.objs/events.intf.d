lib/sim/events.mli: Dag Platform Schedule
