(** ASCII Gantt charts: one lane per processor plus one lane per memory
    showing usage over time — the textual analogue of Figures 3 and 4. *)

val render : ?width:int -> Dag.t -> Platform.t -> Schedule.t -> string
(** [render ~width g p s] draws the schedule scaled to [width] character
    columns (default 72).  Task lanes show the first letters of task names;
    memory lanes show usage digits scaled to the peak. *)

val render_memory_profile : ?width:int -> Dag.t -> Platform.t -> Schedule.t -> string
(** Just the two memory-usage lanes with their numeric peaks. *)
