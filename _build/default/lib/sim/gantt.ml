let column width horizon t =
  if horizon <= 0. then 0
  else begin
    let c = int_of_float (float_of_int width *. t /. horizon) in
    max 0 (min (width - 1) c)
  end

let task_lanes width g platform s =
  let horizon = Schedule.makespan g platform s in
  let nprocs = Platform.n_procs platform in
  let lanes = Array.init nprocs (fun _ -> Bytes.make width '.') in
  for i = 0 to Dag.n_tasks g - 1 do
    let p = s.Schedule.procs.(i) in
    let t0 = s.Schedule.starts.(i) and t1 = Schedule.finish g platform s i in
    let c0 = column width horizon t0 in
    let c1 = max c0 (column width horizon t1 - if t1 < horizon then 1 else 0) in
    let label = (Dag.task g i).Dag.name in
    for c = c0 to c1 do
      let k = c - c0 in
      let ch = if k < String.length label then label.[k] else '=' in
      Bytes.set lanes.(p) c ch
    done
  done;
  (horizon, lanes)

let memory_lane width g platform s mem =
  let horizon = Schedule.makespan g platform s in
  let trace = Events.memory_trace g platform s in
  let peak = Events.peak trace mem in
  let lane = Bytes.make width ' ' in
  if peak > 0. && horizon > 0. then
    for c = 0 to width - 1 do
      let t = horizon *. float_of_int c /. float_of_int width in
      let u = Events.usage_at trace mem t in
      let level = int_of_float (9.0 *. u /. peak +. 0.5) in
      Bytes.set lane c (if level <= 0 then '.' else Char.chr (Char.code '0' + min 9 level))
    done;
  (peak, lane)

let render ?(width = 72) g platform s =
  let buf = Buffer.create 1024 in
  let horizon, lanes = task_lanes width g platform s in
  Buffer.add_string buf (Printf.sprintf "makespan = %g\n" horizon);
  Array.iteri
    (fun p lane ->
      let mem = Platform.memory_of_proc platform p in
      Buffer.add_string buf
        (Printf.sprintf "P%-2d %-4s |%s|\n" p (Platform.memory_to_string mem) (Bytes.to_string lane)))
    lanes;
  List.iter
    (fun mem ->
      let peak, lane = memory_lane width g platform s mem in
      Buffer.add_string buf
        (Printf.sprintf "mem %-4s |%s| peak=%g\n" (Platform.memory_to_string mem)
           (Bytes.to_string lane) peak))
    Platform.memories;
  Buffer.contents buf

let render_memory_profile ?(width = 72) g platform s =
  let buf = Buffer.create 256 in
  List.iter
    (fun mem ->
      let peak, lane = memory_lane width g platform s mem in
      Buffer.add_string buf
        (Printf.sprintf "mem %-4s |%s| peak=%g\n" (Platform.memory_to_string mem)
           (Bytes.to_string lane) peak))
    Platform.memories;
  Buffer.contents buf
