(** Full validity oracle for schedules: re-checks every constraint of §3
    independently of how the schedule was produced.  Every scheduler in this
    repository (heuristics, exact solver, MILP extraction) is tested against
    this module. *)

type report = {
  makespan : float;
  peak_blue : float;
  peak_red : float;
}

val validate :
  ?eps:float -> Dag.t -> Platform.t -> Schedule.t -> (report, string list) result
(** Checks, with tolerance [eps] (default [1e-6]):
    - placement sanity: processor indices in range, non-negative times;
    - transfer bookkeeping: every cut edge has a transfer, no same-memory
      edge does;
    - flow constraints: [sigma(i) + W_i <= tau(i,j)] and
      [tau(i,j) + COMM(i,j) <= sigma(j)] for every edge;
    - resource constraints: no two tasks overlap on the same processor;
    - memory constraints: the reconstructed usage of each memory never
      exceeds its capacity.

    On success the report carries the makespan and both memory peaks. *)

val validate_exn : ?eps:float -> Dag.t -> Platform.t -> Schedule.t -> report
(** @raise Failure with all accumulated error messages. *)
