(** Text (de)serialisation of schedules, so that schedules can be stored,
    exchanged and re-validated offline (e.g. by the [memsched validate]
    subcommand).

    Format (whitespace-separated, [#] comments):
    {v
    schedule <n_tasks> <n_comms>
    task <id> <proc> <start>
    comm <eid> <start>
    v} *)

val to_string : Schedule.t -> string

val of_string : Dag.t -> string -> Schedule.t
(** @raise Invalid_argument on malformed input or task/edge counts that do
    not match the graph. *)

val write : Schedule.t -> string -> unit
val read : Dag.t -> string -> Schedule.t
