let small_rand_set ?(count = 50) ?(seed = 2014) () =
  let rng = Rng.create seed in
  List.init count (fun _ -> Daggen.generate rng Daggen.small_rand_params)

let tiny_rand_set ?(count = 20) ?(seed = 2015) () =
  let rng = Rng.create seed in
  let params = { Daggen.small_rand_params with Daggen.size = 10 } in
  List.init count (fun _ -> Daggen.generate rng params)

let large_rand_set ?(count = 100) ?(size = 1000) ?(seed = 2016) () =
  let rng = Rng.create seed in
  let params = { Daggen.large_rand_params with Daggen.size = size } in
  List.init count (fun _ -> Daggen.generate rng params)

let lu ?(n = 13) () = Lu.generate ~n ()
let cholesky ?(n = 13) () = Cholesky.generate ~n ()
let platform_random = Platform.unbounded ~p_blue:2 ~p_red:2
let platform_mirage = Platform.unbounded ~p_blue:12 ~p_red:3
