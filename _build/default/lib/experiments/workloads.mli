(** The four instance families of §6.1, with their platforms.

    All sets are deterministic given their seed, so every figure is exactly
    reproducible. *)

val small_rand_set : ?count:int -> ?seed:int -> unit -> Dag.t list
(** SmallRandSet: 50 DAGs, 30 tasks (Figure 10). *)

val tiny_rand_set : ?count:int -> ?seed:int -> unit -> Dag.t list
(** Companion set of 10-task DAGs on which the exact solver terminates with a
    certificate (used for the "Optimal" series; see DESIGN.md). *)

val large_rand_set : ?count:int -> ?size:int -> ?seed:int -> unit -> Dag.t list
(** LargeRandSet: [count] (default 100) DAGs of [size] (default 1000) tasks
    (Figure 12). *)

val lu : ?n:int -> unit -> Dag.t
(** LUSet member: tiled LU of an [n x n] (default 13) tiled matrix. *)

val cholesky : ?n:int -> unit -> Dag.t
(** CholeskySet member: tiled Cholesky, default 13 x 13. *)

val platform_random : Platform.t
(** Dual-memory platform used for the random sets: 2 blue + 2 red
    processors, unbounded memories (bounds are set per sweep point). *)

val platform_mirage : Platform.t
(** The mirage machine of §6.1.2: 12 CPU cores (blue) + 3 GPUs (red). *)
