let script =
  {gp|# Renders the reproduced figures from the CSV series in this directory:
#   gnuplot plots.gp
set datafile separator ','
set terminal pngcairo size 900,600 font ',11'
set key left top
set grid

# ------------------------------------------------ Figures 10 and 12 (sweeps)
set xlabel 'normalised memory (bound / HEFT peak)'
set ylabel 'normalised makespan (vs HEFT)'
set y2label 'success rate'
set y2range [0:1.05]
set y2tics
set ytics nomirror

set output 'figure10.png'
set title 'Figure 10 - SmallRandSet'
plot 'figure10.csv' using 1:2 with linespoints title 'MemHEFT makespan', \
     'figure10.csv' using 1:4 with linespoints title 'MemMinMin makespan', \
     'figure10.csv' using 1:3 axes x1y2 with lines dashtype 2 title 'MemHEFT success', \
     'figure10.csv' using 1:5 axes x1y2 with lines dashtype 2 title 'MemMinMin success', \
     'figure10_optimal.csv' using 1:2 with linespoints title 'Optimal (10t)', \
     'figure10_optimal.csv' using 1:3 axes x1y2 with lines dashtype 3 title 'Optimal success (10t)'

set output 'figure12.png'
set title 'Figure 12 - LargeRandSet'
plot 'figure12.csv' using 1:2 with linespoints title 'MemHEFT makespan', \
     'figure12.csv' using 1:4 with linespoints title 'MemMinMin makespan', \
     'figure12.csv' using 1:3 axes x1y2 with lines dashtype 2 title 'MemHEFT success', \
     'figure12.csv' using 1:5 axes x1y2 with lines dashtype 2 title 'MemMinMin success'

# --------------------------------------------- Figures 11 and 13 (one DAG)
unset y2label
unset y2tics
set ytics mirror
set xlabel 'memory bound'
set ylabel 'makespan'

set output 'figure11.png'
set title 'Figure 11 - one SmallRandSet DAG'
plot 'figure11.csv' using 1:2 with linespoints title 'MemHEFT', \
     'figure11.csv' using 1:3 with linespoints title 'MemMinMin', \
     'figure11.csv' using 1:5 with lines dashtype 2 title 'HEFT', \
     'figure11.csv' using 1:6 with lines dashtype 2 title 'MinMin', \
     'figure11.csv' using 1:7 with lines dashtype 3 title 'Lower bound'

set output 'figure13.png'
set title 'Figure 13 - one LargeRandSet DAG'
plot 'figure13.csv' using 1:2 with linespoints title 'MemHEFT', \
     'figure13.csv' using 1:3 with linespoints title 'MemMinMin', \
     'figure13.csv' using 1:4 with lines dashtype 2 title 'HEFT', \
     'figure13.csv' using 1:5 with lines dashtype 2 title 'MinMin', \
     'figure13.csv' using 1:6 with lines dashtype 3 title 'Lower bound'

# -------------------------------------------------- Figures 14 and 15 (LA)
set xlabel 'memory (tiles)'
set ylabel 'makespan (ms)'

set output 'figure14.png'
set title 'Figure 14 - LU 13x13'
plot 'figure14.csv' using 1:2 with linespoints title 'MemHEFT', \
     'figure14.csv' using 1:3 with linespoints title 'MemMinMin', \
     'figure14.csv' using 1:4 with lines dashtype 2 title 'HEFT', \
     'figure14.csv' using 1:5 with lines dashtype 2 title 'MinMin'

set output 'figure15.png'
set title 'Figure 15 - Cholesky 13x13'
plot 'figure15.csv' using 1:2 with linespoints title 'MemHEFT', \
     'figure15.csv' using 1:3 with linespoints title 'MemMinMin', \
     'figure15.csv' using 1:4 with lines dashtype 2 title 'HEFT', \
     'figure15.csv' using 1:5 with lines dashtype 2 title 'MinMin'
|gp}

let write_gnuplot ?(out_dir = "results") () =
  Csv.ensure_dir out_dir;
  let oc = open_out (Filename.concat out_dir "plots.gp") in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc script)
