(** Gnuplot driver for the CSV series the figure drivers write: running
    [gnuplot plots.gp] inside the results directory renders one PNG per
    reproduced figure, in the paper's layout (normalised makespan on the
    left axis, success rate on the right for Figures 10/12; makespan vs
    memory for the detail figures). *)

val write_gnuplot : ?out_dir:string -> unit -> unit
(** Writes [plots.gp] into [out_dir] (default ["results"]). *)
