lib/experiments/sweep.ml: Dag Exact Heuristics List Lower_bound Outcome Platform Stats Validator
