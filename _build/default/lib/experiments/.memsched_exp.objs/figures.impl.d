lib/experiments/figures.ml: Csv Dag Exact Filename Float Format Fun Heuristics Ilp_model Kernels List Mip Outcome Platform Plots Printf Sched_state String Sweep Table Toy Validator Workloads
