lib/experiments/workloads.ml: Cholesky Daggen List Lu Platform Rng
