lib/experiments/plots.ml: Csv Filename Fun
