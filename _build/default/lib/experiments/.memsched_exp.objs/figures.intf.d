lib/experiments/figures.mli:
