lib/experiments/workloads.mli: Dag Platform
