lib/experiments/plots.mli:
