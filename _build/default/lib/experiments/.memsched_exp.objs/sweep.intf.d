lib/experiments/sweep.mli: Dag Heuristics Platform Sched_state
