type kernel = Getrf | Gemm | Trsm_l | Trsm_u | Potrf | Syrk | Fictitious

let cpu_ms = function
  | Getrf -> 450.
  | Gemm -> 1450.
  | Trsm_l -> 990.
  | Trsm_u -> 830.
  | Potrf -> 450.
  | Syrk -> 990.
  | Fictitious -> 0.

let gpu_ms = function
  | Getrf -> 900. (* panel factorisation: ~2x slower on the GPU *)
  | Gemm -> 145. (* ~10x faster *)
  | Trsm_l -> 198. (* ~5x faster *)
  | Trsm_u -> 166. (* ~5x faster *)
  | Potrf -> 900. (* ~2x slower *)
  | Syrk -> 124. (* ~8x faster *)
  | Fictitious -> 0.

let tile_transfer_ms = 50.
let tile_size = 1.

let name = function
  | Getrf -> "getrf"
  | Gemm -> "gemm"
  | Trsm_l -> "trsm_l"
  | Trsm_u -> "trsm_u"
  | Potrf -> "potrf"
  | Syrk -> "syrk"
  | Fictitious -> "fictitious"

let all = [ Getrf; Gemm; Trsm_l; Trsm_u; Potrf; Syrk; Fictitious ]
