(** Task graph of the tiled Cholesky factorisation of an [n x n] tiled
    symmetric matrix (CholeskySet, §6.1.2).

    At step [k]: POTRF factors the diagonal tile [(k,k)]; TRSM processes the
    tiles [(i,k)] of the first column; SYRK updates the diagonal tiles
    [(i,i)]; GEMM updates the remaining tiles [(i,j)], [k < j < i].  The
    graph counts [n*(n+1)*(n+2)/6 ~ n^3/6] kernel tasks (the paper's
    "2/3 n^3" counts flops-weighted kernels) plus [O(n^2)] fictitious
    broadcast relays. *)

val generate : ?pipeline_broadcasts:bool -> n:int -> unit -> Dag.t
(** @raise Invalid_argument when [n <= 0]. *)

val n_kernel_tasks : n:int -> int
(** Number of non-fictitious tasks. *)

val n_lower_tiles : n:int -> int
(** [n (n+1) / 2]: tiles of the lower half, the paper's reference for where
    MemHEFT stops finding feasible schedules. *)
