(** Task graph of the tiled LU factorisation (no pivoting) of an [n x n]
    tiled matrix (LUSet, §6.1.2).

    At step [k]: GETRF factors the diagonal tile; TRSM_L eliminates the row
    tiles [(k,j)]; TRSM_U eliminates the column tiles [(i,k)]; GEMM updates
    the trailing tiles [(i,j)], [i, j > k].  The graph counts roughly
    [n^3/3] kernel tasks plus [O(n^2)] fictitious broadcast relays. *)

val generate : ?pipeline_broadcasts:bool -> n:int -> unit -> Dag.t
(** @raise Invalid_argument when [n <= 0]. *)

val n_kernel_tasks : n:int -> int
val n_tiles : n:int -> int
(** [n * n]: the paper's reference point — MemHEFT stops finding feasible
    schedules when both memories together barely hold the full matrix. *)
