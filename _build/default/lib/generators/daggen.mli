(** Layered random DAG generator in the style of DAGGEN (§6.1.1).

    Nodes are organised in levels.  [width] controls the parallelism (the
    expected level width is [size ** width]: small values give chains,
    large values fork-join shapes), [density] the
    number of edges between consecutive levels, and [jumps] lets extra edges
    skip up to that many levels ahead.  Costs are drawn uniformly in the
    given integer ranges, as in the paper's two random sets. *)

type params = {
  size : int;  (** number of tasks *)
  width : float;  (** in (0, 1]: relative parallelism *)
  density : float;  (** in [0, 1]: inter-level edge density *)
  jumps : int;  (** maximum forward jump of skip edges (1 = none) *)
  w_range : int * int;  (** processing times, drawn per resource *)
  c_range : int * int;  (** transfer times *)
  f_range : int * int;  (** file sizes *)
}

val small_rand_params : params
(** SmallRandSet: size 30, width 0.3, density 0.5, jumps 5, W in [1,20],
    C and F in [1,10]. *)

val large_rand_params : params
(** LargeRandSet: size 1000, same shape, all costs in [1,100]. *)

val generate : Rng.t -> params -> Dag.t
(** Deterministic given the generator state.  Every non-first-level task has
    at least one parent, so level 0 holds every source. *)

val levels : Rng.t -> params -> int list
(** The level widths the generator would use (exposed for tests). *)
