type t = {
  builder : Dag.Builder.t;
  last_writer : (int * int, int) Hashtbl.t;
}

let create () = { builder = Dag.Builder.create (); last_writer = Hashtbl.create 64 }

let add_kernel t kernel ~name ~reads ~writes =
  let id =
    Dag.Builder.add_task t.builder ~name ~w_blue:(Kernels.cpu_ms kernel)
      ~w_red:(Kernels.gpu_ms kernel) ()
  in
  let deps =
    List.filter_map (Hashtbl.find_opt t.last_writer) (writes :: reads)
    |> List.sort_uniq compare
  in
  List.iter
    (fun src ->
      Dag.Builder.add_edge t.builder ~src ~dst:id ~size:Kernels.tile_size
        ~comm:Kernels.tile_transfer_ms)
    deps;
  Hashtbl.replace t.last_writer writes id

let finalize ?(pipeline_broadcasts = true) t =
  let g = Dag.Builder.finalize t.builder in
  if pipeline_broadcasts then Broadcast.linearize g else g
