let dex () =
  let b = Dag.Builder.create () in
  let t1 = Dag.Builder.add_task b ~name:"T1" ~w_blue:3. ~w_red:1. () in
  let t2 = Dag.Builder.add_task b ~name:"T2" ~w_blue:2. ~w_red:2. () in
  let t3 = Dag.Builder.add_task b ~name:"T3" ~w_blue:6. ~w_red:3. () in
  let t4 = Dag.Builder.add_task b ~name:"T4" ~w_blue:1. ~w_red:1. () in
  Dag.Builder.add_edge b ~src:t1 ~dst:t2 ~size:1. ~comm:1.;
  Dag.Builder.add_edge b ~src:t1 ~dst:t3 ~size:2. ~comm:1.;
  Dag.Builder.add_edge b ~src:t2 ~dst:t4 ~size:1. ~comm:1.;
  Dag.Builder.add_edge b ~src:t3 ~dst:t4 ~size:2. ~comm:1.;
  Dag.Builder.finalize b

let chain ~n ~w ~f ~c =
  if n <= 0 then invalid_arg "Toy.chain: n must be positive";
  let b = Dag.Builder.create () in
  let ids = Array.init n (fun k -> Dag.Builder.add_task b ~name:(Printf.sprintf "c%d" k) ~w_blue:w ~w_red:w ()) in
  for k = 0 to n - 2 do
    Dag.Builder.add_edge b ~src:ids.(k) ~dst:ids.(k + 1) ~size:f ~comm:c
  done;
  Dag.Builder.finalize b

let fork_join ~width ~w ~f ~c =
  if width <= 0 then invalid_arg "Toy.fork_join: width must be positive";
  let b = Dag.Builder.create () in
  let src = Dag.Builder.add_task b ~name:"fork" ~w_blue:w ~w_red:w () in
  let mids =
    Array.init width (fun k ->
        Dag.Builder.add_task b ~name:(Printf.sprintf "m%d" k) ~w_blue:w ~w_red:w ())
  in
  let sink = Dag.Builder.add_task b ~name:"join" ~w_blue:w ~w_red:w () in
  Array.iter
    (fun m ->
      Dag.Builder.add_edge b ~src ~dst:m ~size:f ~comm:c;
      Dag.Builder.add_edge b ~src:m ~dst:sink ~size:f ~comm:c)
    mids;
  Dag.Builder.finalize b

let diamond () =
  let b = Dag.Builder.create () in
  let s = Dag.Builder.add_task b ~name:"s" ~w_blue:1. ~w_red:1. () in
  let l = Dag.Builder.add_task b ~name:"l" ~w_blue:1. ~w_red:1. () in
  let r = Dag.Builder.add_task b ~name:"r" ~w_blue:1. ~w_red:1. () in
  let t = Dag.Builder.add_task b ~name:"t" ~w_blue:1. ~w_red:1. () in
  Dag.Builder.add_edge b ~src:s ~dst:l ~size:1. ~comm:1.;
  Dag.Builder.add_edge b ~src:s ~dst:r ~size:1. ~comm:1.;
  Dag.Builder.add_edge b ~src:l ~dst:t ~size:1. ~comm:1.;
  Dag.Builder.add_edge b ~src:r ~dst:t ~size:1. ~comm:1.;
  Dag.Builder.finalize b

let independent ~n ~w_blue ~w_red =
  if n <= 0 then invalid_arg "Toy.independent: n must be positive";
  let b = Dag.Builder.create () in
  for k = 0 to n - 1 do
    ignore (Dag.Builder.add_task b ~name:(Printf.sprintf "i%d" k) ~w_blue ~w_red ())
  done;
  Dag.Builder.finalize b
