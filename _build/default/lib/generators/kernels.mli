(** Linear-algebra kernel timing model (Table 1 of the paper).

    CPU ("blue") times are the Table 1 measurements on a 192x192 double tile
    of the mirage platform, in milliseconds.  The report does not print the
    GPU-side times, so the "red" times are derived from public MAGMA-era
    speedups: update kernels (GEMM, TRSM, SYRK) are much faster on the GPU,
    panel factorisations (GETRF, POTRF) are slower (see DESIGN.md).  Only
    these relative affinities drive the scheduling decisions. *)

type kernel = Getrf | Gemm | Trsm_l | Trsm_u | Potrf | Syrk | Fictitious

val cpu_ms : kernel -> float
(** Blue-processor time.  Table 1: getrf 450, gemm 1450, trsm_l 990,
    trsm_u 830, potrf 450, syrk 990; fictitious broadcast tasks cost 0. *)

val gpu_ms : kernel -> float
(** Red-processor time: gemm 145, trsm_l 198, trsm_u 166, syrk 124 (approx.),
    getrf 900, potrf 900; fictitious tasks cost 0. *)

val tile_transfer_ms : float
(** CPU<->GPU transfer of one tile: 50 ms (paper, §6.1.2). *)

val tile_size : float
(** Memory footprint of one tile: 1 unit ("one unit of memory corresponding
    to one tile"). *)

val name : kernel -> string
val all : kernel list
