lib/generators/cholesky.ml: Kernels Printf Tiled
