lib/generators/kernels.ml:
