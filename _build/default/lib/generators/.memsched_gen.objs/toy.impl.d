lib/generators/toy.ml: Array Dag Printf
