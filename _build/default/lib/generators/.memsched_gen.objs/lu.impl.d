lib/generators/lu.ml: Kernels Printf Tiled
