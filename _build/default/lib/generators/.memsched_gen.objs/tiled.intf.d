lib/generators/tiled.mli: Dag Kernels
