lib/generators/daggen.ml: Array Dag Float List Printf Rng
