lib/generators/toy.mli: Dag
