lib/generators/tiled.ml: Broadcast Dag Hashtbl Kernels List
