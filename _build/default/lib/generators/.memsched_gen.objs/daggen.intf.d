lib/generators/daggen.mli: Dag Rng
