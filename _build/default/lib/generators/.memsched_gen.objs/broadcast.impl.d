lib/generators/broadcast.ml: Array Dag List Printf String
