lib/generators/kernels.mli:
