lib/generators/broadcast.mli: Dag
