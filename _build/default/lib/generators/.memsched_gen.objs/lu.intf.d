lib/generators/lu.mli: Dag
