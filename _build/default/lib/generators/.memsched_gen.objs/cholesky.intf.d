lib/generators/cholesky.mli: Dag
