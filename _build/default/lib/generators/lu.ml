let generate ?pipeline_broadcasts ~n () =
  if n <= 0 then invalid_arg "Lu.generate: n must be positive";
  let t = Tiled.create () in
  for k = 0 to n - 1 do
    Tiled.add_kernel t Kernels.Getrf
      ~name:(Printf.sprintf "getrf_%d" k)
      ~reads:[] ~writes:(k, k);
    for j = k + 1 to n - 1 do
      Tiled.add_kernel t Kernels.Trsm_l
        ~name:(Printf.sprintf "trsml_%d_%d" k j)
        ~reads:[ (k, k) ] ~writes:(k, j)
    done;
    for i = k + 1 to n - 1 do
      Tiled.add_kernel t Kernels.Trsm_u
        ~name:(Printf.sprintf "trsmu_%d_%d" i k)
        ~reads:[ (k, k) ] ~writes:(i, k)
    done;
    for i = k + 1 to n - 1 do
      for j = k + 1 to n - 1 do
        Tiled.add_kernel t Kernels.Gemm
          ~name:(Printf.sprintf "gemm_%d_%d_%d" i j k)
          ~reads:[ (i, k); (k, j) ]
          ~writes:(i, j)
      done
    done
  done;
  Tiled.finalize ?pipeline_broadcasts t

let n_kernel_tasks ~n =
  let total = ref 0 in
  for k = 0 to n - 1 do
    let r = n - 1 - k in
    total := !total + 1 + (2 * r) + (r * r)
  done;
  !total

let n_tiles ~n = n * n
