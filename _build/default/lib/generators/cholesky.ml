let generate ?pipeline_broadcasts ~n () =
  if n <= 0 then invalid_arg "Cholesky.generate: n must be positive";
  let t = Tiled.create () in
  for k = 0 to n - 1 do
    Tiled.add_kernel t Kernels.Potrf
      ~name:(Printf.sprintf "potrf_%d" k)
      ~reads:[] ~writes:(k, k);
    for i = k + 1 to n - 1 do
      Tiled.add_kernel t Kernels.Trsm_l
        ~name:(Printf.sprintf "trsm_%d_%d" i k)
        ~reads:[ (k, k) ] ~writes:(i, k)
    done;
    for i = k + 1 to n - 1 do
      Tiled.add_kernel t Kernels.Syrk
        ~name:(Printf.sprintf "syrk_%d_%d" i k)
        ~reads:[ (i, k) ] ~writes:(i, i);
      for j = k + 1 to i - 1 do
        Tiled.add_kernel t Kernels.Gemm
          ~name:(Printf.sprintf "gemm_%d_%d_%d" i j k)
          ~reads:[ (i, k); (j, k) ]
          ~writes:(i, j)
      done
    done
  done;
  Tiled.finalize ?pipeline_broadcasts t

let n_kernel_tasks ~n =
  (* Step k: 1 potrf + (n-1-k) trsm + (n-1-k) syrk + (n-1-k)(n-2-k)/2 gemm. *)
  let total = ref 0 in
  for k = 0 to n - 1 do
    let r = n - 1 - k in
    total := !total + 1 + r + r + (r * (r - 1) / 2)
  done;
  !total

let n_lower_tiles ~n = n * (n + 1) / 2
