(** Broadcast pipelining (§6.1.2).

    In the paper's model every edge carries its own file, so a task whose
    single output tile is consumed by [d] children would appear to hold [d]
    copies.  The paper instead inserts "a linear pipeline of fictitious
    null-size tasks that models the broadcast of the output to the target
    tasks": the producer feeds the first fictitious relay, each relay feeds
    one consumer and the next relay, the last relay feeds the two remaining
    consumers.  Memory then holds at most three copies per broadcast step
    instead of [d + 1]. *)

val linearize : ?max_fanout:int -> Dag.t -> Dag.t
(** [linearize g] rewrites every task whose out-degree exceeds [max_fanout]
    (default 1) into a relay pipeline of zero-work tasks.  All outgoing edges
    of a rewritten task must carry identical [size] and [comm] attributes
    (they represent the same datum).
    @raise Invalid_argument if a high-fanout task has heterogeneous outgoing
    edges. *)

val n_fictitious : Dag.t -> int
(** Number of zero-work relay tasks in a linearised graph (name-based). *)

val is_fictitious : Dag.t -> int -> bool
