(** Shared machinery for tiled dense linear-algebra DAGs (§6.1.2).

    Tasks read and write 192x192 tiles tracked by coordinates; an edge is
    added from the last writer of each tile a task reads (including the tile
    it updates in place).  Every edge carries one tile ([F = 1]) and costs
    one CPU<->GPU transfer ([C = 50] ms).  After construction the graph is
    passed through {!Broadcast.linearize} so that multi-consumer tiles are
    broadcast through pipelines of fictitious zero-work tasks, as in the
    paper. *)

type t

val create : unit -> t

val add_kernel : t -> Kernels.kernel -> name:string -> reads:(int * int) list -> writes:int * int -> unit
(** Adds a task running the given kernel; dependencies come from the last
    writers of [reads] plus the last writer of [writes] (in-place update).
    Duplicate tile reads are de-duplicated. *)

val finalize : ?pipeline_broadcasts:bool -> t -> Dag.t
(** Builds the DAG; [pipeline_broadcasts] (default true) applies
    {!Broadcast.linearize}. *)
