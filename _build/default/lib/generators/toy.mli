(** Small hand-built graphs used in the paper's examples and in tests. *)

val dex : unit -> Dag.t
(** The toy DAG of Figure 2: tasks T1..T4 (ids 0..3) with
    [W^(1) = (3, 2, 6, 1)], [W^(2) = (1, 2, 3, 1)], edges
    [(T1,T2) F=1], [(T1,T3) F=2], [(T2,T4) F=1], [(T3,T4) F=2],
    all transfer times equal to 1. *)

val chain : n:int -> w:float -> f:float -> c:float -> Dag.t
(** A linear chain of [n] identical tasks. *)

val fork_join : width:int -> w:float -> f:float -> c:float -> Dag.t
(** One source fanning out to [width] parallel tasks joined by one sink. *)

val diamond : unit -> Dag.t
(** Four tasks: source, two independent middles, sink; unit costs. *)

val independent : n:int -> w_blue:float -> w_red:float -> Dag.t
(** [n] tasks with no dependencies. *)
