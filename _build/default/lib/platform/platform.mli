(** The dual-memory platform of §3.1 (Figure 1).

    [p_blue] identical processors share the blue memory (capacity
    [m_blue]) and [p_red] identical processors share the red memory
    (capacity [m_red]).  Processors are numbered [0 .. p_blue - 1] (blue)
    then [p_blue .. p_blue + p_red - 1] (red). *)

type memory = Blue | Red

val other : memory -> memory
val memory_to_string : memory -> string
val pp_memory : Format.formatter -> memory -> unit
val memories : memory list

type t = private {
  p_blue : int;
  p_red : int;
  m_blue : float;  (** blue memory capacity; [infinity] = unbounded *)
  m_red : float;  (** red memory capacity; [infinity] = unbounded *)
}

val make : p_blue:int -> p_red:int -> m_blue:float -> m_red:float -> t
(** @raise Invalid_argument unless both processor counts are positive and
    both capacities non-negative. *)

val unbounded : p_blue:int -> p_red:int -> t
(** Both memories unbounded: the memory-oblivious setting of HEFT/MinMin. *)

val with_bounds : t -> m_blue:float -> m_red:float -> t

val n_procs : t -> int
val capacity : t -> memory -> float
val n_procs_of : t -> memory -> int

val memory_of_proc : t -> int -> memory
(** @raise Invalid_argument on an out-of-range processor index. *)

val procs_of : t -> memory -> int list
(** Processor indices operating on the given memory. *)

val first_proc : t -> memory -> int

val w : Dag.t -> int -> memory -> float
(** Processing time of a task on a processor of the given memory. *)

val pp : Format.formatter -> t -> unit
