(** Dense two-phase primal simplex for the LP relaxation of {!Lp} models.

    Bounds are handled by shifting every variable to its (finite) lower
    bound and materialising finite upper bounds as rows; all rows then get a
    full artificial basis for phase 1.  This is a compact, dependable solver
    for the small instances the paper's ILP is used on — not a
    high-performance LP code. *)

type result =
  | Optimal of { x : float array; obj : float }
      (** [x] is indexed by the model's variable indices. *)
  | Infeasible
  | Unbounded
  | Capped
      (** iteration cap hit before convergence: the result carries no valid
          bound and must not be used for pruning *)

val solve_relaxation : ?max_iters:int -> Lp.t -> result
(** Solves the LP obtained by dropping integrality.
    @raise Invalid_argument if some variable has an infinite lower bound
    (the paper's models never do). *)
