(** The paper's ILP formulation (§4, Figures 5, 6 and 7), built as an {!Lp}
    model.

    Variables (Figure 5): makespan [M]; task starts [t_i]; transfer starts
    [tau_ij]; processor indices [p_i] (general integers in [\[1, P\]]);
    memory indicators [b_i]; actual durations [w_i]; the ordering binaries
    [eps_ij], [delta_ij], [sigma_ij], [sigma'_kij], [m_ij], [m'_kij],
    [c_ijk], [c'_ijkp], [d_ijk], [d'_ijkp]; and the linearisation products
    [alpha_kpi], [beta_kpi], [alpha'_kpij], [beta'_kpij] of Figure 7 (left
    continuous in [\[0,1\]]; the constraints force them to the product
    values).

    Two typos of the report are resolved in favour of the constraint set:
    (i) Figure 5 says [b_i = 1] means blue, but constraints (13) and (24)
    only type-check with [b_i = 0] = blue / [b_i = 1] = red, which is what
    Figure 7's memory bound [b_i M_red + (1 - b_i) M_blue] also uses; this
    module follows the constraints.  (ii) Constraint (27) bounds the
    memory of the {e destination} of transfer [(i,j)], hence uses [b_j].

    The diagonal conventions the formulation relies on are preserved:
    constraint (14) with [i = j] forces [m_ii = 1] (a task counts as started
    at its own start, so its output files are counted by (26)), (15) forces
    [sigma_ii = 0], and (17) forces [c'_ee = 1] (an in-flight file counts in
    the destination memory by (27)). *)

type t

val build : ?presolve:bool -> Dag.t -> Platform.t -> t
(** Builds the full model.  Memory capacities must be finite (cap unbounded
    experiments by the total file size).  [presolve] (default true) fixes
    the ordering binaries implied by the precedence relation ([m_ij = 1] and
    [sigma_ij = 1] for every ancestor pair), which shrinks branch-and-bound
    trees dramatically without cutting any optimal solution.
    @raise Invalid_argument on infinite capacities. *)

val lp : t -> Lp.t
(** The underlying model (for {!Simplex}, {!Mip} or {!Lp_format}). *)

val makespan_var : t -> int
val n_vars : t -> int
val n_constrs : t -> int

val extract_schedule : t -> float array -> Schedule.t
(** Reads a schedule out of an integral assignment: task starts and
    processors, and transfer starts for every cut edge. *)

val mmax : t -> float
(** The big-M horizon [sum W1 + sum W2 + sum C] used by the model. *)
