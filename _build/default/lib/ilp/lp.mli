(** Mixed-integer linear program representation.

    A thin, solver-independent model object: variables with bounds and
    integrality, linear constraints, a linear objective.  Built by
    {!Ilp_model} (the paper's formulation), consumed by {!Simplex}/{!Mip}
    and by the CPLEX-LP writer {!Lp_format}. *)

type var_kind = Continuous | Binary | General_integer

type var = private {
  idx : int;
  vname : string;
  lb : float;
  ub : float;  (** [infinity] = unbounded above *)
  kind : var_kind;
}

type sense = Le | Ge | Eq

type linexpr = (float * int) list
(** Terms [(coefficient, variable index)]; duplicates are summed. *)

type constr = private {
  cname : string;
  terms : linexpr;
  sense : sense;
  rhs : float;
}

type objective = Minimize of linexpr | Maximize of linexpr

type t

val create : unit -> t

val add_var : t -> ?lb:float -> ?ub:float -> ?kind:var_kind -> string -> int
(** Returns the variable index.  Defaults: [lb = 0.], [ub = infinity],
    [kind = Continuous].  Binary variables get bounds clamped to [\[0,1\]]. *)

val add_constr : t -> name:string -> linexpr -> sense -> float -> unit
val set_objective : t -> objective -> unit

val fix : t -> int -> float -> unit
(** Clamp a variable's bounds to a single value (presolve fixing). *)

val set_kind : t -> int -> var_kind -> unit
(** Change a variable's integrality; [Binary] clamps its bounds to
    [\[0,1\]]. *)

val override_bounds : t -> int -> lb:float -> ub:float -> unit
(** Replace a variable's bounds (used by branch-and-bound to branch and to
    restore).  @raise Invalid_argument when [lb > ub]. *)

val n_vars : t -> int
val n_constrs : t -> int
val var : t -> int -> var
val vars : t -> var array
val constrs : t -> constr array
val objective : t -> objective

val eval : t -> float array -> linexpr -> float
val constraint_violation : t -> float array -> float
(** Largest violation of any constraint or bound under an assignment
    (0. when feasible). *)

val integer_violation : t -> float array -> float
(** Largest distance of an integer variable from integrality. *)
