(** CPLEX-LP file writer.

    The paper solved its ILP with CPLEX 12.5; this writer exports any {!Lp}
    model in the standard LP file format so the same instance can be fed to
    CPLEX, Gurobi, SCIP, HiGHS or glpsol outside this sealed environment. *)

val to_string : Lp.t -> string
val write : Lp.t -> string -> unit
(** [write lp path]. *)

val sanitize : string -> string
(** LP-format-safe identifier (used for all variable/constraint names). *)
