(** Exact branch-and-bound scheduler — the "Optimal" reference of Figures 10
    and 11.

    The search enumerates every interleaving of (ready task, memory)
    decisions; each decision places the task at its earliest feasible start
    (the four EST components of §5.1) with just-in-time transfers.  Subtrees
    are pruned with the critical-path/work-area lower bound against the best
    incumbent (seeded from MemHEFT/MemMinMin when they succeed).

    This explores the same decision space the paper's ILP encodes, restricted
    to schedules where every task starts as early as its commitment order
    allows — the standard policy class for this kind of search; because the
    search branches over {e all} commitment orders, deliberate idling is
    covered by committing other tasks first.  The solver is cross-checked
    against the ILP (via {!Mip}) on toy instances in the test suite.  A
    {!result} is [Proven_optimal] only when the search space was exhausted
    within the node budget. *)

type status =
  | Proven_optimal  (** search exhausted: best found is optimal (in-class) *)
  | Feasible  (** node budget hit with an incumbent *)
  | Proven_infeasible  (** search exhausted without any feasible schedule *)
  | Unknown  (** node budget hit without an incumbent *)

type result = {
  status : status;
  schedule : Schedule.t option;
  makespan : float;  (** [nan] without an incumbent *)
  nodes : int;
}

val solve : ?node_limit:int -> ?seed_incumbent:bool -> Dag.t -> Platform.t -> result
(** Defaults: [node_limit = 2_000_000], [seed_incumbent = true] (run the
    heuristics first to obtain an upper bound). *)

val optimal_makespan : ?node_limit:int -> Dag.t -> Platform.t -> float option
(** Convenience: [Some makespan] when [Proven_optimal], [None] otherwise. *)
