let fail fmt = Printf.ksprintf invalid_arg ("Lp_parse: " ^^ fmt)

type section = Objective of bool (* maximise? *) | Subject_to | Bounds | Binaries | Generals | End

let section_of_line line =
  match String.lowercase_ascii (String.trim line) with
  | "minimize" | "min" | "minimum" -> Some (Objective false)
  | "maximize" | "max" | "maximum" -> Some (Objective true)
  | "subject to" | "st" | "s.t." | "such that" -> Some Subject_to
  | "bounds" | "bound" -> Some Bounds
  | "binaries" | "binary" | "bin" -> Some Binaries
  | "generals" | "general" | "gen" -> Some Generals
  | "end" -> Some End
  | _ -> None

(* Tokenise an expression string into words, splitting +, -, <=, >=, = into
   their own tokens. *)
let tokenize s =
  let buf = Buffer.create 16 in
  let tokens = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | ' ' | '\t' -> flush ()
    | '+' | '-' ->
      flush ();
      tokens := String.make 1 c :: !tokens
    | '<' | '>' | '=' ->
      flush ();
      if c = '=' then tokens := "=" :: !tokens
      else begin
        let op = if !i + 1 < n && s.[!i + 1] = '=' then (incr i; Printf.sprintf "%c=" c)
          else String.make 1 c in
        tokens := op :: !tokens
      end
    | _ -> Buffer.add_char buf c);
    incr i
  done;
  flush ();
  List.rev !tokens

let is_number tok = match float_of_string_opt tok with Some _ -> true | None -> false

(* Parse tokens of a linear expression into (terms, rest-after-relation). *)
let parse_expr var_of tokens =
  let rec go sign coef_pending acc = function
    | [] -> (acc, None, [])
    | ("<=" | "<") :: rest -> (acc, Some Lp.Le, rest)
    | (">=" | ">") :: rest -> (acc, Some Lp.Ge, rest)
    | "=" :: rest -> (acc, Some Lp.Eq, rest)
    | "+" :: rest -> go 1. None acc rest
    | "-" :: rest -> go (-1.) None acc rest
    | tok :: rest when is_number tok -> (
      match coef_pending with
      | None -> go sign (Some (float_of_string tok)) acc rest
      | Some _ -> fail "two consecutive numbers near %S" tok)
    | tok :: rest ->
      let coef = sign *. Option.value ~default:1. coef_pending in
      go 1. None ((coef, var_of tok) :: acc) rest
  in
  go 1. None [] tokens

let of_string text =
  let lp = Lp.create () in
  let vars = Hashtbl.create 64 in
  let var_of name =
    match Hashtbl.find_opt vars name with
    | Some v -> v
    | None ->
      let v = Lp.add_var lp name in
      Hashtbl.add vars name v;
      v
  in
  let lines =
    String.split_on_char '\n' text
    |> List.map (fun l -> match String.index_opt l '\\' with
         | Some k -> String.sub l 0 k
         | None -> l)
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let section = ref None in
  let pending = Buffer.create 128 in
  let constr_count = ref 0 in
  let strip_label s =
    match String.index_opt s ':' with
    | Some k -> (Some (String.trim (String.sub s 0 k)), String.sub s (k + 1) (String.length s - k - 1))
    | None -> (None, s)
  in
  let flush_statement () =
    let stmt = String.trim (Buffer.contents pending) in
    Buffer.clear pending;
    if stmt <> "" then begin
      match !section with
      | Some (Objective maximise) ->
        let _, body = strip_label stmt in
        let terms, rel, _ = parse_expr var_of (tokenize body) in
        if rel <> None then fail "relation in objective";
        Lp.set_objective lp (if maximise then Lp.Maximize terms else Lp.Minimize terms)
      | Some Subject_to -> (
        let label, body = strip_label stmt in
        let terms, rel, rest = parse_expr var_of (tokenize body) in
        match (rel, rest) with
        | Some sense, [ rhs ] when is_number rhs ->
          incr constr_count;
          let name = Option.value ~default:(Printf.sprintf "c%d" !constr_count) label in
          Lp.add_constr lp ~name terms sense (float_of_string rhs)
        | Some sense, [ sign; rhs ] when (sign = "-" || sign = "+") && is_number rhs ->
          incr constr_count;
          let name = Option.value ~default:(Printf.sprintf "c%d" !constr_count) label in
          let v = float_of_string rhs in
          Lp.add_constr lp ~name terms sense (if sign = "-" then -.v else v)
        | _ -> fail "malformed constraint %S" stmt)
      | Some Bounds -> (
        match tokenize stmt with
        | [ name; "free" ] | [ name; "Free" ] | [ name; "FREE" ] ->
          Lp.override_bounds lp (var_of name) ~lb:neg_infinity ~ub:infinity
        | [ lo; "<="; name; "<="; hi ] when is_number lo && is_number hi ->
          Lp.override_bounds lp (var_of name) ~lb:(float_of_string lo) ~ub:(float_of_string hi)
        | [ "-"; lo; "<="; name; "<="; hi ] when is_number lo && is_number hi ->
          Lp.override_bounds lp (var_of name) ~lb:(-.float_of_string lo) ~ub:(float_of_string hi)
        | [ name; "<="; hi ] when is_number hi ->
          let v = var_of name in
          Lp.override_bounds lp v ~lb:(Lp.var lp v).Lp.lb ~ub:(float_of_string hi)
        | [ name; ">="; lo ] when is_number lo ->
          let v = var_of name in
          Lp.override_bounds lp v ~lb:(float_of_string lo) ~ub:(Lp.var lp v).Lp.ub
        | [ name; ">="; "-"; lo ] when is_number lo ->
          let v = var_of name in
          Lp.override_bounds lp v ~lb:(-.float_of_string lo) ~ub:(Lp.var lp v).Lp.ub
        | [ name; "="; value ] when is_number value -> Lp.fix lp (var_of name) (float_of_string value)
        | _ -> fail "malformed bound %S" stmt)
      | Some Binaries ->
        String.split_on_char ' ' stmt
        |> List.filter (fun t -> t <> "")
        |> List.iter (fun name -> Lp.set_kind lp (var_of name) Lp.Binary)
      | Some Generals ->
        String.split_on_char ' ' stmt
        |> List.filter (fun t -> t <> "")
        |> List.iter (fun name -> Lp.set_kind lp (var_of name) Lp.General_integer)
      | Some End | None -> fail "statement outside any section: %S" stmt
    end
  in
  List.iter
    (fun line ->
      match section_of_line line with
      | Some s ->
        flush_statement ();
        section := Some s
      | None -> (
        match !section with
        | Some Subject_to when String.contains line ':' ->
          (* a new labelled constraint terminates the previous statement *)
          flush_statement ();
          Buffer.add_string pending line
        | Some Bounds | Some Binaries | Some Generals ->
          (* one statement per line in these sections *)
          flush_statement ();
          Buffer.add_string pending line;
          flush_statement ()
        | _ ->
          Buffer.add_char pending ' ';
          Buffer.add_string pending line))
    lines;
  flush_statement ();
  lp

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
