lib/ilp/exact.mli: Dag Platform Schedule
