lib/ilp/simplex.mli: Lp
