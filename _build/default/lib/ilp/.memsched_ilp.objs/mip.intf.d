lib/ilp/mip.mli: Lp
