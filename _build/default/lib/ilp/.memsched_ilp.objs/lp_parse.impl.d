lib/ilp/lp_parse.ml: Buffer Fun Hashtbl List Lp Option Printf String
