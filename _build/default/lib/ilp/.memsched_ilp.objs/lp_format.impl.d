lib/ilp/lp_format.ml: Array Buffer Fun List Lp Printf String
