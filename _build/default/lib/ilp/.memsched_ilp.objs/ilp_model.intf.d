lib/ilp/ilp_model.mli: Dag Lp Platform Schedule
