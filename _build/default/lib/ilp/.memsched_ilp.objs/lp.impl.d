lib/ilp/lp.ml: Array Float Hashtbl List Option
