lib/ilp/exact.ml: Array Dag Heuristics List Outcome Paths Platform Sched_state Schedule
