lib/ilp/lp_format.mli: Lp
