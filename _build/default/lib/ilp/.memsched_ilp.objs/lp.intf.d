lib/ilp/lp.mli:
