lib/ilp/ilp_model.ml: Array Dag Float List Lp Platform Printf Schedule
