lib/ilp/mip.ml: Array Float List Lp Option Simplex Sys
