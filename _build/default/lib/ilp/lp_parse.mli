(** Reader for the CPLEX-LP subset emitted by {!Lp_format} (and by most
    solvers' exporters): objective, constraints, bounds, binaries, generals.

    Used to round-trip exported models in the test suite and to re-import
    instances tweaked by hand.  Variables are created in order of first
    appearance; names are significant. *)

val of_string : string -> Lp.t
(** @raise Invalid_argument on input outside the supported subset. *)

val read : string -> Lp.t
(** [read path]. *)
