(* The paper's ILP (SS 4) in practice: build the full formulation for a small
   instance, solve it with the bundled branch-and-bound MILP solver, verify
   the extracted schedule, and export the model in CPLEX-LP format for an
   external solver.

   Run with: dune exec examples/ilp_export.exe *)

let () =
  let g = Toy.chain ~n:3 ~w:2. ~f:1. ~c:1. in
  let platform = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:4. ~m_red:4. in
  let model = Ilp_model.build g platform in
  Printf.printf "instance: 3-task chain, P = (1 blue, 1 red), M = (4, 4)\n";
  Printf.printf "ILP size: %d variables, %d constraints (O(m^2 + mn) of SS 4)\n\n"
    (Ilp_model.n_vars model) (Ilp_model.n_constrs model);

  (* Solve with the built-in MILP solver (CPLEX substitution, see DESIGN.md);
     an incumbent from the heuristics speeds up pruning. *)
  let seed =
    let o = Outcome.run Heuristics.MemHEFT g platform in
    if o.Outcome.feasible then Some (o.Outcome.makespan +. 1e-3) else None
  in
  let sol = Mip.solve ~node_limit:10_000 ~time_limit:30. ?incumbent:seed (Ilp_model.lp model) in
  (match (sol.Mip.status, sol.Mip.incumbent) with
  | Mip.Optimal, Some (x, obj) ->
    Printf.printf "MIP optimum: makespan = %g (%d nodes)\n" obj sol.Mip.nodes;
    let s = Ilp_model.extract_schedule model x in
    (match Validator.validate g platform s with
    | Ok r ->
      Printf.printf "extracted schedule: valid, makespan %g, peaks (%g, %g)\n" r.Validator.makespan
        r.Validator.peak_blue r.Validator.peak_red;
      print_string (Gantt.render ~width:48 g platform s)
    | Error errs -> List.iter print_endline errs)
  | _ -> Printf.printf "MIP did not terminate (status after %d nodes)\n" sol.Mip.nodes);

  (* Cross-check with the exact branch-and-bound scheduler. *)
  (match Exact.solve g platform with
  | { Exact.status = Exact.Proven_optimal; makespan; _ } ->
    Printf.printf "\nexact branch-and-bound agrees: optimal makespan %g\n" makespan
  | _ -> ());

  (* Export for an external MILP solver. *)
  let path = Filename.concat (Filename.get_temp_dir_name ()) "chain3.lp" in
  Lp_format.write (Ilp_model.lp model) path;
  Printf.printf "\nCPLEX-LP file written to %s (feed it to cplex/gurobi/scip/highs)\n" path
