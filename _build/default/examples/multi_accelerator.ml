(* Beyond the paper (its SS 7 future work): scheduling on a platform with
   THREE memory pools — CPUs, GPUs and an FPGA, each with its own memory —
   using the generalised k-pool heuristics of lib/multi.

   Run with: dune exec examples/multi_accelerator.exe *)

let () =
  (* A random workflow whose tasks have a per-pool duration: some kernels
     like the GPU, some the FPGA, some only run well on CPUs. *)
  let g = Daggen.generate (Rng.create 11) { Daggen.small_rand_params with Daggen.size = 40 } in
  let rng = Rng.create 12 in
  let durations =
    Array.init (Dag.n_tasks g) (fun _ ->
        let base = float_of_int (Rng.int_incl rng 4 20) in
        match Rng.int rng 3 with
        | 0 -> [| base; base /. 8.; base /. 2. |] (* GPU-friendly *)
        | 1 -> [| base; base *. 2.; base /. 10. |] (* FPGA-friendly *)
        | _ -> [| base /. 2.; base *. 4.; base *. 4. |] (* CPU-only-ish *))
  in
  let problem = Mproblem.make g ~durations in
  let platform caps =
    Mplatform.make
      (List.map2
         (fun procs capacity -> { Mplatform.procs; Mplatform.capacity })
         [ 4; 2; 1 ] caps)
  in

  (* Memory-oblivious reference on unbounded pools. *)
  let unbounded = platform [ infinity; infinity; infinity ] in
  let s = Mheuristics.heft problem unbounded in
  let r = Mschedule.validate_exn problem unbounded s in
  Printf.printf "3-pool HEFT: makespan %g, peaks (CPU %g, GPU %g, FPGA %g)\n\n" r.Mschedule.makespan
    r.Mschedule.peaks.(0) r.Mschedule.peaks.(1) r.Mschedule.peaks.(2);

  (* Shrink all three memories together. *)
  Printf.printf "%6s  %14s  %14s\n" "alpha" "MemHEFT" "MemMinMin";
  List.iter
    (fun alpha ->
      let caps = Array.to_list (Array.map (fun p -> max 1. (alpha *. p)) r.Mschedule.peaks) in
      let p = platform caps in
      let cell run =
        match run problem p with
        | Ok s ->
          let r = Mschedule.validate_exn problem p s in
          Printf.sprintf "%10.0f" r.Mschedule.makespan
        | Error _ -> "infeasible"
      in
      Printf.printf "%6.2f  %14s  %14s\n" alpha
        (cell (fun pr pl -> Mheuristics.memheft pr pl))
        (cell (fun pr pl -> Mheuristics.memminmin pr pl)))
    [ 1.0; 0.8; 0.6; 0.5; 0.4; 0.3 ];
  Printf.printf
    "\nThe same memory/makespan trade-off as the dual-memory case carries over\n\
     to three heterogeneous accelerator pools (the paper's SS 7 future work).\n"
