(* Scheduling a tiled Cholesky factorisation on a CPU+GPU node (the
   motivating workload of SS 6.1.2): how much memory can we give up, and what
   does it cost in makespan?

   Run with: dune exec examples/cholesky_pipeline.exe [-- N] *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10 in
  let g = Cholesky.generate ~n () in
  Format.printf "Cholesky %dx%d: %a@." n n Dag.pp_stats g;
  Printf.printf "kernel tasks: %d, broadcast relays: %d, lower-half tiles: %d\n@?"
    (Cholesky.n_kernel_tasks ~n) (Broadcast.n_fictitious g) (Cholesky.n_lower_tiles ~n);

  (* The mirage platform: 12 CPU cores sharing the host RAM, 3 GPUs sharing
     the device memory.  Memory is counted in 192x192 tiles. *)
  let platform = Workloads.platform_mirage in
  let heft = Outcome.run Heuristics.HEFT g platform in
  let minmin = Outcome.run Heuristics.MinMin g platform in
  Printf.printf "\nmemory-oblivious baselines:\n";
  Format.printf "  %a@." Outcome.pp heft;
  Format.printf "  %a@." Outcome.pp minmin;

  let peak = ceil (max (Outcome.peak_max heft) (Outcome.peak_max minmin)) in
  Printf.printf "\nmemory sweep (tiles):\n";
  Printf.printf "%8s  %12s  %12s\n" "M" "MemHEFT" "MemMinMin";
  let rec sweep m =
    if m >= 1. then begin
      let bounded = Platform.with_bounds platform ~m_blue:m ~m_red:m in
      let cell h =
        let o = Outcome.run h g bounded in
        if o.Outcome.feasible then Printf.sprintf "%.0f ms" o.Outcome.makespan else "-"
      in
      Printf.printf "%8.0f  %12s  %12s\n%!" m (cell Heuristics.MemHEFT) (cell Heuristics.MemMinMin);
      let next = Float.round (m /. 1.4) in
      if next < m then sweep next
    end
  in
  sweep peak;
  Printf.printf
    "\nMemHEFT keeps finding schedules far below MemMinMin's floor: MinMin-style\n\
     greedy dispatch releases many non-critical tasks early and their files\n\
     saturate the memories (SS 6.2.3 of the paper).\n"
