(* Quickstart: build the paper's toy DAG (Figure 2) by hand, schedule it on
   a 1 CPU + 1 GPU platform under different memory budgets, and compare the
   heuristics with the exact optimum.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* Build the DAG of Figure 2: four tasks, two processing times each (blue =
     CPU side, red = accelerator side), a file size F and a transfer time C
     per dependency. *)
  let b = Dag.Builder.create () in
  let t1 = Dag.Builder.add_task b ~name:"T1" ~w_blue:3. ~w_red:1. () in
  let t2 = Dag.Builder.add_task b ~name:"T2" ~w_blue:2. ~w_red:2. () in
  let t3 = Dag.Builder.add_task b ~name:"T3" ~w_blue:6. ~w_red:3. () in
  let t4 = Dag.Builder.add_task b ~name:"T4" ~w_blue:1. ~w_red:1. () in
  Dag.Builder.add_edge b ~src:t1 ~dst:t2 ~size:1. ~comm:1.;
  Dag.Builder.add_edge b ~src:t1 ~dst:t3 ~size:2. ~comm:1.;
  Dag.Builder.add_edge b ~src:t2 ~dst:t4 ~size:1. ~comm:1.;
  Dag.Builder.add_edge b ~src:t3 ~dst:t4 ~size:2. ~comm:1.;
  let g = Dag.Builder.finalize b in
  Format.printf "DAG: %a@.@." Dag.pp_stats g;

  (* A dual-memory platform: one blue processor, one red processor. *)
  let platform m = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:m ~m_red:m in

  List.iter
    (fun m ->
      Printf.printf "---- memory bound M(blue) = M(red) = %g ----\n" m;
      List.iter
        (fun h ->
          let o = Outcome.run h g (platform m) in
          Format.printf "  %a@." Outcome.pp o)
        Heuristics.all_names;
      (* The exact optimum (the paper's s1 has makespan 6 at M = 5; tightening
         to M = 4 forces the slower s2 with makespan 7). *)
      let r = Exact.solve g (platform m) in
      (match r.Exact.status with
      | Exact.Proven_optimal -> Printf.printf "  Optimal:   makespan=%g\n" r.Exact.makespan
      | Exact.Proven_infeasible -> Printf.printf "  Optimal:   infeasible\n"
      | Exact.Feasible | Exact.Unknown -> Printf.printf "  Optimal:   (budget hit)\n");
      print_newline ())
    [ 5.; 4.; 3. ];

  (* Show the memory-aware schedule at M = 4 as a Gantt chart. *)
  match Heuristics.memminmin g (platform 4.) with
  | Ok s ->
    Printf.printf "MemMinMin schedule at M = 4:\n%s" (Gantt.render ~width:64 g (platform 4.) s)
  | Error f -> Printf.printf "infeasible: %s\n" f.Heuristics.reason
