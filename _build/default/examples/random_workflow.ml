(* Scheduling a randomly generated scientific workflow under shrinking
   memory budgets: the trade-off curve of Figures 10-13 on a single DAG.

   Run with: dune exec examples/random_workflow.exe [-- SIZE [SEED]] *)

let () =
  let size = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 60 in
  let seed = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 42 in
  let params = { Daggen.small_rand_params with Daggen.size } in
  let g = Daggen.generate (Rng.create seed) params in
  Format.printf "workflow: %a@.@." Dag.pp_stats g;

  let platform = Platform.unbounded ~p_blue:2 ~p_red:2 in
  let b = Sweep.baseline platform g in
  Printf.printf "HEFT   makespan %g using up to %g memory units per memory\n" b.Sweep.heft_makespan
    b.Sweep.heft_peak;
  Printf.printf "MinMin makespan %g using up to %g memory units\n" b.Sweep.minmin_makespan
    b.Sweep.minmin_peak;
  Printf.printf "lower bound on any makespan: %g\n\n" b.Sweep.lower_bound;

  Printf.printf "%6s  %10s  %22s  %22s\n" "alpha" "memory" "MemHEFT (vs HEFT)" "MemMinMin (vs HEFT)";
  List.iter
    (fun alpha ->
      let bound = Float.round (alpha *. b.Sweep.heft_peak) in
      let cell h =
        let m = Sweep.run_bounded platform b h ~bound in
        if m.Sweep.feasible then Printf.sprintf "%8.0f (%4.2fx)" m.Sweep.makespan m.Sweep.ratio
        else "   infeasible"
      in
      Printf.printf "%6.2f  %10.0f  %22s  %22s\n" alpha bound (cell Heuristics.MemHEFT)
        (cell Heuristics.MemMinMin))
    [ 1.0; 0.9; 0.8; 0.7; 0.6; 0.5; 0.4; 0.3 ];

  (* Where the memory actually goes: usage profile of the tightest feasible
     MemHEFT schedule. *)
  let rec tightest alpha =
    if alpha > 1.0 then None
    else begin
      let bound = Float.round (alpha *. b.Sweep.heft_peak) in
      let p = Platform.with_bounds platform ~m_blue:bound ~m_red:bound in
      match Heuristics.memheft g p with
      | Ok s -> Some (bound, p, s)
      | Error _ -> tightest (alpha +. 0.05)
    end
  in
  match tightest 0.3 with
  | Some (bound, p, s) ->
    Printf.printf "\ntightest feasible MemHEFT schedule (M = %g):\n%s" bound
      (Gantt.render_memory_profile ~width:64 g p s)
  | None -> ()
