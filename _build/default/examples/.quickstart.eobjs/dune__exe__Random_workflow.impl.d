examples/random_workflow.ml: Array Dag Daggen Float Format Gantt Heuristics List Platform Printf Rng Sweep Sys
