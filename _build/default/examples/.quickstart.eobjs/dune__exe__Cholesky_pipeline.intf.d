examples/cholesky_pipeline.mli:
