examples/ilp_export.mli:
