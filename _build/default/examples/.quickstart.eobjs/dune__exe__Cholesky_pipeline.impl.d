examples/cholesky_pipeline.ml: Array Broadcast Cholesky Dag Float Format Heuristics Outcome Platform Printf Sys Workloads
