examples/quickstart.mli:
