examples/quickstart.ml: Dag Exact Format Gantt Heuristics List Outcome Platform Printf
