examples/ilp_export.ml: Exact Filename Gantt Heuristics Ilp_model List Lp_format Mip Outcome Platform Printf Toy Validator
