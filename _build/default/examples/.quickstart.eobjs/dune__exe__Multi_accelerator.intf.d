examples/multi_accelerator.mli:
