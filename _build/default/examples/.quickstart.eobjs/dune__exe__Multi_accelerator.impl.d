examples/multi_accelerator.ml: Array Dag Daggen List Mheuristics Mplatform Mproblem Mschedule Printf Rng
