examples/random_workflow.mli:
