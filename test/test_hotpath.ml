(* A/B bit-identity suite for the hot-path overhaul.

   Two independent nets pin the optimised scheduling core to the
   pre-optimisation behaviour:

   - Golden digests: MD5 of the hex-float rendering of every schedule array
     (starts, procs, comm_starts) over dag x heuristic x alpha x options
     grids, captured from the pre-overhaul binary.  Any change to a single
     bit of any start time, processor choice or transfer time changes the
     digest.

   - Live A/B: the [_reference] runners (kept verbatim in-tree) must produce
     structurally identical schedules to the optimised runners on random, LU
     and Cholesky instances, under every option variant.

   Plus the acceptance check that campaign CSV bytes are identical at
   --jobs 1 and --jobs 2 (the incremental ready set lives in mutable state;
   the parallel campaign must not observe any difference). *)

open Helpers

let digest_schedule (s : Schedule.t) =
  let b = Buffer.create 4096 in
  Array.iter (fun x -> Buffer.add_string b (Printf.sprintf "%h;" x)) s.Schedule.starts;
  Array.iter (fun p -> Buffer.add_string b (Printf.sprintf "%d;" p)) s.Schedule.procs;
  Array.iter
    (fun c ->
      match c with
      | None -> Buffer.add_string b "_;"
      | Some x -> Buffer.add_string b (Printf.sprintf "%h;" x))
    s.Schedule.comm_starts;
  Digest.to_hex (Digest.string (Buffer.contents b))

let digest_result = function
  | Ok s -> digest_schedule s
  | Error (f : Heuristics.failure) -> Printf.sprintf "fail@%d" f.Heuristics.n_scheduled

let heuristics =
  [ Heuristics.MemHEFT; Heuristics.MemMinMin; Heuristics.MemMaxMin; Heuristics.MemSufferage ]

let option_variants =
  [ ("default", Sched_state.default_options);
    ("batched", { Sched_state.default_options with Sched_state.comm_mode = Sched_state.Jit_batched });
    ("eager", { Sched_state.default_options with Sched_state.comm_mode = Sched_state.Eager });
    ("insertion",
     { Sched_state.default_options with Sched_state.proc_policy = Sched_state.Insertion }) ]

let alphas = [ 0.4; 0.7; 1.0 ]

let combined_digest ~platform dags =
  (* One digest covering every (dag x heuristic x alpha x options) cell,
     byte-for-byte the procedure the golden values were captured with. *)
  let b = Buffer.create 4096 in
  List.iter
    (fun g ->
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g platform) in
      List.iter
        (fun alpha ->
          let bound = alpha *. peak in
          let p = Platform.with_bounds platform ~m_blue:bound ~m_red:bound in
          List.iter
            (fun h ->
              List.iter
                (fun (_, options) ->
                  Buffer.add_string b (digest_result (Heuristics.run ~options h g p));
                  Buffer.add_char b '\n')
                option_variants)
            heuristics;
          (* rng tie-breaking path of MemHEFT *)
          Buffer.add_string b (digest_result (Heuristics.memheft ~rng:(Rng.create 7) g p));
          Buffer.add_char b '\n')
        alphas)
    dags;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Golden values captured from the pre-overhaul scheduler (O(n) ready-set
   rescans, three predecessor walks per estimate, linear staircase scans). *)
let golden =
  [ ("random n=30 x5", "c8466feca1f42bb6d44209e32ed3c51b", fun () ->
       (Workloads.platform_random, Workloads.small_rand_set ~count:5 ()));
    ("random n=300 x2", "ab1811e8dade97a64018edb3bc892fd7", fun () ->
       (Workloads.platform_random, Workloads.large_rand_set ~count:2 ~size:300 ()));
    ("LU n=8", "f3d97630040edf658ee0116585f8a264", fun () ->
       (Workloads.platform_mirage, [ Workloads.lu ~n:8 () ]));
    ("Cholesky n=8", "1586f49b8faec80f9e22f257ec5f2710", fun () ->
       (Workloads.platform_mirage, [ Workloads.cholesky ~n:8 () ])) ]

let golden_tests =
  List.map
    (fun (name, digest, mk) ->
      Alcotest.test_case name `Quick (fun () ->
          let platform, dags = mk () in
          check_string "golden digest" digest (combined_digest ~platform dags)))
    golden

(* ------------------------------------------- live optimised-vs-reference --- *)

let ab_families =
  [ ("random", fun () -> (Workloads.platform_random, Workloads.small_rand_set ~count:4 ()));
    ("LU", fun () -> (Workloads.platform_mirage, [ Workloads.lu ~n:6 () ]));
    ("Cholesky", fun () -> (Workloads.platform_mirage, [ Workloads.cholesky ~n:6 () ])) ]

let check_ab ~platform dags =
  List.iter
    (fun g ->
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g platform) in
      List.iter
        (fun alpha ->
          let bound = alpha *. peak in
          let p = Platform.with_bounds platform ~m_blue:bound ~m_red:bound in
          List.iter
            (fun (vname, options) ->
              let ctx h = Printf.sprintf "%s alpha=%g %s" h alpha vname in
              check_string (ctx "memheft")
                (digest_result (Heuristics.memheft_reference ~options g p))
                (digest_result (Heuristics.memheft ~options g p));
              check_string (ctx "memminmin")
                (digest_result (Heuristics.memminmin_reference ~options g p))
                (digest_result (Heuristics.memminmin ~options g p)))
            option_variants)
        alphas)
    dags

let ab_tests =
  List.map
    (fun (name, mk) ->
      Alcotest.test_case name `Quick (fun () ->
          let platform, dags = mk () in
          check_ab ~platform dags))
    ab_families

let ab_random_property =
  qtest ~count:60 "optimised = reference on random seeds" seed_arb (fun seed ->
      let g = dag_of_seed ~size:16 seed in
      let p = platform 40. in
      digest_result (Heuristics.memheft g p) = digest_result (Heuristics.memheft_reference g p)
      && digest_result (Heuristics.memminmin g p)
         = digest_result (Heuristics.memminmin_reference g p))

(* ------------------------------------------------ campaign jobs identity --- *)

let test_csv_jobs_identity () =
  (* The acceptance check at test scale: the campaign CSV bytes must be
     identical at --jobs 1 and --jobs 2. *)
  let dags = List.init 5 (fun seed -> dag_of_seed ~size:14 (300 + seed)) in
  let sweep_csv pool =
    let baselines = Sweep.baselines ?pool Workloads.platform_random dags in
    String.concat "\n"
      (List.concat_map
         (fun h ->
           List.map
             (fun a ->
               Csv.row_to_string
                 [ Csv.float_cell a.Sweep.alpha; Csv.float_cell a.Sweep.mean_ratio;
                   Csv.float_cell a.Sweep.success_rate ])
             (Sweep.normalized_sweep ?pool Workloads.platform_random ~alphas:[ 0.4; 0.7; 1.0 ] h
                baselines))
         [ Heuristics.MemHEFT; Heuristics.MemMinMin ])
  in
  let jobs n = Par.with_pool ~jobs:n (fun pool -> sweep_csv (Some pool)) in
  let j1 = jobs 1 in
  check_string "jobs=1 vs jobs=2" j1 (jobs 2)

let () =
  Alcotest.run "hotpath"
    [ ("golden digests", golden_tests);
      ("optimised vs reference", ab_tests @ [ ab_random_property ]);
      ("jobs identity", [ Alcotest.test_case "campaign CSV bytes" `Quick test_csv_jobs_identity ])
    ]
