(* Shared test helpers. *)

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb prop)

(* Deterministic small random DAG from an integer seed (shrinks well). *)
let dag_of_seed ?(size = 12) seed =
  let params = { Daggen.small_rand_params with Daggen.size } in
  Daggen.generate (Rng.create seed) params

(* One-call DAG construction, the shared path for hand-built unit fixtures
   and fuzz-corpus replays: tasks as (name, w_blue, w_red) in id order,
   edges as (src, dst, size, comm). *)
let build_dag ~tasks ~edges =
  let b = Dag.Builder.create () in
  List.iter
    (fun (name, w_blue, w_red) -> ignore (Dag.Builder.add_task b ~name ~w_blue ~w_red ()))
    tasks;
  List.iter (fun (src, dst, size, comm) -> Dag.Builder.add_edge b ~src ~dst ~size ~comm) edges;
  Dag.Builder.finalize b

(* One producer (task 0) broadcasting an identical (size, comm) file to [d]
   consumers (tasks 1..d). *)
let star ?(size = 2.) ?(comm = 3.) d =
  build_dag
    ~tasks:(("src", 1., 1.) :: List.init d (fun k -> (Printf.sprintf "c%d" (k + 1), 1., 1.)))
    ~edges:(List.init d (fun k -> (0, k + 1, size, comm)))

let seed_arb = QCheck.int_range 0 10_000

(* A platform with two processors per memory and the given symmetric bound. *)
let platform ?(p_blue = 2) ?(p_red = 2) bound =
  Platform.make ~p_blue ~p_red ~m_blue:bound ~m_red:bound

let validate_ok g p s =
  match Validator.validate g p s with
  | Ok r -> r
  | Error errs -> Alcotest.failf "invalid schedule:\n%s" (String.concat "\n" errs)
