(* Tests for the Par domain-pool runtime: pool semantics (futures, errors,
   cancellation, backpressure, shutdown) and the determinism contract of the
   parallel campaign (sweeps, multistart) across jobs counts. *)

open Helpers

exception Boom of int

(* ------------------------------------------------------------- futures --- *)

let test_submit_await () =
  Par.with_pool ~jobs:2 (fun pool ->
      let futs = List.init 20 (fun k -> Par.submit pool (fun () -> k * k)) in
      List.iteri (fun k fut -> check_int "square" (k * k) (Par.await fut)) futs)

let test_serial_pool_inline () =
  Par.with_pool ~jobs:1 (fun pool ->
      (* jobs = 1 runs at submission on the caller: observable ordering. *)
      let trace = ref [] in
      let futs =
        List.init 5 (fun k ->
            Par.submit pool (fun () ->
                trace := k :: !trace;
                k))
      in
      check_bool "already executed in submission order" true (!trace = [ 4; 3; 2; 1; 0 ]);
      check_int "values" 10 (List.fold_left (fun acc f -> acc + Par.await f) 0 futs))

let test_exception_propagates_with_backtrace () =
  Par.with_pool ~jobs:2 (fun pool ->
      let fut = Par.submit pool (fun () -> raise (Boom 7)) in
      match Par.await fut with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 7 -> ())

let test_parallel_map_order () =
  Par.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 Fun.id in
      (* Uneven work so completion order differs from submission order. *)
      let f k =
        let n = if k mod 7 = 0 then 20_000 else 10 in
        let acc = ref 0 in
        for i = 1 to n do
          acc := (!acc + (k * i)) mod 1_000_003
        done;
        (k, !acc)
      in
      let serial = List.map f xs in
      let par = Par.parallel_map pool ~f xs in
      check_bool "input order preserved" true (serial = par))

let test_parallel_map_chunked () =
  Par.with_pool ~jobs:3 (fun pool ->
      let xs = List.init 37 Fun.id in
      List.iter
        (fun chunk ->
          let r = Par.parallel_map ~chunk pool ~f:(fun k -> 2 * k) xs in
          check_bool
            (Printf.sprintf "chunk=%d" chunk)
            true
            (r = List.map (fun k -> 2 * k) xs))
        [ 1; 2; 5; 37; 100 ])

let test_batch_failure_is_deterministic () =
  Par.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 50 Fun.id in
      let f k = if k mod 10 = 3 then raise (Boom k) else k in
      (* Lowest failing index wins, whatever the completion order. *)
      for _ = 1 to 5 do
        match Par.parallel_map pool ~f xs with
        | _ -> Alcotest.fail "expected Boom"
        | exception Boom k -> check_int "first failing element" 3 k
      done)

let test_pool_survives_failed_batch () =
  Par.with_pool ~jobs:2 (fun pool ->
      (match Par.parallel_map pool ~f:(fun _ -> raise (Boom 0)) [ 1; 2; 3 ] with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom _ -> ());
      let r = Par.parallel_map pool ~f:(fun k -> k + 1) [ 1; 2; 3 ] in
      check_bool "pool usable after failure" true (r = [ 2; 3; 4 ]);
      let c = Par.counters pool in
      check_bool "failures counted" true (c.Par.tasks_failed >= 1))

let test_cancel_pending () =
  (* One worker, one slow blocker: the victim submitted behind it is still
     Pending and must be cancellable; awaiting it raises Cancelled. *)
  Par.with_pool ~jobs:2 (fun pool ->
      let release = Atomic.make false in
      let blockers =
        List.init 2 (fun _ ->
            Par.submit pool (fun () ->
                while not (Atomic.get release) do
                  Domain.cpu_relax ()
                done))
      in
      let victim = Par.submit pool (fun () -> 42) in
      check_bool "cancel succeeds on pending task" true (Par.cancel victim);
      check_bool "second cancel is a no-op" false (Par.cancel victim);
      Atomic.set release true;
      List.iter Par.await blockers;
      (match Par.await victim with
      | _ -> Alcotest.fail "expected Cancelled"
      | exception Par.Cancelled -> ());
      let c = Par.counters pool in
      check_int "cancelled counted" 1 c.Par.tasks_cancelled)

let test_backpressure () =
  (* Queue of capacity 2 with blocked workers: submissions beyond capacity
     must block (and record wait time) rather than grow unboundedly. *)
  Par.with_pool ~jobs:2 ~queue_capacity:2 (fun pool ->
      let release = Atomic.make false in
      let blockers =
        List.init 2 (fun _ ->
            Par.submit pool (fun () ->
                while not (Atomic.get release) do
                  Domain.cpu_relax ()
                done;
                0))
      in
      (* Fill the queue, then submit from another domain which must stall. *)
      let queued = List.init 2 (fun k -> Par.submit pool (fun () -> k)) in
      let submitter =
        Domain.spawn (fun () -> Par.await (Par.submit pool (fun () -> 99)))
      in
      Unix.sleepf 0.05;
      Atomic.set release true;
      check_int "stalled submission completes" 99 (Domain.join submitter);
      List.iter (fun f -> ignore (Par.await f)) blockers;
      List.iteri (fun k f -> check_int "queued" k (Par.await f)) queued)

let test_shutdown_joins_and_rejects () =
  let pool = Par.create ~jobs:3 () in
  let futs = List.init 10 (fun k -> Par.submit pool (fun () -> k)) in
  Par.shutdown pool;
  (* Pending futures are completed before the workers exit. *)
  List.iteri (fun k f -> check_int "drained" k (Par.await f)) futs;
  (match Par.submit pool (fun () -> 0) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  (* Idempotent. *)
  Par.shutdown pool

let test_nested_call_runs_inline () =
  (* A task on the pool calling back into the pool must not deadlock even
     when the nested batch exceeds the queue capacity. *)
  Par.with_pool ~jobs:2 ~queue_capacity:2 (fun pool ->
      let r =
        Par.parallel_map pool
          ~f:(fun k ->
            let inner = Par.parallel_map pool ~f:(fun x -> x * x) (List.init 8 Fun.id) in
            (k, List.fold_left ( + ) 0 inner))
          [ 1; 2; 3; 4 ]
      in
      check_bool "nested results" true (r = List.map (fun k -> (k, 140)) [ 1; 2; 3; 4 ]))

let test_map_seeded_deterministic () =
  let run jobs =
    Par.with_pool ~jobs (fun pool ->
        Par.map_seeded pool ~rng:(Rng.create 2014)
          ~f:(fun rng k -> (k, Rng.int rng 1_000_000, Rng.float rng 1.))
          (List.init 40 Fun.id))
  in
  let r1 = run 1 and r2 = run 2 and r8 = run 8 in
  check_bool "jobs=1 vs jobs=2" true (r1 = r2);
  check_bool "jobs=1 vs jobs=8" true (r1 = r8)

let test_counters () =
  Par.with_pool ~jobs:2 (fun pool ->
      ignore (Par.parallel_map pool ~f:(fun k -> k) (List.init 25 Fun.id));
      let c = Par.counters pool in
      check_int "tasks" 25 c.Par.tasks_run;
      check_int "batches" 1 c.Par.batches;
      check_bool "busy time measured" true (c.Par.worker_busy_s >= 0.);
      Par.reset_counters pool;
      check_int "reset" 0 (Par.counters pool).Par.tasks_run)

(* ---------------------------------------- campaign determinism contract --- *)

(* Fixed-seed instance set, small enough for the test suite. *)
let campaign_platform = Workloads.platform_random
let campaign_alphas = [ 0.3; 0.5; 0.7; 1.0 ]

let campaign_baselines () =
  Sweep.baselines campaign_platform
    (List.init 6 (fun seed -> dag_of_seed ~size:14 (100 + seed)))

let sweep_csv_bytes aggs =
  (* The exact byte rendering used by the figure CSVs. *)
  String.concat "\n"
    (List.map
       (fun a ->
         Csv.row_to_string
           [ Csv.float_cell a.Sweep.alpha; Csv.float_cell a.Sweep.mean_ratio;
             Csv.float_cell a.Sweep.success_rate ])
       aggs)

let with_jobs jobs f = Par.with_pool ~jobs (fun pool -> f (Some pool))

let test_normalized_sweep_jobs_invariant () =
  let baselines = campaign_baselines () in
  let run pool =
    List.map
      (fun h -> Sweep.normalized_sweep ?pool campaign_platform ~alphas:campaign_alphas h baselines)
      [ Heuristics.MemHEFT; Heuristics.MemMinMin ]
  in
  let serial = run None in
  List.iter
    (fun jobs ->
      let par = with_jobs jobs run in
      (* [compare] rather than [=]: mean ratios are IEEE nan at alphas where
         no instance succeeds, and nan <> nan under polymorphic equality. *)
      check_bool (Printf.sprintf "aggregates equal (jobs=%d)" jobs) true (compare serial par = 0);
      check_string
        (Printf.sprintf "CSV bytes equal (jobs=%d)" jobs)
        (String.concat "\n\n" (List.map sweep_csv_bytes serial))
        (String.concat "\n\n" (List.map sweep_csv_bytes par)))
    [ 1; 2; 8 ]

let test_baselines_jobs_invariant () =
  let dags = List.init 6 (fun seed -> dag_of_seed ~size:14 (200 + seed)) in
  let serial = Sweep.baselines campaign_platform dags in
  List.iter
    (fun jobs ->
      let par =
        Par.with_pool ~jobs (fun pool -> Sweep.baselines ~pool campaign_platform dags)
      in
      check_bool
        (Printf.sprintf "baseline metrics equal (jobs=%d)" jobs)
        true
        (List.for_all2
           (fun (a : Sweep.baseline) (b : Sweep.baseline) ->
             a.Sweep.heft_makespan = b.Sweep.heft_makespan
             && a.Sweep.heft_peak = b.Sweep.heft_peak
             && a.Sweep.minmin_makespan = b.Sweep.minmin_makespan
             && a.Sweep.minmin_peak = b.Sweep.minmin_peak
             && a.Sweep.lower_bound = b.Sweep.lower_bound)
           serial par))
    [ 2; 8 ]

let test_exact_sweep_jobs_invariant () =
  let baselines =
    Sweep.baselines campaign_platform (List.init 3 (fun seed -> dag_of_seed ~size:6 (300 + seed)))
  in
  let run pool =
    Sweep.exact_sweep ?pool ~node_limit:20_000 campaign_platform ~alphas:[ 0.5; 0.8; 1.0 ]
      baselines
  in
  let serial = run None in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "exact aggregates equal (jobs=%d)" jobs)
        true
        (compare serial (with_jobs jobs run) = 0))
    [ 1; 2; 8 ]

let test_multistart_jobs_invariant () =
  let g = dag_of_seed ~size:14 77 in
  let b = Sweep.baseline campaign_platform g in
  let p = platform (0.8 *. b.Sweep.heft_peak) in
  let serial = Multistart.memheft ~restarts:8 g p in
  let digest (m : Multistart.t) =
    ( (match m.Multistart.best with
      | Ok s -> Some (Schedule.makespan g (platform infinity) s)
      | Error _ -> None),
      m.Multistart.n_feasible,
      m.Multistart.n_runs,
      m.Multistart.makespans )
  in
  List.iter
    (fun jobs ->
      let par = Par.with_pool ~jobs (fun pool -> Multistart.memheft ~pool ~restarts:8 g p) in
      check_bool (Printf.sprintf "multistart equal (jobs=%d)" jobs) true
        (compare (digest serial) (digest par) = 0))
    [ 1; 2; 8 ]

let () =
  Alcotest.run "par"
    [ ( "pool",
        [ Alcotest.test_case "submit/await" `Quick test_submit_await;
          Alcotest.test_case "serial pool runs inline" `Quick test_serial_pool_inline;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates_with_backtrace;
          Alcotest.test_case "parallel_map order" `Quick test_parallel_map_order;
          Alcotest.test_case "parallel_map chunked" `Quick test_parallel_map_chunked;
          Alcotest.test_case "deterministic batch failure" `Quick
            test_batch_failure_is_deterministic;
          Alcotest.test_case "pool survives failed batch" `Quick test_pool_survives_failed_batch;
          Alcotest.test_case "cancel pending" `Quick test_cancel_pending;
          Alcotest.test_case "backpressure" `Quick test_backpressure;
          Alcotest.test_case "shutdown joins and rejects" `Quick test_shutdown_joins_and_rejects;
          Alcotest.test_case "nested call runs inline" `Quick test_nested_call_runs_inline;
          Alcotest.test_case "map_seeded deterministic" `Quick test_map_seeded_deterministic;
          Alcotest.test_case "counters" `Quick test_counters ] );
      ( "determinism",
        [ Alcotest.test_case "normalized_sweep jobs-invariant" `Quick
            test_normalized_sweep_jobs_invariant;
          Alcotest.test_case "baselines jobs-invariant" `Quick test_baselines_jobs_invariant;
          Alcotest.test_case "exact_sweep jobs-invariant" `Quick test_exact_sweep_jobs_invariant;
          Alcotest.test_case "multistart jobs-invariant" `Quick test_multistart_jobs_invariant ] )
    ]
