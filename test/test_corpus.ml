(* Replays every committed fuzz-corpus entry as a permanent regression.

   Each file under test/corpus/ is a shrunk instance that once violated the
   named oracle; once the underlying bug is fixed (or the oracle's contract
   corrected), the entry must keep passing under the default configuration
   for good.  Reproduce the original campaign of an entry with:

     dune exec bin/memsched_cli.exe -- check --cases 500 --seed <seed> --oracle <oracle> *)

let replay_case (path, entry) =
  Alcotest.test_case (Filename.basename path) `Quick (fun () ->
      match Fuzz_corpus.replay entry with
      | Fuzz_oracle.Pass | Fuzz_oracle.Skip _ -> ()
      | Fuzz_oracle.Fail errs ->
        Alcotest.failf "corpus regression %s:\n%s" path (String.concat "\n" errs))

(* dune runtest executes in _build/default/test (where the corpus glob deps
   land); a manual `dune exec test/test_corpus.exe` runs from the repo
   root. *)
let corpus_dir = if Sys.file_exists "corpus" then "corpus" else "test/corpus"

let () =
  let entries = Fuzz_corpus.load_dir corpus_dir in
  let cases =
    if entries = [] then [ Alcotest.test_case "corpus empty" `Quick (fun () -> ()) ]
    else List.map replay_case entries
  in
  Alcotest.run "corpus" [ ("replay", cases) ]
