(* Tests for the workload generators: toy graphs, DAGGEN-style random DAGs,
   the kernel model, broadcast pipelining, tiled LU and Cholesky. *)

open Helpers

(* ----------------------------------------------------------------- toy --- *)

let test_dex_values () =
  let g = Toy.dex () in
  check_int "tasks" 4 (Dag.n_tasks g);
  check_int "edges" 4 (Dag.n_edges g);
  check_float "W1(1)" 3. (Dag.task g 0).Dag.w_blue;
  check_float "W2(1)" 1. (Dag.task g 0).Dag.w_red;
  check_float "W1(3)" 6. (Dag.task g 2).Dag.w_blue;
  let e = Option.get (Dag.find_edge g ~src:0 ~dst:2) in
  check_float "F(1,3)" 2. e.Dag.size;
  check_float "C(1,3)" 1. e.Dag.comm

let test_chain () =
  let g = Toy.chain ~n:5 ~w:2. ~f:3. ~c:1. in
  check_int "tasks" 5 (Dag.n_tasks g);
  check_int "edges" 4 (Dag.n_edges g);
  Alcotest.(check (list int)) "single source" [ 0 ] (Dag.sources g);
  Alcotest.(check (list int)) "single sink" [ 4 ] (Dag.sinks g);
  check_float "critical path" 10. (Dag.critical_path_min g)

let test_fork_join () =
  let g = Toy.fork_join ~width:4 ~w:1. ~f:1. ~c:1. in
  check_int "tasks" 6 (Dag.n_tasks g);
  check_int "edges" 8 (Dag.n_edges g);
  check_int "fork out-degree" 4 (List.length (Dag.succ g 0))

let test_diamond () =
  let g = Toy.diamond () in
  check_int "tasks" 4 (Dag.n_tasks g);
  check_float "cp" 3. (Dag.critical_path_min g)

let test_independent () =
  let g = Toy.independent ~n:7 ~w_blue:1. ~w_red:2. in
  check_int "no edges" 0 (Dag.n_edges g);
  check_int "all sources" 7 (List.length (Dag.sources g))

let test_toy_rejects () =
  Alcotest.check_raises "chain n=0" (Invalid_argument "Toy.chain: n must be positive") (fun () ->
      ignore (Toy.chain ~n:0 ~w:1. ~f:1. ~c:1.))

(* -------------------------------------------------------------- daggen --- *)

let test_daggen_size () =
  let g = Daggen.generate (Rng.create 1) Daggen.small_rand_params in
  check_int "exact size" 30 (Dag.n_tasks g)

let test_daggen_deterministic () =
  let a = Daggen.generate (Rng.create 5) Daggen.small_rand_params in
  let b = Daggen.generate (Rng.create 5) Daggen.small_rand_params in
  check_string "identical graphs" (Dag.to_string a) (Dag.to_string b)

let test_daggen_seeds_differ () =
  let a = Daggen.generate (Rng.create 5) Daggen.small_rand_params in
  let b = Daggen.generate (Rng.create 6) Daggen.small_rand_params in
  check_bool "different" true (Dag.to_string a <> Dag.to_string b)

let test_daggen_rejects () =
  let bad p = try ignore (Daggen.generate (Rng.create 1) p); false with Invalid_argument _ -> true in
  check_bool "size 0" true (bad { Daggen.small_rand_params with Daggen.size = 0 });
  check_bool "width 0" true (bad { Daggen.small_rand_params with Daggen.width = 0. });
  check_bool "width > 1" true (bad { Daggen.small_rand_params with Daggen.width = 1.5 });
  check_bool "density > 1" true (bad { Daggen.small_rand_params with Daggen.density = 1.5 });
  check_bool "jumps 0" true (bad { Daggen.small_rand_params with Daggen.jumps = 0 })

let test_daggen_levels () =
  let widths = Daggen.levels (Rng.create 3) Daggen.small_rand_params in
  check_int "widths sum to size" 30 (List.fold_left ( + ) 0 widths);
  check_bool "all positive" true (List.for_all (fun w -> w > 0) widths)

let daggen_cost_ranges =
  qtest ~count:40 "costs drawn in the configured ranges" seed_arb (fun seed ->
      let g = Daggen.generate (Rng.create seed) Daggen.small_rand_params in
      Array.for_all
        (fun (t : Dag.task) ->
          t.Dag.w_blue >= 1. && t.Dag.w_blue <= 20. && t.Dag.w_red >= 1. && t.Dag.w_red <= 20.)
        (Dag.tasks g)
      && Array.for_all
           (fun (e : Dag.edge) -> e.Dag.size >= 1. && e.Dag.size <= 10. && e.Dag.comm >= 1. && e.Dag.comm <= 10.)
           (Dag.edges g))

let daggen_connected_levels =
  qtest ~count:40 "every non-first-level task has a parent" seed_arb (fun seed ->
      let g = Daggen.generate (Rng.create seed) Daggen.small_rand_params in
      (* sources are exactly the first level: every other task has >= 1
         parent by construction. *)
      List.for_all (fun i -> Dag.pred g i <> [] || List.mem i (Dag.sources g))
        (List.init (Dag.n_tasks g) Fun.id))

(* ------------------------------------------------------------- kernels --- *)

let test_kernel_table1 () =
  (* Table 1 of the paper, CPU column. *)
  check_float "getrf" 450. (Kernels.cpu_ms Kernels.Getrf);
  check_float "gemm" 1450. (Kernels.cpu_ms Kernels.Gemm);
  check_float "trsm_l" 990. (Kernels.cpu_ms Kernels.Trsm_l);
  check_float "trsm_u" 830. (Kernels.cpu_ms Kernels.Trsm_u);
  check_float "potrf" 450. (Kernels.cpu_ms Kernels.Potrf);
  check_float "syrk" 990. (Kernels.cpu_ms Kernels.Syrk);
  check_float "fictitious free" 0. (Kernels.cpu_ms Kernels.Fictitious);
  check_float "transfer" 50. Kernels.tile_transfer_ms;
  check_float "tile" 1. Kernels.tile_size

let test_kernel_affinities () =
  (* Update kernels prefer the GPU; panel factorisations prefer the CPU. *)
  List.iter
    (fun k -> check_bool "gpu faster" true (Kernels.gpu_ms k < Kernels.cpu_ms k))
    [ Kernels.Gemm; Kernels.Trsm_l; Kernels.Trsm_u; Kernels.Syrk ];
  List.iter
    (fun k -> check_bool "cpu faster" true (Kernels.cpu_ms k < Kernels.gpu_ms k))
    [ Kernels.Getrf; Kernels.Potrf ]

(* ----------------------------------------------------------- broadcast --- *)

let wide_producer d = star d

let test_broadcast_pipeline_shape () =
  let g = Broadcast.linearize (wide_producer 5) in
  (* d consumers need d - 1 relays; every out-degree is at most 2 and the
     producer's is 1. *)
  check_int "relays" 4 (Broadcast.n_fictitious g);
  check_int "producer fanout" 1 (List.length (Dag.succ g 0));
  for i = 0 to Dag.n_tasks g - 1 do
    check_bool "fanout bounded" true (List.length (Dag.succ g i) <= 2)
  done;
  (* Consumers are all reachable: they still have exactly one input file of
     the original size. *)
  for i = 1 to 5 do
    check_float "consumer input" 2. (Dag.in_size g i)
  done

let test_broadcast_small_fanout_untouched () =
  let g0 = wide_producer 1 in
  let g = Broadcast.linearize g0 in
  check_int "no relays" 0 (Broadcast.n_fictitious g);
  check_int "same edges" (Dag.n_edges g0) (Dag.n_edges g)

let test_broadcast_fanout2 () =
  let g = Broadcast.linearize (wide_producer 2) in
  (* One relay feeding both consumers. *)
  check_int "one relay" 1 (Broadcast.n_fictitious g);
  check_bool "relay has zero work" true
    (let relay = Option.get (List.find_opt (Broadcast.is_fictitious g) (List.init (Dag.n_tasks g) Fun.id)) in
     Float.equal (Dag.task g relay).Dag.w_blue 0.)

let test_broadcast_rejects_heterogeneous () =
  (* Two outgoing files with different sizes: not a broadcast. *)
  let g =
    build_dag
      ~tasks:[ ("src", 1., 1.); ("c1", 1., 1.); ("c2", 1., 1.) ]
      ~edges:[ (0, 1, 1., 1.); (0, 2, 2., 1.) ]
  in
  check_bool "rejected" true
    (try ignore (Broadcast.linearize g); false with Invalid_argument _ -> true)

let broadcast_preserves_reachability =
  qtest ~count:30 "pipelining preserves consumer sets" (QCheck.int_range 2 12) (fun d ->
      let g = Broadcast.linearize (wide_producer d) in
      (* every original consumer (ids 1..d) is reachable from the source *)
      let reachable = Array.make (Dag.n_tasks g) false in
      let rec dfs i =
        if not reachable.(i) then begin
          reachable.(i) <- true;
          List.iter dfs (Dag.children g i)
        end
      in
      dfs 0;
      List.for_all (fun i -> reachable.(i)) (List.init d (fun k -> k + 1)))

(* ------------------------------------------------------- LU / Cholesky --- *)

let test_lu_counts () =
  check_int "n=1" 1 (Lu.n_kernel_tasks ~n:1);
  check_int "n=2" 5 (Lu.n_kernel_tasks ~n:2);
  check_int "n=3" 14 (Lu.n_kernel_tasks ~n:3);
  let g = Lu.generate ~pipeline_broadcasts:false ~n:3 () in
  check_int "generated matches formula" (Lu.n_kernel_tasks ~n:3) (Dag.n_tasks g);
  check_int "tiles" 9 (Lu.n_tiles ~n:3)

let test_cholesky_counts () =
  check_int "n=1" 1 (Cholesky.n_kernel_tasks ~n:1);
  check_int "n=2" 4 (Cholesky.n_kernel_tasks ~n:2);
  check_int "n=3" 10 (Cholesky.n_kernel_tasks ~n:3);
  let g = Cholesky.generate ~pipeline_broadcasts:false ~n:3 () in
  check_int "generated matches formula" (Cholesky.n_kernel_tasks ~n:3) (Dag.n_tasks g);
  check_int "lower tiles" 6 (Cholesky.n_lower_tiles ~n:3)

let test_lu_structure () =
  let g = Lu.generate ~n:4 () in
  (* getrf_0 is the unique source even after pipelining. *)
  Alcotest.(check (list string)) "single source" [ "getrf_0" ]
    (List.map (fun i -> (Dag.task g i).Dag.name) (Dag.sources g));
  (* every edge carries one tile and one transfer slot *)
  Array.iter
    (fun (e : Dag.edge) ->
      check_float "tile size" 1. e.Dag.size;
      check_float "transfer" 50. e.Dag.comm)
    (Dag.edges g)

let test_cholesky_structure () =
  let g = Cholesky.generate ~n:4 () in
  Alcotest.(check (list string)) "single source" [ "potrf_0" ]
    (List.map (fun i -> (Dag.task g i).Dag.name) (Dag.sources g));
  check_bool "has relays" true (Broadcast.n_fictitious g > 0)

let test_cholesky_schedulable () =
  (* End-to-end: the generated DAG is schedulable and the dependency
     structure forces potrf_k after the updates of step k-1. *)
  let g = Cholesky.generate ~n:3 () in
  let p = Platform.unbounded ~p_blue:2 ~p_red:1 in
  let s = Heuristics.heft g p in
  ignore (validate_ok g p s);
  let find name =
    let rec go i =
      if i >= Dag.n_tasks g then Alcotest.failf "task %s not found" name
      else if (Dag.task g i).Dag.name = name then i
      else go (i + 1)
    in
    go 0
  in
  let potrf1 = find "potrf_1" and syrk10 = find "syrk_1_0" in
  check_bool "potrf_1 after syrk_1_0" true
    (s.Schedule.starts.(potrf1) >= s.Schedule.starts.(syrk10) +. Schedule.duration g p s syrk10 -. 1e-9)

let test_tiled_rejects () =
  Alcotest.check_raises "lu n=0" (Invalid_argument "Lu.generate: n must be positive") (fun () ->
      ignore (Lu.generate ~n:0 ()));
  Alcotest.check_raises "cholesky n=0" (Invalid_argument "Cholesky.generate: n must be positive")
    (fun () -> ignore (Cholesky.generate ~n:0 ()))

let lu_acyclic_and_schedulable =
  qtest ~count:8 "LU graphs schedule cleanly" (QCheck.int_range 2 6) (fun n ->
      let g = Lu.generate ~n () in
      let p = Platform.unbounded ~p_blue:3 ~p_red:2 in
      let s = Heuristics.heft g p in
      Result.is_ok (Validator.validate g p s))

let () =
  Alcotest.run "generators"
    [ ( "toy",
        [ Alcotest.test_case "dex values (Figure 2)" `Quick test_dex_values;
          Alcotest.test_case "chain" `Quick test_chain;
          Alcotest.test_case "fork-join" `Quick test_fork_join;
          Alcotest.test_case "diamond" `Quick test_diamond;
          Alcotest.test_case "independent" `Quick test_independent;
          Alcotest.test_case "rejects" `Quick test_toy_rejects ] );
      ( "daggen",
        [ Alcotest.test_case "size" `Quick test_daggen_size;
          Alcotest.test_case "deterministic" `Quick test_daggen_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_daggen_seeds_differ;
          Alcotest.test_case "rejects bad params" `Quick test_daggen_rejects;
          Alcotest.test_case "level widths" `Quick test_daggen_levels;
          daggen_cost_ranges;
          daggen_connected_levels ] );
      ( "kernels",
        [ Alcotest.test_case "Table 1 values" `Quick test_kernel_table1;
          Alcotest.test_case "affinities" `Quick test_kernel_affinities ] );
      ( "broadcast",
        [ Alcotest.test_case "pipeline shape" `Quick test_broadcast_pipeline_shape;
          Alcotest.test_case "small fanout untouched" `Quick test_broadcast_small_fanout_untouched;
          Alcotest.test_case "fanout 2" `Quick test_broadcast_fanout2;
          Alcotest.test_case "rejects heterogeneous" `Quick test_broadcast_rejects_heterogeneous;
          broadcast_preserves_reachability ] );
      ( "tiled",
        [ Alcotest.test_case "LU counts" `Quick test_lu_counts;
          Alcotest.test_case "Cholesky counts" `Quick test_cholesky_counts;
          Alcotest.test_case "LU structure" `Quick test_lu_structure;
          Alcotest.test_case "Cholesky structure" `Quick test_cholesky_structure;
          Alcotest.test_case "Cholesky dependencies" `Quick test_cholesky_schedulable;
          Alcotest.test_case "rejects n=0" `Quick test_tiled_rejects;
          lu_acyclic_and_schedulable ] ) ]
