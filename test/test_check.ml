(* Tests for lib/check: the differential-fuzzing engine, the shrinker, the
   failure corpus, and the end-to-end planted-bug workflow. *)

open Helpers

(* The "planted bug" configuration: a zero tolerance turns benign ulp-level
   rounding in schedule arithmetic into oracle violations, which the engine
   must catch, shrink, and serialise. *)
let eps0 = { Fuzz_oracle.default_config with Fuzz_oracle.eps = 0. }

(* ---------------------------------------------------------------- gen --- *)

let gen_deterministic =
  qtest ~count:50 "generator is a pure function of the seed" seed_arb (fun seed ->
      Fuzz_instance.to_string (Fuzz_gen.instance (Rng.create seed))
      = Fuzz_instance.to_string (Fuzz_gen.instance (Rng.create seed)))

let instance_roundtrip =
  qtest ~count:50 "instance text form round-trips" seed_arb (fun seed ->
      let i = Fuzz_gen.instance (Rng.create seed) in
      Fuzz_instance.to_string (Fuzz_instance.of_string (Fuzz_instance.to_string i))
      = Fuzz_instance.to_string i)

(* ------------------------------------------------------------- engine --- *)

let test_run_deterministic () =
  let render () = Check.render (Check.run ~cases:40 ~seed:7 ()) in
  check_string "two serial runs render identically" (render ()) (render ())

let test_run_jobs_invariant () =
  let serial = Check.render (Check.run ~cases:40 ~seed:11 ()) in
  let pooled jobs =
    Par.with_pool ~jobs (fun pool -> Check.render (Check.run ~pool ~cases:40 ~seed:11 ()))
  in
  check_string "jobs 1 = serial" serial (pooled 1);
  check_string "jobs 2 = serial" serial (pooled 2)

let test_default_campaign_passes () =
  let r = Check.run ~cases:60 ~seed:42 () in
  check_bool "no violations under the default tolerance" true (Check.ok r);
  List.iter
    (fun (s : Check.oracle_stats) ->
      check_int (s.Check.o_name ^ " covers every case") 60
        (s.Check.passed + s.Check.failed + s.Check.skipped))
    r.Check.stats

(* ----------------------------------------------------------- shrinker --- *)

(* A synthetic oracle that fails while the DAG has >= 3 tasks: the greedy
   shrinker must land on exactly 3 (1-minimal w.r.t. single deletions). *)
let test_shrink_to_fixpoint () =
  let oracle =
    { Fuzz_oracle.name = "toy";
      doc = "fails on >= 3 tasks";
      check =
        (fun _ inst ->
          if Dag.n_tasks inst.Fuzz_instance.dag >= 3 then Fuzz_oracle.Fail [ "big" ]
          else Fuzz_oracle.Pass)
    }
  in
  let inst =
    Fuzz_instance.make ~label:"toy" (dag_of_seed ~size:10 3)
      (Platform.unbounded ~p_blue:2 ~p_red:2)
  in
  let res = Fuzz_shrink.shrink Fuzz_oracle.default_config oracle inst in
  check_int "minimal task count" 3 (Dag.n_tasks res.Fuzz_shrink.instance.Fuzz_instance.dag);
  check_bool "made progress" true (res.Fuzz_shrink.rounds >= 7)

let test_shrink_moves () =
  let g =
    build_dag
      ~tasks:[ ("a", 1., 1.); ("b", 2., 2.); ("c", 3., 3.) ]
      ~edges:[ (0, 1, 4., 5.); (1, 2, 6., 7.) ]
  in
  let inst = Fuzz_instance.make ~label:"moves" g (Platform.unbounded ~p_blue:1 ~p_red:1) in
  let dropped = Fuzz_shrink.remove_task inst 1 in
  check_int "task deleted" 2 (Dag.n_tasks dropped.Fuzz_instance.dag);
  check_int "incident edges deleted" 0 (Dag.n_edges dropped.Fuzz_instance.dag);
  let cut = Fuzz_shrink.remove_edge inst 0 in
  check_int "edge deleted" 1 (Dag.n_edges cut.Fuzz_instance.dag);
  check_int "tasks kept" 3 (Dag.n_tasks cut.Fuzz_instance.dag)

(* ------------------------------------------------------------- corpus --- *)

let test_corpus_roundtrip () =
  let entry =
    { Fuzz_corpus.oracle = "validator";
      seed = 9;
      eps = 1e-6;
      instance = Fuzz_gen.instance (Rng.create 1);
      note = [ "first note"; "second note" ]
    }
  in
  let entry' = Fuzz_corpus.of_string (Fuzz_corpus.to_string entry) in
  check_string "oracle" entry.Fuzz_corpus.oracle entry'.Fuzz_corpus.oracle;
  check_int "seed" entry.Fuzz_corpus.seed entry'.Fuzz_corpus.seed;
  check_float "eps" entry.Fuzz_corpus.eps entry'.Fuzz_corpus.eps;
  Alcotest.(check (list string)) "note" entry.Fuzz_corpus.note entry'.Fuzz_corpus.note;
  check_string "instance"
    (Fuzz_instance.to_string entry.Fuzz_corpus.instance)
    (Fuzz_instance.to_string entry'.Fuzz_corpus.instance);
  check_string "content-addressed name is stable" (Fuzz_corpus.filename entry)
    (Fuzz_corpus.filename entry')

(* -------------------------------------------------------- planted bug --- *)

(* End-to-end: a campaign under eps = 0 must catch the rounding bug, shrink
   the witness to a handful of tasks, serialise it, and the saved entry must
   replay the failure under eps = 0 while passing under the default
   tolerance (the regression contract for committed corpus files). *)
let test_planted_bug_end_to_end () =
  let r = Check.run ~config:eps0 ~cases:20 ~seed:42 () in
  check_bool "campaign fails" false (Check.ok r);
  let f = List.hd r.Check.failures in
  check_bool "shrunk to <= 6 tasks" true
    (Dag.n_tasks f.Check.shrunk.Fuzz_shrink.instance.Fuzz_instance.dag <= 6);
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "memsched-test-corpus" in
  let paths = Check.save_failures ~dir r in
  check_bool "corpus entry written" true (paths <> []);
  let entry = Fuzz_corpus.load (List.hd paths) in
  check_float "entry records the tolerance in force" 0. entry.Fuzz_corpus.eps;
  (match Fuzz_corpus.replay ~config:eps0 entry with
  | Fuzz_oracle.Fail _ -> ()
  | Fuzz_oracle.Pass -> Alcotest.fail "replay under eps = 0 must reproduce the failure"
  | Fuzz_oracle.Skip why -> Alcotest.failf "replay unexpectedly skipped: %s" why);
  match Fuzz_corpus.replay entry with
  | Fuzz_oracle.Pass -> ()
  | Fuzz_oracle.Fail errs ->
    Alcotest.failf "replay under the default tolerance must pass:\n%s"
      (String.concat "\n" errs)
  | Fuzz_oracle.Skip why -> Alcotest.failf "replay unexpectedly skipped: %s" why

let () =
  Alcotest.run "check"
    [ ("gen", [ gen_deterministic; instance_roundtrip ]);
      ( "engine",
        [ Alcotest.test_case "deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "jobs-invariant" `Quick test_run_jobs_invariant;
          Alcotest.test_case "default campaign passes" `Quick test_default_campaign_passes ]
      );
      ( "shrink",
        [ Alcotest.test_case "fixpoint" `Quick test_shrink_to_fixpoint;
          Alcotest.test_case "moves" `Quick test_shrink_moves ] );
      ("corpus", [ Alcotest.test_case "roundtrip" `Quick test_corpus_roundtrip ]);
      ( "planted-bug",
        [ Alcotest.test_case "end to end" `Quick test_planted_bug_end_to_end ] ) ]
