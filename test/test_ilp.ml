(* Tests for the ILP layer: the Lp model object, the simplex solver, the
   branch-and-bound MIP, the CPLEX-LP writer, the paper's full formulation,
   and the exact scheduler. *)

open Helpers

(* ------------------------------------------------------------------ Lp --- *)

let test_lp_build () =
  let lp = Lp.create () in
  let x = Lp.add_var lp "x" in
  let y = Lp.add_var lp ~lb:1. ~ub:4. ~kind:Lp.Binary "y" in
  Lp.add_constr lp ~name:"c" [ (1., x); (2., y) ] Lp.Le 5.;
  Lp.set_objective lp (Lp.Minimize [ (1., x) ]);
  check_int "vars" 2 (Lp.n_vars lp);
  check_int "constrs" 1 (Lp.n_constrs lp);
  check_float "binary ub clamped" 1. (Lp.var lp y).Lp.ub;
  check_float "binary lb clamped" 1. (Lp.var lp y).Lp.lb

let test_lp_normalizes_terms () =
  let lp = Lp.create () in
  let x = Lp.add_var lp "x" in
  Lp.add_constr lp ~name:"c" [ (1., x); (2., x); (0., x) ] Lp.Eq 3.;
  match (Lp.constrs lp).(0).Lp.terms with
  | [ (c, v) ] ->
    check_float "merged" 3. c;
    check_int "var" x v
  | _ -> Alcotest.fail "expected one merged term"

let test_lp_violations () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:2. "x" in
  Lp.add_constr lp ~name:"c" [ (1., x) ] Lp.Ge 1.;
  check_float "feasible point" 0. (Lp.constraint_violation lp [| 1.5 |]);
  check_float "constraint violated" 1. (Lp.constraint_violation lp [| 0. |]);
  check_float "bound violated" 1. (Lp.constraint_violation lp [| 3. |])

let test_lp_integer_violation () =
  let lp = Lp.create () in
  let _x = Lp.add_var lp ~kind:Lp.Binary "x" in
  let _y = Lp.add_var lp "y" in
  check_float "frac" 0.4 (Lp.integer_violation lp [| 0.4; 0.7 |]);
  check_float "integral" 0. (Lp.integer_violation lp [| 1.; 0.7 |])

let test_lp_fix_and_override () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:5. "x" in
  Lp.fix lp x 2.;
  check_float "fixed lb" 2. (Lp.var lp x).Lp.lb;
  check_float "fixed ub" 2. (Lp.var lp x).Lp.ub;
  Lp.override_bounds lp x ~lb:0. ~ub:1.;
  check_float "restored" 1. (Lp.var lp x).Lp.ub;
  Alcotest.check_raises "bad fix" (Invalid_argument "Lp.fix: value out of bounds") (fun () ->
      Lp.fix lp x 9.)

(* ------------------------------------------------------------- simplex --- *)

let solve_expect lp =
  match Simplex.solve_relaxation lp with
  | Simplex.Optimal { x; obj } -> (x, obj)
  | Simplex.Infeasible -> Alcotest.fail "unexpectedly infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpectedly unbounded"
  | Simplex.Capped -> Alcotest.fail "iteration cap hit"

let test_simplex_basic () =
  (* max x + y s.t. x + 2y <= 4, 3x + y <= 6  ->  min -(x+y), opt at (8/5, 6/5). *)
  let lp = Lp.create () in
  let x = Lp.add_var lp "x" and y = Lp.add_var lp "y" in
  Lp.add_constr lp ~name:"a" [ (1., x); (2., y) ] Lp.Le 4.;
  Lp.add_constr lp ~name:"b" [ (3., x); (1., y) ] Lp.Le 6.;
  Lp.set_objective lp (Lp.Maximize [ (1., x); (1., y) ]);
  let sol, obj = solve_expect lp in
  check_float_eps 1e-6 "x" 1.6 sol.(x);
  check_float_eps 1e-6 "y" 1.2 sol.(y);
  check_float_eps 1e-6 "obj" 2.8 obj

let test_simplex_equality_and_ge () =
  (* min x + y s.t. x + y >= 2, x - y = 1  ->  (1.5, 0.5). *)
  let lp = Lp.create () in
  let x = Lp.add_var lp "x" and y = Lp.add_var lp "y" in
  Lp.add_constr lp ~name:"a" [ (1., x); (1., y) ] Lp.Ge 2.;
  Lp.add_constr lp ~name:"b" [ (1., x); (-1., y) ] Lp.Eq 1.;
  Lp.set_objective lp (Lp.Minimize [ (1., x); (1., y) ]);
  let sol, obj = solve_expect lp in
  check_float_eps 1e-6 "obj" 2. obj;
  check_float_eps 1e-6 "x" 1.5 sol.(x)

let test_simplex_bounds () =
  (* min x with 1 <= x <= 3 -> 1; max x -> 3 (via upper-bound row). *)
  let lp = Lp.create () in
  let x = Lp.add_var lp ~lb:1. ~ub:3. "x" in
  Lp.set_objective lp (Lp.Minimize [ (1., x) ]);
  let sol, _ = solve_expect lp in
  check_float_eps 1e-6 "min at lb" 1. sol.(x);
  Lp.set_objective lp (Lp.Maximize [ (1., x) ]);
  let sol, _ = solve_expect lp in
  check_float_eps 1e-6 "max at ub" 3. sol.(x)

let test_simplex_fixed_vars_substituted () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:10. "x" in
  let y = Lp.add_var lp ~ub:10. "y" in
  Lp.fix lp y 4.;
  Lp.add_constr lp ~name:"a" [ (1., x); (1., y) ] Lp.Ge 6.;
  Lp.set_objective lp (Lp.Minimize [ (1., x) ]);
  let sol, obj = solve_expect lp in
  check_float_eps 1e-6 "x adjusts to the constant" 2. sol.(x);
  check_float_eps 1e-6 "fixed var reported" 4. sol.(y);
  check_float_eps 1e-6 "obj" 2. obj

let test_simplex_infeasible () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:1. "x" in
  Lp.add_constr lp ~name:"a" [ (1., x) ] Lp.Ge 2.;
  Lp.set_objective lp (Lp.Minimize [ (1., x) ]);
  check_bool "infeasible" true (Simplex.solve_relaxation lp = Simplex.Infeasible)

let test_simplex_unbounded () =
  let lp = Lp.create () in
  let x = Lp.add_var lp "x" in
  Lp.set_objective lp (Lp.Maximize [ (1., x) ]);
  check_bool "unbounded" true (Simplex.solve_relaxation lp = Simplex.Unbounded)

let test_simplex_degenerate () =
  (* Degenerate vertex: several constraints meet at the optimum. *)
  let lp = Lp.create () in
  let x = Lp.add_var lp "x" and y = Lp.add_var lp "y" in
  Lp.add_constr lp ~name:"a" [ (1., x); (1., y) ] Lp.Le 1.;
  Lp.add_constr lp ~name:"b" [ (1., x) ] Lp.Le 1.;
  Lp.add_constr lp ~name:"c" [ (1., y) ] Lp.Le 1.;
  Lp.set_objective lp (Lp.Maximize [ (1., x); (1., y) ]);
  let _, obj = solve_expect lp in
  check_float_eps 1e-6 "obj" 1. obj

let test_simplex_rejects_free_vars () =
  let lp = Lp.create () in
  let _ = Lp.add_var lp ~lb:neg_infinity "x" in
  Lp.set_objective lp (Lp.Minimize []);
  Alcotest.check_raises "free vars unsupported"
    (Invalid_argument "Simplex: variables must have finite lower bounds") (fun () ->
      ignore (Simplex.solve_relaxation lp))

(* ----------------------------------------------------------------- mip --- *)

let test_mip_knapsack () =
  (* max 5a + 4b + 3c s.t. 2a + 3b + c <= 4, binaries -> a=1, c=1, obj 8
     (b too heavy with a). *)
  let lp = Lp.create () in
  let a = Lp.add_var lp ~kind:Lp.Binary "a" in
  let b = Lp.add_var lp ~kind:Lp.Binary "b" in
  let c = Lp.add_var lp ~kind:Lp.Binary "c" in
  Lp.add_constr lp ~name:"w" [ (2., a); (3., b); (1., c) ] Lp.Le 4.;
  Lp.set_objective lp (Lp.Maximize [ (5., a); (4., b); (3., c) ]);
  (* Mip minimises: negate through Maximize support in Simplex; Mip compares
     objective values as reported by the relaxation, which follows the model
     objective.  Use an equivalent minimisation. *)
  let lp2 = Lp.create () in
  let a2 = Lp.add_var lp2 ~kind:Lp.Binary "a" in
  let b2 = Lp.add_var lp2 ~kind:Lp.Binary "b" in
  let c2 = Lp.add_var lp2 ~kind:Lp.Binary "c" in
  Lp.add_constr lp2 ~name:"w" [ (2., a2); (3., b2); (1., c2) ] Lp.Le 4.;
  Lp.set_objective lp2 (Lp.Minimize [ (-5., a2); (-4., b2); (-3., c2) ]);
  let sol = Mip.solve lp2 in
  check_bool "optimal" true (sol.Mip.status = Mip.Optimal);
  (match sol.Mip.incumbent with
  | Some (x, obj) ->
    check_float_eps 1e-6 "objective" (-8.) obj;
    check_float_eps 1e-6 "a" 1. x.(a2);
    check_float_eps 1e-6 "b" 0. x.(b2);
    check_float_eps 1e-6 "c" 1. x.(c2)
  | None -> Alcotest.fail "no incumbent");
  ignore (a, b, c, lp)

let test_mip_integer_rounding () =
  (* min y s.t. y >= 1.5, y integer -> 2. *)
  let lp = Lp.create () in
  let y = Lp.add_var lp ~ub:10. ~kind:Lp.General_integer "y" in
  Lp.add_constr lp ~name:"a" [ (1., y) ] Lp.Ge 1.5;
  Lp.set_objective lp (Lp.Minimize [ (1., y) ]);
  let sol = Mip.solve lp in
  (match sol.Mip.incumbent with
  | Some (_, obj) -> check_float_eps 1e-6 "rounded up" 2. obj
  | None -> Alcotest.fail "no incumbent")

let test_mip_infeasible () =
  let lp = Lp.create () in
  let y = Lp.add_var lp ~ub:1. ~kind:Lp.Binary "y" in
  Lp.add_constr lp ~name:"a" [ (1., y) ] Lp.Ge 0.25;
  Lp.add_constr lp ~name:"b" [ (1., y) ] Lp.Le 0.75;
  Lp.set_objective lp (Lp.Minimize [ (1., y) ]);
  check_bool "no integral point" true ((Mip.solve lp).Mip.status = Mip.Infeasible)

let test_mip_incumbent_prunes () =
  (* Seeding an incumbent below the optimum proves nothing better exists. *)
  let lp = Lp.create () in
  let y = Lp.add_var lp ~ub:10. ~kind:Lp.General_integer "y" in
  Lp.add_constr lp ~name:"a" [ (1., y) ] Lp.Ge 3.;
  Lp.set_objective lp (Lp.Minimize [ (1., y) ]);
  let sol = Mip.solve ~incumbent:2.5 lp in
  check_bool "pruned everything" true (sol.Mip.incumbent = None)

let test_mip_bounds_restored () =
  let lp = Lp.create () in
  let y = Lp.add_var lp ~ub:10. ~kind:Lp.General_integer "y" in
  Lp.add_constr lp ~name:"a" [ (1., y) ] Lp.Ge 1.5;
  Lp.set_objective lp (Lp.Minimize [ (1., y) ]);
  ignore (Mip.solve lp);
  check_float "lb restored" 0. (Lp.var lp y).Lp.lb;
  check_float "ub restored" 10. (Lp.var lp y).Lp.ub

(* ----------------------------------------------------------- lp_format --- *)

let contains sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_lp_format_sections () =
  let lp = Lp.create () in
  let x = Lp.add_var lp ~ub:2. "x" in
  let b = Lp.add_var lp ~kind:Lp.Binary "flag" in
  let k = Lp.add_var lp ~lb:1. ~ub:4. ~kind:Lp.General_integer "p 1" in
  Lp.add_constr lp ~name:"cap" [ (1., x); (2., b); (1., k) ] Lp.Le 5.;
  Lp.set_objective lp (Lp.Minimize [ (1., x) ]);
  let out = Lp_format.to_string lp in
  check_bool "minimize" true (contains "Minimize" out);
  check_bool "subject to" true (contains "Subject To" out);
  check_bool "bounds" true (contains "Bounds" out);
  check_bool "binaries" true (contains "Binaries" out);
  check_bool "generals" true (contains "Generals" out);
  check_bool "end" true (contains "End" out);
  check_bool "sanitised name" true (contains "p_1" out);
  check_bool "no raw space name" false (contains "p 1" out)

let test_lp_format_sanitize () =
  check_string "spaces" "a_b" (Lp_format.sanitize "a b");
  check_string "empty" "v" (Lp_format.sanitize "")

let test_lp_format_write () =
  let lp = Lp.create () in
  let _ = Lp.add_var lp "x" in
  Lp.set_objective lp (Lp.Minimize []);
  let path = Filename.concat (Filename.get_temp_dir_name ()) "memsched_test.lp" in
  Lp_format.write lp path;
  check_bool "file exists" true (Sys.file_exists path)

(* ------------------------------------------------------------- lp_parse --- *)

let test_lp_parse_simple () =
  let text =
    "\\ comment\nMinimize\n obj: 2 x + 3 y\nSubject To\n c1: x + y >= 2\n c2: x - y <= 1\n\
     Bounds\n 0 <= x <= 10\n y <= 5\nEnd\n"
  in
  let lp = Lp_parse.of_string text in
  check_int "vars" 2 (Lp.n_vars lp);
  check_int "constrs" 2 (Lp.n_constrs lp);
  match Simplex.solve_relaxation lp with
  | Simplex.Optimal { obj; _ } -> check_float_eps 1e-6 "optimum" 4.5 obj
  | _ -> Alcotest.fail "should solve"

let test_lp_parse_sections () =
  let text =
    "Maximize\n obj: x + y + z\nSubject To\n c: x + y + z <= 2\nBounds\n z <= 5\n\
     Binaries\n x\n y\nGenerals\n z\nEnd\n"
  in
  let lp = Lp_parse.of_string text in
  let kind_of name =
    let rec find i =
      if i >= Lp.n_vars lp then Alcotest.failf "var %s missing" name
      else if (Lp.var lp i).Lp.vname = name then (Lp.var lp i).Lp.kind
      else find (i + 1)
    in
    find 0
  in
  check_bool "x binary" true (kind_of "x" = Lp.Binary);
  check_bool "z integer" true (kind_of "z" = Lp.General_integer)

let test_lp_parse_negative_rhs_and_free () =
  let text = "Minimize\n obj: x\nSubject To\n c: x >= - 3\nBounds\n x free\nEnd\n" in
  let lp = Lp_parse.of_string text in
  check_float "free lb" neg_infinity (Lp.var lp 0).Lp.lb;
  check_float "rhs sign" (-3.) (Lp.constrs lp).(0).Lp.rhs

let test_lp_parse_rejects () =
  let bad text = try ignore (Lp_parse.of_string text); false with Invalid_argument _ -> true in
  check_bool "garbage" true (bad "x + y <= 1\n");
  check_bool "relation in objective" true (bad "Minimize\n x <= 1\nEnd\n")

(* Round-trip: the paper's ILP for the toy chain survives write -> parse with
   the same optimum. *)
let test_lp_roundtrip_ilp () =
  let g = Toy.chain ~n:2 ~w:2. ~f:1. ~c:1. in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:3. ~m_red:3. in
  let model = Ilp_model.build g p in
  let lp2 = Lp_parse.of_string (Lp_format.to_string (Ilp_model.lp model)) in
  check_int "vars preserved" (Lp.n_vars (Ilp_model.lp model)) (Lp.n_vars lp2);
  check_int "constrs preserved" (Lp.n_constrs (Ilp_model.lp model)) (Lp.n_constrs lp2);
  let a = Mip.solve ~node_limit:5_000 ~time_limit:60. (Ilp_model.lp model) in
  let b = Mip.solve ~node_limit:5_000 ~time_limit:60. lp2 in
  match (a.Mip.incumbent, b.Mip.incumbent) with
  | Some (_, oa), Some (_, ob) -> check_float_eps 1e-6 "same optimum" oa ob
  | _ -> Alcotest.fail "both should solve"

(* ----------------------------------------------------------- ilp_model --- *)

let test_ilp_sizes () =
  let g = Toy.chain ~n:3 ~w:2. ~f:1. ~c:1. in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:4. ~m_red:4. in
  let model = Ilp_model.build g p in
  check_int "variables" 100 (Ilp_model.n_vars model);
  check_int "constraints" 257 (Ilp_model.n_constrs model);
  check_float "mmax" (12. +. 2.) (Ilp_model.mmax model)

let test_ilp_rejects_unbounded () =
  let g = Toy.dex () in
  let p = Platform.unbounded ~p_blue:1 ~p_red:1 in
  Alcotest.check_raises "needs finite capacities"
    (Invalid_argument "Ilp_model.build: memory capacities must be finite") (fun () ->
      ignore (Ilp_model.build g p))

(* The single-task ILP is solvable by pure LP reasoning: the task runs on the
   faster resource at time 0. *)
let test_ilp_single_task () =
  let b = Dag.Builder.create () in
  let _ = Dag.Builder.add_task b ~name:"solo" ~w_blue:5. ~w_red:2. () in
  let g = Dag.Builder.finalize b in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:1. ~m_red:1. in
  let model = Ilp_model.build g p in
  let sol = Mip.solve ~node_limit:1_000 (Ilp_model.lp model) in
  (match sol.Mip.incumbent with
  | Some (x, obj) ->
    check_float_eps 1e-6 "runs on the red resource" 2. obj;
    let s = Ilp_model.extract_schedule model x in
    let r = validate_ok g p s in
    check_float "validated makespan" 2. r.Validator.makespan
  | None -> Alcotest.fail "no incumbent")

(* MIP on the 2-task chain agrees with the exact scheduler and validates. *)
let test_ilp_chain2_matches_exact () =
  let g = Toy.chain ~n:2 ~w:2. ~f:1. ~c:1. in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:3. ~m_red:3. in
  let model = Ilp_model.build g p in
  let sol = Mip.solve ~node_limit:5_000 ~time_limit:60. (Ilp_model.lp model) in
  let exact = Exact.solve g p in
  check_bool "exact proved" true (exact.Exact.status = Exact.Proven_optimal);
  match sol.Mip.incumbent with
  | Some (x, obj) ->
    check_float_eps 1e-6 "same optimum" exact.Exact.makespan obj;
    let s = Ilp_model.extract_schedule model x in
    ignore (validate_ok g p s)
  | None -> Alcotest.fail "MIP found nothing"

let test_ilp_presolve_consistent () =
  (* Presolve must not change the optimum. *)
  let g = Toy.chain ~n:2 ~w:1. ~f:1. ~c:1. in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:3. ~m_red:3. in
  let with_presolve = Mip.solve ~time_limit:60. (Ilp_model.lp (Ilp_model.build ~presolve:true g p)) in
  let without = Mip.solve ~time_limit:60. (Ilp_model.lp (Ilp_model.build ~presolve:false g p)) in
  match (with_presolve.Mip.incumbent, without.Mip.incumbent) with
  | Some (_, a), Some (_, b) -> check_float_eps 1e-6 "same optimum" a b
  | _ -> Alcotest.fail "both should solve"

(* --------------------------------------------------------------- exact --- *)

let dex = Toy.dex ()
let dex_platform m = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:m ~m_red:m

let test_exact_dex_paper_values () =
  (* SS 3.3: at M = 5 the optimum is s1 (makespan 6); at M = 4 it is s2
     (makespan 7); at M = 3 no schedule exists. *)
  let r5 = Exact.solve dex (dex_platform 5.) in
  check_bool "M=5 proven" true (r5.Exact.status = Exact.Proven_optimal);
  check_float "M=5 makespan" 6. r5.Exact.makespan;
  let r4 = Exact.solve dex (dex_platform 4.) in
  check_bool "M=4 proven" true (r4.Exact.status = Exact.Proven_optimal);
  check_float "M=4 makespan" 7. r4.Exact.makespan;
  let r3 = Exact.solve dex (dex_platform 3.) in
  check_bool "M=3 infeasible" true (r3.Exact.status = Exact.Proven_infeasible)

let test_exact_schedule_validates () =
  let p = dex_platform 4. in
  match (Exact.solve dex p).Exact.schedule with
  | Some s ->
    let r = validate_ok dex p s in
    check_float "makespan" 7. r.Validator.makespan
  | None -> Alcotest.fail "expected schedule"

let test_exact_node_budget () =
  let r = Exact.solve ~node_limit:2 dex (dex_platform 5.) in
  check_bool "budget respected" true (r.Exact.nodes <= 2);
  check_bool "not proven" true
    (r.Exact.status = Exact.Feasible || r.Exact.status = Exact.Unknown)

let test_exact_optimal_makespan () =
  Alcotest.(check (option (float 1e-9))) "helper" (Some 7.)
    (Exact.optimal_makespan dex (dex_platform 4.));
  Alcotest.(check (option (float 1e-9))) "infeasible" None
    (Exact.optimal_makespan dex (dex_platform 3.))

let exact_dominates_heuristics =
  qtest ~count:15 "exact <= heuristics, >= lower bound"
    QCheck.(int_range 0 500)
    (fun seed ->
      let g = dag_of_seed ~size:8 seed in
      let p0 = Platform.unbounded ~p_blue:2 ~p_red:2 in
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g p0) in
      let p = Platform.with_bounds p0 ~m_blue:(0.8 *. peak) ~m_red:(0.8 *. peak) in
      match Exact.solve ~node_limit:500_000 g p with
      | { Exact.status = Exact.Proven_optimal; makespan; _ } ->
        makespan +. 1e-6 >= Lower_bound.makespan g p
        && List.for_all
             (fun h ->
               let o = Outcome.run h g p in
               (not o.Outcome.feasible) || o.Outcome.makespan +. 1e-6 >= makespan)
             [ Heuristics.MemHEFT; Heuristics.MemMinMin ]
      | _ -> true (* budget exceeded: nothing to check *))

let exact_schedules_validate =
  qtest ~count:15 "exact schedules pass the oracle" QCheck.(int_range 0 500) (fun seed ->
      let g = dag_of_seed ~size:8 seed in
      let p0 = Platform.unbounded ~p_blue:2 ~p_red:2 in
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g p0) in
      let p = Platform.with_bounds p0 ~m_blue:(0.7 *. peak) ~m_red:(0.7 *. peak) in
      match (Exact.solve ~node_limit:500_000 g p).Exact.schedule with
      | Some s -> Result.is_ok (Validator.validate g p s)
      | None -> true)

(* A provably infeasible cap, mirroring lib/check Fuzz_gen's "below-min"
   platform regime: no single-memory placement of the widest task fits. *)
let test_exact_proven_infeasible () =
  let g = dag_of_seed ~size:8 7 in
  let m = 0.99 *. Lower_bound.min_memory g in
  let p = Platform.make ~p_blue:2 ~p_red:2 ~m_blue:m ~m_red:m in
  let r = Exact.solve g p in
  check_bool "infeasible" true (r.Exact.status = Exact.Proven_infeasible);
  check_bool "nan makespan" true (Float.is_nan r.Exact.makespan);
  check_float "bound is infinity" infinity r.Exact.best_bound;
  let rr = Exact.solve_reference g p in
  check_bool "reference agrees" true (rr.Exact.status = Exact.Proven_infeasible)

(* Under a tiny node budget the status depends on whether the heuristics
   seeded an incumbent: Feasible with the seed, Unknown without. *)
let test_exact_feasible_vs_unknown () =
  let p = dex_platform 5. in
  let seeded = Exact.solve ~node_limit:2 dex p in
  check_bool "seeded: Feasible" true (seeded.Exact.status = Exact.Feasible);
  check_bool "seeded: has schedule" true (Option.is_some seeded.Exact.schedule);
  let blind = Exact.solve ~node_limit:2 ~seed_incumbent:false dex p in
  check_bool "unseeded: Unknown" true (blind.Exact.status = Exact.Unknown);
  check_bool "unseeded: nan makespan" true (Float.is_nan blind.Exact.makespan)

(* best_bound: certified runs close the gap, capped runs report a bound no
   larger than the incumbent. *)
let test_exact_best_bound () =
  let proven = Exact.solve dex (dex_platform 4.) in
  check_float "proven: gap closed" proven.Exact.makespan proven.Exact.best_bound;
  let capped = Exact.solve ~node_limit:3 dex (dex_platform 5.) in
  check_bool "capped status" true (capped.Exact.status = Exact.Feasible);
  check_bool "bound below incumbent" true
    (capped.Exact.best_bound <= capped.Exact.makespan +. 1e-9);
  check_bool "bound nonnegative" true (capped.Exact.best_bound >= 0.)

let bits f = Int64.bits_of_float f

(* The undo-based search in reference-parity mode (no dominance, no frontier
   split) must visit the same tree as the copy-based reference: same status,
   same makespan bit for bit, same node count. *)
let exact_undo_matches_reference =
  qtest ~count:50 "undo search == reference (status, makespan, nodes)"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = dag_of_seed ~size:7 seed in
      let p0 = Platform.unbounded ~p_blue:2 ~p_red:1 in
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g p0) in
      let p = Platform.with_bounds p0 ~m_blue:(0.75 *. peak) ~m_red:(0.75 *. peak) in
      let r = Exact.solve_reference ~node_limit:60_000 g p in
      let u = Exact.solve ~frontier:1 ~dominance:false ~node_limit:60_000 g p in
      r.Exact.status = u.Exact.status
      && Int64.equal (bits r.Exact.makespan) (bits u.Exact.makespan)
      && r.Exact.nodes = u.Exact.nodes)

(* The full solver (dominance pruning + frontier decomposition) agrees with
   the reference whenever both certify: pruning must never change the
   certified optimum or flip feasibility. *)
let exact_dominance_agrees_with_reference =
  qtest ~count:30 "dominance/frontier solver agrees when both certify"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = dag_of_seed ~size:7 seed in
      let p0 = Platform.unbounded ~p_blue:2 ~p_red:1 in
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g p0) in
      let p = Platform.with_bounds p0 ~m_blue:(0.75 *. peak) ~m_red:(0.75 *. peak) in
      let r = Exact.solve_reference ~node_limit:60_000 g p in
      let o = Exact.solve ~node_limit:60_000 g p in
      match (r.Exact.status, o.Exact.status) with
      | Exact.Proven_optimal, Exact.Proven_optimal ->
        Float.abs (r.Exact.makespan -. o.Exact.makespan) <= 1e-6
      | Exact.Proven_infeasible, s -> s = Exact.Proven_infeasible
      | s, Exact.Proven_infeasible -> s = Exact.Proven_infeasible
      | _ -> true)

(* The parallel decomposition is jobs-invariant by construction: pool absent,
   1-job pool and multi-job pool return identical results, including node
   counts. *)
let exact_jobs_invariant =
  qtest ~count:10 "exact solve is jobs-invariant"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = dag_of_seed ~size:7 seed in
      let p0 = Platform.unbounded ~p_blue:2 ~p_red:2 in
      let peak = Outcome.peak_max (Outcome.run Heuristics.HEFT g p0) in
      let p = Platform.with_bounds p0 ~m_blue:(0.8 *. peak) ~m_red:(0.8 *. peak) in
      let serial = Exact.solve ~node_limit:20_000 g p in
      let with_jobs jobs =
        Par.with_pool ~jobs (fun pool -> Exact.solve ~pool ~node_limit:20_000 g p)
      in
      let same (a : Exact.result) (b : Exact.result) =
        a.Exact.status = b.Exact.status
        && Int64.equal (bits a.Exact.makespan) (bits b.Exact.makespan)
        && Int64.equal (bits a.Exact.best_bound) (bits b.Exact.best_bound)
        && a.Exact.nodes = b.Exact.nodes
      in
      same serial (with_jobs 1) && same serial (with_jobs 2) && same serial (with_jobs 4))

(* ---------------------------------------------------------- properties --- *)

(* Random small LP whose text form round-trips exactly: integer-valued
   coefficients, bounds and right-hand sides (so "%g" printing is lossless),
   every variable appearing in the objective (so the parser recreates them in
   creation order), and no zero coefficients (the normaliser drops those). *)
let random_roundtrip_lp seed =
  let rng = Rng.create seed in
  let lp = Lp.create () in
  let nonzero () =
    let c = float_of_int (1 + Rng.int rng 5) in
    if Rng.bool rng then c else -.c
  in
  let n = 1 + Rng.int rng 4 in
  let vars =
    List.init n (fun k ->
        let name = Printf.sprintf "x%d" k in
        match Rng.int rng 3 with
        | 0 -> Lp.add_var lp ~kind:Lp.Binary name
        | 1 -> Lp.add_var lp ~lb:(float_of_int (Rng.int rng 3)) ~kind:Lp.General_integer name
        | _ ->
          let lb = float_of_int (Rng.int rng 3) in
          let ub =
            if Rng.bool rng then infinity else lb +. float_of_int (1 + Rng.int rng 6)
          in
          Lp.add_var lp ~lb ~ub name)
  in
  let obj = List.map (fun v -> (nonzero (), v)) vars in
  Lp.set_objective lp (if Rng.bool rng then Lp.Minimize obj else Lp.Maximize obj);
  let nc = Rng.int rng 4 in
  for c = 0 to nc - 1 do
    let terms =
      List.filter_map (fun v -> if Rng.bool rng then Some (nonzero (), v) else None) vars
    in
    let terms = if terms = [] then [ (nonzero (), List.hd vars) ] else terms in
    let sense = [| Lp.Le; Lp.Ge; Lp.Eq |].(Rng.int rng 3) in
    Lp.add_constr lp
      ~name:(Printf.sprintf "row%d" c)
      terms sense
      (float_of_int (Rng.int_incl rng (-5) 10))
  done;
  lp

let lp_roundtrip_property =
  qtest ~count:300 "random LPs round-trip through write/parse" seed_arb (fun seed ->
      let lp = random_roundtrip_lp seed in
      let lp' = Lp_parse.of_string (Lp_format.to_string lp) in
      let var_eq (a : Lp.var) (b : Lp.var) =
        a.Lp.vname = b.Lp.vname && a.Lp.lb = b.Lp.lb && a.Lp.ub = b.Lp.ub
        && a.Lp.kind = b.Lp.kind
      in
      (* The writer uniquifies constraint names by suffixing the row index. *)
      let constr_eq k (a : Lp.constr) (b : Lp.constr) =
        b.Lp.cname = Printf.sprintf "%s_%d" a.Lp.cname k
        && compare a.Lp.terms b.Lp.terms = 0
        && a.Lp.sense = b.Lp.sense && a.Lp.rhs = b.Lp.rhs
      in
      let constrs = Lp.constrs lp and constrs' = Lp.constrs lp' in
      let obj_eq =
        match (Lp.objective lp, Lp.objective lp') with
        | Lp.Minimize a, Lp.Minimize b | Lp.Maximize a, Lp.Maximize b -> compare a b = 0
        | _ -> false
      in
      Lp.n_vars lp = Lp.n_vars lp'
      && Array.for_all2 var_eq (Lp.vars lp) (Lp.vars lp')
      && Array.length constrs = Array.length constrs'
      && List.for_all
           (fun k -> constr_eq k constrs.(k) constrs'.(k))
           (List.init (Array.length constrs) Fun.id)
      && obj_eq)

(* Warm-started node LPs are a pure optimisation: on random small MILPs the
   warm and cold modes must reach the same proven verdict, and the same
   optimum up to LP-solver rounding (the dual simplex may stop at a
   different optimal vertex, so bit-equality is not required and the two
   modes may even explore differently shaped trees). *)
let mip_warm_matches_cold =
  qtest ~count:60 "warm-started MIP == cold MIP (proven status, objective)" seed_arb
    (fun seed ->
      let lp = random_roundtrip_lp seed in
      let limit = 2_000 in
      let cold = Mip.solve ~node_limit:limit ~warm_start:false lp in
      let warm = Mip.solve ~node_limit:limit ~warm_start:true lp in
      if cold.Mip.nodes >= limit || warm.Mip.nodes >= limit then true
      else
        match (cold.Mip.status, warm.Mip.status) with
        | Mip.Optimal, Mip.Optimal -> (
          match (cold.Mip.incumbent, warm.Mip.incumbent) with
          | Some (_, a), Some (_, b) -> Float.abs (a -. b) <= 1e-6 *. (1. +. Float.abs a)
          | _ -> false)
        | Mip.Infeasible, Mip.Infeasible -> true
        | (Mip.Optimal | Mip.Infeasible), (Mip.Optimal | Mip.Infeasible) -> false
        | _ -> true)

(* Gaussian elimination with partial pivoting on a tiny dense system;
   [None] when (numerically) singular. *)
let solve_linear a b =
  let n = Array.length b in
  let a = Array.map Array.copy a and b = Array.copy b in
  let x = Array.make n 0. in
  let ok = ref true in
  for col = 0 to n - 1 do
    if !ok then begin
      let piv = ref col in
      for r = col + 1 to n - 1 do
        if abs_float a.(r).(col) > abs_float a.(!piv).(col) then piv := r
      done;
      if abs_float a.(!piv).(col) < 1e-9 then ok := false
      else begin
        let tmp = a.(col) in
        a.(col) <- a.(!piv);
        a.(!piv) <- tmp;
        let tb = b.(col) in
        b.(col) <- b.(!piv);
        b.(!piv) <- tb;
        for r = col + 1 to n - 1 do
          let f = a.(r).(col) /. a.(col).(col) in
          for c = col to n - 1 do
            a.(r).(c) <- a.(r).(c) -. (f *. a.(col).(c))
          done;
          b.(r) <- b.(r) -. (f *. b.(col))
        done
      end
    end
  done;
  if not !ok then None
  else begin
    for r = n - 1 downto 0 do
      let s = ref b.(r) in
      for c = r + 1 to n - 1 do
        s := !s -. (a.(r).(c) *. x.(c))
      done;
      x.(r) <- !s /. a.(r).(r)
    done;
    Some x
  end

let rec subsets k lst =
  if k = 0 then [ [] ]
  else
    match lst with
    | [] -> []
    | hd :: tl -> List.map (fun c -> hd :: c) (subsets (k - 1) tl) @ subsets k tl

(* Exhaustive vertex check: on a box-bounded LP with <= rows and rhs >= 0
   (so the origin is feasible and the feasible region is a bounded polytope),
   the optimum lies at a vertex, and every vertex is the intersection of n
   active hyperplanes drawn from the rows and the box faces.  Brute-forcing
   all n-subsets must reproduce the simplex objective. *)
let simplex_matches_vertex_enumeration =
  qtest ~count:300 "simplex optimum = best vertex (<= 3 vars)" seed_arb (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 3 in
      let ub = Array.init n (fun _ -> float_of_int (1 + Rng.int rng 5)) in
      let lp = Lp.create () in
      let vars = Array.init n (fun k -> Lp.add_var lp ~ub:ub.(k) (Printf.sprintf "x%d" k)) in
      let nrows = 1 + Rng.int rng 3 in
      let rows =
        List.init nrows (fun c ->
            let coeffs = Array.init n (fun _ -> float_of_int (Rng.int_incl rng (-2) 3)) in
            if Array.for_all (fun a -> Float.equal a 0.) coeffs then coeffs.(0) <- 1.;
            let rhs = float_of_int (Rng.int rng 8) in
            Lp.add_constr lp
              ~name:(Printf.sprintf "r%d" c)
              (Array.to_list (Array.mapi (fun k a -> (a, vars.(k))) coeffs))
              Lp.Le rhs;
            (coeffs, rhs))
      in
      let cobj = Array.init n (fun _ -> float_of_int (Rng.int_incl rng (-3) 4)) in
      Lp.set_objective lp
        (Lp.Maximize (Array.to_list (Array.mapi (fun k c -> (c, vars.(k))) cobj)));
      let planes =
        rows
        @ List.concat
            (List.init n (fun k ->
                 let unit = Array.init n (fun j -> if j = k then 1. else 0.) in
                 [ (unit, 0.); (unit, ub.(k)) ]))
      in
      let dot a x =
        let s = ref 0. in
        Array.iteri (fun k ak -> s := !s +. (ak *. x.(k))) a;
        !s
      in
      let feasible x =
        Array.for_all2 (fun v u -> v >= -1e-7 && v <= u +. 1e-7) x ub
        && List.for_all (fun (a, b) -> dot a x <= b +. 1e-7) rows
      in
      let best = ref neg_infinity in
      List.iter
        (fun sel ->
          let a = Array.of_list (List.map fst sel) in
          let b = Array.of_list (List.map snd sel) in
          match solve_linear a b with
          | Some x when feasible x ->
            let v = dot cobj x in
            if v > !best then best := v
          | _ -> ())
        (subsets n planes);
      match Simplex.solve_relaxation lp with
      | Simplex.Optimal { obj; _ } ->
        abs_float (obj -. !best) <= 1e-6 *. (1. +. abs_float !best)
      | _ -> false)

let () =
  Alcotest.run "ilp"
    [ ( "lp",
        [ Alcotest.test_case "build" `Quick test_lp_build;
          Alcotest.test_case "normalise terms" `Quick test_lp_normalizes_terms;
          Alcotest.test_case "violations" `Quick test_lp_violations;
          Alcotest.test_case "integer violation" `Quick test_lp_integer_violation;
          Alcotest.test_case "fix/override" `Quick test_lp_fix_and_override ] );
      ( "simplex",
        [ Alcotest.test_case "basic max" `Quick test_simplex_basic;
          Alcotest.test_case "equality and >=" `Quick test_simplex_equality_and_ge;
          Alcotest.test_case "bounds" `Quick test_simplex_bounds;
          Alcotest.test_case "fixed vars substituted" `Quick test_simplex_fixed_vars_substituted;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
          Alcotest.test_case "rejects free vars" `Quick test_simplex_rejects_free_vars ] );
      ( "mip",
        [ Alcotest.test_case "knapsack" `Quick test_mip_knapsack;
          Alcotest.test_case "integer rounding" `Quick test_mip_integer_rounding;
          Alcotest.test_case "infeasible" `Quick test_mip_infeasible;
          Alcotest.test_case "incumbent prunes" `Quick test_mip_incumbent_prunes;
          Alcotest.test_case "bounds restored" `Quick test_mip_bounds_restored ] );
      ( "lp_format",
        [ Alcotest.test_case "sections" `Quick test_lp_format_sections;
          Alcotest.test_case "sanitize" `Quick test_lp_format_sanitize;
          Alcotest.test_case "write" `Quick test_lp_format_write ] );
      ( "lp_parse",
        [ Alcotest.test_case "simple model" `Quick test_lp_parse_simple;
          Alcotest.test_case "sections" `Quick test_lp_parse_sections;
          Alcotest.test_case "negative rhs / free" `Quick test_lp_parse_negative_rhs_and_free;
          Alcotest.test_case "rejects" `Quick test_lp_parse_rejects;
          Alcotest.test_case "ILP roundtrip" `Slow test_lp_roundtrip_ilp ] );
      ( "ilp_model",
        [ Alcotest.test_case "sizes" `Quick test_ilp_sizes;
          Alcotest.test_case "rejects unbounded" `Quick test_ilp_rejects_unbounded;
          Alcotest.test_case "single task" `Quick test_ilp_single_task;
          Alcotest.test_case "chain2 matches exact" `Slow test_ilp_chain2_matches_exact;
          Alcotest.test_case "presolve consistent" `Slow test_ilp_presolve_consistent ] );
      ( "exact",
        [ Alcotest.test_case "dex paper values" `Quick test_exact_dex_paper_values;
          Alcotest.test_case "schedule validates" `Quick test_exact_schedule_validates;
          Alcotest.test_case "node budget" `Quick test_exact_node_budget;
          Alcotest.test_case "optimal_makespan" `Quick test_exact_optimal_makespan;
          exact_dominates_heuristics;
          exact_schedules_validate;
          Alcotest.test_case "proven infeasible" `Quick test_exact_proven_infeasible;
          Alcotest.test_case "feasible vs unknown" `Quick test_exact_feasible_vs_unknown;
          Alcotest.test_case "best bound" `Quick test_exact_best_bound;
          exact_undo_matches_reference;
          exact_dominance_agrees_with_reference;
          exact_jobs_invariant ] );
      ("property",
        [ lp_roundtrip_property; mip_warm_matches_cold; simplex_matches_vertex_enumeration ]) ]
