(* Tests for the scenario layer: seeded noise model, arrival processes, the
   online planners, the replay engine with its rescheduling policies, and
   the jobs/seed-order determinism of the degradation campaigns. *)

open Helpers

let bits = Int64.bits_of_float

let contains sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* Bit-for-bit schedule equality: the claim the fixpoint and batch-equals-
   offline properties make is exact reproduction, not closeness. *)
let check_schedule_bits name (a : Schedule.t) (b : Schedule.t) =
  check_int (name ^ ": task count") (Array.length a.Schedule.starts) (Array.length b.Schedule.starts);
  Array.iteri
    (fun i s -> check_bool (Printf.sprintf "%s: start %d" name i) true (bits s = bits b.Schedule.starts.(i)))
    a.Schedule.starts;
  Alcotest.(check (array int)) (name ^ ": procs") a.Schedule.procs b.Schedule.procs;
  Array.iteri
    (fun e c ->
      let same =
        match (c, b.Schedule.comm_starts.(e)) with
        | None, None -> true
        | Some x, Some y -> bits x = bits y
        | _ -> false
      in
      check_bool (Printf.sprintf "%s: comm %d" name e) true same)
    a.Schedule.comm_starts

let dag_equal_bits name g h =
  check_int (name ^ ": tasks") (Dag.n_tasks g) (Dag.n_tasks h);
  check_int (name ^ ": edges") (Dag.n_edges g) (Dag.n_edges h);
  Array.iteri
    (fun i (t : Dag.task) ->
      let u = Dag.task h i in
      check_bool (name ^ ": w_blue") true (bits t.Dag.w_blue = bits u.Dag.w_blue);
      check_bool (name ^ ": w_red") true (bits t.Dag.w_red = bits u.Dag.w_red))
    (Dag.tasks g);
  Array.iteri
    (fun e (x : Dag.edge) ->
      let y = Dag.edge h e in
      check_int (name ^ ": src") x.Dag.src y.Dag.src;
      check_int (name ^ ": dst") x.Dag.dst y.Dag.dst;
      check_bool (name ^ ": size") true (bits x.Dag.size = bits y.Dag.size);
      check_bool (name ^ ": comm") true (bits x.Dag.comm = bits y.Dag.comm))
    (Dag.edges g)

(* ------------------------------------------------------------ noise --- *)

let test_noise_spec_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "negative level" true (bad (fun () -> Noise.spec ~seed:0 ~level:(-0.1) ()));
  check_bool "nan level" true (bad (fun () -> Noise.spec ~seed:0 ~level:(0. /. 0.) ()));
  check_bool "zero floor" true (bad (fun () -> Noise.spec ~min_factor:0. ~seed:0 ~level:0.1 ()));
  check_bool "floor above 1" true (bad (fun () -> Noise.spec ~min_factor:1.5 ~seed:0 ~level:0.1 ()))

let test_noise_zero_level_is_identity =
  qtest ~count:50 "level 0 perturbation is the identity bit-for-bit" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      let spec = Noise.spec ~seed:(seed + 17) ~level:0. () in
      dag_equal_bits "noise0" g (Noise.perturb spec g);
      true)

let test_noise_truncation =
  qtest ~count:200 "factors stay finite and above the floor at extreme levels" seed_arb
    (fun seed ->
      let spec = Noise.spec ~seed ~level:50. () in
      List.for_all
        (fun key ->
          let f = Noise.task_factor spec key and e = Noise.edge_factor spec key in
          Float.is_finite f && Float.is_finite e && f >= spec.Noise.min_factor
          && e >= spec.Noise.min_factor)
        [ 0; 1; 2; 3; 100; 10_000 ])

let test_noise_perturb_guards =
  qtest ~count:50 "perturbed graphs pass the builder's finiteness guards" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      let spec = Noise.spec ~seed:(2 * seed) ~level:0.9 () in
      let h = Noise.perturb spec g in
      Array.for_all (fun (t : Dag.task) -> t.Dag.w_blue >= 0. && t.Dag.w_red >= 0.) (Dag.tasks h)
      && Array.for_all (fun (e : Dag.edge) -> e.Dag.size >= 0. && e.Dag.comm >= 0.) (Dag.edges h))

let test_noise_stream_independence () =
  (* A task's factor is a pure function of (seed, id): evaluating other
     entities first — in any order, for any entity count — never changes it. *)
  let spec = Noise.spec ~seed:42 ~level:0.3 () in
  let direct = Noise.task_factor spec 5 in
  List.iter (fun k -> ignore (Noise.task_factor spec k)) [ 9; 0; 3; 77; 5; 1 ];
  List.iter (fun k -> ignore (Noise.edge_factor spec k)) [ 5; 2; 8 ];
  check_bool "independent of evaluation order" true (bits direct = bits (Noise.task_factor spec 5));
  (* Task and edge streams never collide: the factors for the same index
     come from different keyed streams. *)
  check_bool "task/edge streams distinct" true
    (bits (Noise.task_factor spec 5) <> bits (Noise.edge_factor spec 5))

let test_rng_keyed_order_independent () =
  let a = Rng.float (Rng.keyed ~seed:7 ~key:3) 1.0 in
  ignore (Rng.float (Rng.keyed ~seed:7 ~key:1) 1.0);
  ignore (Rng.float (Rng.keyed ~seed:7 ~key:2) 1.0);
  let b = Rng.float (Rng.keyed ~seed:7 ~key:3) 1.0 in
  check_bool "keyed stream is a pure function of (seed, key)" true (bits a = bits b);
  check_bool "distinct keys differ" true
    (bits a <> bits (Rng.float (Rng.keyed ~seed:7 ~key:4) 1.0))

(* ---------------------------------------------------------- arrivals --- *)

let test_arrival_precedence_consistent =
  qtest ~count:100 "releases never precede an ancestor's release" seed_arb (fun seed ->
      let g = dag_of_seed seed in
      let ok process =
        let r = Arrival.releases process g in
        Array.for_all
          (fun (e : Dag.edge) -> r.(e.Dag.src) <= r.(e.Dag.dst))
          (Dag.edges g)
      in
      ok Arrival.Batch
      && ok (Arrival.Layered { gap = 2.5 })
      && ok (Arrival.Jittered { gap = 2.5; seed }))

let test_arrival_batch_is_zero () =
  let g = dag_of_seed 3 in
  check_bool "all zero" true
    (Array.for_all (fun t -> Float.equal t 0.) (Arrival.releases Arrival.Batch g))

let test_arrival_negative_gap () =
  Alcotest.check_raises "negative gap" (Invalid_argument "Arrival: negative gap") (fun () ->
      ignore (Arrival.releases (Arrival.Layered { gap = -1. }) (dag_of_seed 0)))

(* ------------------------------------------- online planner vs offline --- *)

let plan_exn r = match r with Ok p -> p | Error f -> Alcotest.failf "plan failed: %s" f.Heuristics.reason

let test_batch_equals_offline =
  qtest ~count:40 "batch arrivals reproduce the offline heuristics bit-for-bit" seed_arb
    (fun seed ->
      let g = dag_of_seed ~size:16 seed in
      List.iter
        (fun cap ->
          let p = platform cap in
          let check_algo algo offline =
            match (Online.plan ~algo ~arrival:Arrival.Batch g p, offline ()) with
            | Ok plan, Ok s ->
              check_schedule_bits (Online.algo_label algo) plan.Online.p_schedule s
            | Error f, Error f' ->
              (* The reasons differ textually ("released"); the stuck point
                 must not. *)
              check_int "same stuck point" f'.Heuristics.n_scheduled f.Heuristics.n_scheduled
            | Ok _, Error _ | Error _, Ok _ ->
              Alcotest.fail "online Batch and offline disagree on feasibility"
          in
          check_algo Online.Heft_like (fun () -> Heuristics.memheft g p);
          check_algo Online.Minmin_like (fun () -> Heuristics.memminmin g p))
        [ infinity; 60. ];
      true)

let test_plan_of_offline_equals_batch =
  qtest ~count:25 "plan_of_offline agrees with plan ~arrival:Batch" seed_arb (fun seed ->
      let g = dag_of_seed ~size:14 seed in
      let p = platform infinity in
      List.iter
        (fun algo ->
          let a = plan_exn (Online.plan ~algo ~arrival:Arrival.Batch g p) in
          let b = plan_exn (Online.plan_of_offline ~algo g p) in
          check_schedule_bits "offline plan schedule" a.Online.p_schedule b.Online.p_schedule;
          check_bool "same decision sequence" true (a.Online.p_decisions = b.Online.p_decisions))
        [ Online.Heft_like; Online.Minmin_like ];
      true)

let test_release_floors_respected =
  qtest ~count:40 "no task starts before its release; schedules stay valid" seed_arb
    (fun seed ->
      let g = dag_of_seed ~size:14 seed in
      let p = platform infinity in
      List.iter
        (fun arrival ->
          let releases = Arrival.releases arrival g in
          List.iter
            (fun algo ->
              let plan = plan_exn (Online.plan ~algo ~arrival g p) in
              let s = plan.Online.p_schedule in
              Array.iteri
                (fun i r -> check_bool "start after release" true (s.Schedule.starts.(i) >= r))
                releases;
              ignore (validate_ok g p s);
              check_int "decisions cover the graph" (Dag.n_tasks g)
                (List.length plan.Online.p_decisions))
            [ Online.Heft_like; Online.Minmin_like ])
        [ Arrival.Layered { gap = 3. }; Arrival.Jittered { gap = 3.; seed } ];
      true)

let test_online_single_task_and_tiny () =
  (* Empty graph: plan and replay are the trivial fixpoint. *)
  let empty = Dag.Builder.finalize (Dag.Builder.create ()) in
  let p0 = platform 5. in
  let plan0 = plan_exn (Online.plan ~algo:Online.Heft_like ~arrival:Arrival.Batch empty p0) in
  check_float "empty makespan" 0. plan0.Online.p_makespan;
  (match Replay.run ~policy:Replay.No_repair plan0 empty p0 with
  | Ok o -> check_float "empty replay" 0. o.Replay.o_makespan
  | Error f -> Alcotest.failf "empty replay failed: %s" f.Heuristics.reason);
  let g = build_dag ~tasks:[ ("only", 2., 1.) ] ~edges:[] in
  let p = platform 10. in
  let plan = plan_exn (Online.plan ~algo:Online.Heft_like ~arrival:(Arrival.Layered { gap = 4. }) g p) in
  check_float "single task makespan" 1. plan.Online.p_makespan;
  let realized = Noise.perturb (Noise.spec ~seed:1 ~level:0. ()) g in
  (match Replay.run ~policy:Replay.No_repair plan realized p with
  | Ok o -> check_schedule_bits "single-task replay" plan.Online.p_schedule o.Replay.o_schedule
  | Error f -> Alcotest.failf "single-task replay failed: %s" f.Heuristics.reason);
  (* Two independent tasks arriving in separate epochs. *)
  let g2 = build_dag ~tasks:[ ("a", 1., 1.); ("b", 1., 1.) ] ~edges:[] in
  let plan2 = plan_exn (Online.plan ~algo:Online.Minmin_like ~arrival:(Arrival.Layered { gap = 5. }) g2 p) in
  ignore (validate_ok g2 p plan2.Online.p_schedule)

(* ------------------------------------------------------------ replay --- *)

let test_noise0_fixpoint =
  qtest ~count:40 "zero-noise replay reproduces the plan bit-for-bit" seed_arb (fun seed ->
      let g = dag_of_seed ~size:14 seed in
      let p = platform 80. in
      let realized = Noise.perturb (Noise.spec ~seed:(seed + 1) ~level:0. ()) g in
      List.iter
        (fun arrival ->
          List.iter
            (fun algo ->
              match Online.plan ~algo ~arrival g p with
              | Error _ -> ()  (* infeasible under the finite caps: nothing to replay *)
              | Ok plan -> (
                match Replay.run ~policy:Replay.No_repair plan realized p with
                | Ok o ->
                  check_schedule_bits "fixpoint" plan.Online.p_schedule o.Replay.o_schedule;
                  check_int "nothing repaired" 0 o.Replay.o_repaired
                | Error f -> Alcotest.failf "zero-noise replay diverged: %s" f.Heuristics.reason))
            [ Online.Heft_like; Online.Minmin_like ])
        [ Arrival.Batch; Arrival.Jittered { gap = 2.; seed } ];
      true)

let test_replay_unbounded_never_diverges =
  qtest ~count:40 "without caps a replay never diverges and stays valid" seed_arb (fun seed ->
      let g = dag_of_seed ~size:14 seed in
      let p = platform infinity in
      let plan = plan_exn (Online.plan ~algo:Online.Heft_like ~arrival:Arrival.Batch g p) in
      let realized = Noise.perturb (Noise.spec ~seed ~level:0.4 ()) g in
      match Replay.run ~policy:Replay.No_repair plan realized p with
      | Error f -> Alcotest.failf "unbounded replay diverged: %s" f.Heuristics.reason
      | Ok o ->
        ignore (validate_ok realized p o.Replay.o_schedule);
        check_int "all decisions replayed" (Dag.n_tasks g) o.Replay.o_replayed;
        Float.is_finite o.Replay.o_makespan)

(* A hand-built divergence: the planned memory can no longer hold the
   inflated file, the other memory still can.  No-repair must fail;
   re-rank-and-repair must recover on the roomier memory. *)
let divergence_fixture () =
  let g =
    build_dag
      ~tasks:[ ("t", 1., 2.); ("u", 1., 1.) ]
      ~edges:[ (0, 1, 4., 1.) ]
  in
  let p = Platform.make ~p_blue:1 ~p_red:1 ~m_blue:5. ~m_red:30. in
  let plan = plan_exn (Online.plan ~algo:Online.Heft_like ~arrival:Arrival.Batch g p) in
  check_bool "planned on blue" true
    (Schedule.memory_of p plan.Online.p_schedule 0 = Platform.Blue);
  (* Find a noise seed inflating the edge beyond the blue capacity. *)
  let level = 0.8 in
  let rec find seed =
    if seed > 500 then Alcotest.fail "no inflating seed found"
    else
      let spec = Noise.spec ~seed ~level () in
      if Noise.edge_factor spec 0 > 1.3 then spec else find (seed + 1)
  in
  let spec = find 0 in
  (g, p, plan, Noise.perturb spec g)

let test_replay_divergence_no_repair () =
  let _, p, plan, realized = divergence_fixture () in
  match Replay.run ~policy:Replay.No_repair plan realized p with
  | Ok _ -> Alcotest.fail "expected a divergence"
  | Error f ->
    check_bool "reports the divergence" true (contains "diverged" f.Heuristics.reason)

let test_replay_divergence_rerank_recovers () =
  let _, p, plan, realized = divergence_fixture () in
  match Replay.run ~policy:Replay.Rerank_repair plan realized p with
  | Error f -> Alcotest.failf "repair failed: %s" f.Heuristics.reason
  | Ok o ->
    let r = validate_ok realized p o.Replay.o_schedule in
    check_bool "moved off the tight memory" true
      (Schedule.memory_of p o.Replay.o_schedule 0 = Platform.Red);
    check_int "everything repaired" 2 o.Replay.o_repaired;
    check_bool "caps respected at repair time" true (r.Validator.peak_blue <= 5.)

let test_planted_cap_violation_rejected () =
  (* Mutation: pretend the planned schedule ran unchanged while the file
     grew past the planned memory's capacity.  Only sizes are inflated —
     durations and transfer times stay planned, so the timing is consistent
     and the memory overrun is the one constraint left to catch. *)
  let g, p, plan, _ = divergence_fixture () in
  ignore g;
  let inflated =
    build_dag ~tasks:[ ("t", 1., 2.); ("u", 1., 1.) ] ~edges:[ (0, 1, 6., 1.) ]
  in
  (match Validator.validate inflated p plan.Online.p_schedule with
  | Ok _ -> Alcotest.fail "validator accepted a cap-violating replay"
  | Error errs ->
    check_bool "names the capacity violation" true
      (List.exists (contains "exceeds capacity") errs));
  (* And the replay engine refuses to take that decision in the first
     place: following the plan without repair diverges instead of
     overcommitting the tight memory. *)
  match Replay.run ~policy:Replay.No_repair plan inflated p with
  | Ok _ -> Alcotest.fail "replay overcommitted a memory past its cap"
  | Error f -> check_bool "replay diverges instead" true (contains "diverged" f.Heuristics.reason)

(* ------------------------------------------------------- determinism --- *)

let scenario_fixture () =
  let instances = [ ("d7", dag_of_seed ~size:12 7); ("d11", dag_of_seed ~size:12 11) ] in
  let cfg =
    {
      Scenario.default_config with
      Scenario.arrival = Arrival.Jittered { gap = 1.5; seed = 5 };
      noise_level = 0.3;
      noise_seeds = [ 0; 1; 2; 3 ];
    }
  in
  (cfg, instances, platform 100.)

let rows_digest cfg rows =
  String.concat "\n" (List.map (fun r -> Csv.row_to_string (Scenario.csv_row cfg r)) rows)

let test_scenario_jobs_invariance () =
  let cfg, instances, p = scenario_fixture () in
  let serial, _ = Scenario.run cfg instances p in
  List.iter
    (fun jobs ->
      let rows, _ = Par.with_pool ~jobs (fun pool -> Scenario.run ~pool cfg instances p) in
      check_string
        (Printf.sprintf "rows identical at jobs=%d" jobs)
        (rows_digest cfg serial) (rows_digest cfg rows))
    [ 1; 2; 8 ]

let test_scenario_seed_order_invariance () =
  let cfg, instances, p = scenario_fixture () in
  let a, _ = Scenario.run cfg instances p in
  let shuffled = { cfg with Scenario.noise_seeds = [ 3; 1; 0; 2; 2; 1 ] } in
  let b, _ = Scenario.run shuffled instances p in
  check_string "seed order and duplicates do not matter" (rows_digest cfg a) (rows_digest cfg b)

let test_scenario_summary_counts () =
  let cfg, instances, p = scenario_fixture () in
  let rows, summaries = Scenario.run cfg instances p in
  check_int "grid size" (2 * 2 * 4) (List.length rows);
  check_int "summary per (instance, policy)" 4 (List.length summaries);
  List.iter
    (fun s ->
      check_int "every seed accounted for" 4 (s.Scenario.s_ok + s.Scenario.s_failed);
      if s.Scenario.s_ok > 0 then begin
        check_bool "p50 <= p95" true (s.Scenario.s_mk_p50 <= s.Scenario.s_mk_p95);
        check_bool "p95 <= max" true (s.Scenario.s_mk_p95 <= s.Scenario.s_mk_max)
      end)
    summaries

let () =
  Alcotest.run "online"
    [ ( "noise",
        [ Alcotest.test_case "spec validation" `Quick test_noise_spec_validation;
          test_noise_zero_level_is_identity;
          test_noise_truncation;
          test_noise_perturb_guards;
          Alcotest.test_case "stream independence" `Quick test_noise_stream_independence;
          Alcotest.test_case "keyed rng order-independent" `Quick test_rng_keyed_order_independent ] );
      ( "arrival",
        [ test_arrival_precedence_consistent;
          Alcotest.test_case "batch is zero" `Quick test_arrival_batch_is_zero;
          Alcotest.test_case "negative gap rejected" `Quick test_arrival_negative_gap ] );
      ( "planner",
        [ test_batch_equals_offline;
          test_plan_of_offline_equals_batch;
          test_release_floors_respected;
          Alcotest.test_case "single task and tiny graphs" `Quick test_online_single_task_and_tiny ] );
      ( "replay",
        [ test_noise0_fixpoint;
          test_replay_unbounded_never_diverges;
          Alcotest.test_case "divergence without repair" `Quick test_replay_divergence_no_repair;
          Alcotest.test_case "re-rank repair recovers" `Quick test_replay_divergence_rerank_recovers;
          Alcotest.test_case "planted cap violation rejected" `Quick test_planted_cap_violation_rejected ] );
      ( "determinism",
        [ Alcotest.test_case "jobs invariance" `Quick test_scenario_jobs_invariance;
          Alcotest.test_case "seed-order invariance" `Quick test_scenario_seed_order_invariance;
          Alcotest.test_case "summary counts" `Quick test_scenario_summary_counts ] ) ]
